package stackdist

import (
	"fmt"
	"sort"
)

// Curve is a sampled hit-rate curve: HitRates[i] is the hit rate achieved by
// a queue of Sizes[i] items (or cost units). Sizes are strictly increasing
// and hit rates are non-decreasing (LRU inclusion property).
type Curve struct {
	Sizes    []int64
	HitRates []float64
}

// NewCurve builds a curve from parallel slices, sorting by size and
// validating monotonicity of sizes.
func NewCurve(sizes []int64, hitRates []float64) (*Curve, error) {
	if len(sizes) != len(hitRates) {
		return nil, fmt.Errorf("stackdist: %d sizes but %d hit rates", len(sizes), len(hitRates))
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("stackdist: empty curve")
	}
	idx := make([]int, len(sizes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return sizes[idx[a]] < sizes[idx[b]] })
	c := &Curve{
		Sizes:    make([]int64, 0, len(sizes)),
		HitRates: make([]float64, 0, len(sizes)),
	}
	for _, i := range idx {
		if n := len(c.Sizes); n > 0 && c.Sizes[n-1] == sizes[i] {
			c.HitRates[n-1] = hitRates[i]
			continue
		}
		c.Sizes = append(c.Sizes, sizes[i])
		c.HitRates = append(c.HitRates, hitRates[i])
	}
	return c, nil
}

// Len reports the number of sample points.
func (c *Curve) Len() int { return len(c.Sizes) }

// MaxSize returns the largest sampled size.
func (c *Curve) MaxSize() int64 {
	if len(c.Sizes) == 0 {
		return 0
	}
	return c.Sizes[len(c.Sizes)-1]
}

// At returns the hit rate at the given size, linearly interpolating between
// sample points and clamping outside the sampled range.
func (c *Curve) At(size int64) float64 {
	n := len(c.Sizes)
	if n == 0 {
		return 0
	}
	if size <= c.Sizes[0] {
		if c.Sizes[0] == 0 {
			return c.HitRates[0]
		}
		// Interpolate from the origin (size 0 -> hit rate 0).
		return c.HitRates[0] * float64(size) / float64(c.Sizes[0])
	}
	if size >= c.Sizes[n-1] {
		return c.HitRates[n-1]
	}
	i := sort.Search(n, func(i int) bool { return c.Sizes[i] >= size })
	x0, x1 := c.Sizes[i-1], c.Sizes[i]
	y0, y1 := c.HitRates[i-1], c.HitRates[i]
	frac := float64(size-x0) / float64(x1-x0)
	return y0 + frac*(y1-y0)
}

// Gradient returns the slope of the curve (hit rate per unit of size) at the
// given size, estimated over a window of delta units to the right.
func (c *Curve) Gradient(size, delta int64) float64 {
	if delta <= 0 {
		delta = 1
	}
	return (c.At(size+delta) - c.At(size)) / float64(delta)
}

// ConcaveHull returns the upper concave hull of the curve: the smallest
// concave function that dominates every sample point, anchored at the origin.
// This is the curve Talus-style partitioning can achieve by splitting the
// queue in two (§4.2 of the paper).
func (c *Curve) ConcaveHull() *Curve {
	type pt struct {
		x int64
		y float64
	}
	pts := make([]pt, 0, len(c.Sizes)+1)
	if len(c.Sizes) == 0 || c.Sizes[0] != 0 {
		pts = append(pts, pt{0, 0})
	}
	for i := range c.Sizes {
		pts = append(pts, pt{c.Sizes[i], c.HitRates[i]})
	}
	// Monotone-chain upper hull: keep turning clockwise (slopes
	// non-increasing).
	hull := make([]pt, 0, len(pts))
	for _, p := range pts {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Cross product of (b-a) x (p-a); >= 0 means b is below or on
			// the segment a-p, so b is not a hull vertex.
			cross := float64(b.x-a.x)*(p.y-a.y) - (b.y-a.y)*float64(p.x-a.x)
			if cross >= 0 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, p)
	}
	out := &Curve{
		Sizes:    make([]int64, len(hull)),
		HitRates: make([]float64, len(hull)),
	}
	for i, p := range hull {
		out.Sizes[i] = p.x
		out.HitRates[i] = p.y
	}
	return out
}

// IsConcave reports whether the curve's slopes are non-increasing within the
// given tolerance on slope differences. Curves with performance cliffs
// (convex regions) return false.
func (c *Curve) IsConcave(tolerance float64) bool {
	prevSlope := 0.0
	first := true
	lastX, lastY := int64(0), 0.0
	for i := range c.Sizes {
		dx := float64(c.Sizes[i] - lastX)
		if dx <= 0 {
			continue
		}
		slope := (c.HitRates[i] - lastY) / dx
		if !first && slope > prevSlope+tolerance {
			return false
		}
		prevSlope = slope
		first = false
		lastX, lastY = c.Sizes[i], c.HitRates[i]
	}
	return true
}

// CliffRegions returns the convex regions of the curve, i.e. maximal size
// intervals [Start, End] where the concave hull strictly dominates the curve
// by more than minGap in hit rate somewhere inside the interval. These are
// the performance cliffs of §3.5.
func (c *Curve) CliffRegions(minGap float64) []CliffRegion {
	hull := c.ConcaveHull()
	var regions []CliffRegion
	var cur *CliffRegion
	for i := range c.Sizes {
		gap := hull.At(c.Sizes[i]) - c.HitRates[i]
		if gap > minGap {
			if cur == nil {
				cur = &CliffRegion{Start: c.Sizes[i], MaxGap: gap}
				if i > 0 {
					cur.Start = c.Sizes[i-1]
				}
			}
			if gap > cur.MaxGap {
				cur.MaxGap = gap
			}
			cur.End = c.Sizes[i]
		} else if cur != nil {
			cur.End = c.Sizes[i]
			regions = append(regions, *cur)
			cur = nil
		}
	}
	if cur != nil {
		cur.End = c.MaxSize()
		regions = append(regions, *cur)
	}
	return regions
}

// CliffRegion describes one performance cliff: a size interval in which the
// raw hit-rate curve lies below its concave hull.
type CliffRegion struct {
	Start  int64   // size where the cliff begins
	End    int64   // size where the curve rejoins the hull
	MaxGap float64 // largest hull-minus-curve gap inside the region
}

// HasCliff reports whether the curve has at least one performance cliff with
// a hull gap larger than minGap.
func (c *Curve) HasCliff(minGap float64) bool {
	return len(c.CliffRegions(minGap)) > 0
}

// Scale returns a copy of the curve with every size multiplied by factor.
// It is used to convert item-count curves into byte curves (factor = chunk
// size) and vice versa.
func (c *Curve) Scale(factor int64) *Curve {
	out := &Curve{
		Sizes:    make([]int64, len(c.Sizes)),
		HitRates: append([]float64(nil), c.HitRates...),
	}
	for i, s := range c.Sizes {
		out.Sizes[i] = s * factor
	}
	return out
}

// Clone returns a deep copy of the curve.
func (c *Curve) Clone() *Curve {
	return &Curve{
		Sizes:    append([]int64(nil), c.Sizes...),
		HitRates: append([]float64(nil), c.HitRates...),
	}
}
