package stackdist

// BucketEstimator approximates LRU stack distances with the bucketing scheme
// of Mimir (Saemundsson et al., SoCC '14), which the paper reports Dynacache
// used to keep profiling costs at O(N/B) instead of O(N) (§2.1).
//
// The LRU stack is conceptually divided into B buckets ordered from most to
// least recently used. Every resident key belongs to one bucket; an access to
// a key in bucket b is assigned an estimated stack distance equal to the
// number of keys in buckets newer than b plus half the keys in bucket b
// (i.e. the key is assumed to sit in the middle of its bucket). The key then
// moves to the newest bucket. When the newest bucket grows beyond its target
// share the buckets are aged: a fresh newest bucket is opened and the two
// oldest buckets merge.
//
// The estimator deliberately trades accuracy for cost; the paper notes it
// becomes inaccurate for stacks of tens of thousands of items, which is one
// of Cliffhanger's motivations. Tests quantify the error against the exact
// Calculator.
type BucketEstimator struct {
	numBuckets int
	maxTracked int

	gen      map[string]int64 // key -> generation label of its bucket
	genCount map[int64]int64  // generation label -> number of keys
	order    []int64          // active generation labels, newest first
	nextGen  int64
	resident int
}

// NewBucketEstimator returns a Mimir-style estimator with numBuckets buckets
// tracking at most maxTracked keys (older keys are forgotten, yielding
// infinite distances, like a bounded ghost list). The paper's configuration
// used 100 buckets. maxTracked <= 0 means unbounded.
func NewBucketEstimator(numBuckets, maxTracked int) *BucketEstimator {
	if numBuckets < 2 {
		numBuckets = 2
	}
	b := &BucketEstimator{
		numBuckets: numBuckets,
		maxTracked: maxTracked,
		gen:        make(map[string]int64),
		genCount:   make(map[int64]int64),
	}
	b.order = append(b.order, b.nextGen)
	b.genCount[b.nextGen] = 0
	return b
}

// Access records an access to key and returns its estimated stack distance,
// or Infinite on a first access (or an access to a key that has aged out).
func (b *BucketEstimator) Access(key string) int64 {
	g, seen := b.gen[key]
	var dist int64 = Infinite
	if seen {
		// Sum keys in strictly newer buckets + half of the key's bucket.
		var newer int64
		for _, label := range b.order {
			if label == g {
				dist = newer + (b.genCount[label]+1)/2
				break
			}
			newer += b.genCount[label]
		}
		b.genCount[g]--
		b.resident--
	}
	// Move the key into the newest bucket.
	newest := b.order[0]
	b.gen[key] = newest
	b.genCount[newest]++
	b.resident++
	b.maybeAge()
	b.maybeEvict()
	return dist
}

// Resident reports how many keys the estimator currently tracks.
func (b *BucketEstimator) Resident() int { return b.resident }

// Buckets reports the number of active buckets. Intended for tests.
func (b *BucketEstimator) Buckets() int { return len(b.order) }

// maybeAge opens a fresh newest bucket once the current one holds more than
// its fair share of resident keys, merging the two oldest buckets if the
// bucket count would exceed the configured maximum.
func (b *BucketEstimator) maybeAge() {
	target := int64(b.resident/b.numBuckets) + 1
	if b.genCount[b.order[0]] < target {
		return
	}
	b.nextGen++
	b.order = append([]int64{b.nextGen}, b.order...)
	b.genCount[b.nextGen] = 0
	if len(b.order) > b.numBuckets {
		// Merge the two oldest buckets.
		last := b.order[len(b.order)-1]
		prev := b.order[len(b.order)-2]
		b.genCount[prev] += b.genCount[last]
		// Relabel is lazy: keys in `last` keep their label, so record an
		// alias by leaving genCount[last] at zero and mapping distance
		// lookups through order; to keep lookups O(B) we instead rewrite
		// the alias here by treating `last` as `prev` for future lookups.
		b.alias(last, prev)
		delete(b.genCount, last)
		b.order = b.order[:len(b.order)-1]
	}
}

// alias remaps all keys labelled from to label to. To avoid an O(n) scan per
// merge, the estimator maintains an alias chain resolved lazily in Access;
// however for clarity and because merges touch only the oldest (smallest)
// buckets, a direct scan bounded by the tracked key count is acceptable and
// keeps the data structure simple.
func (b *BucketEstimator) alias(from, to int64) {
	for k, g := range b.gen {
		if g == from {
			b.gen[k] = to
		}
	}
}

// maybeEvict forgets the oldest keys when the tracked population exceeds
// maxTracked.
func (b *BucketEstimator) maybeEvict() {
	if b.maxTracked <= 0 || b.resident <= b.maxTracked {
		return
	}
	// Drop the oldest bucket wholesale (coarse, like Mimir's ghost bound).
	oldest := b.order[len(b.order)-1]
	if len(b.order) == 1 {
		return
	}
	removed := int64(0)
	for k, g := range b.gen {
		if g == oldest {
			delete(b.gen, k)
			removed++
		}
	}
	b.resident -= int(removed)
	delete(b.genCount, oldest)
	b.order = b.order[:len(b.order)-1]
}
