// Package stackdist computes LRU stack distances, hit-rate curves and
// concave hulls.
//
// The stack distance of a request is the rank of its key in an
// infinite-capacity LRU stack, counted from the top (Mattson et al., §2.1 of
// the paper): a stack distance of 1 means the key was the most recently used
// item; a distance of d means the request would hit in any LRU queue holding
// at least d items. First-ever accesses have infinite stack distance
// (compulsory misses). A histogram of stack distances therefore yields the
// entire hit-rate curve h(m) for every queue size m, which is what the
// Dynacache solver baseline consumes.
//
// Two estimators are provided:
//
//   - Calculator: exact distances in O(log n) per request using a Fenwick
//     tree over access timestamps.
//   - BucketEstimator: a Mimir-style approximation (Saemundsson et al.) that
//     buckets the LRU stack into B groups and costs O(B) per request,
//     matching the approach the paper says Dynacache used.
package stackdist

import "math"

// Infinite is the stack distance reported for a key's first access.
const Infinite = int64(math.MaxInt64)

// Calculator computes exact LRU stack distances for a stream of keys.
// It is not safe for concurrent use.
type Calculator struct {
	lastPos map[string]int // key -> last access position (1-based)
	marks   []int64        // marks[i] == 1 iff position i is some key's latest access
	tree    []int64        // Fenwick tree over marks
	now     int            // number of accesses processed
}

// NewCalculator returns an empty exact stack-distance calculator.
func NewCalculator() *Calculator {
	return &Calculator{
		lastPos: make(map[string]int),
		marks:   make([]int64, 1),
		tree:    make([]int64, 1),
	}
}

// Access records an access to key and returns its stack distance, or
// Infinite if the key has never been accessed before.
func (c *Calculator) Access(key string) int64 {
	c.now++
	c.grow(c.now)
	prev, seen := c.lastPos[key]
	dist := Infinite
	if seen {
		// Distinct keys accessed strictly after prev = marks in (prev, now).
		dist = c.rangeSum(prev+1, c.now-1) + 1
		c.update(prev, -1)
	}
	c.update(c.now, +1)
	c.lastPos[key] = c.now
	return dist
}

// Distinct reports the number of distinct keys seen so far.
func (c *Calculator) Distinct() int { return len(c.lastPos) }

// Accesses reports the number of accesses processed so far.
func (c *Calculator) Accesses() int { return c.now }

// grow extends the Fenwick tree to cover position n, rebuilding it from the
// raw marks array when the backing storage doubles. Rebuilds are O(size) but
// happen only O(log n) times, so the amortized cost per access stays O(log n).
func (c *Calculator) grow(n int) {
	if len(c.tree) > n {
		return
	}
	size := len(c.tree)
	for size <= n {
		size *= 2
	}
	marks := make([]int64, size)
	copy(marks, c.marks)
	c.marks = marks
	c.tree = make([]int64, size)
	// Standard O(size) Fenwick construction.
	for i := 1; i < size; i++ {
		c.tree[i] += c.marks[i]
		if j := i + (i & (-i)); j < size {
			c.tree[j] += c.tree[i]
		}
	}
}

func (c *Calculator) update(i int, delta int64) {
	c.marks[i] += delta
	for ; i < len(c.tree); i += i & (-i) {
		c.tree[i] += delta
	}
}

func (c *Calculator) prefixSum(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += c.tree[i]
	}
	return s
}

func (c *Calculator) rangeSum(lo, hi int) int64 {
	if hi < lo {
		return 0
	}
	return c.prefixSum(hi) - c.prefixSum(lo-1)
}

// Histogram accumulates stack distances into a reuse-distance histogram from
// which hit-rate curves are derived.
type Histogram struct {
	counts     map[int64]int64
	coldMisses int64
	total      int64
	maxDist    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]int64)}
}

// Record adds one observation. Pass Infinite for compulsory misses.
func (h *Histogram) Record(dist int64) {
	h.total++
	if dist == Infinite {
		h.coldMisses++
		return
	}
	h.counts[dist]++
	if dist > h.maxDist {
		h.maxDist = dist
	}
}

// Total reports the number of recorded observations (including cold misses).
func (h *Histogram) Total() int64 { return h.total }

// ColdMisses reports the number of infinite-distance observations.
func (h *Histogram) ColdMisses() int64 { return h.coldMisses }

// MaxDistance reports the largest finite distance recorded (0 if none).
func (h *Histogram) MaxDistance() int64 { return h.maxDist }

// HitRate returns the hit rate an LRU queue of the given size (in items)
// would have achieved over the recorded stream: the fraction of observations
// with stack distance <= size.
func (h *Histogram) HitRate(size int64) float64 {
	if h.total == 0 {
		return 0
	}
	var hits int64
	for d, c := range h.counts {
		if d <= size {
			hits += c
		}
	}
	return float64(hits) / float64(h.total)
}

// Curve converts the histogram into a hit-rate curve sampled at `points`
// evenly spaced sizes between 0 and maxSize (inclusive). If maxSize is 0 the
// largest recorded distance is used.
func (h *Histogram) Curve(maxSize int64, points int) *Curve {
	if maxSize <= 0 {
		maxSize = h.maxDist
	}
	if points < 2 {
		points = 2
	}
	// Build a cumulative distribution once for efficiency.
	cum := make([]int64, maxSize+2)
	for d, c := range h.counts {
		if d <= maxSize {
			cum[d] += c
		}
	}
	for i := int64(1); i <= maxSize; i++ {
		cum[i] += cum[i-1]
	}
	curve := &Curve{
		Sizes:    make([]int64, 0, points+1),
		HitRates: make([]float64, 0, points+1),
	}
	total := float64(h.total)
	if total == 0 {
		total = 1
	}
	step := float64(maxSize) / float64(points)
	if step < 1 {
		step = 1
	}
	for s := float64(0); ; s += step {
		size := int64(math.Round(s))
		if size > maxSize {
			size = maxSize
		}
		curve.Sizes = append(curve.Sizes, size)
		curve.HitRates = append(curve.HitRates, float64(cum[size])/total)
		if size == maxSize {
			break
		}
	}
	return curve
}
