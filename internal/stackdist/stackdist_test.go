package stackdist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cliffhanger/internal/cache"
)

func TestCalculatorKnownSequence(t *testing.T) {
	c := NewCalculator()
	// Sequence: a b c a b c a
	// a: inf, b: inf, c: inf, a: 3, b: 3, c: 3, a: 3
	seq := []string{"a", "b", "c", "a", "b", "c", "a"}
	want := []int64{Infinite, Infinite, Infinite, 3, 3, 3, 3}
	for i, k := range seq {
		if got := c.Access(k); got != want[i] {
			t.Fatalf("access %d (%s): distance %d, want %d", i, k, got, want[i])
		}
	}
	if c.Distinct() != 3 || c.Accesses() != 7 {
		t.Fatalf("Distinct=%d Accesses=%d, want 3,7", c.Distinct(), c.Accesses())
	}
}

func TestCalculatorImmediateReuse(t *testing.T) {
	c := NewCalculator()
	c.Access("x")
	if got := c.Access("x"); got != 1 {
		t.Fatalf("immediate reuse distance = %d, want 1", got)
	}
}

func TestCalculatorSequentialScanIsInfinite(t *testing.T) {
	c := NewCalculator()
	for i := 0; i < 1000; i++ {
		if got := c.Access(fmt.Sprintf("k%d", i)); got != Infinite {
			t.Fatalf("first access must have infinite distance, got %d", got)
		}
	}
	// Second scan: every key has distance exactly 1000.
	for i := 0; i < 1000; i++ {
		if got := c.Access(fmt.Sprintf("k%d", i)); got != 1000 {
			t.Fatalf("cyclic scan distance = %d, want 1000", got)
		}
	}
}

// TestCalculatorMatchesLRUSimulation is the fundamental correctness check:
// a request hits an LRU of capacity C iff its exact stack distance is <= C.
func TestCalculatorMatchesLRUSimulation(t *testing.T) {
	for _, capacity := range []int64{1, 4, 16, 64} {
		capacity := capacity
		t.Run(fmt.Sprintf("cap%d", capacity), func(t *testing.T) {
			calc := NewCalculator()
			lru := cache.NewLRU(capacity)
			rng := rand.New(rand.NewSource(capacity))
			zipf := rand.NewZipf(rng, 1.2, 1, 500)
			for i := 0; i < 20000; i++ {
				key := fmt.Sprintf("k%d", zipf.Uint64())
				dist := calc.Access(key)
				hit, _ := lru.Access(key, 1)
				wantHit := dist != Infinite && dist <= capacity
				if hit != wantHit {
					t.Fatalf("request %d key %s: LRU hit=%v but stack distance %d (cap %d)", i, key, hit, dist, capacity)
				}
			}
		})
	}
}

func TestHistogramHitRate(t *testing.T) {
	h := NewHistogram()
	h.Record(1)
	h.Record(2)
	h.Record(5)
	h.Record(Infinite)
	if got := h.HitRate(2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("HitRate(2) = %v, want 0.5", got)
	}
	if got := h.HitRate(5); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("HitRate(5) = %v, want 0.75", got)
	}
	if h.ColdMisses() != 1 || h.Total() != 4 || h.MaxDistance() != 5 {
		t.Fatalf("ColdMisses=%d Total=%d Max=%d", h.ColdMisses(), h.Total(), h.MaxDistance())
	}
}

func TestHistogramCurveMonotone(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		h.Record(int64(1 + rng.Intn(1000)))
	}
	curve := h.Curve(0, 50)
	for i := 1; i < curve.Len(); i++ {
		if curve.HitRates[i] < curve.HitRates[i-1] {
			t.Fatalf("hit-rate curve must be non-decreasing, dipped at %d", i)
		}
		if curve.Sizes[i] <= curve.Sizes[i-1] {
			t.Fatalf("curve sizes must be strictly increasing at %d: %v", i, curve.Sizes[i-1:i+1])
		}
	}
	if last := curve.HitRates[curve.Len()-1]; math.Abs(last-1.0) > 1e-9 {
		t.Fatalf("curve should reach 1.0 at max distance, got %v", last)
	}
}

func TestCurveAtInterpolation(t *testing.T) {
	c, err := NewCurve([]int64{100, 200, 400}, []float64{0.2, 0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		size int64
		want float64
	}{
		{0, 0},
		{50, 0.1},  // interpolated from origin
		{100, 0.2}, // exact point
		{150, 0.3}, // interpolated
		{300, 0.6},
		{400, 0.8},
		{999, 0.8}, // clamped
	}
	for _, cse := range cases {
		if got := c.At(cse.size); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%d) = %v, want %v", cse.size, got, cse.want)
		}
	}
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve([]int64{1}, []float64{0.1, 0.2}); err == nil {
		t.Fatalf("mismatched lengths should error")
	}
	if _, err := NewCurve(nil, nil); err == nil {
		t.Fatalf("empty curve should error")
	}
	// Unsorted input gets sorted; duplicate sizes keep the last value.
	c, err := NewCurve([]int64{200, 100, 200}, []float64{0.5, 0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Sizes[0] != 100 || math.Abs(c.HitRates[1]-0.6) > 1e-9 {
		t.Fatalf("unexpected normalized curve: %+v", c)
	}
}

func TestCurveGradient(t *testing.T) {
	c, _ := NewCurve([]int64{0, 100, 200}, []float64{0, 0.5, 0.6})
	if g := c.Gradient(0, 100); math.Abs(g-0.005) > 1e-9 {
		t.Fatalf("Gradient(0) = %v, want 0.005", g)
	}
	if g := c.Gradient(100, 100); math.Abs(g-0.001) > 1e-9 {
		t.Fatalf("Gradient(100) = %v, want 0.001", g)
	}
	if g := c.Gradient(200, 100); g != 0 {
		t.Fatalf("Gradient beyond max = %v, want 0", g)
	}
}

func TestConcaveHullOfCliffCurve(t *testing.T) {
	// A step-function (cliff) curve: flat at 0.1 until 1000 items, then
	// jumps to 0.9. The concave hull should be the straight line from the
	// origin through (1000, 0.9) and then flat.
	sizes := []int64{100, 500, 900, 999, 1000, 1500, 2000}
	rates := []float64{0.1, 0.1, 0.1, 0.1, 0.9, 0.9, 0.9}
	c, _ := NewCurve(sizes, rates)
	if c.IsConcave(1e-9) {
		t.Fatalf("cliff curve should not be concave")
	}
	hull := c.ConcaveHull()
	// Hull must dominate the curve everywhere.
	for s := int64(0); s <= 2000; s += 50 {
		if hull.At(s)+1e-9 < c.At(s) {
			t.Fatalf("hull below curve at %d: hull=%v curve=%v", s, hull.At(s), c.At(s))
		}
	}
	// At 500 items the hull should be the interpolation 0.45, much higher
	// than the raw 0.1.
	if got := hull.At(500); math.Abs(got-0.45) > 0.02 {
		t.Fatalf("hull at 500 = %v, want ~0.45", got)
	}
	if !hull.IsConcave(1e-6) {
		t.Fatalf("concave hull must be concave")
	}
	if !c.HasCliff(0.05) {
		t.Fatalf("HasCliff should detect the step")
	}
	regions := c.CliffRegions(0.05)
	if len(regions) != 1 {
		t.Fatalf("expected 1 cliff region, got %d", len(regions))
	}
	if regions[0].End < 900 || regions[0].Start > 900 {
		t.Fatalf("cliff region %+v should span the step below 1000", regions[0])
	}
}

func TestConcaveCurveHullIsIdentityLike(t *testing.T) {
	// A concave curve's hull should match the curve (within interpolation).
	sizes := []int64{0, 100, 200, 400, 800}
	rates := []float64{0, 0.5, 0.7, 0.85, 0.9}
	c, _ := NewCurve(sizes, rates)
	if !c.IsConcave(1e-9) {
		t.Fatalf("test curve should be concave")
	}
	hull := c.ConcaveHull()
	for _, s := range sizes {
		if math.Abs(hull.At(s)-c.At(s)) > 1e-9 {
			t.Fatalf("hull differs from concave curve at %d: %v vs %v", s, hull.At(s), c.At(s))
		}
	}
	if c.HasCliff(0.01) {
		t.Fatalf("concave curve should not report cliffs")
	}
}

// TestConcaveHullProperty: for random monotone curves, the hull dominates the
// curve, is concave, and agrees at size 0 and max size.
func TestConcaveHullProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		sizes := make([]int64, n)
		rates := make([]float64, n)
		var size int64
		var rate float64
		for i := 0; i < n; i++ {
			size += int64(1 + rng.Intn(100))
			rate += rng.Float64() * (1 - rate) * 0.3
			sizes[i] = size
			rates[i] = rate
		}
		c, err := NewCurve(sizes, rates)
		if err != nil {
			return false
		}
		hull := c.ConcaveHull()
		if !hull.IsConcave(1e-6) {
			return false
		}
		for _, s := range sizes {
			if hull.At(s)+1e-9 < c.At(s) {
				return false
			}
		}
		if math.Abs(hull.At(c.MaxSize())-c.At(c.MaxSize())) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCurveScaleAndClone(t *testing.T) {
	c, _ := NewCurve([]int64{10, 20}, []float64{0.3, 0.6})
	s := c.Scale(64)
	if s.Sizes[0] != 640 || s.Sizes[1] != 1280 {
		t.Fatalf("Scale sizes = %v", s.Sizes)
	}
	cl := c.Clone()
	cl.HitRates[0] = 0.99
	if c.HitRates[0] == 0.99 {
		t.Fatalf("Clone aliases the original")
	}
}

func TestBucketEstimatorApproximatesExact(t *testing.T) {
	// On a Zipf workload, the bucket estimator's hit-rate curve should be
	// within a few percent of the exact curve at moderate sizes.
	exact := NewProfiler()
	approx := NewApproxProfiler(100)
	rng := rand.New(rand.NewSource(5))
	zipf := rand.NewZipf(rng, 1.1, 1, 2000)
	for i := 0; i < 60000; i++ {
		key := fmt.Sprintf("k%d", zipf.Uint64())
		exact.Access(key)
		approx.Access(key)
	}
	for _, size := range []int64{50, 200, 500, 1000} {
		e := exact.Histogram().HitRate(size)
		a := approx.Histogram().HitRate(size)
		if math.Abs(e-a) > 0.08 {
			t.Errorf("size %d: exact %.3f vs approx %.3f differ by more than 0.08", size, e, a)
		}
	}
}

func TestBucketEstimatorBuckets(t *testing.T) {
	b := NewBucketEstimator(10, 0)
	for i := 0; i < 5000; i++ {
		b.Access(fmt.Sprintf("k%d", i%700))
	}
	if b.Buckets() > 10 {
		t.Fatalf("bucket count %d exceeds configured 10", b.Buckets())
	}
	if b.Resident() != 700 {
		t.Fatalf("Resident = %d, want 700", b.Resident())
	}
}

func TestBucketEstimatorBoundedTracking(t *testing.T) {
	b := NewBucketEstimator(10, 500)
	for i := 0; i < 5000; i++ {
		b.Access(fmt.Sprintf("k%d", i))
	}
	if b.Resident() > 500+500/10+1 {
		t.Fatalf("Resident = %d, should be bounded near 500", b.Resident())
	}
}

func TestProfilerCurveEndsAtOne(t *testing.T) {
	p := NewProfiler()
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			p.Access(fmt.Sprintf("k%d", i))
		}
	}
	if p.Requests() != 300 {
		t.Fatalf("Requests = %d, want 300", p.Requests())
	}
	curve := p.Curve(0, 20)
	// 200 of 300 accesses are re-references with distance 100.
	if got := curve.At(100); math.Abs(got-2.0/3.0) > 0.01 {
		t.Fatalf("curve at 100 = %v, want ~0.667", got)
	}
}

func BenchmarkCalculatorAccess(b *testing.B) {
	c := NewCalculator()
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.1, 1, 100000)
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", zipf.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(keys[i&(len(keys)-1)])
	}
}

func BenchmarkBucketEstimatorAccess(b *testing.B) {
	e := NewBucketEstimator(100, 0)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.1, 1, 100000)
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", zipf.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Access(keys[i&(len(keys)-1)])
	}
}
