package stackdist

// Profiler couples a stack-distance estimator with a histogram, producing
// hit-rate curves for a single request stream (one slab class or one
// application). The Dynacache solver baseline builds one Profiler per queue
// it optimizes.
type Profiler struct {
	exact     *Calculator
	approx    *BucketEstimator
	hist      *Histogram
	useApprox bool
}

// NewProfiler returns a profiler using the exact Mattson calculator.
func NewProfiler() *Profiler {
	return &Profiler{exact: NewCalculator(), hist: NewHistogram()}
}

// NewApproxProfiler returns a profiler using the Mimir-style bucket
// estimator with the given number of buckets (the paper used 100).
func NewApproxProfiler(buckets int) *Profiler {
	return &Profiler{
		approx:    NewBucketEstimator(buckets, 0),
		hist:      NewHistogram(),
		useApprox: true,
	}
}

// Access records one request for key.
func (p *Profiler) Access(key string) {
	var d int64
	if p.useApprox {
		d = p.approx.Access(key)
	} else {
		d = p.exact.Access(key)
	}
	p.hist.Record(d)
}

// Histogram exposes the accumulated reuse-distance histogram.
func (p *Profiler) Histogram() *Histogram { return p.hist }

// Curve returns the hit-rate curve sampled at `points` sizes up to maxSize
// items (0 means the largest observed distance).
func (p *Profiler) Curve(maxSize int64, points int) *Curve {
	return p.hist.Curve(maxSize, points)
}

// Requests reports the number of recorded requests.
func (p *Profiler) Requests() int64 { return p.hist.Total() }
