// Package trace defines the request model used throughout the repository and
// provides trace sources: file readers/writers and synthetic workload
// generators.
//
// The paper's evaluation replays a proprietary week-long trace of the top 20
// applications of Memcachier, a multi-tenant Memcached service, plus a
// Facebook-style micro-benchmark workload generated with Mutilate. Neither is
// publicly available, so this package provides parameterized synthetic
// equivalents (see memcachier.go and facebook.go) that reproduce the
// structural properties the algorithms respond to: Zipfian popularity,
// per-application slab-class mixes skewed across item sizes, sequential scans
// that produce performance cliffs, and bursty phase changes. DESIGN.md §2
// documents the substitution.
package trace

import (
	"fmt"
)

// Op is the type of a cache operation.
type Op uint8

const (
	// OpGet is a read. A miss is expected to be followed by a demand fill
	// (the simulator performs the fill implicitly).
	OpGet Op = iota
	// OpSet is a write/fill.
	OpSet
	// OpDelete removes a key.
	OpDelete
)

// String returns the memcached verb for the operation.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Request is one cache request.
type Request struct {
	// Time is seconds since the beginning of the trace.
	Time float64
	// App identifies the application (tenant). The Memcachier-like
	// generator numbers applications 1..20 to match the paper's figures.
	App int
	// Key is the cache key.
	Key string
	// Size is the value size in bytes (the item's cost for slab-class
	// selection). For OpGet it is the size the value would have on a fill.
	Size int64
	// Op is the operation type.
	Op Op
}

// Source yields a stream of requests. Implementations are not safe for
// concurrent use.
type Source interface {
	// Next returns the next request. ok is false when the source is
	// exhausted.
	Next() (r Request, ok bool)
}

// SliceSource is a Source backed by an in-memory slice.
type SliceSource struct {
	reqs []Request
	pos  int
}

// NewSliceSource returns a Source that yields the given requests in order.
func NewSliceSource(reqs []Request) *SliceSource {
	return &SliceSource{reqs: reqs}
}

// Next implements Source.
func (s *SliceSource) Next() (Request, bool) {
	if s.pos >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len reports the number of requests.
func (s *SliceSource) Len() int { return len(s.reqs) }

// Collect drains a source into a slice, up to max requests (0 = unlimited).
func Collect(src Source, max int) []Request {
	var out []Request
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// LimitSource wraps a source and stops after n requests.
type LimitSource struct {
	src  Source
	n    int
	seen int
}

// NewLimitSource returns a Source yielding at most n requests from src.
func NewLimitSource(src Source, n int) *LimitSource {
	return &LimitSource{src: src, n: n}
}

// Next implements Source.
func (l *LimitSource) Next() (Request, bool) {
	if l.seen >= l.n {
		return Request{}, false
	}
	r, ok := l.src.Next()
	if !ok {
		return Request{}, false
	}
	l.seen++
	return r, true
}

// FilterApp wraps a source and yields only requests belonging to app.
type FilterApp struct {
	src Source
	app int
}

// NewFilterApp returns a Source containing only requests of the given app.
func NewFilterApp(src Source, app int) *FilterApp {
	return &FilterApp{src: src, app: app}
}

// Next implements Source.
func (f *FilterApp) Next() (Request, bool) {
	for {
		r, ok := f.src.Next()
		if !ok {
			return Request{}, false
		}
		if r.App == f.app {
			return r, true
		}
	}
}
