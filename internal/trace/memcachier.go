package trace

// This file defines the synthetic stand-in for the week-long Memcachier
// trace of the paper's evaluation (top 20 applications by request count).
// The real trace is proprietary; the specification below is crafted so that
// the *structural* properties the paper's results depend on are present:
//
//   - applications with highly skewed request-size mixes, where the default
//     first-come-first-serve slab allocation starves the small, hot classes
//     (applications 4 and 6, Table 1);
//   - applications whose hit-rate curves have performance cliffs caused by
//     sequential scans (applications 1, 7, 10, 11, 18, 19 — the ones marked
//     with an asterisk in Figures 2 and 6), with application 19 having steep
//     cliffs in both of its classes plus a bursty class shift (Table 4,
//     Figures 4 and 9);
//   - applications with very high baseline hit rates and little headroom
//     (applications 3, 4, 5 — Tables 2 and 5);
//   - a large application holding most of a server's memory at a moderate
//     hit rate next to a starved small application (applications 1 and 2,
//     Table 3);
//   - applications that are simply over-provisioned and see little benefit
//     from any reallocation (several of 8-13, 15, 20);
//   - applications with time-varying class mixes that exercise hill
//     climbing's adaptivity (application 5, Figure 8).
//
// Absolute hit-rate values will differ from the paper; EXPERIMENTS.md records
// paper-vs-measured values for every experiment.

// MemcachierApps returns the 20-application synthetic workload specification.
// The scale parameter multiplies every application's memory budget and key
// space; scale 1.0 is the default used by cmd/cliffbench, while tests use
// smaller scales for speed. Scales below ~0.05 are clamped to 0.05 to keep
// key spaces meaningful.
func MemcachierApps(scale float64) []AppSpec {
	if scale <= 0.05 {
		scale = 0.05
	}
	k := func(n int) int { // scaled key count, at least 16
		v := int(float64(n) * scale)
		if v < 16 {
			v = 16
		}
		return v
	}
	mb := func(n float64) int64 { // scaled memory budget in MiB, at least 1
		v := int64(n * scale)
		if v < 1 {
			v = 1
		}
		return v
	}

	return []AppSpec{
		{
			// App 1: the dominant tenant — most of the memory, moderate hit
			// rate, plus a scanned class producing a cliff (asterisked in
			// the paper).
			ID: 1, MemoryMB: mb(48), RequestShare: 0.22, HasCliff: true,
			Classes: []ClassSpec{
				{ValueSize: 512, Keys: k(180000), Weight: 0.75, Pattern: PatternZipf, ZipfS: 1.03},
				{ValueSize: 4096, Keys: k(9000), Weight: 0.25, Pattern: PatternScanZipf, ScanFraction: 0.85, ZipfS: 1.2},
			},
		},
		{
			// App 2: small reservation, large working set -> low hit rate
			// that improves a lot with extra memory (Table 3).
			ID: 2, MemoryMB: mb(3), RequestShare: 0.14,
			Classes: []ClassSpec{
				{ValueSize: 256, Keys: k(120000), Weight: 1, Pattern: PatternZipf, ZipfS: 1.08},
			},
		},
		{
			// App 3: very high hit rate; its large-value class (slab class 9
			// under the default geometry: 32 KiB chunks) has the concave
			// curve shown in Figure 1.
			ID: 3, MemoryMB: mb(10), RequestShare: 0.10,
			Classes: []ClassSpec{
				{ValueSize: 128, Keys: k(30000), Weight: 0.65, Pattern: PatternZipf, ZipfS: 1.25},
				{ValueSize: 24 * 1024, Keys: k(700), Weight: 0.35, Pattern: PatternZipf, ZipfS: 1.3},
			},
		},
		{
			// App 4: 9% of GETs in a tiny-value class, 91% in a large-value
			// class with an enormous key space (Table 1: the large class
			// produces essentially all the misses).
			ID: 4, MemoryMB: mb(12), RequestShare: 0.09,
			Classes: []ClassSpec{
				{ValueSize: 64, Keys: k(12000), Weight: 0.09, Pattern: PatternZipf, ZipfS: 1.4},
				{ValueSize: 8192, Keys: k(60000), Weight: 0.91, Pattern: PatternZipf, ZipfS: 1.35},
			},
		},
		{
			// App 5: high hit rate across six slab classes whose mix shifts
			// over the week (Figure 8 shows memory moving between slabs 4-9).
			ID: 5, MemoryMB: mb(16), RequestShare: 0.08,
			Classes: []ClassSpec{
				{ValueSize: 768, Keys: k(9000), Weight: 0.25, Pattern: PatternZipf, ZipfS: 1.3},
				{ValueSize: 1536, Keys: k(7000), Weight: 0.22, Pattern: PatternZipf, ZipfS: 1.3},
				{ValueSize: 3 * 1024, Keys: k(5000), Weight: 0.18, Pattern: PatternZipf, ZipfS: 1.25},
				{ValueSize: 6 * 1024, Keys: k(3500), Weight: 0.15, Pattern: PatternZipf, ZipfS: 1.25},
				{ValueSize: 12 * 1024, Keys: k(2000), Weight: 0.12, Pattern: PatternZipf, ZipfS: 1.25},
				{ValueSize: 24 * 1024, Keys: k(1200), Weight: 0.08, Pattern: PatternZipf, ZipfS: 1.25},
			},
			Phases: []Phase{
				{Fraction: 0.35, ClassWeights: []float64{0.10, 0.12, 0.18, 0.20, 0.22, 0.18}},
				{Fraction: 0.35, ClassWeights: []float64{0.30, 0.28, 0.18, 0.10, 0.08, 0.06}},
				{Fraction: 0.30, ClassWeights: []float64{0.18, 0.18, 0.20, 0.20, 0.14, 0.10}},
			},
		},
		{
			// App 6: the Table-1 headliner — 70% of GETs go to a mid-size
			// class that the default allocation starves because a huge-value
			// class with 29% of GETs grabs the pages.
			ID: 6, MemoryMB: mb(20), RequestShare: 0.07,
			Classes: []ClassSpec{
				{ValueSize: 64, Keys: k(1500), Weight: 0.01, Pattern: PatternZipf, ZipfS: 1.3},
				{ValueSize: 256, Keys: k(55000), Weight: 0.70, Pattern: PatternZipf, ZipfS: 1.15},
				{ValueSize: 16 * 1024, Keys: k(40000), Weight: 0.29, Pattern: PatternZipf, ZipfS: 1.05},
			},
		},
		{
			// App 7: cliff application — a scanned class slightly larger
			// than its fair share.
			ID: 7, MemoryMB: mb(6), RequestShare: 0.05, HasCliff: true,
			Classes: []ClassSpec{
				{ValueSize: 512, Keys: k(9000), Weight: 0.45, Pattern: PatternScan},
				{ValueSize: 128, Keys: k(20000), Weight: 0.55, Pattern: PatternZipf, ZipfS: 1.2},
			},
		},
		{
			// App 8: comfortable zipf app, little headroom.
			ID: 8, MemoryMB: mb(8), RequestShare: 0.045,
			Classes: []ClassSpec{
				{ValueSize: 1024, Keys: k(6000), Weight: 1, Pattern: PatternZipf, ZipfS: 1.3},
			},
		},
		{
			// App 9: skewed two-class mix where the incremental algorithm
			// beats the offline solver (short queues, shifting mix).
			ID: 9, MemoryMB: mb(4), RequestShare: 0.04,
			Classes: []ClassSpec{
				{ValueSize: 128, Keys: k(30000), Weight: 0.6, Pattern: PatternZipf, ZipfS: 1.1},
				{ValueSize: 4096, Keys: k(2500), Weight: 0.4, Pattern: PatternZipf, ZipfS: 1.2},
			},
			Phases: []Phase{
				{Fraction: 0.5, ClassWeights: []float64{0.85, 0.15}},
				{Fraction: 0.5, ClassWeights: []float64{0.25, 0.75}},
			},
		},
		{
			// App 10: cliff application (scan plus zipf).
			ID: 10, MemoryMB: mb(5), RequestShare: 0.035, HasCliff: true,
			Classes: []ClassSpec{
				{ValueSize: 256, Keys: k(14000), Weight: 0.7, Pattern: PatternScanZipf, ScanFraction: 0.8, ZipfS: 1.25},
				{ValueSize: 2048, Keys: k(1800), Weight: 0.3, Pattern: PatternZipf, ZipfS: 1.3},
			},
		},
		{
			// App 11: cliff application; its scanned class is the Figure 3
			// example curve (a cliff around 10-20k items).
			ID: 11, MemoryMB: mb(8), RequestShare: 0.03, HasCliff: true,
			Classes: []ClassSpec{
				{ValueSize: 128, Keys: k(10000), Weight: 0.4, Pattern: PatternZipf, ZipfS: 1.2},
				{ValueSize: 1024, Keys: k(16000), Weight: 0.6, Pattern: PatternScanZipf, ScanFraction: 0.9, ZipfS: 1.1},
			},
		},
		{
			// App 12: over-provisioned, nothing to gain.
			ID: 12, MemoryMB: mb(6), RequestShare: 0.025,
			Classes: []ClassSpec{
				{ValueSize: 512, Keys: k(4000), Weight: 1, Pattern: PatternZipf, ZipfS: 1.4},
			},
		},
		{
			// App 13: two classes with mild skew; solver and Cliffhanger
			// perform similarly.
			ID: 13, MemoryMB: mb(6), RequestShare: 0.022,
			Classes: []ClassSpec{
				{ValueSize: 256, Keys: k(12000), Weight: 0.5, Pattern: PatternZipf, ZipfS: 1.2},
				{ValueSize: 2048, Keys: k(3000), Weight: 0.5, Pattern: PatternZipf, ZipfS: 1.2},
			},
		},
		{
			// App 14: strongly size-skewed -> large miss reduction from
			// reallocation (the paper reports >65% for apps 14, 16, 17).
			ID: 14, MemoryMB: mb(10), RequestShare: 0.02,
			Classes: []ClassSpec{
				{ValueSize: 128, Keys: k(40000), Weight: 0.8, Pattern: PatternZipf, ZipfS: 1.12},
				{ValueSize: 32 * 1024, Keys: k(8000), Weight: 0.2, Pattern: PatternZipf, ZipfS: 1.02},
			},
		},
		{
			// App 15: modest zipf app.
			ID: 15, MemoryMB: mb(4), RequestShare: 0.018,
			Classes: []ClassSpec{
				{ValueSize: 1024, Keys: k(5000), Weight: 1, Pattern: PatternZipf, ZipfS: 1.25},
			},
		},
		{
			// App 16: size-skewed like 14 but smaller.
			ID: 16, MemoryMB: mb(6), RequestShare: 0.016,
			Classes: []ClassSpec{
				{ValueSize: 64, Keys: k(50000), Weight: 0.75, Pattern: PatternZipf, ZipfS: 1.1},
				{ValueSize: 16 * 1024, Keys: k(5000), Weight: 0.25, Pattern: PatternZipf, ZipfS: 1.05},
			},
		},
		{
			// App 17: size-skewed with three classes.
			ID: 17, MemoryMB: mb(8), RequestShare: 0.015,
			Classes: []ClassSpec{
				{ValueSize: 128, Keys: k(35000), Weight: 0.6, Pattern: PatternZipf, ZipfS: 1.12},
				{ValueSize: 1024, Keys: k(9000), Weight: 0.25, Pattern: PatternZipf, ZipfS: 1.2},
				{ValueSize: 24 * 1024, Keys: k(6000), Weight: 0.15, Pattern: PatternZipf, ZipfS: 1.02},
			},
		},
		{
			// App 18: cliff application where the offline solver misfires
			// (the paper reports its misses increased 13.6x under the
			// solver).
			ID: 18, MemoryMB: mb(5), RequestShare: 0.014, HasCliff: true,
			Classes: []ClassSpec{
				{ValueSize: 512, Keys: k(7000), Weight: 0.65, Pattern: PatternScan},
				{ValueSize: 128, Keys: k(8000), Weight: 0.35, Pattern: PatternZipf, ZipfS: 1.3},
			},
		},
		{
			// App 19: the paper's showcase cliff application — steep cliffs
			// in both slab classes and a bursty shift from class 0 to class
			// 1 (Table 4, Figures 4 and 9).
			ID: 19, MemoryMB: mb(5), RequestShare: 0.013, HasCliff: true,
			Classes: []ClassSpec{
				{ValueSize: 256, Keys: k(13500), Weight: 0.6, Pattern: PatternScanZipf, ScanFraction: 0.92, ZipfS: 1.15},
				{ValueSize: 512, Keys: k(10000), Weight: 0.4, Pattern: PatternScanZipf, ScanFraction: 0.92, ZipfS: 1.15},
			},
			Phases: []Phase{
				{Fraction: 0.55, ClassWeights: []float64{0.9, 0.1}},
				{Fraction: 0.20, ClassWeights: []float64{0.15, 0.85}},
				{Fraction: 0.25, ClassWeights: []float64{0.6, 0.4}},
			},
		},
		{
			// App 20: small tail application.
			ID: 20, MemoryMB: mb(2), RequestShare: 0.012,
			Classes: []ClassSpec{
				{ValueSize: 256, Keys: k(6000), Weight: 1, Pattern: PatternZipf, ZipfS: 1.2},
			},
		},
	}
}

// MemcachierTopApps returns the first n applications of the synthetic
// Memcachier workload (the paper's Table 3 uses the top 5).
func MemcachierTopApps(scale float64, n int) []AppSpec {
	apps := MemcachierApps(scale)
	if n > len(apps) {
		n = len(apps)
	}
	return apps[:n]
}

// CliffAppIDs returns the IDs of the applications marked as having
// performance cliffs (the asterisked applications of Figures 2 and 6).
func CliffAppIDs(apps []AppSpec) []int {
	var ids []int
	for _, a := range apps {
		if a.HasCliff {
			ids = append(ids, a.ID)
		}
	}
	return ids
}

// AppByID returns the spec with the given ID and whether it exists.
func AppByID(apps []AppSpec, id int) (AppSpec, bool) {
	for _, a := range apps {
		if a.ID == id {
			return a, true
		}
	}
	return AppSpec{}, false
}
