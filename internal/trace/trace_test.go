package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if OpGet.String() != "get" || OpSet.String() != "set" || OpDelete.String() != "delete" {
		t.Fatalf("unexpected op strings: %v %v %v", OpGet, OpSet, OpDelete)
	}
	if !strings.HasPrefix(Op(9).String(), "op(") {
		t.Fatalf("unknown op should format as op(n)")
	}
}

func TestSliceSourceAndHelpers(t *testing.T) {
	reqs := []Request{
		{App: 1, Key: "a", Size: 10, Op: OpGet},
		{App: 2, Key: "b", Size: 20, Op: OpSet},
		{App: 1, Key: "c", Size: 30, Op: OpGet},
	}
	src := NewSliceSource(reqs)
	if src.Len() != 3 {
		t.Fatalf("Len = %d", src.Len())
	}
	got := Collect(src, 0)
	if len(got) != 3 || got[2].Key != "c" {
		t.Fatalf("Collect = %+v", got)
	}
	src.Reset()
	limited := Collect(NewLimitSource(src, 2), 0)
	if len(limited) != 2 {
		t.Fatalf("LimitSource yielded %d", len(limited))
	}
	src.Reset()
	app1 := Collect(NewFilterApp(src, 1), 0)
	if len(app1) != 2 || app1[0].Key != "a" || app1[1].Key != "c" {
		t.Fatalf("FilterApp = %+v", app1)
	}
	src.Reset()
	capped := Collect(src, 1)
	if len(capped) != 1 {
		t.Fatalf("Collect with max = %d entries", len(capped))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	reqs := []Request{
		{Time: 0.5, App: 3, Key: "a1.c0.k42", Size: 128, Op: OpGet},
		{Time: 1.25, App: 19, Key: "x", Size: 65536, Op: OpSet},
		{Time: 2.0, App: 7, Key: strings.Repeat("k", 300), Size: 1, Op: OpDelete},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range reqs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(reqs) {
		t.Fatalf("read %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("request %d round-trip mismatch: %+v != %+v", i, got[i], reqs[i])
		}
	}
}

func TestBinaryReaderRejectsGarbage(t *testing.T) {
	r := NewReader(bytes.NewBufferString("not a trace file at all"))
	if _, ok := r.Next(); ok {
		t.Fatalf("garbage input should not yield requests")
	}
	if r.Err() == nil {
		t.Fatalf("garbage input should set an error")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(times []float64, apps []uint8, sizes []uint16) bool {
		n := len(times)
		if len(apps) < n {
			n = len(apps)
		}
		if len(sizes) < n {
			n = len(sizes)
		}
		reqs := make([]Request, 0, n)
		for i := 0; i < n; i++ {
			tm := times[i]
			if math.IsNaN(tm) || math.IsInf(tm, 0) {
				tm = 0
			}
			reqs = append(reqs, Request{
				Time: tm,
				App:  int(apps[i]),
				Key:  KeyName(int(apps[i]), i%7, i),
				Size: int64(sizes[i]),
				Op:   Op(apps[i] % 3),
			})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range reqs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		if len(reqs) == 0 {
			return true
		}
		got := Collect(NewReader(&buf), 0)
		if len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	reqs := []Request{
		{Time: 1.5, App: 1, Key: "k1", Size: 64, Op: OpGet},
		{Time: 2.5, App: 2, Key: "k2", Size: 128, Op: OpSet},
	}
	var buf bytes.Buffer
	n, err := WriteCSV(&buf, NewSliceSource(reqs))
	if err != nil || n != 2 {
		t.Fatalf("WriteCSV = %d, %v", n, err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key != "k1" || got[1].Op != OpSet || got[1].Size != 128 {
		t.Fatalf("ReadCSV = %+v", got)
	}
	if _, err := ReadCSV(strings.NewReader("bad,line,here,not,valid\n")); err == nil {
		t.Fatalf("invalid CSV should error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := GeneratorConfig{
		Apps:     MemcachierApps(0.1),
		Requests: 5000,
		Seed:     99,
	}
	a := Collect(NewGenerator(cfg), 0)
	b := Collect(NewGenerator(cfg), 0)
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("generator emitted %d/%d requests, want 5000", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic generation at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed should produce a different stream.
	cfg.Seed = 100
	c := Collect(NewGenerator(cfg), 0)
	same := 0
	for i := range a {
		if a[i].Key == c[i].Key {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestGeneratorSharesAndTimestamps(t *testing.T) {
	apps := []AppSpec{
		{ID: 1, RequestShare: 0.8, MemoryMB: 1, Classes: []ClassSpec{{ValueSize: 64, Keys: 100, Weight: 1}}},
		{ID: 2, RequestShare: 0.2, MemoryMB: 1, Classes: []ClassSpec{{ValueSize: 64, Keys: 100, Weight: 1}}},
	}
	g := NewGenerator(GeneratorConfig{Apps: apps, Requests: 20000, Seed: 1, Duration: 100})
	counts := map[int]int{}
	lastTime := -1.0
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		counts[r.App]++
		if r.Time < lastTime {
			t.Fatalf("timestamps must be non-decreasing: %v after %v", r.Time, lastTime)
		}
		if r.Time < 0 || r.Time > 100 {
			t.Fatalf("timestamp %v outside duration", r.Time)
		}
		lastTime = r.Time
	}
	frac1 := float64(counts[1]) / 20000
	if math.Abs(frac1-0.8) > 0.03 {
		t.Fatalf("app 1 received %.3f of requests, want ~0.8", frac1)
	}
}

func TestGeneratorScanPatternCycles(t *testing.T) {
	apps := []AppSpec{
		{ID: 1, RequestShare: 1, MemoryMB: 1, Classes: []ClassSpec{
			{ValueSize: 64, Keys: 50, Weight: 1, Pattern: PatternScan},
		}},
	}
	g := NewGenerator(GeneratorConfig{Apps: apps, Requests: 150, Seed: 1})
	reqs := Collect(g, 0)
	// A pure scan visits keys 0..49 in order, repeatedly.
	for i, r := range reqs {
		want := KeyName(1, 0, i%50)
		if r.Key != want {
			t.Fatalf("request %d key %q, want %q", i, r.Key, want)
		}
	}
}

func TestGeneratorPhasesShiftMix(t *testing.T) {
	apps := []AppSpec{
		{ID: 1, RequestShare: 1, MemoryMB: 1,
			Classes: []ClassSpec{
				{ValueSize: 64, Keys: 100, Weight: 0.5},
				{ValueSize: 128, Keys: 100, Weight: 0.5},
			},
			Phases: []Phase{
				{Fraction: 0.5, ClassWeights: []float64{1, 0}},
				{Fraction: 0.5, ClassWeights: []float64{0, 1}},
			},
		},
	}
	g := NewGenerator(GeneratorConfig{Apps: apps, Requests: 10000, Seed: 2})
	reqs := Collect(g, 0)
	firstHalfClass0, secondHalfClass0 := 0, 0
	for i, r := range reqs {
		isClass0 := strings.Contains(r.Key, ".c0.")
		if i < len(reqs)/2 && isClass0 {
			firstHalfClass0++
		}
		if i >= len(reqs)/2 && isClass0 {
			secondHalfClass0++
		}
	}
	if firstHalfClass0 < 4500 {
		t.Fatalf("phase 1 should be dominated by class 0, got %d/5000", firstHalfClass0)
	}
	if secondHalfClass0 > 500 {
		t.Fatalf("phase 2 should be dominated by class 1, got %d class-0 requests", secondHalfClass0)
	}
}

func TestMemcachierSpecShape(t *testing.T) {
	apps := MemcachierApps(1.0)
	if len(apps) != 20 {
		t.Fatalf("expected 20 applications, got %d", len(apps))
	}
	seen := map[int]bool{}
	for _, a := range apps {
		if a.ID < 1 || a.ID > 20 || seen[a.ID] {
			t.Fatalf("bad or duplicate app ID %d", a.ID)
		}
		seen[a.ID] = true
		if a.MemoryMB <= 0 || len(a.Classes) == 0 {
			t.Fatalf("app %d has no memory or classes", a.ID)
		}
		for _, c := range a.Classes {
			if c.Keys <= 0 || c.ValueSize <= 0 {
				t.Fatalf("app %d has invalid class %+v", a.ID, c)
			}
		}
	}
	cliffs := CliffAppIDs(apps)
	want := []int{1, 7, 10, 11, 18, 19}
	if len(cliffs) != len(want) {
		t.Fatalf("cliff apps = %v, want %v", cliffs, want)
	}
	for i := range want {
		if cliffs[i] != want[i] {
			t.Fatalf("cliff apps = %v, want %v", cliffs, want)
		}
	}
	if _, ok := AppByID(apps, 19); !ok {
		t.Fatalf("AppByID(19) should exist")
	}
	if _, ok := AppByID(apps, 99); ok {
		t.Fatalf("AppByID(99) should not exist")
	}
	if top := MemcachierTopApps(1.0, 5); len(top) != 5 || top[4].ID != 5 {
		t.Fatalf("MemcachierTopApps(5) = %d apps", len(top))
	}
	if top := MemcachierTopApps(1.0, 99); len(top) != 20 {
		t.Fatalf("MemcachierTopApps should clamp to 20")
	}
}

func TestMemcachierScaleClamp(t *testing.T) {
	tiny := MemcachierApps(0.0001)
	for _, a := range tiny {
		if a.MemoryMB < 1 {
			t.Fatalf("scaled memory must stay >= 1 MiB")
		}
		for _, c := range a.Classes {
			if c.Keys < 16 {
				t.Fatalf("scaled key space must stay >= 16")
			}
		}
	}
}

func TestFacebookGeneratorDistributions(t *testing.T) {
	g := NewFacebookGenerator(FacebookConfig{Requests: 20000, Seed: 5, Keys: 10000})
	gets, sets := 0, 0
	var valueSum float64
	var large int
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		switch r.Op {
		case OpGet:
			gets++
		case OpSet:
			sets++
		}
		if len(r.Key) < 16 || len(r.Key) > 48 {
			t.Fatalf("key length %d outside [16,48]", len(r.Key))
		}
		if r.Size < 32 || r.Size > 1<<20 {
			t.Fatalf("value size %d outside bounds", r.Size)
		}
		if r.Size > 4096 {
			large++
		}
		valueSum += float64(r.Size)
	}
	frac := float64(gets) / float64(gets+sets)
	if math.Abs(frac-0.967) > 0.01 {
		t.Fatalf("GET fraction = %.3f, want ~0.967", frac)
	}
	mean := valueSum / 20000
	if mean < 64 || mean > 8192 {
		t.Fatalf("mean value size %.1f outside plausible range", mean)
	}
	if large == 0 {
		t.Fatalf("value-size distribution should have a heavy tail")
	}
}

func TestFacebookUniqueKeysAllMiss(t *testing.T) {
	g := NewFacebookGenerator(FacebookConfig{Requests: 5000, Seed: 1, UniqueKeys: true})
	seen := map[string]bool{}
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if seen[r.Key] {
			t.Fatalf("unique-key workload repeated key %q", r.Key)
		}
		seen[r.Key] = true
	}
	if len(seen) != 5000 {
		t.Fatalf("expected 5000 unique keys, got %d", len(seen))
	}
}

func TestGetSetMix(t *testing.T) {
	cfg := GetSetMix(0.5, 100, 3)
	if cfg.GetFraction != 0.5 || cfg.Requests != 100 {
		t.Fatalf("GetSetMix = %+v", cfg)
	}
}

func TestSampleDistributionsDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if SampleFacebookKeySize(a) != SampleFacebookKeySize(b) {
			t.Fatalf("key size sampling not deterministic")
		}
		if SampleFacebookValueSize(a) != SampleFacebookValueSize(b) {
			t.Fatalf("value size sampling not deterministic")
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(GeneratorConfig{Apps: MemcachierApps(0.2), Requests: int64(b.N) + 1, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatalf("generator exhausted early")
		}
	}
}

func BenchmarkFacebookGeneratorNext(b *testing.B) {
	g := NewFacebookGenerator(FacebookConfig{Requests: int64(b.N) + 1, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatalf("generator exhausted early")
		}
	}
}
