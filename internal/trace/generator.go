package trace

import (
	"fmt"
	"math/rand"
	"sort"
)

// AccessPattern selects how keys within a class are drawn.
type AccessPattern int

const (
	// PatternZipf draws keys from a Zipf distribution over the class's key
	// space; it produces concave hit-rate curves.
	PatternZipf AccessPattern = iota
	// PatternScan cycles sequentially through the class's key space; it
	// produces the step-shaped hit-rate curves (performance cliffs) of
	// §3.5 — with LRU, a scan over N keys hits 0% below N and ~100% at N.
	PatternScan
	// PatternScanZipf mixes a sequential scan with a Zipfian foreground:
	// ScanFraction of requests follow the scan, the rest are Zipfian. The
	// resulting curve has a concave head followed by a cliff.
	PatternScanZipf
	// PatternUniform draws keys uniformly at random from the class's key
	// space; it produces a nearly linear hit-rate curve, so the hit rate is
	// directly proportional to the memory the class receives.
	PatternUniform
)

// ClassSpec describes one slab class (one value-size range) of a synthetic
// application.
type ClassSpec struct {
	// ValueSize is the value size in bytes for items of this class. All
	// items of a class share the same size so the class maps to exactly
	// one slab class under any geometry.
	ValueSize int64
	// Keys is the number of distinct keys in the class.
	Keys int
	// Weight is the fraction of the application's requests that target
	// this class (weights are normalized internally).
	Weight float64
	// Pattern selects the access pattern.
	Pattern AccessPattern
	// ZipfS is the Zipf exponent (>1); zero defaults to 1.1.
	ZipfS float64
	// ScanFraction is the fraction of requests that follow the sequential
	// scan when Pattern is PatternScanZipf (default 0.8).
	ScanFraction float64
	// SetFraction is the fraction of requests that are explicit SETs
	// (writes of new versions). Default 0 — the simulator performs demand
	// fills on GET misses regardless.
	SetFraction float64
}

// Phase describes a time interval during which an application uses a
// particular mix of class weights, enabling the bursty workload changes that
// hill climbing responds to (Table 4, Figure 8).
type Phase struct {
	// Fraction is the fraction of the application's requests emitted during
	// this phase. Fractions are normalized internally.
	Fraction float64
	// ClassWeights overrides the per-class weights during the phase. A nil
	// entry keeps the class's default weight; the slice may be shorter than
	// the class list.
	ClassWeights []float64
}

// AppSpec describes one synthetic application (tenant).
type AppSpec struct {
	// ID is the application identifier (1-based to match the paper).
	ID int
	// MemoryMB is the memory the application reserved on the server, in
	// MiB. The simulator uses it as the app's budget.
	MemoryMB int64
	// RequestShare is the application's share of the overall request
	// stream (normalized internally).
	RequestShare float64
	// Classes lists the application's slab-class mixes.
	Classes []ClassSpec
	// Phases optionally splits the trace into consecutive phases with
	// different class weights. Empty means a single uniform phase.
	Phases []Phase
	// HasCliff marks applications expected to exhibit performance cliffs
	// (annotated with an asterisk in the paper's figures). It is metadata
	// for reporting only.
	HasCliff bool
}

// KeyName returns the canonical key for item i of class c in app a. Keys are
// globally unique across applications and classes.
func KeyName(app, class, i int) string {
	return fmt.Sprintf("a%d.c%d.k%d", app, class, i)
}

// GeneratorConfig configures the synthetic workload generator.
type GeneratorConfig struct {
	// Apps lists the applications in the workload.
	Apps []AppSpec
	// Requests is the total number of requests to emit.
	Requests int64
	// Duration is the simulated wall-clock duration of the trace in
	// seconds (timestamps are spread uniformly). Default 604800 (one week),
	// matching the Memcachier trace length.
	Duration float64
	// Seed seeds the deterministic random source.
	Seed int64
}

// Generator produces a deterministic synthetic request stream. It implements
// Source.
type Generator struct {
	cfg      GeneratorConfig
	rng      *rand.Rand
	emitted  int64
	appPick  []float64 // cumulative request-share distribution
	appState []*appState
}

type appState struct {
	spec    AppSpec
	classes []*classState
	// phaseBoundaries are cumulative per-app request fractions at which
	// phases end.
	phaseBoundaries []float64
	emitted         int64
	expectedTotal   float64
}

type classState struct {
	spec    ClassSpec
	zipf    *rand.Zipf
	scanPos int
}

// NewGenerator builds a generator from cfg. It panics if cfg has no apps or
// non-positive request count, since that is a programming error in the
// experiment definitions.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if len(cfg.Apps) == 0 {
		panic("trace: generator needs at least one app")
	}
	if cfg.Requests <= 0 {
		panic("trace: generator needs a positive request count")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 604800
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}

	var shareSum float64
	for _, a := range cfg.Apps {
		shareSum += a.RequestShare
	}
	if shareSum <= 0 {
		shareSum = float64(len(cfg.Apps))
	}
	cum := 0.0
	for _, a := range cfg.Apps {
		share := a.RequestShare
		if share <= 0 {
			share = 1
		}
		cum += share / shareSum
		g.appPick = append(g.appPick, cum)

		st := &appState{spec: a, expectedTotal: float64(cfg.Requests) * share / shareSum}
		for ci, c := range a.Classes {
			cs := &classState{spec: c}
			s := c.ZipfS
			if s <= 1 {
				s = 1.1
			}
			if c.Keys <= 0 {
				panic(fmt.Sprintf("trace: app %d class %d has no keys", a.ID, ci))
			}
			cs.zipf = rand.NewZipf(g.rng, s, 1, uint64(c.Keys-1))
			st.classes = append(st.classes, cs)
		}
		// Phase boundaries.
		if len(a.Phases) > 0 {
			var fsum float64
			for _, p := range a.Phases {
				fsum += p.Fraction
			}
			if fsum <= 0 {
				fsum = float64(len(a.Phases))
			}
			acc := 0.0
			for _, p := range a.Phases {
				f := p.Fraction
				if f <= 0 {
					f = 1
				}
				acc += f / fsum
				st.phaseBoundaries = append(st.phaseBoundaries, acc)
			}
		}
		g.appState = append(g.appState, st)
	}
	return g
}

// Next implements Source.
func (g *Generator) Next() (Request, bool) {
	if g.emitted >= g.cfg.Requests {
		return Request{}, false
	}
	t := g.cfg.Duration * float64(g.emitted) / float64(g.cfg.Requests)
	g.emitted++

	// Pick an application by request share.
	u := g.rng.Float64()
	ai := sort.SearchFloat64s(g.appPick, u)
	if ai >= len(g.appState) {
		ai = len(g.appState) - 1
	}
	st := g.appState[ai]
	st.emitted++

	// Determine the app's current phase by its own progress.
	weights := g.classWeights(st)

	// Pick a class by weight.
	ci := pickWeighted(g.rng, weights)
	cs := st.classes[ci]
	spec := cs.spec

	// Pick a key according to the class pattern.
	var idx int
	switch spec.Pattern {
	case PatternUniform:
		idx = g.rng.Intn(spec.Keys)
	case PatternScan:
		idx = cs.scanPos
		cs.scanPos = (cs.scanPos + 1) % spec.Keys
	case PatternScanZipf:
		frac := spec.ScanFraction
		if frac <= 0 {
			frac = 0.8
		}
		if g.rng.Float64() < frac {
			idx = cs.scanPos
			cs.scanPos = (cs.scanPos + 1) % spec.Keys
		} else {
			idx = int(cs.zipf.Uint64())
		}
	default:
		idx = int(cs.zipf.Uint64())
	}

	op := OpGet
	if spec.SetFraction > 0 && g.rng.Float64() < spec.SetFraction {
		op = OpSet
	}
	return Request{
		Time: t,
		App:  st.spec.ID,
		Key:  KeyName(st.spec.ID, ci, idx),
		Size: spec.ValueSize,
		Op:   op,
	}, true
}

// classWeights returns the effective class weights for the app's current
// phase.
func (g *Generator) classWeights(st *appState) []float64 {
	weights := make([]float64, len(st.classes))
	for i, cs := range st.classes {
		weights[i] = cs.spec.Weight
		if weights[i] <= 0 {
			weights[i] = 1
		}
	}
	if len(st.phaseBoundaries) == 0 {
		return weights
	}
	progress := 0.0
	if st.expectedTotal > 0 {
		progress = float64(st.emitted) / st.expectedTotal
	}
	phase := sort.SearchFloat64s(st.phaseBoundaries, progress)
	if phase >= len(st.spec.Phases) {
		phase = len(st.spec.Phases) - 1
	}
	for i, w := range st.spec.Phases[phase].ClassWeights {
		if i < len(weights) && w >= 0 {
			weights[i] = w
		}
	}
	return weights
}

// Emitted reports the number of requests generated so far.
func (g *Generator) Emitted() int64 { return g.emitted }

// pickWeighted returns an index drawn proportionally to weights. Zero or
// negative weights are treated as zero; if all weights are zero the first
// index is returned.
func pickWeighted(rng *rand.Rand, weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		return 0
	}
	u := rng.Float64() * sum
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u <= acc {
			return i
		}
	}
	return len(weights) - 1
}
