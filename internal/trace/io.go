package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// The binary format is a sequence of fixed-header records:
//
//	magic   [4]byte "CLFT" (file header only)
//	version uint16  (file header only)
//	record:
//	  time    float64 (LittleEndian bits)
//	  app     uint32
//	  op      uint8
//	  size    uint32
//	  keyLen  uint16
//	  key     [keyLen]byte
//
// It is compact enough for multi-hundred-million request traces and avoids
// any third-party dependency.

var binaryMagic = [4]byte{'C', 'L', 'F', 'T'}

const binaryVersion = 1

// SniffBinary reports whether prefix (at least the first 4 bytes of a file)
// starts with the binary trace magic, so callers can pick between the binary
// and CSV readers without trial parsing.
func SniffBinary(prefix []byte) bool {
	return len(prefix) >= 4 && [4]byte(prefix[:4]) == binaryMagic
}

// Writer serializes requests to the binary trace format.
type Writer struct {
	w       *bufio.Writer
	wrote   bool
	count   int64
	scratch [23]byte
}

// NewWriter returns a Writer emitting the binary trace format to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<20)}
}

// Write appends one request.
func (tw *Writer) Write(r Request) error {
	if !tw.wrote {
		if _, err := tw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		var ver [2]byte
		binary.LittleEndian.PutUint16(ver[:], binaryVersion)
		if _, err := tw.w.Write(ver[:]); err != nil {
			return err
		}
		tw.wrote = true
	}
	if len(r.Key) > math.MaxUint16 {
		return fmt.Errorf("trace: key longer than %d bytes", math.MaxUint16)
	}
	b := tw.scratch[:]
	binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(r.Time))
	binary.LittleEndian.PutUint32(b[8:12], uint32(r.App))
	b[12] = byte(r.Op)
	binary.LittleEndian.PutUint32(b[13:17], uint32(r.Size))
	binary.LittleEndian.PutUint16(b[17:19], uint16(len(r.Key)))
	if _, err := tw.w.Write(b[:19]); err != nil {
		return err
	}
	if _, err := tw.w.WriteString(r.Key); err != nil {
		return err
	}
	tw.count++
	return nil
}

// Count reports the number of requests written so far.
func (tw *Writer) Count() int64 { return tw.count }

// Flush flushes buffered data to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader reads requests from the binary trace format. It implements Source.
type Reader struct {
	r       *bufio.Reader
	started bool
	err     error
}

// NewReader returns a Reader decoding the binary trace format from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<20)}
}

// Err returns the first error encountered other than io.EOF.
func (tr *Reader) Err() error { return tr.err }

// Next implements Source.
func (tr *Reader) Next() (Request, bool) {
	if tr.err != nil {
		return Request{}, false
	}
	if !tr.started {
		var hdr [6]byte
		if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
			tr.setErr(err)
			return Request{}, false
		}
		if [4]byte(hdr[:4]) != binaryMagic {
			tr.err = fmt.Errorf("trace: bad magic %q", hdr[:4])
			return Request{}, false
		}
		if v := binary.LittleEndian.Uint16(hdr[4:6]); v != binaryVersion {
			tr.err = fmt.Errorf("trace: unsupported version %d", v)
			return Request{}, false
		}
		tr.started = true
	}
	var rec [19]byte
	if _, err := io.ReadFull(tr.r, rec[:]); err != nil {
		tr.setErr(err)
		return Request{}, false
	}
	keyLen := binary.LittleEndian.Uint16(rec[17:19])
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(tr.r, key); err != nil {
		tr.setErr(err)
		return Request{}, false
	}
	return Request{
		Time: math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8])),
		App:  int(binary.LittleEndian.Uint32(rec[8:12])),
		Op:   Op(rec[12]),
		Size: int64(binary.LittleEndian.Uint32(rec[13:17])),
		Key:  string(key),
	}, true
}

func (tr *Reader) setErr(err error) {
	if err != io.EOF && err != io.ErrUnexpectedEOF {
		tr.err = err
	}
}

// WriteCSV writes requests from src to w in a human-readable CSV format:
// time,app,op,size,key. It returns the number of requests written.
func WriteCSV(w io.Writer, src Source) (int64, error) {
	cw := csv.NewWriter(w)
	var n int64
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		rec := []string{
			strconv.FormatFloat(r.Time, 'f', 3, 64),
			strconv.Itoa(r.App),
			r.Op.String(),
			strconv.FormatInt(r.Size, 10),
			r.Key,
		}
		if err := cw.Write(rec); err != nil {
			return n, err
		}
		n++
	}
	cw.Flush()
	return n, cw.Error()
}

// ReadCSV parses the CSV format produced by WriteCSV.
func ReadCSV(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	var out []Request
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return out, fmt.Errorf("trace: bad time %q: %v", rec[0], err)
		}
		app, err := strconv.Atoi(rec[1])
		if err != nil {
			return out, fmt.Errorf("trace: bad app %q: %v", rec[1], err)
		}
		var op Op
		switch rec[2] {
		case "get":
			op = OpGet
		case "set":
			op = OpSet
		case "delete":
			op = OpDelete
		default:
			return out, fmt.Errorf("trace: bad op %q", rec[2])
		}
		size, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return out, fmt.Errorf("trace: bad size %q: %v", rec[3], err)
		}
		out = append(out, Request{Time: t, App: app, Op: op, Size: size, Key: rec[4]})
	}
}
