package trace

import (
	"math"
	"math/rand"
)

// This file models the Facebook ETC-style workload used for the paper's
// micro-benchmarks (§5.6). The paper drove its prototype with Mutilate, a
// load generator that reproduces the key-size, value-size and GET/SET-ratio
// distributions measured in the 2012 Facebook Memcached study (Atikoglu et
// al., SIGMETRICS '12). We approximate those distributions with simple
// parametric forms that match the study's headline statistics:
//
//   - key sizes cluster between 20 and 45 bytes with a mean around 30-35;
//   - value sizes are heavy-tailed (most values are small, a few are large);
//     we use a bounded Pareto with the study's reported median (~125 B);
//   - the ETC pool's GET:SET ratio is roughly 30:1 (we use 96.7% GETs as in
//     Table 7 of the Cliffhanger paper).

// FacebookConfig parameterizes the Facebook-style workload.
type FacebookConfig struct {
	// Keys is the number of distinct keys.
	Keys int
	// GetFraction is the fraction of requests that are GETs (default 0.967,
	// the ratio the paper uses for Table 7's first row).
	GetFraction float64
	// ZipfS is the key-popularity skew (default 1.01, close to the
	// literature's estimates for Facebook workloads).
	ZipfS float64
	// UniqueKeys, when true, makes every request reference a brand-new key
	// so that every GET misses — the worst-case overhead scenario of
	// Table 6 ("synthetic trace where all keys are unique and all queries
	// miss the cache").
	UniqueKeys bool
	// Requests is the number of requests to emit.
	Requests int64
	// Seed seeds the deterministic random source.
	Seed int64
	// App is the application ID stamped on requests (default 1).
	App int
}

// FacebookGenerator produces a Facebook-style request stream. It implements
// Source.
type FacebookGenerator struct {
	cfg     FacebookConfig
	rng     *rand.Rand
	zipf    *rand.Zipf
	emitted int64
	unique  int64
}

// NewFacebookGenerator returns a generator for the Facebook-style workload.
func NewFacebookGenerator(cfg FacebookConfig) *FacebookGenerator {
	if cfg.Keys <= 0 {
		cfg.Keys = 1 << 20
	}
	if cfg.GetFraction <= 0 {
		cfg.GetFraction = 0.967
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.01
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1 << 20
	}
	if cfg.App == 0 {
		cfg.App = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &FacebookGenerator{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1)),
	}
}

// Next implements Source.
func (g *FacebookGenerator) Next() (Request, bool) {
	if g.emitted >= g.cfg.Requests {
		return Request{}, false
	}
	t := float64(g.emitted) / 10000.0
	g.emitted++

	var idx int64
	if g.cfg.UniqueKeys {
		idx = g.unique
		g.unique++
	} else {
		idx = int64(g.zipf.Uint64())
	}
	op := OpGet
	if g.rng.Float64() >= g.cfg.GetFraction {
		op = OpSet
	}
	return Request{
		Time: t,
		App:  g.cfg.App,
		Key:  facebookKey(g.cfg.App, idx, g.rng),
		Size: SampleFacebookValueSize(g.rng),
		Op:   op,
	}, true
}

// facebookKey builds a key whose length follows the key-size distribution.
// The numeric identifier is embedded so keys stay unique and deterministic;
// padding brings the key to the sampled length.
func facebookKey(app int, idx int64, rng *rand.Rand) string {
	base := KeyName(app, 0, int(idx))
	want := int(SampleFacebookKeySize(rng))
	for len(base) < want {
		base += "x"
	}
	return base
}

// SampleFacebookKeySize draws a key size in bytes from the approximated
// Facebook distribution: 20-45 bytes, mode near 30.
func SampleFacebookKeySize(rng *rand.Rand) int64 {
	// Triangular distribution on [16, 48] with mode 30.
	const lo, mode, hi = 16.0, 30.0, 48.0
	u := rng.Float64()
	fc := (mode - lo) / (hi - lo)
	var v float64
	if u < fc {
		v = lo + math.Sqrt(u*(hi-lo)*(mode-lo))
	} else {
		v = hi - math.Sqrt((1-u)*(hi-lo)*(hi-mode))
	}
	return int64(v)
}

// SampleFacebookValueSize draws a value size in bytes from a bounded Pareto
// approximating the ETC value-size distribution: median ~125 B, heavy tail
// capped at 1 MiB.
func SampleFacebookValueSize(rng *rand.Rand) int64 {
	const (
		xmin  = 32.0
		alpha = 1.0 // shape: median = xmin * 2^(1/alpha) ≈ 64... tuned below
		xmax  = 1 << 20
	)
	// Inverse-CDF sampling of a bounded Pareto.
	u := rng.Float64()
	num := 1 - u*(1-math.Pow(xmin/xmax, alpha))
	v := xmin / math.Pow(num, 1/alpha)
	// Shift the distribution so the median lands near 125 B.
	v *= 2
	if v > xmax {
		v = xmax
	}
	return int64(v)
}

// GetSetMix returns a FacebookConfig with the given GET fraction, matching
// the rows of Table 7 (96.7/3.3, 50/50, 10/90).
func GetSetMix(getFraction float64, requests int64, seed int64) FacebookConfig {
	return FacebookConfig{
		GetFraction: getFraction,
		Requests:    requests,
		Seed:        seed,
		Keys:        1 << 18,
	}
}
