package workload

import "time"

// Pacer schedules an open-loop request stream at a fixed aggregate rate. A
// closed-loop driver's offered load collapses to whatever the server
// sustains, and server-side queueing hides from its latency numbers
// (coordinated omission); an open-loop driver instead injects on a
// wall-clock schedule and measures each request's latency from its scheduled
// send time, so queueing delay under load shows up in the tail. The pacer is
// the schedule: one goroutine (cliffbench's feeder) reserves slots for each
// batch it hands out, and workers sleep until — or measure from — the
// returned deadline.
type Pacer struct {
	start    time.Time
	interval time.Duration
	issued   int64
}

// NewPacer returns a pacer issuing perSecond requests per second starting at
// start. It panics on a non-positive rate (a flag-validation bug in the
// caller).
func NewPacer(start time.Time, perSecond float64) *Pacer {
	if perSecond <= 0 {
		panic("workload: pacer rate must be positive")
	}
	return &Pacer{start: start, interval: time.Duration(float64(time.Second) / perSecond)}
}

// Next reserves the next n slots of the schedule and returns the send
// deadline of the first. The caller sleeps until the deadline (or sends
// immediately when already behind) and records latency from it. Not safe for
// concurrent use; the single feeder goroutine owns the pacer.
func (p *Pacer) Next(n int) time.Time {
	due := p.start.Add(time.Duration(p.issued) * p.interval)
	p.issued += int64(n)
	return due
}

// Rate returns the configured rate in requests per second.
func (p *Pacer) Rate() float64 {
	return float64(time.Second) / float64(p.interval)
}
