// Package workload puts every request source the repository knows behind the
// single trace.Source interface and gives the binaries one way to open them:
// the classic cliffbench Zipf sampler (now supporting any skew s > 0 via
// rejection-inversion sampling), the synthetic Memcachier 20-application
// generator, the Facebook-ETC generator, and recorded trace files in the
// binary or CSV formats of trace/io. The paper's evaluation is trace replay
// against a live multi-tenant server; this package is what lets the load
// generator and the sim-vs-wire verification harness (verify.go) drive those
// workloads over a real socket instead of only inside internal/sim.
//
// Open("memcachier", ...) also surfaces the tenant layout the trace
// addresses, so callers can map application IDs onto real server tenants
// (sim.TenantName) and print the matching cliffhangerd -tenants flag
// (TenantSpec). Pacer schedules open-loop (fixed-rate) injection so latency
// under load is measured from scheduled send times, not from whenever the
// closed loop got around to sending.
package workload

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"cliffhanger/internal/sim"
	"cliffhanger/internal/trace"
)

// DefaultRequests bounds synthetic sources when Options.Requests is unset.
// It is effectively "unbounded" for duration-limited load runs.
const DefaultRequests = int64(1) << 40

// DefaultZipfKeys is the zipf source's key-space size when Options.Keys is
// unset.
const DefaultZipfKeys = 100000

// Options parameterizes Open. The zero value is usable: each field falls
// back to the underlying source's default.
type Options struct {
	// Requests bounds the stream; <= 0 means DefaultRequests for synthetic
	// sources and the whole file for file traces.
	Requests int64
	// Seed seeds the deterministic random sources.
	Seed int64
	// Keys is the key-space size; 0 means the source's own default
	// (DefaultZipfKeys for zipf, 1<<20 for facebook).
	Keys int
	// ZipfS is the zipf source's skew; any value > 0 (default 1.1).
	ZipfS float64
	// ValueSize is the zipf source's value size in bytes (default 256).
	ValueSize int
	// GetFraction is the share of GETs for the zipf and Facebook sources
	// (defaults 0.9 and 0.967 respectively).
	GetFraction float64
	// Scale multiplies the Memcachier workload's memory budgets and key
	// spaces (default 1.0).
	Scale float64
	// MemoryMB is the tenant reservation attributed to the single-app
	// sources (zipf, facebook) in the layout Open reports (default 64).
	MemoryMB int64
}

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = DefaultRequests
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.1
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 256
	}
	if o.GetFraction <= 0 {
		o.GetFraction = 0.9
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.MemoryMB <= 0 {
		o.MemoryMB = 64
	}
	return o
}

// Workload couples an opened Source with the tenant layout it implies.
type Workload struct {
	// Name is the normalized source name: "zipf", "facebook", "memcachier"
	// or "file".
	Name string
	// Source yields the request stream. Not safe for concurrent use.
	Source trace.Source
	// Apps is the application layout the trace addresses — the 20-app
	// Memcachier specification, or a single-app spec for zipf/facebook. Nil
	// for file traces, whose app population is unknown without a scan.
	Apps []trace.AppSpec

	errFn   func() error
	closeFn func() error
}

// Err reports a deferred source error (a corrupt or truncated trace file);
// call it once the source is exhausted. Always nil for synthetic sources.
func (w *Workload) Err() error {
	if w.errFn != nil {
		return w.errFn()
	}
	return nil
}

// Close releases the underlying file, if any.
func (w *Workload) Close() error {
	if w.closeFn != nil {
		return w.closeFn()
	}
	return nil
}

// Open builds the workload named by spec: "zipf", "facebook", "memcachier",
// or "file:<path>" for a recorded trace (binary trace/io format, sniffed by
// magic, or the CSV format, which is loaded into memory). Opening the same
// spec with the same Options twice yields identically-seeded streams — the
// property the sim-vs-wire cross-check depends on.
func Open(spec string, o Options) (*Workload, error) {
	o = o.withDefaults()
	if path, ok := strings.CutPrefix(spec, "file:"); ok {
		return openFile(path, o)
	}
	switch spec {
	case "zipf":
		if o.Keys <= 0 {
			o.Keys = DefaultZipfKeys
		}
		rng := rand.New(rand.NewSource(o.Seed))
		return &Workload{
			Name: "zipf",
			Source: &zipfSource{
				o:   o,
				rng: rng,
				z:   NewZipf(rng, o.ZipfS, uint64(o.Keys)),
			},
			Apps: []trace.AppSpec{{ID: 1, MemoryMB: o.MemoryMB, RequestShare: 1}},
		}, nil
	case "facebook":
		cfg := trace.FacebookConfig{
			Keys:        o.Keys, // 0 = the generator's own default
			GetFraction: o.GetFraction,
			Requests:    o.Requests,
			Seed:        o.Seed,
		}
		return &Workload{
			Name:   "facebook",
			Source: trace.NewFacebookGenerator(cfg),
			Apps:   []trace.AppSpec{{ID: 1, MemoryMB: o.MemoryMB, RequestShare: 1}},
		}, nil
	case "memcachier":
		apps := trace.MemcachierApps(o.Scale)
		return &Workload{
			Name: "memcachier",
			Source: trace.NewGenerator(trace.GeneratorConfig{
				Apps:     apps,
				Requests: o.Requests,
				Seed:     o.Seed,
			}),
			Apps: apps,
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown trace %q (want zipf, facebook, memcachier or file:<path>)", spec)
	}
}

// openFile opens a recorded trace, sniffing the binary format's magic and
// falling back to CSV.
func openFile(path string, o Options) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	head, err := br.Peek(4)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("workload: reading %s: %v", path, err)
	}
	w := &Workload{Name: "file", closeFn: f.Close}
	if trace.SniffBinary(head) {
		r := trace.NewReader(br)
		w.Source = r
		w.errFn = r.Err
	} else {
		reqs, err := trace.ReadCSV(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("workload: parsing %s as CSV: %v", path, err)
		}
		w.Source = trace.NewSliceSource(reqs)
	}
	if o.Requests > 0 && o.Requests != DefaultRequests {
		w.Source = trace.NewLimitSource(w.Source, int(o.Requests))
	}
	return w, nil
}

// zipfSource is the classic cliffbench workload as a Source: GETs over a
// fixed key space with Zipf(s) popularity for any s > 0, and explicit SETs
// for the non-GET share. Misses are expected to be demand-filled by the
// replayer, like every other source.
type zipfSource struct {
	o       Options
	rng     *rand.Rand
	z       *Zipf
	emitted int64
}

// Next implements trace.Source.
func (s *zipfSource) Next() (trace.Request, bool) {
	if s.emitted >= s.o.Requests {
		return trace.Request{}, false
	}
	t := float64(s.emitted) / 10000.0
	s.emitted++
	op := trace.OpGet
	if s.rng.Float64() >= s.o.GetFraction {
		op = trace.OpSet
	}
	return trace.Request{
		Time: t,
		App:  1,
		Key:  ZipfKey(int(s.z.Uint64())),
		Size: int64(s.o.ValueSize),
		Op:   op,
	}, true
}

// ZipfKey is the canonical key for rank i of the zipf source's key space
// (shared with cliffbench's warmup pass).
func ZipfKey(i int) string { return "bench-" + strconv.Itoa(i) }

// TenantName is the server tenant name for application id — re-exported
// from sim so trace replayers need not import the simulator.
func TenantName(app int) string { return sim.TenantName(app) }

// TenantSpec renders an application layout as the name:MB list that
// cliffhangerd's -tenants flag takes (e.g. "app1:48,app2:3,..."), so a
// server can be started with exactly the tenants a trace addresses. Names
// come from sim.TenantName, the same mapping the replayer and the
// cross-check harness use.
func TenantSpec(apps []trace.AppSpec) string {
	var b strings.Builder
	for i, a := range apps {
		if i > 0 {
			b.WriteByte(',')
		}
		mb := a.MemoryMB
		if mb < 1 {
			mb = 1
		}
		fmt.Fprintf(&b, "%s:%d", sim.TenantName(a.ID), mb)
	}
	return b.String()
}
