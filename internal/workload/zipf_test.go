package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfSupportsLowSkew is the regression test for the -zipf <= 1
// limitation: the rejection-inversion sampler must produce a sane, skewed
// distribution for exponents math/rand.Zipf rejects (real cache workloads
// sit around s ≈ 0.9–1.0).
func TestZipfSupportsLowSkew(t *testing.T) {
	for _, s := range []float64{0.5, 0.9, 1.0, 1.1, 1.4} {
		const n = 1000
		z := NewZipf(rand.New(rand.NewSource(1)), s, n)
		freq := make([]int, n)
		const samples = 200000
		for i := 0; i < samples; i++ {
			r := z.Uint64()
			if r >= n {
				t.Fatalf("s=%v: sample %d out of range [0,%d)", s, r, n)
			}
			freq[r]++
		}
		if !(freq[0] > freq[10] && freq[10] > freq[100]) {
			t.Fatalf("s=%v: frequencies not decreasing: f(0)=%d f(10)=%d f(100)=%d",
				s, freq[0], freq[10], freq[100])
		}
		// The head probability ratio p(1)/p(2) must track 2^s.
		got := float64(freq[0]) / float64(freq[1])
		want := math.Pow(2, s)
		if math.Abs(got-want)/want > 0.10 {
			t.Fatalf("s=%v: p(1)/p(2) = %.3f, want ~%.3f", s, got, want)
		}
	}
}

// TestZipfSkewOrdersMeanRank pins the qualitative effect of the exponent:
// more skew concentrates mass on the popular head, so the mean sampled rank
// must shrink as s grows.
func TestZipfSkewOrdersMeanRank(t *testing.T) {
	mean := func(s float64) float64 {
		z := NewZipf(rand.New(rand.NewSource(7)), s, 1<<16)
		var sum float64
		const samples = 50000
		for i := 0; i < samples; i++ {
			sum += float64(z.Uint64())
		}
		return sum / samples
	}
	lo, mid, hi := mean(0.7), mean(1.0), mean(1.3)
	if !(lo > mid && mid > hi) {
		t.Fatalf("mean rank should fall with skew: s=0.7→%.1f s=1.0→%.1f s=1.3→%.1f", lo, mid, hi)
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(rand.New(rand.NewSource(42)), 0.95, 10000)
	b := NewZipf(rand.New(rand.NewSource(42)), 0.95, 10000)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("sample %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestZipfRejectsBadParameters(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	rng := rand.New(rand.NewSource(1))
	expectPanic("s=0", func() { NewZipf(rng, 0, 10) })
	expectPanic("s<0", func() { NewZipf(rng, -1, 10) })
	expectPanic("n=0", func() { NewZipf(rng, 1.1, 0) })
}

// TestZipfSingleElement checks the degenerate one-key range: every sample
// must be rank 0.
func TestZipfSingleElement(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(3)), 0.9, 1)
	for i := 0; i < 100; i++ {
		if r := z.Uint64(); r != 0 {
			t.Fatalf("sample = %d, want 0", r)
		}
	}
}
