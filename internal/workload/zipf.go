package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf samples from a bounded Zipf(s) distribution over {0, ..., n-1} for
// any exponent s > 0 — unlike math/rand.Zipf, which requires s > 1. Measured
// cache workloads cluster around s ≈ 0.9–1.0 (the sub-critical regime the
// standard library cannot generate), so cliffbench routes its -zipf flag
// through this sampler for every skew.
//
// The implementation is rejection-inversion sampling (Hörmann & Derflinger,
// "Rejection-inversion to generate variates from monotone discrete
// distributions", ACM TOMACS 1996): draw from the inverse of the integral of
// the continuous majorizing density x^-s, then accept/reject against the
// discrete mass. A handful of exp/log calls per sample, O(1) state for any
// n, and an acceptance rate close to 1 across the whole s range.
type Zipf struct {
	rng *rand.Rand
	s   float64
	n   float64
	// hx0 and hn bracket the inversion range; cut is the acceptance
	// shortcut threshold (both precomputed per Hörmann & Derflinger).
	hx0, hn, cut float64
}

// NewZipf returns a sampler over {0, ..., n-1} with exponent s, drawing
// randomness from rng. It panics when s <= 0 or n == 0, which is a
// programming error in the workload definition.
func NewZipf(rng *rand.Rand, s float64, n uint64) *Zipf {
	if s <= 0 {
		panic(fmt.Sprintf("workload: zipf exponent must be > 0, got %v", s))
	}
	if n == 0 {
		panic("workload: zipf needs a non-empty range")
	}
	z := &Zipf{rng: rng, s: s, n: float64(n)}
	z.hx0 = z.hIntegral(1.5) - 1
	z.hn = z.hIntegral(z.n + 0.5)
	z.cut = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// S returns the sampler's exponent.
func (z *Zipf) S() float64 { return z.s }

// Uint64 returns the next sample as a rank in [0, n), rank 0 being the most
// popular element.
func (z *Zipf) Uint64() uint64 {
	for {
		u := z.hn + z.rng.Float64()*(z.hx0-z.hn)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		// Accept k when it is close enough to the continuous draw, or when
		// the draw falls inside k's own probability mass.
		if k-x <= z.cut || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}

// hIntegral is H(x) = (x^(1-s) - 1) / (1 - s), the antiderivative of x^-s,
// analytically continued to ln(x) at s == 1.
func (z *Zipf) hIntegral(x float64) float64 {
	lx := math.Log(x)
	return expm1OverX((1-z.s)*lx) * lx
}

// h is the density x^-s.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

// hIntegralInverse is H^-1.
func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.s)
	if t < -1 {
		// Round-off can push t below the domain edge; clamp so the inverse
		// stays finite.
		t = -1
	}
	return math.Exp(log1pOverX(t) * x)
}

// log1pOverX is log1p(x)/x with its limit 1 at x == 0, kept accurate near
// zero by the Taylor expansion.
func log1pOverX(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2 + x*x/3
}

// expm1OverX is expm1(x)/x with its limit 1 at x == 0.
func expm1OverX(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2 + x*x/6
}
