package workload

import (
	"testing"

	"cliffhanger/internal/store"
)

// TestCrossCheckMemcachierSimVsWire is the end-to-end proof the ROADMAP asks
// for: replaying the seeded Memcachier generator over a real TCP socket
// (protocol parse, server handlers, sharded store, synchronous bookkeeping)
// reproduces the per-application hit rates internal/sim computes for the
// same stream, within the stated tolerance. The CLI equivalent is
// `cliffbench -trace memcachier -verify`.
func TestCrossCheckMemcachierSimVsWire(t *testing.T) {
	if testing.Short() {
		t.Skip("replays tens of thousands of requests over a socket")
	}
	res, err := CrossCheck(VerifyConfig{
		Spec:      "memcachier",
		Options:   Options{Requests: 40000, Seed: 7, Scale: 0.05},
		Mode:      store.AllocCliffhanger,
		Tolerance: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 20 {
		t.Fatalf("compared %d apps, want 20", len(res.Apps))
	}
	var reqs int64
	for _, a := range res.Apps {
		reqs += a.Requests
		t.Logf("app%-2d gets=%-6d sim=%.4f wire=%.4f delta=%.4f", a.App, a.Requests, a.Sim, a.Wire, a.Delta())
	}
	t.Logf("overall sim=%.4f wire=%.4f maxDelta=%.4f fills=%d rejected=%d",
		res.SimOverall, res.WireOverall, res.MaxDelta, res.Fills, res.RejectedSets)
	if reqs == 0 {
		t.Fatal("wire replay saw no GETs")
	}
	if !res.OK() {
		t.Fatalf("wire hit rates diverged from sim: max delta %.4f > tolerance %.4f", res.MaxDelta, res.Tolerance)
	}
}

// TestCrossCheckZipfLowSkew drives the sub-critical zipf source (s = 0.9,
// impossible with math/rand.Zipf) through the same harness: one tenant, sim
// and wire must agree.
func TestCrossCheckZipfLowSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("replays tens of thousands of requests over a socket")
	}
	res, err := CrossCheck(VerifyConfig{
		Spec:      "zipf",
		Options:   Requests20kZipf(),
		Mode:      store.AllocCliffhanger,
		Tolerance: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overall sim=%.4f wire=%.4f maxDelta=%.4f", res.SimOverall, res.WireOverall, res.MaxDelta)
	if !res.OK() {
		t.Fatalf("zipf wire hit rate diverged: max delta %.4f > tolerance %.4f", res.MaxDelta, res.Tolerance)
	}
	if res.SimOverall <= 0 || res.WireOverall <= 0 {
		t.Fatalf("implausible hit rates: sim=%.4f wire=%.4f", res.SimOverall, res.WireOverall)
	}
}

// Requests20kZipf is the shared compact zipf verify workload (also exercised
// by the CLI smoke runs): a working set a few times the tenant's memory so
// the hit rate is neither 0 nor 1.
func Requests20kZipf() Options {
	return Options{Requests: 20000, Seed: 5, Keys: 20000, ZipfS: 0.9, ValueSize: 1024, MemoryMB: 8}
}

// TestCrossCheckRejectsFileSpecs pins the documented limitation: file traces
// carry no tenant layout, so the harness must refuse rather than guess.
func TestCrossCheckRejectsFileSpecs(t *testing.T) {
	if _, err := CrossCheck(VerifyConfig{Spec: "file:/nonexistent", Options: Options{}}); err == nil {
		t.Fatal("file spec should error")
	}
}
