package workload

import (
	"errors"
	"fmt"
	"math"
	"time"

	"cliffhanger/internal/client"
	"cliffhanger/internal/protocol"
	"cliffhanger/internal/server"
	"cliffhanger/internal/sim"
	"cliffhanger/internal/store"
	"cliffhanger/internal/trace"
)

// This file is the sim-vs-wire cross-check: the proof that the full
// protocol/server/store stack reproduces the hit-rate curves internal/sim
// computes, rather than the simulator alone. The same seeded workload is
// replayed twice — once through sim.Run's trace-driven engine, once over a
// real TCP socket against an in-process server whose tenants are configured
// identically (sim.TenantConfigs) — and per-application GET hit rates are
// compared.
//
// The wire replay mirrors the simulator's demand-fill semantics: a GET miss
// is followed by a SET of the same key, and values are padded so the charged
// size (len(key)+len(value)) equals the trace's Size — the size the
// simulator accounts — so both engines map every item to the same slab
// class. Replay is a single connection against a SyncBookkeeping store, so
// the wire side is deterministic. The two paths are not bit-identical by
// construction (the simulator's combined lookup+fill applies pending page
// grants on hits during warm-up, where the wire path grows only on the SET
// that follows a miss), hence a tolerance rather than equality.

// VerifyConfig configures CrossCheck.
type VerifyConfig struct {
	// Spec and Options select the workload, as for Open. The spec must carry
	// a tenant layout (zipf, facebook, memcachier — not file).
	Spec    string
	Options Options
	// Mode is the allocation policy both engines run. The zero value is
	// store.AllocDefault (first-come-first-serve slab allocation), like
	// everywhere else in the repository.
	Mode store.AllocationMode
	// AppMemoryOverride replaces selected apps' trace-derived memory sizes
	// on both engines (sim.Config.AppMemoryOverride). The hit-rate benchmark
	// uses it to model a naively provisioned cluster — every app granted the
	// same partition — which is the operating point the memshare arbiter is
	// meant to rescue.
	AppMemoryOverride map[int]int64
	// Tolerance is the largest acceptable |wire - sim| per-application
	// hit-rate difference (default 0.02).
	Tolerance float64
}

// VerifyApp is one application's pair of hit rates.
type VerifyApp struct {
	App      int
	Requests int64
	Sim      float64
	Wire     float64
}

// Delta returns |Wire - Sim|.
func (a VerifyApp) Delta() float64 { return math.Abs(a.Wire - a.Sim) }

// VerifyResult is the outcome of a CrossCheck run.
type VerifyResult struct {
	Apps                    []VerifyApp
	SimOverall, WireOverall float64
	// MaxDelta is the largest per-app hit-rate difference (apps that saw no
	// GETs are skipped).
	MaxDelta  float64
	Tolerance float64
	// Fills counts the wire replay's demand fills (one per GET miss);
	// RejectedSets counts SETs the server refused as larger than every slab
	// class — the simulator treats such items as permanent misses, and so,
	// by construction, does the wire replay.
	Fills, RejectedSets int64
	// ArbiterMoves counts the wire store's cross-tenant arbiter moves
	// (memshare mode only; zero otherwise). The sim side runs the same
	// decision engine at the same request cadence.
	ArbiterMoves int64
}

// OK reports whether every application matched within tolerance.
func (r *VerifyResult) OK() bool { return r.MaxDelta <= r.Tolerance }

// CrossCheck replays the same seeded workload through internal/sim and over
// a real socket, returning the per-application hit-rate comparison.
func CrossCheck(cfg VerifyConfig) (*VerifyResult, error) {
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.02
	}

	// Simulator side.
	wl, err := Open(cfg.Spec, cfg.Options)
	if err != nil {
		return nil, err
	}
	defer wl.Close()
	if wl.Apps == nil {
		return nil, fmt.Errorf("workload: %s traces carry no tenant layout to verify against", wl.Name)
	}
	simCfg := sim.Config{Apps: wl.Apps, Mode: cfg.Mode, AppMemoryOverride: cfg.AppMemoryOverride}
	simRes, err := sim.Run(simCfg, wl.Source)
	if err != nil {
		return nil, err
	}

	// Wire side: identically-seeded source, identically-configured tenants,
	// deterministic (synchronous) bookkeeping, one connection.
	wl2, err := Open(cfg.Spec, cfg.Options)
	if err != nil {
		return nil, err
	}
	defer wl2.Close()
	tcfgs, err := sim.TenantConfigs(simCfg)
	if err != nil {
		return nil, err
	}
	st := store.New(store.Config{SyncBookkeeping: true})
	defer st.Close()
	for _, app := range wl.Apps {
		if err := st.RegisterTenantConfig(tcfgs[app.ID]); err != nil {
			return nil, err
		}
	}
	srv := server.New(server.Config{Addr: "127.0.0.1:0", DefaultTenant: sim.TenantName(wl.Apps[0].ID)}, st)
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()
	c, err := client.Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	type counter struct{ hits, reqs int64 }
	counts := make(map[int]*counter, len(wl.Apps))
	for _, app := range wl.Apps {
		counts[app.ID] = &counter{}
	}
	res := &VerifyResult{Tolerance: cfg.Tolerance}
	payload := make([]byte, protocol.MaxValueLength)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	fill := func(r trace.Request) error {
		err := c.SetWithOptions(r.Key, PadValue(payload, r), 0, 0)
		if errors.Is(err, protocol.ErrRemote) {
			// Too large for every slab class: a permanent miss on both
			// engines, not a replay failure.
			res.RejectedSets++
			return nil
		}
		return err
	}

	curApp := wl.Apps[0].ID
	var (
		found     bool
		keybuf    = make([]string, 1)
		onValue   = func(int, []byte, uint32, uint64, []byte) { found = true }
		totalGets int64
	)
	// In memshare mode the wire store's arbiter is driven at the same
	// deterministic request cadence sim.Run uses, so both engines make the
	// same sequence of cross-tenant moves.
	arbitrated := cfg.Mode == store.AllocMemshare
	for {
		r, ok := wl2.Source.Next()
		if !ok {
			break
		}
		cnt := counts[r.App]
		if cnt == nil {
			continue // request for an app outside the layout, as in sim.Run
		}
		if r.App != curApp {
			if err := c.SelectTenant(sim.TenantName(r.App)); err != nil {
				return nil, err
			}
			curApp = r.App
		}
		switch r.Op {
		case trace.OpDelete:
			if _, err := c.Delete(r.Key); err != nil {
				return nil, err
			}
		case trace.OpSet:
			if err := fill(r); err != nil {
				return nil, err
			}
		default:
			keybuf[0] = r.Key
			found = false
			if err := c.PipelineGetFunc(keybuf, onValue); err != nil {
				return nil, err
			}
			cnt.reqs++
			totalGets++
			if found {
				cnt.hits++
			} else {
				// Demand fill, mirroring the simulator's miss semantics.
				res.Fills++
				if err := fill(r); err != nil {
					return nil, err
				}
			}
			if arbitrated && totalGets%store.DefaultArbiterEvery == 0 {
				if st.ArbiterTick() {
					res.ArbiterMoves++
				}
			}
		}
	}

	// Arbitration moves pages between tenants through the migration state
	// machine; prove chunk conservation held for every tenant regardless.
	for _, app := range wl.Apps {
		if err := st.AuditConservation(sim.TenantName(app.ID)); err != nil {
			return nil, fmt.Errorf("workload: conservation audit after replay: %w", err)
		}
	}

	var totalHits, totalReqs int64
	for _, app := range wl.Apps {
		cnt := counts[app.ID]
		ar := simRes.App(app.ID)
		va := VerifyApp{App: app.ID, Requests: cnt.reqs}
		if ar != nil {
			va.Sim = ar.HitRate()
			if ar.Requests != cnt.reqs {
				return nil, fmt.Errorf("workload: app %d replay diverged: sim saw %d GETs, wire saw %d",
					app.ID, ar.Requests, cnt.reqs)
			}
		}
		if cnt.reqs > 0 {
			va.Wire = float64(cnt.hits) / float64(cnt.reqs)
			if d := va.Delta(); d > res.MaxDelta {
				res.MaxDelta = d
			}
		}
		totalHits += cnt.hits
		totalReqs += cnt.reqs
		res.Apps = append(res.Apps, va)
	}
	res.SimOverall = simRes.HitRate()
	if totalReqs > 0 {
		res.WireOverall = float64(totalHits) / float64(totalReqs)
	}
	return res, nil
}

// PadValue sizes a stored value so the server's charged size
// (len(key)+len(value)) equals the trace's Size — the size the simulator
// accounts — clamped to [0, len(payload)]. The replayers share it so wire
// admissions land in the same slab class as the simulator's.
func PadValue(payload []byte, r trace.Request) []byte {
	n := r.Size - int64(len(r.Key))
	if n < 0 {
		n = 0
	}
	if n > int64(len(payload)) {
		n = int64(len(payload))
	}
	return payload[:n]
}
