package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cliffhanger/internal/trace"
)

func collect(t *testing.T, w *Workload, max int) []trace.Request {
	t.Helper()
	reqs := trace.Collect(w.Source, max)
	if err := w.Err(); err != nil {
		t.Fatalf("source error: %v", err)
	}
	return reqs
}

// TestOpenZipfLowSkewAndDeterminism covers the satellite fix: a zipf spec
// with s <= 1 must open (the old cliffbench hard-failed on it) and identical
// options must produce identical streams.
func TestOpenZipfLowSkewAndDeterminism(t *testing.T) {
	o := Options{Requests: 5000, Seed: 11, Keys: 2000, ZipfS: 0.9, ValueSize: 128, GetFraction: 0.8}
	a, err := Open("zipf", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open("zipf", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Apps) != 1 || a.Apps[0].ID != 1 {
		t.Fatalf("zipf layout = %+v, want one app", a.Apps)
	}
	ra, rb := collect(t, a, 0), collect(t, b, 0)
	if len(ra) != 5000 || len(rb) != 5000 {
		t.Fatalf("request counts = %d, %d, want 5000", len(ra), len(rb))
	}
	var sets int
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("request %d diverged: %+v vs %+v", i, ra[i], rb[i])
		}
		if !strings.HasPrefix(ra[i].Key, "bench-") || ra[i].Size != 128 || ra[i].App != 1 {
			t.Fatalf("malformed request %+v", ra[i])
		}
		if ra[i].Op == trace.OpSet {
			sets++
		}
	}
	// GetFraction 0.8 → roughly 20% sets.
	if frac := float64(sets) / float64(len(ra)); frac < 0.15 || frac > 0.25 {
		t.Fatalf("set fraction = %.3f, want ~0.2", frac)
	}
}

func TestOpenMemcachierAndFacebook(t *testing.T) {
	m, err := Open("memcachier", Options{Requests: 2000, Seed: 3, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Apps) != 20 {
		t.Fatalf("memcachier layout has %d apps, want 20", len(m.Apps))
	}
	seen := map[int]bool{}
	for _, r := range collect(t, m, 0) {
		if r.App < 1 || r.App > 20 {
			t.Fatalf("app %d out of range", r.App)
		}
		seen[r.App] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct apps in 2000 requests", len(seen))
	}

	f, err := Open("facebook", Options{Requests: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Apps) != 1 {
		t.Fatalf("facebook layout = %+v", f.Apps)
	}
	if got := len(collect(t, f, 0)); got != 1000 {
		t.Fatalf("facebook emitted %d requests, want 1000", got)
	}

	if _, err := Open("mystery", Options{}); err == nil {
		t.Fatal("unknown spec should error")
	}
}

func TestOpenFileBinaryAndCSV(t *testing.T) {
	dir := t.TempDir()
	want := []trace.Request{
		{Time: 0.5, App: 1, Key: "alpha", Size: 100, Op: trace.OpGet},
		{Time: 1.0, App: 2, Key: "beta", Size: 200, Op: trace.OpSet},
		{Time: 1.5, App: 1, Key: "gamma", Size: 300, Op: trace.OpDelete},
	}

	bin := filepath.Join(dir, "t.clft")
	bf, err := os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	tw := trace.NewWriter(bf)
	for _, r := range want {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	csv := filepath.Join(dir, "t.csv")
	cf, err := os.Create(csv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteCSV(cf, trace.NewSliceSource(want)); err != nil {
		t.Fatal(err)
	}
	cf.Close()

	for _, path := range []string{bin, csv} {
		w, err := Open("file:"+path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, w, 0)
		if len(got) != len(want) {
			t.Fatalf("%s: %d requests, want %d", path, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: request %d = %+v, want %+v", path, i, got[i], want[i])
			}
		}
		if w.Apps != nil {
			t.Fatalf("file traces must not claim a tenant layout")
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The request bound applies to files too.
	w, err := Open("file:"+bin, Options{Requests: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, w, 0)); got != 2 {
		t.Fatalf("limited file source emitted %d, want 2", got)
	}
	w.Close()

	if _, err := Open("file:"+filepath.Join(dir, "missing"), Options{}); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestTenantSpec(t *testing.T) {
	apps := []trace.AppSpec{{ID: 1, MemoryMB: 48}, {ID: 2, MemoryMB: 3}}
	if got := TenantSpec(apps); got != "app1:48,app2:3" {
		t.Fatalf("TenantSpec = %q", got)
	}
	// Budgets below 1 MiB are clamped so the spec stays valid for
	// cliffhangerd's parser.
	if got := TenantSpec([]trace.AppSpec{{ID: 5, MemoryMB: 0}}); got != "app5:1" {
		t.Fatalf("TenantSpec clamp = %q", got)
	}
}

func TestPacerSchedule(t *testing.T) {
	start := time.Unix(1000, 0)
	p := NewPacer(start, 1000) // 1ms per request
	if due := p.Next(10); !due.Equal(start) {
		t.Fatalf("first batch due %v, want %v", due, start)
	}
	if due := p.Next(5); !due.Equal(start.Add(10 * time.Millisecond)) {
		t.Fatalf("second batch due %v, want start+10ms", due)
	}
	if due := p.Next(1); !due.Equal(start.Add(15 * time.Millisecond)) {
		t.Fatalf("third batch due %v, want start+15ms", due)
	}
	if r := p.Rate(); r < 999 || r > 1001 {
		t.Fatalf("rate = %v, want ~1000", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive rate should panic")
		}
	}()
	NewPacer(start, 0)
}
