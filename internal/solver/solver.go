// Package solver implements the Dynacache-style cache allocation solver the
// paper uses as its offline baseline (§2.1, Equation 1).
//
// Given a hit-rate curve h_i(m), a request frequency f_i and an optional
// weight w_i for each queue (slab class or application), the solver chooses
// per-queue memory allocations m_i maximizing
//
//	sum_i w_i · f_i · h_i(m_i)   subject to   sum_i m_i <= M.
//
// For concave curves the problem is solved exactly by greedy marginal-gain
// allocation ("water-filling"): repeatedly give the next unit of memory to
// the queue whose hit-rate curve has the steepest slope at its current
// allocation. The solver can optionally concavify each curve first (taking
// its concave hull), which is what Dynacache implicitly assumes; on curves
// with performance cliffs this assumption is wrong and produces the
// misallocations the paper documents for applications 18 and 19. Running the
// solver on the raw curve instead reproduces the "stuck below the cliff"
// behaviour of naive local search. Both modes are exposed so the experiments
// can compare them.
package solver

import (
	"container/heap"
	"errors"
	"fmt"

	"cliffhanger/internal/stackdist"
)

// Queue describes one allocation target.
type Queue struct {
	// ID names the queue (e.g. "app3/class9").
	ID string
	// Curve is the queue's hit-rate curve in allocation units (items or
	// bytes — the solver is unit-agnostic, but all queues must use the
	// same unit as the budget).
	Curve *stackdist.Curve
	// Frequency is the queue's share of GET requests (absolute counts and
	// fractions both work; only relative magnitudes matter).
	Frequency float64
	// Weight is the operator-assigned importance weight; zero means 1.
	Weight float64
	// MinSize is the smallest allocation the queue may receive.
	MinSize int64
	// MaxSize caps the queue's allocation; zero means unlimited.
	MaxSize int64
}

// Options controls Solve.
type Options struct {
	// Step is the allocation granularity. Zero defaults to 1/1000 of the
	// budget (at least 1).
	Step int64
	// Concavify replaces each curve by its concave hull before solving,
	// mirroring Dynacache's concavity assumption.
	Concavify bool
}

// Result is the outcome of Solve.
type Result struct {
	// Allocations maps queue ID to its assigned size.
	Allocations map[string]int64
	// PredictedHitRates maps queue ID to the hit rate the (possibly
	// concavified) curve predicts at the assigned size.
	PredictedHitRates map[string]float64
	// PredictedOverall is the frequency-weighted overall hit rate predicted
	// by the solver.
	PredictedOverall float64
	// Spent is the total memory assigned (<= budget).
	Spent int64
}

// ErrNoQueues is returned when Solve is called with an empty queue set.
var ErrNoQueues = errors.New("solver: no queues to allocate")

// Solve computes the allocation maximizing Equation 1.
func Solve(queues []Queue, budget int64, opts Options) (*Result, error) {
	if len(queues) == 0 {
		return nil, ErrNoQueues
	}
	if budget <= 0 {
		return nil, fmt.Errorf("solver: non-positive budget %d", budget)
	}
	step := opts.Step
	if step <= 0 {
		step = budget / 1000
		if step < 1 {
			step = 1
		}
	}

	type state struct {
		q     Queue
		curve *stackdist.Curve
		alloc int64
		max   int64
	}
	states := make([]*state, 0, len(queues))
	var spent int64
	for _, q := range queues {
		if q.Curve == nil {
			return nil, fmt.Errorf("solver: queue %q has no curve", q.ID)
		}
		if q.Weight == 0 {
			q.Weight = 1
		}
		curve := q.Curve
		if opts.Concavify {
			curve = curve.ConcaveHull()
		}
		maxSize := q.MaxSize
		if maxSize <= 0 {
			maxSize = budget
		}
		st := &state{q: q, curve: curve, alloc: q.MinSize, max: maxSize}
		spent += st.alloc
		states = append(states, st)
	}
	if spent > budget {
		return nil, fmt.Errorf("solver: minimum sizes (%d) exceed budget (%d)", spent, budget)
	}

	gain := func(st *state) float64 {
		next := st.alloc + step
		if next > st.max {
			return -1
		}
		return st.q.Weight * st.q.Frequency * (st.curve.At(next) - st.curve.At(st.alloc))
	}

	pq := &gainHeap{}
	heap.Init(pq)
	for _, st := range states {
		if g := gain(st); g >= 0 {
			heap.Push(pq, gainItem{state: st, gain: g})
		}
	}
	for spent+step <= budget && pq.Len() > 0 {
		item := heap.Pop(pq).(gainItem)
		st := item.state.(*state)
		// The gain may be stale if the state advanced since it was pushed;
		// since each state has exactly one outstanding entry, it cannot be
		// stale here, but guard against zero-gain starvation by stopping
		// when the best remaining gain is zero and every curve is flat.
		st.alloc += step
		spent += step
		if g := gain(st); g >= 0 {
			heap.Push(pq, gainItem{state: st, gain: g})
		}
	}

	res := &Result{
		Allocations:       make(map[string]int64, len(states)),
		PredictedHitRates: make(map[string]float64, len(states)),
		Spent:             spent,
	}
	var freqSum, weighted float64
	for _, st := range states {
		res.Allocations[st.q.ID] = st.alloc
		hr := st.curve.At(st.alloc)
		res.PredictedHitRates[st.q.ID] = hr
		freqSum += st.q.Frequency
		weighted += st.q.Frequency * hr
	}
	if freqSum > 0 {
		res.PredictedOverall = weighted / freqSum
	}
	return res, nil
}

// EqualSplit returns the baseline allocation that divides the budget evenly
// across queues (respecting MaxSize), used as a sanity baseline in tests.
func EqualSplit(queues []Queue, budget int64) map[string]int64 {
	out := make(map[string]int64, len(queues))
	if len(queues) == 0 {
		return out
	}
	share := budget / int64(len(queues))
	for _, q := range queues {
		alloc := share
		if q.MaxSize > 0 && alloc > q.MaxSize {
			alloc = q.MaxSize
		}
		out[q.ID] = alloc
	}
	return out
}

// ProportionalSplit allocates the budget proportionally to request
// frequency, modelling the intuition "give memory to whoever asks most",
// which is roughly what first-come-first-serve converges to for equal-sized
// items.
func ProportionalSplit(queues []Queue, budget int64) map[string]int64 {
	out := make(map[string]int64, len(queues))
	var total float64
	for _, q := range queues {
		total += q.Frequency
	}
	if total == 0 {
		return EqualSplit(queues, budget)
	}
	for _, q := range queues {
		out[q.ID] = int64(float64(budget) * q.Frequency / total)
	}
	return out
}

// gainItem and gainHeap implement a max-heap on marginal gain.
type gainItem struct {
	state any
	gain  float64
}

type gainHeap []gainItem

func (h gainHeap) Len() int           { return len(h) }
func (h gainHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)        { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
