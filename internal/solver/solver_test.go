package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cliffhanger/internal/stackdist"
)

func mustCurve(t testing.TB, sizes []int64, rates []float64) *stackdist.Curve {
	t.Helper()
	c, err := stackdist.NewCurve(sizes, rates)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSolveFavorsSteeperCurve(t *testing.T) {
	// Queue A saturates quickly (steep then flat); queue B is linear.
	// With a budget of 200 the optimum is to give A ~100 and B the rest.
	a := mustCurve(t, []int64{0, 100, 200}, []float64{0, 0.9, 0.92})
	b := mustCurve(t, []int64{0, 100, 200}, []float64{0, 0.2, 0.4})
	res, err := Solve([]Queue{
		{ID: "a", Curve: a, Frequency: 1},
		{ID: "b", Curve: b, Frequency: 1},
	}, 200, Options{Step: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocations["a"] < 90 || res.Allocations["a"] > 120 {
		t.Fatalf("allocation to a = %d, want ~100", res.Allocations["a"])
	}
	if res.Spent > 200 {
		t.Fatalf("spent %d exceeds budget", res.Spent)
	}
	if res.PredictedOverall < 0.5 {
		t.Fatalf("predicted overall %v too low", res.PredictedOverall)
	}
}

func TestSolveRespectsFrequencyWeighting(t *testing.T) {
	// Identical curves, but queue hot receives 9x the requests: it should
	// receive at least as much memory.
	c := mustCurve(t, []int64{0, 50, 100, 200, 400}, []float64{0, 0.3, 0.5, 0.7, 0.8})
	res, err := Solve([]Queue{
		{ID: "hot", Curve: c, Frequency: 0.9},
		{ID: "cold", Curve: c.Clone(), Frequency: 0.1},
	}, 400, Options{Step: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocations["hot"] < res.Allocations["cold"] {
		t.Fatalf("hot queue got %d < cold queue %d", res.Allocations["hot"], res.Allocations["cold"])
	}
}

func TestSolveRespectsWeights(t *testing.T) {
	c := mustCurve(t, []int64{0, 50, 100, 200, 400}, []float64{0, 0.3, 0.5, 0.7, 0.8})
	res, err := Solve([]Queue{
		{ID: "prod", Curve: c, Frequency: 0.5, Weight: 10},
		{ID: "dev", Curve: c.Clone(), Frequency: 0.5, Weight: 1},
	}, 300, Options{Step: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocations["prod"] <= res.Allocations["dev"] {
		t.Fatalf("weighted queue should receive more memory: prod=%d dev=%d",
			res.Allocations["prod"], res.Allocations["dev"])
	}
}

func TestSolveMinAndMaxSize(t *testing.T) {
	c := mustCurve(t, []int64{0, 100, 200}, []float64{0, 0.9, 0.95})
	flat := mustCurve(t, []int64{0, 100, 200}, []float64{0, 0.01, 0.02})
	res, err := Solve([]Queue{
		{ID: "capped", Curve: c, Frequency: 1, MaxSize: 50},
		{ID: "floored", Curve: flat, Frequency: 0.01, MinSize: 40},
	}, 200, Options{Step: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocations["capped"] > 50 {
		t.Fatalf("MaxSize violated: %d", res.Allocations["capped"])
	}
	if res.Allocations["floored"] < 40 {
		t.Fatalf("MinSize violated: %d", res.Allocations["floored"])
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil, 100, Options{}); err == nil {
		t.Fatalf("empty queue set should error")
	}
	c := mustCurve(t, []int64{0, 10}, []float64{0, 1})
	if _, err := Solve([]Queue{{ID: "x", Curve: c, Frequency: 1}}, 0, Options{}); err == nil {
		t.Fatalf("zero budget should error")
	}
	if _, err := Solve([]Queue{{ID: "x", Frequency: 1}}, 100, Options{}); err == nil {
		t.Fatalf("nil curve should error")
	}
	if _, err := Solve([]Queue{{ID: "x", Curve: c, Frequency: 1, MinSize: 200}}, 100, Options{}); err == nil {
		t.Fatalf("min sizes above budget should error")
	}
}

func TestSolveCliffWithAndWithoutConcavify(t *testing.T) {
	// A cliff curve: nearly nothing until 1000, then jumps to 0.9.
	cliff := mustCurve(t,
		[]int64{0, 250, 500, 750, 999, 1000, 1500},
		[]float64{0, 0.02, 0.04, 0.06, 0.08, 0.9, 0.92})
	// A modest concave competitor.
	concave := mustCurve(t, []int64{0, 500, 1000, 1500}, []float64{0, 0.3, 0.4, 0.45})

	queues := []Queue{
		{ID: "cliff", Curve: cliff, Frequency: 0.5},
		{ID: "concave", Curve: concave, Frequency: 0.5},
	}
	// Without concavification, greedy marginal gain undervalues the cliff
	// queue (slope before the cliff is tiny) and starves it.
	raw, err := Solve(queues, 1500, Options{Step: 50})
	if err != nil {
		t.Fatal(err)
	}
	// With concavification, the hull makes the cliff queue's early slope
	// attractive (0.9/1000 per unit) and it gets pushed past the cliff.
	hull, err := Solve(queues, 1500, Options{Step: 50, Concavify: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Allocations["cliff"] >= 1000 {
		t.Fatalf("raw solver unexpectedly crossed the cliff: %d", raw.Allocations["cliff"])
	}
	if hull.Allocations["cliff"] < 1000 {
		t.Fatalf("concavified solver should cross the cliff, got %d", hull.Allocations["cliff"])
	}
	// The realized (raw-curve) hit rate of the concavified allocation must
	// beat the raw allocation for the cliff queue.
	if cliff.At(hull.Allocations["cliff"]) <= cliff.At(raw.Allocations["cliff"]) {
		t.Fatalf("concavified allocation should realize a higher hit rate on the cliff queue")
	}
}

// TestSolveNeverExceedsBudget is a property test over random concave curves.
func TestSolveNeverExceedsBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		queues := make([]Queue, n)
		for i := 0; i < n; i++ {
			sizes := []int64{0}
			rates := []float64{0}
			var size int64
			rate := 0.0
			for j := 0; j < 6; j++ {
				size += int64(10 + rng.Intn(100))
				rate += (1 - rate) * rng.Float64() * 0.5
				sizes = append(sizes, size)
				rates = append(rates, rate)
			}
			c, err := stackdist.NewCurve(sizes, rates)
			if err != nil {
				return false
			}
			queues[i] = Queue{ID: string(rune('a' + i)), Curve: c, Frequency: rng.Float64() + 0.01}
		}
		budget := int64(100 + rng.Intn(2000))
		res, err := Solve(queues, budget, Options{Step: int64(1 + rng.Intn(50))})
		if err != nil {
			return false
		}
		if res.Spent > budget {
			return false
		}
		var sum int64
		for _, a := range res.Allocations {
			if a < 0 {
				return false
			}
			sum += a
		}
		return sum == res.Spent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveOptimalityOnConcaveCurves checks that greedy water-filling
// matches (within one step) an exhaustive search on a small two-queue
// concave instance.
func TestSolveOptimalityOnConcaveCurves(t *testing.T) {
	a := mustCurve(t, []int64{0, 20, 40, 60, 80, 100}, []float64{0, 0.40, 0.60, 0.72, 0.80, 0.85})
	b := mustCurve(t, []int64{0, 20, 40, 60, 80, 100}, []float64{0, 0.25, 0.45, 0.60, 0.70, 0.78})
	fa, fb := 0.6, 0.4
	budget := int64(100)
	step := int64(5)

	best := -1.0
	for x := int64(0); x <= budget; x += step {
		v := fa*a.At(x) + fb*b.At(budget-x)
		if v > best {
			best = v
		}
	}
	res, err := Solve([]Queue{
		{ID: "a", Curve: a, Frequency: fa},
		{ID: "b", Curve: b, Frequency: fb},
	}, budget, Options{Step: step})
	if err != nil {
		t.Fatal(err)
	}
	got := fa*a.At(res.Allocations["a"]) + fb*b.At(res.Allocations["b"])
	if best-got > 0.02 {
		t.Fatalf("greedy objective %v vs exhaustive optimum %v", got, best)
	}
}

func TestEqualAndProportionalSplit(t *testing.T) {
	c := mustCurve(t, []int64{0, 10}, []float64{0, 1})
	queues := []Queue{
		{ID: "a", Curve: c, Frequency: 3},
		{ID: "b", Curve: c, Frequency: 1},
	}
	eq := EqualSplit(queues, 100)
	if eq["a"] != 50 || eq["b"] != 50 {
		t.Fatalf("EqualSplit = %v", eq)
	}
	prop := ProportionalSplit(queues, 100)
	if prop["a"] != 75 || prop["b"] != 25 {
		t.Fatalf("ProportionalSplit = %v", prop)
	}
	if got := ProportionalSplit([]Queue{{ID: "x"}, {ID: "y"}}, 10); got["x"] != 5 {
		t.Fatalf("zero-frequency fallback = %v", got)
	}
	if got := EqualSplit(nil, 10); len(got) != 0 {
		t.Fatalf("EqualSplit(nil) = %v", got)
	}
	capped := EqualSplit([]Queue{{ID: "a", MaxSize: 3}, {ID: "b"}}, 100)
	if capped["a"] != 3 {
		t.Fatalf("EqualSplit should respect MaxSize, got %v", capped)
	}
}

func TestSolvePredictedOverallMatchesAllocations(t *testing.T) {
	a := mustCurve(t, []int64{0, 100}, []float64{0, 0.8})
	b := mustCurve(t, []int64{0, 100}, []float64{0, 0.4})
	res, err := Solve([]Queue{
		{ID: "a", Curve: a, Frequency: 2},
		{ID: "b", Curve: b, Frequency: 2},
	}, 200, Options{Step: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := (2*a.At(res.Allocations["a"]) + 2*b.At(res.Allocations["b"])) / 4
	if math.Abs(res.PredictedOverall-want) > 1e-9 {
		t.Fatalf("PredictedOverall = %v, want %v", res.PredictedOverall, want)
	}
}

func BenchmarkSolve20Queues(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	queues := make([]Queue, 20)
	for i := range queues {
		sizes := []int64{0}
		rates := []float64{0}
		var size int64
		rate := 0.0
		for j := 0; j < 50; j++ {
			size += int64(10 + rng.Intn(100))
			rate += (1 - rate) * rng.Float64() * 0.2
			sizes = append(sizes, size)
			rates = append(rates, rate)
		}
		c, _ := stackdist.NewCurve(sizes, rates)
		queues[i] = Queue{ID: string(rune('a' + i)), Curve: c, Frequency: rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(queues, 20000, Options{Step: 64}); err != nil {
			b.Fatal(err)
		}
	}
}
