// Package chaos is an in-process fault-injecting TCP proxy: it sits between
// a client and a cliffhangerd (or any TCP server) and misbehaves on purpose.
// Per forwarded chunk it can add latency and jitter, throttle bandwidth,
// split writes into tiny partial segments, tear the connection down with an
// RST mid-payload (after a byte budget or probabilistically), and swallow
// client FINs so the server sees a half-closed socket that never finishes.
//
// The chaos test suite drives the server through it and asserts the
// robustness contract — no panics, no goroutine leaks, exact arena
// conservation, and graceful degradation for healthy clients sharing the
// server with a chaotic cohort. cliffbench -chaos <spec> replays any
// workload through a proxy configured by ParseSpec, so every fault is also
// reproducible against a live daemon.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects the faults a Proxy injects. The zero value (plus a Target)
// is a transparent proxy.
type Config struct {
	// Target is the upstream server address the proxy forwards to.
	Target string
	// Listen is the proxy's own listen address; empty means an ephemeral
	// loopback port (see Proxy.Addr).
	Listen string

	// Latency is added before each forwarded chunk, in both directions.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) on top of Latency.
	Jitter time.Duration
	// BandwidthBPS throttles each direction to roughly this many bytes per
	// second. 0 means unlimited.
	BandwidthBPS int64
	// ChunkSize forwards data in segments of at most this many bytes, each
	// its own upstream write — small values model partial writes tearing
	// commands at arbitrary byte boundaries. 0 forwards reads whole.
	ChunkSize int
	// ResetAfterBytes tears the connection down (RST, both sides) once this
	// many client-to-server bytes have been forwarded: a client dying
	// mid-storage-payload. 0 disables.
	ResetAfterBytes int64
	// ResetProb tears the connection down before a forwarded chunk with
	// this probability (checked per chunk, both directions). 0 disables.
	ResetProb float64
	// HalfClose swallows the client's FIN instead of propagating it: the
	// server keeps a half-closed socket it must idle-time-out on its own.
	HalfClose bool
	// Seed makes the probabilistic faults reproducible; each connection
	// derives its own RNG from it.
	Seed int64
}

// ParseSpec builds a Config from a comma-separated k=v fault spec, e.g.
//
//	latency=2ms,jitter=1ms,bw=1048576,chunk=7,reset-after=4096,reset-prob=0.001,half-close,seed=42
//
// Unknown keys are errors, so a typoed fault cannot silently run a clean
// proxy. The Target is supplied by the caller, not the spec.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		var err error
		switch key {
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(val)
		case "bw":
			cfg.BandwidthBPS, err = strconv.ParseInt(val, 10, 64)
		case "chunk":
			cfg.ChunkSize, err = strconv.Atoi(val)
		case "reset-after":
			cfg.ResetAfterBytes, err = strconv.ParseInt(val, 10, 64)
		case "reset-prob":
			cfg.ResetProb, err = strconv.ParseFloat(val, 64)
		case "half-close":
			if hasVal {
				return cfg, fmt.Errorf("chaos: half-close takes no value")
			}
			cfg.HalfClose = true
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return cfg, fmt.Errorf("chaos: unknown fault %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: bad %s value %q: %v", key, val, err)
		}
	}
	return cfg, nil
}

// Proxy is one running fault injector. Create with New, start with Start.
type Proxy struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	nextID   atomic.Int64
	accepted atomic.Int64
	resets   atomic.Int64
}

// New creates a proxy for the given fault config.
func New(cfg Config) *Proxy {
	return &Proxy{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Start begins listening and forwarding in background goroutines.
func (p *Proxy) Start() error {
	listen := p.cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return nil
}

// Addr returns the proxy's listen address; clients dial this instead of the
// target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted returns how many client connections the proxy has accepted.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Resets returns how many connections the proxy tore down by fault
// injection (reset-after or reset-prob).
func (p *Proxy) Resets() int64 { return p.resets.Load() }

// Close stops the listener, closes every proxied connection, and waits for
// the pumps to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// register tracks a connection for Close; it reports false when the proxy
// is already shut down and the caller should close the conn itself.
func (p *Proxy) register(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) unregister(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if !p.register(conn) {
			conn.Close()
			return
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go p.serve(conn)
	}
}

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	defer p.unregister(client)
	upstream, err := net.DialTimeout("tcp", p.cfg.Target, 5*time.Second)
	if err != nil {
		return
	}
	if !p.register(upstream) {
		upstream.Close()
		return
	}
	defer p.unregister(upstream)

	id := p.nextID.Add(1)
	lk := &link{proxy: p, client: client, upstream: upstream}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		lk.pump(client, upstream, true, rand.New(rand.NewSource(p.cfg.Seed+2*id)))
	}()
	lk.pump(upstream, client, false, rand.New(rand.NewSource(p.cfg.Seed+2*id+1)))
}

// link is one proxied connection pair; the two pumps share its teardown
// latch and the client-to-server byte count the reset-after fault watches.
type link struct {
	proxy            *Proxy
	client, upstream net.Conn
	c2sBytes         atomic.Int64
	torn             atomic.Bool
}

// teardown abruptly kills both sides of the link exactly once, RST-style
// (linger 0), modelling a mid-flight connection loss rather than a polite
// close.
func (l *link) teardown() {
	if !l.torn.CompareAndSwap(false, true) {
		return
	}
	l.proxy.resets.Add(1)
	for _, c := range []net.Conn{l.client, l.upstream} {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Close()
	}
}

// pump copies one direction of the link, applying the configured faults to
// each forwarded chunk.
func (l *link) pump(src, dst net.Conn, clientToServer bool, rng *rand.Rand) {
	cfg := l.proxy.cfg
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !l.forward(dst, buf[:n], clientToServer, rng) {
				return
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				if clientToServer && cfg.HalfClose {
					// Swallow the FIN: the server side stays half-open and
					// must be collected by its own idle timeout.
					return
				}
				// Propagate the half-close politely so request/response
				// streams finish draining.
				if tc, ok := dst.(*net.TCPConn); ok {
					tc.CloseWrite()
					return
				}
			}
			dst.Close()
			return
		}
	}
}

// forward delivers b to dst under the fault config, reporting false when
// the link was torn down.
func (l *link) forward(dst net.Conn, b []byte, clientToServer bool, rng *rand.Rand) bool {
	cfg := l.proxy.cfg
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = len(b)
	}
	for len(b) > 0 {
		n := min(chunk, len(b))
		if cfg.Latency > 0 || cfg.Jitter > 0 {
			d := cfg.Latency
			if cfg.Jitter > 0 {
				d += time.Duration(rng.Int63n(int64(cfg.Jitter)))
			}
			time.Sleep(d)
		}
		if cfg.ResetProb > 0 && rng.Float64() < cfg.ResetProb {
			l.teardown()
			return false
		}
		if clientToServer && cfg.ResetAfterBytes > 0 {
			sent := l.c2sBytes.Load()
			if sent+int64(n) > cfg.ResetAfterBytes {
				// Forward up to the budget so the payload tears mid-block,
				// then kill the link: the nastiest shape — the server has
				// read a partial data block that will never complete.
				if keep := cfg.ResetAfterBytes - sent; keep > 0 {
					dst.Write(b[:keep])
				}
				l.teardown()
				return false
			}
		}
		if _, err := dst.Write(b[:n]); err != nil {
			return false
		}
		if clientToServer {
			l.c2sBytes.Add(int64(n))
		}
		if cfg.BandwidthBPS > 0 {
			time.Sleep(time.Duration(float64(n) / float64(cfg.BandwidthBPS) * float64(time.Second)))
		}
		b = b[n:]
	}
	return true
}
