package chaos

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address plus a stopper.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(conn, conn)
				conn.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

func startProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p := New(cfg)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("latency=2ms,jitter=1ms,bw=1048576,chunk=7,reset-after=4096,reset-prob=0.25,half-close,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Latency:         2 * time.Millisecond,
		Jitter:          time.Millisecond,
		BandwidthBPS:    1 << 20,
		ChunkSize:       7,
		ResetAfterBytes: 4096,
		ResetProb:       0.25,
		HalfClose:       true,
		Seed:            42,
	}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if _, err := ParseSpec("lateny=2ms"); err == nil {
		t.Fatal("typoed fault key should be an error")
	}
	if _, err := ParseSpec("chunk=seven"); err == nil {
		t.Fatal("bad value should be an error")
	}
	if _, err := ParseSpec("half-close=yes"); err == nil {
		t.Fatal("half-close with a value should be an error")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec should be a clean zero config, got %+v, %v", cfg, err)
	}
}

func TestProxyTransparent(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, Config{Target: echo})

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := "hello through the proxy\r\n"
	if _, err := io.WriteString(conn, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != msg {
		t.Fatalf("echoed %q, want %q", buf, msg)
	}
	if p.Accepted() != 1 {
		t.Fatalf("Accepted = %d, want 1", p.Accepted())
	}
	if p.Resets() != 0 {
		t.Fatalf("Resets = %d, want 0", p.Resets())
	}
}

// TestProxyChunkedPartialWrites proves data arrives intact even when the
// proxy shreds every read into single-byte upstream writes.
func TestProxyChunkedPartialWrites(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, Config{Target: echo, ChunkSize: 1})

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := strings.Repeat("chunk", 20)
	if _, err := io.WriteString(conn, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != msg {
		t.Fatalf("chunked forwarding corrupted data: %q", buf)
	}
}

// TestProxyResetAfterBytes proves the byte-budget fault forwards exactly the
// budget and then tears the link mid-payload.
func TestProxyResetAfterBytes(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, Config{Target: echo, ResetAfterBytes: 10})

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, strings.Repeat("x", 64)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := io.Copy(io.Discard, conn)
	if err == nil && n > 10 {
		t.Fatalf("read %d bytes cleanly, want a torn link after 10", n)
	}
	if n > 10 {
		t.Fatalf("forwarded %d bytes, want at most the 10-byte budget", n)
	}
	waitFor(t, func() bool { return p.Resets() == 1 }, "reset counter")
}

// TestProxyHalfCloseSwallowsFIN: with HalfClose the server side must NOT see
// EOF when the client closes its write half.
func TestProxyHalfCloseSwallowsFIN(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sawEOF := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			sawEOF <- err
			return
		}
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		_, err = conn.Read(make([]byte, 1))
		sawEOF <- err
	}()

	p := startProxy(t, Config{Target: ln.Addr().String(), HalfClose: true})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	defer conn.Close()

	err = <-sawEOF
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("server read = %v, want a deadline timeout (FIN swallowed), not EOF", err)
	}
}

// TestProxyCloseSeversConns: Close must kill live proxied connections, not
// just stop the listener.
func TestProxyCloseSeversConns(t *testing.T) {
	echo := startEcho(t)
	p := New(Config{Target: echo})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Prove the link is live before closing.
	if _, err := io.WriteString(conn, "ping"); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("proxied conn still alive after proxy Close")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
