// Package netpoll is a minimal readiness notifier for parked connections.
// The server hands it a connection's syscall.RawConn plus an opaque token;
// when the peer sends data (or half-closes), the poller calls the onReady
// callback with that token and disarms the registration until Arm re-arms it
// (one-shot semantics, so a wake is delivered exactly once per park and the
// poller never races the worker that is busy serving the connection).
//
// On Linux the implementation is a raw epoll instance (EPOLLIN|EPOLLRDHUP,
// EPOLLONESHOT) driven by one event-loop goroutine, so a parked connection
// costs one epoll registration and zero goroutines. Everywhere else — and on
// Linux for tests, via NewPortable — a goroutine-backed fallback blocks each
// registration in RawConn.Read's readiness wait; it is O(goroutines) again
// but keeps the package and its callers building and testable on any
// platform.
//
// Contract with the caller:
//   - Add registers and arms in one step; Arm re-arms after a delivered wake.
//   - onReady runs on the poller's own goroutine(s): keep it tiny and
//     non-blocking, and be prepared for a late call racing Remove/Close —
//     the caller's own state machine must make stale wakes harmless.
//   - Remove before closing the connection when possible; a registration
//     whose fd is closed underneath it is cleaned up by the kernel (epoll)
//     or by the watcher observing the close (fallback), but Remove keeps the
//     poller's table exact.
//   - Close requires every registered connection to be either removed or
//     closed first; the fallback poller's watcher goroutines park inside the
//     runtime's own read-readiness wait and only a close unblocks them.
package netpoll

import (
	"errors"
	"syscall"
	"time"
)

// Poller delivers one readiness event per armed registration.
type Poller interface {
	// Add registers the connection under token and arms it for one
	// readiness event.
	Add(rc syscall.RawConn, token uint64) error
	// Arm re-arms a registration after its event was delivered. Pending
	// data counts: if bytes arrived between the wake and the re-arm, the
	// event fires again immediately (level-triggered).
	Arm(token uint64) error
	// Remove unregisters the token. A wake already in flight may still be
	// delivered.
	Remove(token uint64) error
	// Close stops the poller and releases its resources.
	Close() error
}

// ErrClosed is returned by operations on a closed poller.
var ErrClosed = errors.New("netpoll: poller closed")

// ReadWaiter is a reusable bounded wait for readability on one fd at a time
// — the primitive behind the server's park linger. Unlike Poller it is
// synchronous: Wait blocks the caller (in the kernel on Linux) until the fd
// has pending bytes, EOF, or an error, or the timeout passes, and allocates
// nothing either way. A waiter is single-threaded: one Wait at a time.
type ReadWaiter interface {
	// Wait reports whether fd became readable within timeout.
	Wait(fd uintptr, timeout time.Duration) bool
	// Close releases the waiter's resources.
	Close() error
}

// New builds the platform poller: epoll on Linux, the goroutine-backed
// fallback elsewhere.
func New(onReady func(token uint64)) (Poller, error) {
	return newPlatformPoller(onReady)
}

// NewPortable builds the goroutine-backed fallback poller on any platform.
// It exists so the fallback stays covered by tests that run on Linux.
func NewPortable(onReady func(token uint64)) Poller {
	return newGoPoller(onReady)
}
