package netpoll

import (
	"net"
	"syscall"
	"testing"
	"time"
)

// tcpPair returns a connected client/server TCP pair on loopback.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	<-done
	if cerr != nil || err != nil {
		t.Fatalf("dial: %v accept: %v", cerr, err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func rawConn(t *testing.T, c net.Conn) syscall.RawConn {
	t.Helper()
	rc, err := c.(syscall.Conn).SyscallConn()
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// eachPoller runs the test against every implementation available on this
// platform: the platform poller (epoll on Linux) and the portable fallback.
func eachPoller(t *testing.T, fn func(t *testing.T, mk func(func(uint64)) Poller)) {
	t.Run("platform", func(t *testing.T) {
		fn(t, func(cb func(uint64)) Poller {
			p, err := New(cb)
			if err != nil {
				t.Fatal(err)
			}
			return p
		})
	})
	t.Run("portable", func(t *testing.T) {
		fn(t, func(cb func(uint64)) Poller {
			return NewPortable(cb)
		})
	})
}

func waitToken(t *testing.T, ch <-chan uint64, want uint64) {
	t.Helper()
	select {
	case got := <-ch:
		if got != want {
			t.Fatalf("ready token = %d, want %d", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no readiness event for token %d", want)
	}
}

func expectQuiet(t *testing.T, ch <-chan uint64, d time.Duration) {
	t.Helper()
	select {
	case got := <-ch:
		t.Fatalf("unexpected readiness event for token %d", got)
	case <-time.After(d):
	}
}

func TestPollerWakeOnData(t *testing.T) {
	eachPoller(t, func(t *testing.T, mk func(func(uint64)) Poller) {
		ready := make(chan uint64, 16)
		p := mk(func(tok uint64) { ready <- tok })
		client, server := tcpPair(t)
		const token = 42
		if err := p.Add(rawConn(t, server), token); err != nil {
			t.Fatal(err)
		}
		// No data yet: the registration must stay quiet.
		expectQuiet(t, ready, 50*time.Millisecond)

		client.Write([]byte("x"))
		waitToken(t, ready, token)
		// One-shot: more data without a re-arm delivers nothing.
		client.Write([]byte("y"))
		expectQuiet(t, ready, 50*time.Millisecond)

		// Re-arm with bytes still pending: fires immediately
		// (level-triggered), so the park/arm race cannot lose a wake.
		if err := p.Arm(token); err != nil {
			t.Fatal(err)
		}
		waitToken(t, ready, token)

		if err := p.Remove(token); err != nil {
			t.Fatal(err)
		}
		server.Close()
		client.Close()
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPollerWakeOnPeerClose(t *testing.T) {
	eachPoller(t, func(t *testing.T, mk func(func(uint64)) Poller) {
		ready := make(chan uint64, 16)
		p := mk(func(tok uint64) { ready <- tok })
		client, server := tcpPair(t)
		const token = 7
		if err := p.Add(rawConn(t, server), token); err != nil {
			t.Fatal(err)
		}
		client.Close() // EOF must surface as readiness so the server can reap
		waitToken(t, ready, token)
		p.Remove(token)
		server.Close()
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPollerManyTokens(t *testing.T) {
	eachPoller(t, func(t *testing.T, mk func(func(uint64)) Poller) {
		ready := make(chan uint64, 64)
		p := mk(func(tok uint64) { ready <- tok })
		const n = 16
		clients := make([]net.Conn, n)
		servers := make([]net.Conn, n)
		for i := 0; i < n; i++ {
			clients[i], servers[i] = tcpPair(t)
			// Tokens deliberately exercise both halves of the packed
			// uint64 so the Fd/Pad round trip is covered.
			if err := p.Add(rawConn(t, servers[i]), uint64(i)<<33|uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		seen := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			clients[i].Write([]byte("x"))
		}
		for i := 0; i < n; i++ {
			select {
			case tok := <-ready:
				if seen[tok] {
					t.Fatalf("token %d delivered twice", tok)
				}
				seen[tok] = true
			case <-time.After(5 * time.Second):
				t.Fatalf("only %d/%d readiness events", len(seen), n)
			}
		}
		for i := 0; i < n; i++ {
			tok := uint64(i)<<33 | uint64(i)
			if !seen[tok] {
				t.Fatalf("token %d never delivered", tok)
			}
			p.Remove(tok)
			servers[i].Close()
			clients[i].Close()
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPollerClosedOps(t *testing.T) {
	eachPoller(t, func(t *testing.T, mk func(func(uint64)) Poller) {
		p := mk(func(uint64) {})
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		_, server := tcpPair(t)
		if err := p.Add(rawConn(t, server), 1); err != ErrClosed {
			t.Fatalf("Add after Close = %v, want ErrClosed", err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("second Close = %v", err)
		}
	})
}
