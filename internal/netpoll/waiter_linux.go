//go:build linux

package netpoll

import (
	"syscall"
	"time"
)

// ReadWaiter on Linux is a private single-fd epoll instance. Wait blocks the
// calling OS thread in epoll_wait — not a goroutine spin — so on a saturated
// GOMAXPROCS the runtime hands the P to the goroutines that will produce the
// awaited bytes (the scheduler reclaims a P from a thread blocked in a
// syscall). epoll rather than select because fd numbers above FD_SETSIZE
// must work, and rather than poll/ppoll because the syscall package does not
// export them.
type readWaiter struct {
	epfd int
	ev   [1]syscall.EpollEvent
}

// NewReadWaiter builds a waiter. Callers own Close.
func NewReadWaiter() (ReadWaiter, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	return &readWaiter{epfd: epfd}, nil
}

// Wait reports whether fd became readable (bytes, EOF, or error) within
// timeout. It allocates nothing. epoll_wait has millisecond granularity, so
// sub-millisecond timeouts round up to one millisecond.
func (w *readWaiter) Wait(fd uintptr, timeout time.Duration) bool {
	// The cheap probe first: on a busy connection the next batch is already
	// in the socket buffer and no epoll round trip is needed.
	if DataPending(fd) {
		return true
	}
	w.ev[0] = syscall.EpollEvent{
		Events: uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP),
		Fd:     int32(fd),
	}
	if err := syscall.EpollCtl(w.epfd, syscall.EPOLL_CTL_ADD, int(fd), &w.ev[0]); err != nil {
		// Unpollable or raced a close; report readable so the caller's own
		// read surfaces the real story.
		return true
	}
	defer syscall.EpollCtl(w.epfd, syscall.EPOLL_CTL_DEL, int(fd), nil)
	msec := int(timeout / time.Millisecond)
	if msec <= 0 {
		msec = 1
	}
	for {
		n, err := syscall.EpollWait(w.epfd, w.ev[:], msec)
		if err == syscall.EINTR {
			continue
		}
		return err == nil && n > 0
	}
}

func (w *readWaiter) Close() error {
	return syscall.Close(w.epfd)
}
