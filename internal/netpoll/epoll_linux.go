//go:build linux

package netpoll

import (
	"sync"
	"syscall"
)

// epollPoller is the Linux implementation: one epoll instance, one event-loop
// goroutine, zero goroutines per registration. Registrations are one-shot
// (EPOLLONESHOT): after a readiness event is delivered the fd stays in the
// interest list but disarmed until Arm issues EPOLL_CTL_MOD. Level-triggered
// semantics mean a re-arm with bytes already pending fires immediately, so a
// wake can never be lost to the park/arm race.
//
// The token travels inside the epoll event itself, packed into the Fd+Pad
// fields of the user-data union, so the event loop needs no lookup to
// dispatch. A self-pipe registered under a sentinel token unblocks EpollWait
// for shutdown.
type epollPoller struct {
	onReady func(uint64)

	mu     sync.Mutex
	fds    map[uint64]int32 // token -> fd, for Arm/Remove
	ev     syscall.EpollEvent
	closed bool

	epfd     int
	wakeR    int
	wakeW    int
	loopDone chan struct{}
}

// wakeToken marks the self-pipe's events; real tokens must never use it.
const wakeToken = ^uint64(0)

func newPlatformPoller(onReady func(uint64)) (Poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	p := &epollPoller{
		onReady:  onReady,
		fds:      make(map[uint64]int32),
		epfd:     epfd,
		wakeR:    pipe[0],
		wakeW:    pipe[1],
		loopDone: make(chan struct{}),
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN}
	packToken(&ev, wakeToken)
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, pipe[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipe[0])
		syscall.Close(pipe[1])
		return nil, err
	}
	go p.loop()
	return p, nil
}

func packToken(ev *syscall.EpollEvent, token uint64) {
	ev.Fd = int32(uint32(token))
	ev.Pad = int32(uint32(token >> 32))
}

func unpackToken(ev *syscall.EpollEvent) uint64 {
	return uint64(uint32(ev.Fd)) | uint64(uint32(ev.Pad))<<32
}

const armedEvents = syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT

func (p *epollPoller) Add(rc syscall.RawConn, token uint64) error {
	var fd int32
	if err := rc.Control(func(f uintptr) { fd = int32(f) }); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	p.fds[token] = fd
	// p.ev is reused under the lock so registering allocates nothing; the
	// kernel copies the event out during the syscall.
	p.ev = syscall.EpollEvent{Events: armedEvents}
	packToken(&p.ev, token)
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, int(fd), &p.ev); err != nil {
		delete(p.fds, token)
		return err
	}
	return nil
}

func (p *epollPoller) Arm(token uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	fd, ok := p.fds[token]
	if !ok {
		return syscall.ENOENT
	}
	p.ev = syscall.EpollEvent{Events: armedEvents}
	packToken(&p.ev, token)
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, int(fd), &p.ev)
}

func (p *epollPoller) Remove(token uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	fd, ok := p.fds[token]
	if !ok {
		return nil
	}
	delete(p.fds, token)
	// EBADF/ENOENT mean the fd was already closed (the kernel dropped the
	// registration itself) — not an error worth surfacing.
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, int(fd), nil); err != nil &&
		err != syscall.EBADF && err != syscall.ENOENT {
		return err
	}
	return nil
}

func (p *epollPoller) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.loopDone
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	// Poke the self-pipe so the event loop notices the flag and exits; the
	// loop owns closing the fds so no EpollWait can race a reused fd number.
	syscall.Write(p.wakeW, []byte{0})
	<-p.loopDone
	return nil
}

func (p *epollPoller) loop() {
	defer close(p.loopDone)
	events := make([]syscall.EpollEvent, 128)
	var drain [64]byte
	for {
		n, err := syscall.EpollWait(p.epfd, events, -1)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			break
		}
		for i := 0; i < n; i++ {
			token := unpackToken(&events[i])
			if token == wakeToken {
				for {
					if c, _ := syscall.Read(p.wakeR, drain[:]); c <= 0 {
						break
					}
				}
				continue
			}
			p.onReady(token)
		}
		p.mu.Lock()
		done := p.closed
		p.mu.Unlock()
		if done {
			break
		}
	}
	syscall.Close(p.epfd)
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}
