package netpoll

import (
	"sync"
	"syscall"
)

// goPoller is the portable fallback: one watcher goroutine per registration,
// blocked inside the runtime's own read-readiness wait (the RawConn.Read
// return-false-once trick observes readability without consuming a byte).
// It costs a goroutine per parked connection again — the thing the epoll
// poller exists to avoid — but it needs nothing platform-specific, so darwin
// builds and every test of the park/wake state machine can run against it.
type goPoller struct {
	onReady func(uint64)

	mu     sync.Mutex
	regs   map[uint64]*goReg
	closed bool
	wg     sync.WaitGroup
}

type goReg struct {
	rc   syscall.RawConn
	arm  chan struct{} // capacity 1: a pending re-arm waits here
	stop chan struct{}
}

func newGoPoller(onReady func(uint64)) *goPoller {
	return &goPoller{
		onReady: onReady,
		regs:    make(map[uint64]*goReg),
	}
}

func (p *goPoller) Add(rc syscall.RawConn, token uint64) error {
	reg := &goReg{
		rc:   rc,
		arm:  make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.regs[token] = reg
	p.wg.Add(1)
	p.mu.Unlock()
	go p.watch(reg, token)
	return nil
}

func (p *goPoller) Arm(token uint64) error {
	p.mu.Lock()
	reg := p.regs[token]
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if reg == nil {
		return syscall.ENOENT
	}
	select {
	case reg.arm <- struct{}{}:
	default:
		// Already armed; the caller's state machine should make this
		// impossible, but a duplicate arm is harmless either way.
	}
	return nil
}

func (p *goPoller) Remove(token uint64) error {
	p.mu.Lock()
	reg := p.regs[token]
	delete(p.regs, token)
	p.mu.Unlock()
	if reg != nil {
		close(reg.stop)
	}
	return nil
}

func (p *goPoller) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	for token, reg := range p.regs {
		close(reg.stop)
		delete(p.regs, token)
	}
	p.mu.Unlock()
	// Watchers parked in the readiness wait only unblock when their
	// connection closes — the package contract requires the caller to have
	// closed or removed every registration before Close, so this wait is
	// bounded.
	p.wg.Wait()
	return nil
}

func (p *goPoller) watch(reg *goReg, token uint64) {
	defer p.wg.Done()
	for {
		// Wait for readability without consuming bytes. The runtime's
		// readiness wait is edge-triggered and RawConn.Read resets the
		// pending-edge flag on entry, so an edge that fired before this
		// call (data arriving between a wake and the re-arm) would be
		// lost — peek the socket first to recover level-triggered
		// semantics, and only block for the next edge when the buffer is
		// truly empty.
		checked := false
		err := reg.rc.Read(func(fd uintptr) bool {
			if checked {
				return true
			}
			checked = true
			return DataPending(fd)
		})
		select {
		case <-reg.stop:
			return
		default:
		}
		if err != nil {
			// The fd was closed or errored underneath us. Deliver one last
			// wake — the worker's own read surfaces the real error — then
			// wait for teardown instead of spinning.
			p.onReady(token)
			<-reg.stop
			return
		}
		p.onReady(token)
		select {
		case <-reg.arm:
		case <-reg.stop:
			return
		}
	}
}

// DataPending reports whether a read on the (non-blocking) fd would not
// block: buffered bytes, EOF, or a socket error all count as readable. The
// peek consumes nothing, so callers can probe a socket they are about to
// hand back to a poller (or have just taken from one) without perturbing
// the byte stream. It never allocates.
func DataPending(fd uintptr) bool {
	var buf [1]byte
	n, _, err := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK)
	if n > 0 {
		return true
	}
	if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK {
		return false
	}
	return true
}
