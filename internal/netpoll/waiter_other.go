//go:build !linux

package netpoll

import "time"

// readWaiter on non-Linux platforms is a peek-and-sleep loop: portable, and
// the short sleeps keep the runtime netpoller scheduled so the goroutines
// producing the awaited bytes make progress even at GOMAXPROCS=1.
type readWaiter struct{}

// NewReadWaiter builds a waiter. Callers own Close.
func NewReadWaiter() (ReadWaiter, error) {
	return readWaiter{}, nil
}

func (readWaiter) Wait(fd uintptr, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if DataPending(fd) {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func (readWaiter) Close() error { return nil }
