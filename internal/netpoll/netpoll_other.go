//go:build !linux

package netpoll

// Platforms without the epoll implementation fall back to the goroutine-backed
// poller, trading the O(1)-goroutine property for portability.
func newPlatformPoller(onReady func(uint64)) (Poller, error) {
	return newGoPoller(onReady), nil
}
