package core

import (
	"cliffhanger/internal/cache"
)

// segment identifies where in a partition's chain a key was found.
type segment int

const (
	segMiss segment = iota
	segFront
	segTail  // physical hit in the tail window ("left of pointer")
	segCliff // hit in the cliff-scaling shadow queue ("right of pointer")
	segHill  // hit in the hill-climbing shadow queue
)

// partition is one half of a cliff-scaled queue (Figure 5): a physical LRU
// split into a front segment and a tail window, followed by a short
// cliff-scaling shadow queue and a share of the hill-climbing shadow queue.
// Keys cascade down the chain as they age: front -> tail window -> cliff
// shadow -> hill shadow -> forgotten. Crossing the tail-window boundary is a
// physical eviction (the caller must drop the value).
type partition struct {
	front *cache.LRU
	tail  *cache.LRU
	cliff *cache.Shadow
	hill  *cache.Shadow

	physCapacity int64 // target capacity of front+tail, in cost units
	tailCapacity int64 // capacity reserved for the tail window
}

func newPartition(physCapacity, tailCapacity, cliffCapacity, hillCapacity int64) *partition {
	if physCapacity < 0 {
		physCapacity = 0
	}
	frontCap := physCapacity - tailCapacity
	if frontCap < 0 {
		frontCap = 0
	}
	tailCap := physCapacity - frontCap
	return &partition{
		front:        cache.NewLRU(frontCap),
		tail:         cache.NewLRU(tailCap),
		cliff:        cache.NewShadow(cliffCapacity),
		hill:         cache.NewShadow(hillCapacity),
		physCapacity: physCapacity,
		tailCapacity: tailCapacity,
	}
}

// lookup reports where key currently resides without modifying the chain.
func (p *partition) lookup(key string) segment {
	switch {
	case p.front.Contains(key):
		return segFront
	case p.tail.Contains(key):
		return segTail
	case p.cliff.Contains(key):
		return segCliff
	case p.hill.Contains(key):
		return segHill
	default:
		return segMiss
	}
}

// remove deletes key from whichever segment holds it.
func (p *partition) remove(key string) bool {
	return p.front.Remove(key) || p.tail.Remove(key) || p.cliff.Remove(key) || p.hill.Remove(key)
}

// promote handles a reference to key that was found in segment seg: the key
// is moved to the front of the physical chain (for segFront a plain LRU
// promotion suffices) and overflow cascades down the chain. It returns the
// keys physically evicted by the cascade.
func (p *partition) promote(key string, cost int64, seg segment) []cache.Victim {
	switch seg {
	case segFront:
		p.front.Get(key)
		return nil
	case segTail:
		p.tail.Remove(key)
	case segCliff:
		p.cliff.Remove(key)
	case segHill:
		p.hill.Remove(key)
	}
	return p.insert(key, cost)
}

// insert places key at the head of the physical chain and cascades overflow
// down the segments, returning physical evictions.
func (p *partition) insert(key string, cost int64) []cache.Victim {
	var physical []cache.Victim
	// If the front segment cannot hold this entry (tiny partitions, or cost
	// exceeding the front capacity), insert directly into the tail window —
	// checked up front so the steady-state path never pays front.Add's
	// rejection-victim allocation.
	if p.front.Capacity() <= 0 || cost > p.front.Capacity() {
		overflow := p.tail.Add(key, cost)
		physical = append(physical, p.cascadeFromTail(overflow)...)
		return physical
	}
	// Normal cascade: front overflow enters the tail window.
	for _, v := range p.front.Add(key, cost) {
		ov := p.tail.Add(v.Key, v.Cost)
		physical = append(physical, p.cascadeFromTail(ov)...)
	}
	return physical
}

// cascadeFromTail handles entries falling out of the tail window: they are
// physically evicted (reported to the caller) and their keys are remembered
// by the cliff shadow, whose own overflow flows into the hill shadow.
func (p *partition) cascadeFromTail(victims []cache.Victim) []cache.Victim {
	for _, v := range victims {
		for _, cv := range p.cliff.Push(v.Key, v.Cost) {
			p.hill.Push(cv.Key, cv.Cost)
		}
	}
	return victims
}

// setPhysCapacity retargets the partition's physical capacity, keeping the
// tail window at its configured size, and cascades any overflow. It returns
// physical evictions.
func (p *partition) setPhysCapacity(physCapacity int64) []cache.Victim {
	if physCapacity < 0 {
		physCapacity = 0
	}
	p.physCapacity = physCapacity
	frontCap := physCapacity - p.tailCapacity
	if frontCap < 0 {
		frontCap = 0
	}
	tailCap := physCapacity - frontCap
	var physical []cache.Victim
	// Shrink the tail first so front overflow has room to cascade sanely.
	for _, v := range p.tail.Resize(tailCap) {
		physical = append(physical, v)
		for _, cv := range p.cliff.Push(v.Key, v.Cost) {
			p.hill.Push(cv.Key, cv.Cost)
		}
	}
	for _, v := range p.front.Resize(frontCap) {
		ov := p.tail.Add(v.Key, v.Cost)
		physical = append(physical, p.cascadeFromTail(ov)...)
	}
	return physical
}

// setHillCapacity retargets the partition's share of the hill-climbing
// shadow queue.
func (p *partition) setHillCapacity(capacity int64) {
	p.hill.Resize(capacity)
}

// used reports the physically resident cost.
func (p *partition) used() int64 { return p.front.Used() + p.tail.Used() }

// items reports the number of physically resident entries.
func (p *partition) items() int { return p.front.Len() + p.tail.Len() }

// AccessOutcome describes the result of one access to a managed queue.
type AccessOutcome struct {
	// Hit is true when the key was physically resident (a cache hit).
	Hit bool
	// ShadowHit is true when the key was found in the hill-climbing shadow
	// queue (a miss that signals the queue would benefit from more memory).
	ShadowHit bool
	// CliffShadowHit is true when the key was found in a cliff-scaling
	// shadow queue ("right of pointer").
	CliffShadowHit bool
	// TailWindowHit is true when the key hit in the physical tail window
	// ("left of pointer"). TailWindowHit implies Hit.
	TailWindowHit bool
	// Evicted lists keys physically evicted as a consequence of this
	// access; the caller must drop their values.
	Evicted []cache.Victim
}

// QueueStats accumulates per-queue counters.
type QueueStats struct {
	Requests        int64
	Hits            int64
	ShadowHits      int64
	CliffShadowHits int64
	Evictions       int64
	Resizes         int64
	// Pointer-event counters, useful when diagnosing cliff-scaling
	// behaviour: hits in the cliff shadow ("right of pointer") and the tail
	// window ("left of pointer") of each partition.
	LeftCliffEvents  int64
	LeftTailEvents   int64
	RightCliffEvents int64
	RightTailEvents  int64
	// StalePointerEvents counts shadow/tail hits that were ignored because
	// the partition was not full (its shadow contents were stale).
	StalePointerEvents int64
	// RelaxEvents counts pointer pull-backs triggered by clearly underfull
	// partitions.
	RelaxEvents int64
}

// underfullBy reports whether the partition's resident cost is below its
// target capacity by more than margin.
func underfullBy(p *partition, margin int64) bool {
	return p.used()+margin < p.physCapacity
}

// relaxMargin is the slack a partition must show before its pointer is
// relaxed: several credits plus the tail-window size (the tail drains while
// the front refills after any capacity increase, creating benign slack of up
// to one tail window), or a sixteenth of capacity for large partitions —
// whichever is larger — so that growth transients never trigger relaxation.
func relaxMargin(p *partition, credit int64) int64 {
	m := 4*credit + p.tailCapacity
	if alt := p.physCapacity/16 + p.tailCapacity; alt > m {
		m = alt
	}
	return m
}

// Queue is one Cliffhanger-managed eviction queue: a slab class or an
// application. It owns the Figure-5 structure (two partitions, each with a
// tail window, a cliff shadow and a hill shadow) and runs the cliff-scaling
// pointer algorithm locally. Capacity changes come from the Manager's hill
// climbing (or from the caller when hill climbing is disabled).
type Queue struct {
	id       string
	cfg      Config
	unitCost int64

	capacity int64 // target total physical capacity (cost units)

	left, right *partition
	split       bool

	// Cliff-scaling state (Algorithm 2/3), in cost units.
	leftPointer  int64
	rightPointer int64
	ratio        float64 // fraction of requests routed to the left partition
	// leftEvents and rightEvents count pointer-update events per side and
	// drive the slow leak that pulls idle pointers back toward the
	// operating point (see updatePointers).
	leftEvents  uint64
	rightEvents uint64

	pendingResize bool
	rr            uint64 // round-robin counter for SplitRoundRobin
	missCount     uint64 // drives the relaxation rate limit

	stats QueueStats
}

// newQueue builds a queue with the given initial capacity. unitCost is the
// typical per-item cost (the slab chunk size) used to convert the item-based
// window parameters into cost units.
func newQueue(id string, cfg Config, capacity, unitCost int64) *Queue {
	if unitCost <= 0 {
		unitCost = 1
	}
	if capacity < 0 {
		capacity = 0
	}
	q := &Queue{
		id:       id,
		cfg:      cfg,
		unitCost: unitCost,
		capacity: capacity,
		ratio:    1.0,
	}
	tailCap := cfg.TailWindowItems * unitCost
	cliffCap := cfg.CliffShadowItems * unitCost
	// Unsplit layout: everything lives in the left partition.
	q.left = newPartition(capacity, tailCap, cliffCap, cfg.ShadowBytes)
	q.right = newPartition(0, tailCap, cliffCap, 0)
	q.leftPointer = capacity
	q.rightPointer = capacity
	// Apply the initial layout immediately (splitting the capacity in half
	// when cliff scaling activates) so the very first requests already see
	// correctly sized partitions.
	q.pendingResize = true
	q.applyResize()
	return q
}

// ID returns the queue's identifier.
func (q *Queue) ID() string { return q.id }

// Capacity returns the queue's target physical capacity in cost units.
func (q *Queue) Capacity() int64 { return q.capacity }

// AppliedCapacity returns the physical capacity currently applied to the
// queue's partitions. It lags Capacity while a resize is pending (resizes are
// applied lazily on misses per the paper's thrash-avoidance rule); the
// documented occupancy invariant is Used() <= AppliedCapacity(), not
// Used() <= Capacity().
func (q *Queue) AppliedCapacity() int64 {
	return q.left.physCapacity + q.right.physCapacity
}

// PendingResize reports whether a capacity or partition change is still
// waiting to be applied (on the next miss, or via ForceApplyResize).
func (q *Queue) PendingResize() bool { return q.pendingResize }

// Used returns the physically resident cost.
func (q *Queue) Used() int64 { return q.left.used() + q.right.used() }

// Items returns the number of physically resident entries.
func (q *Queue) Items() int { return q.left.items() + q.right.items() }

// Stats returns a copy of the queue's counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// Split reports whether cliff scaling is currently active on this queue.
func (q *Queue) Split() bool { return q.split }

// Ratio returns the current fraction of requests routed to the left
// partition (0.5 on concave curves, shifted when a cliff is detected).
func (q *Queue) Ratio() float64 { return q.ratio }

// Pointers returns the cliff-scaling pointers (left, right) in cost units.
func (q *Queue) Pointers() (int64, int64) { return q.leftPointer, q.rightPointer }

// PartitionCapacities returns the current physical capacities of the left
// and right partitions.
func (q *Queue) PartitionCapacities() (int64, int64) {
	return q.left.physCapacity, q.right.physCapacity
}

// SetCapacity retargets the queue's total physical capacity. The change is
// applied lazily on the next miss when ResizeOnMissOnly is set, matching the
// paper's thrash-avoidance rule.
func (q *Queue) SetCapacity(capacity int64) {
	if capacity < 0 {
		capacity = 0
	}
	if capacity == q.capacity {
		return
	}
	q.capacity = capacity
	q.clampPointers()
	q.pendingResize = true
}

// Contains reports whether key is physically resident.
func (q *Queue) Contains(key string) bool {
	s := q.left.lookup(key)
	if s == segFront || s == segTail {
		return true
	}
	s = q.right.lookup(key)
	return s == segFront || s == segTail
}

// Remove deletes key from the queue entirely (physical and shadow segments).
func (q *Queue) Remove(key string) bool {
	l := q.left.remove(key)
	r := q.right.remove(key)
	return l || r
}

// Access processes one request for key with the given cost and returns the
// outcome. On a miss the key is admitted (demand fill); the caller stores
// the value and drops the values of any Evicted keys.
func (q *Queue) Access(key string, cost int64) AccessOutcome {
	q.stats.Requests++
	target, other := q.route(key)

	// Find the key, preferring its routed partition but falling back to the
	// other so that ratio changes migrate keys instead of losing them.
	found := target
	seg := target.lookup(key)
	if seg == segMiss {
		if s := other.lookup(key); s != segMiss {
			found = other
			seg = s
		}
	}

	var out AccessOutcome
	switch seg {
	case segFront, segTail:
		out.Hit = true
		out.TailWindowHit = seg == segTail
		q.stats.Hits++
	case segCliff:
		out.CliffShadowHit = true
		q.stats.CliffShadowHits++
	case segHill:
		out.ShadowHit = true
		q.stats.ShadowHits++
	}

	// Cliff-scaling pointer updates (Algorithm 2): driven by hits at the
	// tail window (left of pointer) and in the cliff shadow (right of
	// pointer) of each partition.
	if q.split && q.cfg.EnableCliffScaling {
		q.updatePointers(found, seg)
	}

	// Promote or admit the key. Misses and shadow hits are admissions into
	// the routed partition; physical hits are promotions within the
	// partition where the key resides.
	var evicted []cache.Victim
	if out.Hit {
		evicted = found.promote(key, cost, seg)
	} else {
		if seg != segMiss {
			// Drop the key's shadow entry (wherever it lives) so it is
			// admitted exactly once.
			found.remove(key)
		}
		evicted = append(evicted, target.insert(key, cost)...)
	}
	// Relax pointers toward "just full" partition sizes. A partition that is
	// underfull by a clear margin has more memory than its key subset needs,
	// which means its pointer overshot the anchor Talus would choose (the
	// size at which the partition exactly fits its share of the working
	// set). The paper's pointer rules have no restoring force in that state
	// because an underfull partition stops evicting and its measurement
	// windows go quiet, so we pull the pointer back one credit at a time, at
	// most once per pointerLeakPeriod misses. This also implements lazy
	// growth: partitions only keep memory they demonstrably fill.
	if q.split && q.cfg.EnableCliffScaling && !out.Hit {
		q.missCount++
		if q.missCount%pointerLeakPeriod == 0 {
			credit := q.cfg.CreditBytes
			if q.rightPointer > q.capacity && underfullBy(q.right, relaxMargin(q.right, credit)) {
				q.stats.RelaxEvents++
				q.rightPointer -= credit
				q.clampPointers()
				q.recomputeRatio()
				q.pendingResize = true
			}
			if q.leftPointer > q.unitCost*q.cfg.TailWindowItems && underfullBy(q.left, relaxMargin(q.left, credit)) {
				q.stats.RelaxEvents++
				q.leftPointer -= credit
				q.clampPointers()
				q.recomputeRatio()
				q.pendingResize = true
			}
		}
	}
	// Apply pending capacity changes: on every access when thrash avoidance
	// is disabled, otherwise only when this access was a miss (§5.1).
	if q.pendingResize && (!q.cfg.ResizeOnMissOnly || !out.Hit) {
		evicted = append(evicted, q.applyResize()...)
	}
	out.Evicted = evicted
	q.stats.Evictions += int64(len(evicted))
	return out
}

// route returns the partition the key is routed to and the other partition.
func (q *Queue) route(key string) (target, other *partition) {
	if !q.split {
		return q.left, q.right
	}
	var toLeft bool
	switch q.cfg.Splitter {
	case SplitRoundRobin:
		q.rr++
		// Route in proportion to ratio using a deterministic low-discrepancy
		// sequence: the fractional part of rr*ratio.
		toLeft = float64(q.rr%1000)/1000.0 < q.ratio
	default:
		h := fnv1a(key)
		toLeft = float64(h%(1<<20))/float64(1<<20) < q.ratio
	}
	if toLeft {
		return q.left, q.right
	}
	return q.right, q.left
}

// updatePointers implements Algorithm 2. The "shadow queue" of each
// partition conceptually straddles that partition's pointer: its left half
// is the partition's physical tail window and its right half is the
// partition's cliff shadow queue (§5.1). Hits right of a pointer push it
// outward (right pointer grows, left pointer shrinks); hits left of a
// pointer pull it back toward the current operating point.
func (q *Queue) updatePointers(p *partition, seg segment) {
	if seg != segTail && seg != segCliff {
		return
	}
	credit := q.cfg.CreditBytes
	// Only full partitions produce meaningful pointer signals. An underfull
	// partition is not evicting, so anything found in its tail window or
	// cliff shadow is a stale leftover from before its last resize; acting
	// on those would let the pointers ratchet away from the operating point
	// on noise (and during warm-up).
	if p.used()+credit < p.physCapacity {
		q.stats.StalePointerEvents++
		return
	}
	switch {
	case p == q.right && seg == segCliff:
		q.stats.RightCliffEvents++
		q.rightPointer += credit
	case p == q.right && seg == segTail:
		q.stats.RightTailEvents++
		if q.rightPointer > q.capacity {
			q.rightPointer -= credit
		}
	case p == q.left && seg == segCliff:
		q.stats.LeftCliffEvents++
		q.leftPointer -= credit
	case p == q.left && seg == segTail:
		q.stats.LeftTailEvents++
		if q.leftPointer < q.capacity {
			q.leftPointer += credit
		}
	}
	// Slow leak toward the operating point. On concave (or locally linear)
	// curves the left/right window hit rates are nearly equal, so the
	// pointers perform an almost unbiased random walk; without a weak
	// restoring force they wander far from the operating point and skew the
	// partition sizes for no benefit. One extra credit of pull per
	// pointerLeakPeriod events is negligible against the sustained
	// imbalance a real cliff produces but keeps idle pointers home.
	if p == q.left {
		q.leftEvents++
		if q.leftEvents%pointerLeakPeriod == 0 && q.leftPointer < q.capacity {
			q.leftPointer += credit
		}
	} else {
		q.rightEvents++
		if q.rightEvents%pointerLeakPeriod == 0 && q.rightPointer > q.capacity {
			q.rightPointer -= credit
		}
	}
	q.clampPointers()
	q.recomputeRatio()
	q.pendingResize = true
}

// pointerLeakPeriod is the number of pointer-update events between leak
// steps; see updatePointers.
const pointerLeakPeriod = 8

// clampPointers keeps the pointers on their respective sides of the current
// operating point: leftPointer in [minQueue, capacity], rightPointer in
// [capacity, +inf).
func (q *Queue) clampPointers() {
	minLeft := q.unitCost * q.cfg.TailWindowItems
	if minLeft <= 0 {
		minLeft = q.unitCost
	}
	if q.leftPointer > q.capacity {
		q.leftPointer = q.capacity
	}
	if q.leftPointer < minLeft {
		q.leftPointer = minLeft
	}
	if q.rightPointer < q.capacity {
		q.rightPointer = q.capacity
	}
}

// recomputeRatio implements Algorithm 3 (ComputeRatio): the fraction of
// requests routed to the left (small) partition is proportional to the
// distance of the right pointer from the operating point.
//
// A small dead zone is applied: while both pointers are within a couple of
// credits of the operating point (which is where they hover on concave
// curves, since their reflecting barriers sit at the operating point) the
// ratio stays pinned at 0.5 so that concave workloads see a stable, evenly
// split queue instead of constant re-partitioning churn.
func (q *Queue) recomputeRatio() {
	if q.ratioPinned() {
		q.ratio = 0.5
		return
	}
	distanceRight := float64(q.rightPointer - q.capacity)
	distanceLeft := float64(q.capacity - q.leftPointer)
	q.ratio = distanceRight / (distanceRight + distanceLeft)
}

// ratioPinned reports whether the pointers are still too close to the
// operating point for the Talus ratio to be meaningful; in that regime the
// request split stays at 0.5. The dead zone is several credits wide because
// a pointer hovering one or two credits past the operating point (which
// happens constantly on concave curves) would otherwise produce wildly
// lopsided ratios (e.g. dR=1 credit against dL=thousands) and thrash the
// partitions.
func (q *Queue) ratioPinned() bool {
	deadZone := 4 * q.cfg.CreditBytes
	return q.rightPointer-q.capacity <= deadZone || q.capacity-q.leftPointer <= deadZone
}

// applyResize implements UpdatePhysicalQueues of Algorithm 3 plus the
// hill-climbing capacity target: the left partition simulates a queue of
// leftPointer items by holding leftPointer*ratio of them, and the right
// partition simulates rightPointer items with rightPointer*(1-ratio). When
// the queue is not split, the left partition simply takes the whole
// capacity. The 1 MiB hill-climbing shadow is split across partitions in
// proportion to their sizes (§5.1).
func (q *Queue) applyResize() []cache.Victim {
	q.pendingResize = false
	q.stats.Resizes++
	q.maybeToggleSplit()
	var victims []cache.Victim
	if !q.split {
		victims = append(victims, q.left.setPhysCapacity(q.capacity)...)
		victims = append(victims, q.right.setPhysCapacity(0)...)
		q.left.setHillCapacity(q.cfg.ShadowBytes)
		q.right.setHillCapacity(0)
		return victims
	}
	// Target partition sizes per Algorithm 3 (UpdatePhysicalQueues). When
	// the ratio is pinned at 0.5 the Talus identity left·ratio +
	// right·(1-ratio) = capacity does not hold, so the right partition is
	// given whatever the left does not use: this keeps the full budget in
	// use and lets the right partition explore larger simulated sizes,
	// which is how the right pointer discovers the top of a cliff.
	// In the unpinned regime the Talus identity guarantees that
	// right = capacity - left, so deriving the right size from the left
	// keeps the sum exact despite rounding; in the pinned regime it is the
	// reinvestment rule described above.
	leftTarget := int64(float64(q.leftPointer) * q.ratio)
	if leftTarget > q.capacity {
		leftTarget = q.capacity
	}
	// Bound the per-resize movement so that transient ratio or pointer
	// swings never repartition a large fraction of the queue at once; the
	// resize is re-applied on subsequent misses until the target is reached.
	maxStep := 8 * q.cfg.CreditBytes
	if alt := q.capacity / 64; alt > maxStep {
		maxStep = alt
	}
	leftCap := stepToward(q.left.physCapacity, leftTarget, maxStep)
	if leftCap > q.capacity {
		leftCap = q.capacity
	}
	rightCap := q.capacity - leftCap
	// Hysteresis: skip physical repartitioning when the targets moved by
	// less than one credit, so pointer jitter does not thrash the queues.
	if abs64(leftCap-q.left.physCapacity) < q.cfg.CreditBytes &&
		abs64(rightCap-q.right.physCapacity) < q.cfg.CreditBytes &&
		q.left.physCapacity+q.right.physCapacity <= q.capacity {
		return victims
	}
	if leftCap != leftTarget {
		// Not yet at the target: keep resizing on subsequent misses.
		q.pendingResize = true
	}
	victims = append(victims, q.left.setPhysCapacity(leftCap)...)
	victims = append(victims, q.right.setPhysCapacity(rightCap)...)
	total := leftCap + rightCap
	if total <= 0 {
		total = 1
	}
	q.left.setHillCapacity(q.cfg.ShadowBytes * leftCap / total)
	q.right.setHillCapacity(q.cfg.ShadowBytes * rightCap / total)
	return victims
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// stepToward moves cur toward target by at most step.
func stepToward(cur, target, step int64) int64 {
	switch {
	case target > cur+step:
		return cur + step
	case target < cur-step:
		return cur - step
	default:
		return target
	}
}

// maybeToggleSplit activates or deactivates cliff scaling based on the
// queue's size in items (§5.1: only queues above ~1000 items).
func (q *Queue) maybeToggleSplit() {
	if !q.cfg.EnableCliffScaling {
		q.split = false
		q.ratio = 1.0
		return
	}
	items := q.capacity / q.unitCost
	switch {
	case !q.split && items >= q.cfg.CliffMinItems:
		q.split = true
		q.leftPointer = q.capacity
		q.rightPointer = q.capacity
		q.ratio = 0.5
	case q.split && items < q.cfg.CliffMinItems*8/10:
		// Hysteresis: deactivate only when clearly below the threshold.
		q.split = false
		q.ratio = 1.0
	}
}

// ForceApplyResize applies any pending capacity changes immediately. It is
// used by tests and by callers that drain a queue.
func (q *Queue) ForceApplyResize() []cache.Victim {
	if !q.pendingResize {
		return nil
	}
	return q.applyResize()
}
