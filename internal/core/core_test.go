package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// itemCfg returns a config scaled to unit-cost-1 items for compact tests:
// credits of 32 items, a 2000-item hill-climbing shadow, the paper's 128-item
// windows, cliff scaling above 1000 items, and a fixed seed.
func itemCfg() Config {
	return Config{
		CreditBytes:        32,
		ShadowBytes:        2000,
		CliffShadowItems:   128,
		TailWindowItems:    128,
		CliffMinItems:      1000,
		ResizeOnMissOnly:   true,
		EnableHillClimbing: true,
		EnableCliffScaling: true,
		MinQueueBytes:      256,
		Seed:               1,
	}
}

func singleQueue(t testing.TB, cfg Config, capacity int64) (*Manager, string) {
	t.Helper()
	m, err := NewManager(cfg, capacity, []QueueSpec{{ID: "q", UnitCost: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return m, "q"
}

func TestDefaultConfigValues(t *testing.T) {
	c := DefaultConfig()
	if c.CreditBytes != 4096 || c.ShadowBytes != 1<<20 || c.CliffShadowItems != 128 ||
		c.CliffMinItems != 1000 || !c.ResizeOnMissOnly || !c.EnableHillClimbing || !c.EnableCliffScaling {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	norm := Config{}.withDefaults()
	if norm.CreditBytes != 4096 || norm.MinQueueBytes != 2*4096 {
		t.Fatalf("withDefaults = %+v", norm)
	}
	hc := c.HillClimbingOnly()
	if hc.EnableCliffScaling || !hc.EnableHillClimbing {
		t.Fatalf("HillClimbingOnly = %+v", hc)
	}
	cs := c.CliffScalingOnly()
	if !cs.EnableCliffScaling || cs.EnableHillClimbing {
		t.Fatalf("CliffScalingOnly = %+v", cs)
	}
}

func TestManagerValidation(t *testing.T) {
	cfg := itemCfg()
	if _, err := NewManager(cfg, 100, nil); err == nil {
		t.Fatalf("empty queue set should error")
	}
	if _, err := NewManager(cfg, 0, []QueueSpec{{ID: "a"}}); err == nil {
		t.Fatalf("zero budget should error")
	}
	if _, err := NewManager(cfg, 100, []QueueSpec{{ID: ""}}); err == nil {
		t.Fatalf("empty ID should error")
	}
	if _, err := NewManager(cfg, 100, []QueueSpec{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Fatalf("duplicate IDs should error")
	}
	if _, err := NewManager(cfg, 100, []QueueSpec{{ID: "a", InitialCapacity: 200}}); err == nil {
		t.Fatalf("initial capacities above budget should error")
	}
}

func TestQueueBasicHitMissEvict(t *testing.T) {
	cfg := itemCfg()
	cfg.EnableCliffScaling = false
	m, q := singleQueue(t, cfg, 500)
	out, ok := m.Access(q, "a", 1)
	if !ok || out.Hit {
		t.Fatalf("first access should be a miss: %+v ok=%v", out, ok)
	}
	out, _ = m.Access(q, "a", 1)
	if !out.Hit {
		t.Fatalf("second access should hit")
	}
	if _, ok := m.Access("nope", "a", 1); ok {
		t.Fatalf("unknown queue ID should report ok=false")
	}
	if !m.Contains(q, "a") || m.Contains(q, "zzz") {
		t.Fatalf("Contains misbehaving")
	}
	if !m.Remove(q, "a") || m.Remove(q, "a") {
		t.Fatalf("Remove misbehaving")
	}
}

func TestQueueRespectsCapacity(t *testing.T) {
	cfg := itemCfg()
	m, q := singleQueue(t, cfg, 2000)
	for i := 0; i < 10000; i++ {
		m.Access(q, fmt.Sprintf("k%d", i%4000), 1)
		used := m.Queue(q).Used()
		if used > 2000+1 {
			t.Fatalf("physical usage %d exceeds capacity 2000", used)
		}
	}
	if m.Queue(q).Items() == 0 {
		t.Fatalf("queue should hold items")
	}
}

func TestQueueEvictionReportsVictims(t *testing.T) {
	cfg := itemCfg()
	cfg.EnableCliffScaling = false
	m, q := singleQueue(t, cfg, 300)
	resident := map[string]bool{}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("k%d", i)
		out, _ := m.Access(q, key, 1)
		resident[key] = true
		for _, v := range out.Evicted {
			if !resident[v.Key] {
				t.Fatalf("evicted key %q was never reported resident", v.Key)
			}
			delete(resident, v.Key)
		}
	}
	// The caller-tracked resident set must match the queue's view.
	if len(resident) != m.Queue(q).Items() {
		t.Fatalf("caller tracks %d resident keys, queue reports %d", len(resident), m.Queue(q).Items())
	}
	for k := range resident {
		if !m.Contains(q, k) {
			t.Fatalf("key %q tracked resident but not in queue", k)
		}
	}
}

func TestShadowHitDetection(t *testing.T) {
	cfg := itemCfg()
	cfg.EnableCliffScaling = false
	cfg.EnableHillClimbing = true
	m, q := singleQueue(t, cfg, 500)
	// Fill well past capacity so early keys fall into the shadow queue.
	for i := 0; i < 900; i++ {
		m.Access(q, fmt.Sprintf("k%d", i), 1)
	}
	// k100 was evicted (capacity 500, 900 inserts) but should still be in
	// the 2000-item shadow queue.
	out, _ := m.Access(q, "k100", 1)
	if out.Hit {
		t.Fatalf("k100 should have been evicted")
	}
	if !out.ShadowHit && !out.CliffShadowHit {
		t.Fatalf("k100 should hit a shadow queue, got %+v", out)
	}
	if m.Queue(q).Stats().ShadowHits == 0 && m.Queue(q).Stats().CliffShadowHits == 0 {
		t.Fatalf("shadow hit counters not incremented")
	}
}

func TestHillClimbingShiftsMemoryToHotQueue(t *testing.T) {
	cfg := itemCfg()
	cfg.EnableCliffScaling = false
	m, err := NewManager(cfg, 3000, []QueueSpec{
		{ID: "hot", UnitCost: 1},
		{ID: "cold", UnitCost: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// Hot queue: uniform reuse over 2600 keys (needs ~2600 items to hold).
	// Cold queue: 50 keys (needs almost nothing). 90% of traffic is hot.
	for i := 0; i < 200000; i++ {
		if rng.Float64() < 0.9 {
			m.Access("hot", fmt.Sprintf("h%d", rng.Intn(2600)), 1)
		} else {
			m.Access("cold", fmt.Sprintf("c%d", rng.Intn(50)), 1)
		}
	}
	hotCap := m.Queue("hot").Capacity()
	coldCap := m.Queue("cold").Capacity()
	if hotCap <= 1800 {
		t.Fatalf("hill climbing should have grown the hot queue well past its 1500 start, got %d (cold %d)", hotCap, coldCap)
	}
	if got := m.CapacitySum(); got > 3000+cfg.CreditBytes || got < 3000-cfg.CreditBytes {
		t.Fatalf("capacity not conserved: %d", got)
	}
	// And the shift must actually pay off: hit rate in the second half of
	// the run should beat a static 50/50 split.
	static := mustManager(t, func() (*Manager, error) {
		c := cfg
		c.EnableHillClimbing = false
		return NewManager(c, 3000, []QueueSpec{{ID: "hot", UnitCost: 1}, {ID: "cold", UnitCost: 1}})
	})
	rng = rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		if rng.Float64() < 0.9 {
			static.Access("hot", fmt.Sprintf("h%d", rng.Intn(2600)), 1)
		} else {
			static.Access("cold", fmt.Sprintf("c%d", rng.Intn(50)), 1)
		}
	}
	if m.HitRate() <= static.HitRate() {
		t.Fatalf("hill climbing hit rate %.3f should beat static %.3f", m.HitRate(), static.HitRate())
	}
}

func mustManager(t *testing.T, f func() (*Manager, error)) *Manager {
	t.Helper()
	m, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// cliffWorkload emits a mostly-sequential scan over scanKeys keys mixed with
// a Zipfian foreground, the workload shape that produces performance cliffs.
func cliffWorkload(seed int64, requests, scanKeys, zipfKeys int, scanFrac float64) []string {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(zipfKeys-1))
	keys := make([]string, requests)
	scanPos := 0
	for i := range keys {
		if rng.Float64() < scanFrac {
			keys[i] = fmt.Sprintf("scan%d", scanPos)
			scanPos = (scanPos + 1) % scanKeys
		} else {
			keys[i] = fmt.Sprintf("zipf%d", zipf.Uint64())
		}
	}
	return keys
}

func TestCliffScalingBeatsPlainLRUOnCliffWorkload(t *testing.T) {
	const (
		capacity = 8000
		scanKeys = 12000
		requests = 500000
	)
	keys := cliffWorkload(7, requests, scanKeys, 2000, 0.85)

	run := func(cfg Config) (secondHalfHitRate float64) {
		m, err := NewManager(cfg, capacity, []QueueSpec{{ID: "q", UnitCost: 1}})
		if err != nil {
			t.Fatal(err)
		}
		var hits, reqs int64
		for i, k := range keys {
			out, _ := m.Access("q", k, 1)
			if i >= len(keys)/2 {
				reqs++
				if out.Hit {
					hits++
				}
			}
		}
		return float64(hits) / float64(reqs)
	}

	plain := itemCfg()
	plain.EnableCliffScaling = false
	plain.EnableHillClimbing = false
	plainHR := run(plain)

	cliff := itemCfg()
	cliff.EnableHillClimbing = false
	cliff.EnableCliffScaling = true
	cliffHR := run(cliff)

	t.Logf("plain LRU hit rate %.3f, cliff scaling hit rate %.3f", plainHR, cliffHR)
	if cliffHR < plainHR+0.05 {
		t.Fatalf("cliff scaling (%.3f) should clearly beat plain LRU (%.3f) on a cliff workload", cliffHR, plainHR)
	}
}

func TestCliffScalingHarmlessOnConcaveWorkload(t *testing.T) {
	// On a purely Zipfian (concave) workload, cliff scaling should behave
	// like a single queue: its hit rate should be within a couple of points
	// of plain LRU.
	const capacity = 4000
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.1, 1, 20000)
	keys := make([]string, 300000)
	for i := range keys {
		keys[i] = fmt.Sprintf("z%d", zipf.Uint64())
	}
	run := func(cfg Config) float64 {
		m, _ := NewManager(cfg, capacity, []QueueSpec{{ID: "q", UnitCost: 1}})
		var hits int64
		for _, k := range keys {
			if out, _ := m.Access("q", k, 1); out.Hit {
				hits++
			}
		}
		return float64(hits) / float64(len(keys))
	}
	plain := itemCfg()
	plain.EnableCliffScaling = false
	plain.EnableHillClimbing = false
	split := itemCfg()
	split.EnableCliffScaling = true
	split.EnableHillClimbing = false
	p, s := run(plain), run(split)
	t.Logf("plain %.4f split %.4f", p, s)
	if s < p-0.03 {
		t.Fatalf("cliff scaling should not hurt concave workloads: plain %.3f vs split %.3f", p, s)
	}
}

// table4Workload builds the Table-4 shaped workload: queue c0 has a
// performance cliff (a mostly sequential loop slightly larger than its
// default allocation), queue c1 is a concave, over-provisioned Zipf queue,
// and a bursty phase change shifts traffic between them. Hill climbing helps
// by moving memory from c1 to c0; cliff scaling helps c0 while it is still
// stuck below its loop; the combined algorithm should do at least as well as
// either alone.
func table4Workload(seed int64, requests int) []struct{ q, k string } {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]struct{ q, k string }, requests)
	scan0 := 0
	limit := 8200 + rng.Intn(1600)
	for i := range reqs {
		// Phase 1 (60%): c0 dominates. Phase 2 (40%): burst toward c1.
		toQ0 := 0.85
		if i > requests*6/10 {
			toQ0 = 0.35
		}
		if rng.Float64() < toQ0 {
			if rng.Float64() < 0.9 {
				reqs[i] = struct{ q, k string }{"c0", fmt.Sprintf("s0-%d", scan0)}
				scan0++
				if scan0 >= limit {
					scan0 = 0
					limit = 8200 + rng.Intn(1600)
				}
			} else {
				reqs[i] = struct{ q, k string }{"c0", fmt.Sprintf("z0-%d", rng.Intn(500))}
			}
		} else {
			reqs[i] = struct{ q, k string }{"c1", fmt.Sprintf("z1-%d", rng.Intn(1500))}
		}
	}
	return reqs
}

func TestCombinedBeatsIndividualAlgorithmsOnTable4Workload(t *testing.T) {
	const budget = 16000
	reqs := table4Workload(21, 600000)
	run := func(cfg Config) float64 {
		m, err := NewManager(cfg, budget, []QueueSpec{
			{ID: "c0", UnitCost: 1, InitialCapacity: budget / 2},
			{ID: "c1", UnitCost: 1, InitialCapacity: budget / 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		var hits int64
		for _, r := range reqs {
			if out, _ := m.Access(r.q, r.k, 1); out.Hit {
				hits++
			}
		}
		return float64(hits) / float64(len(reqs))
	}
	base := itemCfg()
	base.EnableHillClimbing = false
	base.EnableCliffScaling = false
	defaultHR := run(base)
	hillHR := run(itemCfg().HillClimbingOnly())
	cliffHR := run(itemCfg().CliffScalingOnly())
	combinedHR := run(itemCfg())
	t.Logf("default %.3f cliff-only %.3f hill-only %.3f combined %.3f", defaultHR, cliffHR, hillHR, combinedHR)
	if combinedHR <= defaultHR+0.05 {
		t.Fatalf("combined algorithm (%.3f) should clearly beat the default (%.3f)", combinedHR, defaultHR)
	}
	if cliffHR <= defaultHR {
		t.Fatalf("cliff scaling alone (%.3f) should beat the default (%.3f) on this workload", cliffHR, defaultHR)
	}
	if hillHR <= defaultHR {
		t.Fatalf("hill climbing alone (%.3f) should beat the default (%.3f) on this workload", hillHR, defaultHR)
	}
	// The combined algorithm should be in the same league as the better of
	// the two sub-algorithms (the paper's Table 4 shows a small cumulative
	// gain; we allow a small interference margin on this synthetic trace).
	if combinedHR < cliffHR-0.05 || combinedHR < hillHR-0.05 {
		t.Fatalf("combined (%.3f) should be close to cliff-only (%.3f) and hill-only (%.3f)",
			combinedHR, cliffHR, hillHR)
	}
}

func TestRatioAndPointerInvariants(t *testing.T) {
	cfg := itemCfg()
	m, q := singleQueue(t, cfg, 6000)
	keys := cliffWorkload(13, 200000, 9000, 1000, 0.8)
	for _, k := range keys {
		m.Access(q, k, 1)
		qu := m.Queue(q)
		if r := qu.Ratio(); r < 0 || r > 1 {
			t.Fatalf("ratio %v out of range", r)
		}
		lp, rp := qu.Pointers()
		if qu.Split() {
			if lp > qu.Capacity() || rp < qu.Capacity() {
				t.Fatalf("pointers (%d, %d) straddle violated for capacity %d", lp, rp, qu.Capacity())
			}
		}
	}
	// On this cliff workload the cliff-scaling machinery should have engaged:
	// at least one pointer moves away from the operating point (the left
	// anchor drops toward the concave region and/or the right anchor hunts
	// for the top of the cliff), leaving the partitions asymmetric.
	lp, rp := m.Queue(q).Pointers()
	lc, rc := m.Queue(q).PartitionCapacities()
	if lp >= m.Queue(q).Capacity() && rp <= m.Queue(q).Capacity() {
		t.Fatalf("neither pointer moved on a cliff workload: lp=%d rp=%d capacity=%d", lp, rp, m.Queue(q).Capacity())
	}
	if lc == rc {
		t.Logf("note: partitions still symmetric (%d/%d)", lc, rc)
	}
}

func TestSplitActivationThreshold(t *testing.T) {
	cfg := itemCfg()
	// Below the threshold: no split.
	small, _ := NewManager(cfg, 500, []QueueSpec{{ID: "q", UnitCost: 1}})
	small.Access("q", "a", 1)
	if small.Queue("q").Split() {
		t.Fatalf("queue of 500 items should not activate cliff scaling (threshold 1000)")
	}
	// Above the threshold: split active.
	big, _ := NewManager(cfg, 5000, []QueueSpec{{ID: "q", UnitCost: 1}})
	big.Access("q", "a", 1)
	if !big.Queue("q").Split() {
		t.Fatalf("queue of 5000 items should activate cliff scaling")
	}
	// With unit cost 8, 5000 bytes is only 625 items: no split.
	units, _ := NewManager(cfg, 5000, []QueueSpec{{ID: "q", UnitCost: 8}})
	units.Access("q", "a", 8)
	if units.Queue("q").Split() {
		t.Fatalf("625-item queue should not activate cliff scaling")
	}
}

func TestManagerDeterminism(t *testing.T) {
	cfg := itemCfg()
	run := func() []QueueSnapshot {
		m, _ := NewManager(cfg, 4000, []QueueSpec{
			{ID: "a", UnitCost: 1},
			{ID: "b", UnitCost: 1},
		})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 50000; i++ {
			q := "a"
			if rng.Float64() < 0.3 {
				q = "b"
			}
			m.Access(q, fmt.Sprintf("%s-%d", q, rng.Intn(3000)), 1)
		}
		return m.Snapshot()
	}
	s1, s2 := run(), run()
	if len(s1) != len(s2) {
		t.Fatalf("snapshot lengths differ")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("non-deterministic state at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestSnapshotAndStats(t *testing.T) {
	cfg := itemCfg()
	m, _ := NewManager(cfg, 4000, []QueueSpec{
		{ID: "b", UnitCost: 1},
		{ID: "a", UnitCost: 1},
	})
	for i := 0; i < 1000; i++ {
		m.Access("a", fmt.Sprintf("k%d", i), 1)
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].ID != "a" || snap[1].ID != "b" {
		t.Fatalf("snapshot should be sorted by ID: %+v", snap)
	}
	if snap[0].Stats.Requests != 1000 {
		t.Fatalf("queue a requests = %d", snap[0].Stats.Requests)
	}
	total := m.TotalStats()
	if total.Requests != 1000 {
		t.Fatalf("TotalStats.Requests = %d", total.Requests)
	}
	if ids := m.QueueIDs(); len(ids) != 2 || ids[0] != "b" {
		t.Fatalf("QueueIDs = %v (creation order expected)", ids)
	}
	if m.Queue("zzz") != nil {
		t.Fatalf("unknown queue should be nil")
	}
	caps := m.Capacities()
	if caps["a"]+caps["b"] != m.CapacitySum() {
		t.Fatalf("Capacities inconsistent with CapacitySum")
	}
	if m.NumQueues() != 2 || m.TotalBytes() != 4000 {
		t.Fatalf("NumQueues/TotalBytes wrong")
	}
}

func TestDrain(t *testing.T) {
	cfg := itemCfg()
	cfg.EnableCliffScaling = false
	m, q := singleQueue(t, cfg, 500)
	for i := 0; i < 400; i++ {
		m.Access(q, fmt.Sprintf("k%d", i), 1)
	}
	victims := m.Drain()
	if len(victims) != 400 {
		t.Fatalf("Drain evicted %d, want 400", len(victims))
	}
	if m.Queue(q).Items() != 0 {
		t.Fatalf("queue not empty after Drain")
	}
	if m.Queue(q).Capacity() != 500 {
		t.Fatalf("capacity should be restored after Drain")
	}
}

// TestCapacityConservationProperty: hill climbing never creates or destroys
// capacity (the sum of target capacities is exactly conserved), and physical
// usage obeys the documented occupancy invariant.
//
// The invariant is stated against AppliedCapacity, not Capacity: capacity
// changes are applied lazily (on the next miss, per the paper's
// thrash-avoidance rule), and a queue that loses several hill-climbing
// credits before its next miss transiently holds more than its shrunken
// *target* — e.g. seed 6224889757895097368 drives one queue ~10 items over
// Capacity through in-flight cliff-pointer resizes. Physical residency never
// exceeds what is actually applied to the partitions, and once pending
// resizes are drained the strict used <= capacity + one in-flight item bound
// holds again.
func TestCapacityConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := itemCfg()
		cfg.Seed = seed
		nq := 2 + int(uint64(seed)%3)
		specs := make([]QueueSpec, nq)
		for i := range specs {
			specs[i] = QueueSpec{ID: fmt.Sprintf("q%d", i), UnitCost: 1}
		}
		total := int64(nq) * 1500
		m, err := NewManager(cfg, total, specs)
		if err != nil {
			return false
		}
		start := m.CapacitySum()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20000; i++ {
			q := fmt.Sprintf("q%d", rng.Intn(nq))
			m.Access(q, fmt.Sprintf("%s-%d", q, rng.Intn(2500)), 1)
			if m.CapacitySum() != start {
				return false
			}
		}
		for _, s := range m.Snapshot() {
			// Physical occupancy never exceeds the applied partition sizes.
			if s.Used > s.AppliedCapacity+1 {
				return false
			}
		}
		// Settle every pending resize: the strict per-queue bound must hold
		// on a quiesced manager.
		for _, id := range m.QueueIDs() {
			q := m.Queue(id)
			for q.PendingResize() {
				q.ForceApplyResize()
			}
		}
		for _, s := range m.Snapshot() {
			if s.Used > s.Capacity+1 {
				return false
			}
			if s.AppliedCapacity > s.Capacity {
				return false
			}
		}
		return m.CapacitySum() == start
	}
	// The formerly flaky seed (in-flight resizes push usage over the target
	// capacity) must now satisfy the documented invariant.
	if !f(6224889757895097368) {
		t.Fatal("known overshoot seed violates the applied-capacity invariant")
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestVictimPolicies(t *testing.T) {
	for _, vp := range []VictimPolicy{VictimRandom, VictimLowestCredit} {
		cfg := itemCfg()
		cfg.EnableCliffScaling = false
		cfg.VictimPolicy = vp
		m, err := NewManager(cfg, 3000, []QueueSpec{
			{ID: "hot", UnitCost: 1},
			{ID: "cold1", UnitCost: 1},
			{ID: "cold2", UnitCost: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(vp) + 1))
		for i := 0; i < 100000; i++ {
			if rng.Float64() < 0.9 {
				m.Access("hot", fmt.Sprintf("h%d", rng.Intn(2000)), 1)
			} else if rng.Float64() < 0.5 {
				m.Access("cold1", fmt.Sprintf("c%d", rng.Intn(20)), 1)
			} else {
				m.Access("cold2", fmt.Sprintf("d%d", rng.Intn(20)), 1)
			}
		}
		if m.Queue("hot").Capacity() <= 1000 {
			t.Fatalf("policy %v: hot queue did not grow (capacity %d)", vp, m.Queue("hot").Capacity())
		}
		if m.CapacitySum() != 3000 {
			t.Fatalf("policy %v: capacity not conserved", vp)
		}
	}
}

func TestSplitterRoundRobin(t *testing.T) {
	cfg := itemCfg()
	cfg.Splitter = SplitRoundRobin
	m, q := singleQueue(t, cfg, 4000)
	keys := cliffWorkload(17, 100000, 6000, 500, 0.8)
	var hits int64
	for _, k := range keys {
		if out, _ := m.Access(q, k, 1); out.Hit {
			hits++
		}
	}
	if hits == 0 {
		t.Fatalf("round-robin splitting should still produce hits")
	}
	if r := m.Queue(q).Ratio(); r < 0 || r > 1 {
		t.Fatalf("ratio out of range with round-robin splitting: %v", r)
	}
}

func TestResizeOnMissAblation(t *testing.T) {
	// With ResizeOnMissOnly disabled the algorithm still works; this is the
	// thrash-avoidance ablation. Verify both settings stay within capacity
	// and produce comparable hit rates.
	keys := cliffWorkload(29, 150000, 7000, 800, 0.8)
	run := func(onMiss bool) float64 {
		cfg := itemCfg()
		cfg.ResizeOnMissOnly = onMiss
		m, _ := NewManager(cfg, 5000, []QueueSpec{{ID: "q", UnitCost: 1}})
		var hits int64
		for _, k := range keys {
			if out, _ := m.Access("q", k, 1); out.Hit {
				hits++
			}
			if u := m.Queue("q").Used(); u > 5000+1 {
				t.Fatalf("usage %d above capacity", u)
			}
		}
		return float64(hits) / float64(len(keys))
	}
	a, b := run(true), run(false)
	t.Logf("resize-on-miss %.3f, resize-always %.3f", a, b)
	if a == 0 && b == 0 {
		t.Fatalf("both configurations produced zero hits")
	}
}

func TestFNV1aStability(t *testing.T) {
	// The splitter depends on fnv1a being deterministic and well spread.
	if fnv1a("hello") == fnv1a("world") {
		t.Fatalf("suspicious collision")
	}
	if fnv1a("abc") != fnv1a("abc") {
		t.Fatalf("hash must be deterministic")
	}
	buckets := [16]int{}
	for i := 0; i < 10000; i++ {
		buckets[fnv1a(fmt.Sprintf("key-%d", i))%16]++
	}
	for b, c := range buckets {
		if c < 300 || c > 1000 {
			t.Fatalf("bucket %d has %d keys; hash badly skewed", b, c)
		}
	}
}

func BenchmarkQueueAccessCombined(b *testing.B) {
	cfg := itemCfg()
	m, _ := NewManager(cfg, 1<<15, []QueueSpec{{ID: "q", UnitCost: 1}})
	keys := cliffWorkload(1, 1<<16, 40000, 4000, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access("q", keys[i&(len(keys)-1)], 1)
	}
}

func BenchmarkQueueAccessHillClimbingOnly(b *testing.B) {
	cfg := itemCfg().HillClimbingOnly()
	m, _ := NewManager(cfg, 1<<15, []QueueSpec{{ID: "a", UnitCost: 1}, {ID: "b", UnitCost: 1}})
	keys := cliffWorkload(1, 1<<16, 40000, 4000, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := "a"
		if i&3 == 0 {
			q = "b"
		}
		m.Access(q, keys[i&(len(keys)-1)], 1)
	}
}
