package core

import (
	"fmt"
	"math/rand"
	"sort"

	"cliffhanger/internal/cache"
)

// QueueSpec describes one queue to be managed by a Manager.
type QueueSpec struct {
	// ID names the queue (e.g. "class5" or "app19/class0").
	ID string
	// UnitCost is the typical per-item cost in bytes (the slab chunk size
	// for slab-class queues, or an average item size for application-level
	// queues). It sizes the item-based windows.
	UnitCost int64
	// InitialCapacity optionally fixes the queue's starting capacity in
	// bytes. Zero means "an equal share of the budget".
	InitialCapacity int64
}

// QueueSnapshot reports a queue's state for monitoring and experiments.
type QueueSnapshot struct {
	ID       string
	Capacity int64
	// AppliedCapacity is the capacity currently applied to the physical
	// partitions; it lags Capacity while a resize is pending (resizes apply
	// lazily on misses). Used never exceeds it.
	AppliedCapacity int64
	Used            int64
	Items           int
	Credits         int64
	Split           bool
	Ratio           float64
	LeftPointer     int64
	RightPointer    int64
	Stats           QueueStats
}

// Manager runs Cliffhanger over a set of queues sharing a fixed memory
// budget: it performs hill climbing across the queues (Algorithm 1) and each
// queue performs cliff scaling internally (Algorithms 2 and 3). One Manager
// corresponds to one "optimization domain" — all slab classes of one
// application, or all applications of one server.
type Manager struct {
	cfg        Config
	totalBytes int64
	queues     []*Queue
	byID       map[string]int
	credits    []int64
	rng        *rand.Rand
}

// NewManager creates a manager distributing totalBytes across the given
// queues. Queues without an explicit InitialCapacity share the remaining
// budget equally.
func NewManager(cfg Config, totalBytes int64, specs []QueueSpec) (*Manager, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: manager needs at least one queue")
	}
	if totalBytes <= 0 {
		return nil, fmt.Errorf("core: non-positive budget %d", totalBytes)
	}
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:        cfg,
		totalBytes: totalBytes,
		byID:       make(map[string]int, len(specs)),
		credits:    make([]int64, len(specs)),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}

	var fixed int64
	unfixed := 0
	for _, s := range specs {
		if s.InitialCapacity > 0 {
			fixed += s.InitialCapacity
		} else {
			unfixed++
		}
	}
	if fixed > totalBytes {
		return nil, fmt.Errorf("core: initial capacities (%d) exceed budget (%d)", fixed, totalBytes)
	}
	share := int64(0)
	if unfixed > 0 {
		share = (totalBytes - fixed) / int64(unfixed)
	}
	for i, s := range specs {
		if s.ID == "" {
			return nil, fmt.Errorf("core: queue %d has an empty ID", i)
		}
		if _, dup := m.byID[s.ID]; dup {
			return nil, fmt.Errorf("core: duplicate queue ID %q", s.ID)
		}
		capacity := s.InitialCapacity
		if capacity <= 0 {
			capacity = share
		}
		if capacity < cfg.MinQueueBytes {
			capacity = cfg.MinQueueBytes
		}
		q := newQueue(s.ID, cfg, capacity, s.UnitCost)
		m.byID[s.ID] = len(m.queues)
		m.queues = append(m.queues, q)
	}
	return m, nil
}

// Config returns the manager's normalized configuration.
func (m *Manager) Config() Config { return m.cfg }

// TotalBytes returns the managed memory budget.
func (m *Manager) TotalBytes() int64 { return m.totalBytes }

// NumQueues returns the number of managed queues.
func (m *Manager) NumQueues() int { return len(m.queues) }

// Queue returns the managed queue with the given ID, or nil.
func (m *Manager) Queue(id string) *Queue {
	if i, ok := m.byID[id]; ok {
		return m.queues[i]
	}
	return nil
}

// QueueIDs returns the managed queue IDs in creation order.
func (m *Manager) QueueIDs() []string {
	ids := make([]string, len(m.queues))
	for i, q := range m.queues {
		ids[i] = q.id
	}
	return ids
}

// Access processes one request for key belonging to the queue with the given
// ID. cost is the item's cost in bytes (its chunk size). It returns the
// access outcome; unknown queue IDs return a zero outcome and false.
func (m *Manager) Access(queueID, key string, cost int64) (AccessOutcome, bool) {
	i, ok := m.byID[queueID]
	if !ok {
		return AccessOutcome{}, false
	}
	q := m.queues[i]
	out := q.Access(key, cost)
	if out.ShadowHit && m.cfg.EnableHillClimbing && len(m.queues) > 1 {
		m.transferCredit(i)
	}
	return out, true
}

// transferCredit implements Algorithm 1: the queue whose shadow queue was
// hit earns CreditBytes of capacity at the expense of another queue. The
// victim is chosen at random (the paper's policy) or as the queue with the
// lowest credit balance (ablation). Victims already at the floor are skipped.
func (m *Manager) transferCredit(winner int) {
	credit := m.cfg.CreditBytes
	victim := -1
	switch m.cfg.VictimPolicy {
	case VictimLowestCredit:
		lowest := int64(0)
		for j, q := range m.queues {
			if j == winner {
				continue
			}
			if q.Capacity()-credit < m.cfg.MinQueueBytes {
				continue
			}
			if victim == -1 || m.credits[j] < lowest {
				victim = j
				lowest = m.credits[j]
			}
		}
	default:
		// Random victim; retry a few times if the pick cannot give memory.
		for attempt := 0; attempt < 4 && victim == -1; attempt++ {
			j := m.rng.Intn(len(m.queues))
			if j == winner {
				continue
			}
			if m.queues[j].Capacity()-credit < m.cfg.MinQueueBytes {
				continue
			}
			victim = j
		}
	}
	if victim == -1 {
		return
	}
	m.credits[winner] += credit
	m.credits[victim] -= credit
	m.queues[winner].SetCapacity(m.queues[winner].Capacity() + credit)
	m.queues[victim].SetCapacity(m.queues[victim].Capacity() - credit)
}

// Remove deletes key from the queue with the given ID.
func (m *Manager) Remove(queueID, key string) bool {
	if i, ok := m.byID[queueID]; ok {
		return m.queues[i].Remove(key)
	}
	return false
}

// Contains reports whether key is physically resident in the given queue.
func (m *Manager) Contains(queueID, key string) bool {
	if i, ok := m.byID[queueID]; ok {
		return m.queues[i].Contains(key)
	}
	return false
}

// Capacities returns the current capacity of every queue, keyed by ID.
func (m *Manager) Capacities() map[string]int64 {
	out := make(map[string]int64, len(m.queues))
	for _, q := range m.queues {
		out[q.id] = q.Capacity()
	}
	return out
}

// Snapshot returns per-queue state ordered by queue ID for stable output.
func (m *Manager) Snapshot() []QueueSnapshot {
	out := make([]QueueSnapshot, 0, len(m.queues))
	for i, q := range m.queues {
		lp, rp := q.Pointers()
		out = append(out, QueueSnapshot{
			ID:              q.id,
			Capacity:        q.Capacity(),
			AppliedCapacity: q.AppliedCapacity(),
			Used:            q.Used(),
			Items:           q.Items(),
			Credits:         m.credits[i],
			Split:           q.Split(),
			Ratio:           q.Ratio(),
			LeftPointer:     lp,
			RightPointer:    rp,
			Stats:           q.Stats(),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// TotalStats aggregates request/hit counters across all queues.
func (m *Manager) TotalStats() QueueStats {
	var t QueueStats
	for _, q := range m.queues {
		s := q.Stats()
		t.Requests += s.Requests
		t.Hits += s.Hits
		t.ShadowHits += s.ShadowHits
		t.CliffShadowHits += s.CliffShadowHits
		t.Evictions += s.Evictions
		t.Resizes += s.Resizes
	}
	return t
}

// HitRate returns the overall hit rate across all managed queues.
func (m *Manager) HitRate() float64 {
	s := m.TotalStats()
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// CapacitySum returns the sum of queue capacities; hill climbing conserves
// it (within one credit of the starting total). Exposed for invariant tests.
func (m *Manager) CapacitySum() int64 {
	var sum int64
	for _, q := range m.queues {
		sum += q.Capacity()
	}
	return sum
}

// Resize retargets the manager at totalBytes and, on a shrink, claws the
// excess capacity back from the largest queues (never below the MinQueueBytes
// floor), applying each cut immediately and returning the evicted victims.
// On growth the extra budget is left unassigned; it reaches the queues
// through the store's page-gated grow path, exactly like boot-time warmup.
// Hill climbing keeps conserving whatever CapacitySum the cuts leave behind.
func (m *Manager) Resize(totalBytes int64) []cache.Victim {
	if totalBytes <= 0 {
		return nil
	}
	m.totalBytes = totalBytes
	var all []cache.Victim
	for {
		excess := m.CapacitySum() - totalBytes
		if excess <= 0 {
			break
		}
		victim := -1
		var most int64
		for j, q := range m.queues {
			if room := q.Capacity() - m.cfg.MinQueueBytes; room > 0 && (victim == -1 || room > most) {
				victim = j
				most = room
			}
		}
		if victim == -1 {
			break // every queue is at the floor; CapacitySum may exceed tiny budgets
		}
		cut := excess
		if cut > most {
			cut = most
		}
		q := m.queues[victim]
		q.SetCapacity(q.Capacity() - cut)
		all = append(all, q.ForceApplyResize()...)
	}
	return all
}

// Drain evicts everything from every queue and returns the victims. It is
// used by flush operations in the store.
func (m *Manager) Drain() []cache.Victim {
	var all []cache.Victim
	for _, q := range m.queues {
		restore := q.Capacity()
		q.SetCapacity(0)
		all = append(all, q.ForceApplyResize()...)
		q.SetCapacity(restore)
		q.ForceApplyResize()
	}
	return all
}
