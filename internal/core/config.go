// Package core implements Cliffhanger, the paper's contribution: an
// incremental, local resource-allocation algorithm for web memory caches
// that (a) hill-climbs the hit-rate curves of a set of eviction queues using
// shadow queues (Algorithm 1) and (b) scales performance cliffs by splitting
// each queue in two and walking a pair of pointers to the ends of the convex
// region of the curve (Algorithms 2 and 3), combining both as described in
// §4.3.
//
// The package is written against abstract eviction queues that hold keys and
// per-key costs; values are owned by the caller (internal/store keeps them in
// a hash table and drops whatever the queues evict, while internal/sim runs
// the queues value-less to replay traces). One Manager instance governs the
// set of queues sharing a memory budget — all slab classes of an application,
// or all applications on a server — exactly as one Cliffhanger instance runs
// per Memcached server in the paper.
//
// None of the types in this package are safe for concurrent use; callers
// serialize access (the store shards by application and locks per shard).
package core

// Splitter selects how requests are divided between the left and right
// physical partitions of a queue when cliff scaling is active.
type Splitter int

const (
	// SplitHash routes each key consistently by hash so a key always lands
	// in the same partition (the default, mirroring Talus).
	SplitHash Splitter = iota
	// SplitRoundRobin alternates partitions per request in proportion to
	// the ratio; it is kept as an ablation and for tests.
	SplitRoundRobin
)

// VictimPolicy selects which queue loses memory when another queue earns a
// hill-climbing credit.
type VictimPolicy int

const (
	// VictimRandom picks a uniformly random other queue (Algorithm 1).
	VictimRandom VictimPolicy = iota
	// VictimLowestCredit picks the queue with the lowest accumulated
	// credit balance; an ablation discussed in DESIGN.md.
	VictimLowestCredit
)

// Config holds Cliffhanger's tuning parameters. The zero value is not
// usable; use DefaultConfig as a starting point. Defaults follow §5.1-§5.3
// of the paper.
type Config struct {
	// CreditBytes is the amount of memory shifted between queues per
	// shadow-queue hit and the step by which cliff pointers move. The
	// paper found 1-4 KiB works best (§5.3); default 4096.
	CreditBytes int64
	// ShadowBytes is the capacity of the hill-climbing shadow queue in
	// bytes of represented requests (§5.7: 1 MiB, e.g. 16384 keys for a
	// 64-byte class). Default 1 MiB.
	ShadowBytes int64
	// CliffShadowItems is the length, in items, of each cliff-scaling
	// shadow queue ("right of pointer" tracker). Default 128 (§5.1).
	CliffShadowItems int64
	// TailWindowItems is the length, in items, of the physical-queue tail
	// window used to detect hits "left of the pointer". Default 128.
	TailWindowItems int64
	// CliffMinItems is the minimum number of items a queue must be able to
	// hold before cliff scaling activates (§5.1: over 1000 items).
	CliffMinItems int64
	// ResizeOnMissOnly applies pending partition resizes only when a miss
	// occurs, avoiding thrashing (§5.1). Disabling it is an ablation.
	ResizeOnMissOnly bool
	// EnableHillClimbing enables Algorithm 1. Disabling it leaves queue
	// capacities fixed (used for the cliff-scaling-only column of Table 4).
	EnableHillClimbing bool
	// EnableCliffScaling enables Algorithms 2 and 3. Disabling it keeps
	// each queue as a single LRU with a shadow queue (the hill-climbing-
	// only column of Table 4).
	EnableCliffScaling bool
	// Splitter selects the request splitting strategy between partitions.
	Splitter Splitter
	// VictimPolicy selects how the losing queue is chosen for a credit.
	VictimPolicy VictimPolicy
	// MinQueueBytes is the floor below which hill climbing will not shrink
	// a queue. Zero defaults to 2*CreditBytes.
	MinQueueBytes int64
	// Seed seeds the manager's random source (victim selection).
	Seed int64
}

// DefaultConfig returns the configuration used in the paper's evaluation:
// 4 KiB credits, 1 MiB hill-climbing shadow queues, 128-item cliff shadow
// queues, cliff scaling enabled for queues above 1000 items, resizes applied
// on misses, hash-based splitting and random victims.
func DefaultConfig() Config {
	return Config{
		CreditBytes:        4096,
		ShadowBytes:        1 << 20,
		CliffShadowItems:   128,
		TailWindowItems:    128,
		CliffMinItems:      1000,
		ResizeOnMissOnly:   true,
		EnableHillClimbing: true,
		EnableCliffScaling: true,
		Splitter:           SplitHash,
		VictimPolicy:       VictimRandom,
	}
}

// withDefaults fills in zero fields with their defaults and returns the
// normalized config.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.CreditBytes <= 0 {
		c.CreditBytes = d.CreditBytes
	}
	if c.ShadowBytes <= 0 {
		c.ShadowBytes = d.ShadowBytes
	}
	if c.CliffShadowItems <= 0 {
		c.CliffShadowItems = d.CliffShadowItems
	}
	if c.TailWindowItems <= 0 {
		c.TailWindowItems = d.TailWindowItems
	}
	if c.CliffMinItems <= 0 {
		c.CliffMinItems = d.CliffMinItems
	}
	if c.MinQueueBytes <= 0 {
		c.MinQueueBytes = 2 * c.CreditBytes
	}
	return c
}

// HillClimbingOnly returns a copy of the config with cliff scaling disabled.
func (c Config) HillClimbingOnly() Config {
	c.EnableCliffScaling = false
	c.EnableHillClimbing = true
	return c
}

// CliffScalingOnly returns a copy of the config with hill climbing disabled.
func (c Config) CliffScalingOnly() Config {
	c.EnableCliffScaling = true
	c.EnableHillClimbing = false
	return c
}

// fnv1a is a tiny inline FNV-1a hash used for request splitting; it avoids
// allocating a hash.Hash64 per request.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
