package slab

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryDefaults(t *testing.T) {
	g := DefaultGeometry()
	if g.NumClasses() != 15 {
		t.Fatalf("default geometry has %d classes, want 15 (64B..1MiB powers of two)", g.NumClasses())
	}
	if g.ChunkSize(0) != 64 {
		t.Fatalf("smallest chunk = %d, want 64", g.ChunkSize(0))
	}
	if g.ChunkSize(g.NumClasses()-1) != DefaultPageSize {
		t.Fatalf("largest chunk = %d, want %d", g.ChunkSize(g.NumClasses()-1), DefaultPageSize)
	}
}

func TestNewGeometryValidation(t *testing.T) {
	cases := []GeometryConfig{
		{MinChunk: -1},
		{MinChunk: 100, MaxChunk: 50},
		{GrowthFactor: 0.5},
		{GrowthFactor: 1.0},
		{MinChunk: 64, MaxChunk: 1 << 20, PageSize: 1024},
	}
	for i, cfg := range cases {
		if _, err := NewGeometry(cfg); err == nil {
			t.Errorf("case %d: NewGeometry(%+v) should fail", i, cfg)
		}
	}
}

func TestGeometryNonPowerOfTwoGrowth(t *testing.T) {
	g, err := NewGeometry(GeometryConfig{MinChunk: 96, MaxChunk: 8192, GrowthFactor: 1.25, PageSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk sizes must be strictly increasing and end at MaxChunk.
	for i := 1; i < g.NumClasses(); i++ {
		if g.ChunkSizes[i] <= g.ChunkSizes[i-1] {
			t.Fatalf("chunk sizes not strictly increasing at %d: %v", i, g.ChunkSizes)
		}
	}
	if g.ChunkSizes[g.NumClasses()-1] != 8192 {
		t.Fatalf("last chunk = %d, want 8192", g.ChunkSizes[g.NumClasses()-1])
	}
}

func TestClassFor(t *testing.T) {
	g := DefaultGeometry()
	cases := []struct {
		size  int64
		class int
		ok    bool
	}{
		{1, 0, true},
		{64, 0, true},
		{65, 1, true},
		{128, 1, true},
		{129, 2, true},
		{1 << 20, 14, true},
		{1<<20 + 1, 0, false},
		{0, 0, true},
	}
	for _, c := range cases {
		class, ok := g.ClassFor(c.size)
		if class != c.class || ok != c.ok {
			t.Errorf("ClassFor(%d) = %d,%v want %d,%v", c.size, class, ok, c.class, c.ok)
		}
	}
}

// TestClassForProperty: every admissible size maps to a class whose chunk is
// at least the size, and the previous class (if any) is strictly smaller.
func TestClassForProperty(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint32) bool {
		size := int64(raw%(1<<20)) + 1
		class, ok := g.ClassFor(size)
		if !ok {
			return false
		}
		if g.ChunkSize(class) < size {
			return false
		}
		if class > 0 && g.ChunkSize(class-1) >= size {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChunksPerPage(t *testing.T) {
	g := DefaultGeometry()
	if got := g.ChunksPerPage(0); got != (1<<20)/64 {
		t.Fatalf("ChunksPerPage(0) = %d, want %d", got, (1<<20)/64)
	}
	if got := g.ChunksPerPage(g.NumClasses() - 1); got != 1 {
		t.Fatalf("ChunksPerPage(last) = %d, want 1", got)
	}
}

func TestAllocatorGrowReleaseReassign(t *testing.T) {
	g := DefaultGeometry()
	a := NewAllocator(g, 4<<20) // 4 pages
	if a.TotalPages() != 4 || a.FreePages() != 4 {
		t.Fatalf("TotalPages=%d FreePages=%d, want 4,4", a.TotalPages(), a.FreePages())
	}
	for i := 0; i < 4; i++ {
		if !a.Grow(2) {
			t.Fatalf("Grow #%d should succeed", i)
		}
	}
	if a.Grow(2) {
		t.Fatalf("Grow beyond free pages should fail")
	}
	if a.PagesOf(2) != 4 || a.BytesOf(2) != 4<<20 {
		t.Fatalf("PagesOf=%d BytesOf=%d", a.PagesOf(2), a.BytesOf(2))
	}
	if a.CapacityItems(2) != 4*g.ChunksPerPage(2) {
		t.Fatalf("CapacityItems = %d", a.CapacityItems(2))
	}
	if !a.Reassign(2, 5) {
		t.Fatalf("Reassign should succeed")
	}
	if a.PagesOf(2) != 3 || a.PagesOf(5) != 1 {
		t.Fatalf("after Reassign pages = %d,%d", a.PagesOf(2), a.PagesOf(5))
	}
	if a.Reassign(7, 8) {
		t.Fatalf("Reassign from empty class should fail")
	}
	if !a.Release(5) {
		t.Fatalf("Release should succeed")
	}
	if a.Release(5) {
		t.Fatalf("Release from empty class should fail")
	}
	if a.FreePages() != 1 {
		t.Fatalf("FreePages = %d, want 1", a.FreePages())
	}
	snap := a.Snapshot()
	if snap[2] != 3 {
		t.Fatalf("Snapshot[2] = %d, want 3", snap[2])
	}
	// Mutating the snapshot must not affect the allocator.
	snap[2] = 99
	if a.PagesOf(2) != 3 {
		t.Fatalf("Snapshot aliases internal state")
	}
}

// TestAllocatorConservation: pages are never created or destroyed.
func TestAllocatorConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		g := DefaultGeometry()
		a := NewAllocator(g, 16<<20)
		for _, op := range ops {
			class := int(op) % g.NumClasses()
			switch op % 3 {
			case 0:
				a.Grow(class)
			case 1:
				a.Release(class)
			case 2:
				a.Reassign(class, (class+1)%g.NumClasses())
			}
			var assigned int64
			for i := 0; i < g.NumClasses(); i++ {
				assigned += a.PagesOf(i)
			}
			if assigned+a.FreePages() != a.TotalPages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
