// Package slab implements Memcached-style slab-class geometry and the
// default first-come-first-serve page allocation policy the paper uses as its
// baseline (§2).
//
// Memcached avoids memory fragmentation by carving its memory into 1 MB pages
// and assigning each page to a slab class. A slab class stores items whose
// total size (key + value + item header) falls into a fixed range; chunk
// sizes grow geometrically from a minimum size by a configurable growth
// factor. Each class maintains its own LRU queue, and by default pages are
// handed to whichever class first needs them ("first-come-first-serve"),
// which is the behaviour Cliffhanger improves upon.
package slab

import (
	"fmt"
	"sort"
)

// DefaultPageSize is Memcached's page size.
const DefaultPageSize = 1 << 20 // 1 MiB

// Geometry describes a set of slab classes.
type Geometry struct {
	// ChunkSizes holds the chunk size of each class, ascending.
	ChunkSizes []int64
	// PageSize is the size of a slab page in bytes.
	PageSize int64
}

// GeometryConfig controls NewGeometry.
type GeometryConfig struct {
	// MinChunk is the chunk size of the smallest class (default 64 bytes,
	// mirroring Memcached with a 48-byte minimum item plus overhead).
	MinChunk int64
	// MaxChunk caps the chunk size of the largest class (default 1 MiB).
	MaxChunk int64
	// GrowthFactor is the ratio between consecutive chunk sizes (default
	// 2.0; Memcached's default is 1.25 but the paper's examples use
	// power-of-two ranges: <128B, 128-256B, ...).
	GrowthFactor float64
	// PageSize is the slab page size (default 1 MiB).
	PageSize int64
}

// NewGeometry builds a slab-class geometry from cfg, applying defaults for
// zero fields.
func NewGeometry(cfg GeometryConfig) (*Geometry, error) {
	if cfg.MinChunk == 0 {
		cfg.MinChunk = 64
	}
	if cfg.MaxChunk == 0 {
		cfg.MaxChunk = DefaultPageSize
	}
	if cfg.GrowthFactor == 0 {
		cfg.GrowthFactor = 2.0
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.MinChunk <= 0 || cfg.MaxChunk < cfg.MinChunk {
		return nil, fmt.Errorf("slab: invalid chunk range [%d, %d]", cfg.MinChunk, cfg.MaxChunk)
	}
	if cfg.GrowthFactor <= 1.0 {
		return nil, fmt.Errorf("slab: growth factor %v must be > 1", cfg.GrowthFactor)
	}
	if cfg.PageSize < cfg.MaxChunk {
		return nil, fmt.Errorf("slab: page size %d smaller than max chunk %d", cfg.PageSize, cfg.MaxChunk)
	}
	g := &Geometry{PageSize: cfg.PageSize}
	size := cfg.MinChunk
	for {
		g.ChunkSizes = append(g.ChunkSizes, size)
		if size >= cfg.MaxChunk {
			break
		}
		next := int64(float64(size) * cfg.GrowthFactor)
		if next <= size {
			next = size + 1
		}
		if next > cfg.MaxChunk {
			next = cfg.MaxChunk
		}
		size = next
	}
	return g, nil
}

// DefaultGeometry returns the geometry used throughout the experiments:
// power-of-two chunk sizes from 64 B to 1 MiB with 1 MiB pages, yielding 15
// classes, matching "applications have 15 slab classes at most" (§5.7).
func DefaultGeometry() *Geometry {
	g, err := NewGeometry(GeometryConfig{})
	if err != nil {
		panic("slab: default geometry must be valid: " + err.Error())
	}
	return g
}

// NumClasses reports the number of slab classes.
func (g *Geometry) NumClasses() int { return len(g.ChunkSizes) }

// ClassFor returns the index of the smallest class whose chunk fits an item
// of the given total size. It reports false when the item is larger than the
// largest chunk.
func (g *Geometry) ClassFor(itemSize int64) (int, bool) {
	if itemSize <= 0 {
		return 0, true
	}
	i := sort.Search(len(g.ChunkSizes), func(i int) bool {
		return g.ChunkSizes[i] >= itemSize
	})
	if i == len(g.ChunkSizes) {
		return 0, false
	}
	return i, true
}

// ChunkSize returns the chunk size of class i.
func (g *Geometry) ChunkSize(i int) int64 {
	return g.ChunkSizes[i]
}

// ChunksPerPage returns how many chunks of class i fit in one page.
func (g *Geometry) ChunksPerPage(i int) int64 {
	return g.PageSize / g.ChunkSizes[i]
}

// Allocator tracks how a fixed memory budget is divided into pages across
// slab classes using the default first-come-first-serve policy: a class that
// needs room takes a free page if any remain; otherwise it must evict from
// its own LRU queue. Once a page is assigned to a class it is never
// reassigned (stock Memcached behaviour; automove-style page reassignment is
// one of the improvements discussed in §2 and is modelled separately by the
// allocation policies in internal/sim).
type Allocator struct {
	geom       *Geometry
	totalPages int64
	freePages  int64
	pages      []int64 // pages owned per class
}

// NewAllocator returns an allocator managing totalBytes of memory (rounded
// down to whole pages) over the given geometry.
func NewAllocator(geom *Geometry, totalBytes int64) *Allocator {
	pages := totalBytes / geom.PageSize
	if pages < 0 {
		pages = 0
	}
	return &Allocator{
		geom:       geom,
		totalPages: pages,
		freePages:  pages,
		pages:      make([]int64, geom.NumClasses()),
	}
}

// Geometry returns the allocator's slab geometry.
func (a *Allocator) Geometry() *Geometry { return a.geom }

// TotalPages reports the number of pages under management.
func (a *Allocator) TotalPages() int64 { return a.totalPages }

// FreePages reports the number of unassigned pages.
func (a *Allocator) FreePages() int64 { return a.freePages }

// PagesOf reports how many pages class i currently owns.
func (a *Allocator) PagesOf(i int) int64 { return a.pages[i] }

// BytesOf reports how many bytes class i currently owns.
func (a *Allocator) BytesOf(i int) int64 { return a.pages[i] * a.geom.PageSize }

// CapacityItems reports how many items class i can store with its current
// pages.
func (a *Allocator) CapacityItems(i int) int64 {
	return a.pages[i] * a.geom.ChunksPerPage(i)
}

// Grow attempts to assign one more page to class i. It reports whether a
// free page was available. (freePages can be negative transiently after a
// SetBudget shrink, which must gate growth just like zero.)
func (a *Allocator) Grow(i int) bool {
	if a.freePages <= 0 {
		return false
	}
	a.freePages--
	a.pages[i]++
	return true
}

// SetBudget retargets the allocator at totalBytes (rounded down to whole
// pages), used by live tenant resizing. Growth adds the delta to the free
// pool; a shrink can drive freePages negative, which blocks Grow until
// enough pages are released back (the caller walks Release until FreePages
// is non-negative, or — in Cliffhanger mode — claws queue capacity back and
// reconciles). It returns the new total page count.
func (a *Allocator) SetBudget(totalBytes int64) int64 {
	pages := totalBytes / a.geom.PageSize
	if pages < 0 {
		pages = 0
	}
	a.freePages += pages - a.totalPages
	a.totalPages = pages
	return pages
}

// Release returns one page from class i to the free pool. It reports whether
// the class had a page to release. (Stock Memcached never does this; it is
// used by the page-reassignment baseline.)
func (a *Allocator) Release(i int) bool {
	if a.pages[i] == 0 {
		return false
	}
	a.pages[i]--
	a.freePages++
	return true
}

// Reassign moves one page from class from to class to, modelling the
// Twitter/Facebook page-move schemes discussed in §2. It reports whether the
// move happened.
func (a *Allocator) Reassign(from, to int) bool {
	if from == to || a.pages[from] == 0 {
		return false
	}
	a.pages[from]--
	a.pages[to]++
	return true
}

// Snapshot returns a copy of the per-class page assignment.
func (a *Allocator) Snapshot() []int64 {
	out := make([]int64, len(a.pages))
	copy(out, a.pages)
	return out
}
