package store

// Slab-arena value storage: the allocation discipline that keeps the mutation
// path off the Go garbage collector. Each tenant owns an arena that carves
// 1 MiB pages (slab.Geometry.PageSize) into fixed-size chunks, one chunk pool
// per slab class, exactly like memcached's slab allocator. A stored item's
// value bytes live in a chunk of the class its charged size (key+value) maps
// to; on eviction, expiry, delete, flush and cross-class re-set the chunk
// goes back on a freelist instead of to the GC, so a churning write-heavy
// workload recycles a fixed set of pages instead of continuously allocating.
//
// Layout: chunks flow between a per-class central freelist and per-stripe
// caches, one stripe per value shard (the Go runtime's mcache/mcentral
// split). Alloc and free always run while the caller holds the owning value
// shard's mutex, so a stripe's lock is effectively uncontended — it exists so
// the stats/audit walk does not have to reach into shard locking. Refills and
// flush-backs move chunks between a stripe and the central list in batches,
// so even a stripe that only ever frees (or only ever allocates) touches the
// central lock once per stripeRefill operations.
//
// Reclamation safety: a chunk must never be recycled while a reader can still
// observe it. The store guarantees this by construction — every read copies
// the value out under the shard lock (GetItemInto and friends), every free
// happens under the same shard lock, and bookkeeping events carry key strings
// and sizes, never chunk references — so by the time a chunk reaches a
// freelist no goroutine can hold a view into it.
//
// Growth: pages are allocated lazily when a class's central freelist runs dry
// and are never returned to the OS (memcached behaviour). Physical footprint
// is bounded by peak residency: the structural eviction queues cap how many
// chunks are ever live at once, and the freelists cap out at that peak.
//
// Lock order: bookkeeper.mu > valueShard.mu > arenaStripe.mu >
// arenaCentral.mu. The arena never calls back into the store, so the order
// cannot invert.
//
// Values whose charged size exceeds the largest chunk (possible only under
// the exact-size global-LRU layout, which admits items of any size) fall back
// to plain heap allocations and are handed to the GC on free; the arena
// accounting does not cover them.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cliffhanger/internal/slab"
)

const (
	// stripeRefill is how many chunks a dry stripe cache pulls from the
	// central freelist at once.
	stripeRefill = 8
	// stripeCap is the stripe-cache size past which half the cached chunks
	// are flushed back to the central freelist, so a shard that only frees
	// (e.g. one the reaper is draining) cannot strand a class's chunks.
	stripeCap = 16
)

// arena is one tenant's chunk allocator. Safe for concurrent use.
type arena struct {
	geom    *slab.Geometry
	classes []arenaCentral
	stripes []arenaStripe
}

// arenaCentral is one slab class's page store and central freelist.
type arenaCentral struct {
	mu        sync.Mutex
	free      [][]byte // full-capacity chunks, len == cap == chunk size
	pages     int64    // pages carved for this class (never released)
	chunkSize int64
	perPage   int64
	// used counts chunks currently backing resident values (including ones
	// cached per stripe's accounting moment: a chunk is used from the moment
	// alloc hands it out until free takes it back). Updated outside the
	// freelist locks, so live reads are approximate; after the store
	// quiesces, used + free (central and stripe caches) == pages * perPage
	// exactly — the conservation invariant the property test pins.
	used atomic.Int64
}

// arenaStripe is one value shard's chunk cache, indexed by class.
type arenaStripe struct {
	mu   sync.Mutex
	free [][][]byte
}

// newArena builds an arena over geom with one stripe per value shard.
func newArena(geom *slab.Geometry, stripes int) *arena {
	a := &arena{
		geom:    geom,
		classes: make([]arenaCentral, geom.NumClasses()),
		stripes: make([]arenaStripe, stripes),
	}
	for c := range a.classes {
		a.classes[c].chunkSize = geom.ChunkSize(c)
		a.classes[c].perPage = geom.ChunksPerPage(c)
	}
	for i := range a.stripes {
		a.stripes[i].free = make([][][]byte, geom.NumClasses())
	}
	return a
}

// classFor maps a charged item size to its arena chunk class. It reports
// false for sizes beyond the largest chunk (the heap-fallback path).
func (a *arena) classFor(size int64) (int, bool) {
	return a.geom.ClassFor(size)
}

// alloc returns a full-length chunk of the given class, preferring the
// stripe's cache, then the central freelist, then a freshly carved page.
func (a *arena) alloc(stripe, class int) []byte {
	st := &a.stripes[stripe]
	st.mu.Lock()
	cache := st.free[class]
	if len(cache) == 0 {
		cache = a.refillLocked(class, cache)
	}
	n := len(cache) - 1
	c := cache[n]
	cache[n] = nil
	st.free[class] = cache[:n]
	st.mu.Unlock()
	a.classes[class].used.Add(1)
	return c
}

// refillLocked moves up to stripeRefill chunks from the class's central
// freelist into cache, carving a new page first when the central list is dry.
// The caller must hold the stripe's lock; the result is never empty.
func (a *arena) refillLocked(class int, cache [][]byte) [][]byte {
	cl := &a.classes[class]
	cl.mu.Lock()
	if len(cl.free) == 0 {
		page := make([]byte, a.geom.PageSize)
		cs := cl.chunkSize
		for off := int64(0); off+cs <= a.geom.PageSize; off += cs {
			// The three-index slice caps each chunk at its own boundary, so
			// an append through a stale reference can never bleed into a
			// neighbouring chunk.
			cl.free = append(cl.free, page[off:off+cs:off+cs])
		}
		cl.pages++
	}
	n := stripeRefill
	if n > len(cl.free) {
		n = len(cl.free)
	}
	split := len(cl.free) - n
	cache = append(cache, cl.free[split:]...)
	for i := split; i < len(cl.free); i++ {
		cl.free[i] = nil
	}
	cl.free = cl.free[:split]
	cl.mu.Unlock()
	return cache
}

// freeChunk returns a chunk to the given class's freelists. The chunk must
// have been allocated from the same class; the capacity check turns any
// accounting mismatch (a chunk freed under the wrong charged size) into a
// loud failure instead of silent pool corruption.
func (a *arena) freeChunk(stripe, class int, chunk []byte) {
	cl := &a.classes[class]
	if int64(cap(chunk)) != cl.chunkSize {
		panic(fmt.Sprintf("store: arena chunk of cap %d freed into class %d (chunk size %d)",
			cap(chunk), class, cl.chunkSize))
	}
	chunk = chunk[:cl.chunkSize]
	st := &a.stripes[stripe]
	st.mu.Lock()
	cache := append(st.free[class], chunk)
	if len(cache) > stripeCap {
		cache = a.flushLocked(class, cache)
	}
	st.free[class] = cache
	st.mu.Unlock()
	cl.used.Add(-1)
}

// flushLocked moves the older half of an overfull stripe cache back to the
// central freelist. The caller must hold the stripe's lock.
func (a *arena) flushLocked(class int, cache [][]byte) [][]byte {
	cl := &a.classes[class]
	half := len(cache) / 2
	cl.mu.Lock()
	cl.free = append(cl.free, cache[:half]...)
	cl.mu.Unlock()
	rest := copy(cache, cache[half:])
	for i := rest; i < len(cache); i++ {
		cache[i] = nil
	}
	return cache[:rest]
}

// ArenaClassStats reports one slab class's arena occupancy.
type ArenaClassStats struct {
	// Class is the slab class index; ChunkSize its chunk size in bytes.
	Class     int
	ChunkSize int64
	// Pages is the number of pages carved for the class; PageSize is the
	// page size in bytes.
	Pages    int64
	PageSize int64
	// TotalChunks is Pages times chunks-per-page.
	TotalChunks int64
	// UsedChunks counts chunks backing resident values; FreeChunks counts
	// chunks on the central freelist and the per-stripe caches. Under live
	// traffic the split is approximate (a chunk in flight between a freelist
	// and a record is momentarily in neither count); on a quiesced store
	// Used + Free == Total exactly.
	UsedChunks int64
	FreeChunks int64
}

// ArenaBytes returns the bytes the class's pages occupy.
func (s ArenaClassStats) ArenaBytes() int64 { return s.Pages * s.PageSize }

// SumArenaStats totals per-class occupancy into the three numbers every
// consumer wants: bytes carved into pages, bytes backing resident chunks,
// and total chunk bytes (the occupancy denominator). The stats verb and the
// periodic daemon log both aggregate through here so they can never
// disagree on what "occupancy" means.
func SumArenaStats(classes []ArenaClassStats) (arenaBytes, usedBytes, totalBytes int64) {
	for _, cl := range classes {
		arenaBytes += cl.ArenaBytes()
		usedBytes += cl.UsedChunks * cl.ChunkSize
		totalBytes += cl.TotalChunks * cl.ChunkSize
	}
	return arenaBytes, usedBytes, totalBytes
}

// stats snapshots every class's occupancy, including classes that have not
// carved a page yet (Pages == 0).
func (a *arena) stats() []ArenaClassStats {
	out := make([]ArenaClassStats, len(a.classes))
	for c := range a.classes {
		cl := &a.classes[c]
		cl.mu.Lock()
		out[c] = ArenaClassStats{
			Class:       c,
			ChunkSize:   cl.chunkSize,
			Pages:       cl.pages,
			PageSize:    a.geom.PageSize,
			TotalChunks: cl.pages * cl.perPage,
			UsedChunks:  cl.used.Load(),
			FreeChunks:  int64(len(cl.free)),
		}
		cl.mu.Unlock()
	}
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		for c := range st.free {
			out[c].FreeChunks += int64(len(st.free[c]))
		}
		st.mu.Unlock()
	}
	return out
}

// checkConservation verifies the arena's chunk-conservation invariant on a
// quiesced store: for every class, every chunk of every carved page is either
// backing a resident value or sitting on a freelist — used + free == pages *
// chunks-per-page, with no chunk leaked and none double-freed. usedWant gives
// the caller-counted resident chunks per class (from walking the item
// directory); pass nil to skip that cross-check.
func (a *arena) checkConservation(usedWant []int64) error {
	for _, st := range a.stats() {
		if st.UsedChunks+st.FreeChunks != st.TotalChunks {
			return fmt.Errorf("class %d (chunk %d): used %d + free %d != total %d (%d pages)",
				st.Class, st.ChunkSize, st.UsedChunks, st.FreeChunks, st.TotalChunks, st.Pages)
		}
		if st.UsedChunks < 0 || st.FreeChunks < 0 {
			return fmt.Errorf("class %d: negative occupancy (used %d, free %d)",
				st.Class, st.UsedChunks, st.FreeChunks)
		}
		if usedWant != nil && st.UsedChunks != usedWant[st.Class] {
			return fmt.Errorf("class %d: arena counts %d used chunks, directory holds %d",
				st.Class, st.UsedChunks, usedWant[st.Class])
		}
	}
	return nil
}
