package store

// Slab-arena value storage: the allocation discipline that keeps the mutation
// path off the Go garbage collector. Each tenant owns an arena that carves
// 1 MiB pages (slab.Geometry.PageSize) into fixed-size chunks, one chunk pool
// per slab class, exactly like memcached's slab allocator. A stored item's
// value bytes live in a chunk of the class its charged size (key+value) maps
// to; on eviction, expiry, delete, flush and re-set the chunk is recycled
// instead of handed to the GC, so a churning write-heavy workload reuses a
// fixed set of pages instead of continuously allocating.
//
// Layout: chunks flow between a per-class central freelist and per-stripe
// caches, one stripe per value shard (the Go runtime's mcache/mcentral
// split). Alloc and free always run while the caller holds the owning value
// shard's mutex, so a stripe's lock is effectively uncontended — it exists so
// the stats/audit walk and the epoch reclaimer do not have to reach into
// shard locking. Refills and flush-backs move chunks between a stripe and the
// central list in batches, so even a stripe that only ever frees (or only
// ever allocates) touches the central lock once per stripeRefill operations.
//
// Reclamation safety — epoch-based quarantine: a chunk must never be recycled
// while a reader can still observe it. Readers used to be forced to copy the
// value out under the shard lock; now they pin instead. A reader that wants a
// borrowed view of a chunk pins the current global epoch into its shard's pin
// slot (pin, while still holding the shard mutex), captures the value slice,
// releases the lock, streams or copies the bytes at leisure, and unpins. A
// freed chunk is never pushed straight onto a freelist: freeChunk parks it on
// its stripe's quarantine list stamped with the epoch current at retirement,
// and only a reclaim pass that finds every active pin to be newer than the
// stamp recycles it.
//
// Why that is safe: a shard's chunks are only ever retired while holding that
// shard's mutex, and a reader publishes its pin before releasing the same
// mutex. So for any chunk a reader can still see, pin-store happens-before
// the retire, the retire's epoch stamp is >= the pinned epoch (the global
// epoch only grows), and the reclaimer — which seals the quarantine by
// holding the stripe mutex BEFORE scanning the pin slots — must observe
// either the pin (stamp >= pinned epoch => not harvested) or the unpin (the
// reader is done with the view). Sealing first is load-bearing: scanning
// slots before taking the stripe lock could miss a pin published after the
// scan while harvesting a chunk retired before it.
//
// The epoch advances on the bookkeeper's drain tick (async mode), on free
// pressure (a refill that finds the central list dry advances and harvests
// before carving a page — this is what keeps synchronous stores, which have
// no drain goroutine, recycling), and when a stripe's quarantine hits its
// high-water mark.
//
// Growth and shrink: pages are leased lazily from the process-wide
// pageAllocator when a class's central freelist runs dry, and — unlike stock
// memcached — can be RETURNED: live tenant resize retires pages one at a time
// through the migration machinery in migrate.go (sweep the page's free chunks
// out of the freelists, evict its residents through the event buffers, let
// stragglers drain through quarantine, then release the whole page), and
// tenant delete returns everything once quarantine fully drains. While a page
// is retiring, its chunks transition to a fourth accounting state, migrating
// (counted on the migration record), and the conservation invariant reads
// used + free + quarantined + migrating == pages * chunks-per-page.
//
// Lock order: bookkeeper.mu > valueShard.mu > arenaStripe.mu >
// arenaCentral.mu > pageAllocator.mu. The arena never calls back into the
// store, so the order cannot invert. The one deliberate exception: the
// free-pressure path may TryLock OTHER stripes' mutexes while holding its own
// to harvest their quarantines; TryLock never blocks, so no cycle can
// deadlock.
//
// Values whose charged size exceeds the largest chunk (possible only under
// the exact-size global-LRU layout, which admits items of any size) fall back
// to plain heap allocations and are handed to the GC on free; the arena
// accounting does not cover them, and pinned readers of such values are kept
// safe by the GC itself (a retired heap buffer is never written again).

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cliffhanger/internal/slab"
)

const (
	// stripeRefill is how many chunks a dry stripe cache pulls from the
	// central freelist at once.
	stripeRefill = 8
	// stripeCap is the stripe-cache size past which half the cached chunks
	// are flushed back to the central freelist, so a shard that only frees
	// (e.g. one the reaper is draining) cannot strand a class's chunks.
	stripeCap = 16
	// quarantineHighWater is the per-stripe quarantined-chunk count at which
	// the freeing caller advances the epoch and reclaims inline, bounding how
	// much memory deferred frees can park between drain ticks.
	quarantineHighWater = 128
	// pinCountBits splits a pin slot's packed word: the low bits count the
	// shard's active pinned readers, the high bits carry the epoch the oldest
	// of them pinned. 16 bits allow 65535 concurrent readers per shard.
	pinCountBits = 16
	pinCountMask = (1 << pinCountBits) - 1
)

// pinSlot is one shard's reader-pin word: epoch<<pinCountBits | count,
// padded out to a cache line so concurrent readers on different shards never
// false-share.
type pinSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// arena is one tenant's chunk allocator. Safe for concurrent use.
type arena struct {
	geom    *slab.Geometry
	classes []arenaCentral
	stripes []arenaStripe

	// pa is the process-wide page pool this arena leases pages from (and
	// returns them to); owner is the tenant name the leases are booked under.
	pa    *pageAllocator
	owner string
	// migrating points at the at-most-one in-flight page retirement. It is
	// loaded on the alloc path (nil in steady state) and by the freelist
	// sweep, the quarantine redirect and the stats walk.
	migrating atomic.Pointer[migration]

	// epoch is the global reclamation clock: it only ever advances. A chunk
	// quarantined at epoch E may be recycled once every active pin is > E.
	epoch atomic.Uint64
	// slots holds one pin word per stripe (== per value shard).
	slots []pinSlot
	// deferredFrees counts chunks that ever went through quarantine (the
	// epoch_deferred_frees stat): a monotone measure of how much reclamation
	// the epoch discipline deferred.
	deferredFrees atomic.Int64
}

// arenaCentral is one slab class's page store and central freelist.
type arenaCentral struct {
	mu        sync.Mutex
	free      [][]byte // full-capacity chunks, len == cap == chunk size
	pages     int64    // pages currently carved for this class
	pageBufs  [][]byte // the raw page buffers backing those pages
	chunkSize int64
	perPage   int64
	// used counts chunks currently backing resident values (including ones
	// cached per stripe's accounting moment: a chunk is used from the moment
	// alloc hands it out until free takes it back). Updated outside the
	// freelist locks, so live reads are approximate; after the store
	// quiesces, used + free + quarantined == pages * perPage exactly — the
	// three-state conservation invariant the property test pins.
	used atomic.Int64
	// quarantined counts the class's chunks currently parked on stripe
	// quarantine lists awaiting epoch reclamation.
	quarantined atomic.Int64
}

// quarChunk is one retired chunk awaiting reclamation: the chunk, its class,
// and the global epoch at the moment it was freed. Within one stripe the
// stamps are nondecreasing (pushes are serialized by the stripe mutex and the
// epoch only grows), so the quarantine is harvested from the front.
type quarChunk struct {
	chunk []byte
	class int
	epoch uint64
}

// arenaStripe is one value shard's chunk cache plus its quarantine list,
// indexed by class.
type arenaStripe struct {
	mu   sync.Mutex
	free [][][]byte
	quar []quarChunk
}

// newArena builds an arena over geom with one stripe per value shard,
// leasing pages from pa under the given owner name.
func newArena(geom *slab.Geometry, stripes int, pa *pageAllocator, owner string) *arena {
	a := &arena{
		geom:    geom,
		classes: make([]arenaCentral, geom.NumClasses()),
		stripes: make([]arenaStripe, stripes),
		slots:   make([]pinSlot, stripes),
		pa:      pa,
		owner:   owner,
	}
	a.epoch.Store(1)
	for c := range a.classes {
		a.classes[c].chunkSize = geom.ChunkSize(c)
		a.classes[c].perPage = geom.ChunksPerPage(c)
	}
	for i := range a.stripes {
		a.stripes[i].free = make([][][]byte, geom.NumClasses())
	}
	return a
}

// classFor maps a charged item size to its arena chunk class. It reports
// false for sizes beyond the largest chunk (the heap-fallback path).
func (a *arena) classFor(size int64) (int, bool) {
	return a.geom.ClassFor(size)
}

// pin publishes a reader on the given stripe at the current epoch. It MUST be
// called while holding the owning value shard's mutex (that ordering is what
// guarantees the reclaimer sees the pin before any retire of a chunk the
// reader captured), and every pin must be paired with exactly one unpin once
// the reader is done with the borrowed bytes. Nested pins keep the oldest
// epoch, which is the conservative choice.
func (a *arena) pin(stripe int) {
	slot := &a.slots[stripe].v
	for {
		old := slot.Load()
		var next uint64
		if old&pinCountMask == 0 {
			next = a.epoch.Load()<<pinCountBits | 1
		} else {
			next = old + 1
		}
		if slot.CompareAndSwap(old, next) {
			return
		}
	}
}

// unpin retires one reader from the stripe's pin slot. A slot whose count
// reaches zero is inactive regardless of the stale epoch bits it still
// carries.
func (a *arena) unpin(stripe int) {
	a.slots[stripe].v.Add(^uint64(0))
}

// minPinned returns the oldest epoch any active reader holds, or the current
// epoch when no reader is pinned. Chunks stamped strictly below the result
// are unobservable and may be recycled.
func (a *arena) minPinned() uint64 {
	min := a.epoch.Load()
	for i := range a.slots {
		v := a.slots[i].v.Load()
		if v&pinCountMask != 0 {
			if e := v >> pinCountBits; e < min {
				min = e
			}
		}
	}
	return min
}

// advanceEpoch ticks the global reclamation clock, making chunks quarantined
// before the tick eligible as soon as no reader still pins the old epoch.
func (a *arena) advanceEpoch() {
	a.epoch.Add(1)
}

// reclaim harvests every stripe's quarantine. Called by the bookkeeper's
// drain tick (after advanceEpoch) and by tests that force a settle.
func (a *arena) reclaim() {
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		a.reclaimStripeLocked(st)
		st.mu.Unlock()
	}
}

// reclaimStripeLocked recycles the prefix of the stripe's quarantine whose
// stamps every active reader has advanced past. The caller must hold st.mu —
// holding it is the seal that makes the slot scan sound: no new chunk can be
// pushed while we scan, so any pin that could protect a quarantined chunk was
// published before the scan and is observed by it.
func (a *arena) reclaimStripeLocked(st *arenaStripe) {
	if len(st.quar) == 0 {
		return
	}
	min := a.minPinned()
	n := 0
	for n < len(st.quar) && st.quar[n].epoch < min {
		n++
	}
	if n == 0 {
		return
	}
	m := a.migrating.Load()
	for i := 0; i < n; i++ {
		q := st.quar[i]
		a.classes[q.class].quarantined.Add(-1)
		if m != nil && m.class == q.class && m.contains(q.chunk) {
			// The chunk belongs to the retiring page: it has now outlived
			// every pinned reader, so it joins the migration instead of the
			// freelist. This is the path that makes page retirement respect
			// zero-copy readers.
			m.got.Add(1)
			a.maybeFinishMigration(m)
			continue
		}
		cache := append(st.free[q.class], q.chunk)
		if len(cache) > stripeCap {
			cache = a.flushLocked(q.class, cache)
		}
		st.free[q.class] = cache
	}
	rest := copy(st.quar, st.quar[n:])
	for i := rest; i < len(st.quar); i++ {
		st.quar[i] = quarChunk{}
	}
	st.quar = st.quar[:rest]
}

// quarantinedChunks totals the chunks currently awaiting reclamation across
// all classes (the epoch_quarantined_chunks stat, and the drain tick's
// is-there-anything-to-do probe).
func (a *arena) quarantinedChunks() int64 {
	var n int64
	for c := range a.classes {
		n += a.classes[c].quarantined.Load()
	}
	return n
}

// alloc returns a full-length chunk of the given class, preferring the
// stripe's cache, then the central freelist, then the stripe's own reclaimed
// quarantine, then a freshly carved page. While a page retirement is in
// flight, a popped chunk belonging to the retiring page is captured for the
// migration instead of handed out — this intercept is what guarantees that
// from the moment a migration is published, no new resident can land on the
// retiring page. The steady-state cost is one atomic nil load.
func (a *arena) alloc(stripe, class int) []byte {
	st := &a.stripes[stripe]
	st.mu.Lock()
	var c []byte
	for {
		if len(st.free[class]) == 0 {
			a.refillLocked(st, class)
		}
		cache := st.free[class]
		n := len(cache) - 1
		c = cache[n]
		cache[n] = nil
		st.free[class] = cache[:n]
		if m := a.migrating.Load(); m != nil && m.class == class && m.contains(c) {
			m.got.Add(1)
			a.maybeFinishMigration(m)
			continue
		}
		break
	}
	st.mu.Unlock()
	a.classes[class].used.Add(1)
	return c
}

// refillLocked restocks st.free[class]: central freelist first; when that is
// dry, free pressure advances the epoch and harvests quarantined chunks (the
// stripe's own first, then — opportunistically, via TryLock — other stripes')
// before a new page is carved. The pressure path is what keeps synchronous
// stores, which have no drain tick, recycling instead of growing. The caller
// must hold st.mu; st.free[class] is non-empty on return.
func (a *arena) refillLocked(st *arenaStripe, class int) {
	cl := &a.classes[class]
	cl.mu.Lock()
	if len(cl.free) > 0 {
		st.free[class] = a.pullLocked(cl, st.free[class])
		cl.mu.Unlock()
		return
	}
	cl.mu.Unlock()

	if a.quarantinedChunks() > 0 {
		a.epoch.Add(1)
		a.reclaimStripeLocked(st)
		if len(st.free[class]) > 0 {
			return
		}
		// The needed chunks may be parked on other stripes' quarantines
		// (e.g. after a flush drained shards this stripe never frees on).
		// TryLock keeps the cross-stripe peek deadlock-free: two pressured
		// allocs can never wait on each other's stripe mutex. Harvested
		// chunks land on the owning stripe's cache and overflow to the
		// central list, where the carve step below picks them up.
		for i := range a.stripes {
			other := &a.stripes[i]
			if other == st || !other.mu.TryLock() {
				continue
			}
			a.reclaimStripeLocked(other)
			other.mu.Unlock()
		}
	}

	cl.mu.Lock()
	if len(cl.free) == 0 {
		page := a.pa.lease(a.owner)
		cs := cl.chunkSize
		for off := int64(0); off+cs <= a.geom.PageSize; off += cs {
			// The three-index slice caps each chunk at its own boundary, so
			// an append through a stale reference can never bleed into a
			// neighbouring chunk.
			cl.free = append(cl.free, page[off:off+cs:off+cs])
		}
		cl.pages++
		cl.pageBufs = append(cl.pageBufs, page)
	}
	st.free[class] = a.pullLocked(cl, st.free[class])
	cl.mu.Unlock()
}

// pullLocked moves up to stripeRefill chunks from the class's central
// freelist into cache. The caller must hold cl.mu, and cl.free must be
// non-empty.
func (a *arena) pullLocked(cl *arenaCentral, cache [][]byte) [][]byte {
	n := stripeRefill
	if n > len(cl.free) {
		n = len(cl.free)
	}
	split := len(cl.free) - n
	cache = append(cache, cl.free[split:]...)
	for i := split; i < len(cl.free); i++ {
		cl.free[i] = nil
	}
	cl.free = cl.free[:split]
	return cache
}

// freeChunk retires a chunk of the given class into the stripe's quarantine,
// stamped with the current epoch; a later reclaim pass recycles it once no
// pinned reader can still observe it. The chunk must have been allocated from
// the same class; the capacity check turns any accounting mismatch (a chunk
// freed under the wrong charged size) into a loud failure instead of silent
// pool corruption. The caller must hold the owning value shard's mutex — that
// is the happens-before edge between a reader's pin and this retirement.
func (a *arena) freeChunk(stripe, class int, chunk []byte) {
	cl := &a.classes[class]
	if int64(cap(chunk)) != cl.chunkSize {
		panic(fmt.Sprintf("store: arena chunk of cap %d freed into class %d (chunk size %d)",
			cap(chunk), class, cl.chunkSize))
	}
	chunk = chunk[:cl.chunkSize]
	st := &a.stripes[stripe]
	st.mu.Lock()
	st.quar = append(st.quar, quarChunk{chunk: chunk, class: class, epoch: a.epoch.Load()})
	cl.quarantined.Add(1)
	a.deferredFrees.Add(1)
	if len(st.quar) >= quarantineHighWater {
		a.epoch.Add(1)
		a.reclaimStripeLocked(st)
	}
	st.mu.Unlock()
	cl.used.Add(-1)
}

// flushLocked moves the older half of an overfull stripe cache back to the
// central freelist. The caller must hold the stripe's lock.
func (a *arena) flushLocked(class int, cache [][]byte) [][]byte {
	cl := &a.classes[class]
	half := len(cache) / 2
	cl.mu.Lock()
	cl.free = append(cl.free, cache[:half]...)
	cl.mu.Unlock()
	rest := copy(cache, cache[half:])
	for i := rest; i < len(cache); i++ {
		cache[i] = nil
	}
	return cache[:rest]
}

// ArenaClassStats reports one slab class's arena occupancy.
type ArenaClassStats struct {
	// Class is the slab class index; ChunkSize its chunk size in bytes.
	Class     int
	ChunkSize int64
	// Pages is the number of pages carved for the class; PageSize is the
	// page size in bytes.
	Pages    int64
	PageSize int64
	// TotalChunks is Pages times chunks-per-page.
	TotalChunks int64
	// UsedChunks counts chunks backing resident values; FreeChunks counts
	// chunks on the central freelist and the per-stripe caches;
	// QuarantinedChunks counts retired chunks parked until every reader
	// epoch advances past them; MigratingChunks counts chunks of the class's
	// retiring page already captured by an in-flight page migration. Under
	// live traffic the split is approximate (a chunk in flight between lists
	// is momentarily in none); on a quiesced store
	// Used + Free + Quarantined + Migrating == Total exactly.
	UsedChunks        int64
	FreeChunks        int64
	QuarantinedChunks int64
	MigratingChunks   int64
}

// ArenaBytes returns the bytes the class's pages occupy.
func (s ArenaClassStats) ArenaBytes() int64 { return s.Pages * s.PageSize }

// ArenaReclaimStats reports a tenant's epoch-reclamation state: the current
// epoch, the chunks currently parked in quarantine, and the monotone count of
// frees ever deferred through it. Served as epoch_current,
// epoch_quarantined_chunks and epoch_deferred_frees by the stats verb.
type ArenaReclaimStats struct {
	Epoch             uint64
	QuarantinedChunks int64
	DeferredFrees     int64
}

// reclaimStats snapshots the arena's epoch-reclamation counters.
func (a *arena) reclaimStats() ArenaReclaimStats {
	return ArenaReclaimStats{
		Epoch:             a.epoch.Load(),
		QuarantinedChunks: a.quarantinedChunks(),
		DeferredFrees:     a.deferredFrees.Load(),
	}
}

// SumArenaStats totals per-class occupancy into the three numbers every
// consumer wants: bytes carved into pages, bytes backing resident chunks,
// and total chunk bytes (the occupancy denominator). The stats verb and the
// periodic daemon log both aggregate through here so they can never
// disagree on what "occupancy" means.
func SumArenaStats(classes []ArenaClassStats) (arenaBytes, usedBytes, totalBytes int64) {
	for _, cl := range classes {
		arenaBytes += cl.ArenaBytes()
		usedBytes += cl.UsedChunks * cl.ChunkSize
		totalBytes += cl.TotalChunks * cl.ChunkSize
	}
	return arenaBytes, usedBytes, totalBytes
}

// centralStats snapshots the per-class page counts, central freelists and
// used/quarantined counters. Shared by the live stats walk and the sealed
// audit snapshot.
func (a *arena) centralStats() []ArenaClassStats {
	out := make([]ArenaClassStats, len(a.classes))
	for c := range a.classes {
		cl := &a.classes[c]
		cl.mu.Lock()
		out[c] = ArenaClassStats{
			Class:             c,
			ChunkSize:         cl.chunkSize,
			Pages:             cl.pages,
			PageSize:          a.geom.PageSize,
			TotalChunks:       cl.pages * cl.perPage,
			UsedChunks:        cl.used.Load(),
			FreeChunks:        int64(len(cl.free)),
			QuarantinedChunks: cl.quarantined.Load(),
		}
		// The migrating count must come from the same cl.mu section as pages
		// and the central freelist: migration completion (pages--, pointer
		// cleared) and the central sweep both mutate under cl.mu, so reading
		// here keeps the per-class snapshot internally consistent.
		if m := a.migrating.Load(); m != nil && m.class == c {
			out[c].MigratingChunks = m.got.Load()
		}
		cl.mu.Unlock()
	}
	return out
}

// addStripeStats folds one stripe's cached chunks into out. The caller must
// hold st.mu.
func addStripeStats(out []ArenaClassStats, st *arenaStripe) {
	for c := range st.free {
		out[c].FreeChunks += int64(len(st.free[c]))
	}
}

// stats snapshots every class's occupancy, including classes that have not
// carved a page yet (Pages == 0). Locks are taken one list at a time, so
// under live traffic the split is approximate (a chunk in flight between
// lists can be counted twice or not at all); exact accounting goes through
// statsSealed.
func (a *arena) stats() []ArenaClassStats {
	out := a.centralStats()
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		addStripeStats(out, st)
		st.mu.Unlock()
	}
	return out
}

// statsSealed snapshots occupancy with every stripe mutex held for the whole
// walk: alloc, free and — crucially — the drain tick's concurrent reclaim all
// need a stripe mutex to move a chunk between states, so the sealed snapshot
// is internally consistent even while the background reclaimer runs. Used by
// the conservation audit; the live stats verb keeps the cheaper approximate
// walk.
func (a *arena) statsSealed() []ArenaClassStats {
	for i := range a.stripes {
		a.stripes[i].mu.Lock()
	}
	out := a.centralStats()
	for i := range a.stripes {
		addStripeStats(out, &a.stripes[i])
	}
	for i := range a.stripes {
		a.stripes[i].mu.Unlock()
	}
	return out
}

// checkConservation verifies the arena's chunk-conservation invariant on a
// quiesced store: for every class, every chunk of every carved page is
// backing a resident value, sitting on a freelist, parked in quarantine, or
// captured by an in-flight page migration —
// used + free + quarantined + migrating == pages * chunks-per-page, with no
// chunk leaked and none double-freed (the migrating term is zero whenever no
// page is retiring, which restores the classic three-state form). usedWant
// gives the caller-counted resident chunks per class (from walking the item
// directory); pass nil to skip that cross-check. The sealed snapshot keeps
// the check sound even while the bookkeeper's drain tick reclaims — or a
// migration collects — concurrently.
func (a *arena) checkConservation(usedWant []int64) error {
	for _, st := range a.statsSealed() {
		if st.UsedChunks+st.FreeChunks+st.QuarantinedChunks+st.MigratingChunks != st.TotalChunks {
			return fmt.Errorf("class %d (chunk %d): used %d + free %d + quarantined %d + migrating %d != total %d (%d pages)",
				st.Class, st.ChunkSize, st.UsedChunks, st.FreeChunks, st.QuarantinedChunks, st.MigratingChunks, st.TotalChunks, st.Pages)
		}
		if st.UsedChunks < 0 || st.FreeChunks < 0 || st.QuarantinedChunks < 0 || st.MigratingChunks < 0 {
			return fmt.Errorf("class %d: negative occupancy (used %d, free %d, quarantined %d, migrating %d)",
				st.Class, st.UsedChunks, st.FreeChunks, st.QuarantinedChunks, st.MigratingChunks)
		}
		if usedWant != nil && st.UsedChunks != usedWant[st.Class] {
			return fmt.Errorf("class %d: arena counts %d used chunks, directory holds %d",
				st.Class, st.UsedChunks, usedWant[st.Class])
		}
	}
	return nil
}
