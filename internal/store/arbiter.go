package store

// This file is the Memshare layer (Cidon et al., the Cliffhanger group's
// follow-up): cross-tenant memory arbitration on top of the allocation-policy
// layer. Cliffhanger's hill climbing optimizes queue sizes *within* a
// tenant's fixed partition; the arbiter moves memory *between* tenants at
// runtime. Every tick it reads each AllocMemshare tenant's shadow-queue hit
// count — the same credit signal the hill climber transfers memory on,
// except aggregated over the whole tenant — normalizes it to a marginal
// hit-rate-per-byte estimate (shadow hits per byte of shadow-queue
// capacity), and moves one bounded step of memory from the lowest-ranked
// tenant to the highest via ResizeTenant. Three guards keep it stable:
//
//   - reserved floors: a tenant is never shrunk below its ReservedBytes
//     (TenantConfig), the tenant-level analogue of core.Config.MinQueueBytes;
//   - hysteresis: no move unless the marginal gap exceeds MinRateDelta, and
//     a tenant that just moved sits out CooldownTicks ticks, so an
//     oscillating workload cannot thrash pages back and forth;
//   - bounded steps: one StepBytes move per tick, applied through the
//     ordinary ResizeTenant → reconfigure-tick → page-migration machinery,
//     so zero-copy readers and the chunk-conservation audit see nothing new.
//
// The decision engine (ArbiterState) is separated from the Store so the
// trace-driven simulator can run the identical policy over its value-less
// tenants: internal/sim drives one ArbiterState per run at a deterministic
// request cadence, which is what lets CrossCheck compare a memshare wire
// replay against a memshare simulation.

import (
	"fmt"
	"sort"
	"time"
)

// DefaultArbiterEvery is the request cadence at which deterministic
// harnesses (the simulator, the sim-vs-wire cross-check) run an arbiter
// tick: one tick per DefaultArbiterEvery demand-fill GETs across all
// tenants. The live server uses wall-clock Interval instead.
const DefaultArbiterEvery = 4096

// DefaultArbiterCooldownTicks is the default number of ticks a tenant that
// just donated (received) memory is barred from receiving (donating) —
// the role-flip hysteresis.
const DefaultArbiterCooldownTicks = 8

// DefaultArbiterMinRateDelta is the default hysteresis threshold: the
// marginal hit-rate-per-byte gap below which no move happens. It corresponds
// to 24 shadow-queue hits per tick at the paper's 1 MiB shadow queue —
// tuned on the Memcachier replay so that junk moves (pages granted on noise
// to a tenant whose curve is already flat) stay below the realized gains.
const DefaultArbiterMinRateDelta = 24.0 / float64(1<<20)

// ArbiterConfig tunes the cross-tenant arbiter.
type ArbiterConfig struct {
	// Interval is the background tick period. Zero disables the background
	// goroutine; ArbiterTick can still be driven explicitly (the
	// deterministic harnesses do).
	Interval time.Duration
	// StepBytes is the memory moved per decision. Zero defaults to one
	// slab page.
	StepBytes int64
	// MinRateDelta is the hysteresis threshold on the marginal
	// hit-rate-per-byte gap between recipient and donor. Zero defaults to
	// DefaultArbiterMinRateDelta; negative disables the threshold.
	MinRateDelta float64
	// CooldownTicks is how many ticks a tenant that just donated
	// (received) memory may not flip to receiving (donating). Repeating
	// the same role on consecutive ticks is allowed — that is convergence,
	// bounded by the reserved floors. Zero defaults to
	// DefaultArbiterCooldownTicks; negative disables the cooldown.
	CooldownTicks int
}

// withDefaults normalizes zero fields; pageSize supplies the step default.
func (c ArbiterConfig) withDefaults(pageSize int64) ArbiterConfig {
	if c.StepBytes <= 0 {
		c.StepBytes = pageSize
	}
	if c.MinRateDelta == 0 {
		c.MinRateDelta = DefaultArbiterMinRateDelta
	} else if c.MinRateDelta < 0 {
		c.MinRateDelta = 0
	}
	if c.CooldownTicks == 0 {
		c.CooldownTicks = DefaultArbiterCooldownTicks
	} else if c.CooldownTicks < 0 {
		c.CooldownTicks = 0
	}
	return c
}

// ArbiterObservation is one memshare tenant's state as seen at a tick:
// cumulative shadow-queue hits and real lookup hits, the shadow capacity
// the former are measured against, the reservation the tenant is converging
// to, and its floor.
type ArbiterObservation struct {
	Name          string
	ShadowHits    int64
	Hits          int64
	ShadowBytes   int64
	TargetBytes   int64
	ReservedBytes int64
}

// ArbiterMove is one decided transfer: shrink Donor to DonorBytes and grow
// Recipient to RecipientBytes (both are absolute new targets, StepBytes
// apart from the old ones).
type ArbiterMove struct {
	Donor, Recipient           string
	DonorBytes, RecipientBytes int64
	StepBytes                  int64
}

// ArbiterInput is one tenant's digest for PlanArbiterMove: the two
// hit-rate-per-byte estimates plus the constraints (floor, role cooldowns).
// Marginal is the shadow-queue gain estimate — the extra hits per byte per
// tick the tenant would earn from more memory. Density is the realized
// hits per byte per tick over the tenant's current reservation; for a
// concave hit curve the coldest StepBytes of a tenant's memory serve at
// most its average density, so Density upper-bounds what shrinking the
// tenant by one step can cost. NoDonate/NoReceive are the directional
// cooldowns: a tenant that just received must not immediately donate and
// vice versa.
type ArbiterInput struct {
	Name          string
	Marginal      float64
	Density       float64
	TargetBytes   int64
	ReservedBytes int64
	NoDonate      bool
	NoReceive     bool
}

// PlanArbiterMove picks the single bounded move for one tick: the donor is
// the lowest-density tenant that can shed stepBytes without breaching its
// reserved floor, the recipient the tenant with the highest marginal gain
// estimate; no move unless both exist, differ, are out of cooldown, and the
// recipient's estimated gain exceeds the donor's density loss bound by at
// least minDelta — so every move has positive expected value even if the
// donor loses the most its curve allows. Ties resolve to the earliest
// input, so a deterministic input order (sorted by name in the Store, the
// same in the simulator) makes the decision deterministic.
func PlanArbiterMove(ins []ArbiterInput, stepBytes int64, minDelta float64) (donor, recipient int, ok bool) {
	donor, recipient = -1, -1
	for i, in := range ins {
		if !in.NoDonate && in.TargetBytes-stepBytes >= in.ReservedBytes &&
			(donor < 0 || in.Density < ins[donor].Density) {
			donor = i
		}
		if !in.NoReceive && (recipient < 0 || in.Marginal > ins[recipient].Marginal) {
			recipient = i
		}
	}
	if donor < 0 || recipient < 0 || donor == recipient {
		return -1, -1, false
	}
	if ins[recipient].Marginal-ins[donor].Density < minDelta {
		return -1, -1, false
	}
	return donor, recipient, true
}

// arbiterEwmaAlpha is the smoothing factor for the per-tick signal
// estimates: each tick contributes half, so a tenant's rank reflects its
// last few windows rather than one noisy sample.
const arbiterEwmaAlpha = 0.5

// ewma folds a new sample into an exponentially smoothed estimate.
func ewma(old, sample float64) float64 {
	return old*(1-arbiterEwmaAlpha) + sample*arbiterEwmaAlpha
}

// arbiterTenant is the per-tenant window state ArbiterState keeps between
// ticks. The cooldown is directional: a tenant may donate (or receive)
// repeatedly on consecutive ticks — that is convergence, bounded by the
// reserved floors — but may not flip roles until the cooldown expires,
// which is what stops an oscillating workload from thrashing the same
// pages back and forth.
type arbiterTenant struct {
	lastShadow int64
	lastHits   int64
	primed     bool
	// donUntil/recvUntil are the ticks through which the tenant's last
	// donation/receipt forbids it from taking the opposite role.
	donUntil  int64
	recvUntil int64
	marginal  float64
	density   float64
}

// ArbiterState is the arbiter's decision engine: it differences each
// tenant's cumulative shadow-hit counter into per-tick windows, tracks
// cooldowns, and plans at most one move per tick. It is not safe for
// concurrent use; the Store guards its instance with a mutex and the
// simulator drives its own from one goroutine.
type ArbiterState struct {
	cfg      ArbiterConfig
	tick     int64
	moves    int64
	lastMove string
	tenants  map[string]*arbiterTenant
}

// NewArbiterState builds a decision engine; pageSize supplies the default
// move step.
func NewArbiterState(cfg ArbiterConfig, pageSize int64) *ArbiterState {
	return &ArbiterState{
		cfg:     cfg.withDefaults(pageSize),
		tenants: make(map[string]*arbiterTenant),
	}
}

// Moves returns the number of moves decided so far.
func (a *ArbiterState) Moves() int64 { return a.moves }

// LastMove describes the most recent move ("donor->recipient:bytes"), empty
// before the first.
func (a *ArbiterState) LastMove() string { return a.lastMove }

// Marginal returns the tenant's marginal hit-rate-per-byte estimate from
// the last completed tick (0 for unknown tenants).
func (a *ArbiterState) Marginal(name string) float64 {
	if st := a.tenants[name]; st != nil {
		return st.marginal
	}
	return 0
}

// Density returns the tenant's realized hits-per-byte-per-tick from the
// last completed tick (0 for unknown tenants).
func (a *ArbiterState) Density(name string) float64 {
	if st := a.tenants[name]; st != nil {
		return st.density
	}
	return 0
}

// Tick ingests one observation per memshare tenant — in a deterministic
// order chosen by the caller — and returns the move to apply, if any. A
// tenant's first-ever observation only primes its window (no marginal yet);
// tenants absent from obs are forgotten.
func (a *ArbiterState) Tick(obs []ArbiterObservation) (ArbiterMove, bool) {
	a.tick++
	seen := make(map[string]bool, len(obs))
	inputs := make([]ArbiterInput, 0, len(obs))
	for _, o := range obs {
		seen[o.Name] = true
		st := a.tenants[o.Name]
		if st == nil {
			st = &arbiterTenant{}
			a.tenants[o.Name] = st
		}
		delta := o.ShadowHits - st.lastShadow
		hitDelta := o.Hits - st.lastHits
		st.lastShadow = o.ShadowHits
		st.lastHits = o.Hits
		if !st.primed {
			st.primed = true
			st.marginal = 0
			st.density = 0
			continue
		}
		sb := o.ShadowBytes
		if sb <= 0 {
			sb = 1 << 20
		}
		// Both estimates are exponentially smoothed: a single tick's window
		// is a few thousand requests split across tenants, so the raw
		// per-tick rates are noisy enough to misrank tenants.
		density := float64(0)
		if o.TargetBytes > 0 {
			density = float64(hitDelta) / float64(o.TargetBytes)
		}
		st.marginal = ewma(st.marginal, float64(delta)/float64(sb))
		st.density = ewma(st.density, density)
		inputs = append(inputs, ArbiterInput{
			Name:          o.Name,
			Marginal:      st.marginal,
			Density:       st.density,
			TargetBytes:   o.TargetBytes,
			ReservedBytes: o.ReservedBytes,
			NoDonate:      a.tick <= st.recvUntil,
			NoReceive:     a.tick <= st.donUntil,
		})
	}
	for name := range a.tenants {
		if !seen[name] {
			delete(a.tenants, name)
		}
	}
	d, r, ok := PlanArbiterMove(inputs, a.cfg.StepBytes, a.cfg.MinRateDelta)
	if !ok {
		return ArbiterMove{}, false
	}
	don, rec := inputs[d], inputs[r]
	a.tenants[don.Name].donUntil = a.tick + int64(a.cfg.CooldownTicks)
	a.tenants[rec.Name].recvUntil = a.tick + int64(a.cfg.CooldownTicks)
	a.moves++
	mv := ArbiterMove{
		Donor:          don.Name,
		Recipient:      rec.Name,
		DonorBytes:     don.TargetBytes - a.cfg.StepBytes,
		RecipientBytes: rec.TargetBytes + a.cfg.StepBytes,
		StepBytes:      a.cfg.StepBytes,
	}
	a.lastMove = fmt.Sprintf("%s->%s:%d", mv.Donor, mv.Recipient, mv.StepBytes)
	return mv, true
}

// ArbiterTick runs one arbitration round over the store's AllocMemshare
// tenants and applies the decided move (if any) through ResizeTenant — so
// the transfer rides the ordinary incremental-resize and page-migration
// machinery. It reports whether a move was applied. Safe for concurrent
// use; the background loop and explicit callers serialize on the arbiter
// mutex.
func (s *Store) ArbiterTick() bool {
	reg := *s.tenants.Load()
	names := make([]string, 0, len(reg))
	for n, e := range reg {
		if e.tenant.Mode() == AllocMemshare && !e.dying.Load() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	obs := make([]ArbiterObservation, 0, len(names))
	for _, n := range names {
		e := reg[n]
		var shadow, hits int64
		e.bk.mu.Lock()
		if m := e.tenant.Manager(); m != nil {
			shadow = m.TotalStats().ShadowHits
		}
		hits = e.tenant.Hits()
		e.bk.mu.Unlock()
		obs = append(obs, ArbiterObservation{
			Name:          n,
			ShadowHits:    shadow,
			Hits:          hits,
			ShadowBytes:   e.tenant.ShadowBytes(),
			TargetBytes:   e.targetBytes.Load(),
			ReservedBytes: e.tenant.ReservedBytes(),
		})
	}
	s.arbMu.Lock()
	mv, ok := s.arb.Tick(obs)
	s.arbMu.Unlock()
	if !ok {
		return false
	}
	// A tenant deleted between the snapshot and here just voids its half of
	// the move; the next tick replans from fresh observations.
	_ = s.ResizeTenant(mv.Donor, mv.DonorBytes)
	_ = s.ResizeTenant(mv.Recipient, mv.RecipientBytes)
	return true
}

// arbiterLoop is the background ticker Store.New starts when
// Config.Arbiter.Interval > 0.
func (s *Store) arbiterLoop(interval time.Duration) {
	defer close(s.arbDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.arbStop:
			return
		case <-t.C:
			s.ArbiterTick()
		}
	}
}

// stopArbiter halts the background ticker (idempotent; no-op when none ran).
func (s *Store) stopArbiter() {
	if s.arbStop != nil {
		close(s.arbStop)
		<-s.arbDone
		s.arbStop = nil
	}
}

// ArbiterTenantStats is one tenant's arbitration-facing state.
type ArbiterTenantStats struct {
	// Arbitrated reports whether the tenant participates (AllocMemshare).
	Arbitrated bool
	// LeasePages is the tenant's current page-pool lease.
	LeasePages int64
	// ReservedBytes/ReservedPages is the arbiter floor.
	ReservedBytes int64
	ReservedPages int64
	// TargetBytes is the reservation the tenant is converging to.
	TargetBytes int64
	// MarginalHitPerByte is the last tick's shadow-hit signal per byte of
	// shadow-queue capacity (the arbiter's gain estimate), and
	// HitDensityPerByte the realized hits per byte of reservation (its
	// donor loss bound).
	MarginalHitPerByte float64
	HitDensityPerByte  float64
}

// ArbiterStats is the arbiter's observable state: the process-wide move
// count plus every registered tenant's lease/floor/signal, which is what
// lets an operator watch memory migrate between tenants live.
type ArbiterStats struct {
	Moves    int64
	LastMove string
	Tenants  map[string]ArbiterTenantStats
}

// ArbiterStats snapshots the arbiter. It covers all tenants, not only
// memshare ones, so the per-tenant lease view is complete.
func (s *Store) ArbiterStats() ArbiterStats {
	ps := s.pa.stats()
	reg := *s.tenants.Load()
	out := ArbiterStats{Tenants: make(map[string]ArbiterTenantStats, len(reg))}
	s.arbMu.Lock()
	out.Moves = s.arb.Moves()
	out.LastMove = s.arb.LastMove()
	marginals := make(map[string]float64, len(reg))
	densities := make(map[string]float64, len(reg))
	for n := range reg {
		marginals[n] = s.arb.Marginal(n)
		densities[n] = s.arb.Density(n)
	}
	s.arbMu.Unlock()
	for n, e := range reg {
		res := e.tenant.ReservedBytes()
		out.Tenants[n] = ArbiterTenantStats{
			Arbitrated:         e.tenant.Mode() == AllocMemshare,
			LeasePages:         ps.Leases[n],
			ReservedBytes:      res,
			ReservedPages:      (res + s.pa.pageSize - 1) / s.pa.pageSize,
			TargetBytes:        e.targetBytes.Load(),
			MarginalHitPerByte: marginals[n],
			HitDensityPerByte:  densities[n],
		}
	}
	return out
}
