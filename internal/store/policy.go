package store

// This file is the allocation-policy layer: the per-mode behavior that used
// to be dispatched through `switch t.cfg.Mode` statements scattered across
// tenant.go lives in one interface with four implementations, one per
// AllocationMode family. A Tenant owns exactly one partitionPolicy and keeps
// only the mode-independent parts for itself — hit/miss/set counters and the
// class-indexed stat arrays — so adding an allocation mode means adding an
// implementation here, not threading another case through a dozen switches.
// AllocMemshare reuses managedPolicy: within a tenant it behaves exactly
// like Cliffhanger; what distinguishes it is the store-level arbiter
// (arbiter.go) moving memory *between* tenants.
//
// Like Tenant itself, policies are single-threaded; the bookkeeper (or the
// simulator's one goroutine) serializes access.

import (
	"cliffhanger/internal/cache"
	"cliffhanger/internal/core"
	"cliffhanger/internal/slab"
)

// partitionPolicy is how a tenant divides its reservation across queues and
// charges items against it. The hooks mirror the tenant's public surface:
// classFor/cost map an item to a queue and a charge, resident/promote/admit/
// remove mutate the structure, resize retargets the reservation, and the
// snapshot hooks feed Stats/ClassCapacities/UsedBytes.
type partitionPolicy interface {
	// classFor returns the queue an item of the given size belongs to.
	classFor(size int64) (int, bool)
	// cost returns the bytes charged for an item of the given size.
	cost(class int, size int64) int64
	// resident reports whether key is tracked, without promoting it.
	resident(class int, key string) bool
	// promote re-accesses an already-resident key (the GET/touch path);
	// eviction side effects of lazily applied resizes are deliberately
	// dropped, matching the pre-extraction behavior.
	promote(class int, key string, cost int64) bool
	// admit inserts (or promotes) key, growing the queue first where the
	// mode allows it, and returns the accompanying evictions.
	admit(class int, key string, cost int64) (bool, []cache.Victim)
	// remove drops key's structural entry.
	remove(class int, key string) bool
	// resize retargets the reservation from oldBytes to newBytes and
	// returns the victims a shrink evicted.
	resize(oldBytes, newBytes int64) []cache.Victim
	// Snapshot hooks, keyed by slab class (class 0 for global LRU).
	capacities() map[int]int64
	items() map[int]int
	used() map[int]int64
	usedBytes() int64
	// manager exposes the Cliffhanger manager, nil for unmanaged policies.
	manager() *core.Manager
}

// classQueues is the shared shape of the unmanaged per-class policies
// (default and static): one eviction queue per slab class, chunk-size
// charging.
type classQueues struct {
	geom    *slab.Geometry
	classes []cache.Policy
}

func (p *classQueues) classFor(size int64) (int, bool) { return p.geom.ClassFor(size) }

func (p *classQueues) cost(class int, size int64) int64 { return p.geom.ChunkSize(class) }

func (p *classQueues) resident(class int, key string) bool { return p.classes[class].Contains(key) }

func (p *classQueues) promote(class int, key string, cost int64) bool {
	hit, _ := p.classes[class].Access(key, cost)
	return hit
}

func (p *classQueues) remove(class int, key string) bool { return p.classes[class].Remove(key) }

func (p *classQueues) capacities() map[int]int64 {
	out := make(map[int]int64)
	for c, q := range p.classes {
		out[c] = q.Capacity()
	}
	return out
}

func (p *classQueues) items() map[int]int {
	out := make(map[int]int)
	for c, q := range p.classes {
		out[c] = q.Len()
	}
	return out
}

func (p *classQueues) used() map[int]int64 {
	out := make(map[int]int64)
	for c, q := range p.classes {
		out[c] = q.Used()
	}
	return out
}

func (p *classQueues) usedBytes() int64 {
	var sum int64
	for _, q := range p.classes {
		sum += q.Used()
	}
	return sum
}

func (p *classQueues) manager() *core.Manager { return nil }

// defaultPolicy is stock Memcached behavior: memory is carved into pages
// handed to slab classes on demand, first come first served; each class runs
// its own eviction queue starting at zero capacity.
type defaultPolicy struct {
	classQueues
	alloc *slab.Allocator
}

func newDefaultPolicy(cfg TenantConfig, geom *slab.Geometry) *defaultPolicy {
	n := geom.NumClasses()
	p := &defaultPolicy{
		classQueues: classQueues{geom: geom, classes: make([]cache.Policy, n)},
		alloc:       slab.NewAllocator(geom, cfg.MemoryBytes),
	}
	for c := 0; c < n; c++ {
		p.classes[c] = cache.NewPolicy(cfg.Policy, 0)
	}
	return p
}

// admit implements the first-come-first-serve page allocation: when the
// class's queue has no room for one more item, it grabs a free page if any
// remain and grows its queue capacity accordingly.
func (p *defaultPolicy) admit(class int, key string, cost int64) (bool, []cache.Victim) {
	q := p.classes[class]
	for q.Used()+cost > q.Capacity() {
		if !p.alloc.Grow(class) {
			break
		}
		q.Resize(p.alloc.BytesOf(class))
	}
	return q.Access(key, cost)
}

func (p *defaultPolicy) resize(oldBytes, newBytes int64) []cache.Victim {
	p.alloc.SetBudget(newBytes)
	// A shrink leaves the free-page balance negative; shed pages from the
	// largest classes (shrinking their queues to match) until it clears.
	var victims []cache.Victim
	for p.alloc.FreePages() < 0 {
		best, most := -1, int64(0)
		for c := range p.classes {
			if pg := p.alloc.PagesOf(c); pg > most {
				best, most = c, pg
			}
		}
		if best < 0 {
			break
		}
		p.alloc.Release(best)
		victims = append(victims, p.classes[best].Resize(p.alloc.BytesOf(best))...)
	}
	return victims
}

// staticPolicy uses fixed per-class byte budgets, typically produced by the
// Dynacache solver baseline. There is no free pool: queues never grow on
// demand, and a resize scales every budget proportionally.
type staticPolicy struct {
	classQueues
}

func newStaticPolicy(cfg TenantConfig, geom *slab.Geometry) *staticPolicy {
	n := geom.NumClasses()
	p := &staticPolicy{classQueues{geom: geom, classes: make([]cache.Policy, n)}}
	for c := 0; c < n; c++ {
		budget := cfg.StaticClassBytes[c]
		if budget <= 0 {
			budget = geom.ChunkSize(c) // room for at least one item
		}
		p.classes[c] = cache.NewPolicy(cfg.Policy, budget)
	}
	return p
}

func (p *staticPolicy) admit(class int, key string, cost int64) (bool, []cache.Victim) {
	return p.classes[class].Access(key, cost)
}

func (p *staticPolicy) resize(oldBytes, newBytes int64) []cache.Victim {
	// Static budgets have no free pool to mediate; scale every class
	// proportionally, keeping room for at least one item each.
	var victims []cache.Victim
	for c, q := range p.classes {
		nb := int64(float64(q.Capacity()) * float64(newBytes) / float64(oldBytes))
		if nb < p.geom.ChunkSize(c) {
			nb = p.geom.ChunkSize(c)
		}
		victims = append(victims, q.Resize(nb)...)
	}
	return victims
}

// globalLRUPolicy keeps a single queue over all of the tenant's items
// regardless of size, charged at exact item size — emulating a
// log-structured memory cache at 100% utilization (Table 2).
type globalLRUPolicy struct {
	queue cache.Policy
}

func newGlobalLRUPolicy(cfg TenantConfig) *globalLRUPolicy {
	return &globalLRUPolicy{queue: cache.NewPolicy(cfg.Policy, cfg.MemoryBytes)}
}

func (p *globalLRUPolicy) classFor(size int64) (int, bool) { return 0, true }

func (p *globalLRUPolicy) cost(class int, size int64) int64 {
	if size <= 0 {
		return 1
	}
	return size
}

func (p *globalLRUPolicy) resident(class int, key string) bool { return p.queue.Contains(key) }

func (p *globalLRUPolicy) promote(class int, key string, cost int64) bool {
	hit, _ := p.queue.Access(key, cost)
	return hit
}

func (p *globalLRUPolicy) admit(class int, key string, cost int64) (bool, []cache.Victim) {
	return p.queue.Access(key, cost)
}

func (p *globalLRUPolicy) remove(class int, key string) bool { return p.queue.Remove(key) }

func (p *globalLRUPolicy) resize(oldBytes, newBytes int64) []cache.Victim {
	return p.queue.Resize(newBytes)
}

func (p *globalLRUPolicy) capacities() map[int]int64 { return map[int]int64{0: p.queue.Capacity()} }

func (p *globalLRUPolicy) items() map[int]int { return map[int]int{0: p.queue.Len()} }

func (p *globalLRUPolicy) used() map[int]int64 { return map[int]int64{0: p.queue.Used()} }

func (p *globalLRUPolicy) usedBytes() int64 { return p.queue.Used() }

func (p *globalLRUPolicy) manager() *core.Manager { return nil }

// managedPolicy runs the paper's algorithm: one Cliffhanger manager per
// tenant moves memory between slab-class queues using shadow-queue hill
// climbing and scales performance cliffs. It serves both AllocCliffhanger
// and AllocMemshare — the latter differs only in that the store's arbiter
// additionally resizes the whole tenant at runtime.
type managedPolicy struct {
	geom  *slab.Geometry
	alloc *slab.Allocator
	mgr   *core.Manager
	// classIDs caches the per-class queue ID strings ("class0", "class1",
	// ...) so the hot paths never format one per access.
	classIDs []string
}

func newManagedPolicy(cfg TenantConfig, geom *slab.Geometry) (*managedPolicy, error) {
	// Cliffhanger starts from the same first-come-first-serve page
	// allocation as stock Memcached (each queue begins near zero and grows
	// by grabbing free pages on demand) and then incrementally reassigns
	// memory between the class queues — exactly how the paper's prototype
	// layers the algorithm on top of memcached's slab allocator. Every
	// queue therefore starts at the manager's minimum size, and admit hands
	// out pages until they run out.
	n := geom.NumClasses()
	specs := make([]core.QueueSpec, 0, n)
	for c := 0; c < n; c++ {
		specs = append(specs, core.QueueSpec{
			ID:              classQueueID(c),
			UnitCost:        geom.ChunkSize(c),
			InitialCapacity: 1, // clamped up to the configured minimum
		})
	}
	m, err := core.NewManager(cfg.Cliffhanger, cfg.MemoryBytes, specs)
	if err != nil {
		return nil, err
	}
	p := &managedPolicy{
		geom:     geom,
		alloc:    slab.NewAllocator(geom, cfg.MemoryBytes),
		mgr:      m,
		classIDs: make([]string, n),
	}
	for c := 0; c < n; c++ {
		p.classIDs[c] = classQueueID(c)
	}
	return p, nil
}

// classID returns the cached queue ID of class (no formatting on the hot
// path).
func (p *managedPolicy) classID(class int) string { return p.classIDs[class] }

func (p *managedPolicy) classFor(size int64) (int, bool) { return p.geom.ClassFor(size) }

func (p *managedPolicy) cost(class int, size int64) int64 { return p.geom.ChunkSize(class) }

func (p *managedPolicy) resident(class int, key string) bool {
	return p.mgr.Contains(p.classID(class), key)
}

func (p *managedPolicy) promote(class int, key string, cost int64) bool {
	out, _ := p.mgr.Access(p.classID(class), key, cost)
	return out.Hit
}

func (p *managedPolicy) admit(class int, key string, cost int64) (bool, []cache.Victim) {
	victims := p.growIfNeeded(class, cost)
	out, _ := p.mgr.Access(p.classID(class), key, cost)
	return out.Hit, append(victims, out.Evicted...)
}

func (p *managedPolicy) remove(class int, key string) bool {
	return p.mgr.Remove(p.classID(class), key)
}

func (p *managedPolicy) resize(oldBytes, newBytes int64) []cache.Victim {
	victims := p.mgr.Resize(newBytes)
	p.alloc.SetBudget(newBytes)
	// Re-sync the page gate with the clawed-back capacities: a class
	// should hold about ceil(capacity / pageSize) pages, and releasing
	// the excess restores FreePages ⇔ (budget - CapacitySum) so future
	// growth is gated correctly.
	for c := 0; c < p.geom.NumClasses(); c++ {
		q := p.mgr.Queue(p.classID(c))
		if q == nil {
			continue
		}
		wantPages := (q.Capacity() + p.geom.PageSize - 1) / p.geom.PageSize
		for p.alloc.PagesOf(c) > wantPages {
			if !p.alloc.Release(c) {
				break
			}
		}
	}
	return victims
}

// growIfNeeded is the managed counterpart of the default policy's on-demand
// growth: while free pages remain, a class queue that is out of room grows
// by one page, exactly like stock Memcached; once the pages are exhausted,
// only the hill-climbing credit transfers change queue sizes.
//
// Hill-climbing capacity changes are applied lazily (on the next miss, per
// the paper's thrash-avoidance rule), but a page grab is applied eagerly
// here: the admission's insert runs before the end-of-access resize, so under
// the lazy rule a freshly granted page would not help the very item that
// requested it — a cold queue whose chunk size exceeds MinQueueBytes bounced
// its first admission outright, and an exactly-full queue evicted its LRU
// entry while a free page sat already granted. Stock Memcached grows by
// pages immediately, so the eager apply is also the faithful behavior. Any
// victims of the applied resize are returned for the caller to drop.
func (p *managedPolicy) growIfNeeded(class int, cost int64) []cache.Victim {
	q := p.mgr.Queue(p.classID(class))
	if q == nil {
		return nil
	}
	grew := false
	for q.Used()+cost > q.Capacity() && p.alloc.FreePages() > 0 {
		if !p.alloc.Grow(class) {
			break
		}
		q.SetCapacity(q.Capacity() + p.geom.PageSize)
		grew = true
	}
	if grew || q.AppliedCapacity() < cost {
		return q.ForceApplyResize()
	}
	return nil
}

func (p *managedPolicy) capacities() map[int]int64 {
	out := make(map[int]int64)
	for c := 0; c < p.geom.NumClasses(); c++ {
		if q := p.mgr.Queue(p.classID(c)); q != nil {
			out[c] = q.Capacity()
		}
	}
	return out
}

func (p *managedPolicy) items() map[int]int {
	out := make(map[int]int)
	for c := 0; c < p.geom.NumClasses(); c++ {
		if q := p.mgr.Queue(p.classID(c)); q != nil {
			out[c] = q.Items()
		}
	}
	return out
}

func (p *managedPolicy) used() map[int]int64 {
	out := make(map[int]int64)
	for c := 0; c < p.geom.NumClasses(); c++ {
		if q := p.mgr.Queue(p.classID(c)); q != nil {
			out[c] = q.Used()
		}
	}
	return out
}

func (p *managedPolicy) usedBytes() int64 {
	var sum int64
	for _, s := range p.mgr.Snapshot() {
		sum += s.Used
	}
	return sum
}

func (p *managedPolicy) manager() *core.Manager { return p.mgr }

// newPartitionPolicy builds the policy for cfg's mode.
func newPartitionPolicy(cfg TenantConfig, geom *slab.Geometry) (partitionPolicy, error) {
	switch cfg.Mode {
	case AllocCliffhanger, AllocMemshare:
		return newManagedPolicy(cfg, geom)
	case AllocGlobalLRU:
		return newGlobalLRUPolicy(cfg), nil
	case AllocStatic:
		return newStaticPolicy(cfg, geom), nil
	default: // AllocDefault
		return newDefaultPolicy(cfg, geom), nil
	}
}
