package store

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cliffhanger/internal/cache"
)

// TestPlanArbiterMove pins the decision rule: lowest-density eligible donor,
// highest-marginal recipient, floor and cooldown respected, and no move
// unless the recipient's estimated gain clears the donor's loss bound by the
// hysteresis threshold.
func TestPlanArbiterMove(t *testing.T) {
	const step = 1 << 20
	mk := func(name string, marginal, density float64, target, reserved int64) ArbiterInput {
		return ArbiterInput{Name: name, Marginal: marginal, Density: density,
			TargetBytes: target, ReservedBytes: reserved}
	}
	t.Run("basic", func(t *testing.T) {
		ins := []ArbiterInput{
			mk("a", 5e-6, 40e-6, 8<<20, 4<<20),
			mk("b", 90e-6, 10e-6, 8<<20, 4<<20),
			mk("c", 2e-6, 5e-6, 8<<20, 4<<20),
		}
		d, r, ok := PlanArbiterMove(ins, step, 24.0/(1<<20))
		if !ok || ins[d].Name != "c" || ins[r].Name != "b" {
			t.Fatalf("got donor=%d recipient=%d ok=%v, want c->b", d, r, ok)
		}
	})
	t.Run("floor blocks donor", func(t *testing.T) {
		ins := []ArbiterInput{
			mk("floor", 0, 0, 4<<20, 4<<20), // lowest density but at its floor
			mk("next", 1e-6, 5e-6, 8<<20, 4<<20),
			mk("hot", 90e-6, 50e-6, 8<<20, 4<<20),
		}
		d, r, ok := PlanArbiterMove(ins, step, 0)
		if !ok || ins[d].Name != "next" || ins[r].Name != "hot" {
			t.Fatalf("got donor=%d recipient=%d ok=%v, want next->hot", d, r, ok)
		}
	})
	t.Run("hysteresis threshold", func(t *testing.T) {
		ins := []ArbiterInput{
			mk("cold", 0, 10.0/(1<<20), 8<<20, 4<<20),
			mk("warm", 30.0/(1<<20), 50.0/(1<<20), 8<<20, 4<<20),
		}
		// Gap is 20 hits/MiB: below a 24 hits/MiB threshold, above a 16.
		if _, _, ok := PlanArbiterMove(ins, step, 24.0/(1<<20)); ok {
			t.Fatal("moved on a gap below the threshold")
		}
		if _, _, ok := PlanArbiterMove(ins, step, 16.0/(1<<20)); !ok {
			t.Fatal("refused a gap above the threshold")
		}
	})
	t.Run("cooldown", func(t *testing.T) {
		cold := mk("cold", 0, 0, 8<<20, 4<<20)
		hot := mk("hot", 90e-6, 50e-6, 8<<20, 4<<20)
		cold.NoDonate = true
		if _, _, ok := PlanArbiterMove([]ArbiterInput{cold, hot}, step, 0); ok {
			t.Fatal("cooled-down donor still donated")
		}
		cold.NoDonate = false
		hot.NoReceive = true
		if _, _, ok := PlanArbiterMove([]ArbiterInput{cold, hot}, step, 0); ok {
			t.Fatal("cooled-down recipient still received")
		}
	})
	t.Run("self move rejected", func(t *testing.T) {
		only := []ArbiterInput{mk("solo", 90e-6, 0, 8<<20, 4<<20)}
		if _, _, ok := PlanArbiterMove(only, step, 0); ok {
			t.Fatal("single tenant arbitraged against itself")
		}
	})
}

// TestArbiterStateThrash pins the directional cooldown under an oscillating
// workload: the hot role alternates between two tenants every period. The
// arbiter may repeat the same transfer direction on consecutive ticks (that
// is convergence, and the EWMA-smoothed signal legitimately trails a flip),
// but any two moves in opposite directions must be separated by more than
// CooldownTicks — a tenant that just donated cannot claw memory back inside
// its cooldown window — and the arbiter must still adapt: both directions
// have to occur across the run, with far fewer moves than ticks.
func TestArbiterStateThrash(t *testing.T) {
	const (
		mib       = int64(1 << 20)
		cooldown  = 4
		period    = 12 // ticks per hot phase; slower than the cooldown
		ticks     = 96
		shadowBig = 400 // shadow-hit delta of whichever tenant is hot
	)
	st := NewArbiterState(ArbiterConfig{CooldownTicks: cooldown, MinRateDelta: 24.0 / (1 << 20)}, mib)
	target := map[string]int64{"a": 8 * mib, "b": 8 * mib}
	shadow := map[string]int64{}
	hits := map[string]int64{}
	type rec struct {
		tick  int
		donor string
	}
	var moves []rec
	for i := 0; i < ticks; i++ {
		hot := "a"
		if (i/period)%2 == 1 {
			hot = "b"
		}
		obs := make([]ArbiterObservation, 0, 2)
		for _, n := range []string{"a", "b"} {
			if n == hot {
				shadow[n] += shadowBig
				hits[n] += 100 // the hot tenant also realizes more hits
			} else {
				hits[n] += 50
			}
			obs = append(obs, ArbiterObservation{
				Name: n, ShadowHits: shadow[n], Hits: hits[n],
				ShadowBytes: mib, TargetBytes: target[n], ReservedBytes: 4 * mib,
			})
		}
		if mv, ok := st.Tick(obs); ok {
			target[mv.Donor] = mv.DonorBytes
			target[mv.Recipient] = mv.RecipientBytes
			moves = append(moves, rec{tick: i, donor: mv.Donor})
		}
	}
	if len(moves) == 0 {
		t.Fatal("arbiter never moved under an oscillating workload")
	}
	dirs := map[string]bool{}
	flips := 0
	for i, m := range moves {
		dirs[m.donor] = true
		if i > 0 && moves[i-1].donor != m.donor {
			flips++
			if gap := m.tick - moves[i-1].tick; gap <= cooldown {
				t.Errorf("role flip after %d ticks (move %d -> %d), cooldown demands > %d",
					gap, moves[i-1].tick, m.tick, cooldown)
			}
		}
	}
	if !dirs["a"] || !dirs["b"] {
		t.Errorf("moves only ever flowed one way (%v); the arbiter failed to adapt to the flip", dirs)
	}
	// Each hot phase may at most re-converge across the whole span between
	// the two floors (8 pages here), and the transfer direction may reverse
	// at most once per phase — anything beyond that is pages ping-ponging.
	phases := ticks / period
	if span := int((8*mib - 4*mib) / mib * 2); len(moves) > phases*span {
		t.Errorf("%d moves in %d phases (span %d): pages are thrashing", len(moves), phases, span)
	}
	if flips >= phases {
		t.Errorf("%d direction reversals in %d phases: more than one per workload flip", flips, phases)
	}
	if st.Moves() != int64(len(moves)) {
		t.Errorf("Moves() = %d, want %d", st.Moves(), len(moves))
	}
	t.Logf("%d moves over %d ticks: %v", len(moves), ticks, moves)
}

// TestArbiterStateQuietWorkload pins the hysteresis threshold end to end: two
// tenants whose signals differ by less than MinRateDelta never trade pages.
func TestArbiterStateQuietWorkload(t *testing.T) {
	const mib = int64(1 << 20)
	st := NewArbiterState(ArbiterConfig{}, mib)
	var shadowA, shadowB int64
	for i := 0; i < 50; i++ {
		// Both tenants see ~the same small shadow signal, below the default
		// 24 hits/MiB threshold.
		shadowA += 10
		shadowB += 12
		obs := []ArbiterObservation{
			{Name: "a", ShadowHits: shadowA, ShadowBytes: mib, TargetBytes: 8 * mib, ReservedBytes: 4 * mib},
			{Name: "b", ShadowHits: shadowB, ShadowBytes: mib, TargetBytes: 8 * mib, ReservedBytes: 4 * mib},
		}
		if mv, ok := st.Tick(obs); ok {
			t.Fatalf("tick %d: moved %+v on a sub-threshold gap", i, mv)
		}
	}
}

// zipfRank draws a 0-based rank from an s=1.0 zipf over n keys: with u
// uniform in [0,1), floor(n^u) is distributed with P(rank=r) proportional to
// 1/r — the classic web-cache popularity curve, and the skew the convergence
// scenario in the issue calls for.
func zipfRank(rng *rand.Rand, n int) int {
	r := int(math.Pow(float64(n), rng.Float64()))
	if r >= n {
		r = n - 1
	}
	return r
}

// TestArbiterConvergence is the end-to-end memshare proof on a live store:
// two tenants start from equal partitions, one runs a hot zipf(s=1.0)
// workload over twice its memory while the other idles along fully resident.
// Pages must flow hot-ward until the cold tenant sits on its reserved floor,
// chunk conservation must hold exactly after every arbiter round, and the
// arbitrated store must end with strictly more aggregate hits than an
// identically-driven cliffhanger twin stuck with the static equal split.
func TestArbiterConvergence(t *testing.T) {
	const (
		mib        = int64(1 << 20)
		partition  = 8 * mib
		floor      = 4 * mib // memshare default: half the reservation
		hotKeys    = 16384   // ~16 MiB working set at ~1 KiB per item
		coldKeys   = 64
		valueSize  = 1000
		requests   = 300000
		tickEvery  = 2048
		coldStride = 64 // 1 in 64 requests goes to the cold tenant
	)
	newStore := func(mode AllocationMode) *Store {
		// A lower-than-default hysteresis threshold: the zipf tail's marginal
		// thins as the hot tenant grows, and this test wants convergence all
		// the way to the floor (the production default trades the last pages
		// of convergence for noise immunity; the head-to-head bench covers it).
		s := New(Config{DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: true,
			Arbiter: ArbiterConfig{MinRateDelta: 4.0 / (1 << 20)}})
		for _, name := range []string{"hot", "cold"} {
			if err := s.RegisterTenantConfig(TenantConfig{
				Name: name, MemoryBytes: partition, Mode: mode, Policy: cache.PolicyLRU,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	arbitrated := newStore(AllocMemshare)
	defer arbitrated.Close()
	static := newStore(AllocCliffhanger)
	defer static.Close()

	value := make([]byte, valueSize)
	hits := map[*Store]int64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < requests; i++ {
		tenant, key := "hot", zipfRank(rng, hotKeys)
		if i%coldStride == 0 {
			tenant, key = "cold", i%coldKeys
		}
		k := fmt.Sprintf("%s-%d", tenant, key)
		for _, s := range []*Store{arbitrated, static} {
			_, ok, err := s.Get(tenant, k)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				hits[s]++
			} else if err := s.Set(tenant, k, value); err != nil {
				t.Fatal(err)
			}
		}
		if (i+1)%tickEvery == 0 {
			arbitrated.ArbiterTick()
			for _, name := range []string{"hot", "cold"} {
				if err := arbitrated.AuditConservation(name); err != nil {
					t.Fatalf("conservation after tick at request %d: %v", i+1, err)
				}
			}
		}
	}

	as := arbitrated.ArbiterStats()
	hot, cold := as.Tenants["hot"], as.Tenants["cold"]
	if as.Moves == 0 {
		t.Fatal("arbiter never moved a page")
	}
	if cold.TargetBytes != floor {
		t.Errorf("cold target = %d, want the %d reserved floor", cold.TargetBytes, floor)
	}
	if hot.TargetBytes != 2*partition-floor {
		t.Errorf("hot target = %d, want %d (everything above cold's floor)", hot.TargetBytes, 2*partition-floor)
	}
	if !hot.Arbitrated || !cold.Arbitrated {
		t.Error("memshare tenants not marked arbitrated in stats")
	}
	if hits[arbitrated] <= hits[static] {
		t.Errorf("arbitrated store scored %d hits, static twin %d — memshare must beat the equal split",
			hits[arbitrated], hits[static])
	}
	t.Logf("moves=%d hot=%dMiB cold=%dMiB hits: arbitrated=%d static=%d (+%d)",
		as.Moves, hot.TargetBytes>>20, cold.TargetBytes>>20,
		hits[arbitrated], hits[static], hits[arbitrated]-hits[static])
}
