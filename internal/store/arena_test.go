package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/slab"
)

// auditArena walks the tenant's item directory under the shard locks,
// counting resident arena chunks per class and the structural charge of
// every record, then checks the arena's conservation invariant against both.
// The store must be quiesced (Flush called, no concurrent traffic).
func auditArena(t *testing.T, s *Store, tenant string) {
	t.Helper()
	e, ok := s.entry(tenant)
	if !ok {
		t.Fatalf("unknown tenant %q", tenant)
	}
	usedWant := make([]int64, e.arena.geom.NumClasses())
	var charge int64
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, it := range sh.items {
			class, inArena := e.arena.classFor(it.size)
			if inArena {
				usedWant[class]++
				if int64(cap(it.value)) != e.arena.geom.ChunkSize(class) {
					t.Errorf("key %q: chunk cap %d does not match class %d chunk size %d",
						it.key, cap(it.value), class, e.arena.geom.ChunkSize(class))
				}
			}
			if int64(len(it.key)+len(it.value)) != it.size {
				t.Errorf("key %q: charged size %d != len(key)+len(value) %d",
					it.key, it.size, len(it.key)+len(it.value))
			}
			cl, fits := e.tenant.ClassFor(it.size)
			if !fits {
				t.Errorf("key %q: resident at size %d beyond the largest class", it.key, it.size)
				continue
			}
			charge += e.tenant.cost(cl, it.size)
		}
		sh.mu.Unlock()
	}
	if err := e.arena.checkConservation(usedWant); err != nil {
		t.Errorf("arena conservation violated: %v", err)
	}
	used, err := s.UsedBytes(tenant)
	if err != nil {
		t.Fatal(err)
	}
	if used != charge {
		t.Errorf("UsedBytes = %d, live records charge %d", used, charge)
	}
}

// drainQuarantine forces one full epoch-reclaim cycle on a quiesced store
// and checks the quarantine empties: with no reader pinned, a single epoch
// advance must make every parked chunk reclaimable. This is the third leg of
// the three-state invariant — quarantined chunks are a transient state, not
// a leak.
func drainQuarantine(t *testing.T, s *Store, tenant string) {
	t.Helper()
	e, ok := s.entry(tenant)
	if !ok {
		t.Fatalf("unknown tenant %q", tenant)
	}
	e.arena.advanceEpoch()
	e.arena.reclaim()
	if q := e.arena.quarantinedChunks(); q != 0 {
		t.Errorf("quarantine holds %d chunks after a forced epoch advance on a quiesced store, want 0", q)
	}
}

// arenaStormOps drives one randomized mutation storm against the store:
// sets, cross-class re-sets, appends, prepends, deletes, TTL'd sets, clock
// advances (expiry + reaper food) and occasional flushes, across sizes that
// span several slab classes.
func arenaStormOps(t *testing.T, s *Store, tenant string, rng *rand.Rand, ops int, clock *int64, mu *sync.Mutex) {
	t.Helper()
	payload := make([]byte, 6000)
	sizes := []int{40, 100, 400, 900, 1800, 3900, 5800}
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(2000))
		size := sizes[rng.Intn(len(sizes))]
		switch r := rng.Intn(100); {
		case r < 40: // SET (frequently a cross-class re-set)
			if err := s.SetItem(tenant, key, payload[:size], uint32(i), 0); err != nil {
				t.Errorf("set: %v", err)
			}
		case r < 48: // SET with a TTL the clock advances will kill
			mu.Lock()
			now := *clock
			mu.Unlock()
			if err := s.SetItem(tenant, key, payload[:size], 0, now+int64(1+rng.Intn(5))); err != nil {
				t.Errorf("ttl set: %v", err)
			}
		case r < 58:
			if _, err := s.Append(tenant, key, payload[:rng.Intn(64)]); err != nil {
				t.Errorf("append: %v", err)
			}
		case r < 64:
			if _, err := s.Prepend(tenant, key, payload[:rng.Intn(64)]); err != nil {
				t.Errorf("prepend: %v", err)
			}
		case r < 78:
			if _, err := s.Delete(tenant, key); err != nil {
				t.Errorf("delete: %v", err)
			}
		case r < 90:
			if _, _, err := s.Get(tenant, key); err != nil {
				t.Errorf("get: %v", err)
			}
		case r < 94:
			if _, err := s.Touch(tenant, key, int64(rng.Intn(10))); err != nil {
				t.Errorf("touch: %v", err)
			}
		case r < 99: // advance the expiry clock
			mu.Lock()
			*clock += int64(rng.Intn(3))
			mu.Unlock()
		default:
			if rng.Intn(4) == 0 {
				if err := s.FlushAll(tenant, 0); err != nil {
					t.Errorf("flush: %v", err)
				}
			} else {
				mu.Lock()
				now := *clock
				mu.Unlock()
				// Delayed flush: arms a deadline a later clock advance passes.
				if err := s.FlushAll(tenant, now+int64(1+rng.Intn(3))); err != nil {
					t.Errorf("delayed flush: %v", err)
				}
			}
		}
	}
}

// TestArenaConservationProperty is the arena's safety net: after a
// randomized storm of set / cross-class re-set / append / prepend / delete /
// expire / flush traffic, every chunk of every carved page must be either
// backing a resident value, sitting on a freelist, or parked in epoch
// quarantine (the three-state invariant: no leak, no double free), every
// resident chunk's capacity must match its class, and UsedBytes must still
// equal the live records' structural charge — in both bookkeeping modes.
// A forced epoch advance on the quiesced store must then drain the
// quarantine to empty and leave conservation intact. Run under -race (make
// race / CI) this also hammers the chunk-recycling paths against the
// epoch-pinned reader contract.
func TestArenaConservationProperty(t *testing.T) {
	for _, syncBk := range []bool{true, false} {
		name := "async"
		if syncBk {
			name = "sync"
		}
		t.Run(name, func(t *testing.T) {
			var (
				mu    sync.Mutex
				clock = int64(1000)
			)
			s := New(Config{
				DefaultMode:     AllocCliffhanger,
				DefaultPolicy:   cache.PolicyLRU,
				SyncBookkeeping: syncBk,
				Now: func() int64 {
					mu.Lock()
					defer mu.Unlock()
					return clock
				},
			})
			defer s.Close()
			// Small enough that the storm's working set forces evictions.
			if err := s.RegisterTenant("app", 4<<20); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			arenaStormOps(t, s, "app", rng, 30000, &clock, &mu)
			s.Flush()
			auditArena(t, s, "app")
			drainQuarantine(t, s, "app")
			auditArena(t, s, "app")
			// Flush the whole tenant: every resident chunk retires through
			// quarantine, and a forced advance must recycle all of them.
			if err := s.FlushAll("app", 0); err != nil {
				t.Fatal(err)
			}
			s.Flush()
			drainQuarantine(t, s, "app")
			auditArena(t, s, "app")
		})
	}
}

// TestArenaConservationConcurrent runs the same storm from several
// goroutines at once (async bookkeeping, the production mode), settles, and
// audits. Under -race this is the main detector for a chunk being recycled
// while another goroutine can still observe it.
func TestArenaConservationConcurrent(t *testing.T) {
	var (
		mu    sync.Mutex
		clock = int64(1000)
	)
	s := New(Config{
		DefaultMode:   AllocCliffhanger,
		DefaultPolicy: cache.PolicyLRU,
		Now: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			return clock
		},
	})
	defer s.Close()
	if err := s.RegisterTenant("app", 4<<20); err != nil {
		t.Fatal(err)
	}
	ops := 8000
	if testing.Short() {
		ops = 2000
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			arenaStormOps(t, s, "app", rand.New(rand.NewSource(seed)), ops, &clock, &mu)
		}(int64(w + 1))
	}
	wg.Wait()
	s.Flush()
	auditArena(t, s, "app")
	drainQuarantine(t, s, "app")
	auditArena(t, s, "app")
}

// TestArenaGlobalLRUOversizeFallback pins the heap-fallback path: the
// exact-size global-LRU layout admits items beyond the largest chunk, which
// must bypass the arena (no page carved for them), keep working across
// re-sets in both directions, and leave conservation intact.
func TestArenaGlobalLRUOversizeFallback(t *testing.T) {
	s := New(Config{DefaultMode: AllocGlobalLRU, DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: true})
	defer s.Close()
	if err := s.RegisterTenant("big", 16<<20); err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, (1<<20)+4096) // beyond the 1 MiB max chunk
	for i := range huge {
		huge[i] = byte(i)
	}
	if err := s.Set("big", "huge", huge); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("big", "huge")
	if err != nil || !ok || len(v) != len(huge) || v[12345] != huge[12345] {
		t.Fatalf("oversize value not served back: ok=%v err=%v len=%d", ok, err, len(v))
	}
	// Shrink into an arena class, then grow back out.
	if err := s.Set("big", "huge", make([]byte, 300)); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("big", "huge", huge); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get("big", "huge"); !ok || len(v) != len(huge) {
		t.Fatalf("re-grown oversize value lost: ok=%v len=%d", ok, len(v))
	}
	// Append onto an oversize value reuses its heap buffer only when it has
	// room; either way the result must be intact.
	if _, err := s.Append("big", "huge", []byte("tail")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = s.Get("big", "huge")
	if !ok || len(v) != len(huge)+4 || string(v[len(v)-4:]) != "tail" {
		t.Fatalf("oversize append corrupt: ok=%v len=%d", ok, len(v))
	}
	if _, err := s.Delete("big", "huge"); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	auditArena(t, s, "big")
	drainQuarantine(t, s, "big")
	auditArena(t, s, "big")
}

// TestArenaChunkMisfreePanics pins the loud-failure contract: returning a
// buffer whose capacity does not match the class's chunk size (an accounting
// bug, were it ever to happen) must panic rather than corrupt the pools.
func TestArenaChunkMisfreePanics(t *testing.T) {
	a := newArena(slab.DefaultGeometry(), 4, newPageAllocator(slab.DefaultPageSize), "t")
	defer func() {
		if recover() == nil {
			t.Fatal("freeing a mis-sized chunk did not panic")
		}
	}()
	a.freeChunk(0, 2, make([]byte, 10))
}

// TestArenaRecycling pins the recycle-don't-free discipline at the arena
// level: a burst of allocations followed by frees and an identical second
// burst must not carve new pages — the second burst is served entirely from
// the freelists.
func TestArenaRecycling(t *testing.T) {
	geom := slab.DefaultGeometry()
	a := newArena(geom, 8, newPageAllocator(geom.PageSize), "t")
	class, _ := a.classFor(200)
	var chunks [][]byte
	for i := 0; i < 5000; i++ {
		chunks = append(chunks, a.alloc(i%8, class))
	}
	pagesAfterFirst := a.stats()[class].Pages
	if pagesAfterFirst == 0 {
		t.Fatal("no pages carved")
	}
	for i, c := range chunks {
		a.freeChunk(i%8, class, c)
	}
	chunks = chunks[:0]
	for i := 0; i < 5000; i++ {
		chunks = append(chunks, a.alloc((i+3)%8, class))
	}
	st := a.stats()[class]
	if st.Pages != pagesAfterFirst {
		t.Fatalf("second burst carved new pages: %d -> %d", pagesAfterFirst, st.Pages)
	}
	if st.UsedChunks != 5000 {
		t.Fatalf("used = %d, want 5000", st.UsedChunks)
	}
	for i, c := range chunks {
		a.freeChunk(i%8, class, c)
	}
	if err := a.checkConservation(nil); err != nil {
		t.Fatalf("conservation after recycle: %v", err)
	}
	if st := a.stats()[class]; st.UsedChunks != 0 {
		t.Fatalf("used = %d after freeing everything", st.UsedChunks)
	}
	// With nothing pinned, one epoch advance reclaims the whole quarantine.
	a.advanceEpoch()
	a.reclaim()
	if q := a.quarantinedChunks(); q != 0 {
		t.Fatalf("quarantine holds %d chunks after forced advance, want 0", q)
	}
	if err := a.checkConservation(nil); err != nil {
		t.Fatalf("conservation after quarantine drain: %v", err)
	}
}

// TestArenaReadersVsFrees is the epoch-reclamation torture test: reader
// goroutines hold zero-copy views (GetItemView) over values that writer
// goroutines concurrently overwrite, delete and flush — every mutation
// retires the old chunk into quarantine while readers may still be pinned
// on it. Values are self-describing (byte i = seed byte ^ i-derived mix, with
// the seed in byte 0), so a chunk recycled while on loan shows up as a
// pattern break even without the race detector; under -race (the CI lane
// runs this with GOMAXPROCS=4) any write into a pinned chunk is flagged
// directly. This pins the reclamation safety property: a chunk is never
// recycled while any reader holds a pinned view into it.
func TestArenaReadersVsFrees(t *testing.T) {
	for _, syncBk := range []bool{true, false} {
		name := "async"
		if syncBk {
			name = "sync"
		}
		t.Run(name, func(t *testing.T) {
			s := New(Config{
				DefaultMode:     AllocCliffhanger,
				DefaultPolicy:   cache.PolicyLRU,
				SyncBookkeeping: syncBk,
			})
			defer s.Close()
			if err := s.RegisterTenant("app", 8<<20); err != nil {
				t.Fatal(err)
			}
			const numKeys = 256
			sizes := []int{40, 100, 400, 900, 1800}
			keys := make([][]byte, numKeys)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("torture-%d", i))
			}
			fill := func(buf []byte, seed byte) {
				buf[0] = seed
				for i := 1; i < len(buf); i++ {
					buf[i] = seed ^ byte(i*7+3)
				}
			}
			writerOps := 4000
			readerOps := 20000
			if testing.Short() {
				writerOps, readerOps = 1000, 5000
			}
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					buf := make([]byte, sizes[len(sizes)-1])
					for i := 0; i < writerOps; i++ {
						key := keys[rng.Intn(numKeys)]
						switch r := rng.Intn(100); {
						case r < 80: // overwrite (often cross-class): retires the old chunk
							v := buf[:sizes[rng.Intn(len(sizes))]]
							fill(v, byte(rng.Intn(256)))
							// The synchronous does-not-fit report is best-effort
							// under concurrency (admitOutcome): a racing delete or
							// flush of the same key is indistinguishable from an
							// admission bounce, so set errors are expected here.
							_ = s.SetItemBytes("app", key, v, 0, 0)
						case r < 95:
							if _, err := s.Delete("app", string(key)); err != nil {
								t.Errorf("delete: %v", err)
							}
						default:
							if err := s.FlushAll("app", 0); err != nil {
								t.Errorf("flush: %v", err)
							}
						}
					}
				}(int64(w + 1))
			}
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < readerOps; i++ {
						key := keys[rng.Intn(numKeys)]
						view, ok, err := s.GetItemView("app", key)
						if err != nil {
							t.Errorf("get: %v", err)
							continue
						}
						if !ok {
							continue
						}
						// Verify the borrowed bytes against the embedded seed.
						// A recycle-under-pin would splice another value's (or
						// a half-written) pattern into the view.
						seed := view.Value[0]
						for j := 1; j < len(view.Value); j++ {
							if view.Value[j] != seed^byte(j*7+3) {
								t.Errorf("pinned view torn at byte %d of %d (key %s)", j, len(view.Value), key)
								break
							}
						}
						view.Release()
					}
				}(int64(100 + r))
			}
			wg.Wait()
			s.Flush()
			auditArena(t, s, "app")
			drainQuarantine(t, s, "app")
			auditArena(t, s, "app")
		})
	}
}
