// Package store implements the multi-tenant, slab-allocated cache engine the
// experiments and the server run on: a Memcached-style key-value store with
// per-application memory reservations, per-slab-class LRU queues, and a
// pluggable memory-allocation policy — the default first-come-first-serve
// page allocation, a static (solver-provided) allocation, a global LRU
// (log-structured-memory-like) layout, Cliffhanger, or Memshare (Cliffhanger
// within each tenant plus cross-tenant arbitration).
//
// The engine is split in three layers:
//
//   - Tenant (this file, with the per-mode behavior in policy.go) tracks one
//     application's cache *structure* — which keys are resident in which
//     slab class and how memory is divided — without holding values. It is
//     single-threaded by design: the trace-driven simulator (internal/sim)
//     drives Tenants directly so that replaying hundreds of millions of
//     requests is deterministic and does not require materializing values.
//
//   - Store (store.go) is the data plane the network server runs on. Each
//     tenant's values live in an N-way key-hash-sharded table with striped
//     locks, so GET/SET traffic for independent keys of one hot application
//     proceeds in parallel across cores; the tenant registry itself is a
//     copy-on-write map read without locks. Value bytes live in a per-tenant
//     slab arena (arena.go): 1 MiB pages carved into per-class chunk
//     freelists, recycled on eviction/expiry/delete/flush instead of handed
//     to the GC, with item records pooled per shard — the mutation path
//     allocates nothing in the steady state. Reads are zero-copy: a GET
//     pins the arena epoch and hands out a borrowed view of the chunk;
//     freed chunks sit in an epoch-stamped quarantine until every pinned
//     reader has moved past, so a recycled chunk can never be observed.
//
//   - bookkeeper (bookkeeper.go) is the accounting plane. All structural
//     consequences of a request — shadow-queue updates, hill-climbing credit
//     transfers, cliff-pointer walks, evictions — are described by small
//     events, batched per value shard, and drained by one background
//     goroutine per tenant, so Cliffhanger's bookkeeping is off the request
//     hot path. A synchronous mode (Config.SyncBookkeeping) applies events
//     inline for deterministic tests; Store.Flush settles in-flight events
//     so snapshots and stats observe a quiesced engine, and Store.Close
//     stops the drain goroutines.
//
// Concurrency contract: Tenant and everything it owns (core.Manager,
// core.Queue) are not safe for concurrent use; the bookkeeper serializes all
// access to them behind its mutex, which is also what makes Stats,
// QueueSnapshots and UsedBytes race-free against request traffic.
package store

import (
	"fmt"
	"sort"
	"strings"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/core"
	"cliffhanger/internal/slab"
)

// AllocationMode selects how a tenant's memory is divided across its slab
// classes.
type AllocationMode int

const (
	// AllocDefault is stock Memcached behaviour: memory is carved into
	// pages handed to slab classes on demand, first come first served; each
	// class runs its own eviction queue (§2 of the paper).
	AllocDefault AllocationMode = iota
	// AllocCliffhanger runs the paper's algorithm: one Cliffhanger manager
	// per tenant moves memory between slab-class queues using shadow-queue
	// hill climbing and scales performance cliffs.
	AllocCliffhanger
	// AllocStatic uses fixed per-class byte budgets, typically produced by
	// the Dynacache solver baseline.
	AllocStatic
	// AllocGlobalLRU keeps a single LRU over all of the tenant's items
	// regardless of size, emulating a log-structured memory cache at 100%
	// utilization (Table 2).
	AllocGlobalLRU
	// AllocMemshare runs Cliffhanger within each tenant and additionally
	// opts the tenant into the store's cross-tenant arbiter (arbiter.go),
	// which ranks tenants by marginal hit rate per byte — the shadow-queue
	// credit signal — and moves pages from the lowest-ranked tenant to the
	// highest, never shrinking one below its reserved floor (Memshare,
	// Cidon et al.).
	AllocMemshare
)

// String names the allocation mode.
func (m AllocationMode) String() string {
	switch m {
	case AllocDefault:
		return "default"
	case AllocCliffhanger:
		return "cliffhanger"
	case AllocStatic:
		return "static"
	case AllocGlobalLRU:
		return "global-lru"
	case AllocMemshare:
		return "memshare"
	default:
		return "unknown"
	}
}

// TenantConfig configures one application's cache structure.
type TenantConfig struct {
	// Name identifies the tenant (used in queue IDs and stats).
	Name string
	// MemoryBytes is the tenant's reservation.
	MemoryBytes int64
	// Geometry is the slab-class geometry; nil uses slab.DefaultGeometry.
	Geometry *slab.Geometry
	// Mode selects the allocation policy.
	Mode AllocationMode
	// Policy selects the eviction policy for the per-class queues in the
	// non-Cliffhanger modes (LRU, LFU, ARC, Facebook mid-point insertion).
	Policy cache.PolicyKind
	// Cliffhanger configures the AllocCliffhanger and AllocMemshare modes.
	Cliffhanger core.Config
	// StaticClassBytes gives fixed per-class budgets for AllocStatic,
	// indexed by slab class. Classes without an entry get a minimal budget.
	StaticClassBytes map[int]int64
	// ReservedBytes is the floor below which the cross-tenant arbiter never
	// shrinks this tenant — Memshare's reserved memory, with the remainder
	// of the reservation pooled. Zero defaults to half the reservation for
	// AllocMemshare tenants; other modes are never arbitrated, so the value
	// is informational there. It extends core.Config.MinQueueBytes one
	// level up: MinQueueBytes floors a queue within a tenant, ReservedBytes
	// floors the tenant within the server.
	ReservedBytes int64
}

// ClassStats reports per-slab-class counters.
type ClassStats struct {
	Class         int
	ChunkSize     int64
	Requests      int64
	Hits          int64
	Misses        int64
	Evictions     int64
	UsedBytes     int64
	CapacityBytes int64
	Items         int
}

// TenantStats reports a tenant's counters.
type TenantStats struct {
	Name     string
	Requests int64
	Hits     int64
	Misses   int64
	Sets     int64
	Deletes  int64
	// Expired counts structural removals driven by TTL expiry (lazy GET
	// checks and the background reaper), kept separate from client Deletes.
	Expired int64
	// Touches and TouchHits account the touch verb separately (memcached's
	// cmd_touch/touch_hits), so TTL refreshes never pollute the GET hit
	// rate the hill climber and the stats consumers read.
	Touches   int64
	TouchHits int64
	Classes   []ClassStats
}

// HitRate returns hits / (hits + misses).
func (s TenantStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Tenant tracks one application's cache structure. The mode-specific
// behavior — how memory is divided, grown and charged — lives in the
// partitionPolicy (policy.go); the Tenant owns the mode-independent
// counters. It is not safe for concurrent use; in the Store each tenant's
// bookkeeper serializes access, and the simulator drives it from a single
// goroutine.
type Tenant struct {
	cfg    TenantConfig
	geom   *slab.Geometry
	policy partitionPolicy

	// reserved is the arbiter floor, fixed at construction (the reservation
	// itself changes as the tenant is resized).
	reserved int64

	// Counters.
	requests, hits, misses, sets, deletes, expired int64
	touches, touchHits                             int64
	classReq, classHit, classMiss, classEvict      []int64
}

// NewTenant builds a tenant from cfg.
func NewTenant(cfg TenantConfig) (*Tenant, error) {
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("store: tenant %q needs a positive memory reservation", cfg.Name)
	}
	geom := cfg.Geometry
	if geom == nil {
		geom = slab.DefaultGeometry()
	}
	t := &Tenant{cfg: cfg, geom: geom}
	n := geom.NumClasses()
	t.classReq = make([]int64, n)
	t.classHit = make([]int64, n)
	t.classMiss = make([]int64, n)
	t.classEvict = make([]int64, n)

	t.reserved = cfg.ReservedBytes
	if t.reserved <= 0 && cfg.Mode == AllocMemshare {
		t.reserved = cfg.MemoryBytes / 2
	}
	if t.reserved > cfg.MemoryBytes {
		return nil, fmt.Errorf("store: tenant %q reserved floor %d exceeds its %d-byte reservation",
			cfg.Name, t.reserved, cfg.MemoryBytes)
	}

	p, err := newPartitionPolicy(cfg, geom)
	if err != nil {
		return nil, fmt.Errorf("store: tenant %q: %v", cfg.Name, err)
	}
	t.policy = p
	return t, nil
}

func classQueueID(class int) string { return fmt.Sprintf("class%d", class) }

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.cfg.Name }

// Mode returns the tenant's allocation mode.
func (t *Tenant) Mode() AllocationMode { return t.cfg.Mode }

// MemoryBytes returns the tenant's reservation.
func (t *Tenant) MemoryBytes() int64 { return t.cfg.MemoryBytes }

// ReservedBytes returns the arbiter floor: the part of the original
// reservation cross-tenant arbitration can never take away. Zero for modes
// the arbiter does not manage (unless the config set one explicitly).
func (t *Tenant) ReservedBytes() int64 { return t.reserved }

// ShadowBytes returns the capacity of the tenant's hill-climbing shadow
// queues after config defaulting — the denominator that converts the
// shadow-hit count into the marginal hit-rate-per-byte estimate the arbiter
// ranks tenants by.
func (t *Tenant) ShadowBytes() int64 {
	if sb := t.cfg.Cliffhanger.ShadowBytes; sb > 0 {
		return sb
	}
	return core.DefaultConfig().ShadowBytes
}

// Hits returns the tenant's cumulative lookup hits — the cheap counter
// behind Stats().Hits. The arbiter differences it into a per-tick realized
// hit rate, whose per-byte density bounds what shrinking the tenant can
// cost (for a concave hit curve the coldest step of memory serves at most
// the average hits-per-byte).
func (t *Tenant) Hits() int64 { return t.hits }

// Manager exposes the Cliffhanger manager (nil in unmanaged modes); used by
// the experiment harness to snapshot per-class capacities over time
// (Figure 8) and by the arbiter to read the shadow-queue credit signal.
func (t *Tenant) Manager() *core.Manager { return t.policy.manager() }

// ClassFor returns the slab class for an item of the given size.
func (t *Tenant) ClassFor(size int64) (int, bool) {
	return t.policy.classFor(size)
}

// cost returns the cost charged for an item of the given size in the given
// class: the full chunk size in slab modes (Memcached's real memory
// accounting) and the exact item size under the global-LRU layout.
func (t *Tenant) cost(class int, size int64) int64 {
	return t.policy.cost(class, size)
}

// resident reports whether key is currently tracked by the class's policy
// structure, without promoting it or touching any counters.
func (t *Tenant) resident(class int, key string) bool {
	return t.policy.resident(class, key)
}

// Lookup performs the GET path: it reports whether key is resident and
// promotes it if so. It never admits the key (admission happens on the SET
// that follows a miss, as in Memcached).
func (t *Tenant) Lookup(key string, size int64) bool {
	class, ok := t.ClassFor(size)
	if !ok {
		return false
	}
	t.requests++
	t.classReq[class]++
	hit := false
	// Policies couple lookup and fill; only touch the structure when the key
	// is already resident so a GET miss does not admit it.
	if t.policy.resident(class, key) {
		hit = t.policy.promote(class, key, t.cost(class, size))
	}
	if hit {
		t.hits++
		t.classHit[class]++
	} else {
		t.misses++
		t.classMiss[class]++
	}
	return hit
}

// LookupTransient is Lookup for a key string that must not be retained: the
// caller owns the backing bytes (a pooled miss-key buffer) and will reuse them
// after this call returns. Policy structures retain key strings on insert, so
// the fast path only runs when the key is NOT resident — then the bookkeeping
// is pure counters and nothing can capture the string. If the key turns out to
// be resident (possible only if the directory and the policy structure
// disagree transiently), we clone before taking the normal promote path.
// Counter effects are identical to Lookup in both branches.
func (t *Tenant) LookupTransient(key string, size int64) bool {
	class, ok := t.ClassFor(size)
	if !ok {
		return false
	}
	if t.policy.resident(class, key) {
		return t.Lookup(strings.Clone(key), size)
	}
	t.requests++
	t.classReq[class]++
	t.misses++
	t.classMiss[class]++
	return false
}

// Admit performs the SET path: the key becomes resident (if it fits) and any
// evicted keys are returned so the caller can drop their values.
func (t *Tenant) Admit(key string, size int64) []cache.Victim {
	class, ok := t.ClassFor(size)
	if !ok {
		return []cache.Victim{{Key: key, Cost: size}}
	}
	t.sets++
	_, victims := t.policy.admit(class, key, t.cost(class, size))
	t.classEvict[class] += evictedOthers(key, victims)
	return victims
}

// ReAdmit performs the SET path for a key that already has a resident entry
// charged at oldSize: when the new size maps to a different class (or to a
// different cost, as under the exact-size global-LRU accounting) the stale
// entry is removed from its old queue first, so a re-set key never occupies
// two queues or double-charges UsedBytes. The removal is not counted as a
// delete.
func (t *Tenant) ReAdmit(key string, oldSize, newSize int64) []cache.Victim {
	oldClass, okOld := t.ClassFor(oldSize)
	newClass, okNew := t.ClassFor(newSize)
	if okOld && (!okNew || oldClass != newClass || t.cost(oldClass, oldSize) != t.cost(newClass, newSize)) {
		t.removeFrom(oldClass, key)
	}
	return t.Admit(key, newSize)
}

// Touch promotes key like a GET without the hit/miss accounting: touches
// count into their own counters (memcached's cmd_touch/touch_hits), so TTL
// refreshes do not skew the GET hit rate.
func (t *Tenant) Touch(key string, size int64) bool {
	class, ok := t.ClassFor(size)
	if !ok {
		return false
	}
	t.touches++
	hit := false
	if t.policy.resident(class, key) {
		hit = t.policy.promote(class, key, t.cost(class, size))
	}
	if hit {
		t.touchHits++
	}
	return hit
}

// EvictMigrated removes key's structural entry on behalf of a page
// migration, counting it as an eviction: retiring a page evicts its
// residents (Memshare semantics), and the hit-rate damage must be visible in
// the same counters organic evictions land in. Only counted when an entry
// was actually removed, so a migration event racing an eviction replay of
// the same key is not double-counted.
func (t *Tenant) EvictMigrated(key string, size int64) bool {
	class, ok := t.ClassFor(size)
	if !ok {
		return false
	}
	if !t.removeFrom(class, key) {
		return false
	}
	t.classEvict[class]++
	return true
}

// Resize retargets the tenant's reservation at newBytes and returns the
// victims the shrink evicted (nil on growth, whose extra room reaches the
// queues through the normal on-demand grow paths). The caller owns dropping
// the victims' values, exactly as after Admit.
func (t *Tenant) Resize(newBytes int64) []cache.Victim {
	if newBytes <= 0 || newBytes == t.cfg.MemoryBytes {
		return nil
	}
	old := t.cfg.MemoryBytes
	t.cfg.MemoryBytes = newBytes
	return t.policy.resize(old, newBytes)
}

// Expire removes key's structural entry after its TTL lapsed. Unlike Delete
// it counts an expiration, not a client delete — and only when an entry was
// actually removed, so an expiry event racing an eviction replay of the same
// key is not double-counted.
func (t *Tenant) Expire(key string, size int64) bool {
	class, ok := t.ClassFor(size)
	if !ok {
		return false
	}
	if !t.removeFrom(class, key) {
		return false
	}
	t.expired++
	return true
}

// evictedOthers counts victims other than the admitted key itself: an item
// too big for its queue bounces back as its own victim, which is a rejected
// admission rather than an eviction.
func evictedOthers(key string, victims []cache.Victim) int64 {
	var n int64
	for _, v := range victims {
		if v.Key != key {
			n++
		}
	}
	return n
}

// Access performs the demand-fill GET used by the trace-driven simulator: a
// lookup that, on a miss, immediately admits the key (modelling the
// application's read-through fill). It returns whether the access hit and
// any evicted keys.
func (t *Tenant) Access(key string, size int64) (bool, []cache.Victim) {
	class, ok := t.ClassFor(size)
	if !ok {
		return false, nil
	}
	t.requests++
	t.classReq[class]++
	hit, victims := t.policy.admit(class, key, t.cost(class, size))
	if hit {
		t.hits++
		t.classHit[class]++
	} else {
		t.misses++
		t.classMiss[class]++
	}
	t.classEvict[class] += evictedOthers(key, victims)
	return hit, victims
}

// Delete removes key (of the given size class) from the tenant.
func (t *Tenant) Delete(key string, size int64) bool {
	class, ok := t.ClassFor(size)
	if !ok {
		return false
	}
	t.deletes++
	return t.removeFrom(class, key)
}

// removeFrom drops key's structural entry from the given class queue without
// touching any counter.
func (t *Tenant) removeFrom(class int, key string) bool {
	return t.policy.remove(class, key)
}

// ClassCapacities returns the current per-class capacities in bytes, keyed
// by slab class. For global-LRU tenants the single queue is reported as
// class 0.
func (t *Tenant) ClassCapacities() map[int]int64 {
	return t.policy.capacities()
}

// UsedBytes returns the tenant's resident bytes.
func (t *Tenant) UsedBytes() int64 {
	return t.policy.usedBytes()
}

// Stats returns a snapshot of the tenant's counters.
func (t *Tenant) Stats() TenantStats {
	st := TenantStats{
		Name:      t.cfg.Name,
		Requests:  t.requests,
		Hits:      t.hits,
		Misses:    t.misses,
		Sets:      t.sets,
		Deletes:   t.deletes,
		Expired:   t.expired,
		Touches:   t.touches,
		TouchHits: t.touchHits,
	}
	caps := t.ClassCapacities()
	items := t.classItems()
	used := t.classUsed()
	for c := 0; c < len(t.classReq); c++ {
		if t.classReq[c] == 0 && caps[c] == 0 && used[c] == 0 {
			continue
		}
		chunk := int64(0)
		if t.cfg.Mode != AllocGlobalLRU && c < t.geom.NumClasses() {
			chunk = t.geom.ChunkSize(c)
		}
		st.Classes = append(st.Classes, ClassStats{
			Class:         c,
			ChunkSize:     chunk,
			Requests:      t.classReq[c],
			Hits:          t.classHit[c],
			Misses:        t.classMiss[c],
			Evictions:     t.classEvict[c],
			UsedBytes:     used[c],
			CapacityBytes: caps[c],
			Items:         items[c],
		})
	}
	sort.Slice(st.Classes, func(i, j int) bool { return st.Classes[i].Class < st.Classes[j].Class })
	return st
}

func (t *Tenant) classItems() map[int]int {
	return t.policy.items()
}

func (t *Tenant) classUsed() map[int]int64 {
	return t.policy.used()
}
