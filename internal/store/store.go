package store

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/core"
	"cliffhanger/internal/slab"
)

// Config configures a Store.
type Config struct {
	// Geometry is the slab-class geometry shared by all tenants; nil uses
	// the default geometry.
	Geometry *slab.Geometry
	// DefaultMode is the allocation mode for tenants registered without an
	// explicit mode.
	DefaultMode AllocationMode
	// DefaultPolicy is the eviction policy for non-Cliffhanger tenants.
	DefaultPolicy cache.PolicyKind
	// Cliffhanger configures Cliffhanger-managed tenants.
	Cliffhanger core.Config
	// ValueShards is the number of striped-lock value shards per tenant
	// (rounded up to a power of two). Zero uses defaultValueShards.
	ValueShards int
	// SyncBookkeeping applies structural bookkeeping inline on the request
	// path instead of through the per-tenant event channel. Synchronous
	// mode is deterministic and is what tests and the simulator semantics
	// are defined against; asynchronous mode (the default) is faster.
	SyncBookkeeping bool
	// Now supplies the expiry clock in unix seconds; nil uses time.Now.
	// Tests stub it to drive TTL expiry deterministically.
	Now func() int64
	// Arbiter configures cross-tenant Memshare arbitration (arbiter.go).
	// A positive Interval starts the background tick loop; with Interval
	// zero the arbiter only runs when ArbiterTick is called explicitly.
	Arbiter ArbiterConfig
}

// defaultValueShards is the per-tenant lock stripe count: enough that a
// server's worth of worker goroutines rarely collide on one stripe.
const defaultValueShards = 64

// Store is a multi-tenant in-memory key-value cache: the value-holding layer
// over Tenant. It is safe for concurrent use. Values live in an N-way
// key-hash-sharded table with striped locks, so operations on independent
// keys proceed in parallel even within one tenant; structural bookkeeping
// (eviction queues, Cliffhanger shadow queues) is owned by a per-tenant
// bookkeeper off the request path.
type Store struct {
	cfg Config

	// pa owns the process's raw slab pages; every tenant arena leases from
	// it, which is what makes pages movable between tenants at runtime.
	pa *pageAllocator

	// tenants is a copy-on-write map so the hot path reads it without
	// locking; mu serializes registration, deletion and close.
	mu      sync.Mutex
	tenants atomic.Pointer[map[string]*tenantEntry]
	closed  bool
	// teardowns tracks the asynchronous drains of deleted tenants; Close
	// waits for them so no teardown goroutine outlives the store.
	teardowns sync.WaitGroup

	// arb is the cross-tenant Memshare arbiter's decision engine, guarded
	// by arbMu; arbStop/arbDone bound the optional background tick loop.
	arbMu   sync.Mutex
	arb     *ArbiterState
	arbStop chan struct{}
	arbDone chan struct{}
}

// item is one entry of the per-shard metadata directory: the value plus the
// bookkeeping facts the protocol verbs need — the flags SET stored, the CAS
// token of the last mutation, the charged size the admission was accounted
// under (so GET and DELETE never recompute it), and the expiry deadline.
//
// Records are pooled per shard (see valueShard.getItemLocked): a delete,
// eviction, expiry or flush pushes the record onto the shard's freelist
// instead of handing it to the GC, and the next insertion pops it back. The
// value bytes live in a recycled arena chunk of the class the charged size
// maps to (tenantEntry.newValueLocked) — both halves of what used to be the
// SET path's two heap allocations are recycled.
type item struct {
	// key is the interned key string the record was inserted under: the one
	// string materialized per resident key. Byte-keyed reads reuse it for
	// their bookkeeping events so a GET hit never converts []byte to string.
	key string
	// value is a view into an arena chunk (or a plain heap buffer for the
	// oversize global-LRU fallback). It is valid while the shard lock is
	// held, and — thanks to epoch-based reclamation — also after the lock
	// drops for any reader that pinned the shard's epoch slot before
	// unlocking (GetItemView): a retired chunk sits in quarantine until every
	// pin has advanced past it. Mutations never write a live chunk in place;
	// they install a fresh chunk and retire the old one (copy-on-write), so a
	// pinned view is immutable for its lifetime.
	value []byte
	flags uint32
	cas   uint64
	// size is the charged size, len(key)+len(value) at the last mutation;
	// it is the size every structural event for the key is emitted with.
	size int64
	// expires is the expiry deadline in unix seconds; 0 means never.
	// Negative deadlines (exptime < 0 on the wire) are already expired.
	expires int64
	// setAt is the unix second of the record's last mutation: the timestamp
	// a delayed flush_all compares against (items last written before the
	// flush deadline die once it passes; later writes survive).
	setAt int64
	// seq is the bookkeeping sequence of the record's last mutation and
	// pendingAdmit is true while that mutation's admission event has not
	// been replayed yet. Eviction replay spares records with a pending
	// admission: the upcoming replay will re-establish their structural
	// entry, so the newer value must survive (see markAdmitted and
	// dropVictim).
	seq          uint64
	pendingAdmit bool
	// next links the record into its shard's freelist while pooled.
	next *item
}

// expiredAt reports whether the record's TTL has lapsed at the given clock.
func (it *item) expiredAt(now int64) bool {
	return it.expires != 0 && now >= it.expires
}

// deadAt reports whether the record is invalid at now: its TTL lapsed, or a
// delayed flush_all deadline (flushAt, 0 = none armed) has passed that
// postdates the record's last write — memcached's oldest_live rule.
func (it *item) deadAt(now, flushAt int64) bool {
	if it.expiredAt(now) {
		return true
	}
	return flushAt != 0 && now >= flushAt && it.setAt < flushAt
}

// valueShard is one stripe of a tenant's item directory plus its bookkeeping
// event buffer.
type valueShard struct {
	mu    sync.Mutex
	items map[string]*item
	// casCounter provides unique CAS tokens for the gets/cas protocol verbs.
	casCounter uint64
	// idx is the shard's index: it selects the arena stripe the shard's
	// chunk traffic goes through.
	idx int
	// freeItems pools dead item records for reuse (guarded by mu), bounded
	// by the shard's peak residency. A record is pooled only after its chunk
	// has been retired and only under mu; readers capture the value slice
	// and scalar fields before unlocking, never the record pointer, so no
	// reader can still hold it.
	freeItems *item
	// freeKeys pools lookup-event key buffers (guarded by mu): a byte-keyed
	// GET miss copies the probed key into a pooled buffer instead of
	// materializing a string, and the bookkeeper returns the buffer once the
	// event has been replayed — the last per-miss allocation gone.
	freeKeys *keyBuf

	// pending buffers this shard's bookkeeping events (guarded by mu);
	// applyMu makes stealing and replaying the buffer one atomic step so
	// per-key event order is preserved (see bookkeeper.applyShard). spare is
	// the recycled second buffer applyShard ping-pongs with, so steady-state
	// event buffering never allocates.
	pending []event
	spare   []event
	applyMu sync.Mutex
}

// getItemLocked pops a pooled record (or allocates the shard's first). The
// caller must hold sh.mu and must initialize every field it needs; pooled
// records come back zeroed.
func (sh *valueShard) getItemLocked() *item {
	if it := sh.freeItems; it != nil {
		sh.freeItems = it.next
		it.next = nil
		return it
	}
	return &item{}
}

// putItemLocked zeroes a dead record and pushes it onto the shard freelist.
// The record's chunk must already have been freed (freeValueLocked) and the
// record removed from sh.items; the caller must hold sh.mu.
func (sh *valueShard) putItemLocked(it *item) {
	*it = item{next: sh.freeItems}
	sh.freeItems = it
}

// keyBuf is a pooled lookup-event key buffer: a GET miss copies the probed
// key into one and hands the bookkeeper an unsafe string view of it, and the
// bookkeeper returns the buffer to its home shard's pool once the event has
// been replayed (or shed). The view is only ever read between buffering and
// replay — replay happens before the buffer can be pooled and reused, so the
// string can never be observed after its bytes change. home is the shard
// whose pool the buffer cycles through, recorded so the replayer does not
// have to re-hash the key.
type keyBuf struct {
	b    []byte
	home *valueShard
	next *keyBuf
}

// getKeyLocked pops a pooled key buffer (or allocates the shard's first),
// fills it with key, and returns it with a string view of its contents. The
// caller must hold sh.mu.
func (sh *valueShard) getKeyLocked(key []byte) (*keyBuf, string) {
	kb := sh.freeKeys
	if kb != nil {
		sh.freeKeys = kb.next
		kb.next = nil
	} else {
		kb = &keyBuf{home: sh}
	}
	kb.b = append(kb.b[:0], key...)
	return kb, unsafe.String(unsafe.SliceData(kb.b), len(kb.b))
}

// putKeyLocked returns a key buffer to its home shard's pool. The caller must
// hold sh.mu, and no live event may still reference the buffer's string view.
func (sh *valueShard) putKeyLocked(kb *keyBuf) {
	kb.next = sh.freeKeys
	sh.freeKeys = kb
}

// tenantEntry couples a tenant's sharded value table with the bookkeeper
// that owns its structural state.
type tenantEntry struct {
	tenant *Tenant // structural state; guarded by bk.mu
	bk     *bookkeeper
	shards []valueShard
	mask   uint64
	// arena is the tenant's slab-chunk allocator: every resident value's
	// bytes live in one of its recycled chunks (see arena.go).
	arena *arena
	// flushAt is the armed delayed-flush deadline in unix seconds (0 = none):
	// records last written before it become invalid once it passes. Read
	// lock-free on the hot path.
	flushAt atomic.Int64

	// Live-reconfiguration state (migrate.go). targetBytes is the
	// reservation the tenant should converge to; appliedBytes mirrors the
	// structural reservation already applied (a lock-free hint for the drain
	// tick's is-there-work probe — the authoritative value lives in the
	// Tenant under bk.mu). resized latches once a ResizeTenant has ever run:
	// physical page retirement only happens on explicitly resized tenants,
	// so a static deployment stays byte-for-byte identical to the
	// pre-lifecycle engine (the sim-vs-wire parity check depends on that).
	targetBytes  atomic.Int64
	appliedBytes atomic.Int64
	resized      atomic.Bool
	// reconfMu serializes reconfigure ticks (drain loop vs. synchronous
	// ResizeTenant callers).
	reconfMu sync.Mutex
	// dying fences record creation once DeleteTenant has unregistered the
	// tenant: a straggler holding this entry from before the copy-on-write
	// removal must not install new values behind the teardown's flush.
	dying atomic.Bool
}

func (e *tenantEntry) shardFor(key string) *valueShard {
	return &e.shards[fnv1a64(key)&e.mask]
}

func (e *tenantEntry) shardForBytes(key []byte) *valueShard {
	return &e.shards[fnv1a64(key)&e.mask]
}

// newValueLocked returns a buffer of vlen bytes for an item charged at size,
// backed by a recycled arena chunk of the matching slab class. Charged sizes
// beyond the largest chunk (possible only under the exact-size global-LRU
// layout) fall back to the heap. The caller must hold sh.mu.
func (e *tenantEntry) newValueLocked(sh *valueShard, size int64, vlen int) []byte {
	if class, ok := e.arena.classFor(size); ok {
		return e.arena.alloc(sh.idx, class)[:vlen]
	}
	return make([]byte, vlen)
}

// freeValueLocked retires an item's value chunk into the arena's quarantine
// (heap fallbacks are simply dropped to the GC). The caller must hold sh.mu —
// the happens-before edge that makes pinned readers visible to the reclaimer
// — and must not write value afterwards: a pinned reader may still be
// streaming it, and it is only recycled once every such pin has advanced.
func (e *tenantEntry) freeValueLocked(sh *valueShard, size int64, value []byte) {
	if value == nil {
		return
	}
	if class, ok := e.arena.classFor(size); ok {
		e.arena.freeChunk(sh.idx, class, value)
	}
}

// reallocValueLocked replaces it's value buffer for a mutation that re-writes
// the value: a fresh chunk is installed and the old one retired to quarantine
// — never reused in place, even within a slab class. Copy-on-write is what
// keeps zero-copy readers sound: a reader holding a pinned view of the old
// chunk must see those bytes unchanged until it unpins, so every mutation
// writes somewhere new. The alloc-before-free order means the fresh chunk can
// never be the one just retired, and the retired chunk's contents stay intact
// in quarantine (so the new value may be copied FROM the old chunk). The
// caller must hold sh.mu and must not have updated it.size yet.
func (e *tenantEntry) reallocValueLocked(sh *valueShard, it *item, newSize int64, vlen int) {
	old, oldSize := it.value, it.size
	it.value = e.newValueLocked(sh, newSize, vlen)
	e.freeValueLocked(sh, oldSize, old)
}

// dropVictim removes key's record on behalf of a structural eviction, unless
// the record was written by a mutation whose admission event has not been
// replayed yet — that pending re-admission will re-establish the entry, so
// the newer value must survive. A dropped record is pooled immediately; its
// chunk is retired to quarantine, where any reader that pinned a view under
// this same shard lock keeps it alive until it unpins.
func (e *tenantEntry) dropVictim(key string) {
	sh := e.shardFor(key)
	sh.mu.Lock()
	if it, ok := sh.items[key]; ok && !it.pendingAdmit {
		delete(sh.items, key)
		e.freeValueLocked(sh, it.size, it.value)
		sh.putItemLocked(it)
	}
	sh.mu.Unlock()
}

// markAdmitted records that the admission event stamped seq reached the
// tenant. Only the record written by that same mutation is marked: if a
// newer mutation owns the record its own admission is still pending.
func (e *tenantEntry) markAdmitted(key string, seq uint64) {
	sh := e.shardFor(key)
	sh.mu.Lock()
	if it := sh.items[key]; it != nil && it.seq == seq {
		it.pendingAdmit = false
	}
	sh.mu.Unlock()
}

// setLocked installs value under key and returns the structural event
// describing it: a plain admit for fresh keys, a re-admit carrying the old
// charged size when a previous record existed at a different size (this is
// how a cross-class re-set sheds its stale old-class entry). The caller must
// hold sh.mu. prev may be an expired record: its structural entry is still
// resident until an expiry or re-admit event removes it, so its size must be
// accounted the same way a live one's is.
//
// Allocation discipline: a re-set keeps prev's record and interned key but
// always installs a fresh chunk, retiring the old one to quarantine
// (copy-on-write — a pinned zero-copy reader may still be streaming the old
// bytes). The fresh chunk comes off the freelists and the retired one cycles
// back through epoch reclamation, so a steady-state SET still allocates
// nothing. A fresh key pops a pooled record and a recycled chunk; only the
// interned key string is born on the heap. value is copied into the new chunk
// here, under the lock; it may safely alias prev's chunk, whose contents stay
// intact in quarantine.
func (e *tenantEntry) setLocked(sh *valueShard, key string, prev *item, value []byte, flags uint32, expires, now int64) event {
	sh.casCounter++
	size := int64(len(key)) + int64(len(value))
	it := prev
	oldSize := int64(0)
	if it == nil {
		it = sh.getItemLocked()
		it.key = key
		it.value = e.newValueLocked(sh, size, len(value))
		sh.items[key] = it
	} else {
		oldSize = it.size
		e.reallocValueLocked(sh, it, size, len(value))
	}
	copy(it.value, value)
	it.flags = flags
	it.cas = sh.casCounter
	it.size = size
	it.expires = expires
	it.setAt = now
	if prev != nil && oldSize != size {
		return event{kind: evReAdmit, key: key, size: size, oldSize: oldSize}
	}
	return event{kind: evAdmit, key: key, size: size}
}

// expireLocked removes a dead record, recycles its chunk and record, and
// returns its expiry event. The caller must hold sh.mu and must not touch it
// (or it.key) afterwards — capture anything needed before the call.
func (e *tenantEntry) expireLocked(sh *valueShard, key string, it *item) event {
	delete(sh.items, key)
	ev := event{kind: evExpire, key: key, size: it.size}
	e.freeValueLocked(sh, it.size, it.value)
	sh.putItemLocked(it)
	return ev
}

// bufferMutationLocked buffers a mutation event and stamps the freshly
// written record with the assigned sequence so eviction replay can tell it
// apart from the older record the event supersedes (see dropVictim). The
// caller must hold sh.mu.
func (e *tenantEntry) bufferMutationLocked(sh *valueShard, ev *event) recordAction {
	act := e.bk.bufferLocked(sh, ev)
	if it := sh.items[ev.key]; it != nil {
		it.seq = ev.seq
		// Pending until the admission replays — in synchronous mode that
		// happens inside the finish call that follows, but the flag still
		// shields the record from a concurrent eviction's victim drop in
		// the window before this mutation's own apply runs.
		it.pendingAdmit = ev.seq != 0
	}
	return act
}

// fnv1a64 is the FNV-1a hash used to stripe keys across value shards; the
// single generic body guarantees string- and byte-keyed lookups land on the
// same shard.
func fnv1a64[T ~string | ~[]byte](key T) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// New returns an empty store.
func New(cfg Config) *Store {
	if cfg.Geometry == nil {
		cfg.Geometry = slab.DefaultGeometry()
	}
	if cfg.Cliffhanger.CreditBytes == 0 {
		cfg.Cliffhanger = core.DefaultConfig()
	}
	if cfg.ValueShards <= 0 {
		cfg.ValueShards = defaultValueShards
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().Unix() }
	}
	s := &Store{cfg: cfg, pa: newPageAllocator(cfg.Geometry.PageSize)}
	empty := make(map[string]*tenantEntry)
	s.tenants.Store(&empty)
	s.arb = NewArbiterState(cfg.Arbiter, s.pa.pageSize)
	if cfg.Arbiter.Interval > 0 {
		s.arbStop = make(chan struct{})
		s.arbDone = make(chan struct{})
		go s.arbiterLoop(cfg.Arbiter.Interval)
	}
	return s
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// RegisterTenant creates a tenant with the given memory reservation using
// the store's default mode and policy.
func (s *Store) RegisterTenant(name string, memoryBytes int64) error {
	return s.RegisterTenantConfig(TenantConfig{
		Name:        name,
		MemoryBytes: memoryBytes,
		Mode:        s.cfg.DefaultMode,
		Policy:      s.cfg.DefaultPolicy,
	})
}

// RegisterTenantConfig creates a tenant from an explicit configuration.
// Unset geometry and Cliffhanger settings inherit the store defaults.
func (s *Store) RegisterTenantConfig(cfg TenantConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("store: tenant name must not be empty")
	}
	if cfg.Geometry == nil {
		cfg.Geometry = s.cfg.Geometry
	}
	if cfg.Cliffhanger.CreditBytes == 0 {
		cfg.Cliffhanger = s.cfg.Cliffhanger
	}
	tenant, err := NewTenant(cfg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	old := *s.tenants.Load()
	if _, dup := old[cfg.Name]; dup {
		return fmt.Errorf("store: tenant %q already registered", cfg.Name)
	}
	if cfg.Geometry.PageSize != s.pa.pageSize {
		return fmt.Errorf("store: tenant %q page size %d does not match the store's page pool (%d)",
			cfg.Name, cfg.Geometry.PageSize, s.pa.pageSize)
	}
	n := nextPow2(s.cfg.ValueShards)
	e := &tenantEntry{
		tenant: tenant,
		shards: make([]valueShard, n),
		mask:   uint64(n - 1),
		arena:  newArena(cfg.Geometry, n, s.pa, cfg.Name),
	}
	e.targetBytes.Store(cfg.MemoryBytes)
	e.appliedBytes.Store(cfg.MemoryBytes)
	for i := range e.shards {
		e.shards[i].items = make(map[string]*item)
		e.shards[i].idx = i
	}
	e.bk = newBookkeeper(tenant, e, s.cfg.SyncBookkeeping, s.cfg.Now)
	next := make(map[string]*tenantEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[cfg.Name] = e
	s.tenants.Store(&next)
	return nil
}

// ResizeTenant retargets a live tenant's memory reservation at newBytes. The
// call only records the target: the resize executes incrementally off the
// tenant's bookkeeper drain loop — structural capacity moves in bounded
// steps, and surplus pages are retired one at a time through the migration
// machinery — so traffic is never stalled or dropped. With synchronous
// bookkeeping (no drain goroutine) the work is driven here instead, bounded
// so a long-held reader pin cannot wedge the caller; Flush drives any
// remainder.
func (s *Store) ResizeTenant(name string, newBytes int64) error {
	if newBytes <= 0 {
		return fmt.Errorf("store: tenant %q needs a positive memory reservation", name)
	}
	e, ok := s.entry(name)
	if !ok || e.dying.Load() {
		return ErrNoTenant{name}
	}
	e.targetBytes.Store(newBytes)
	e.resized.Store(true)
	if s.cfg.SyncBookkeeping {
		for i := 0; i < 4096 && e.reconfigureTick(); i++ {
		}
	}
	return nil
}

// DeleteTenant unregisters a tenant: the copy-on-write registry update makes
// it invisible to new requests immediately, and an asynchronous teardown
// flushes its records, waits for the quarantine to fully drain — no recycled
// chunk may still be pinned by a reader of the dying tenant — and only then
// returns its pages to the process-wide pool. In-flight requests holding the
// entry finish safely: reads complete against the still-valid arena, and
// record-creating writes are fenced by the dying flag.
func (s *Store) DeleteTenant(name string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	old := *s.tenants.Load()
	e, ok := old[name]
	if !ok {
		s.mu.Unlock()
		return ErrNoTenant{name}
	}
	next := make(map[string]*tenantEntry, len(old)-1)
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	s.tenants.Store(&next)
	s.teardowns.Add(1)
	s.mu.Unlock()
	e.dying.Store(true)
	go s.teardownTenant(e)
	return nil
}

// teardownTenant drains a deleted tenant: stop its bookkeeper, flush every
// record through the normal event path, then spin the epoch clock until
// every chunk has left quarantine (a pinned reader of the dying tenant
// blocks this exactly as long as it holds its view) and any in-flight page
// migration has completed. Only a fully drained arena returns its pages.
func (s *Store) teardownTenant(e *tenantEntry) {
	defer s.teardowns.Done()
	e.bk.close()
	s.flushNow(e)
	for {
		if m := e.arena.migrating.Load(); m != nil {
			e.arena.migrationSweep(m)
		}
		e.arena.advanceEpoch()
		e.arena.reclaim()
		if e.arena.usedChunks() == 0 && e.arena.quarantinedChunks() == 0 && e.arena.migrating.Load() == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	e.arena.releaseAll()
}

// PageStats reports the process-wide page pool: total raw pages, pages
// sitting unleased in the free pool, and per-tenant lease counts. A deleted
// tenant's lease entry disappears once its teardown has returned every page.
func (s *Store) PageStats() PageStats {
	return s.pa.stats()
}

// Tenants returns the registered tenant names, sorted.
func (s *Store) Tenants() []string {
	m := *s.tenants.Load()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Store) entry(tenant string) (*tenantEntry, bool) {
	e, ok := (*s.tenants.Load())[tenant]
	return e, ok
}

// ErrNoTenant is returned for operations on unregistered tenants.
type ErrNoTenant struct{ Name string }

func (e ErrNoTenant) Error() string { return fmt.Sprintf("store: unknown tenant %q", e.Name) }

// Item is the full record a read returns: the value plus the flags stored
// with it and the CAS token of its last mutation.
type Item struct {
	Value []byte
	Flags uint32
	CAS   uint64
}

// CASResult is the outcome of a CompareAndSwap.
type CASResult int

const (
	// CASStored means the token matched and the value was replaced.
	CASStored CASResult = iota
	// CASExists means the item was modified since the gets that produced
	// the token.
	CASExists
	// CASNotFound means the key does not exist (or has expired).
	CASNotFound
)

// ErrNotNumeric is returned by Incr/Decr when the stored value is not an
// unsigned decimal integer.
var ErrNotNumeric = errors.New("store: cannot increment or decrement non-numeric value")

// errTooLarge is the oversized-object error shared by every storage verb.
func errTooLarge(key string, size int64) error {
	return fmt.Errorf("store: object %q of %d bytes exceeds the largest slab class", key, size)
}

// maxRelativeExpiry is the memcached cutoff between relative and absolute
// exptime values: up to 30 days the number is seconds from now, above that
// it is an absolute unix timestamp.
const maxRelativeExpiry = 60 * 60 * 24 * 30

// deadline converts a wire exptime into an absolute unix-seconds deadline:
// 0 never expires, negative values are already expired, small values are
// relative to now, large values are absolute timestamps.
func (s *Store) deadline(exptime int64) int64 {
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return -1
	case exptime <= maxRelativeExpiry:
		return s.cfg.Now() + exptime
	default:
		return exptime
	}
}

// deadNow is the hot-path dead check for a record: TTL expiry or a passed
// delayed-flush deadline. The clock is read only when the record can expire
// at all or a delayed flush is armed, so the steady-state GET of a
// never-expiring key costs one atomic load.
func (s *Store) deadNow(e *tenantEntry, it *item) bool {
	fa := e.flushAt.Load()
	if it.expires == 0 && fa == 0 {
		return false
	}
	return it.deadAt(s.cfg.Now(), fa)
}

// liveLocked returns key's record if present and not dead (TTL lapsed or
// flushed). A dead record is removed, its chunk and record recycled, and its
// buffered expiry event returned with hasExp true; the caller must hold
// sh.mu, and after unlocking must finish exp before finishing any event it
// buffers itself (per-key arrival order). Everything is passed by value so
// the no-expiry steady state allocates nothing. The clock is only consulted
// for records that can die at all.
func (s *Store) liveLocked(e *tenantEntry, sh *valueShard, key string) (it *item, exp event, expAct recordAction, hasExp bool) {
	it = sh.items[key]
	if it == nil {
		return nil, event{}, actNone, false
	}
	if !s.deadNow(e, it) {
		return it, event{}, actNone, false
	}
	ev := e.expireLocked(sh, key, it)
	act := e.bk.bufferLocked(sh, &ev)
	return nil, ev, act, true
}

// finishExpiry completes a liveLocked expiry after the shard lock dropped.
func finishExpiry(e *tenantEntry, sh *valueShard, exp event, expAct recordAction, hasExp bool) {
	if hasExp {
		e.bk.finish(sh, exp, expAct)
	}
}

// Get returns the value stored under key for the tenant and whether it was
// present (and unexpired). The returned slice is a caller-owned copy.
func (s *Store) Get(tenant, key string) ([]byte, bool, error) {
	it, ok, err := s.GetItem(tenant, key)
	return it.Value, ok, err
}

// GetWithCAS returns the value and a CAS token for the gets verb.
func (s *Store) GetWithCAS(tenant, key string) ([]byte, uint64, bool, error) {
	it, ok, err := s.GetItem(tenant, key)
	return it.Value, it.CAS, ok, err
}

// GetItem returns the full item record — value, flags, CAS token — stored
// under key, lazily expiring it if its TTL lapsed. The returned Item is a
// caller-owned copy, made OUTSIDE the shard lock from a pinned view: the
// critical section is just the directory probe plus the pin, and the epoch
// quarantine keeps the chunk's bytes intact until the copy unpins. The common
// case (no dead record to shed) stays on a scalar fast path: one
// stack-allocated lookup event and, for never-expiring records, no clock read
// under the shard lock.
func (s *Store) GetItem(tenant, key string) (Item, bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return Item{}, false, ErrNoTenant{tenant}
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	it := sh.items[key]
	if it != nil && s.deadNow(e, it) {
		// Slow path: shed the dead record, then account the miss.
		exp := e.expireLocked(sh, key, it)
		expAct := e.bk.bufferLocked(sh, &exp)
		ev := event{kind: evLookup, key: key, size: lookupSize(key, nil)}
		act := e.bk.bufferLocked(sh, &ev)
		sh.mu.Unlock()
		e.bk.finish(sh, exp, expAct)
		e.bk.finish(sh, ev, act)
		return Item{}, false, nil
	}
	// Drive the eviction/shadow structures with the charged size recorded
	// at admission, so the lookup lands on the slab class that actually
	// holds the key. Buffered in the same critical section as the record
	// read, so per-key event order matches value order.
	ev := event{kind: evLookup, key: key, size: lookupSize(key, it)}
	act := e.bk.bufferLocked(sh, &ev)
	var (
		out  Item
		view []byte
	)
	if it != nil {
		e.arena.pin(sh.idx)
		view = it.value
		out = Item{Flags: it.flags, CAS: it.cas}
	}
	sh.mu.Unlock()
	if it != nil {
		out.Value = append([]byte(nil), view...)
		e.arena.unpin(sh.idx)
	}
	e.bk.finish(sh, ev, act)
	return out, it != nil, nil
}

// lookupSize returns the accounting size for a GET: resident keys use the
// charged size their admission was accounted under, absent keys fall back to
// the key length (their class is unknowable).
func lookupSize(key string, it *item) int64 {
	if it == nil {
		return int64(len(key))
	}
	return it.size
}

// ItemView is a borrowed read of a resident item: Value points straight into
// the record's arena chunk (or heap buffer), kept immutable and un-recycled
// by an epoch pin until Release is called. The holder may read Value — e.g.
// stream it to a connection writer — but must not retain it past Release, and
// must Release exactly once (a zero-value ItemView's Release is a no-op, so
// misses need no special casing). Copy-on-write mutations and the epoch
// quarantine together guarantee the bytes cannot change or be reused while
// the pin is held.
type ItemView struct {
	Value  []byte
	Flags  uint32
	CAS    uint64
	arena  *arena
	stripe int
}

// Release unpins the view's epoch slot, allowing the chunk to be recycled
// once every older pin has also released. Idempotent on the zero value only;
// a pinned view must be released exactly once.
func (v *ItemView) Release() {
	if v.arena != nil {
		v.arena.unpin(v.stripe)
		v.arena = nil
		v.Value = nil
	}
}

// GetItemView is the zero-copy read path: a byte-keyed lookup whose critical
// section is just the directory probe, the event append and an epoch pin — no
// value bytes move under the shard lock. On a hit the returned view borrows
// the record's chunk directly; the caller streams or copies it and then MUST
// call Release. On a miss (ok false) the view is zero and needs no Release.
//
// The map lookup rides Go's allocation-free m[string(b)] optimization; a hit
// reuses the record's interned key string for the bookkeeping event, and a
// miss copies the probed key into a pooled buffer the bookkeeper returns
// after replay — so both outcomes perform zero heap allocations in this
// layer (the alloc gates pin hit = 0 and miss = 0).
func (s *Store) GetItemView(tenant string, key []byte) (ItemView, bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return ItemView{}, false, ErrNoTenant{tenant}
	}
	sh := e.shardForBytes(key)
	sh.mu.Lock()
	it := sh.items[string(key)]
	if it != nil && s.deadNow(e, it) {
		// Slow path: shed the dead record, then account the miss. The dead
		// record's interned key serves both events (captured before
		// expireLocked recycles the record).
		ikey := it.key
		exp := e.expireLocked(sh, ikey, it)
		expAct := e.bk.bufferLocked(sh, &exp)
		ev := event{kind: evLookup, key: ikey, size: int64(len(key))}
		act := e.bk.bufferLocked(sh, &ev)
		sh.mu.Unlock()
		e.bk.finish(sh, exp, expAct)
		e.bk.finish(sh, ev, act)
		return ItemView{}, false, nil
	}
	var ev event
	var out ItemView
	if it != nil {
		ev = event{kind: evLookup, key: it.key, size: it.size}
		// Pin before unlocking: the pin-store happens-before any retirement
		// of this chunk (retires run under this same shard mutex), which is
		// what makes the borrowed Value safe to read after the unlock.
		e.arena.pin(sh.idx)
		out = ItemView{Value: it.value, Flags: it.flags, CAS: it.cas, arena: e.arena, stripe: sh.idx}
	} else {
		kb, ks := sh.getKeyLocked(key)
		ev = event{kind: evLookup, key: ks, size: int64(len(key)), keyBuf: kb}
	}
	act := e.bk.bufferLocked(sh, &ev)
	sh.mu.Unlock()
	e.bk.finish(sh, ev, act)
	return out, it != nil, nil
}

// GetItemInto is the copying read for callers that want an owned buffer: a
// GetItemView whose value is copied into dst (grown as needed) OUTSIDE the
// shard lock — the lock is held only for the directory probe, and the epoch
// pin keeps the source bytes stable during the copy. It returns the item
// (whose Value field is dst's filled prefix on a hit and nil on a miss) and
// the possibly-grown buffer, which the caller should pass back on the next
// call so growth amortizes to zero.
func (s *Store) GetItemInto(tenant string, key, dst []byte) (Item, []byte, bool, error) {
	v, ok, err := s.GetItemView(tenant, key)
	if err != nil || !ok {
		return Item{}, dst, ok, err
	}
	dst = append(dst[:0], v.Value...)
	out := Item{Value: dst, Flags: v.Flags, CAS: v.CAS}
	v.Release()
	return out, dst, true, nil
}

// GetItemBytes is GetItemInto without a reusable destination: the value
// comes back in a fresh caller-owned copy (one allocation per hit). Callers
// on the hot path should hold a buffer and use GetItemInto directly.
func (s *Store) GetItemBytes(tenant string, key []byte) (Item, bool, error) {
	it, _, ok, err := s.GetItemInto(tenant, key, nil)
	return it, ok, err
}

// Set stores value under key for the tenant, evicting older entries as
// needed. Values too large for any slab class are rejected. Equivalent to
// SetItem with zero flags and no expiry.
func (s *Store) Set(tenant, key string, value []byte) error {
	return s.SetItem(tenant, key, value, 0, 0)
}

// SetItem stores value under key with the given flags and exptime (memcached
// semantics: 0 never expires, <= 30 days is relative seconds, larger is an
// absolute unix timestamp, negative is immediately expired).
//
// With asynchronous bookkeeping the admission is settled off the request
// path: in the rare case that the key does not fit its tenant at all, the
// value is dropped shortly after the call instead of producing an error.
func (s *Store) SetItem(tenant, key string, value []byte, flags uint32, exptime int64) error {
	e, ok := s.entry(tenant)
	if !ok {
		return ErrNoTenant{tenant}
	}
	size := int64(len(key) + len(value))
	if _, fits := e.tenant.ClassFor(size); !fits {
		return errTooLarge(key, size)
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	return s.commitSetLocked(e, sh, tenant, key, sh.items[key], value, flags, exptime)
}

// SetItemBytes is SetItem for a caller-owned key and value (the server's
// reusable parse buffers): the value is copied into a recycled arena chunk
// under the shard lock, and the key string is materialized only at map
// insertion — re-setting a resident key reuses its interned key, its record
// and (within a slab class) its chunk, so the steady-state SET allocates
// nothing.
func (s *Store) SetItemBytes(tenant string, key, value []byte, flags uint32, exptime int64) error {
	e, ok := s.entry(tenant)
	if !ok {
		return ErrNoTenant{tenant}
	}
	size := int64(len(key)) + int64(len(value))
	if _, fits := e.tenant.ClassFor(size); !fits {
		return errTooLarge(string(key), size)
	}
	sh := e.shardForBytes(key)
	sh.mu.Lock()
	prev := sh.items[string(key)]
	ks := ""
	if prev != nil {
		ks = prev.key
	} else {
		ks = string(key)
	}
	return s.commitSetLocked(e, sh, tenant, ks, prev, value, flags, exptime)
}

// commitSetLocked is the shared tail of SetItem and SetItemBytes: it installs
// the record under the resolved interned key, buffers the admission and
// finishes it, reporting the synchronous outcome. The previous record is
// consulted even if expired — its structural entry is still resident, so the
// re-admit must shed it. The caller must hold sh.mu, which is released here.
func (s *Store) commitSetLocked(e *tenantEntry, sh *valueShard, tenant, key string, prev *item, value []byte, flags uint32, exptime int64) error {
	if e.dying.Load() {
		// The tenant was deleted after this caller resolved the entry: the
		// check runs under the shard lock, ordered before the teardown's
		// flush sweep of this shard, so no record can be created behind it.
		sh.mu.Unlock()
		return ErrNoTenant{tenant}
	}
	ev := e.setLocked(sh, key, prev, value, flags, s.deadline(exptime), s.cfg.Now())
	act := e.bufferMutationLocked(sh, &ev)
	sh.mu.Unlock()
	e.bk.finish(sh, ev, act)
	return e.admitOutcome(tenant, sh, ev)
}

// admitOutcome reports the does-not-fit error of a settled synchronous
// admission: by the time finish has returned, a bounced key's record has
// been dropped by the replay (dropVictim), so a missing record means the
// key did not fit its tenant. Asynchronous admissions settle off the
// request path and always report nil (the value is shed shortly after; see
// SetItem). Under concurrent synchronous use the check is best-effort — a
// racing delete of the same key can be indistinguishable from a bounce.
func (e *tenantEntry) admitOutcome(tenant string, sh *valueShard, ev event) error {
	if !e.bk.synchronous {
		return nil
	}
	sh.mu.Lock()
	_, alive := sh.items[ev.key]
	sh.mu.Unlock()
	if !alive {
		return fmt.Errorf("store: object %q does not fit in tenant %q", ev.key, tenant)
	}
	return nil
}

// storeMutation finishes a mutation that produced a new record: the event is
// buffered, and its application is either deferred to the bookkeeper (async)
// or performed before returning (sync). The caller must hold sh.mu with
// exp/expAct/hasExp carrying any expiry liveLocked buffered in the same
// critical section; storeMutation unlocks sh.mu.
func (s *Store) storeMutation(e *tenantEntry, sh *valueShard, tenant string, ev event, exp event, expAct recordAction, hasExp bool) error {
	act := e.bufferMutationLocked(sh, &ev)
	sh.mu.Unlock()
	finishExpiry(e, sh, exp, expAct, hasExp)
	e.bk.finish(sh, ev, act)
	return e.admitOutcome(tenant, sh, ev)
}

// mutate is the shared locked read-modify-write path of Add, Replace,
// CompareAndSwap, Incr and Decr: decide receives the live record (nil when
// the key is absent or just expired) and returns the new value, flags and
// expiry, or store=false to leave the record untouched. mutate reports
// whether a new record was stored.
//
// decide runs under the shard lock, so it may read live.value; the value it
// returns may even alias live.value — setLocked copies it into a FRESH chunk
// (copy-on-write), and the old chunk's contents stay intact in quarantine.
func (s *Store) mutate(tenant, key string, decide func(live *item) (value []byte, flags uint32, expires int64, store bool, err error)) (bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return false, ErrNoTenant{tenant}
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	if e.dying.Load() {
		sh.mu.Unlock()
		return false, ErrNoTenant{tenant}
	}
	it, exp, expAct, hasExp := s.liveLocked(e, sh, key)
	value, flags, expires, doStore, err := decide(it)
	if err != nil || !doStore {
		sh.mu.Unlock()
		finishExpiry(e, sh, exp, expAct, hasExp)
		return false, err
	}
	if _, fits := e.tenant.ClassFor(int64(len(key) + len(value))); !fits {
		sh.mu.Unlock()
		finishExpiry(e, sh, exp, expAct, hasExp)
		return false, errTooLarge(key, int64(len(key)+len(value)))
	}
	// A record liveLocked shed is already structurally re-admitted via its
	// expiry event plus this fresh admit; a surviving one is re-admitted
	// with its old charge attached.
	ev := e.setLocked(sh, key, it, value, flags, expires, s.cfg.Now())
	if err := s.storeMutation(e, sh, tenant, ev, exp, expAct, hasExp); err != nil {
		return false, err
	}
	return true, nil
}

// Add stores value only if key is absent (or expired), per the memcached add
// verb. It reports whether the value was stored.
func (s *Store) Add(tenant, key string, value []byte, flags uint32, exptime int64) (bool, error) {
	return s.mutate(tenant, key, func(live *item) ([]byte, uint32, int64, bool, error) {
		if live != nil {
			return nil, 0, 0, false, nil
		}
		return value, flags, s.deadline(exptime), true, nil
	})
}

// Replace stores value only if key is already present and unexpired, per the
// memcached replace verb. It reports whether the value was stored.
func (s *Store) Replace(tenant, key string, value []byte, flags uint32, exptime int64) (bool, error) {
	return s.mutate(tenant, key, func(live *item) ([]byte, uint32, int64, bool, error) {
		if live == nil {
			return nil, 0, 0, false, nil
		}
		return value, flags, s.deadline(exptime), true, nil
	})
}

// Append appends suffix to key's existing value, keeping its flags and
// expiry. It reports whether the key existed.
func (s *Store) Append(tenant, key string, suffix []byte) (bool, error) {
	return s.concat(tenant, key, suffix, false)
}

// Prepend prepends prefix to key's existing value, keeping its flags and
// expiry. It reports whether the key existed.
func (s *Store) Prepend(tenant, key string, prefix []byte) (bool, error) {
	return s.concat(tenant, key, prefix, true)
}

// AppendBytes is Append with a caller-owned key (the server's parse buffer):
// a hit reuses the record's interned key string, so the steady-state append
// performs zero heap allocations end to end.
func (s *Store) AppendBytes(tenant string, key, suffix []byte) (bool, error) {
	return s.concatBytes(tenant, key, suffix, false)
}

// PrependBytes is Prepend with a caller-owned key.
func (s *Store) PrependBytes(tenant string, key, prefix []byte) (bool, error) {
	return s.concatBytes(tenant, key, prefix, true)
}

// concat implements append/prepend by assembling the concatenation in a
// fresh chunk and retiring the old one — copy-on-write, like every other
// mutation, so a pinned zero-copy reader of the old value can never observe
// the bytes shifting under it. The fresh chunk comes off the freelists and
// the retired one cycles back through epoch reclamation, so a steady-state
// append loop still allocates nothing.
func (s *Store) concat(tenant, key string, extra []byte, front bool) (bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return false, ErrNoTenant{tenant}
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	it, exp, expAct, hasExp := s.liveLocked(e, sh, key)
	if it == nil {
		sh.mu.Unlock()
		finishExpiry(e, sh, exp, expAct, hasExp)
		return false, nil
	}
	// liveLocked only buffers an expiry when it returns nil, so a live
	// record means there is nothing pending to finish.
	return s.concatLocked(e, sh, tenant, it, extra, front)
}

// concatBytes is concat with a caller-owned byte key: the map lookup rides
// the alloc-free m[string(b)] form and a hit proceeds under the record's
// interned key.
func (s *Store) concatBytes(tenant string, key, extra []byte, front bool) (bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return false, ErrNoTenant{tenant}
	}
	sh := e.shardForBytes(key)
	sh.mu.Lock()
	it := sh.items[string(key)]
	if it != nil && s.deadNow(e, it) {
		exp := e.expireLocked(sh, it.key, it)
		expAct := e.bk.bufferLocked(sh, &exp)
		sh.mu.Unlock()
		e.bk.finish(sh, exp, expAct)
		return false, nil
	}
	if it == nil {
		sh.mu.Unlock()
		return false, nil
	}
	return s.concatLocked(e, sh, tenant, it, extra, front)
}

// concatLocked is the shared tail of concat and concatBytes: it grows the
// live record's value by extra in the arena and finishes the mutation. The
// caller must hold sh.mu — released here — with no expiry left pending on
// the shard's behalf (a dead record was shed and reported before reaching
// this point); key strings come from the record itself (interned).
func (s *Store) concatLocked(e *tenantEntry, sh *valueShard, tenant string, it *item, extra []byte, front bool) (bool, error) {
	if e.dying.Load() {
		sh.mu.Unlock()
		return false, ErrNoTenant{tenant}
	}
	key := it.key
	oldLen := len(it.value)
	newSize := it.size + int64(len(extra))
	if _, fits := e.tenant.ClassFor(newSize); !fits {
		sh.mu.Unlock()
		return false, errTooLarge(key, newSize)
	}
	oldSize := it.size
	newLen := oldLen + len(extra)
	// Copy-on-write: assemble in a fresh chunk even when the grown size stays
	// in the same slab class. The old chunk's contents remain intact in
	// quarantine, so copying from it after the alloc is safe, and any pinned
	// reader keeps seeing the pre-concat value.
	nv := e.newValueLocked(sh, newSize, newLen)
	if front {
		copy(nv, extra)
		copy(nv[len(extra):], it.value[:oldLen])
	} else {
		copy(nv, it.value[:oldLen])
		copy(nv[oldLen:], extra)
	}
	e.freeValueLocked(sh, oldSize, it.value)
	it.value = nv
	sh.casCounter++
	it.cas = sh.casCounter
	it.size = newSize
	it.setAt = s.cfg.Now()
	var ev event
	if oldSize != newSize {
		ev = event{kind: evReAdmit, key: key, size: newSize, oldSize: oldSize}
	} else {
		ev = event{kind: evAdmit, key: key, size: newSize}
	}
	if err := s.storeMutation(e, sh, tenant, ev, event{}, actNone, false); err != nil {
		return false, err
	}
	return true, nil
}

// CompareAndSwap stores value only if key's record still carries the given
// CAS token (from a previous gets), per the memcached cas verb.
func (s *Store) CompareAndSwap(tenant, key string, value []byte, flags uint32, exptime int64, cas uint64) (CASResult, error) {
	res := CASNotFound
	_, err := s.mutate(tenant, key, func(live *item) ([]byte, uint32, int64, bool, error) {
		switch {
		case live == nil:
			return nil, 0, 0, false, nil
		case live.cas != cas:
			res = CASExists
			return nil, 0, 0, false, nil
		}
		res = CASStored
		return value, flags, s.deadline(exptime), true, nil
	})
	if err != nil {
		return CASNotFound, err
	}
	return res, nil
}

// Touch updates key's expiry deadline without touching the value, promoting
// it like a GET. It reports whether the key existed.
func (s *Store) Touch(tenant, key string, exptime int64) (bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return false, ErrNoTenant{tenant}
	}
	expires := s.deadline(exptime)
	sh := e.shardFor(key)
	sh.mu.Lock()
	it, exp, expAct, hasExp := s.liveLocked(e, sh, key)
	if it != nil {
		it.expires = expires
	}
	// A touch refreshes recency in the eviction queues but is accounted
	// into its own counters (cmd_touch/touch_hits), never the GET hit rate.
	ev := event{kind: evTouch, key: key, size: lookupSize(key, it)}
	act := e.bk.bufferLocked(sh, &ev)
	sh.mu.Unlock()
	finishExpiry(e, sh, exp, expAct, hasExp)
	e.bk.finish(sh, ev, act)
	return it != nil, nil
}

// Incr adds delta to the decimal unsigned integer stored under key,
// returning the new value. It reports whether the key existed;
// ErrNotNumeric is returned for non-numeric values.
func (s *Store) Incr(tenant, key string, delta uint64) (uint64, bool, error) {
	return s.incrDecr(tenant, key, delta, false)
}

// Decr subtracts delta from the decimal unsigned integer stored under key,
// clamping at zero per the memcached decr verb.
func (s *Store) Decr(tenant, key string, delta uint64) (uint64, bool, error) {
	return s.incrDecr(tenant, key, delta, true)
}

func (s *Store) incrDecr(tenant, key string, delta uint64, negative bool) (uint64, bool, error) {
	var (
		result uint64
		found  bool
	)
	_, err := s.mutate(tenant, key, func(live *item) ([]byte, uint32, int64, bool, error) {
		if live == nil {
			return nil, 0, 0, false, nil
		}
		found = true
		cur, perr := strconv.ParseUint(string(live.value), 10, 64)
		if perr != nil {
			return nil, 0, 0, false, ErrNotNumeric
		}
		if negative {
			if delta > cur {
				cur = 0
			} else {
				cur -= delta
			}
		} else {
			cur += delta // wraps at 2^64 like memcached
		}
		result = cur
		return strconv.AppendUint(nil, cur, 10), live.flags, live.expires, true, nil
	})
	return result, found, err
}

// Delete removes key from the tenant, reporting whether it was present (an
// expired record is reaped and reported as absent). The record's chunk and
// the record itself go back to the freelists.
func (s *Store) Delete(tenant, key string) (bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return false, ErrNoTenant{tenant}
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	it, exp, expAct, hasExp := s.liveLocked(e, sh, key)
	var (
		rm    event
		rmAct recordAction
	)
	if it != nil {
		delete(sh.items, key)
		rm = event{kind: evRemove, key: key, size: it.size}
		rmAct = e.bk.bufferLocked(sh, &rm)
		e.freeValueLocked(sh, it.size, it.value)
		sh.putItemLocked(it)
	}
	sh.mu.Unlock()
	finishExpiry(e, sh, exp, expAct, hasExp)
	if it != nil {
		e.bk.finish(sh, rm, rmAct)
	}
	return it != nil, nil
}

// FlushAll implements the memcached flush_all verb for one tenant: with
// exptime 0 (or a deadline already in the past) every current item is
// invalidated immediately; a future deadline arms a delayed flush under
// which items last written before the deadline become invalid once it
// passes, while items written after it survive (memcached's oldest_live
// rule). A later flush_all of either kind replaces any pending one. Records
// a delayed flush kills are shed lazily on access and by the background
// reaper, counting as Expired.
func (s *Store) FlushAll(tenant string, exptime int64) error {
	e, ok := s.entry(tenant)
	if !ok {
		return ErrNoTenant{tenant}
	}
	at := s.deadline(exptime)
	if at != 0 && at > s.cfg.Now() {
		e.flushAt.Store(at)
		return nil
	}
	return s.flushNow(e)
}

// FlushTenant removes every entry of the tenant immediately, cancelling any
// pending delayed flush.
func (s *Store) FlushTenant(tenant string) error {
	e, ok := s.entry(tenant)
	if !ok {
		return ErrNoTenant{tenant}
	}
	return s.flushNow(e)
}

// flushNow physically removes every record of the tenant, recycling chunks
// and records as it goes. The pending delayed-flush deadline (if any) is
// cleared first: memcached's flush_all replaces an armed deadline, so items
// written after this call must survive the old one.
//
// The removals go through the same per-shard event buffers as every other
// structural event — NOT directly against the tenant — so they serialize in
// arrival order with racing mutations on the same keys. (A direct replay
// used to let a concurrent SET's still-buffered admission apply after the
// flush's removal, leaving a structural entry whose record the flush had
// already dropped — a permanent UsedBytes leak.)
func (s *Store) flushNow(e *tenantEntry) error {
	e.flushAt.Store(0)
	// Settle in-flight bookkeeping first to keep the flush's own event burst
	// small; correctness comes from the per-shard buffer order alone.
	e.bk.flush()
	var (
		evs  []event
		acts []recordAction
	)
	for i := range e.shards {
		sh := &e.shards[i]
		evs, acts = evs[:0], acts[:0]
		sh.mu.Lock()
		for k, it := range sh.items {
			delete(sh.items, k)
			ev := event{kind: evRemove, key: k, size: it.size}
			acts = append(acts, e.bk.bufferLocked(sh, &ev))
			evs = append(evs, ev)
			e.freeValueLocked(sh, it.size, it.value)
			sh.putItemLocked(it)
		}
		sh.mu.Unlock()
		for j := range evs {
			e.bk.finish(sh, evs[j], acts[j])
		}
	}
	return nil
}

// Flush blocks until every bookkeeping event enqueued before the call has
// been applied, so stats and snapshots reflect all completed operations.
func (s *Store) Flush() {
	for _, e := range *s.tenants.Load() {
		e.bk.flush()
	}
}

// Close settles and stops every tenant's bookkeeper. Operations issued after
// Close fall back to inline bookkeeping; Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.stopArbiter()
	for _, e := range *s.tenants.Load() {
		e.bk.close()
	}
	s.teardowns.Wait()
	return nil
}

// Stats returns the tenant's counters, settling in-flight bookkeeping first.
func (s *Store) Stats(tenant string) (TenantStats, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return TenantStats{}, ErrNoTenant{tenant}
	}
	e.bk.flush()
	e.bk.mu.Lock()
	defer e.bk.mu.Unlock()
	return e.tenant.Stats(), nil
}

// SlabStats returns the tenant's per-class arena occupancy: chunk size,
// carved pages, and used/free/quarantined chunk counts (the data behind the
// protocol's "stats slabs"). Under live traffic the split is approximate; on
// a quiesced store used + free + quarantined == pages * chunks-per-page
// exactly.
func (s *Store) SlabStats(tenant string) ([]ArenaClassStats, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return nil, ErrNoTenant{tenant}
	}
	return e.arena.stats(), nil
}

// ReclaimStats returns the tenant's epoch-reclamation counters: the current
// global epoch, the chunks parked in quarantine right now, and the monotone
// count of frees ever deferred through it (served as epoch_current,
// epoch_quarantined_chunks and epoch_deferred_frees by the stats verb).
func (s *Store) ReclaimStats(tenant string) (ArenaReclaimStats, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return ArenaReclaimStats{}, ErrNoTenant{tenant}
	}
	return e.arena.reclaimStats(), nil
}

// QueueSnapshots returns the per-queue Cliffhanger state of the tenant
// (nil for tenants in other allocation modes), settling in-flight
// bookkeeping first. It is safe to call concurrently with request traffic.
func (s *Store) QueueSnapshots(tenant string) ([]core.QueueSnapshot, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return nil, ErrNoTenant{tenant}
	}
	e.bk.flush()
	e.bk.mu.Lock()
	defer e.bk.mu.Unlock()
	m := e.tenant.Manager()
	if m == nil {
		return nil, nil
	}
	return m.Snapshot(), nil
}

// ClassCapacities returns the tenant's current per-class capacities in
// bytes, settling in-flight bookkeeping first.
func (s *Store) ClassCapacities(tenant string) (map[int]int64, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return nil, ErrNoTenant{tenant}
	}
	e.bk.flush()
	e.bk.mu.Lock()
	defer e.bk.mu.Unlock()
	return e.tenant.ClassCapacities(), nil
}

// Items reports the number of item records the tenant currently holds.
// Expired records that neither a read nor the reaper has shed yet are still
// counted.
func (s *Store) Items(tenant string) (int, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return 0, ErrNoTenant{tenant}
	}
	e.bk.flush()
	n := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n, nil
}

// UsedBytes reports the tenant's resident bytes as accounted by its slab
// queues, settling in-flight bookkeeping first.
func (s *Store) UsedBytes(tenant string) (int64, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return 0, ErrNoTenant{tenant}
	}
	e.bk.flush()
	e.bk.mu.Lock()
	defer e.bk.mu.Unlock()
	return e.tenant.UsedBytes(), nil
}

// AuditConservation verifies the tenant's arena chunk-conservation
// invariant against a walk of the item directory: every chunk of every
// carved page is backing a resident value, sitting on a freelist, parked in
// quarantine, or captured by an in-flight page migration; the arena's used
// counts match the directory walk; and UsedBytes matches the structural
// charge of the resident records. In-flight bookkeeping is settled first.
// The caller must quiesce traffic on the tenant — the walk takes each shard
// lock in turn, so concurrent mutations would make the cross-shard totals
// approximate. The chaos and shutdown suites run this after every fault
// storm: a fault that leaks or double-frees a chunk fails here.
func (s *Store) AuditConservation(tenant string) error {
	e, ok := s.entry(tenant)
	if !ok {
		return ErrNoTenant{tenant}
	}
	e.bk.flush()
	usedWant := make([]int64, e.arena.geom.NumClasses())
	var charge int64
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, it := range sh.items {
			if class, inArena := e.arena.classFor(it.size); inArena {
				usedWant[class]++
			}
			cl, fits := e.tenant.ClassFor(it.size)
			if !fits {
				sh.mu.Unlock()
				return fmt.Errorf("store: key %q resident at size %d beyond the largest class", it.key, it.size)
			}
			charge += e.tenant.cost(cl, it.size)
		}
		sh.mu.Unlock()
	}
	if err := e.arena.checkConservation(usedWant); err != nil {
		return err
	}
	used, err := s.UsedBytes(tenant)
	if err != nil {
		return err
	}
	if used != charge {
		return fmt.Errorf("store: UsedBytes %d != live structural charge %d", used, charge)
	}
	return nil
}

// DroppedEvents reports how many advisory bookkeeping events the tenant has
// shed under overload (structural events are never dropped).
func (s *Store) DroppedEvents(tenant string) (int64, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return 0, ErrNoTenant{tenant}
	}
	return e.bk.dropped.Load(), nil
}

// Victim re-exports cache.Victim for callers that only import store.
type Victim = cache.Victim
