package store

import (
	"fmt"
	"sort"
	"sync"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/core"
	"cliffhanger/internal/slab"
)

// Config configures a Store.
type Config struct {
	// Geometry is the slab-class geometry shared by all tenants; nil uses
	// the default geometry.
	Geometry *slab.Geometry
	// DefaultMode is the allocation mode for tenants registered without an
	// explicit mode.
	DefaultMode AllocationMode
	// DefaultPolicy is the eviction policy for non-Cliffhanger tenants.
	DefaultPolicy cache.PolicyKind
	// Cliffhanger configures Cliffhanger-managed tenants.
	Cliffhanger core.Config
}

// Store is a multi-tenant in-memory key-value cache: the value-holding layer
// over Tenant. It is safe for concurrent use; operations on different
// tenants proceed in parallel.
type Store struct {
	cfg Config

	mu      sync.RWMutex
	tenants map[string]*tenantShard
}

// tenantShard couples a Tenant with its value table and lock.
type tenantShard struct {
	mu     sync.Mutex
	tenant *Tenant
	values map[string][]byte
	// casCounter provides unique CAS tokens for the gets/cas protocol verbs.
	casCounter uint64
	cas        map[string]uint64
}

// New returns an empty store.
func New(cfg Config) *Store {
	if cfg.Geometry == nil {
		cfg.Geometry = slab.DefaultGeometry()
	}
	if cfg.Cliffhanger.CreditBytes == 0 {
		cfg.Cliffhanger = core.DefaultConfig()
	}
	return &Store{cfg: cfg, tenants: make(map[string]*tenantShard)}
}

// RegisterTenant creates a tenant with the given memory reservation using
// the store's default mode and policy.
func (s *Store) RegisterTenant(name string, memoryBytes int64) error {
	return s.RegisterTenantConfig(TenantConfig{
		Name:        name,
		MemoryBytes: memoryBytes,
		Mode:        s.cfg.DefaultMode,
		Policy:      s.cfg.DefaultPolicy,
	})
}

// RegisterTenantConfig creates a tenant from an explicit configuration.
// Unset geometry and Cliffhanger settings inherit the store defaults.
func (s *Store) RegisterTenantConfig(cfg TenantConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("store: tenant name must not be empty")
	}
	if cfg.Geometry == nil {
		cfg.Geometry = s.cfg.Geometry
	}
	if cfg.Cliffhanger.CreditBytes == 0 {
		cfg.Cliffhanger = s.cfg.Cliffhanger
	}
	tenant, err := NewTenant(cfg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[cfg.Name]; dup {
		return fmt.Errorf("store: tenant %q already registered", cfg.Name)
	}
	s.tenants[cfg.Name] = &tenantShard{
		tenant: tenant,
		values: make(map[string][]byte),
		cas:    make(map[string]uint64),
	}
	return nil
}

// Tenants returns the registered tenant names, sorted.
func (s *Store) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Store) shard(tenant string) (*tenantShard, bool) {
	s.mu.RLock()
	sh, ok := s.tenants[tenant]
	s.mu.RUnlock()
	return sh, ok
}

// ErrNoTenant is returned for operations on unregistered tenants.
type ErrNoTenant struct{ Name string }

func (e ErrNoTenant) Error() string { return fmt.Sprintf("store: unknown tenant %q", e.Name) }

// Get returns the value stored under key for the tenant and whether it was
// present.
func (s *Store) Get(tenant, key string) ([]byte, bool, error) {
	sh, ok := s.shard(tenant)
	if !ok {
		return nil, false, ErrNoTenant{tenant}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	val, present := sh.values[key]
	// Drive the eviction/shadow structures with the item's stored size.
	sh.tenant.Lookup(key, int64(len(val)))
	if !present {
		return nil, false, nil
	}
	return val, true, nil
}

// GetWithCAS returns the value and a CAS token for the gets verb.
func (s *Store) GetWithCAS(tenant, key string) ([]byte, uint64, bool, error) {
	sh, ok := s.shard(tenant)
	if !ok {
		return nil, 0, false, ErrNoTenant{tenant}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	val, present := sh.values[key]
	sh.tenant.Lookup(key, int64(len(val)))
	if !present {
		return nil, 0, false, nil
	}
	return val, sh.cas[key], true, nil
}

// Set stores value under key for the tenant, evicting older entries as
// needed. Values too large for any slab class are rejected.
func (s *Store) Set(tenant, key string, value []byte) error {
	sh, ok := s.shard(tenant)
	if !ok {
		return ErrNoTenant{tenant}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	size := int64(len(key) + len(value))
	if _, fits := sh.tenant.ClassFor(size); !fits {
		return fmt.Errorf("store: object %q of %d bytes exceeds the largest slab class", key, size)
	}
	victims := sh.tenant.Admit(key, size)
	admitted := true
	for _, v := range victims {
		if v.Key == key {
			admitted = false
			continue
		}
		delete(sh.values, v.Key)
		delete(sh.cas, v.Key)
	}
	if !admitted {
		delete(sh.values, key)
		delete(sh.cas, key)
		return fmt.Errorf("store: object %q does not fit in tenant %q", key, tenant)
	}
	sh.values[key] = value
	sh.casCounter++
	sh.cas[key] = sh.casCounter
	return nil
}

// Delete removes key from the tenant, reporting whether it was present.
func (s *Store) Delete(tenant, key string) (bool, error) {
	sh, ok := s.shard(tenant)
	if !ok {
		return false, ErrNoTenant{tenant}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	val, present := sh.values[key]
	if present {
		sh.tenant.Delete(key, int64(len(key)+len(val)))
		delete(sh.values, key)
		delete(sh.cas, key)
	}
	return present, nil
}

// Flush removes every entry of the tenant.
func (s *Store) Flush(tenant string) error {
	sh, ok := s.shard(tenant)
	if !ok {
		return ErrNoTenant{tenant}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for key, val := range sh.values {
		sh.tenant.Delete(key, int64(len(key)+len(val)))
	}
	sh.values = make(map[string][]byte)
	sh.cas = make(map[string]uint64)
	return nil
}

// Stats returns the tenant's counters.
func (s *Store) Stats(tenant string) (TenantStats, error) {
	sh, ok := s.shard(tenant)
	if !ok {
		return TenantStats{}, ErrNoTenant{tenant}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tenant.Stats(), nil
}

// Items reports the number of values the tenant currently holds.
func (s *Store) Items(tenant string) (int, error) {
	sh, ok := s.shard(tenant)
	if !ok {
		return 0, ErrNoTenant{tenant}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.values), nil
}

// UsedBytes reports the tenant's resident bytes as accounted by its slab
// queues.
func (s *Store) UsedBytes(tenant string) (int64, error) {
	sh, ok := s.shard(tenant)
	if !ok {
		return 0, ErrNoTenant{tenant}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tenant.UsedBytes(), nil
}

// Victim re-exports cache.Victim for callers that only import store.
type Victim = cache.Victim
