package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/core"
	"cliffhanger/internal/slab"
)

// Config configures a Store.
type Config struct {
	// Geometry is the slab-class geometry shared by all tenants; nil uses
	// the default geometry.
	Geometry *slab.Geometry
	// DefaultMode is the allocation mode for tenants registered without an
	// explicit mode.
	DefaultMode AllocationMode
	// DefaultPolicy is the eviction policy for non-Cliffhanger tenants.
	DefaultPolicy cache.PolicyKind
	// Cliffhanger configures Cliffhanger-managed tenants.
	Cliffhanger core.Config
	// ValueShards is the number of striped-lock value shards per tenant
	// (rounded up to a power of two). Zero uses defaultValueShards.
	ValueShards int
	// SyncBookkeeping applies structural bookkeeping inline on the request
	// path instead of through the per-tenant event channel. Synchronous
	// mode is deterministic and is what tests and the simulator semantics
	// are defined against; asynchronous mode (the default) is faster.
	SyncBookkeeping bool
}

// defaultValueShards is the per-tenant lock stripe count: enough that a
// server's worth of worker goroutines rarely collide on one stripe.
const defaultValueShards = 64

// Store is a multi-tenant in-memory key-value cache: the value-holding layer
// over Tenant. It is safe for concurrent use. Values live in an N-way
// key-hash-sharded table with striped locks, so operations on independent
// keys proceed in parallel even within one tenant; structural bookkeeping
// (eviction queues, Cliffhanger shadow queues) is owned by a per-tenant
// bookkeeper off the request path.
type Store struct {
	cfg Config

	// tenants is a copy-on-write map so the hot path reads it without
	// locking; mu serializes registration and close.
	mu      sync.Mutex
	tenants atomic.Pointer[map[string]*tenantEntry]
	closed  bool
}

// valueShard is one stripe of a tenant's value table plus its bookkeeping
// event buffer.
type valueShard struct {
	mu     sync.Mutex
	values map[string][]byte
	// casCounter provides unique CAS tokens for the gets/cas protocol verbs.
	casCounter uint64
	cas        map[string]uint64

	// pending buffers this shard's bookkeeping events (guarded by mu);
	// applyMu makes stealing and replaying the buffer one atomic step so
	// per-key event order is preserved (see bookkeeper.applyShard).
	pending []event
	applyMu sync.Mutex
}

// tenantEntry couples a tenant's sharded value table with the bookkeeper
// that owns its structural state.
type tenantEntry struct {
	tenant *Tenant // structural state; guarded by bk.mu
	bk     *bookkeeper
	shards []valueShard
	mask   uint64
}

func (e *tenantEntry) shardFor(key string) *valueShard {
	return &e.shards[fnv1a64(key)&e.mask]
}

// dropValue removes key's value (used when the tenant evicts it).
func (e *tenantEntry) dropValue(key string) {
	sh := e.shardFor(key)
	sh.mu.Lock()
	delete(sh.values, key)
	delete(sh.cas, key)
	sh.mu.Unlock()
}

// fnv1a64 is the FNV-1a hash used to stripe keys across value shards.
func fnv1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// New returns an empty store.
func New(cfg Config) *Store {
	if cfg.Geometry == nil {
		cfg.Geometry = slab.DefaultGeometry()
	}
	if cfg.Cliffhanger.CreditBytes == 0 {
		cfg.Cliffhanger = core.DefaultConfig()
	}
	if cfg.ValueShards <= 0 {
		cfg.ValueShards = defaultValueShards
	}
	s := &Store{cfg: cfg}
	empty := make(map[string]*tenantEntry)
	s.tenants.Store(&empty)
	return s
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// RegisterTenant creates a tenant with the given memory reservation using
// the store's default mode and policy.
func (s *Store) RegisterTenant(name string, memoryBytes int64) error {
	return s.RegisterTenantConfig(TenantConfig{
		Name:        name,
		MemoryBytes: memoryBytes,
		Mode:        s.cfg.DefaultMode,
		Policy:      s.cfg.DefaultPolicy,
	})
}

// RegisterTenantConfig creates a tenant from an explicit configuration.
// Unset geometry and Cliffhanger settings inherit the store defaults.
func (s *Store) RegisterTenantConfig(cfg TenantConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("store: tenant name must not be empty")
	}
	if cfg.Geometry == nil {
		cfg.Geometry = s.cfg.Geometry
	}
	if cfg.Cliffhanger.CreditBytes == 0 {
		cfg.Cliffhanger = s.cfg.Cliffhanger
	}
	tenant, err := NewTenant(cfg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	old := *s.tenants.Load()
	if _, dup := old[cfg.Name]; dup {
		return fmt.Errorf("store: tenant %q already registered", cfg.Name)
	}
	n := nextPow2(s.cfg.ValueShards)
	e := &tenantEntry{
		tenant: tenant,
		shards: make([]valueShard, n),
		mask:   uint64(n - 1),
	}
	for i := range e.shards {
		e.shards[i].values = make(map[string][]byte)
		e.shards[i].cas = make(map[string]uint64)
	}
	e.bk = newBookkeeper(tenant, e, s.cfg.SyncBookkeeping)
	next := make(map[string]*tenantEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[cfg.Name] = e
	s.tenants.Store(&next)
	return nil
}

// Tenants returns the registered tenant names, sorted.
func (s *Store) Tenants() []string {
	m := *s.tenants.Load()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Store) entry(tenant string) (*tenantEntry, bool) {
	e, ok := (*s.tenants.Load())[tenant]
	return e, ok
}

// ErrNoTenant is returned for operations on unregistered tenants.
type ErrNoTenant struct{ Name string }

func (e ErrNoTenant) Error() string { return fmt.Sprintf("store: unknown tenant %q", e.Name) }

// Get returns the value stored under key for the tenant and whether it was
// present.
func (s *Store) Get(tenant, key string) ([]byte, bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return nil, false, ErrNoTenant{tenant}
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	val, present := sh.values[key]
	// Drive the eviction/shadow structures with the same size the SET path
	// admitted the item under (key+value), so the lookup lands on the slab
	// class that actually holds the key. Buffered in the same critical
	// section as the value read, so per-key event order matches value order.
	ev := event{kind: evLookup, key: key, size: lookupSize(key, val, present)}
	act := e.bk.bufferLocked(sh, ev)
	sh.mu.Unlock()
	e.bk.finish(sh, ev, act)
	if !present {
		return nil, false, nil
	}
	return val, true, nil
}

// lookupSize returns the accounting size for a GET: resident keys use the
// same key+value size their admission was charged, absent keys fall back to
// the key length (their class is unknowable).
func lookupSize(key string, val []byte, present bool) int64 {
	if !present {
		return int64(len(key))
	}
	return int64(len(key) + len(val))
}

// GetWithCAS returns the value and a CAS token for the gets verb.
func (s *Store) GetWithCAS(tenant, key string) ([]byte, uint64, bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return nil, 0, false, ErrNoTenant{tenant}
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	val, present := sh.values[key]
	cas := sh.cas[key]
	ev := event{kind: evLookup, key: key, size: lookupSize(key, val, present)}
	act := e.bk.bufferLocked(sh, ev)
	sh.mu.Unlock()
	e.bk.finish(sh, ev, act)
	if !present {
		return nil, 0, false, nil
	}
	return val, cas, true, nil
}

// Set stores value under key for the tenant, evicting older entries as
// needed. Values too large for any slab class are rejected.
//
// With asynchronous bookkeeping the admission is settled off the request
// path: in the rare case that the key does not fit its tenant at all, the
// value is dropped shortly after the call instead of producing an error.
func (s *Store) Set(tenant, key string, value []byte) error {
	e, ok := s.entry(tenant)
	if !ok {
		return ErrNoTenant{tenant}
	}
	size := int64(len(key) + len(value))
	if _, fits := e.tenant.ClassFor(size); !fits {
		return fmt.Errorf("store: object %q of %d bytes exceeds the largest slab class", key, size)
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	sh.values[key] = value
	sh.casCounter++
	sh.cas[key] = sh.casCounter
	if !e.bk.synchronous {
		ev := event{kind: evAdmit, key: key, size: size}
		act := e.bk.bufferLocked(sh, ev)
		sh.mu.Unlock()
		e.bk.finish(sh, ev, act)
		return nil
	}
	sh.mu.Unlock()

	e.bk.mu.Lock()
	victims := e.tenant.Admit(key, size)
	e.bk.mu.Unlock()
	admitted := true
	for _, v := range victims {
		if v.Key == key {
			admitted = false
			continue
		}
		e.dropValue(v.Key)
	}
	if !admitted {
		e.dropValue(key)
		return fmt.Errorf("store: object %q does not fit in tenant %q", key, tenant)
	}
	return nil
}

// Delete removes key from the tenant, reporting whether it was present.
func (s *Store) Delete(tenant, key string) (bool, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return false, ErrNoTenant{tenant}
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	val, present := sh.values[key]
	if !present {
		sh.mu.Unlock()
		return false, nil
	}
	delete(sh.values, key)
	delete(sh.cas, key)
	ev := event{kind: evRemove, key: key, size: int64(len(key) + len(val))}
	act := e.bk.bufferLocked(sh, ev)
	sh.mu.Unlock()
	e.bk.finish(sh, ev, act)
	return true, nil
}

// FlushTenant removes every entry of the tenant.
func (s *Store) FlushTenant(tenant string) error {
	e, ok := s.entry(tenant)
	if !ok {
		return ErrNoTenant{tenant}
	}
	// Settle in-flight bookkeeping so the structural removals below see
	// every admission.
	e.bk.flush()
	var evs []event
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for k, v := range sh.values {
			evs = append(evs, event{kind: evRemove, key: k, size: int64(len(k) + len(v))})
		}
		sh.values = make(map[string][]byte)
		sh.cas = make(map[string]uint64)
		sh.mu.Unlock()
	}
	e.bk.mu.Lock()
	for _, ev := range evs {
		e.tenant.Delete(ev.key, ev.size)
	}
	e.bk.mu.Unlock()
	return nil
}

// Flush blocks until every bookkeeping event enqueued before the call has
// been applied, so stats and snapshots reflect all completed operations.
func (s *Store) Flush() {
	for _, e := range *s.tenants.Load() {
		e.bk.flush()
	}
}

// Close settles and stops every tenant's bookkeeper. Operations issued after
// Close fall back to inline bookkeeping; Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	for _, e := range *s.tenants.Load() {
		e.bk.close()
	}
	return nil
}

// Stats returns the tenant's counters, settling in-flight bookkeeping first.
func (s *Store) Stats(tenant string) (TenantStats, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return TenantStats{}, ErrNoTenant{tenant}
	}
	e.bk.flush()
	e.bk.mu.Lock()
	defer e.bk.mu.Unlock()
	return e.tenant.Stats(), nil
}

// QueueSnapshots returns the per-queue Cliffhanger state of the tenant
// (nil for tenants in other allocation modes), settling in-flight
// bookkeeping first. It is safe to call concurrently with request traffic.
func (s *Store) QueueSnapshots(tenant string) ([]core.QueueSnapshot, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return nil, ErrNoTenant{tenant}
	}
	e.bk.flush()
	e.bk.mu.Lock()
	defer e.bk.mu.Unlock()
	m := e.tenant.Manager()
	if m == nil {
		return nil, nil
	}
	return m.Snapshot(), nil
}

// ClassCapacities returns the tenant's current per-class capacities in
// bytes, settling in-flight bookkeeping first.
func (s *Store) ClassCapacities(tenant string) (map[int]int64, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return nil, ErrNoTenant{tenant}
	}
	e.bk.flush()
	e.bk.mu.Lock()
	defer e.bk.mu.Unlock()
	return e.tenant.ClassCapacities(), nil
}

// Items reports the number of values the tenant currently holds.
func (s *Store) Items(tenant string) (int, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return 0, ErrNoTenant{tenant}
	}
	e.bk.flush()
	n := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		n += len(sh.values)
		sh.mu.Unlock()
	}
	return n, nil
}

// UsedBytes reports the tenant's resident bytes as accounted by its slab
// queues, settling in-flight bookkeeping first.
func (s *Store) UsedBytes(tenant string) (int64, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return 0, ErrNoTenant{tenant}
	}
	e.bk.flush()
	e.bk.mu.Lock()
	defer e.bk.mu.Unlock()
	return e.tenant.UsedBytes(), nil
}

// DroppedEvents reports how many advisory bookkeeping events the tenant has
// shed under overload (structural events are never dropped).
func (s *Store) DroppedEvents(tenant string) (int64, error) {
	e, ok := s.entry(tenant)
	if !ok {
		return 0, ErrNoTenant{tenant}
	}
	return e.bk.dropped.Load(), nil
}

// Victim re-exports cache.Victim for callers that only import store.
type Victim = cache.Victim
