package store

import (
	"fmt"
	"testing"

	"cliffhanger/internal/cache"
)

// TestAllocGateStoreGet pins the allocation floor of the byte-keyed GET path
// with synchronous bookkeeping (the deterministic mode, where every
// structural event is applied inline rather than buffered):
//
//   - hit:  0 allocations — the map lookup rides the alloc-free m[string(b)]
//     form, the lookup event reuses the record's interned key string, and
//     the value copy-out lands in the caller's reused buffer;
//   - miss: 0 allocations — the lookup event's key rides a pooled per-shard
//     key buffer that is returned to the shard once the event replays
//     (the tenant takes the counter-only LookupTransient path on a miss,
//     so nothing retains the transient key string).
//
// `make alloccheck` runs this as the hot-path allocation gate; a regression
// here fails CI rather than a future benchmark run.
func TestAllocGateStoreGet(t *testing.T) {
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	defer s.Close()
	if err := s.RegisterTenant("hot", 64<<20); err != nil {
		t.Fatal(err)
	}
	value := make([]byte, 256)
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
		if err := s.Set("hot", string(keys[i]), value); err != nil {
			t.Fatal(err)
		}
	}

	var i int
	vbuf := make([]byte, 0, len(value))
	hitAllocs := testing.AllocsPerRun(2000, func() {
		k := keys[i&(len(keys)-1)]
		i++
		it, buf, ok, err := s.GetItemInto("hot", k, vbuf)
		vbuf = buf
		if err != nil || !ok || len(it.Value) != len(value) {
			t.Fatalf("get hit = %v %v", ok, err)
		}
	})
	if hitAllocs != 0 {
		t.Errorf("GetItemInto hit allocates %.2f objects/op, want 0", hitAllocs)
	}

	missKey := []byte("no-such-key")
	missAllocs := testing.AllocsPerRun(2000, func() {
		if _, _, ok, err := s.GetItemInto("hot", missKey, vbuf); err != nil || ok {
			t.Fatalf("get miss = %v %v", ok, err)
		}
	})
	if missAllocs != 0 {
		t.Errorf("GetItemInto miss allocates %.2f objects/op, want 0 (pooled event key buffer)", missAllocs)
	}
}

// TestAllocGateStoreSet pins the SET floor under the slab arena: re-setting
// a resident key allocates NOTHING — the interned key string, the item
// record and the value chunk are all reused, and the value bytes are copied
// into the chunk under the shard lock. Before the arena this path allocated
// 2 objects per op (a fresh value copy plus a fresh record), all of it GC
// churn under write-heavy traffic.
func TestAllocGateStoreSet(t *testing.T) {
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	defer s.Close()
	if err := s.RegisterTenant("hot", 64<<20); err != nil {
		t.Fatal(err)
	}
	key := []byte("steady-key")
	value := make([]byte, 256)
	if err := s.SetItemBytes("hot", key, value, 0, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if err := s.SetItemBytes("hot", key, value, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SetItemBytes re-set allocates %.2f objects/op, want 0 (chunk and record recycled)", allocs)
	}
}

// TestAllocGateStoreSetCrossClass pins the cross-class re-set floor: a SET
// that moves a key between slab classes frees the old chunk and pops one
// from the new class's freelist — after the two classes' freelists warm up,
// alternating between them allocates nothing.
func TestAllocGateStoreSetCrossClass(t *testing.T) {
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	defer s.Close()
	if err := s.RegisterTenant("hot", 64<<20); err != nil {
		t.Fatal(err)
	}
	key := []byte("cross-class-key")
	small := make([]byte, 100) // 128 B chunk class
	large := make([]byte, 900) // 1 KiB chunk class
	for i := 0; i < 4; i++ {   // warm both classes' freelists
		if err := s.SetItemBytes("hot", key, small, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.SetItemBytes("hot", key, large, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	allocs := testing.AllocsPerRun(2000, func() {
		v := small
		if i++; i&1 == 0 {
			v = large
		}
		if err := s.SetItemBytes("hot", key, v, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cross-class re-set allocates %.2f objects/op, want 0 (chunks swapped through freelists)", allocs)
	}
}

// TestAllocGateStoreAppend pins the append/prepend floor: every append and
// prepend assembles the concatenation in a fresh chunk popped from the
// freelist (copy-on-write, so epoch-pinned readers never observe a torn
// value) while the old chunk cycles through quarantine back to the
// freelist, so a steady-state append loop — re-set to the base value,
// append a suffix, prepend a prefix — allocates nothing.
func TestAllocGateStoreAppend(t *testing.T) {
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	defer s.Close()
	if err := s.RegisterTenant("hot", 64<<20); err != nil {
		t.Fatal(err)
	}
	key := []byte("append-key")
	base := make([]byte, 200) // 512 B chunk: room for the suffix and prefix
	extra := []byte("0123456789abcdef")
	if err := s.SetItemBytes("hot", key, base, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("hot", "append-key", extra); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if err := s.SetItemBytes("hot", key, base, 0, 0); err != nil {
			t.Fatal(err)
		}
		if ok, err := s.Append("hot", "append-key", extra); err != nil || !ok {
			t.Fatalf("append = %v %v", ok, err)
		}
		if ok, err := s.Prepend("hot", "append-key", extra); err != nil || !ok {
			t.Fatalf("prepend = %v %v", ok, err)
		}
	})
	if allocs != 0 {
		t.Errorf("set+append+prepend loop allocates %.2f objects/op, want 0 (in-chunk assembly)", allocs)
	}
}

// TestAllocGateStoreDelete pins the delete/re-set churn floor: a delete
// returns the chunk and record to the freelists and the following SET takes
// them back, so a churning set/delete loop settles at 1 alloc/op — only the
// key string re-interned at each fresh insertion.
func TestAllocGateStoreDelete(t *testing.T) {
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	defer s.Close()
	if err := s.RegisterTenant("hot", 64<<20); err != nil {
		t.Fatal(err)
	}
	key := []byte("churn-key")
	value := make([]byte, 256)
	allocs := testing.AllocsPerRun(2000, func() {
		if err := s.SetItemBytes("hot", key, value, 0, 0); err != nil {
			t.Fatal(err)
		}
		if ok, err := s.Delete("hot", "churn-key"); err != nil || !ok {
			t.Fatalf("delete = %v %v", ok, err)
		}
	})
	if allocs > 1 {
		t.Errorf("set+delete churn allocates %.2f objects/op, want <= 1 (the re-interned key string)", allocs)
	}
}

// TestGetItemBytesMatchesGetItem checks the byte-keyed read against the
// string-keyed one across hit, miss, flags/CAS and expiry shedding.
func TestGetItemBytesMatchesGetItem(t *testing.T) {
	clock := int64(1000)
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
		Now:             func() int64 { return clock },
	})
	defer s.Close()
	if err := s.RegisterTenant("app", 8<<20); err != nil {
		t.Fatal(err)
	}
	if err := s.SetItem("app", "k", []byte("v"), 1234, 0); err != nil {
		t.Fatal(err)
	}
	a, okA, _ := s.GetItem("app", "k")
	b, okB, _ := s.GetItemBytes("app", []byte("k"))
	if okA != okB || string(a.Value) != string(b.Value) || a.Flags != b.Flags || a.CAS != b.CAS {
		t.Fatalf("GetItem %+v/%v vs GetItemBytes %+v/%v", a, okA, b, okB)
	}
	if _, ok, _ := s.GetItemBytes("app", []byte("missing")); ok {
		t.Fatalf("byte-keyed miss reported a hit")
	}
	// Expiry shedding through the byte-keyed path.
	if err := s.SetItem("app", "ttl", []byte("v"), 0, 2000); err != nil {
		t.Fatal(err)
	}
	clock = 3000
	if _, ok, _ := s.GetItemBytes("app", []byte("ttl")); ok {
		t.Fatalf("expired record served through GetItemBytes")
	}
	st, err := s.Stats("app")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	if _, ok, err := s.GetItemBytes("ghost", []byte("k")); err == nil || ok {
		t.Fatalf("unknown tenant must error")
	}
}

// TestColdClassFirstAdmissionSticks is the regression test for the ROADMAP
// open item: the first admission into a cold Cliffhanger class whose chunk
// size exceeds MinQueueBytes (2 credits = 8 KiB on default config) used to
// bounce once, because the freshly granted page was only applied to the
// queue's partitions after the insert. With the eager resize on page growth
// the very first SET of a big value must succeed, be resident, and be
// served by the following GET — in both bookkeeping modes.
func TestColdClassFirstAdmissionSticks(t *testing.T) {
	for _, syncBk := range []bool{true, false} {
		name := "async"
		if syncBk {
			name = "sync"
		}
		t.Run(name, func(t *testing.T) {
			s := New(Config{
				DefaultMode:     AllocCliffhanger,
				DefaultPolicy:   cache.PolicyLRU,
				SyncBookkeeping: syncBk,
			})
			defer s.Close()
			if err := s.RegisterTenant("app", 64<<20); err != nil {
				t.Fatal(err)
			}
			// 12 KiB value -> 16 KiB chunk class, twice the 8 KiB
			// MinQueueBytes floor a cold queue starts at. The first set used
			// to fail outright in sync mode ("does not fit") and silently
			// drop in async mode.
			big := make([]byte, 12<<10)
			if err := s.Set("app", "big-key", big); err != nil {
				t.Fatalf("first admission into a cold big-chunk class bounced: %v", err)
			}
			s.Flush()
			v, ok, err := s.Get("app", "big-key")
			if err != nil || !ok || len(v) != len(big) {
				t.Fatalf("big key not resident after first set: ok=%v err=%v", ok, err)
			}
			used, err := s.UsedBytes("app")
			if err != nil {
				t.Fatal(err)
			}
			if used < 16<<10 {
				t.Fatalf("UsedBytes = %d, want at least one 16 KiB chunk", used)
			}
			// An even larger class (64 KiB chunk) on the same tenant.
			if err := s.Set("app", "bigger-key", make([]byte, 60<<10)); err != nil {
				t.Fatalf("cold 64 KiB class bounced: %v", err)
			}
			s.Flush()
			if _, ok, _ := s.Get("app", "bigger-key"); !ok {
				t.Fatalf("64 KiB chunk key not resident after first set")
			}
		})
	}
}

// TestSetItemBytesCopiesValue pins the ownership contract: the store must not
// retain the caller's (reusable) key and value buffers.
func TestSetItemBytesCopiesValue(t *testing.T) {
	for _, syncBk := range []bool{true, false} {
		s := New(Config{DefaultMode: AllocDefault, DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: syncBk})
		if err := s.RegisterTenant("app", 8<<20); err != nil {
			t.Fatal(err)
		}
		key := []byte("shared-buffer-key")
		value := []byte("first")
		if err := s.SetItemBytes("app", key, value, 7, 0); err != nil {
			t.Fatal(err)
		}
		copy(value, "XXXXX") // simulate the parse buffer being reused
		key[0] = 'Z'
		it, ok, err := s.GetItemBytes("app", []byte("shared-buffer-key"))
		if err != nil || !ok {
			t.Fatalf("get after buffer reuse = %v %v", ok, err)
		}
		if string(it.Value) != "first" || it.Flags != 7 {
			t.Fatalf("store retained caller buffers: %q flags=%d", it.Value, it.Flags)
		}
		s.Close()
	}
}
