package store

import (
	"fmt"
	"testing"

	"cliffhanger/internal/cache"
)

// TestAllocGateStoreGet pins the allocation floor of the byte-keyed GET path
// with synchronous bookkeeping (the deterministic mode, where every
// structural event is applied inline rather than buffered):
//
//   - hit:  0 allocations — the map lookup rides the alloc-free m[string(b)]
//     form and the lookup event reuses the record's interned key string;
//   - miss: 1 allocation — the key string materialized for the lookup event
//     (the key may still live in a shadow queue, so the tenant needs it).
//
// `make alloccheck` runs this as the hot-path allocation gate; a regression
// here fails CI rather than a future benchmark run.
func TestAllocGateStoreGet(t *testing.T) {
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	defer s.Close()
	if err := s.RegisterTenant("hot", 64<<20); err != nil {
		t.Fatal(err)
	}
	value := make([]byte, 256)
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
		if err := s.Set("hot", string(keys[i]), value); err != nil {
			t.Fatal(err)
		}
	}

	var i int
	hitAllocs := testing.AllocsPerRun(2000, func() {
		k := keys[i&(len(keys)-1)]
		i++
		if _, ok, err := s.GetItemBytes("hot", k); err != nil || !ok {
			t.Fatalf("get hit = %v %v", ok, err)
		}
	})
	if hitAllocs != 0 {
		t.Errorf("GetItemBytes hit allocates %.2f objects/op, want 0", hitAllocs)
	}

	missKey := []byte("no-such-key")
	missAllocs := testing.AllocsPerRun(2000, func() {
		if _, ok, err := s.GetItemBytes("hot", missKey); err != nil || ok {
			t.Fatalf("get miss = %v %v", ok, err)
		}
	})
	if missAllocs > 1 {
		t.Errorf("GetItemBytes miss allocates %.2f objects/op, want <= 1 (the event key string)", missAllocs)
	}
}

// TestAllocGateStoreSet pins the SET floor: re-setting a resident key with
// SetItemBytes allocates exactly the value copy and the item record (2
// objects) — the interned key string is reused, and no intermediate command
// or event state allocates.
func TestAllocGateStoreSet(t *testing.T) {
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	defer s.Close()
	if err := s.RegisterTenant("hot", 64<<20); err != nil {
		t.Fatal(err)
	}
	key := []byte("steady-key")
	value := make([]byte, 256)
	if err := s.SetItemBytes("hot", key, value, 0, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if err := s.SetItemBytes("hot", key, value, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("SetItemBytes re-set allocates %.2f objects/op, want <= 2 (value copy + item record)", allocs)
	}
}

// TestGetItemBytesMatchesGetItem checks the byte-keyed read against the
// string-keyed one across hit, miss, flags/CAS and expiry shedding.
func TestGetItemBytesMatchesGetItem(t *testing.T) {
	clock := int64(1000)
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
		Now:             func() int64 { return clock },
	})
	defer s.Close()
	if err := s.RegisterTenant("app", 8<<20); err != nil {
		t.Fatal(err)
	}
	if err := s.SetItem("app", "k", []byte("v"), 1234, 0); err != nil {
		t.Fatal(err)
	}
	a, okA, _ := s.GetItem("app", "k")
	b, okB, _ := s.GetItemBytes("app", []byte("k"))
	if okA != okB || string(a.Value) != string(b.Value) || a.Flags != b.Flags || a.CAS != b.CAS {
		t.Fatalf("GetItem %+v/%v vs GetItemBytes %+v/%v", a, okA, b, okB)
	}
	if _, ok, _ := s.GetItemBytes("app", []byte("missing")); ok {
		t.Fatalf("byte-keyed miss reported a hit")
	}
	// Expiry shedding through the byte-keyed path.
	if err := s.SetItem("app", "ttl", []byte("v"), 0, 2000); err != nil {
		t.Fatal(err)
	}
	clock = 3000
	if _, ok, _ := s.GetItemBytes("app", []byte("ttl")); ok {
		t.Fatalf("expired record served through GetItemBytes")
	}
	st, err := s.Stats("app")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	if _, ok, err := s.GetItemBytes("ghost", []byte("k")); err == nil || ok {
		t.Fatalf("unknown tenant must error")
	}
}

// TestColdClassFirstAdmissionSticks is the regression test for the ROADMAP
// open item: the first admission into a cold Cliffhanger class whose chunk
// size exceeds MinQueueBytes (2 credits = 8 KiB on default config) used to
// bounce once, because the freshly granted page was only applied to the
// queue's partitions after the insert. With the eager resize on page growth
// the very first SET of a big value must succeed, be resident, and be
// served by the following GET — in both bookkeeping modes.
func TestColdClassFirstAdmissionSticks(t *testing.T) {
	for _, syncBk := range []bool{true, false} {
		name := "async"
		if syncBk {
			name = "sync"
		}
		t.Run(name, func(t *testing.T) {
			s := New(Config{
				DefaultMode:     AllocCliffhanger,
				DefaultPolicy:   cache.PolicyLRU,
				SyncBookkeeping: syncBk,
			})
			defer s.Close()
			if err := s.RegisterTenant("app", 64<<20); err != nil {
				t.Fatal(err)
			}
			// 12 KiB value -> 16 KiB chunk class, twice the 8 KiB
			// MinQueueBytes floor a cold queue starts at. The first set used
			// to fail outright in sync mode ("does not fit") and silently
			// drop in async mode.
			big := make([]byte, 12<<10)
			if err := s.Set("app", "big-key", big); err != nil {
				t.Fatalf("first admission into a cold big-chunk class bounced: %v", err)
			}
			s.Flush()
			v, ok, err := s.Get("app", "big-key")
			if err != nil || !ok || len(v) != len(big) {
				t.Fatalf("big key not resident after first set: ok=%v err=%v", ok, err)
			}
			used, err := s.UsedBytes("app")
			if err != nil {
				t.Fatal(err)
			}
			if used < 16<<10 {
				t.Fatalf("UsedBytes = %d, want at least one 16 KiB chunk", used)
			}
			// An even larger class (64 KiB chunk) on the same tenant.
			if err := s.Set("app", "bigger-key", make([]byte, 60<<10)); err != nil {
				t.Fatalf("cold 64 KiB class bounced: %v", err)
			}
			s.Flush()
			if _, ok, _ := s.Get("app", "bigger-key"); !ok {
				t.Fatalf("64 KiB chunk key not resident after first set")
			}
		})
	}
}

// TestSetItemBytesCopiesValue pins the ownership contract: the store must not
// retain the caller's (reusable) key and value buffers.
func TestSetItemBytesCopiesValue(t *testing.T) {
	for _, syncBk := range []bool{true, false} {
		s := New(Config{DefaultMode: AllocDefault, DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: syncBk})
		if err := s.RegisterTenant("app", 8<<20); err != nil {
			t.Fatal(err)
		}
		key := []byte("shared-buffer-key")
		value := []byte("first")
		if err := s.SetItemBytes("app", key, value, 7, 0); err != nil {
			t.Fatal(err)
		}
		copy(value, "XXXXX") // simulate the parse buffer being reused
		key[0] = 'Z'
		it, ok, err := s.GetItemBytes("app", []byte("shared-buffer-key"))
		if err != nil || !ok {
			t.Fatalf("get after buffer reuse = %v %v", ok, err)
		}
		if string(it.Value) != "first" || it.Flags != 7 {
			t.Fatalf("store retained caller buffers: %q flags=%d", it.Value, it.Flags)
		}
		s.Close()
	}
}
