package store

import (
	"fmt"
	"runtime"
	"testing"

	"cliffhanger/internal/cache"
)

// BenchmarkStoreWriteHeavy measures the mutation path under churn: 50% SET /
// 10% DELETE / 40% GET over a key set whose sizes span four slab classes, so
// values are continually born, re-set across classes, deleted and evicted.
// Alongside ns/op, B/op and allocs/op it reports GC cycles per million
// operations (gc/Mop, from runtime.ReadMemStats around the timed loop) — the
// number the slab arena exists to drive down: before the arena every SET
// allocated a fresh value copy plus an item record and every
// eviction/expiry/delete handed them to the garbage collector.
func BenchmarkStoreWriteHeavy(b *testing.B) {
	for _, g := range []int{1, 4} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchmarkWriteHeavy(b, g)
		})
	}
}

// writeHeavySizes spreads values across slab classes (with the default
// power-of-two geometry: 128B, 512B, 1KiB and 4KiB chunks). A key's size
// depends on both the key and the pass number, so long runs re-set keys
// across classes.
var writeHeavySizes = [4]int{100, 400, 900, 3800}

func benchmarkWriteHeavy(b *testing.B, goroutines int) {
	b.ReportAllocs()
	s := New(Config{DefaultMode: AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
	defer s.Close()
	if err := s.RegisterTenant("hot", 64<<20); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, writeHeavySizes[len(writeHeavySizes)-1])
	const nKeys = 1 << 14
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("wh-key-%d", i))
		if err := s.SetItemBytes("hot", keys[i], payload[:writeHeavySizes[i%len(writeHeavySizes)]], 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	s.Flush()

	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	b.ResetTimer()
	per := b.N/goroutines + 1
	done := make(chan struct{}, goroutines)
	for w := 0; w < goroutines; w++ {
		go func(worker int) {
			defer func() { done <- struct{}{} }()
			// Per-worker copy-out buffer, as the server's sessions hold.
			vbuf := make([]byte, 0, writeHeavySizes[len(writeHeavySizes)-1])
			idx := worker * (nKeys / 8)
			for i := 0; i < per; i++ {
				k := keys[(idx+i*7)&(nKeys-1)]
				// The size class churns with the iteration count, so a SET
				// of a previously resident key frequently crosses classes.
				size := writeHeavySizes[(i*7+i/nKeys)%len(writeHeavySizes)]
				switch i % 10 {
				case 0, 1, 2, 3, 4: // 50% SET
					if err := s.SetItemBytes("hot", k, payload[:size], 0, 0); err != nil {
						b.Error(err)
						return
					}
				case 5: // 10% DELETE
					if _, err := s.Delete("hot", string(k)); err != nil {
						b.Error(err)
						return
					}
				default: // 40% GET (copy-out into the reused buffer)
					_, buf, _, err := s.GetItemInto("hot", k, vbuf)
					if err != nil {
						b.Error(err)
						return
					}
					vbuf = buf
				}
			}
		}(w)
	}
	for w := 0; w < goroutines; w++ {
		<-done
	}
	b.StopTimer()
	runtime.ReadMemStats(&msAfter)
	gcs := float64(msAfter.NumGC - msBefore.NumGC)
	b.ReportMetric(gcs*1e6/float64(b.N), "gc/Mop")
}
