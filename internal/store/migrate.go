package store

// Page-granular migration: the mechanism that lets a live tenant give memory
// back, one whole 1 MiB page at a time (Memshare's insight: move memory
// between tenants at slab-page granularity, evicting the donor page's
// residents, instead of item-by-item).
//
// A page retirement runs as a small state machine with at most one in flight
// per arena (arena.migrating):
//
//  1. PICK   — the driver walks the item directory under the shard locks and
//              chooses the class page with the fewest live chunks (the
//              coldest page).
//  2. PUBLISH — the migration record (class + page address range) is stored
//              in arena.migrating. From this instant the alloc intercept
//              guarantees no chunk of the page is ever handed out again.
//  3. SWEEP  — the page's chunks sitting idle on the central freelist and
//              the stripe caches are captured (under the respective locks).
//  4. EVICT  — residents still on the page are evicted through the normal
//              per-shard event buffers (evMigrate), so queues, UsedBytes and
//              the conservation audit stay exact; their chunks retire into
//              quarantine like any other free.
//  5. DRAIN  — quarantined chunks of the page flow to the migration (instead
//              of back to a freelist) once every pinned reader has advanced
//              past their retirement epoch: reclaimStripeLocked redirects
//              them. Zero-copy readers are never torn.
//  6. RELEASE — when every chunk of the page is captured (got == want), the
//              class drops the page (pages--, buffer untracked) and the raw
//              page returns to the process-wide pageAllocator.
//
// Chunks captured by a migration form the fourth accounting state; every
// transition into it happens under the lock that guards the state the chunk
// leaves (stripe mutex or central mutex), which is what keeps the sealed
// conservation audit exact mid-migration.

import (
	"sort"
	"sync/atomic"
	"unsafe"
)

// migration is one in-flight page retirement.
type migration struct {
	class  int
	lo, hi uintptr // the retiring page's address range [lo, hi)
	buf    []byte  // the raw page, returned to the pool on completion
	want   int64   // chunks carved from the page (chunks-per-page)
	got    atomic.Int64
	done   atomic.Bool // latches the single completion
}

// sliceBase returns the address of a slice's backing array. The Go collector
// does not move heap objects, and the page buffers stay referenced for the
// whole migration, so the comparison is stable.
func sliceBase(b []byte) uintptr {
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))
}

// contains reports whether chunk was carved from the retiring page.
func (m *migration) contains(chunk []byte) bool {
	p := sliceBase(chunk)
	return p >= m.lo && p < m.hi
}

// pageRange describes one carved page for the coldest-page scan.
type pageRange struct {
	class  int
	lo, hi uintptr
	buf    []byte
	live   int64 // resident chunks counted by the directory walk
}

// pageRanges snapshots every carved page's address range. Pages carved after
// the snapshot cannot be picked for retirement this round, which is fine —
// brand-new pages are not cold.
func (a *arena) pageRanges() []pageRange {
	var out []pageRange
	for c := range a.classes {
		cl := &a.classes[c]
		cl.mu.Lock()
		for _, buf := range cl.pageBufs {
			lo := sliceBase(buf)
			out = append(out, pageRange{class: c, lo: lo, hi: lo + uintptr(a.geom.PageSize), buf: buf})
		}
		cl.mu.Unlock()
	}
	return out
}

// startMigration publishes a retirement of the given page. The caller must
// ensure no migration is already in flight.
func (a *arena) startMigration(pr pageRange) *migration {
	m := &migration{
		class: pr.class,
		lo:    pr.lo,
		hi:    pr.hi,
		buf:   pr.buf,
		want:  a.classes[pr.class].perPage,
	}
	a.migrating.Store(m)
	return m
}

// migrationSweep captures the retiring page's chunks currently sitting idle
// on the central freelist and the stripe caches. It is cheap and idempotent;
// the driver re-runs it every tick while the migration is in flight so a
// chunk that was in flight between freelists during one pass is caught by a
// later one.
func (a *arena) migrationSweep(m *migration) {
	cl := &a.classes[m.class]
	cl.mu.Lock()
	cl.free = m.captureFrom(cl.free)
	cl.mu.Unlock()
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		st.free[m.class] = m.captureFrom(st.free[m.class])
		st.mu.Unlock()
	}
	a.maybeFinishMigration(m)
}

// captureFrom filters the retiring page's chunks out of one freelist,
// crediting them to the migration. The caller must hold the lock guarding
// the list — m.got is bumped inside that critical section so the sealed
// audit never observes a chunk in neither state.
func (m *migration) captureFrom(list [][]byte) [][]byte {
	kept := list[:0]
	for _, c := range list {
		if m.contains(c) {
			m.got.Add(1)
			continue
		}
		kept = append(kept, c)
	}
	for i := len(kept); i < len(list); i++ {
		list[i] = nil
	}
	return kept
}

// maybeFinishMigration completes the retirement once every chunk of the page
// has been captured: the class drops the page under cl.mu (keeping the
// audit's pages/migrating view consistent) and the raw page goes back to the
// process pool. Safe to call from any capture site; callers may hold a
// stripe mutex (cl.mu and pa.mu are below it in the lock order).
func (a *arena) maybeFinishMigration(m *migration) {
	if m.got.Load() != m.want || !m.done.CompareAndSwap(false, true) {
		return
	}
	cl := &a.classes[m.class]
	cl.mu.Lock()
	cl.pages--
	for i, buf := range cl.pageBufs {
		if sliceBase(buf) == m.lo {
			last := len(cl.pageBufs) - 1
			cl.pageBufs[i] = cl.pageBufs[last]
			cl.pageBufs[last] = nil
			cl.pageBufs = cl.pageBufs[:last]
			break
		}
	}
	a.migrating.Store(nil)
	cl.mu.Unlock()
	a.pa.release(a.owner, m.buf)
}

// resizeStepBytes bounds how much structural capacity one reconfigure tick
// claws back, so the bookkeeper's drain loop never stalls traffic behind one
// huge shrink (growth is applied in one go — it evicts nothing).
const resizeStepBytes int64 = 8 << 20

// reconfigureNeeded is the drain tick's cheap is-there-work probe: a few
// atomic loads in the steady state. Physical page retirement is only ever
// pending on tenants that have been explicitly resized.
func (e *tenantEntry) reconfigureNeeded() bool {
	if e.dying.Load() {
		return false
	}
	if e.targetBytes.Load() != e.appliedBytes.Load() {
		return true
	}
	if !e.resized.Load() {
		return false
	}
	if e.arena.migrating.Load() != nil {
		return true
	}
	return e.arena.pa.leaseCount(e.arena.owner) > e.physicalTargetPages(e.targetBytes.Load())
}

// reconfigureTick advances the tenant toward its target reservation by one
// bounded step — first structural capacity (under bk.mu, dropping the
// victims like any eviction replay), then physical page retirement — and
// reports whether work remains. Serialized by reconfMu so the drain loop and
// synchronous ResizeTenant callers never interleave steps.
func (e *tenantEntry) reconfigureTick() bool {
	e.reconfMu.Lock()
	defer e.reconfMu.Unlock()
	if e.dying.Load() {
		return false
	}
	target := e.targetBytes.Load()

	e.bk.mu.Lock()
	cur := e.tenant.MemoryBytes()
	if cur != target {
		next := target
		if target < cur-resizeStepBytes {
			next = cur - resizeStepBytes
		}
		for _, v := range e.tenant.Resize(next) {
			e.dropVictim(v.Key)
		}
		cur = next
		e.appliedBytes.Store(next)
	}
	e.bk.mu.Unlock()

	more := cur != target
	if e.resized.Load() {
		more = e.physicalStep(target) || more
	}
	return more
}

// physicalStep advances (or starts) page retirement toward the target lease
// count by at most one page, reporting whether physical work remains. Each
// call re-sweeps the freelists — catching chunks that were in flight between
// lists during an earlier pass — evicts any residents still on the page, and
// gives quarantined stragglers an epoch tick to drain.
func (e *tenantEntry) physicalStep(target int64) bool {
	a := e.arena
	m := a.migrating.Load()
	if m == nil {
		if a.pa.leaseCount(a.owner) <= e.physicalTargetPages(target) {
			return false
		}
		pr, ok := e.pickColdestPage()
		if !ok {
			return false
		}
		m = a.startMigration(pr)
	}
	a.migrationSweep(m)
	e.evictMigrating(m)
	a.advanceEpoch()
	a.reclaim()
	return a.migrating.Load() != nil || a.pa.leaseCount(a.owner) > e.physicalTargetPages(target)
}

// physicalTargetPages is the lease count a resized tenant shrinks toward:
// the reservation in pages plus rounding slack — one page per class holding
// pages (a class's structural capacity rarely lands on a page boundary) and
// a couple for quarantine transients. The slack is the anti-thrash margin:
// without it the driver would retire pages the workload immediately
// re-carves, paying evictions for nothing.
func (e *tenantEntry) physicalTargetPages(target int64) int64 {
	a := e.arena
	ps := a.geom.PageSize
	pages := (target + ps - 1) / ps
	var slack int64 = 2
	for c := range a.classes {
		cl := &a.classes[c]
		cl.mu.Lock()
		if cl.pages > 0 {
			slack++
		}
		cl.mu.Unlock()
	}
	return pages + slack
}

// pickColdestPage walks the item directory under the shard locks, counts
// live chunks per carved page, and returns the page with the fewest — the
// cheapest page to retire, Memshare's donor choice. ok is false when the
// arena holds no pages.
func (e *tenantEntry) pickColdestPage() (pageRange, bool) {
	pages := e.arena.pageRanges()
	if len(pages) == 0 {
		return pageRange{}, false
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].lo < pages[j].lo })
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, it := range sh.items {
			if it.value == nil {
				continue
			}
			p := sliceBase(it.value)
			idx := sort.Search(len(pages), func(k int) bool { return pages[k].lo > p }) - 1
			if idx >= 0 && p < pages[idx].hi {
				pages[idx].live++
			}
		}
		sh.mu.Unlock()
	}
	best := 0
	for i := range pages {
		if pages[i].live < pages[best].live {
			best = i
		}
	}
	return pages[best], true
}

// evictMigrating removes every resident whose chunk sits on the retiring
// page, through the normal per-shard event buffers (evMigrate) — exactly the
// reaper's discipline — so queues, UsedBytes and the conservation audit stay
// exact. The freed chunks retire into quarantine and reach the migration via
// the reclaim redirect once every pinned reader has moved past them.
// Idempotent: the alloc intercept guarantees no new resident can land on the
// page after the migration published, so repeat walks find nothing.
func (e *tenantEntry) evictMigrating(m *migration) {
	var (
		evs  []event
		acts []recordAction
	)
	for i := range e.shards {
		sh := &e.shards[i]
		evs, acts = evs[:0], acts[:0]
		sh.mu.Lock()
		for k, it := range sh.items {
			if it.value == nil || !m.contains(it.value) {
				continue
			}
			delete(sh.items, k)
			ev := event{kind: evMigrate, key: k, size: it.size}
			acts = append(acts, e.bk.bufferLocked(sh, &ev))
			evs = append(evs, ev)
			e.freeValueLocked(sh, it.size, it.value)
			sh.putItemLocked(it)
		}
		sh.mu.Unlock()
		for j := range evs {
			e.bk.finish(sh, evs[j], acts[j])
		}
	}
}

// usedChunks totals resident chunks across all classes (zero on a fully
// drained arena).
func (a *arena) usedChunks() int64 {
	var n int64
	for c := range a.classes {
		n += a.classes[c].used.Load()
	}
	return n
}

// releaseAll returns every page to the process pool. Only legal once the
// arena is fully drained: no resident chunks, nothing quarantined, no
// migration in flight — i.e. every chunk is back on a freelist and no reader
// can hold a pinned view (the delete teardown waits for exactly that).
func (a *arena) releaseAll() {
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		for c := range st.free {
			for j := range st.free[c] {
				st.free[c][j] = nil
			}
			st.free[c] = nil
		}
		st.mu.Unlock()
	}
	for c := range a.classes {
		cl := &a.classes[c]
		cl.mu.Lock()
		for i := range cl.free {
			cl.free[i] = nil
		}
		cl.free = nil
		bufs := cl.pageBufs
		cl.pageBufs = nil
		cl.pages = 0
		cl.mu.Unlock()
		for _, buf := range bufs {
			a.pa.release(a.owner, buf)
		}
	}
}
