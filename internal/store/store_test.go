package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/core"
	"cliffhanger/internal/slab"
)

func testConfig(mode AllocationMode, memoryMB int64) TenantConfig {
	return TenantConfig{
		Name:        "app",
		MemoryBytes: memoryMB << 20,
		Mode:        mode,
		Policy:      cache.PolicyLRU,
		Cliffhanger: core.DefaultConfig(),
	}
}

func TestAllocationModeString(t *testing.T) {
	names := map[AllocationMode]string{
		AllocDefault:      "default",
		AllocCliffhanger:  "cliffhanger",
		AllocStatic:       "static",
		AllocGlobalLRU:    "global-lru",
		AllocationMode(9): "unknown",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestNewTenantValidation(t *testing.T) {
	if _, err := NewTenant(TenantConfig{Name: "x"}); err == nil {
		t.Fatalf("zero memory should error")
	}
}

func TestTenantDefaultModeFCFSPages(t *testing.T) {
	cfg := testConfig(AllocDefault, 4)
	tenant, err := NewTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill with large items first: they should grab all the pages.
	for i := 0; i < 2000; i++ {
		tenant.Access(fmt.Sprintf("big%d", i), 16<<10)
	}
	// Now a small class arrives; with no free pages it is stuck with a
	// zero-capacity queue and every access misses (the FCFS pathology of §2).
	hits := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			if h, _ := tenant.Access(fmt.Sprintf("small%d", i), 64); h {
				hits++
			}
		}
	}
	if hits != 0 {
		t.Fatalf("small class should be starved under FCFS after large class grabbed all pages, got %d hits", hits)
	}
	bigClass, _ := tenant.ClassFor(16 << 10)
	if got := tenant.ClassCapacities()[bigClass]; got != 4<<20 {
		t.Fatalf("large class should own all 4 MiB, has %d", got)
	}
}

func TestTenantStaticModeRespectsBudgets(t *testing.T) {
	geom := slab.DefaultGeometry()
	smallClass, _ := geom.ClassFor(64)
	bigClass, _ := geom.ClassFor(16 << 10)
	cfg := testConfig(AllocStatic, 4)
	cfg.StaticClassBytes = map[int]int64{
		smallClass: 3 << 20,
		bigClass:   1 << 20,
	}
	tenant, err := NewTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		tenant.Access(fmt.Sprintf("big%d", i), 16<<10)
		tenant.Access(fmt.Sprintf("small%d", i%1000), 64)
	}
	caps := tenant.ClassCapacities()
	if caps[smallClass] != 3<<20 || caps[bigClass] != 1<<20 {
		t.Fatalf("static capacities changed: %v", caps)
	}
	st := tenant.Stats()
	var smallHits int64
	for _, c := range st.Classes {
		if c.Class == smallClass {
			smallHits = c.Hits
		}
		if c.UsedBytes > c.CapacityBytes {
			t.Fatalf("class %d over budget: %d > %d", c.Class, c.UsedBytes, c.CapacityBytes)
		}
	}
	if smallHits == 0 {
		t.Fatalf("small class with a protected budget should get hits")
	}
}

func TestTenantGlobalLRUUsesItemSizes(t *testing.T) {
	cfg := testConfig(AllocGlobalLRU, 1)
	tenant, err := NewTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MiB budget; 256-byte items: ~4096 fit by exact size (vs 2048 if
	// charged a 512-byte chunk).
	for i := 0; i < 5000; i++ {
		tenant.Access(fmt.Sprintf("k%d", i), 256)
	}
	if used := tenant.UsedBytes(); used > 1<<20 {
		t.Fatalf("global LRU over budget: %d", used)
	}
	hits := 0
	for i := 1500; i < 5000; i++ {
		if h, _ := tenant.Access(fmt.Sprintf("k%d", i), 256); h {
			hits++
		}
	}
	if hits < 3000 {
		t.Fatalf("most recent ~4096 items should be resident under exact-size accounting, got %d/3500 hits", hits)
	}
}

func TestTenantCliffhangerModeShiftsMemory(t *testing.T) {
	cfg := testConfig(AllocCliffhanger, 2)
	cfg.Cliffhanger = core.Config{
		CreditBytes:        4096,
		ShadowBytes:        256 << 10,
		CliffShadowItems:   128,
		TailWindowItems:    128,
		CliffMinItems:      1000,
		ResizeOnMissOnly:   true,
		EnableHillClimbing: true,
		EnableCliffScaling: true,
		Seed:               1,
	}
	tenant, err := NewTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tenant.Manager() == nil {
		t.Fatalf("cliffhanger tenant should expose its manager")
	}
	geom := slab.DefaultGeometry()
	smallClass, _ := geom.ClassFor(64)
	rng := rand.New(rand.NewSource(2))
	// The small class has a working set larger than its equal share; the
	// large class has a tiny working set. Hill climbing should move memory
	// toward the small class.
	before := tenant.ClassCapacities()[smallClass]
	for i := 0; i < 300000; i++ {
		if rng.Float64() < 0.9 {
			tenant.Access(fmt.Sprintf("s%d", rng.Intn(12000)), 64)
		} else {
			tenant.Access(fmt.Sprintf("b%d", rng.Intn(20)), 8<<10)
		}
	}
	after := tenant.ClassCapacities()[smallClass]
	if after <= before {
		t.Fatalf("small class capacity should grow under Cliffhanger: before %d after %d", before, after)
	}
	st := tenant.Stats()
	if st.HitRate() < 0.3 {
		t.Fatalf("hit rate %.3f unexpectedly low", st.HitRate())
	}
}

func TestTenantLookupDoesNotAdmit(t *testing.T) {
	for _, mode := range []AllocationMode{AllocDefault, AllocStatic, AllocGlobalLRU, AllocCliffhanger} {
		cfg := testConfig(mode, 2)
		cfg.StaticClassBytes = map[int]int64{0: 1 << 20}
		tenant, err := NewTenant(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if tenant.Lookup("ghost", 64) {
			t.Fatalf("%v: lookup of unknown key should miss", mode)
		}
		// A second lookup must still miss: GETs never admit.
		if tenant.Lookup("ghost", 64) {
			t.Fatalf("%v: GET must not admit keys", mode)
		}
		tenant.Admit("real", 64)
		if !tenant.Lookup("real", 64) {
			t.Fatalf("%v: admitted key should hit", mode)
		}
		if !tenant.Delete("real", 64) {
			t.Fatalf("%v: delete of resident key should succeed", mode)
		}
		if tenant.Lookup("real", 64) {
			t.Fatalf("%v: deleted key should miss", mode)
		}
	}
}

func TestTenantOversizedItemRejected(t *testing.T) {
	tenant, err := NewTenant(testConfig(AllocDefault, 4))
	if err != nil {
		t.Fatal(err)
	}
	victims := tenant.Admit("huge", 2<<20)
	if len(victims) != 1 || victims[0].Key != "huge" {
		t.Fatalf("oversized item should bounce back as its own victim, got %v", victims)
	}
	if hit, _ := tenant.Access("huge2", 2<<20); hit {
		t.Fatalf("oversized access cannot hit")
	}
}

func TestTenantStatsShape(t *testing.T) {
	tenant, err := NewTenant(testConfig(AllocDefault, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tenant.Access(fmt.Sprintf("a%d", i%300), 100)
		tenant.Access(fmt.Sprintf("b%d", i%50), 4000)
	}
	st := tenant.Stats()
	if st.Requests != 2000 || st.Hits+st.Misses != 2000 {
		t.Fatalf("stats totals wrong: %+v", st)
	}
	if len(st.Classes) < 2 {
		t.Fatalf("expected at least two active classes, got %d", len(st.Classes))
	}
	var reqSum int64
	for _, c := range st.Classes {
		reqSum += c.Requests
		if c.Hits+c.Misses != c.Requests {
			t.Fatalf("class %d counters inconsistent: %+v", c.Class, c)
		}
	}
	if reqSum != st.Requests {
		t.Fatalf("per-class requests (%d) do not sum to total (%d)", reqSum, st.Requests)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("hit rate should be positive")
	}
}

func TestStoreBasicOperations(t *testing.T) {
	s := New(Config{DefaultMode: AllocDefault, DefaultPolicy: cache.PolicyLRU})
	if err := s.RegisterTenant("app1", 4<<20); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterTenant("app1", 4<<20); err == nil {
		t.Fatalf("duplicate registration should fail")
	}
	if err := s.RegisterTenant("", 4<<20); err == nil {
		t.Fatalf("empty tenant name should fail")
	}
	if _, _, err := s.Get("nope", "k"); err == nil {
		t.Fatalf("unknown tenant should error")
	}
	if err := s.Set("app1", "hello", []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("app1", "hello")
	if err != nil || !ok || string(v) != "world" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := s.Get("app1", "missing"); ok {
		t.Fatalf("missing key should not be found")
	}
	_, cas1, ok, err := s.GetWithCAS("app1", "hello")
	if err != nil || !ok || cas1 == 0 {
		t.Fatalf("GetWithCAS = %v %v %v", cas1, ok, err)
	}
	if err := s.Set("app1", "hello", []byte("world2")); err != nil {
		t.Fatal(err)
	}
	_, cas2, _, _ := s.GetWithCAS("app1", "hello")
	if cas2 == cas1 {
		t.Fatalf("CAS token should change on update")
	}
	if deleted, _ := s.Delete("app1", "hello"); !deleted {
		t.Fatalf("delete should report true")
	}
	if deleted, _ := s.Delete("app1", "hello"); deleted {
		t.Fatalf("second delete should report false")
	}
	if names := s.Tenants(); len(names) != 1 || names[0] != "app1" {
		t.Fatalf("Tenants = %v", names)
	}
}

func TestStoreEvictionDropsValues(t *testing.T) {
	s := New(Config{DefaultMode: AllocDefault, DefaultPolicy: cache.PolicyLRU})
	if err := s.RegisterTenant("app", 1<<20); err != nil {
		t.Fatal(err)
	}
	// Write far more data than fits: ~1 MiB of 1 KiB chunk items.
	for i := 0; i < 4000; i++ {
		if err := s.Set("app", fmt.Sprintf("k%d", i), make([]byte, 900)); err != nil {
			t.Fatal(err)
		}
	}
	items, _ := s.Items("app")
	if items == 0 || items > 1100 {
		t.Fatalf("resident items = %d, want roughly 1024 (1 MiB of 1 KiB chunks)", items)
	}
	used, _ := s.UsedBytes("app")
	if used > 1<<20 {
		t.Fatalf("used bytes %d exceed the 1 MiB reservation", used)
	}
	// The most recently written keys should be present, the oldest gone.
	if _, ok, _ := s.Get("app", "k3999"); !ok {
		t.Fatalf("most recent key should be resident")
	}
	if _, ok, _ := s.Get("app", "k0"); ok {
		t.Fatalf("oldest key should have been evicted")
	}
	st, _ := s.Stats("app")
	if st.Sets != 4000 {
		t.Fatalf("Sets = %d, want 4000", st.Sets)
	}
}

func TestStoreRejectsOversizedValues(t *testing.T) {
	s := New(Config{DefaultMode: AllocDefault, DefaultPolicy: cache.PolicyLRU})
	s.RegisterTenant("app", 8<<20)
	if err := s.Set("app", "big", make([]byte, 2<<20)); err == nil {
		t.Fatalf("values above the largest chunk must be rejected")
	}
}

func TestStoreFlushTenant(t *testing.T) {
	s := New(Config{DefaultMode: AllocCliffhanger})
	defer s.Close()
	s.RegisterTenant("app", 4<<20)
	for i := 0; i < 100; i++ {
		s.Set("app", fmt.Sprintf("k%d", i), []byte("v"))
	}
	if err := s.FlushTenant("app"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Items("app"); n != 0 {
		t.Fatalf("flush left %d items", n)
	}
	if _, ok, _ := s.Get("app", "k1"); ok {
		t.Fatalf("flushed key should be gone")
	}
	if used, _ := s.UsedBytes("app"); used != 0 {
		t.Fatalf("flush left %d used bytes", used)
	}
	if err := s.FlushTenant("ghost"); err == nil {
		t.Fatalf("flush of unknown tenant should error")
	}
}

// TestStoreDelayedFlushAll pins the memcached flush_all <delay> semantics:
// nothing dies before the deadline; once it passes, every item last written
// before it is invalid — including items written after the command — while
// items written after the deadline survive. A later flush_all replaces the
// pending one.
func TestStoreDelayedFlushAll(t *testing.T) {
	clock := int64(1000)
	s := New(Config{
		DefaultMode:     AllocCliffhanger,
		SyncBookkeeping: true,
		Now:             func() int64 { return clock },
	})
	defer s.Close()
	s.RegisterTenant("app", 4<<20)

	s.Set("app", "before", []byte("v"))
	if err := s.FlushAll("app", 5); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("app", "before"); !ok {
		t.Fatalf("item must survive until the flush deadline")
	}
	// Written after the command but before the deadline: dies at the
	// deadline, per memcached's oldest_live rule.
	clock = 1002
	s.Set("app", "during", []byte("v"))

	clock = 1005 // deadline reached
	if _, ok, _ := s.Get("app", "before"); ok {
		t.Fatalf("item from before the flush must be invalid after the deadline")
	}
	if _, ok, _ := s.Get("app", "during"); ok {
		t.Fatalf("item written before the deadline must be invalid too")
	}
	s.Set("app", "after", []byte("v"))
	if _, ok, _ := s.Get("app", "after"); !ok {
		t.Fatalf("item written after the deadline must survive")
	}
	st, _ := s.Stats("app")
	if st.Expired < 2 {
		t.Fatalf("flush-killed records should count as expired, got %d", st.Expired)
	}

	// A replacement flush supersedes the pending one: arm a far deadline,
	// then flush immediately — the pending deadline must be cleared so new
	// writes survive it.
	if err := s.FlushAll("app", 3600); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushAll("app", 0); err != nil {
		t.Fatal(err)
	}
	s.Set("app", "fresh", []byte("v"))
	clock = 1005 + 3600
	if _, ok, _ := s.Get("app", "fresh"); !ok {
		t.Fatalf("immediate flush must cancel the pending delayed deadline")
	}

	// Mutations see the flush too: a dead record is not appendable.
	clock = 10000
	s.Set("app", "mut", []byte("v"))
	if err := s.FlushAll("app", 5); err != nil {
		t.Fatal(err)
	}
	clock = 10005
	if ok, _ := s.Append("app", "mut", []byte("x")); ok {
		t.Fatalf("append must miss a flush-killed record")
	}
	if err := s.FlushAll("ghost", 5); err == nil {
		t.Fatalf("flush of unknown tenant should error")
	}
}

// TestStoreDelayedFlushReaper checks the background reaper sheds
// flush-killed records without any read touching them.
func TestStoreDelayedFlushReaper(t *testing.T) {
	clock := atomic.Int64{}
	clock.Store(100)
	s := New(Config{
		DefaultMode: AllocCliffhanger,
		Now:         func() int64 { return clock.Load() },
	})
	defer s.Close()
	s.RegisterTenant("app", 4<<20)
	for i := 0; i < 200; i++ {
		s.Set("app", fmt.Sprintf("k%d", i), []byte("v"))
	}
	if err := s.FlushAll("app", 5); err != nil {
		t.Fatal(err)
	}
	clock.Store(105)
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, _ := s.Items("app")
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reaper left %d flush-killed items", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := New(Config{DefaultMode: AllocCliffhanger})
	for i := 0; i < 4; i++ {
		if err := s.RegisterTenant(fmt.Sprintf("app%d", i), 2<<20); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			tenant := fmt.Sprintf("app%d", worker%4)
			for i := 0; i < 5000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(2000))
				switch rng.Intn(10) {
				case 0:
					s.Delete(tenant, key)
				case 1, 2, 3:
					s.Set(tenant, key, make([]byte, 64+rng.Intn(512)))
				default:
					s.Get(tenant, key)
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		tenant := fmt.Sprintf("app%d", i)
		used, err := s.UsedBytes(tenant)
		if err != nil {
			t.Fatal(err)
		}
		if used > 2<<20 {
			t.Fatalf("%s over budget after concurrent load: %d", tenant, used)
		}
		st, _ := s.Stats(tenant)
		if st.Requests == 0 {
			t.Fatalf("%s recorded no requests", tenant)
		}
	}
}

// TestStoreValueConsistencyWithQueues checks the critical invariant binding
// the layers: once bookkeeping has settled, every value held by the store is
// tracked as resident by the tenant's queues and vice versa (no leaked
// values after evictions).
func TestStoreValueConsistencyWithQueues(t *testing.T) {
	for _, mode := range []AllocationMode{AllocDefault, AllocCliffhanger, AllocGlobalLRU} {
		for _, syncBk := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/sync=%v", mode, syncBk), func(t *testing.T) {
				s := New(Config{DefaultMode: mode, DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: syncBk})
				defer s.Close()
				if err := s.RegisterTenant("app", 1<<20); err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < 20000; i++ {
					key := fmt.Sprintf("k%d", rng.Intn(5000))
					switch rng.Intn(10) {
					case 0:
						s.Delete("app", key)
					default:
						s.Set("app", key, make([]byte, 200+rng.Intn(800)))
					}
				}
				s.Flush()
				e, _ := s.entry("app")
				type kv struct {
					key  string
					size int64
				}
				var held []kv
				for i := range e.shards {
					sh := &e.shards[i]
					sh.mu.Lock()
					for key, it := range sh.items {
						held = append(held, kv{key, it.size})
					}
					sh.mu.Unlock()
				}
				e.bk.mu.Lock()
				defer e.bk.mu.Unlock()
				// Every stored value's key must still be resident in some
				// queue.
				missing := 0
				for _, h := range held {
					if !e.tenant.Lookup(h.key, h.size) {
						missing++
					}
				}
				if missing > 0 {
					t.Fatalf("%d stored values are not resident in the tenant queues", missing)
				}
				// With the item directory emitting re-admit events, a re-set
				// key never leaves a stale entry in its old class queue, so
				// settled queues track exactly one entry per held value.
				items := 0
				for _, n := range e.tenant.classItems() {
					items += n
				}
				if items != len(held) {
					t.Fatalf("queues track %d items but store holds %d values", items, len(held))
				}
			})
		}
	}
}

// TestStoreSyncBookkeeping exercises the deterministic inline path: the
// does-not-fit error is reported synchronously and no settling is needed.
func TestStoreSyncBookkeeping(t *testing.T) {
	s := New(Config{DefaultMode: AllocDefault, DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: true})
	defer s.Close()
	if err := s.RegisterTenant("app", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("app", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("app", "k"); !ok {
		t.Fatalf("value should be resident")
	}
	st, _ := s.Stats("app")
	if st.Sets != 1 || st.Requests != 1 {
		t.Fatalf("sync bookkeeping should settle immediately: %+v", st)
	}
}

// TestStoreAsyncDoesNotFitDropsValue checks the asynchronous counterpart of
// the does-not-fit error: the set succeeds but the value is dropped once the
// bookkeeper settles the bounced admission.
func TestStoreAsyncDoesNotFitDropsValue(t *testing.T) {
	// A tiny tenant whose largest class cannot hold a near-1-MiB object
	// within its reservation: the admission bounces.
	geom := slab.DefaultGeometry()
	s := New(Config{DefaultMode: AllocDefault, DefaultPolicy: cache.PolicyLRU, Geometry: geom})
	defer s.Close()
	if err := s.RegisterTenant("tiny", 128<<10); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 512<<10)
	if err := s.Set("tiny", "big", big); err != nil {
		t.Fatalf("async set should not report fit errors: %v", err)
	}
	s.Flush()
	if _, ok, _ := s.Get("tiny", "big"); ok {
		t.Fatalf("bounced admission should have dropped the value")
	}
}

// TestStoreSnapshotsRaceWithTraffic hammers one hot tenant from several
// goroutines while concurrently taking stats and queue snapshots; run under
// -race this verifies the bookkeeper serializes all structural access.
func TestStoreSnapshotsRaceWithTraffic(t *testing.T) {
	s := New(Config{DefaultMode: AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
	defer s.Close()
	if err := s.RegisterTenant("hot", 4<<20); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", rng.Intn(4000))
				switch rng.Intn(10) {
				case 0:
					s.Delete("hot", key)
				case 1, 2:
					s.Set("hot", key, make([]byte, 64+rng.Intn(900)))
				default:
					s.Get("hot", key)
				}
			}
		}(w)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Stats("hot"); err != nil {
			t.Error(err)
		}
		snaps, err := s.QueueSnapshots("hot")
		if err != nil {
			t.Error(err)
		}
		var total int64
		for _, q := range snaps {
			total += q.Capacity
		}
		if total == 0 {
			t.Error("snapshot reports zero total capacity")
		}
		if _, err := s.UsedBytes("hot"); err != nil {
			t.Error(err)
		}
		if _, err := s.ClassCapacities("hot"); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkStoreGetSet measures hot-path Get/Set throughput (90% GET / 10%
// SET over a resident working set) on a single hot tenant at increasing
// goroutine counts, on the byte-keyed entry points the server drives
// (GetItemView, SetItemBytes): reads hand out a zero-copy epoch-pinned view
// of the arena chunk — the shard lock is held only for the directory probe —
// and writes land in recycled chunks. With the striped value shards and
// off-path bookkeeping the per-goroutine streams only meet on the shared
// event channel once per batch, so throughput scales with cores (the
// interesting ratio is goroutines=8 vs goroutines=1 ns/op on a machine with
// >= 8 cores).
func BenchmarkStoreGetSet(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			s := New(Config{DefaultMode: AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
			defer s.Close()
			if err := s.RegisterTenant("hot", 256<<20); err != nil {
				b.Fatal(err)
			}
			value := make([]byte, 256)
			const nKeys = 1 << 15
			keys := make([][]byte, nKeys)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("key-%d", i))
				if err := s.SetItemBytes("hot", keys[i], value, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			s.Flush()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/g + 1
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					var sink byte
					// Stride through a worker-private region of the keyspace
					// so goroutines rarely collide on one key.
					idx := worker * (nKeys / 8)
					for i := 0; i < per; i++ {
						k := keys[(idx+i*7)&(nKeys-1)]
						if i%10 == 0 {
							s.SetItemBytes("hot", k, value, 0, 0)
						} else {
							view, ok, _ := s.GetItemView("hot", k)
							if ok {
								// Touch the borrowed bytes the way the server's
								// writer would consume them.
								sink ^= view.Value[len(view.Value)-1]
								view.Release()
							}
						}
					}
					_ = sink
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkStoreReadMostly is the zero-copy read-path benchmark: 99% GET /
// 1% SET over a resident working set, all reads through GetItemView. Because
// the shard lock is now held only for the directory probe (the value bytes
// are consumed after unlock, under an epoch pin), multi-goroutine runs
// measure how much the shortened critical section buys under read-dominated
// contention — compare ns/op across the goroutine counts against
// BenchmarkStoreGetSet's 90/10 mix.
func BenchmarkStoreReadMostly(b *testing.B) {
	for _, g := range []int{1, 4} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			s := New(Config{DefaultMode: AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
			defer s.Close()
			if err := s.RegisterTenant("hot", 256<<20); err != nil {
				b.Fatal(err)
			}
			value := make([]byte, 256)
			const nKeys = 1 << 15
			keys := make([][]byte, nKeys)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("key-%d", i))
				if err := s.SetItemBytes("hot", keys[i], value, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			s.Flush()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/g + 1
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					var sink byte
					idx := worker * (nKeys / 8)
					for i := 0; i < per; i++ {
						k := keys[(idx+i*7)&(nKeys-1)]
						if i%100 == 0 {
							s.SetItemBytes("hot", k, value, 0, 0)
						} else {
							view, ok, _ := s.GetItemView("hot", k)
							if ok {
								sink ^= view.Value[len(view.Value)-1]
								view.Release()
							}
						}
					}
					_ = sink
				}(w)
			}
			wg.Wait()
		})
	}
}

func BenchmarkStoreSetGetDefault(b *testing.B) {
	benchmarkStore(b, AllocDefault)
}

func BenchmarkStoreSetGetCliffhanger(b *testing.B) {
	benchmarkStore(b, AllocCliffhanger)
}

func benchmarkStore(b *testing.B, mode AllocationMode) {
	s := New(Config{DefaultMode: mode, DefaultPolicy: cache.PolicyLRU})
	if err := s.RegisterTenant("app", 64<<20); err != nil {
		b.Fatal(err)
	}
	value := make([]byte, 256)
	keys := make([]string, 1<<14)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		s.Set("app", keys[i], value)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(len(keys)-1)]
		if i%10 == 0 {
			s.Set("app", k, value)
		} else {
			s.Get("app", k)
		}
	}
}

// TestStoreCrossClassReSet is the regression test for the stale-entry bug:
// re-setting a key at a size that maps to a different slab class must leave
// exactly one structural entry, charge UsedBytes for the new class only, and
// free everything on delete — in both bookkeeping modes and all layouts.
func TestStoreCrossClassReSet(t *testing.T) {
	for _, syncBk := range []bool{true, false} {
		for _, mode := range []AllocationMode{AllocDefault, AllocCliffhanger, AllocGlobalLRU} {
			t.Run(fmt.Sprintf("%s/sync=%v", mode, syncBk), func(t *testing.T) {
				s := New(Config{DefaultMode: mode, DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: syncBk})
				defer s.Close()
				if err := s.RegisterTenant("app", 4<<20); err != nil {
					t.Fatal(err)
				}
				if err := s.Set("app", "k", make([]byte, 64)); err != nil {
					t.Fatal(err)
				}
				// 4 KiB maps to the 8 KiB chunk class, which a cold
				// Cliffhanger queue can admit without growing first.
				large := make([]byte, 4<<10)
				if err := s.Set("app", "k", large); err != nil {
					t.Fatal(err)
				}
				s.Flush()
				e, _ := s.entry("app")
				size := int64(len("k") + len(large))
				class, _ := e.tenant.ClassFor(size)
				want := e.tenant.cost(class, size)
				e.bk.mu.Lock()
				items := 0
				for _, n := range e.tenant.classItems() {
					items += n
				}
				used := e.tenant.UsedBytes()
				e.bk.mu.Unlock()
				if items != 1 {
					t.Fatalf("cross-class re-set left %d structural entries, want 1", items)
				}
				if used != want {
					t.Fatalf("UsedBytes = %d, want the new charge %d", used, want)
				}
				if v, ok, _ := s.Get("app", "k"); !ok || len(v) != len(large) {
					t.Fatalf("re-set value not readable: ok=%v len=%d", ok, len(v))
				}
				if deleted, _ := s.Delete("app", "k"); !deleted {
					t.Fatalf("delete should find the key")
				}
				s.Flush()
				if used, _ := s.UsedBytes("app"); used != 0 {
					t.Fatalf("delete left %d used bytes", used)
				}
				if n, _ := s.Items("app"); n != 0 {
					t.Fatalf("delete left %d items", n)
				}
			})
		}
	}
}

// TestStoreCrossClassReSetConcurrent hammers a small key set with re-sets
// alternating between two slab classes from many goroutines (run under
// -race in CI); once settled, the structural entries, the item records and
// UsedBytes must agree exactly.
func TestStoreCrossClassReSetConcurrent(t *testing.T) {
	for _, syncBk := range []bool{false, true} {
		t.Run(fmt.Sprintf("sync=%v", syncBk), func(t *testing.T) {
			s := New(Config{DefaultMode: AllocCliffhanger, DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: syncBk})
			defer s.Close()
			if err := s.RegisterTenant("app", 16<<20); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(worker)))
					for i := 0; i < 3000; i++ {
						key := fmt.Sprintf("k%d", rng.Intn(200))
						switch rng.Intn(4) {
						case 0:
							s.Set("app", key, make([]byte, 64))
						case 1:
							s.Set("app", key, make([]byte, 8<<10))
						case 2:
							s.Get("app", key)
						default:
							s.Delete("app", key)
						}
					}
				}(w)
			}
			wg.Wait()
			s.Flush()
			e, _ := s.entry("app")
			var (
				held     int
				wantUsed int64
			)
			for i := range e.shards {
				sh := &e.shards[i]
				sh.mu.Lock()
				for _, it := range sh.items {
					held++
					class, _ := e.tenant.ClassFor(it.size)
					wantUsed += e.tenant.cost(class, it.size)
				}
				sh.mu.Unlock()
			}
			e.bk.mu.Lock()
			items := 0
			for _, n := range e.tenant.classItems() {
				items += n
			}
			used := e.tenant.UsedBytes()
			e.bk.mu.Unlock()
			if items != held {
				t.Fatalf("queues track %d entries but store holds %d records", items, held)
			}
			if used != wantUsed {
				t.Fatalf("UsedBytes = %d but live records charge %d", used, wantUsed)
			}
		})
	}
}

// TestStoreExpiry covers the lazy TTL path: relative and absolute deadlines,
// immediate expiry, touch extensions, and the expired counter — in both
// bookkeeping modes, against a stubbed clock.
func TestStoreExpiry(t *testing.T) {
	for _, syncBk := range []bool{true, false} {
		t.Run(fmt.Sprintf("sync=%v", syncBk), func(t *testing.T) {
			var now atomic.Int64
			now.Store(1_000_000)
			s := New(Config{
				DefaultMode:     AllocDefault,
				DefaultPolicy:   cache.PolicyLRU,
				SyncBookkeeping: syncBk,
				Now:             func() int64 { return now.Load() },
			})
			defer s.Close()
			if err := s.RegisterTenant("app", 4<<20); err != nil {
				t.Fatal(err)
			}
			if err := s.SetItem("app", "k", []byte("v"), 7, 50); err != nil {
				t.Fatal(err)
			}
			it, ok, _ := s.GetItem("app", "k")
			if !ok || it.Flags != 7 || string(it.Value) != "v" {
				t.Fatalf("live item = %+v ok=%v", it, ok)
			}
			now.Add(49)
			if _, ok, _ := s.Get("app", "k"); !ok {
				t.Fatalf("item expired early")
			}
			now.Add(1)
			if _, ok, _ := s.Get("app", "k"); ok {
				t.Fatalf("item must expire at its deadline")
			}
			s.Flush()
			if used, _ := s.UsedBytes("app"); used != 0 {
				t.Fatalf("expiry left %d used bytes", used)
			}
			st, _ := s.Stats("app")
			if st.Expired != 1 {
				t.Fatalf("Expired = %d, want 1", st.Expired)
			}
			if st.Deletes != 0 {
				t.Fatalf("expiry must not count as a delete: %d", st.Deletes)
			}

			// exptime 0 never expires; negative exptime is already dead.
			if err := s.SetItem("app", "forever", []byte("v"), 0, 0); err != nil {
				t.Fatal(err)
			}
			if err := s.SetItem("app", "dead", []byte("v"), 0, -1); err != nil {
				t.Fatal(err)
			}
			now.Add(maxRelativeExpiry + 1)
			if _, ok, _ := s.Get("app", "forever"); !ok {
				t.Fatalf("exptime 0 must never expire")
			}
			if _, ok, _ := s.Get("app", "dead"); ok {
				t.Fatalf("negative exptime must be dead on arrival")
			}

			// Large exptimes are absolute unix timestamps.
			deadline := now.Load() + 100
			if err := s.SetItem("app", "abs", []byte("v"), 0, deadline); err != nil {
				t.Fatal(err)
			}
			now.Store(deadline - 1)
			if _, ok, _ := s.Get("app", "abs"); !ok {
				t.Fatalf("absolute deadline expired early")
			}
			now.Store(deadline)
			if _, ok, _ := s.Get("app", "abs"); ok {
				t.Fatalf("absolute deadline not honored")
			}

			// Touch extends a TTL and reports missing keys.
			if err := s.SetItem("app", "t", []byte("v"), 0, 10); err != nil {
				t.Fatal(err)
			}
			if found, _ := s.Touch("app", "t", 500); !found {
				t.Fatalf("touch should find the key")
			}
			now.Add(100)
			if _, ok, _ := s.Get("app", "t"); !ok {
				t.Fatalf("touched key should outlive its original TTL")
			}
			if found, _ := s.Touch("app", "missing", 500); found {
				t.Fatalf("touch of a missing key should report false")
			}
		})
	}
}

// TestStoreExpiryReaper checks that the background reaper reclaims expired
// items without any client access: the drain loop's incremental scan must
// shed them within a few sweep intervals.
func TestStoreExpiryReaper(t *testing.T) {
	var now atomic.Int64
	now.Store(1_000_000)
	s := New(Config{
		DefaultMode:   AllocDefault,
		DefaultPolicy: cache.PolicyLRU,
		Now:           func() int64 { return now.Load() },
	})
	defer s.Close()
	if err := s.RegisterTenant("app", 4<<20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := s.SetItem("app", fmt.Sprintf("k%d", i), []byte("v"), 0, 10); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if n, _ := s.Items("app"); n != 500 {
		t.Fatalf("expected 500 live items, got %d", n)
	}
	now.Add(11)
	// Generous deadline: under -race on a loaded single-CPU box the drain
	// goroutine's ticks (and with them the reaper passes) can be starved
	// for whole seconds.
	deadline := time.Now().Add(20 * time.Second)
	for {
		n, _ := s.Items("app")
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reaper left %d expired items after 20s", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if used, _ := s.UsedBytes("app"); used != 0 {
		t.Fatalf("reaper left %d used bytes", used)
	}
	st, _ := s.Stats("app")
	if st.Expired != 500 {
		t.Fatalf("Expired = %d, want 500", st.Expired)
	}
}

// TestStoreVerbSemantics exercises the memcached storage-verb semantics at
// the store layer with deterministic synchronous bookkeeping.
func TestStoreVerbSemantics(t *testing.T) {
	s := New(Config{DefaultMode: AllocDefault, DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: true})
	defer s.Close()
	if err := s.RegisterTenant("app", 4<<20); err != nil {
		t.Fatal(err)
	}

	// add: stored only when absent.
	if stored, _ := s.Add("app", "a", []byte("1"), 0, 0); !stored {
		t.Fatalf("add of fresh key should store")
	}
	if stored, _ := s.Add("app", "a", []byte("2"), 0, 0); stored {
		t.Fatalf("add of existing key should not store")
	}
	if v, _, _ := s.Get("app", "a"); string(v) != "1" {
		t.Fatalf("failed add clobbered the value: %q", v)
	}

	// replace: stored only when present.
	if stored, _ := s.Replace("app", "missing", []byte("x"), 0, 0); stored {
		t.Fatalf("replace of missing key should not store")
	}
	if stored, _ := s.Replace("app", "a", []byte("3"), 9, 0); !stored {
		t.Fatalf("replace of existing key should store")
	}
	it, _, _ := s.GetItem("app", "a")
	if string(it.Value) != "3" || it.Flags != 9 {
		t.Fatalf("replace result = %+v", it)
	}

	// append/prepend: concatenate, keep flags, fail on missing keys.
	if ok, _ := s.Append("app", "missing", []byte("x")); ok {
		t.Fatalf("append to missing key should fail")
	}
	if ok, _ := s.Append("app", "a", []byte("-tail")); !ok {
		t.Fatalf("append should succeed")
	}
	if ok, _ := s.Prepend("app", "a", []byte("head-")); !ok {
		t.Fatalf("prepend should succeed")
	}
	it, _, _ = s.GetItem("app", "a")
	if string(it.Value) != "head-3-tail" || it.Flags != 9 {
		t.Fatalf("append/prepend result = %q flags=%d", it.Value, it.Flags)
	}

	// cas: stored with the current token, EXISTS after a mutation,
	// NOT_FOUND for absent keys.
	_, cas, _, _ := s.GetWithCAS("app", "a")
	if res, _ := s.CompareAndSwap("app", "a", []byte("swapped"), 0, 0, cas); res != CASStored {
		t.Fatalf("cas with current token = %v", res)
	}
	if res, _ := s.CompareAndSwap("app", "a", []byte("late"), 0, 0, cas); res != CASExists {
		t.Fatalf("cas with stale token = %v", res)
	}
	if res, _ := s.CompareAndSwap("app", "missing", []byte("x"), 0, 0, 1); res != CASNotFound {
		t.Fatalf("cas of missing key = %v", res)
	}
	if v, _, _ := s.Get("app", "a"); string(v) != "swapped" {
		t.Fatalf("cas result = %q", v)
	}

	// incr/decr: uint64 arithmetic clamped at zero, NOT_FOUND on missing,
	// ErrNotNumeric on garbage.
	s.Set("app", "n", []byte("10"))
	if v, found, err := s.Incr("app", "n", 5); err != nil || !found || v != 15 {
		t.Fatalf("incr = %d %v %v", v, found, err)
	}
	if v, found, err := s.Decr("app", "n", 100); err != nil || !found || v != 0 {
		t.Fatalf("decr should clamp at zero: %d %v %v", v, found, err)
	}
	if _, found, _ := s.Incr("app", "missing", 1); found {
		t.Fatalf("incr of missing key should report not found")
	}
	if _, _, err := s.Incr("app", "a", 1); err != ErrNotNumeric {
		t.Fatalf("incr of non-numeric value = %v", err)
	}

	// touch accounting is separate from the GET hit rate.
	before, _ := s.Stats("app")
	if found, _ := s.Touch("app", "n", 0); !found {
		t.Fatalf("touch should find the key")
	}
	if found, _ := s.Touch("app", "missing", 0); found {
		t.Fatalf("touch of missing key should report false")
	}
	after, _ := s.Stats("app")
	if after.Requests != before.Requests {
		t.Fatalf("touch must not count into GET requests: %d -> %d", before.Requests, after.Requests)
	}
	if after.Touches != before.Touches+2 || after.TouchHits != before.TouchHits+1 {
		t.Fatalf("touch counters = %d/%d, want %d/%d", after.Touches, after.TouchHits, before.Touches+2, before.TouchHits+1)
	}
}

// TestTenantSelfBounceNotCountedAsEviction pins the fix for classEvict: an
// item too big for its queue bounces back as its own victim and must not
// count as an eviction.
func TestTenantSelfBounceNotCountedAsEviction(t *testing.T) {
	geom := slab.DefaultGeometry()
	bigClass, _ := geom.ClassFor(16 << 10)
	cfg := testConfig(AllocStatic, 4)
	// Give the big class a budget below one chunk so every admission
	// bounces.
	cfg.StaticClassBytes = map[int]int64{bigClass: 1}
	tenant, err := NewTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victims := tenant.Admit("big", 16<<10)
	if len(victims) != 1 || victims[0].Key != "big" {
		t.Fatalf("expected a self-bounce, got %v", victims)
	}
	for _, c := range tenant.Stats().Classes {
		if c.Evictions != 0 {
			t.Fatalf("self-bounce counted as eviction in class %d: %+v", c.Class, c)
		}
	}
	// A real eviction of a neighbor still counts.
	small := testConfig(AllocStatic, 4)
	smallClass, _ := geom.ClassFor(64)
	small.StaticClassBytes = map[int]int64{smallClass: geom.ChunkSize(smallClass)}
	tenant2, err := NewTenant(small)
	if err != nil {
		t.Fatal(err)
	}
	tenant2.Admit("one", 64)
	tenant2.Admit("two", 64)
	var evictions int64
	for _, c := range tenant2.Stats().Classes {
		evictions += c.Evictions
	}
	if evictions != 1 {
		t.Fatalf("evicting a neighbor should count once, got %d", evictions)
	}
}
