package store

// Process-wide page allocator: the memory-ownership half of the arena split.
// Every tenant arena used to conjure its own 1 MiB pages with make(), which
// made "move a page from tenant A to tenant B" meaningless — there was no
// shared pool to move it through. Now one pageAllocator per Store owns every
// raw page; arenas lease pages when a class's central freelist runs dry and
// return them when a page migration retires a page or a deleted tenant's
// quarantine drains. Returned pages go on a free pool and are re-leased
// before any new page is made, so tenant churn recycles physical memory
// instead of growing the heap (values are always length-bounded on read, so
// a recycled page's stale bytes are never observable).
//
// Lock order: pa.mu is a leaf below every other lock in the store — lease and
// release are called while holding a stripe or central mutex and never call
// out, so the order cannot invert.

import "sync"

// pageAllocator owns the process's raw slab pages and tracks which tenant
// holds a lease on each.
type pageAllocator struct {
	mu       sync.Mutex
	pageSize int64
	free     [][]byte
	total    int64            // pages ever created and still owned by the pool or a lease
	leased   map[string]int64 // live page leases per tenant
}

func newPageAllocator(pageSize int64) *pageAllocator {
	return &pageAllocator{pageSize: pageSize, leased: make(map[string]int64)}
}

// lease hands owner a zero-or-recycled page, preferring the free pool.
func (pa *pageAllocator) lease(owner string) []byte {
	pa.mu.Lock()
	var page []byte
	if n := len(pa.free); n > 0 {
		page = pa.free[n-1]
		pa.free[n-1] = nil
		pa.free = pa.free[:n-1]
	} else {
		page = make([]byte, pa.pageSize)
		pa.total++
	}
	pa.leased[owner]++
	pa.mu.Unlock()
	return page
}

// release returns one of owner's pages to the free pool. The caller must
// guarantee no live chunk reference into the page survives (the migration
// path drains residents through the event buffers and stragglers through
// quarantine before calling this).
func (pa *pageAllocator) release(owner string, page []byte) {
	pa.mu.Lock()
	pa.free = append(pa.free, page)
	if pa.leased[owner]--; pa.leased[owner] <= 0 {
		delete(pa.leased, owner)
	}
	pa.mu.Unlock()
}

// leaseCount reports how many pages owner currently holds.
func (pa *pageAllocator) leaseCount(owner string) int64 {
	pa.mu.Lock()
	n := pa.leased[owner]
	pa.mu.Unlock()
	return n
}

// PageStats is the process-wide page pool's occupancy snapshot: how many raw
// pages exist, how many sit unleased in the free pool, and how many each
// tenant holds. Served by the stats verb and the daemon's -stats-json dump.
type PageStats struct {
	PageSize   int64
	TotalPages int64
	FreePages  int64
	Leases     map[string]int64
}

func (pa *pageAllocator) stats() PageStats {
	pa.mu.Lock()
	out := PageStats{
		PageSize:   pa.pageSize,
		TotalPages: pa.total,
		FreePages:  int64(len(pa.free)),
		Leases:     make(map[string]int64, len(pa.leased)),
	}
	for owner, n := range pa.leased {
		out.Leases[owner] = n
	}
	pa.mu.Unlock()
	return out
}
