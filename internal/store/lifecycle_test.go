package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/slab"
)

// TestArenaConservationDuringMigration drives one page retirement by hand at
// the arena level and audits the four-state conservation invariant at every
// intermediate step: after publish, after the freelist sweep (chunks parked
// in the migrating state), with the remainder in quarantine, and after the
// final capture returns the page to the process pool.
func TestArenaConservationDuringMigration(t *testing.T) {
	geom := slab.DefaultGeometry()
	pa := newPageAllocator(geom.PageSize)
	a := newArena(geom, 4, pa, "t")
	class, _ := a.classFor(200)
	perPage := int(geom.PageSize / geom.ChunkSize(class))

	// Carve three pages' worth of chunks, then free a third of them so the
	// retiring page holds a mix of used, stripe-cached and quarantined chunks.
	chunks := make([][]byte, 3*perPage)
	for i := range chunks {
		chunks[i] = a.alloc(i%4, class)
	}
	for i := range chunks {
		if i%3 == 0 {
			a.freeChunk(i%4, class, chunks[i])
			chunks[i] = nil
		}
	}
	if err := a.checkConservation(nil); err != nil {
		t.Fatalf("before migration: %v", err)
	}
	pagesBefore := pa.leaseCount("t")

	pages := a.pageRanges()
	if len(pages) < 3 {
		t.Fatalf("carved %d pages, want >= 3", len(pages))
	}
	m := a.startMigration(pages[0])
	if err := a.checkConservation(nil); err != nil {
		t.Fatalf("after publish: %v", err)
	}

	// Sweep the freelists: idle chunks of the page move to the migrating
	// state; the invariant must hold with the migration partially filled.
	a.migrationSweep(m)
	if m.got.Load() == int64(perPage) {
		t.Fatal("sweep alone completed the migration; the page held no used chunks")
	}
	if err := a.checkConservation(nil); err != nil {
		t.Fatalf("mid-migration after sweep: %v", err)
	}

	// Free every remaining chunk. The retiring page's chunks retire into
	// quarantine (or are captured straight off a freelist by a later sweep);
	// either way conservation holds at each step.
	for i, c := range chunks {
		if c != nil {
			a.freeChunk(i%4, class, c)
		}
	}
	if err := a.checkConservation(nil); err != nil {
		t.Fatalf("mid-migration with quarantined chunks: %v", err)
	}

	// Drain: epoch advances let the reclaim redirect hand the page's
	// quarantined chunks to the migration; the sweep re-captures anything
	// that had already landed back on a freelist.
	for i := 0; i < 10 && a.migrating.Load() != nil; i++ {
		a.advanceEpoch()
		a.reclaim()
		if mm := a.migrating.Load(); mm != nil {
			a.migrationSweep(mm)
		}
	}
	if a.migrating.Load() != nil {
		t.Fatalf("migration still in flight after drain: got %d of %d", m.got.Load(), m.want)
	}
	if err := a.checkConservation(nil); err != nil {
		t.Fatalf("after completion: %v", err)
	}
	if got := pa.leaseCount("t"); got != pagesBefore-1 {
		t.Fatalf("lease count %d after retiring one page, want %d", got, pagesBefore-1)
	}
	if free := pa.stats().FreePages; free != 1 {
		t.Fatalf("page pool holds %d free pages, want the 1 retired page", free)
	}
}

// TestArenaConservationDuringMigrationPinned is the store-level mid-migration
// audit: every resident value is pinned by a zero-copy reader view, so a
// 50% shrink publishes a page retirement that provably cannot complete —
// the evicted chunks sit in quarantine behind the pins. The audit (directory
// walk, conservation, UsedBytes == live charge) must be exact in that state.
// Releasing the pins must then let the retirement finish and the lease count
// come down to the shrunken footprint.
func TestArenaConservationDuringMigrationPinned(t *testing.T) {
	s := New(Config{DefaultMode: AllocCliffhanger, DefaultPolicy: cache.PolicyLRU, SyncBookkeeping: true})
	defer s.Close()
	if err := s.RegisterTenant("app", 16<<20); err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 900)
	for i := range val {
		val[i] = byte(i)
	}
	nkeys := 0
	for ; ; nkeys++ {
		if err := s.SetItem("app", fmt.Sprintf("k%d", nkeys), val, 0, 0); err != nil {
			t.Fatal(err)
		}
		if used, _ := s.UsedBytes("app"); used > 14<<20 {
			break
		}
	}
	e, _ := s.entry("app")
	leasesBefore := s.PageStats().Leases["app"]
	if leasesBefore < 13 {
		t.Fatalf("fill leased only %d pages", leasesBefore)
	}
	auditArena(t, s, "app")

	// Pin every resident value.
	var views []ItemView
	for i := 0; i < nkeys; i++ {
		view, ok, err := s.GetItemView("app", []byte(fmt.Sprintf("k%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			views = append(views, view)
		}
	}

	if err := s.ResizeTenant("app", 8<<20); err != nil {
		t.Fatal(err)
	}
	if e.arena.migrating.Load() == nil {
		t.Fatal("no page retirement in flight despite pinned readers blocking the drain")
	}
	// The store is quiesced (no traffic) but mid-migration: the audit must
	// hold exactly, with the captured chunks in the migrating column.
	auditArena(t, s, "app")

	for i := range views {
		views[i].Release()
	}
	for i := 0; i < 10000 && e.reconfigureTick(); i++ {
	}
	if m := e.arena.migrating.Load(); m != nil {
		t.Fatalf("migration still in flight after pins released: got %d of %d", m.got.Load(), m.want)
	}
	auditArena(t, s, "app")
	leases := s.PageStats().Leases["app"]
	if target := e.physicalTargetPages(8 << 20); leases > target {
		t.Fatalf("leases %d after shrink, want <= %d", leases, target)
	}
	if leases >= leasesBefore {
		t.Fatalf("shrink retired no pages: %d -> %d", leasesBefore, leases)
	}
	drainQuarantine(t, s, "app")
	auditArena(t, s, "app")
}

// TestTenantResizeShrinkUnderLoad is the acceptance check for live resize: a
// hot tenant is shrunk to 50% while concurrent writers and zero-copy readers
// keep hammering it. No request may fail, pinned views must never tear, and
// the audit (conservation + UsedBytes == live charge) holds before the
// resize, at sampled quiesce points during it, and after it settles — with
// the page leases down to the shrunken footprint at the end.
func TestTenantResizeShrinkUnderLoad(t *testing.T) {
	s := New(Config{DefaultMode: AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
	defer s.Close()
	if err := s.RegisterTenant("hot", 16<<20); err != nil {
		t.Fatal(err)
	}
	const numKeys = 8192
	fill := func(buf []byte, seed byte) {
		buf[0] = seed
		for i := 1; i < len(buf); i++ {
			buf[i] = seed ^ byte(i*7+3)
		}
	}
	val := make([]byte, 1500)
	for i := 0; i < numKeys; i++ {
		fill(val, byte(i))
		if err := s.SetItem("hot", fmt.Sprintf("k%d", i), val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	auditArena(t, s, "hot")
	peakLeases := s.PageStats().Leases["hot"]

	e, _ := s.entry("hot")
	ops := 6000
	if testing.Short() {
		ops = 1500
	}
	storm := func(seed int64) {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 1500)
		sizes := []int{120, 700, 1500}
		for i := 0; i < ops; i++ {
			key := []byte(fmt.Sprintf("k%d", rng.Intn(numKeys)))
			if rng.Intn(100) < 40 {
				v := buf[:sizes[rng.Intn(len(sizes))]]
				fill(v, byte(rng.Intn(256)))
				// Admission under memory pressure may bounce the set; that
				// is an outcome, not a failure.
				_ = s.SetItemBytes("hot", key, v, 0, 0)
				continue
			}
			view, ok, err := s.GetItemView("hot", key)
			if err != nil {
				t.Errorf("get during resize: %v", err)
				continue
			}
			if !ok {
				continue
			}
			seedByte := view.Value[0]
			for j := 1; j < len(view.Value); j++ {
				if view.Value[j] != seedByte^byte(j*7+3) {
					t.Errorf("pinned view torn at byte %d during resize", j)
					break
				}
			}
			view.Release()
		}
	}

	// Round 0 issues the shrink concurrently with the first storm; between
	// rounds the store quiesces and the audit samples the in-flight state.
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				storm(seed)
			}(int64(round*10 + w + 1))
		}
		if round == 0 {
			if err := s.ResizeTenant("hot", 8<<20); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		s.Flush()
		if l := s.PageStats().Leases["hot"]; l > peakLeases {
			peakLeases = l
		}
		// The sampled mid-resize audit: traffic is quiesced, but the drain
		// loop's reconfigure tick still runs every 10ms — holding reconfMu
		// excludes it so the walk observes one consistent in-flight state.
		e.reconfMu.Lock()
		auditArena(t, s, "hot")
		e.reconfMu.Unlock()
	}

	// Settle: drive the reconfigure loop to completion and re-audit.
	deadline := time.Now().Add(10 * time.Second)
	for e.reconfigureTick() {
		if time.Now().After(deadline) {
			t.Fatal("resize did not settle")
		}
	}
	s.Flush()
	auditArena(t, s, "hot")
	leases := s.PageStats().Leases["hot"]
	target := e.physicalTargetPages(8 << 20)
	if leases > target {
		t.Fatalf("leases %d after settling, want <= %d", leases, target)
	}
	// Pages must actually have moved back to the pool (unless the workload
	// never outgrew the shrunken footprint in the first place).
	if peakLeases > target && leases >= peakLeases {
		t.Fatalf("shrink retired no pages: peak %d -> %d", peakLeases, leases)
	}
	if mem := e.tenant.MemoryBytes(); mem != 8<<20 {
		t.Fatalf("structural capacity %d, want %d", mem, 8<<20)
	}
	drainQuarantine(t, s, "hot")
	auditArena(t, s, "hot")
}

// TestReadersVsTenantDelete is the delete-while-pinned torture test: reader
// goroutines hold zero-copy views into a tenant while it is deleted out from
// under them, and a successor tenant immediately floods the store to grab
// any page the pool hands back. The teardown contract — pages return only
// after the dying tenant's quarantine fully drains — means no successor
// write may ever land in a chunk still pinned by a dying reader; the
// self-describing pattern check (and -race) would catch one torn view.
func TestReadersVsTenantDelete(t *testing.T) {
	s := New(Config{DefaultMode: AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
	defer s.Close()
	if err := s.RegisterTenant("dying", 8<<20); err != nil {
		t.Fatal(err)
	}
	const numKeys = 2048
	fill := func(buf []byte, seed byte) {
		buf[0] = seed
		for i := 1; i < len(buf); i++ {
			buf[i] = seed ^ byte(i*7+3)
		}
	}
	val := make([]byte, 900)
	for i := 0; i < numKeys; i++ {
		fill(val, byte(i))
		if err := s.SetItem("dying", fmt.Sprintf("k%d", i), val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			<-start
			for {
				key := []byte(fmt.Sprintf("k%d", rng.Intn(numKeys)))
				view, ok, err := s.GetItemView("dying", key)
				if err != nil {
					return // ErrNoTenant: the delete has landed
				}
				if !ok {
					continue
				}
				// Hold the pin briefly while the teardown races to drain,
				// then verify the borrowed bytes end to end.
				time.Sleep(50 * time.Microsecond)
				seedByte := view.Value[0]
				for j := 1; j < len(view.Value); j++ {
					if view.Value[j] != seedByte^byte(j*7+3) {
						t.Errorf("dying tenant's pinned view torn at byte %d", j)
						break
					}
				}
				view.Release()
			}
		}(int64(r + 1))
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let readers take pins
	if err := s.DeleteTenant("dying"); err != nil {
		t.Fatal(err)
	}

	// The successor floods sets: every page the pool hands back gets
	// recarved and written immediately.
	if err := s.RegisterTenant("heir", 8<<20); err != nil {
		t.Fatal(err)
	}
	hv := make([]byte, 900)
	fill(hv, 0xEE)
	for i := 0; i < numKeys; i++ {
		if err := s.SetItem("heir", fmt.Sprintf("h%d", i), hv, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	// Teardown must converge: every page of the dying tenant back in the
	// pool (or re-leased by the heir), its lease entry gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := s.PageStats().Leases["dying"]; n == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("dying tenant still leases %d pages", n)
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := s.Get("dying", "k0"); err == nil {
		t.Fatal("deleted tenant still serves requests")
	}
	s.Flush()
	auditArena(t, s, "heir")
}
