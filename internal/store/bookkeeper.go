package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cliffhanger/internal/cache"
)

// The bookkeeper moves Cliffhanger's structural accounting — shadow-queue
// updates, hill-climbing credit transfers, cliff-pointer walks and eviction
// decisions — off the request hot path. Request handlers touch only their
// value shard; the structural consequences of each request are described by
// a small event appended to a per-shard buffer (BP-Wrapper style batching),
// and a background goroutine per tenant drains those buffers and replays
// them against the Tenant. The per-request cost on the data plane is a
// striped-lock map operation plus one slice append.
//
// Ordering: a key always hashes to the same shard, and a shard's buffer is
// stolen and applied atomically under that shard's applyMu, so bookkeeping
// for one key is always applied in arrival order. Across keys, the drain
// goroutine's sweep merges all shard buffers back into arrival order using
// per-event sequence stamps, so a settled engine has seen the same global
// admission/eviction sequence a synchronous one would have; only the
// inline-help path under overload applies a single shard's backlog slightly
// ahead of other shards'. An eviction replayed from an old event never
// clobbers a value the client re-set in the meantime: each item record
// remembers whether its own admission event is still pending, and dropVictim
// spares such records (the upcoming re-admission re-establishes their
// structural entry), so a settled engine holds exactly one value per
// structural entry.
//
// Overload behaviour: lookup (GET) events are advisory — they feed hit/miss
// counters and the shadow queues — and are shed once a shard's buffer hits
// its high-water mark. Structural events (SET admissions, DELETEs) are never
// dropped; instead, a producer that finds the buffer past the high-water
// mark applies the backlog inline, so the value table and the eviction
// queues cannot diverge without bound and nobody ever blocks on a channel.

// eventKind identifies a bookkeeping event.
type eventKind uint8

const (
	// evLookup records a GET: hit/miss accounting plus shadow-queue and
	// cliff-pointer updates. Advisory; may be shed under overload.
	evLookup eventKind = iota
	// evTouch records a touch: recency promotion accounted separately from
	// GETs (cmd_touch/touch_hits). Advisory; may be shed under overload.
	evTouch
	// evAdmit records a SET: the key becomes resident and evictions may
	// cascade. Structural; never dropped.
	evAdmit
	// evReAdmit records a SET of a key that already had a record charged at
	// a different size: the stale entry is removed from its old class queue
	// before the new admission (Tenant.ReAdmit). Structural; never dropped.
	evReAdmit
	// evRemove records a DELETE of a resident key. Structural; never
	// dropped.
	evRemove
	// evExpire records the removal of a record whose TTL lapsed (lazy GET
	// check or background reaper). Structural; never dropped.
	evExpire
	// evMigrate records the eviction of a resident whose chunk sits on a
	// retiring page (page-granular migration, migrate.go). Structural; never
	// dropped.
	evMigrate
)

// event is one deferred bookkeeping operation. seq is a per-tenant arrival
// stamp: sweeps merge the shard buffers back into arrival order so eviction
// recency matches what a synchronous engine would have seen. oldSize carries
// the previous charged size of a re-admitted key. keyBuf, when non-nil,
// records that key is a transient view into a pooled buffer (a byte-keyed
// GET-miss event): the replayer must not let the tenant retain it and must
// return the buffer to its home shard once the event is replayed or shed.
type event struct {
	kind    eventKind
	key     string
	size    int64
	oldSize int64
	seq     uint64
	keyBuf  *keyBuf
}

const (
	// eventBatchSize is the buffered-event count at which a producer nudges
	// the drain goroutine.
	eventBatchSize = 32
	// shardBufferHighWater is the buffered-event count past which advisory
	// events are shed and producers apply the backlog inline instead of
	// letting it grow.
	shardBufferHighWater = 256
	// sweepInterval bounds the staleness of buffered events on idle or
	// low-rate tenants: the drain goroutine sweeps all shard buffers this
	// often even without notifications.
	sweepInterval = 10 * time.Millisecond
	// reapShardsPerTick is how many value shards the background expiry
	// reaper scans per drain tick; with 64 shards and a 10 ms tick a full
	// pass over the tenant takes ~160 ms.
	reapShardsPerTick = 4
	// reapScanLimit bounds the records examined per shard per reap so a
	// huge shard never stalls the drain goroutine; Go's randomized map
	// iteration makes successive passes cover different subsets.
	reapScanLimit = 512
)

// bookkeeper owns a tenant's structural state (the Tenant with its eviction
// queues and Cliffhanger manager). All access to the Tenant goes through
// bk.mu, which is what makes stats and snapshots race-free; in asynchronous
// mode a drain goroutine replays buffered events, while in synchronous mode
// callers apply events inline (the deterministic path whose semantics the
// simulator defines).
type bookkeeper struct {
	tenant      *Tenant
	entry       *tenantEntry
	synchronous bool
	// now supplies the expiry clock (unix seconds) for the reaper.
	now func() int64
	// reapCursor is the next shard index the incremental reaper will scan.
	reapCursor int

	// mu guards tenant. The drain goroutine, snapshot readers and inline
	// appliers take it; in synchronous mode every request takes it.
	mu sync.Mutex

	notify chan struct{} // capacity 1; coalesced "buffers are filling" nudge
	stop   chan struct{}
	done   chan struct{}

	closed atomic.Bool

	// seq stamps events with their arrival order across all shards.
	seq atomic.Uint64

	// dropped counts advisory events shed because bookkeeping was
	// saturated.
	dropped atomic.Int64
}

func newBookkeeper(t *Tenant, e *tenantEntry, synchronous bool, now func() int64) *bookkeeper {
	b := &bookkeeper{tenant: t, entry: e, synchronous: synchronous, now: now}
	if !synchronous {
		b.notify = make(chan struct{}, 1)
		b.stop = make(chan struct{})
		b.done = make(chan struct{})
		go b.drainLoop()
	}
	return b
}

// recordAction tells a producer what to do after releasing the shard lock it
// held while buffering an event.
type recordAction uint8

const (
	// actNone: nothing further to do.
	actNone recordAction = iota
	// actNotify: nudge the drain goroutine.
	actNotify
	// actApply: apply the shard's backlog inline before returning — used
	// when the buffer is past its high-water mark, and for every event in
	// synchronous (or closed) mode, where the same buffered path keeps
	// per-key events applying in arrival order without a drain goroutine.
	actApply
)

// bufferLocked stamps ev (writing the assigned sequence back through the
// pointer so callers can tag the shard record they just wrote) and appends
// it to sh's buffer. The caller MUST hold sh.mu and must be the same
// critical section that mutated the shard's items — that is what makes
// per-key event order match per-key value order. The returned action must be
// passed to finish after releasing sh.mu.
//
// Synchronous (and closed-bookkeeper) events go through the very same
// buffer: the producer applies the shard's backlog itself right after
// releasing sh.mu. Buffering even the inline-applied events is what
// serializes same-key events from racing goroutines into arrival order — an
// event applied directly, outside the buffer, could overtake an older
// buffered event for the same key between the shard unlock and the apply.
func (b *bookkeeper) bufferLocked(sh *valueShard, ev *event) recordAction {
	if b.synchronous || b.closed.Load() {
		ev.seq = b.seq.Add(1)
		sh.pending = append(sh.pending, *ev)
		return actApply
	}
	if (ev.kind == evLookup || ev.kind == evTouch) && len(sh.pending) >= shardBufferHighWater {
		if ev.keyBuf != nil {
			// The shed event is the only reference to the pooled key buffer;
			// return it here (sh.mu is held) so overload cannot leak buffers.
			sh.putKeyLocked(ev.keyBuf)
			ev.keyBuf = nil
			ev.key = ""
		}
		b.dropped.Add(1)
		return actNone
	}
	ev.seq = b.seq.Add(1)
	sh.pending = append(sh.pending, *ev)
	switch n := len(sh.pending); {
	case n >= shardBufferHighWater:
		// Structural backlog: help out inline rather than queue further.
		return actApply
	case n == eventBatchSize:
		return actNotify
	}
	return actNone
}

// finish performs the deferred half of bufferLocked. The caller must NOT
// hold any shard lock.
func (b *bookkeeper) finish(sh *valueShard, ev event, act recordAction) {
	switch act {
	case actApply:
		b.applyShard(sh)
	case actNotify:
		select {
		case b.notify <- struct{}{}:
		default:
		}
	}
}

// applyShard atomically steals and replays one shard's buffer. applyMu makes
// steal+apply a single critical section per shard, so two appliers can never
// replay one shard's events out of order. The stolen buffer ping-pongs with
// the shard's spare so steady-state buffering never allocates.
func (b *bookkeeper) applyShard(sh *valueShard) {
	sh.applyMu.Lock()
	sh.mu.Lock()
	batch := sh.pending
	sh.pending = sh.spare[:0]
	sh.spare = nil
	sh.mu.Unlock()
	b.applyEvents(batch)
	sh.mu.Lock()
	sh.spare = batch[:0]
	sh.mu.Unlock()
	sh.applyMu.Unlock()
}

// applyEvents replays events against the tenant, marking each admission as
// applied on its shard record and dropping the values of any keys the tenant
// evicted. Marks and drops are interleaved with the replay (all of it
// serialized by bk.mu), so "is this record's admission still pending?" — the
// criterion dropVictim uses to spare values that a later re-set wrote — is
// evaluated in exact replay order. Shard locks are only ever taken inside
// bk.mu, never the other way around, so the lock order is always bk.mu
// before shard.mu.
func (b *bookkeeper) applyEvents(batch []event) {
	if len(batch) == 0 {
		return
	}
	b.mu.Lock()
	for _, ev := range batch {
		b.applyEventLocked(ev)
	}
	b.mu.Unlock()
}

// applyEventLocked replays one event against the tenant. The caller must
// hold b.mu.
func (b *bookkeeper) applyEventLocked(ev event) {
	var evicted []cache.Victim
	switch ev.kind {
	case evLookup:
		if kb := ev.keyBuf; kb != nil {
			// Pooled-key miss event: the tenant must not retain the transient
			// key string (LookupTransient clones defensively in the
			// can't-happen resident case), and the buffer goes back to its
			// home shard's pool for the next miss.
			b.tenant.LookupTransient(ev.key, ev.size)
			kb.home.mu.Lock()
			kb.home.putKeyLocked(kb)
			kb.home.mu.Unlock()
		} else {
			b.tenant.Lookup(ev.key, ev.size)
		}
	case evTouch:
		b.tenant.Touch(ev.key, ev.size)
	case evAdmit:
		evicted = b.tenant.Admit(ev.key, ev.size)
	case evReAdmit:
		evicted = b.tenant.ReAdmit(ev.key, ev.oldSize, ev.size)
	case evRemove:
		b.tenant.Delete(ev.key, ev.size)
	case evExpire:
		b.tenant.Expire(ev.key, ev.size)
	case evMigrate:
		b.tenant.EvictMigrated(ev.key, ev.size)
	}
	if ev.kind == evAdmit || ev.kind == evReAdmit {
		b.entry.markAdmitted(ev.key, ev.seq)
	}
	for _, v := range evicted {
		b.entry.dropVictim(v.Key)
	}
}

// drainLoop sweeps the shard buffers when nudged by producers and on a
// timer, so low-rate tenants settle within sweepInterval even though their
// buffers never reach a notification boundary.
func (b *bookkeeper) drainLoop() {
	defer close(b.done)
	ticker := time.NewTicker(sweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-b.notify:
			b.sweep()
		case <-ticker.C:
			b.reap()
			b.sweep()
			b.reclaimArena()
			b.reconfigure()
		}
	}
}

// reclaimArena is the background half of epoch-based chunk reclamation: each
// drain tick it advances the global epoch and recycles quarantined chunks
// that every pinned reader has moved past. Skipped entirely while the
// quarantine is empty so an idle tenant's tick stays cheap. Synchronous
// stores have no drain goroutine and rely on the free-pressure reclaim in
// the arena's refill path instead.
func (b *bookkeeper) reclaimArena() {
	a := b.entry.arena
	if a == nil || a.quarantinedChunks() == 0 {
		return
	}
	a.advanceEpoch()
	a.reclaim()
}

// reconfigure advances any pending live-resize work — structural capacity
// steps and page migrations — by one bounded step per drain tick, so a
// tenant_resize executes incrementally off the drain loop and traffic is
// never stalled behind it. The needed check keeps idle ticks at a few atomic
// loads.
func (b *bookkeeper) reconfigure() {
	if b.entry.reconfigureNeeded() {
		b.entry.reconfigureTick()
	}
}

// reap is the incremental background expiry pass: each drain tick it scans
// the next few value shards, drops records whose TTL lapsed (or that a
// delayed flush_all deadline killed), and buffers an expiry event for each
// so the structural removal replays in arrival order with the shard's other
// pending events. Synchronous stores have no drain goroutine and rely on the
// lazy dead check on the read path alone.
func (b *bookkeeper) reap() {
	now := b.now()
	flushAt := b.entry.flushAt.Load()
	shards := b.entry.shards
	for n := 0; n < reapShardsPerTick && n < len(shards); n++ {
		sh := &shards[b.reapCursor]
		b.reapCursor = (b.reapCursor + 1) % len(shards)
		var evs []event
		var acts []recordAction
		sh.mu.Lock()
		scanned := 0
		for key, it := range sh.items {
			if it.deadAt(now, flushAt) {
				delete(sh.items, key)
				ev := event{kind: evExpire, key: key, size: it.size}
				acts = append(acts, b.bufferLocked(sh, &ev))
				evs = append(evs, ev)
				b.entry.freeValueLocked(sh, it.size, it.value)
				sh.putItemLocked(it)
			}
			if scanned++; scanned >= reapScanLimit {
				break
			}
		}
		sh.mu.Unlock()
		for i := range evs {
			b.finish(sh, evs[i], acts[i])
		}
	}
}

// sweep steals every shard's buffer and replays the union in arrival order,
// so a settled engine has seen the same admission/eviction sequence a
// synchronous one would have. All applyMu locks are held (in index order)
// until the merged batch is applied, so a concurrent inline applier cannot
// replay a shard's newer events ahead of the stolen older ones.
func (b *bookkeeper) sweep() {
	shards := b.entry.shards
	var all []event
	for i := range shards {
		shards[i].applyMu.Lock()
		shards[i].mu.Lock()
		all = append(all, shards[i].pending...)
		// The events were copied into the merged batch, so the buffer can be
		// truncated in place (keeping its capacity for reuse).
		shards[i].pending = shards[i].pending[:0]
		shards[i].mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	b.applyEvents(all)
	for i := range shards {
		shards[i].applyMu.Unlock()
	}
}

// flush blocks until every event recorded before the call has been applied:
// buffered events are swept here, and an application already in flight on
// another goroutine completes before the sweep passes its shard (applyMu).
// In synchronous mode each operation applies its own events before
// returning, but the sweep still runs so a concurrent operation caught
// between buffering and applying cannot be missed.
func (b *bookkeeper) flush() {
	b.sweep()
}

// close settles outstanding events and stops the drain goroutine. Events
// recorded after close are applied inline by their callers; close is
// idempotent.
func (b *bookkeeper) close() {
	if b.synchronous || b.closed.Swap(true) {
		return
	}
	close(b.stop)
	<-b.done
	b.sweep()
}
