// Package protocol implements the memcached text protocol the server and
// load generator speak: get/gets, the storage verbs set, add, replace,
// append, prepend and cas, touch, incr/decr, delete, stats, flush_all,
// version, quit, plus a non-standard "tenant" verb that selects the
// application (Memcachier multiplexes tenants per connection after
// authentication; the tenant verb stands in for that handshake).
package protocol

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Command is a parsed client command.
type Command struct {
	// Name is the verb: get, gets, set, add, replace, append, prepend, cas,
	// touch, incr, decr, delete, stats, flush_all, version, quit or tenant.
	Name string
	// Keys holds the key arguments (get may carry several).
	Keys []string
	// Flags and ExpTime are stored opaquely for the storage verbs and touch.
	Flags   uint32
	ExpTime int64
	// CAS is the token argument of the cas verb.
	CAS uint64
	// Delta is the amount argument of incr/decr.
	Delta uint64
	// Data is the payload of a storage verb.
	Data []byte
	// NoReply suppresses the response when true.
	NoReply bool
	// Tenant is the argument of the tenant verb.
	Tenant string
}

// MaxKeyLength is the memcached limit on key length.
const MaxKeyLength = 250

// MaxValueLength is the memcached limit on value size (1 MiB).
const MaxValueLength = 1 << 20

// ErrQuit is returned by ReadCommand when the client sent quit.
var ErrQuit = fmt.Errorf("protocol: client quit")

// ReadCommand reads and parses one command from r.
func ReadCommand(r *bufio.Reader) (*Command, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if line == "" {
		return nil, fmt.Errorf("protocol: empty command")
	}
	fields := strings.Fields(line)
	cmd := &Command{Name: strings.ToLower(fields[0])}
	args := fields[1:]
	switch cmd.Name {
	case "get", "gets":
		if len(args) == 0 {
			return nil, fmt.Errorf("protocol: %s needs at least one key", cmd.Name)
		}
		for _, k := range args {
			if err := validateKey(k); err != nil {
				return nil, err
			}
		}
		cmd.Keys = args
	case "set", "add", "replace", "append", "prepend", "cas":
		want := 4
		if cmd.Name == "cas" {
			want = 5
		}
		if len(args) < 4 {
			return nil, fmt.Errorf("protocol: %s needs <key> <flags> <exptime> <bytes>", cmd.Name)
		}
		// The size is parsed first: once it is known, any other header
		// error still consumes the announced data block, so a malformed
		// storage command can never leave its payload behind to be parsed
		// as subsequent commands (command smuggling / pipeline desync).
		size, err := strconv.Atoi(args[3])
		if err != nil || size < 0 || size > MaxValueLength {
			return nil, fmt.Errorf("protocol: bad bytes %q", args[3])
		}
		fail := func(err error) (*Command, error) {
			if _, cerr := io.CopyN(io.Discard, r, int64(size)+2); cerr != nil {
				return nil, fmt.Errorf("protocol: short data block: %v", cerr)
			}
			return nil, err
		}
		if err := validateKey(args[0]); err != nil {
			return fail(err)
		}
		cmd.Keys = []string{args[0]}
		flags, err := strconv.ParseUint(args[1], 10, 32)
		if err != nil {
			return fail(fmt.Errorf("protocol: bad flags %q", args[1]))
		}
		cmd.Flags = uint32(flags)
		exp, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fail(fmt.Errorf("protocol: bad exptime %q", args[2]))
		}
		cmd.ExpTime = exp
		if cmd.Name == "cas" {
			if len(args) < 5 {
				return fail(fmt.Errorf("protocol: cas needs <key> <flags> <exptime> <bytes> <cas unique>"))
			}
			cas, err := strconv.ParseUint(args[4], 10, 64)
			if err != nil {
				return fail(fmt.Errorf("protocol: bad cas unique %q", args[4]))
			}
			cmd.CAS = cas
		}
		if len(args) > want && args[len(args)-1] == "noreply" {
			cmd.NoReply = true
		}
		data := make([]byte, size+2)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("protocol: short data block: %v", err)
		}
		if data[size] != '\r' || data[size+1] != '\n' {
			return nil, fmt.Errorf("protocol: data block not terminated by CRLF")
		}
		cmd.Data = data[:size]
	case "touch":
		if len(args) < 2 {
			return nil, fmt.Errorf("protocol: touch needs <key> <exptime>")
		}
		if err := validateKey(args[0]); err != nil {
			return nil, err
		}
		cmd.Keys = []string{args[0]}
		exp, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("protocol: bad exptime %q", args[1])
		}
		cmd.ExpTime = exp
		if len(args) > 2 && args[len(args)-1] == "noreply" {
			cmd.NoReply = true
		}
	case "incr", "decr":
		if len(args) < 2 {
			return nil, fmt.Errorf("protocol: %s needs <key> <value>", cmd.Name)
		}
		if err := validateKey(args[0]); err != nil {
			return nil, err
		}
		cmd.Keys = []string{args[0]}
		delta, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("protocol: invalid numeric delta argument %q", args[1])
		}
		cmd.Delta = delta
		if len(args) > 2 && args[len(args)-1] == "noreply" {
			cmd.NoReply = true
		}
	case "delete":
		if len(args) < 1 {
			return nil, fmt.Errorf("protocol: delete needs a key")
		}
		if err := validateKey(args[0]); err != nil {
			return nil, err
		}
		cmd.Keys = []string{args[0]}
		if len(args) > 1 && args[len(args)-1] == "noreply" {
			cmd.NoReply = true
		}
	case "tenant":
		if len(args) != 1 {
			return nil, fmt.Errorf("protocol: tenant needs exactly one name")
		}
		cmd.Tenant = args[0]
	case "stats", "flush_all", "version":
		// no arguments needed
	case "quit":
		return nil, ErrQuit
	default:
		return nil, fmt.Errorf("protocol: unknown command %q", cmd.Name)
	}
	return cmd, nil
}

func validateKey(k string) error {
	if k == "" || len(k) > MaxKeyLength {
		return fmt.Errorf("protocol: invalid key length %d", len(k))
	}
	for i := 0; i < len(k); i++ {
		if k[i] <= ' ' || k[i] == 127 {
			return fmt.Errorf("protocol: key contains control or space characters")
		}
	}
	return nil
}

// readLine reads a CRLF- (or LF-) terminated line without the terminator.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// Value is one value returned to a get/gets request.
type Value struct {
	Key   string
	Flags uint32
	CAS   uint64
	Data  []byte
}

// WriteValues writes the VALUE blocks and the END terminator of a get/gets
// response.
func WriteValues(w *bufio.Writer, values []Value, withCAS bool) error {
	for _, v := range values {
		var err error
		if withCAS {
			_, err = fmt.Fprintf(w, "VALUE %s %d %d %d\r\n", v.Key, v.Flags, len(v.Data), v.CAS)
		} else {
			_, err = fmt.Fprintf(w, "VALUE %s %d %d\r\n", v.Key, v.Flags, len(v.Data))
		}
		if err != nil {
			return err
		}
		if _, err := w.Write(v.Data); err != nil {
			return err
		}
		if _, err := w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	_, err := w.WriteString("END\r\n")
	return err
}

// WriteLine writes a single response line terminated by CRLF.
func WriteLine(w *bufio.Writer, line string) error {
	_, err := w.WriteString(line + "\r\n")
	return err
}

// WriteStats writes STAT lines followed by END.
func WriteStats(w *bufio.Writer, stats map[string]string, order []string) error {
	for _, k := range order {
		if _, err := fmt.Fprintf(w, "STAT %s %s\r\n", k, stats[k]); err != nil {
			return err
		}
	}
	_, err := w.WriteString("END\r\n")
	return err
}

// ParseResponseLine classifies a simple one-line response (STORED, DELETED,
// NOT_FOUND, ERROR ...). EXISTS (a lost cas race) and NOT_STORED are
// negative outcomes, not errors.
func ParseResponseLine(line string) (ok bool, err error) {
	switch {
	case line == "STORED" || line == "DELETED" || line == "OK" || line == "TENANT" || line == "TOUCHED":
		return true, nil
	case line == "NOT_FOUND" || line == "NOT_STORED" || line == "EXISTS":
		return false, nil
	case strings.HasPrefix(line, "ERROR") || strings.HasPrefix(line, "SERVER_ERROR") || strings.HasPrefix(line, "CLIENT_ERROR"):
		return false, fmt.Errorf("protocol: server error: %s", line)
	default:
		return false, fmt.Errorf("protocol: unexpected response %q", line)
	}
}
