// Package protocol implements the memcached text protocol the server and
// load generator speak: get/gets, the storage verbs set, add, replace,
// append, prepend and cas, touch, incr/decr, delete, stats, flush_all,
// version, quit, plus a non-standard "tenant" verb that selects the
// application (Memcachier multiplexes tenants per connection after
// authentication; the tenant verb stands in for that handshake).
//
// The request side is built around Parser, a per-connection zero-copy
// tokenizer: command lines are parsed directly out of the bufio.Reader's
// buffer, keys are []byte slices over that buffer (or over the parser's own
// scratch for storage verbs, whose data block overwrites the buffer), and
// integer fields are converted in place. One command's worth of state lives
// in a single reusable Command owned by the parser, so a steady-state GET
// parses with zero heap allocations.
//
// Allocation discipline (shared with internal/server): the only place a
// request is allowed to allocate in the steady state is the server's map
// insertion of a first-time SET, where the interned key string is born
// (value bytes live in the store's recycled slab-arena chunks). Everything
// else — parsing, response assembly via the Append* helpers, stats
// formatting on the hot verbs — reuses caller-owned scratch.
package protocol

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Command is a parsed client command. Instances returned by Parser.ReadCommand
// are owned by the parser: the struct and every []byte in it (Keys, Data) are
// only valid until the next ReadCommand call.
type Command struct {
	// Name is the verb: get, gets, set, add, replace, append, prepend, cas,
	// touch, incr, decr, delete, stats, flush_all, version, quit or tenant.
	// It always aliases one of the canonical lower-case verb constants, so
	// comparing it against a literal never allocates.
	Name string
	// Keys holds the key arguments (get may carry several). The slices point
	// into parser-owned buffers.
	Keys [][]byte
	// Flags and ExpTime are stored opaquely for the storage verbs and touch;
	// ExpTime also carries flush_all's optional delay.
	Flags   uint32
	ExpTime int64
	// CAS is the token argument of the cas verb.
	CAS uint64
	// Delta is the amount argument of incr/decr.
	Delta uint64
	// Data is the payload of a storage verb, pointing into a parser-owned
	// buffer that is overwritten by the next command.
	Data []byte
	// NoReply suppresses the response when true.
	NoReply bool
	// Tenant is the argument of the tenant verb.
	Tenant string
}

// MaxKeyLength is the memcached limit on key length.
const MaxKeyLength = 250

// MaxValueLength is the memcached limit on value size (1 MiB).
const MaxValueLength = 1 << 20

// ErrQuit is returned by ReadCommand when the client sent quit.
var ErrQuit = errors.New("protocol: client quit")

// ErrLineTooLong is returned when a command line exceeds MaxLineLength. The
// line itself has been consumed, but a storage verb's announced data block
// (whose size field was never parsed) has NOT — the caller must close the
// connection rather than keep parsing, or payload bytes would execute as
// commands (pipeline desync / command smuggling).
var ErrLineTooLong = errors.New("protocol: command line too long")

// ErrBadDataSize is returned when a storage command's <bytes> field cannot
// be parsed or is out of range: the announced data block cannot be located
// in the stream, so — like ErrLineTooLong — the caller must close the
// connection rather than keep parsing.
var ErrBadDataSize = errors.New("protocol: unlocatable data block")

// MaxLineLength caps a single command line (the bound on a multiget's key
// list). Lines up to the reader's buffer size parse zero-copy; longer ones
// fall back to an accumulating buffer up to this cap.
const MaxLineLength = 1 << 20

// Canonical verb names. Parser.ReadCommand sets Command.Name to one of these
// constants (never to a freshly allocated string).
const (
	VerbGet      = "get"
	VerbGets     = "gets"
	VerbSet      = "set"
	VerbAdd      = "add"
	VerbReplace  = "replace"
	VerbAppend   = "append"
	VerbPrepend  = "prepend"
	VerbCas      = "cas"
	VerbTouch    = "touch"
	VerbIncr     = "incr"
	VerbDecr     = "decr"
	VerbDelete   = "delete"
	VerbStats    = "stats"
	VerbFlushAll = "flush_all"
	VerbVersion  = "version"
	VerbQuit     = "quit"
	VerbTenant   = "tenant"

	// Admin verbs for runtime tenant lifecycle. create/resize take
	// "<name> <MB>"; delete takes "<name>". All reply OK or an error line.
	VerbTenantCreate = "tenant_create"
	VerbTenantResize = "tenant_resize"
	VerbTenantDelete = "tenant_delete"
)

// verbs lists every verb for case-insensitive matching. Matching returns the
// canonical constant so Command.Name never allocates.
var verbs = []string{
	VerbGet, VerbGets, VerbSet, VerbAdd, VerbReplace, VerbAppend,
	VerbPrepend, VerbCas, VerbTouch, VerbIncr, VerbDecr, VerbDelete,
	VerbStats, VerbFlushAll, VerbVersion, VerbQuit, VerbTenant,
	VerbTenantCreate, VerbTenantResize, VerbTenantDelete,
}

// Parser reads commands from a bufio.Reader with per-connection reusable
// state. It is not safe for concurrent use; the server owns one per
// connection.
type Parser struct {
	r   *bufio.Reader
	cmd Command
	// keys is the reusable backing array for cmd.Keys.
	keys [][]byte
	// keybuf holds the key of a storage verb, copied out of the command line
	// before the data-block read invalidates it.
	keybuf []byte
	// data is the reusable data-block buffer (payload + trailing CRLF).
	data []byte
	// linebuf accumulates a command line that outgrew the reader's buffer
	// (the slow path for very large multigets; unused in the steady state).
	linebuf []byte
}

// NewParser returns a parser reading from r. Lines within the reader's
// buffer parse zero-copy; longer lines (up to MaxLineLength) are accumulated
// in a parser-owned buffer.
func NewParser(r *bufio.Reader) *Parser {
	return &Parser{r: r}
}

// noreplyToken is the trailing token that suppresses a storage response.
const noreplyToken = "noreply"

// Retention caps for the parser's scratch buffers: steady-state traffic
// never exceeds them (so the zero-allocation path is untouched), while a
// single outsized command — a near-MaxLineLength multiget, a 1 MiB set —
// cannot pin its worst-case memory for the rest of a long-lived connection.
const (
	maxRetainedData = 64 << 10
	maxRetainedLine = 64 << 10
	maxRetainedKeys = 1024
)

// ReadCommand reads and parses one command. The returned Command is owned by
// the parser and valid only until the next call.
func (p *Parser) ReadCommand() (*Command, error) {
	// Shed scratch that an earlier outsized command grew past the retention
	// caps (the previous Command's contents are invalidated by this call
	// anyway).
	if cap(p.data) > maxRetainedData {
		p.data = nil
	}
	if cap(p.linebuf) > maxRetainedLine {
		p.linebuf = nil
	}
	if cap(p.keys) > maxRetainedKeys {
		p.keys = nil
	}
	line, err := p.readLine()
	if err != nil {
		return nil, err
	}
	cmd := &p.cmd
	*cmd = Command{Keys: p.keys[:0]}
	tok, rest := nextToken(line)
	if len(tok) == 0 {
		return nil, fmt.Errorf("protocol: empty command")
	}
	cmd.Name = matchVerb(tok)
	if cmd.Name == "" {
		return nil, fmt.Errorf("protocol: unknown command %q", tok)
	}
	switch cmd.Name {
	case VerbGet, VerbGets:
		for {
			tok, rest = nextToken(rest)
			if len(tok) == 0 {
				break
			}
			if err := validateKey(tok); err != nil {
				return nil, err
			}
			cmd.Keys = append(cmd.Keys, tok)
		}
		p.keys = cmd.Keys[:0]
		if len(cmd.Keys) == 0 {
			return nil, fmt.Errorf("protocol: %s needs at least one key", cmd.Name)
		}
	case VerbSet, VerbAdd, VerbReplace, VerbAppend, VerbPrepend, VerbCas:
		return p.readStorage(cmd, rest)
	case VerbTouch:
		key, exp, ok := p.keyArg(cmd, rest)
		if !ok {
			return nil, fmt.Errorf("protocol: touch needs <key> <exptime>")
		}
		if err := validateKey(key); err != nil {
			return nil, err
		}
		n, ok := parseInt(exp)
		if !ok {
			return nil, fmt.Errorf("protocol: bad exptime %q", exp)
		}
		cmd.ExpTime = n
		cmd.Keys = append(cmd.Keys, key)
		p.keys = cmd.Keys[:0]
	case VerbIncr, VerbDecr:
		key, delta, ok := p.keyArg(cmd, rest)
		if !ok {
			return nil, fmt.Errorf("protocol: %s needs <key> <value>", cmd.Name)
		}
		if err := validateKey(key); err != nil {
			return nil, err
		}
		n, ok := parseUint(delta)
		if !ok {
			return nil, fmt.Errorf("protocol: invalid numeric delta argument %q", delta)
		}
		cmd.Delta = n
		cmd.Keys = append(cmd.Keys, key)
		p.keys = cmd.Keys[:0]
	case VerbDelete:
		key, rest2 := nextToken(rest)
		if len(key) == 0 {
			return nil, fmt.Errorf("protocol: delete needs a key")
		}
		if err := validateKey(key); err != nil {
			return nil, err
		}
		cmd.NoReply = trailingNoReply(rest2)
		cmd.Keys = append(cmd.Keys, key)
		p.keys = cmd.Keys[:0]
	case VerbTenant:
		name, rest2 := nextToken(rest)
		extra, _ := nextToken(rest2)
		if len(name) == 0 || len(extra) != 0 {
			return nil, fmt.Errorf("protocol: tenant needs exactly one name")
		}
		cmd.Tenant = string(name)
	case VerbTenantCreate, VerbTenantResize:
		// tenant_create <name> <MB> / tenant_resize <name> <MB>. The size
		// rides in Delta (megabytes, must be non-zero).
		name, rest2 := nextToken(rest)
		mbTok, rest3 := nextToken(rest2)
		extra, _ := nextToken(rest3)
		if len(name) == 0 || len(mbTok) == 0 || len(extra) != 0 {
			return nil, fmt.Errorf("protocol: %s needs <name> <MB>", cmd.Name)
		}
		mb, ok := parseUint(mbTok)
		if !ok || mb == 0 {
			return nil, fmt.Errorf("protocol: invalid size argument %q", mbTok)
		}
		cmd.Tenant = string(name)
		cmd.Delta = mb
	case VerbTenantDelete:
		name, rest2 := nextToken(rest)
		extra, _ := nextToken(rest2)
		if len(name) == 0 || len(extra) != 0 {
			return nil, fmt.Errorf("protocol: tenant_delete needs exactly one name")
		}
		cmd.Tenant = string(name)
	case VerbFlushAll:
		// flush_all [delay] [noreply] — memcached's optional delayed-flush
		// form. The delay rides in ExpTime (it is converted with the same
		// relative/absolute rules as an exptime).
		tok, rest2 := nextToken(rest)
		if len(tok) != 0 && string(tok) != noreplyToken {
			n, ok := parseInt(tok)
			if !ok {
				return nil, fmt.Errorf("protocol: bad flush_all delay %q", tok)
			}
			cmd.ExpTime = n
			tok, rest2 = nextToken(rest2)
		}
		if string(tok) == noreplyToken {
			cmd.NoReply = true
			tok, _ = nextToken(rest2)
		}
		if len(tok) != 0 {
			return nil, fmt.Errorf("protocol: flush_all takes [delay] [noreply], got %q", tok)
		}
	case VerbStats:
		// stats [sub-command] — e.g. "stats slabs". The optional argument
		// rides in Keys (it points into the parser-owned line buffer, like
		// any key).
		tok, rest2 := nextToken(rest)
		if len(tok) != 0 {
			cmd.Keys = append(cmd.Keys, tok)
			p.keys = cmd.Keys[:0]
			if extra, _ := nextToken(rest2); len(extra) != 0 {
				return nil, fmt.Errorf("protocol: stats takes at most one argument, got %q", extra)
			}
		}
	case VerbVersion:
		// no arguments needed
	case VerbQuit:
		return nil, ErrQuit
	}
	return cmd, nil
}

// keyArg parses the common "<key> <arg> [noreply]" shape of touch/incr/decr,
// setting cmd.NoReply. ok is false when either token is missing.
func (p *Parser) keyArg(cmd *Command, rest []byte) (key, arg []byte, ok bool) {
	key, rest = nextToken(rest)
	arg, rest = nextToken(rest)
	if len(key) == 0 || len(arg) == 0 {
		return nil, nil, false
	}
	cmd.NoReply = trailingNoReply(rest)
	return key, arg, true
}

// readStorage parses the header and data block of a storage verb. The size
// field is parsed first: once it is known, any other header error still
// consumes the announced data block, so a malformed storage command can never
// leave its payload behind to be parsed as subsequent commands (command
// smuggling / pipeline desync).
func (p *Parser) readStorage(cmd *Command, rest []byte) (*Command, error) {
	key, rest := nextToken(rest)
	flagsTok, rest := nextToken(rest)
	expTok, rest := nextToken(rest)
	sizeTok, rest := nextToken(rest)
	if len(sizeTok) == 0 {
		return nil, fmt.Errorf("protocol: %s needs <key> <flags> <exptime> <bytes>", cmd.Name)
	}
	size64, ok := parseInt(sizeTok)
	if !ok || size64 < 0 || size64 > MaxValueLength {
		return nil, fmt.Errorf("protocol: bad bytes %q: %w", sizeTok, ErrBadDataSize)
	}
	size := int(size64)
	fail := func(err error) (*Command, error) {
		if _, cerr := io.CopyN(io.Discard, p.r, int64(size)+2); cerr != nil {
			return nil, fmt.Errorf("protocol: short data block: %v", cerr)
		}
		return nil, err
	}
	if err := validateKey(key); err != nil {
		return fail(err)
	}
	flags, ok := parseUint(flagsTok)
	if !ok || flags > 1<<32-1 {
		return fail(fmt.Errorf("protocol: bad flags %q", flagsTok))
	}
	cmd.Flags = uint32(flags)
	exp, ok := parseInt(expTok)
	if !ok {
		return fail(fmt.Errorf("protocol: bad exptime %q", expTok))
	}
	cmd.ExpTime = exp
	if cmd.Name == VerbCas {
		casTok, rest2 := nextToken(rest)
		if len(casTok) == 0 {
			return fail(fmt.Errorf("protocol: cas needs <key> <flags> <exptime> <bytes> <cas unique>"))
		}
		cas, ok := parseUint(casTok)
		if !ok {
			return fail(fmt.Errorf("protocol: bad cas unique %q", casTok))
		}
		cmd.CAS = cas
		rest = rest2
	}
	cmd.NoReply = trailingNoReply(rest)
	// The key slice points into the reader's buffer, which the data-block
	// read below overwrites: copy it into the parser's scratch first.
	p.keybuf = append(p.keybuf[:0], key...)
	cmd.Keys = append(cmd.Keys, p.keybuf)
	p.keys = cmd.Keys[:0]
	if cap(p.data) < size+2 {
		p.data = make([]byte, size+2)
	}
	block := p.data[:size+2]
	if _, err := io.ReadFull(p.r, block); err != nil {
		return nil, fmt.Errorf("protocol: short data block: %v", err)
	}
	if block[size] != '\r' || block[size+1] != '\n' {
		return nil, fmt.Errorf("protocol: data block not terminated by CRLF")
	}
	cmd.Data = block[:size]
	return cmd, nil
}

// readLine returns the next CRLF- (or LF-) terminated line without its
// terminator. The fast path is a zero-copy slice into the reader's buffer
// (valid until the next read); a line that outgrows the buffer — a very
// large multiget — is accumulated into the parser's own buffer up to
// MaxLineLength. Beyond the cap the line is drained and ErrLineTooLong is
// returned; the caller must then close the connection (see ErrLineTooLong).
func (p *Parser) readLine() ([]byte, error) {
	line, err := p.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		p.linebuf = append(p.linebuf[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = p.r.ReadSlice('\n')
			if len(p.linebuf)+len(line) > MaxLineLength {
				for err == bufio.ErrBufferFull {
					_, err = p.r.ReadSlice('\n')
				}
				if err != nil {
					return nil, fmt.Errorf("protocol: discarding oversized line: %v", err)
				}
				return nil, ErrLineTooLong
			}
			p.linebuf = append(p.linebuf, line...)
		}
		if err != nil {
			return nil, err
		}
		line = p.linebuf
	} else if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// nextToken splits off the next space/tab-separated token of line, collapsing
// runs of separators like strings.Fields does.
func nextToken(line []byte) (tok, rest []byte) {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	j := i
	for j < len(line) && line[j] != ' ' && line[j] != '\t' {
		j++
	}
	return line[i:j], line[j:]
}

// trailingNoReply reports whether the last token of rest is "noreply".
// (Comparing a converted []byte against a string constant does not allocate.)
func trailingNoReply(rest []byte) bool {
	last, r := nextToken(rest)
	for {
		tok, r2 := nextToken(r)
		if len(tok) == 0 {
			break
		}
		last, r = tok, r2
	}
	return string(last) == noreplyToken
}

// matchVerb returns the canonical name for tok (ASCII case-insensitive), or
// "" when tok is not a known verb.
func matchVerb(tok []byte) string {
	for _, v := range verbs {
		if equalFold(tok, v) {
			return v
		}
	}
	return ""
}

// equalFold reports whether b equals the (lower-case) verb s under ASCII
// case folding, without allocating.
func equalFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// parseUint converts a decimal []byte in place (no string conversion, no
// allocation). ok is false on empty input, non-digits or uint64 overflow.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (1<<64-1)/10 || n*10 > 1<<64-1-d {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// parseInt is parseUint with an optional leading sign ('+' accepted to match
// strconv.ParseInt, which the old parser used for exptime and bytes).
func parseInt(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	n, ok := parseUint(b)
	if !ok {
		return 0, false
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n-1) - 1, true
	}
	if n > 1<<63-1 {
		return 0, false
	}
	return int64(n), true
}

func validateKey(k []byte) error {
	if len(k) == 0 || len(k) > MaxKeyLength {
		return fmt.Errorf("protocol: invalid key length %d", len(k))
	}
	for i := 0; i < len(k); i++ {
		if k[i] <= ' ' || k[i] == 127 {
			return fmt.Errorf("protocol: key contains control or space characters")
		}
	}
	return nil
}

// Value is one value returned to a get/gets request.
type Value struct {
	Key   string
	Flags uint32
	CAS   uint64
	Data  []byte
}

// AppendValueHeader appends a "VALUE <key> <flags> <bytes> [<cas>]\r\n" line
// to dst and returns the extended slice. It is the zero-allocation building
// block the server streams GET responses with (dst is per-connection
// scratch).
func AppendValueHeader(dst []byte, key []byte, flags uint32, size int, cas uint64, withCAS bool) []byte {
	dst = append(dst, "VALUE "...)
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(size), 10)
	if withCAS {
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, cas, 10)
	}
	return append(dst, '\r', '\n')
}

// WriteValues writes the VALUE blocks and the END terminator of a get/gets
// response. It is a convenience for callers that already buffered a slice of
// values; the server streams blocks with AppendValueHeader instead.
func WriteValues(w *bufio.Writer, values []Value, withCAS bool) error {
	var scratch []byte
	for _, v := range values {
		scratch = AppendValueHeader(scratch[:0], []byte(v.Key), v.Flags, len(v.Data), v.CAS, withCAS)
		if _, err := w.Write(scratch); err != nil {
			return err
		}
		if _, err := w.Write(v.Data); err != nil {
			return err
		}
		if _, err := w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	_, err := w.WriteString("END\r\n")
	return err
}

// WriteLine writes a single response line terminated by CRLF, without
// allocating.
func WriteLine(w *bufio.Writer, line string) error {
	if _, err := w.WriteString(line); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

// WriteStats writes STAT lines followed by END.
func WriteStats(w *bufio.Writer, stats map[string]string, order []string) error {
	for _, k := range order {
		if _, err := w.WriteString("STAT "); err != nil {
			return err
		}
		if _, err := w.WriteString(k); err != nil {
			return err
		}
		if err := w.WriteByte(' '); err != nil {
			return err
		}
		if err := WriteLine(w, stats[k]); err != nil {
			return err
		}
	}
	_, err := w.WriteString("END\r\n")
	return err
}

// ParseValueLine parses a "VALUE <key> <flags> <bytes> [<cas>]" response
// header in place. The returned key aliases line. withCAS reports whether a
// CAS token was present (a gets response).
func ParseValueLine(line []byte) (key []byte, flags uint32, size int, cas uint64, withCAS bool, err error) {
	tok, rest := nextToken(line)
	if string(tok) != "VALUE" {
		return nil, 0, 0, 0, false, fmt.Errorf("protocol: unexpected get response %q", line)
	}
	key, rest = nextToken(rest)
	flagsTok, rest := nextToken(rest)
	sizeTok, rest := nextToken(rest)
	if len(key) == 0 || len(sizeTok) == 0 {
		return nil, 0, 0, 0, false, fmt.Errorf("protocol: unexpected get response %q", line)
	}
	f, ok := parseUint(flagsTok)
	if !ok || f > 1<<32-1 {
		return nil, 0, 0, 0, false, fmt.Errorf("protocol: bad flags in %q", line)
	}
	sz, ok := parseInt(sizeTok)
	if !ok || sz < 0 || sz > MaxValueLength {
		return nil, 0, 0, 0, false, fmt.Errorf("protocol: bad value size in %q", line)
	}
	casTok, _ := nextToken(rest)
	if len(casTok) > 0 {
		c, ok := parseUint(casTok)
		if !ok {
			return nil, 0, 0, 0, false, fmt.Errorf("protocol: bad cas token in %q", line)
		}
		cas, withCAS = c, true
	}
	return key, uint32(f), int(sz), cas, withCAS, nil
}

// ErrRemote marks an error the server reported in-band (ERROR, SERVER_ERROR,
// CLIENT_ERROR). The connection stays in sync after one — exactly one
// response line was consumed — so callers like the load generator can count
// and continue (e.g. a SET rejected as larger than every slab class) instead
// of tearing the connection down.
var ErrRemote = errors.New("protocol: server reported an error")

// ParseResponseLine classifies a simple one-line response (STORED, DELETED,
// NOT_FOUND, ERROR ...). EXISTS (a lost cas race) and NOT_STORED are
// negative outcomes, not errors; server-reported errors wrap ErrRemote.
func ParseResponseLine(line string) (ok bool, err error) {
	switch {
	case line == "STORED" || line == "DELETED" || line == "OK" || line == "TENANT" || line == "TOUCHED":
		return true, nil
	case line == "NOT_FOUND" || line == "NOT_STORED" || line == "EXISTS":
		return false, nil
	case strings.HasPrefix(line, "ERROR") || strings.HasPrefix(line, "SERVER_ERROR") || strings.HasPrefix(line, "CLIENT_ERROR"):
		return false, fmt.Errorf("%w: %s", ErrRemote, line)
	default:
		return false, fmt.Errorf("protocol: unexpected response %q", line)
	}
}
