package protocol

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// parse runs one ReadCommand over s with a fresh parser.
func parse(s string) (*Command, error) {
	return NewParser(bufio.NewReader(strings.NewReader(s))).ReadCommand()
}

func parser(s string) *Parser {
	return NewParser(bufio.NewReader(strings.NewReader(s)))
}

// key returns cmd.Keys[i] as a string for assertions.
func key(cmd *Command, i int) string { return string(cmd.Keys[i]) }

func TestReadCommandGet(t *testing.T) {
	cmd, err := parse("get a b c\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "get" || len(cmd.Keys) != 3 || key(cmd, 2) != "c" {
		t.Fatalf("parsed %+v", cmd)
	}
	cmd, err = parse("gets k\r\n")
	if err != nil || cmd.Name != "gets" {
		t.Fatalf("gets: %+v %v", cmd, err)
	}
}

func TestReadCommandSet(t *testing.T) {
	cmd, err := parse("set key 7 42 5\r\nhello\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "set" || key(cmd, 0) != "key" || cmd.Flags != 7 || cmd.ExpTime != 42 {
		t.Fatalf("parsed %+v", cmd)
	}
	if string(cmd.Data) != "hello" || cmd.NoReply {
		t.Fatalf("data = %q noreply=%v", cmd.Data, cmd.NoReply)
	}
	cmd, err = parse("set key 0 0 2 noreply\r\nhi\r\n")
	if err != nil || !cmd.NoReply {
		t.Fatalf("noreply not parsed: %+v %v", cmd, err)
	}
	// Leading '+' on the signed fields, as strconv.ParseInt/Atoi accepted.
	cmd, err = parse("set key 0 +42 +5\r\nhello\r\n")
	if err != nil || cmd.ExpTime != 42 || string(cmd.Data) != "hello" {
		t.Fatalf("'+'-signed exptime/bytes: %+v %v", cmd, err)
	}
	// An unparseable size is a connection-fatal error: the data block cannot
	// be located in the stream.
	if _, err := parse("set key 0 0 5x\r\nhello\r\n"); !errors.Is(err, ErrBadDataSize) {
		t.Fatalf("bad bytes should wrap ErrBadDataSize, got %v", err)
	}
	// Binary payloads may contain CR and LF bytes.
	cmd, err = parse("set bin 0 0 4\r\n\r\n\r\n\r\n")
	if err != nil || string(cmd.Data) != "\r\n\r\n" {
		t.Fatalf("binary data = %q %v", cmd.Data, err)
	}
}

func TestReadCommandDeleteAndTenant(t *testing.T) {
	cmd, err := parse("delete k noreply\r\n")
	if err != nil || cmd.Name != "delete" || !cmd.NoReply {
		t.Fatalf("delete: %+v %v", cmd, err)
	}
	cmd, err = parse("tenant app7\r\n")
	if err != nil || cmd.Tenant != "app7" {
		t.Fatalf("tenant: %+v %v", cmd, err)
	}
	for _, verb := range []string{"stats", "flush_all", "version"} {
		cmd, err = parse(verb + "\r\n")
		if err != nil || cmd.Name != verb {
			t.Fatalf("%s: %+v %v", verb, cmd, err)
		}
	}
	if _, err := parse("quit\r\n"); err != ErrQuit {
		t.Fatalf("quit should return ErrQuit, got %v", err)
	}
}

func TestReadCommandTenantLifecycle(t *testing.T) {
	cmd, err := parse("tenant_create app9 16\r\n")
	if err != nil || cmd.Name != VerbTenantCreate || cmd.Tenant != "app9" || cmd.Delta != 16 {
		t.Fatalf("tenant_create: %+v %v", cmd, err)
	}
	cmd, err = parse("tenant_resize app9 8\r\n")
	if err != nil || cmd.Name != VerbTenantResize || cmd.Tenant != "app9" || cmd.Delta != 8 {
		t.Fatalf("tenant_resize: %+v %v", cmd, err)
	}
	cmd, err = parse("tenant_delete app9\r\n")
	if err != nil || cmd.Name != VerbTenantDelete || cmd.Tenant != "app9" {
		t.Fatalf("tenant_delete: %+v %v", cmd, err)
	}
	for _, in := range []string{
		"tenant_create\r\n",            // no args
		"tenant_create app9\r\n",       // missing size
		"tenant_create app9 0\r\n",     // zero size
		"tenant_create app9 x\r\n",     // non-numeric size
		"tenant_create app9 -4\r\n",    // negative size
		"tenant_create app9 16 t\r\n",  // trailing token
		"tenant_resize app9\r\n",       // missing size
		"tenant_resize app9 16 xx\r\n", // trailing token
		"tenant_delete\r\n",            // no name
		"tenant_delete app9 extra\r\n", // trailing token
	} {
		if _, err := parse(in); err == nil {
			t.Errorf("ReadCommand(%q) should fail", in)
		}
	}
}

// TestReadCommandFlushAllArguments covers memcached's optional flush_all
// forms: a delay, noreply, or both — the zero-arg parse above stays the
// common case.
func TestReadCommandFlushAllArguments(t *testing.T) {
	cmd, err := parse("flush_all 5\r\n")
	if err != nil || cmd.ExpTime != 5 || cmd.NoReply {
		t.Fatalf("flush_all 5: %+v %v", cmd, err)
	}
	cmd, err = parse("flush_all noreply\r\n")
	if err != nil || cmd.ExpTime != 0 || !cmd.NoReply {
		t.Fatalf("flush_all noreply: %+v %v", cmd, err)
	}
	cmd, err = parse("flush_all 30 noreply\r\n")
	if err != nil || cmd.ExpTime != 30 || !cmd.NoReply {
		t.Fatalf("flush_all 30 noreply: %+v %v", cmd, err)
	}
	for _, in := range []string{
		"flush_all bogus\r\n",
		"flush_all 5 bogus\r\n",
		"flush_all 5 noreply extra\r\n",
		"flush_all noreply 5\r\n",
	} {
		if _, err := parse(in); err == nil {
			t.Errorf("ReadCommand(%q) should fail", in)
		}
	}
}

func TestReadCommandMalformed(t *testing.T) {
	cases := []string{
		"\r\n",    // empty command
		"get\r\n", // get without keys
		"get " + strings.Repeat("k", 251) + "\r\n", // over-long key
		"get bad\x01key\r\n",                       // key with a control character
		"set k 0 0\r\n",                            // too few set args
		"set k x 0 5\r\nhello\r\n",                 // bad flags
		"set k 0 x 5\r\nhello\r\n",                 // bad exptime
		"set k 0 0 -1\r\n",                         // negative size
		"set k 0 0 2097153\r\n",                    // above MaxValueLength
		"set k 0 0 5\r\nhelloXX",                   // data block not CRLF-terminated
		"delete\r\n",                               // delete without key
		"tenant\r\n",                               // tenant without name
		"tenant a b\r\n",                           // tenant with two args
		"warble\r\n",                               // unknown verb
	}
	for _, in := range cases {
		if _, err := parse(in); err == nil {
			t.Errorf("ReadCommand(%q) should fail", in)
		}
	}
}

func TestReadCommandPipelinedSequence(t *testing.T) {
	// Several commands back-to-back on one reader, as a pipelining client
	// would send them: each parse must consume exactly one command.
	p := parser("set a 0 0 1\r\nx\r\nget a b\r\ndelete a\r\nversion\r\n")
	wantNames := []string{"set", "get", "delete", "version"}
	for i, want := range wantNames {
		cmd, err := p.ReadCommand()
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		if cmd.Name != want {
			t.Fatalf("command %d = %q, want %q", i, cmd.Name, want)
		}
	}
	if _, err := p.ReadCommand(); err == nil {
		t.Fatalf("exhausted reader should error")
	}
}

// TestParserReusesCommand pins the zero-allocation contract: the parser hands
// back the same Command across calls, and a steady-state GET parse performs
// no heap allocations.
func TestParserReusesCommand(t *testing.T) {
	p := parser("get a\r\nget b\r\n")
	c1, err := p.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	k1 := key(c1, 0)
	c2, err := p.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("parser should reuse its Command across calls")
	}
	if k1 != "a" || key(c2, 0) != "b" {
		t.Fatalf("keys = %q then %q", k1, key(c2, 0))
	}

	payload := []byte("get key-123\r\n")
	br := bytes.NewReader(payload)
	r := bufio.NewReader(br)
	p = NewParser(r)
	if _, err := p.ReadCommand(); err != nil { // warm the reusable buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		br.Reset(payload)
		r.Reset(br)
		if _, err := p.ReadCommand(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state GET parse allocates %.1f objects/op, want 0", allocs)
	}
}

// TestParserStatsArgument covers the optional stats sub-command: bare stats
// carries no keys, "stats slabs" carries the argument in Keys, and more than
// one argument is rejected.
func TestParserStatsArgument(t *testing.T) {
	p := parser("stats\r\nstats slabs\r\nSTATS SLABS\r\n")
	c, err := p.ReadCommand()
	if err != nil || c.Name != VerbStats || len(c.Keys) != 0 {
		t.Fatalf("bare stats = %+v, %v", c, err)
	}
	c, err = p.ReadCommand()
	if err != nil || c.Name != VerbStats || len(c.Keys) != 1 || key(c, 0) != "slabs" {
		t.Fatalf("stats slabs = %+v, %v", c, err)
	}
	// The verb matches case-insensitively; the argument is passed through
	// as sent (the server compares it literally, like memcached).
	c, err = p.ReadCommand()
	if err != nil || c.Name != VerbStats || key(c, 0) != "SLABS" {
		t.Fatalf("STATS SLABS = %+v, %v", c, err)
	}
	if _, err := parser("stats slabs extra\r\n").ReadCommand(); err == nil {
		t.Fatalf("stats with two arguments must be rejected")
	}
}

// TestParserTornCommands drives every command shape through a reader that
// delivers one byte at a time into a minimum-size bufio buffer, so every line
// and data block spans many refills: the tokenizer must reassemble them
// without desyncing.
func TestParserTornCommands(t *testing.T) {
	input := "set torn 7 0 10\r\nAAAABBBBCC\r\n" +
		"get torn other\r\n" +
		"cas c 1 2 3 99 noreply\r\nxyz\r\n" +
		"delete torn\r\n" +
		"version\r\n"
	p := NewParser(bufio.NewReaderSize(iotest{strings.NewReader(input)}, 32))

	cmd, err := p.ReadCommand()
	if err != nil || cmd.Name != "set" || string(cmd.Data) != "AAAABBBBCC" || cmd.Flags != 7 {
		t.Fatalf("set: %+v %v", cmd, err)
	}
	if key(cmd, 0) != "torn" {
		t.Fatalf("set key = %q", key(cmd, 0))
	}
	cmd, err = p.ReadCommand()
	if err != nil || cmd.Name != "get" || len(cmd.Keys) != 2 || key(cmd, 1) != "other" {
		t.Fatalf("get: %+v %v", cmd, err)
	}
	cmd, err = p.ReadCommand()
	if err != nil || cmd.Name != "cas" || cmd.CAS != 99 || !cmd.NoReply || string(cmd.Data) != "xyz" {
		t.Fatalf("cas: %+v %v", cmd, err)
	}
	cmd, err = p.ReadCommand()
	if err != nil || cmd.Name != "delete" {
		t.Fatalf("delete: %+v %v", cmd, err)
	}
	cmd, err = p.ReadCommand()
	if err != nil || cmd.Name != "version" {
		t.Fatalf("version: %+v %v", cmd, err)
	}
}

// iotest delivers at most one byte per Read, forcing bufio refills.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// TestParserMaxLengthKey pins the 250-byte key limit boundary: exactly 250
// bytes parses, 251 does not — for both get and storage verbs.
func TestParserMaxLengthKey(t *testing.T) {
	k250 := strings.Repeat("k", MaxKeyLength)
	cmd, err := parse("get " + k250 + "\r\n")
	if err != nil || key(cmd, 0) != k250 {
		t.Fatalf("250-byte key rejected: %v", err)
	}
	cmd, err = parse("set " + k250 + " 0 0 2\r\nhi\r\n")
	if err != nil || key(cmd, 0) != k250 {
		t.Fatalf("250-byte storage key rejected: %v", err)
	}
	if _, err := parse("get " + k250 + "x\r\n"); err == nil {
		t.Fatalf("251-byte key should fail")
	}
	// An over-long storage key still consumes the data block.
	p := parser("set " + k250 + "x 0 0 2\r\nhi\r\nversion\r\n")
	if _, err := p.ReadCommand(); err == nil {
		t.Fatalf("251-byte storage key should fail")
	}
	if cmd, err := p.ReadCommand(); err != nil || cmd.Name != "version" {
		t.Fatalf("data block leaked after key error: %+v %v", cmd, err)
	}
}

// TestParserOversizedLine: a command line longer than the reader's buffer
// falls back to the accumulating slow path (large multigets keep working); a
// line past MaxLineLength is drained and reported as ErrLineTooLong, after
// which the caller must close the connection (a storage verb's data block
// may still be in the stream).
func TestParserOversizedLine(t *testing.T) {
	// ~10 KiB multiget through a 64-byte reader buffer: parses via linebuf.
	keys := strings.Repeat("key-abcdef ", 1000)
	p := NewParser(bufio.NewReaderSize(strings.NewReader("get "+keys+"\r\nversion\r\n"), 64))
	cmd, err := p.ReadCommand()
	if err != nil || cmd.Name != "get" || len(cmd.Keys) != 1000 || key(cmd, 999) != "key-abcdef" {
		t.Fatalf("large multiget: %v (keys=%d)", err, len(cmd.Keys))
	}
	cmd, err = p.ReadCommand()
	if err != nil || cmd.Name != "version" {
		t.Fatalf("stream desynced after large multiget: %+v %v", cmd, err)
	}

	// A line past MaxLineLength is drained and reported as ErrLineTooLong.
	huge := "get " + strings.Repeat("k ", MaxLineLength/2+64)
	p = NewParser(bufio.NewReaderSize(strings.NewReader(huge+"\r\nversion\r\n"), 64))
	if _, err := p.ReadCommand(); err != ErrLineTooLong {
		t.Fatalf("over-cap line = %v, want ErrLineTooLong", err)
	}
	// The line itself was consumed; the stream continues — but callers must
	// treat ErrLineTooLong as fatal (see the server), since a storage verb's
	// data block could not have been consumed.
	cmd, err = p.ReadCommand()
	if err != nil || cmd.Name != "version" {
		t.Fatalf("over-cap line not drained: %+v %v", cmd, err)
	}
}

// TestParserNoReplyPositions pins where a noreply token is honored: as the
// trailing token of every verb that supports it, and never when it is a key
// or mid-line argument.
func TestParserNoReplyPositions(t *testing.T) {
	honored := []string{
		"set k 0 0 1 noreply\r\nx\r\n",
		"add k 0 0 1 noreply\r\nx\r\n",
		"replace k 0 0 1 noreply\r\nx\r\n",
		"append k 0 0 1 noreply\r\nx\r\n",
		"prepend k 0 0 1 noreply\r\nx\r\n",
		"cas k 0 0 1 9 noreply\r\nx\r\n",
		"touch k 0 noreply\r\n",
		"incr k 1 noreply\r\n",
		"decr k 1 noreply\r\n",
		"delete k noreply\r\n",
	}
	for _, in := range honored {
		cmd, err := parse(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if !cmd.NoReply {
			t.Errorf("%q: noreply not honored", in)
		}
	}
	// "noreply" as a get key is a key, not an option.
	cmd, err := parse("get a noreply\r\n")
	if err != nil || cmd.NoReply || len(cmd.Keys) != 2 || key(cmd, 1) != "noreply" {
		t.Fatalf("get with key 'noreply': %+v %v", cmd, err)
	}
	// Without the trailing token there is no noreply.
	cmd, err = parse("set k 0 0 1\r\nx\r\n")
	if err != nil || cmd.NoReply {
		t.Fatalf("bare set: %+v %v", cmd, err)
	}
}

// TestParserCaseInsensitiveVerbs: verbs match case-insensitively (the old
// parser lowercased them); keys keep their case.
func TestParserCaseInsensitiveVerbs(t *testing.T) {
	cmd, err := parse("GET MixedCaseKey\r\n")
	if err != nil || cmd.Name != "get" || key(cmd, 0) != "MixedCaseKey" {
		t.Fatalf("GET: %+v %v", cmd, err)
	}
	cmd, err = parse("Set k 0 0 1\r\nx\r\n")
	if err != nil || cmd.Name != "set" {
		t.Fatalf("Set: %+v %v", cmd, err)
	}
}

func TestWriteValuesAndStats(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	values := []Value{
		{Key: "a", Data: []byte("one")},
		{Key: "b", Flags: 3, CAS: 9, Data: []byte("two")},
	}
	if err := WriteValues(w, values, true); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	out := buf.String()
	if !strings.Contains(out, "VALUE a 0 3 0\r\none\r\n") ||
		!strings.Contains(out, "VALUE b 3 3 9\r\ntwo\r\n") ||
		!strings.HasSuffix(out, "END\r\n") {
		t.Fatalf("gets response = %q", out)
	}

	buf.Reset()
	if err := WriteValues(w, values[:1], false); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if got := buf.String(); got != "VALUE a 0 3\r\none\r\nEND\r\n" {
		t.Fatalf("get response = %q", got)
	}

	buf.Reset()
	if err := WriteStats(w, map[string]string{"x": "1", "y": "2"}, []string{"y", "x"}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if got := buf.String(); got != "STAT y 2\r\nSTAT x 1\r\nEND\r\n" {
		t.Fatalf("stats = %q", got)
	}
}

func TestAppendValueHeader(t *testing.T) {
	got := string(AppendValueHeader(nil, []byte("k"), 7, 3, 42, true))
	if got != "VALUE k 7 3 42\r\n" {
		t.Fatalf("with cas = %q", got)
	}
	got = string(AppendValueHeader(nil, []byte("k"), 0, 11, 42, false))
	if got != "VALUE k 0 11\r\n" {
		t.Fatalf("without cas = %q", got)
	}
}

func TestParseValueLine(t *testing.T) {
	key, flags, size, cas, withCAS, err := ParseValueLine([]byte("VALUE k 7 3 42"))
	if err != nil || string(key) != "k" || flags != 7 || size != 3 || cas != 42 || !withCAS {
		t.Fatalf("parsed %q %d %d %d %v %v", key, flags, size, cas, withCAS, err)
	}
	key, flags, size, _, withCAS, err = ParseValueLine([]byte("VALUE some-key 0 1024"))
	if err != nil || string(key) != "some-key" || flags != 0 || size != 1024 || withCAS {
		t.Fatalf("parsed %q %d %d %v %v", key, flags, size, withCAS, err)
	}
	for _, bad := range []string{"", "END", "VALUE", "VALUE k", "VALUE k x 3", "VALUE k 0 x", "VALUE k 0 3 x", "VALUE k 0 -1"} {
		if _, _, _, _, _, err := ParseValueLine([]byte(bad)); err == nil {
			t.Errorf("ParseValueLine(%q) should fail", bad)
		}
	}
}

func TestParseResponseLine(t *testing.T) {
	for _, line := range []string{"STORED", "DELETED", "OK", "TENANT"} {
		if ok, err := ParseResponseLine(line); !ok || err != nil {
			t.Errorf("%s should be ok, got %v %v", line, ok, err)
		}
	}
	for _, line := range []string{"NOT_FOUND", "NOT_STORED"} {
		if ok, err := ParseResponseLine(line); ok || err != nil {
			t.Errorf("%s should be not-ok without error, got %v %v", line, ok, err)
		}
	}
	for _, line := range []string{"ERROR", "SERVER_ERROR boom", "CLIENT_ERROR bad", "GIBBERISH"} {
		if _, err := ParseResponseLine(line); err == nil {
			t.Errorf("%s should error", line)
		}
	}
}

func TestReadCommandCas(t *testing.T) {
	cmd, err := parse("cas key 7 42 5 99\r\nhello\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "cas" || key(cmd, 0) != "key" || cmd.Flags != 7 || cmd.ExpTime != 42 || cmd.CAS != 99 {
		t.Fatalf("parsed %+v", cmd)
	}
	if string(cmd.Data) != "hello" || cmd.NoReply {
		t.Fatalf("data = %q noreply=%v", cmd.Data, cmd.NoReply)
	}
	cmd, err = parse("cas key 0 0 2 7 noreply\r\nhi\r\n")
	if err != nil || !cmd.NoReply || cmd.CAS != 7 {
		t.Fatalf("cas noreply: %+v %v", cmd, err)
	}
}

func TestReadCommandAppendPrependVerbs(t *testing.T) {
	for _, verb := range []string{"add", "replace", "append", "prepend"} {
		cmd, err := parse(verb + " k 1 2 3\r\nabc\r\n")
		if err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
		if cmd.Name != verb || string(cmd.Data) != "abc" || cmd.Flags != 1 || cmd.ExpTime != 2 {
			t.Fatalf("%s parsed %+v", verb, cmd)
		}
	}
}

func TestReadCommandTouchIncrDecr(t *testing.T) {
	cmd, err := parse("touch k 300\r\n")
	if err != nil || cmd.Name != "touch" || key(cmd, 0) != "k" || cmd.ExpTime != 300 {
		t.Fatalf("touch: %+v %v", cmd, err)
	}
	cmd, err = parse("touch k 0 noreply\r\n")
	if err != nil || !cmd.NoReply {
		t.Fatalf("touch noreply: %+v %v", cmd, err)
	}
	cmd, err = parse("touch k -1\r\n")
	if err != nil || cmd.ExpTime != -1 {
		t.Fatalf("touch negative exptime: %+v %v", cmd, err)
	}
	cmd, err = parse("incr k 5\r\n")
	if err != nil || cmd.Name != "incr" || cmd.Delta != 5 {
		t.Fatalf("incr: %+v %v", cmd, err)
	}
	cmd, err = parse("decr k 18446744073709551615 noreply\r\n")
	if err != nil || cmd.Name != "decr" || cmd.Delta != 1<<64-1 || !cmd.NoReply {
		t.Fatalf("decr: %+v %v", cmd, err)
	}
	if _, err := parse("incr k 18446744073709551616\r\n"); err == nil {
		t.Fatalf("overflowing delta should fail")
	}
}

func TestReadCommandNewVerbsMalformed(t *testing.T) {
	cases := []string{
		"cas k 0 0 5\r\nhello\r\n",     // cas without token
		"cas k 0 0 5 abc\r\nhello\r\n", // non-numeric token
		"touch k\r\n",                  // touch without exptime
		"touch k abc\r\n",              // bad exptime
		"incr k\r\n",                   // incr without delta
		"incr k -3\r\n",                // negative delta
		"decr k x\r\n",                 // non-numeric delta
		"append k 0 0\r\n",             // too few args
	}
	for _, in := range cases {
		if _, err := parse(in); err == nil {
			t.Errorf("ReadCommand(%q) should fail", in)
		}
	}
}

func TestParseResponseLineNewTokens(t *testing.T) {
	if ok, err := ParseResponseLine("TOUCHED"); !ok || err != nil {
		t.Fatalf("TOUCHED = %v %v", ok, err)
	}
	if ok, err := ParseResponseLine("EXISTS"); ok || err != nil {
		t.Fatalf("EXISTS should be negative without error: %v %v", ok, err)
	}
}

// TestReadCommandMalformedStorageConsumesPayload pins the anti-smuggling
// behavior: a storage command whose header is malformed after the size field
// still consumes its announced data block, so payload bytes are never parsed
// as subsequent commands.
func TestReadCommandMalformedStorageConsumesPayload(t *testing.T) {
	p := parser("cas k 0 0 11 abc\r\nflush_all!!\r\nversion\r\n")
	if _, err := p.ReadCommand(); err == nil {
		t.Fatalf("bad cas token should error")
	}
	cmd, err := p.ReadCommand()
	if err != nil || cmd.Name != "version" {
		t.Fatalf("payload leaked into the command stream: %+v %v", cmd, err)
	}
	// Same for a bad-flags set header.
	p = parser("set k nope 0 9\r\nflush_all\r\ndelete x\r\n")
	if _, err := p.ReadCommand(); err == nil {
		t.Fatalf("bad flags should error")
	}
	cmd, err = p.ReadCommand()
	if err != nil || cmd.Name != "delete" {
		t.Fatalf("payload leaked into the command stream: %+v %v", cmd, err)
	}
	// A cas missing its token entirely also swallows the block.
	p = parser("cas k 0 0 7\r\npayload\r\nversion\r\n")
	if _, err := p.ReadCommand(); err == nil {
		t.Fatalf("missing cas token should error")
	}
	if cmd, err = p.ReadCommand(); err != nil || cmd.Name != "version" {
		t.Fatalf("payload leaked into the command stream: %+v %v", cmd, err)
	}
}
