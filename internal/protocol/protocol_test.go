package protocol

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func reader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestReadCommandGet(t *testing.T) {
	cmd, err := ReadCommand(reader("get a b c\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "get" || len(cmd.Keys) != 3 || cmd.Keys[2] != "c" {
		t.Fatalf("parsed %+v", cmd)
	}
	cmd, err = ReadCommand(reader("gets k\r\n"))
	if err != nil || cmd.Name != "gets" {
		t.Fatalf("gets: %+v %v", cmd, err)
	}
}

func TestReadCommandSet(t *testing.T) {
	cmd, err := ReadCommand(reader("set key 7 42 5\r\nhello\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "set" || cmd.Keys[0] != "key" || cmd.Flags != 7 || cmd.ExpTime != 42 {
		t.Fatalf("parsed %+v", cmd)
	}
	if string(cmd.Data) != "hello" || cmd.NoReply {
		t.Fatalf("data = %q noreply=%v", cmd.Data, cmd.NoReply)
	}
	cmd, err = ReadCommand(reader("set key 0 0 2 noreply\r\nhi\r\n"))
	if err != nil || !cmd.NoReply {
		t.Fatalf("noreply not parsed: %+v %v", cmd, err)
	}
	// Binary payloads may contain CR and LF bytes.
	cmd, err = ReadCommand(reader("set bin 0 0 4\r\n\r\n\r\n\r\n"))
	if err != nil || string(cmd.Data) != "\r\n\r\n" {
		t.Fatalf("binary data = %q %v", cmd.Data, err)
	}
}

func TestReadCommandDeleteAndTenant(t *testing.T) {
	cmd, err := ReadCommand(reader("delete k noreply\r\n"))
	if err != nil || cmd.Name != "delete" || !cmd.NoReply {
		t.Fatalf("delete: %+v %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("tenant app7\r\n"))
	if err != nil || cmd.Tenant != "app7" {
		t.Fatalf("tenant: %+v %v", cmd, err)
	}
	for _, verb := range []string{"stats", "flush_all", "version"} {
		cmd, err = ReadCommand(reader(verb + "\r\n"))
		if err != nil || cmd.Name != verb {
			t.Fatalf("%s: %+v %v", verb, cmd, err)
		}
	}
	if _, err := ReadCommand(reader("quit\r\n")); err != ErrQuit {
		t.Fatalf("quit should return ErrQuit, got %v", err)
	}
}

func TestReadCommandMalformed(t *testing.T) {
	cases := []string{
		"\r\n",    // empty command
		"get\r\n", // get without keys
		"get " + strings.Repeat("k", 251) + "\r\n", // over-long key
		"get bad\x01key\r\n",                       // key with a control character
		"set k 0 0\r\n",                            // too few set args
		"set k x 0 5\r\nhello\r\n",                 // bad flags
		"set k 0 x 5\r\nhello\r\n",                 // bad exptime
		"set k 0 0 -1\r\n",                         // negative size
		"set k 0 0 2097153\r\n",                    // above MaxValueLength
		"set k 0 0 5\r\nhelloXX",                   // data block not CRLF-terminated
		"delete\r\n",                               // delete without key
		"tenant\r\n",                               // tenant without name
		"tenant a b\r\n",                           // tenant with two args
		"warble\r\n",                               // unknown verb
	}
	for _, in := range cases {
		if _, err := ReadCommand(reader(in)); err == nil {
			t.Errorf("ReadCommand(%q) should fail", in)
		}
	}
}

func TestReadCommandPipelinedSequence(t *testing.T) {
	// Several commands back-to-back on one reader, as a pipelining client
	// would send them: each parse must consume exactly one command.
	r := reader("set a 0 0 1\r\nx\r\nget a b\r\ndelete a\r\nversion\r\n")
	wantNames := []string{"set", "get", "delete", "version"}
	for i, want := range wantNames {
		cmd, err := ReadCommand(r)
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		if cmd.Name != want {
			t.Fatalf("command %d = %q, want %q", i, cmd.Name, want)
		}
	}
	if _, err := ReadCommand(r); err == nil {
		t.Fatalf("exhausted reader should error")
	}
}

func TestWriteValuesAndStats(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	values := []Value{
		{Key: "a", Data: []byte("one")},
		{Key: "b", Flags: 3, CAS: 9, Data: []byte("two")},
	}
	if err := WriteValues(w, values, true); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	out := buf.String()
	if !strings.Contains(out, "VALUE a 0 3 0\r\none\r\n") ||
		!strings.Contains(out, "VALUE b 3 3 9\r\ntwo\r\n") ||
		!strings.HasSuffix(out, "END\r\n") {
		t.Fatalf("gets response = %q", out)
	}

	buf.Reset()
	if err := WriteValues(w, values[:1], false); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if got := buf.String(); got != "VALUE a 0 3\r\none\r\nEND\r\n" {
		t.Fatalf("get response = %q", got)
	}

	buf.Reset()
	if err := WriteStats(w, map[string]string{"x": "1", "y": "2"}, []string{"y", "x"}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if got := buf.String(); got != "STAT y 2\r\nSTAT x 1\r\nEND\r\n" {
		t.Fatalf("stats = %q", got)
	}
}

func TestParseResponseLine(t *testing.T) {
	for _, line := range []string{"STORED", "DELETED", "OK", "TENANT"} {
		if ok, err := ParseResponseLine(line); !ok || err != nil {
			t.Errorf("%s should be ok, got %v %v", line, ok, err)
		}
	}
	for _, line := range []string{"NOT_FOUND", "NOT_STORED"} {
		if ok, err := ParseResponseLine(line); ok || err != nil {
			t.Errorf("%s should be not-ok without error, got %v %v", line, ok, err)
		}
	}
	for _, line := range []string{"ERROR", "SERVER_ERROR boom", "CLIENT_ERROR bad", "GIBBERISH"} {
		if _, err := ParseResponseLine(line); err == nil {
			t.Errorf("%s should error", line)
		}
	}
}

func TestReadCommandCas(t *testing.T) {
	cmd, err := ReadCommand(reader("cas key 7 42 5 99\r\nhello\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "cas" || cmd.Keys[0] != "key" || cmd.Flags != 7 || cmd.ExpTime != 42 || cmd.CAS != 99 {
		t.Fatalf("parsed %+v", cmd)
	}
	if string(cmd.Data) != "hello" || cmd.NoReply {
		t.Fatalf("data = %q noreply=%v", cmd.Data, cmd.NoReply)
	}
	cmd, err = ReadCommand(reader("cas key 0 0 2 7 noreply\r\nhi\r\n"))
	if err != nil || !cmd.NoReply || cmd.CAS != 7 {
		t.Fatalf("cas noreply: %+v %v", cmd, err)
	}
}

func TestReadCommandAppendPrependVerbs(t *testing.T) {
	for _, verb := range []string{"add", "replace", "append", "prepend"} {
		cmd, err := ReadCommand(reader(verb + " k 1 2 3\r\nabc\r\n"))
		if err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
		if cmd.Name != verb || string(cmd.Data) != "abc" || cmd.Flags != 1 || cmd.ExpTime != 2 {
			t.Fatalf("%s parsed %+v", verb, cmd)
		}
	}
}

func TestReadCommandTouchIncrDecr(t *testing.T) {
	cmd, err := ReadCommand(reader("touch k 300\r\n"))
	if err != nil || cmd.Name != "touch" || cmd.Keys[0] != "k" || cmd.ExpTime != 300 {
		t.Fatalf("touch: %+v %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("touch k 0 noreply\r\n"))
	if err != nil || !cmd.NoReply {
		t.Fatalf("touch noreply: %+v %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("incr k 5\r\n"))
	if err != nil || cmd.Name != "incr" || cmd.Delta != 5 {
		t.Fatalf("incr: %+v %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("decr k 18446744073709551615 noreply\r\n"))
	if err != nil || cmd.Name != "decr" || cmd.Delta != 1<<64-1 || !cmd.NoReply {
		t.Fatalf("decr: %+v %v", cmd, err)
	}
}

func TestReadCommandNewVerbsMalformed(t *testing.T) {
	cases := []string{
		"cas k 0 0 5\r\nhello\r\n",     // cas without token
		"cas k 0 0 5 abc\r\nhello\r\n", // non-numeric token
		"touch k\r\n",                  // touch without exptime
		"touch k abc\r\n",              // bad exptime
		"incr k\r\n",                   // incr without delta
		"incr k -3\r\n",                // negative delta
		"decr k x\r\n",                 // non-numeric delta
		"append k 0 0\r\n",             // too few args
	}
	for _, in := range cases {
		if _, err := ReadCommand(reader(in)); err == nil {
			t.Errorf("ReadCommand(%q) should fail", in)
		}
	}
}

func TestParseResponseLineNewTokens(t *testing.T) {
	if ok, err := ParseResponseLine("TOUCHED"); !ok || err != nil {
		t.Fatalf("TOUCHED = %v %v", ok, err)
	}
	if ok, err := ParseResponseLine("EXISTS"); ok || err != nil {
		t.Fatalf("EXISTS should be negative without error: %v %v", ok, err)
	}
}

// TestReadCommandMalformedStorageConsumesPayload pins the anti-smuggling
// behavior: a storage command whose header is malformed after the size field
// still consumes its announced data block, so payload bytes are never parsed
// as subsequent commands.
func TestReadCommandMalformedStorageConsumesPayload(t *testing.T) {
	r := reader("cas k 0 0 11 abc\r\nflush_all!!\r\nversion\r\n")
	if _, err := ReadCommand(r); err == nil {
		t.Fatalf("bad cas token should error")
	}
	cmd, err := ReadCommand(r)
	if err != nil || cmd.Name != "version" {
		t.Fatalf("payload leaked into the command stream: %+v %v", cmd, err)
	}
	// Same for a bad-flags set header.
	r = reader("set k nope 0 9\r\nflush_all\r\ndelete x\r\n")
	if _, err := ReadCommand(r); err == nil {
		t.Fatalf("bad flags should error")
	}
	cmd, err = ReadCommand(r)
	if err != nil || cmd.Name != "delete" {
		t.Fatalf("payload leaked into the command stream: %+v %v", cmd, err)
	}
	// A cas missing its token entirely also swallows the block.
	r = reader("cas k 0 0 7\r\npayload\r\nversion\r\n")
	if _, err := ReadCommand(r); err == nil {
		t.Fatalf("missing cas token should error")
	}
	if cmd, err = ReadCommand(r); err != nil || cmd.Name != "version" {
		t.Fatalf("payload leaked into the command stream: %+v %v", cmd, err)
	}
}
