package protocol

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

// fuzzCorpus seeds the fuzzer with the protocol-conformance corpus: every
// verb the server speaks, in the exact shapes the conformance suite sends,
// plus known-nasty shapes (torn headers, binary payloads, malformed storage
// headers whose data blocks must still be consumed).
var fuzzCorpus = []string{
	"set k 5 0 5\r\nhello\r\n",
	"get k\r\n",
	"gets k\r\n",
	"get a b c d\r\n",
	"add fresh 0 0 1\r\nx\r\n",
	"replace k 6 0 3\r\nnew\r\n",
	"append k 0 0 1\r\n!\r\n",
	"prepend k 0 0 1\r\n>\r\n",
	"cas k 0 0 3 42\r\ncc1\r\n",
	"touch k 100\r\n",
	"incr n 5\r\n",
	"decr n 100\r\n",
	"delete k\r\n",
	"tenant app2\r\n",
	"tenant_create app9 16\r\n",
	"tenant_resize app9 8\r\n",
	"tenant_delete app9\r\n",
	"tenant_create app9 0\r\n",
	"tenant_create app9\r\n",
	"tenant_resize app9 16 extra\r\n",
	"tenant_delete\r\n",
	"tenant_create app9 99999999999999999999\r\n",
	"stats\r\n",
	"flush_all\r\n",
	"version\r\n",
	"quit\r\n",
	"set quiet 0 0 1 noreply\r\nq\r\nget quiet\r\n",
	"set dead 0 -1 1\r\nx\r\n",
	"set bin 0 0 4\r\n\r\n\r\n\r\n",
	"cas k 0 0 11 abc\r\nflush_all!!\r\nversion\r\n",
	"set k nope 0 9\r\nflush_all\r\ndelete x\r\n",
	"set k 0 0 2097153\r\nboom\r\n",
	"get " + strings.Repeat("k", 251) + "\r\n",
	"GET UPPER\r\n",
	"\r\n",
	"warble\r\n",
	// Chaos-proxy replay shapes: a storage command torn at every kind of
	// byte boundary (mid-verb, mid-header, at the header/payload seam,
	// mid-payload, mid-terminator). The chaos suite replays these tears over
	// live connections; the seeds keep the parser-level fuzzer exploring the
	// same truncation space.
	"se",
	"set tornkey 0",
	"set tornkey 0 0 5",
	"set tornkey 0 0 5\r",
	"set tornkey 0 0 5\r\n",
	"set tornkey 0 0 5\r\nhe",
	"set tornkey 0 0 5\r\nhello",
	"set tornkey 0 0 5\r\nhello\r",
	"get tornk",
	"cas k 0 0 3 4",
}

// FuzzParser feeds arbitrary byte streams to the zero-copy parser and checks
// the safety contract: it never panics, always makes forward progress (so a
// malicious stream cannot wedge a connection handler in a hot loop), and
// every parsed command satisfies the invariants the server relies on (a
// canonical verb name, validated key lengths, bounded data).
func FuzzParser(f *testing.F) {
	for _, seed := range fuzzCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		p := NewParser(bufio.NewReaderSize(bytes.NewReader(in), 128))
		// Every ReadCommand consumes at least one byte (or reports EOF), so
		// len(in)+2 iterations must drain any input.
		for i := 0; i < len(in)+2; i++ {
			cmd, err := p.ReadCommand()
			if err != nil {
				if err == ErrQuit {
					continue // quit is not a stream error; parsing goes on
				}
				if err == io.EOF || strings.Contains(err.Error(), "EOF") {
					return
				}
				continue // protocol error: the stream stays usable
			}
			if cmd.Name == "" {
				t.Fatalf("command with empty canonical name: %+v", cmd)
			}
			for _, k := range cmd.Keys {
				if len(k) == 0 || len(k) > MaxKeyLength {
					t.Fatalf("invalid key length %d escaped validation", len(k))
				}
			}
			if len(cmd.Data) > MaxValueLength {
				t.Fatalf("data block of %d bytes exceeds MaxValueLength", len(cmd.Data))
			}
		}
		t.Fatalf("parser made no forward progress on a %d-byte input", len(in))
	})
}

// FuzzParserPipelineSync checks the anti-desync property on two commands: if
// the fuzzer-built first command parses or fails, a well-formed trailing
// "version" command must still be found at the right stream position unless
// the first command legitimately consumed the stream (storage data block,
// quit, or an IO error mid-block).
func FuzzParserPipelineSync(f *testing.F) {
	for _, seed := range fuzzCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, first []byte) {
		if bytes.ContainsAny(first, "\r\n") {
			return // single-line inputs only: the trailing command must stay distinct
		}
		if len(first) >= MaxLineLength {
			return // over-cap lines report ErrLineTooLong and the caller closes
		}
		// Storage verbs consume an announced data block (on success and on
		// header errors alike), which may legitimately swallow the trailing
		// command; the sync property is checked for every other shape.
		verbTok, _ := nextToken(first)
		switch matchVerb(verbTok) {
		case VerbSet, VerbAdd, VerbReplace, VerbAppend, VerbPrepend, VerbCas, VerbQuit:
			return
		}
		in := append(append([]byte{}, first...), []byte("\r\nversion\r\n")...)
		p := NewParser(bufio.NewReaderSize(bytes.NewReader(in), 128))
		if _, err := p.ReadCommand(); err == ErrQuit {
			return
		}
		cmd, err := p.ReadCommand()
		if err != nil || cmd.Name != VerbVersion {
			t.Fatalf("pipeline desynced after %q: %+v %v", first, cmd, err)
		}
	})
}
