package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cliffhanger/internal/store"
)

// TestServerTenantAdminConformance exercises the tenant lifecycle verbs over
// a raw connection: exact replies for the happy paths and the documented
// error shapes for duplicate create, resize/delete of an unknown tenant, and
// malformed argument lines (which must not desync the connection).
func TestServerTenantAdminConformance(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocCliffhanger)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	send := func(s string) {
		t.Helper()
		if _, err := conn.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(want ...string) {
		t.Helper()
		for _, w := range want {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("reading response (want %q): %v", w, err)
			}
			if got := strings.TrimRight(line, "\r\n"); got != w {
				t.Fatalf("response = %q, want %q", got, w)
			}
		}
	}
	expectPrefix := func(prefix string) {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response (want %s...): %v", prefix, err)
		}
		if got := strings.TrimRight(line, "\r\n"); !strings.HasPrefix(got, prefix) {
			t.Fatalf("response = %q, want prefix %q", got, prefix)
		}
	}

	// Create, use, resize, delete: the happy path.
	send("tenant_create app9 16\r\n")
	expect("OK")
	send("tenant app9\r\n")
	expect("TENANT")
	send("set k 0 0 5\r\nhello\r\n")
	expect("STORED")
	send("get k\r\n")
	expect("VALUE k 0 5", "hello", "END")
	send("tenant_resize app9 8\r\n")
	expect("OK")
	send("get k\r\n")
	expect("VALUE k 0 5", "hello", "END")

	// Error cases: each reply is one line and the connection stays usable.
	send("tenant_create app9 16\r\n") // duplicate
	expectPrefix("SERVER_ERROR")
	send("tenant_resize ghost 8\r\n") // unknown tenant
	expectPrefix("SERVER_ERROR")
	send("tenant_delete ghost\r\n") // unknown tenant
	expectPrefix("SERVER_ERROR")
	send("tenant_create app10\r\n") // missing size
	expectPrefix("CLIENT_ERROR")
	send("tenant_create app10 0\r\n") // zero size
	expectPrefix("CLIENT_ERROR")
	send("tenant_create app10 1099511627776\r\n") // size out of int64<<20 range
	expectPrefix("CLIENT_ERROR")
	send("tenant_resize app9\r\n") // missing size
	expectPrefix("CLIENT_ERROR")
	send("tenant_delete\r\n") // missing name
	expectPrefix("CLIENT_ERROR")

	// Delete the live tenant this connection has selected: subsequent
	// traffic fails with SERVER_ERROR, other verbs still work.
	send("tenant_delete app9\r\n")
	expect("OK")
	send("set k2 0 0 1\r\nx\r\n")
	expectPrefix("SERVER_ERROR")
	send("version\r\n")
	expectPrefix("VERSION")
}

// TestServerTenantDeleteWithInFlightTraffic deletes a tenant while client
// connections are mid-traffic against it. Before the delete every request
// must succeed; after it, requests fail with in-band errors (never a torn
// connection), and the tenant's pages drain back to the process pool.
func TestServerTenantDeleteWithInFlightTraffic(t *testing.T) {
	srv, st := startTestServer(t, store.AllocCliffhanger)
	ctl := dialTest(t, srv)
	if err := ctl.TenantCreate("victim", 16); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var (
		deleting atomic.Bool
		started  sync.WaitGroup
		wg       sync.WaitGroup
	)
	stop := make(chan struct{})
	started.Add(workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := dialTest(t, srv)
			if err := c.SelectTenant("victim"); err != nil {
				t.Errorf("worker %d: select: %v", id, err)
				started.Done()
				return
			}
			val := []byte(strings.Repeat("v", 200))
			first := true
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", id, i%512)
				err := c.Set(key, val)
				if err == nil {
					_, _, err = c.Get(key)
				}
				if first {
					first = false
					started.Done()
				}
				if err != nil {
					if !deleting.Load() {
						t.Errorf("worker %d: request failed before delete: %v", id, err)
					}
					return // in-band failure after delete is the expected end
				}
			}
		}(w)
	}
	started.Wait()

	deleting.Store(true)
	if err := ctl.TenantDelete("victim"); err != nil {
		t.Fatalf("tenant_delete: %v", err)
	}
	// Workers exit on their first post-delete error; unstick any that raced.
	time.AfterFunc(2*time.Second, func() { close(stop) })
	wg.Wait()

	// The teardown drains quarantine and returns every leased page.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := st.PageStats().Leases["victim"]; n == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("victim still leases %d pages after delete", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, name := range st.Tenants() {
		if name == "victim" {
			t.Fatal("deleted tenant still registered")
		}
	}
}

// TestServerTenantResizeUnderLoad shrinks a hot tenant to half its
// reservation while connections replay a closed-loop set/get load against
// it. No request may fail and no connection may drop; afterwards the
// tenant's page leases must have come down to the shrunken footprint.
func TestServerTenantResizeUnderLoad(t *testing.T) {
	srv, st := startTestServer(t, store.AllocCliffhanger)
	ctl := dialTest(t, srv)
	if err := ctl.TenantCreate("hot", 16); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := dialTest(t, srv)
			if err := c.SelectTenant("hot"); err != nil {
				t.Errorf("worker %d: select: %v", id, err)
				return
			}
			val := []byte(strings.Repeat("x", 700))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", id, i%4096)
				if err := c.Set(key, val); err != nil {
					t.Errorf("worker %d: set during resize: %v", id, err)
					return
				}
				if _, _, err := c.Get(key); err != nil {
					t.Errorf("worker %d: get during resize: %v", id, err)
					return
				}
			}
		}(w)
	}

	// Let the tenant heat up past half its reservation, then shrink live.
	deadline := time.Now().Add(5 * time.Second)
	for st.PageStats().Leases["hot"] < 9 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := ctl.TenantResize("hot", 8); err != nil {
		t.Fatalf("tenant_resize: %v", err)
	}
	// The resize executes incrementally off the drain loop: wait for the
	// lease count to reach the shrunken target (plus the documented
	// anti-thrash slack) while traffic keeps flowing.
	deadline = time.Now().Add(20 * time.Second)
	for {
		leases := st.PageStats().Leases["hot"]
		if leases <= 8+2+15 { // ceil(8MiB/1MiB) + slack + one page per class ceiling
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hot still leases %d pages long after shrinking to 8 MiB", leases)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
