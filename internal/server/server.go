// Package server exposes the multi-tenant cache store over TCP using the
// memcached-style text protocol from internal/protocol. One goroutine serves
// each connection and responses are written pipelined: the handler parses
// ahead while client data is buffered and flushes once per batch, so a
// pipelining client pays one syscall per batch instead of one per command.
// The store shards each tenant's values under striped locks, so connections
// hitting the same hot application still proceed in parallel, mirroring how
// one Cliffhanger instance serves many applications on a Memcachier server.
//
// The request path is allocation-free in the steady state: each connection
// owns a session with a zero-copy protocol.Parser (one reusable Command, keys
// as []byte), a response scratch buffer that VALUE headers and numeric
// replies are assembled into with strconv.Append*, and GET responses are
// streamed one VALUE block at a time as keys are looked up (no []Value
// buffering). Keys cross into the store as []byte via the byte-key entry
// points (GetItemView, SetItemBytes, AppendBytes/PrependBytes). Value bytes
// live in the store's recycled slab-arena chunks and are streamed zero-copy:
// a GET pins the arena epoch (store.GetItemView) and writes the borrowed
// chunk view straight into the connection writer before releasing the pin —
// epoch-based quarantine guarantees the chunk cannot be recycled while the
// view is live — and a SET copies the parse buffer into a recycled chunk, so
// the only steady-state allocation anywhere on the path is the interned key
// string of a first-time SET. The TestAllocGate tests pin this with
// testing.AllocsPerRun.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cliffhanger/internal/metrics"
	"cliffhanger/internal/netpoll"
	"cliffhanger/internal/protocol"
	"cliffhanger/internal/store"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:11211". Use ":0" to
	// pick an ephemeral port (the chosen address is available via Addr()).
	Addr string
	// DefaultTenant is the tenant used before a connection issues the
	// tenant verb. It must be registered on the store.
	DefaultTenant string
	// Logger receives error messages; nil discards them.
	Logger *log.Logger

	// MaxConns caps simultaneously served connections (memcached's -c). An
	// accept past the cap is answered "SERVER_ERROR too many connections"
	// and closed, counted in rejected_connections; the listener keeps
	// accepting, so the governor sheds load instead of letting the backlog
	// time clients out invisibly. 0 means unlimited.
	MaxConns int
	// IdleTimeout bounds how long a connection may sit between commands
	// waiting for the first byte of the next one. An expired wait closes
	// the connection and counts in conn_timeouts, freeing the session's
	// goroutine and buffers. 0 disables the idle check.
	IdleTimeout time.Duration
	// ReadTimeout bounds delivery of a single command once its first byte
	// has arrived: the rest of the line and any storage data block must
	// land within it. This is the slow-loris guard — a client dribbling a
	// storage payload one byte at a time tears only its own connection.
	// 0 disables the per-command bound (IdleTimeout, if set, still applies
	// to the read that starts the command).
	ReadTimeout time.Duration
	// WriteTimeout bounds each write toward the client, so a stuck reader
	// (zero-window peer) cannot pin a session goroutine and its buffered
	// responses forever. 0 disables it.
	WriteTimeout time.Duration

	// Workers > 0 enables the event-driven front end: that many worker
	// goroutines serve ready connections, and a connection with no pending
	// bytes is parked — registered with an epoll-backed poller while its
	// goroutine and 64 KiB session buffers return to their pools — so
	// front-end memory is O(active connections) instead of O(connections).
	// 0 keeps the classic goroutine-per-connection model.
	Workers int
	// ConnBuffers caps how many sessions (two 64 KiB bufio buffers each)
	// the parked front end may materialize; workers block for a free
	// session past the cap. 0 defaults to Workers. Ignored in classic mode.
	ConnBuffers int
	// ParkLinger is how long a worker waits at an empty batch boundary for
	// the next command before parking the connection (parked mode only).
	// 0 picks a default tuned to keep closed-loop pipelining on the
	// blocking fast path (~200µs).
	ParkLinger time.Duration

	// now is the clock the park reaper compares idle deadlines against;
	// tests stub it to age parked connections without sleeping. nil means
	// time.Now.
	now func() time.Time
}

// Server serves the memcached-style protocol over TCP.
type Server struct {
	cfg   Config
	store *store.Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// closing marks an intentional listener teardown (Close/Shutdown), so
	// the accept loop classifies its error as a clean exit. draining is the
	// graceful-shutdown signal: sessions finish the in-flight pipelined
	// batch, flush, and exit at the next batch boundary.
	closing  atomic.Bool
	draining atomic.Bool

	// Connection-governor counters (memcached-parity stats).
	curr     atomic.Int64
	total    atomic.Int64
	rejected atomic.Int64
	timeouts atomic.Int64
	panics   atomic.Int64

	// Event-driven front end (nil when cfg.Workers == 0). parked and
	// activeSessions are gauges; parks counts lifetime park transitions
	// (tests assert park/wake cycling actually happened).
	pr             *parkedRuntime
	parked         atomic.Int64
	activeSessions atomic.Int64
	parks          atomic.Int64

	// testHookCommand, when set by a test, runs after dispatch accounting
	// for every command. It exists so the per-connection panic recovery can
	// be exercised without planting a bug in a real handler.
	testHookCommand func(*protocol.Command)

	// Latency and throughput instrumentation (Tables 6 and 7).
	GetLatency *metrics.LatencyHistogram
	SetLatency *metrics.LatencyHistogram
	Ops        *metrics.Throughput
}

// ConnStats is a snapshot of the connection governor's counters, served by
// the stats verb with memcached's field names.
type ConnStats struct {
	// CurrConnections is the number of connections being served right now.
	CurrConnections int64
	// TotalConnections counts every connection ever admitted.
	TotalConnections int64
	// RejectedConnections counts accepts refused at the MaxConns cap.
	RejectedConnections int64
	// ConnTimeouts counts connections closed by the idle or per-command
	// read deadline.
	ConnTimeouts int64
	// ConnPanics counts sessions torn down by the per-connection panic
	// recovery (each one would previously have killed the daemon).
	ConnPanics int64
	// ParkedConnections is the number of connections currently parked on
	// the poller (no goroutine, no session buffers). Always 0 in classic
	// goroutine-per-connection mode.
	ParkedConnections int64
	// ActiveSessions is the number of sessions currently leased to workers
	// serving a connection.
	ActiveSessions int64
	// BufferPoolBytes is the session pool's buffer footprint (sessions
	// materialized × two 64 KiB bufio buffers).
	BufferPoolBytes int64
	// WorkerCount is the configured worker-pool size (0 in classic mode).
	WorkerCount int64
}

// ConnStats returns the governor's counter snapshot.
func (s *Server) ConnStats() ConnStats {
	cs := ConnStats{
		CurrConnections:     s.curr.Load(),
		TotalConnections:    s.total.Load(),
		RejectedConnections: s.rejected.Load(),
		ConnTimeouts:        s.timeouts.Load(),
		ConnPanics:          s.panics.Load(),
		ParkedConnections:   s.parked.Load(),
		ActiveSessions:      s.activeSessions.Load(),
	}
	if s.pr != nil {
		cs.WorkerCount = int64(s.pr.workers)
		cs.BufferPoolBytes = s.pr.sessions.bytes()
	}
	return cs
}

// New creates a server for the given store.
func New(cfg Config, st *store.Store) *Server {
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = "default"
	}
	return &Server{
		cfg:        cfg,
		store:      st,
		conns:      make(map[net.Conn]struct{}),
		GetLatency: &metrics.LatencyHistogram{},
		SetLatency: &metrics.LatencyHistogram{},
		Ops:        metrics.NewThroughput(),
	}
}

// Start begins listening and serving in background goroutines.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if s.cfg.Workers > 0 && s.pr == nil {
		if err := s.startParkedRuntime(); err != nil {
			ln.Close()
			return err
		}
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listener address (useful with ":0").
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the listener and abruptly closes every connection. In-flight
// commands are torn; use Shutdown for a graceful drain. Close is idempotent
// and safe after Shutdown.
func (s *Server) Close() error {
	s.closing.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		s.closePoller()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	s.mu.Unlock()
	// Parked connections first (they have no goroutine to notice a close),
	// then whatever is still actively served.
	s.stopParkedRuntime()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.closePoller()
	return err
}

// Shutdown drains the server gracefully: it stops accepting, signals every
// session to finish answering its in-flight pipelined batch, wakes
// connections blocked waiting for their next command, and waits for the
// sessions to exit. If ctx expires first, the stragglers are torn down. The
// store is then flushed and closed so bookkeeping settles — queues, stats
// and arena accounting reflect every answered request. Shutdown returns
// ctx's error when the drain deadline forced connections closed, nil on a
// clean drain. It is idempotent and safe to race with Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	s.draining.Store(true)
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	if !alreadyClosed && s.listener != nil {
		s.listener.Close()
	}
	s.mu.Unlock()
	// Parked connections sit at a command boundary with nothing buffered in
	// either direction — every answered batch was already flushed — so
	// closing them IS their graceful drain. Wakes already queued are still
	// served: workers drain the ready queue before exiting.
	s.stopParkedRuntime()
	// Wake sessions blocked in a read: the expired deadline surfaces as a
	// timeout, which step() treats as the drain signal (responses already
	// queued are flushed on the way out). Sessions mid-batch notice the
	// drain flag at their next batch boundary instead and are not torn.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.closePoller()
	s.store.Flush()
	if err := s.store.Close(); err != nil {
		return err
	}
	return forced
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// A closed listener is how Close/Shutdown stop this loop:
			// classify it as a clean exit, not an error to surface.
			if errors.Is(err, net.ErrClosed) || s.closing.Load() {
				return
			}
			// Transient accept pressure (EMFILE during an accept storm):
			// back off briefly instead of spinning or abandoning the
			// listener.
			s.logf("server: accept: %v", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.rejected.Add(1)
			s.wg.Add(1)
			go s.rejectConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.total.Add(1)
		s.curr.Add(1)
		if s.pr != nil {
			// Event-driven mode: no goroutine per connection — queue it
			// for a worker, which serves it and parks it when it idles.
			s.admitParked(conn)
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// rejectConn tells a client the governor is shedding it and hangs up. The
// write gets its own short deadline so a peer that never reads cannot pin
// the goroutine.
func (s *Server) rejectConn(conn net.Conn) {
	defer s.wg.Done()
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	io.WriteString(conn, "SERVER_ERROR too many connections\r\n")
	conn.Close()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// governedConn enforces the governor's deadlines at the transport layer, so
// neither the parser nor the handlers need to know about time. Reads at a
// command boundary get the idle deadline; once a command's first byte has
// arrived, the rest of the command (line and data block) must land by an
// absolute per-command deadline — re-arming per read would let a slow-loris
// client stay alive forever at one byte per interval. Writes get a fresh
// write deadline each call. The session goroutine is the only reader and
// writer, so the fields need no locking; arming a deadline does not
// allocate, which keeps the governed path inside the hot-path alloc gates.
type governedConn struct {
	net.Conn
	srv         *Server
	idle        time.Duration
	read        time.Duration
	write       time.Duration
	inCommand   bool
	cmdDeadline time.Time
	armed       bool
	// linger > 0 marks the parked-mode transport: a boundary read waits
	// only this long for the next command's first byte before giving up
	// with errLingerExpired, which means "park me", not "close me".
	// Long-term idleness is the park reaper's job there. The wait runs on
	// the worker's ReadWaiter against the raw fd rather than an armed read
	// deadline, because a deadline expiry makes the net package allocate an
	// OpError — which would put one allocation on every park and break the
	// park/wake alloc gate.
	linger time.Duration
	fd     uintptr
	waiter netpoll.ReadWaiter
}

// errLingerExpired is the cached sentinel a boundary read returns when the
// linger window closed with no bytes pending. It satisfies net.Error (it is
// a timeout in spirit) so generic error handling stays honest, but step
// matches it by identity before any such handling.
var errLingerExpired error = lingerExpiredError{}

type lingerExpiredError struct{}

func (lingerExpiredError) Error() string   { return "park linger expired" }
func (lingerExpiredError) Timeout() bool   { return true }
func (lingerExpiredError) Temporary() bool { return true }

// lingerWait blocks until the socket has pending bytes (true) or the linger
// window closes or a drain begins (false). The waiter blocks in the kernel
// (epoll on one fd), so the scheduler reclaims this worker's P for the
// goroutines producing those bytes — a userspace spin here would starve an
// in-process client at GOMAXPROCS=1 and turn every batch into a full
// park/wake round trip.
func (g *governedConn) lingerWait() bool {
	if g.srv != nil && (g.srv.draining.Load() || g.srv.closing.Load()) {
		return false
	}
	if g.waiter != nil {
		return g.waiter.Wait(g.fd, g.linger)
	}
	return netpoll.DataPending(g.fd)
}

func (g *governedConn) Read(p []byte) (int, error) {
	if !g.inCommand {
		if g.linger > 0 {
			// Parked-mode boundary: never block in the kernel here. Either
			// bytes are already pending (the poller woke us, or the next
			// pipelined batch landed within the linger) and the read below
			// returns immediately, or the connection is quiet and the
			// caller should park it.
			if g.armed {
				g.Conn.SetReadDeadline(time.Time{})
				g.armed = false
			}
			if !g.lingerWait() {
				return 0, errLingerExpired
			}
		} else if g.idle > 0 {
			g.Conn.SetReadDeadline(time.Now().Add(g.idle))
			g.armed = true
		} else if g.armed {
			g.Conn.SetReadDeadline(time.Time{})
			g.armed = false
		}
		// Shutdown wakes blocked readers by expiring their deadline; if
		// the drain began between the session's batch-boundary check and
		// the arm above, the arm just erased the wake-up — re-expire.
		if g.armed && g.srv != nil && g.srv.draining.Load() {
			g.Conn.SetReadDeadline(time.Now())
		}
		n, err := g.Conn.Read(p)
		if n > 0 {
			g.inCommand = true
			if g.read > 0 {
				g.cmdDeadline = time.Now().Add(g.read)
			}
		}
		return n, err
	}
	if g.read > 0 {
		g.Conn.SetReadDeadline(g.cmdDeadline)
		g.armed = true
	} else if g.armed {
		g.Conn.SetReadDeadline(time.Time{})
		g.armed = false
	}
	return g.Conn.Read(p)
}

func (g *governedConn) Write(p []byte) (int, error) {
	if g.write > 0 {
		g.Conn.SetWriteDeadline(time.Now().Add(g.write))
	}
	return g.Conn.Write(p)
}

// session is the per-connection state: the buffered reader/writer, the
// zero-copy parser with its reusable Command, the selected tenant and the
// response scratch buffer. Value bytes are never copied into the session:
// GET streams them from an epoch-pinned arena view. Everything a command
// needs in the steady state is reused across commands, so the request path
// does not allocate.
type session struct {
	srv    *Server
	r      *bufio.Reader
	w      *bufio.Writer
	parser *protocol.Parser
	tenant string
	// gc is the governed transport under r and w; nil for in-memory
	// sessions (tests). step toggles its command/idle phase. In parked
	// mode gc is rebound per lease (bind/unbind in park.go).
	gc      *governedConn
	scratch []byte
	// wantPark is step's signal to the worker's batch loop that the
	// boundary linger expired with no data — park the connection instead
	// of closing it.
	wantPark bool
}

// newSession builds a session over the given buffered reader and writer.
func newSession(s *Server, r *bufio.Reader, w *bufio.Writer) *session {
	return &session{
		srv:    s,
		r:      r,
		w:      w,
		parser: protocol.NewParser(r),
		tenant: s.cfg.DefaultTenant,
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	// One poisoned session must never take the daemon down: recover, count,
	// log, and let the cleanup defer below close the connection. Other
	// sessions and the store are untouched — the panicking goroutine held
	// no lock here (store-internal locks are released before values cross
	// the API boundary).
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.logf("server: panic serving %v: %v\n%s", conn.RemoteAddr(), r, debug.Stack())
		}
	}()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.curr.Add(-1)
		conn.Close()
	}()

	g := &governedConn{
		Conn:  conn,
		srv:   s,
		idle:  s.cfg.IdleTimeout,
		read:  s.cfg.ReadTimeout,
		write: s.cfg.WriteTimeout,
	}
	c := newSession(s,
		bufio.NewReaderSize(g, sessionBufSize),
		bufio.NewWriterSize(g, sessionBufSize))
	c.gc = g
	for c.step() {
	}
}

// step reads and executes one command, reporting whether the connection
// should keep being served. Responses are written pipelined (memcached
// style): while more client data is already buffered, parsing continues and
// responses queue up; the writer is flushed only once the batch is exhausted,
// i.e. right before the next read could block. A closed-loop client (one
// request at a time) still gets a flush per request.
func (c *session) step() bool {
	if c.gc != nil {
		// Command boundary: the next conn read waits under the idle
		// deadline until a command's first byte arrives.
		c.gc.inCommand = false
	}
	cmd, err := c.parser.ReadCommand()
	if err != nil {
		if errors.Is(err, protocol.ErrQuit) || errors.Is(err, io.EOF) {
			return false
		}
		if errors.Is(err, errLingerExpired) {
			// Parked mode: the boundary linger closed with no bytes pending —
			// the connection is quiet, the parser untouched, every response
			// flushed. Signal the worker to park it rather than close it.
			// (During a drain the linger aborts early instead; fall through
			// to the timeout arm below, which flushes and closes.)
			if !c.srv.draining.Load() {
				c.wantPark = true
				return false
			}
		}
		netErr, isNet := asNetError(err)
		if isNet && netErr.Timeout() {
			// A governor deadline fired — an idle connection, a slow-loris
			// command, or the shutdown wake-up. Nothing useful can be said
			// to the peer (it may be gone, and the parser may be mid-
			// command), but responses already queued for answered commands
			// are flushed on the way out so a drain never drops them.
			if c.srv.draining.Load() {
				c.w.Flush()
			} else {
				c.srv.timeouts.Add(1)
			}
			return false
		}
		if writeErr := protocol.WriteLine(c.w, "CLIENT_ERROR "+err.Error()); writeErr != nil {
			return false
		}
		if err := c.w.Flush(); err != nil {
			return false
		}
		// A line past MaxLineLength may have been — and an unparseable
		// <bytes> field definitely was — a storage command whose announced
		// data block is still in the stream; parsing on would execute
		// payload bytes as commands, so the connection must close.
		if errors.Is(err, protocol.ErrLineTooLong) || errors.Is(err, protocol.ErrBadDataSize) {
			return false
		}
		// Unknown commands are recoverable; IO errors are not.
		return !isNet
	}
	if err := c.srv.handle(c, cmd); err != nil {
		c.srv.logf("server: %v", err)
		return false
	}
	if c.r.Buffered() == 0 {
		if err := c.w.Flush(); err != nil {
			return false
		}
		// Batch answered and flushed: if a graceful shutdown is in
		// progress, this is the drain point — exit before blocking on a
		// next command that may never come.
		if c.srv.draining.Load() {
			return false
		}
	}
	return true
}

// asNetError is errors.As(err, &netErr) with a fast path: transport errors
// arrive from the net package unwrapped, so a direct type assertion almost
// always suffices. The errors.As fallback (whose target escapes, costing an
// allocation) only runs for wrapped errors, which keeps the per-park linger
// expiry and other hot error paths allocation-free.
func asNetError(err error) (net.Error, bool) {
	if ne, ok := err.(net.Error); ok {
		return ne, true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return ne, true
	}
	return nil, false
}

// handle executes one command and writes its response.
func (s *Server) handle(c *session, cmd *protocol.Command) error {
	s.Ops.Add(1)
	if s.testHookCommand != nil {
		s.testHookCommand(cmd)
	}
	switch cmd.Name {
	case protocol.VerbTenant:
		c.tenant = cmd.Tenant
		return protocol.WriteLine(c.w, "TENANT")
	case protocol.VerbGet, protocol.VerbGets:
		return s.handleGet(c, cmd)
	case protocol.VerbSet, protocol.VerbAdd, protocol.VerbReplace,
		protocol.VerbAppend, protocol.VerbPrepend, protocol.VerbCas:
		return s.handleSet(c, cmd)
	case protocol.VerbTouch:
		return s.handleTouch(c, cmd)
	case protocol.VerbIncr, protocol.VerbDecr:
		return s.handleIncrDecr(c, cmd)
	case protocol.VerbDelete:
		return s.handleDelete(c, cmd)
	case protocol.VerbStats:
		return s.handleStats(c, cmd)
	case protocol.VerbFlushAll:
		// cmd.ExpTime carries the optional delay: 0 flushes immediately, a
		// future deadline invalidates items last written before it once it
		// passes (memcached flush_all semantics).
		err := s.store.FlushAll(c.tenant, cmd.ExpTime)
		if cmd.NoReply {
			return nil
		}
		if err != nil {
			return protocol.WriteLine(c.w, "SERVER_ERROR "+err.Error())
		}
		return protocol.WriteLine(c.w, "OK")
	case protocol.VerbTenantCreate, protocol.VerbTenantResize, protocol.VerbTenantDelete:
		return s.handleTenantAdmin(c, cmd)
	case protocol.VerbVersion:
		return protocol.WriteLine(c.w, "VERSION cliffhanger-1.0")
	default:
		return protocol.WriteLine(c.w, "ERROR")
	}
}

// maxTenantMB bounds the admin-verb size argument so the MB→bytes shift can
// never overflow int64 (2^30 MB is 1 PiB — far past any real reservation).
const maxTenantMB = 1 << 30

// handleTenantAdmin executes the runtime tenant lifecycle verbs. create and
// resize carry the reservation in cmd.Delta (megabytes); delete takes just a
// name. Each replies OK on success; lifecycle errors (duplicate create,
// unknown tenant) come back as SERVER_ERROR without dropping the connection.
func (s *Server) handleTenantAdmin(c *session, cmd *protocol.Command) error {
	var err error
	switch cmd.Name {
	case protocol.VerbTenantCreate, protocol.VerbTenantResize:
		if cmd.Delta > maxTenantMB {
			return protocol.WriteLine(c.w, "CLIENT_ERROR tenant size out of range")
		}
		bytes := int64(cmd.Delta) << 20
		if cmd.Name == protocol.VerbTenantCreate {
			err = s.store.RegisterTenant(cmd.Tenant, bytes)
		} else {
			err = s.store.ResizeTenant(cmd.Tenant, bytes)
		}
	case protocol.VerbTenantDelete:
		err = s.store.DeleteTenant(cmd.Tenant)
	}
	if err != nil {
		return protocol.WriteLine(c.w, "SERVER_ERROR "+err.Error())
	}
	return protocol.WriteLine(c.w, "OK")
}

// handleGet streams one VALUE block per present key as it is looked up —
// no []Value is buffered — and terminates with END. The value bytes are
// written zero-copy from an epoch-pinned arena view (store.GetItemView):
// the pin holds the chunk out of recycling while it is on loan to the
// writer and is released as soon as the block is queued. The VALUE header
// is assembled into the session scratch with strconv appends.
func (s *Server) handleGet(c *session, cmd *protocol.Command) error {
	withCAS := cmd.Name == protocol.VerbGets
	for _, key := range cmd.Keys {
		start := nowNano()
		view, ok, err := s.store.GetItemView(c.tenant, key)
		s.GetLatency.Record(nowNano() - start)
		if err != nil {
			return protocol.WriteLine(c.w, "SERVER_ERROR "+err.Error())
		}
		if !ok {
			continue
		}
		c.scratch = protocol.AppendValueHeader(c.scratch[:0], key, view.Flags, len(view.Value), view.CAS, withCAS)
		_, werr := c.w.Write(c.scratch)
		if werr == nil {
			_, werr = c.w.Write(view.Value)
		}
		if werr == nil {
			_, werr = c.w.WriteString("\r\n")
		}
		view.Release()
		if werr != nil {
			return werr
		}
	}
	_, err := c.w.WriteString("END\r\n")
	return err
}

func (s *Server) handleSet(c *session, cmd *protocol.Command) error {
	key := cmd.Keys[0]
	start := nowNano()
	var (
		stored bool
		err    error
	)
	// Every storage verb copies the parser-owned data block into an arena
	// chunk under the shard lock, so the reusable parse buffer can be passed
	// through without cloning.
	switch cmd.Name {
	case protocol.VerbSet:
		err = s.store.SetItemBytes(c.tenant, key, cmd.Data, cmd.Flags, cmd.ExpTime)
		stored = err == nil
	case protocol.VerbAdd:
		stored, err = s.store.Add(c.tenant, string(key), cmd.Data, cmd.Flags, cmd.ExpTime)
	case protocol.VerbReplace:
		stored, err = s.store.Replace(c.tenant, string(key), cmd.Data, cmd.Flags, cmd.ExpTime)
	case protocol.VerbAppend:
		stored, err = s.store.AppendBytes(c.tenant, key, cmd.Data)
	case protocol.VerbPrepend:
		stored, err = s.store.PrependBytes(c.tenant, key, cmd.Data)
	case protocol.VerbCas:
		res, cerr := s.store.CompareAndSwap(c.tenant, string(key), cmd.Data, cmd.Flags, cmd.ExpTime, cmd.CAS)
		s.SetLatency.Record(nowNano() - start)
		if cmd.NoReply {
			return nil
		}
		if cerr != nil {
			return protocol.WriteLine(c.w, "SERVER_ERROR "+cerr.Error())
		}
		switch res {
		case store.CASStored:
			return protocol.WriteLine(c.w, "STORED")
		case store.CASExists:
			return protocol.WriteLine(c.w, "EXISTS")
		default:
			return protocol.WriteLine(c.w, "NOT_FOUND")
		}
	}
	s.SetLatency.Record(nowNano() - start)
	if cmd.NoReply {
		return nil
	}
	if err != nil {
		return protocol.WriteLine(c.w, "SERVER_ERROR "+err.Error())
	}
	if !stored {
		return protocol.WriteLine(c.w, "NOT_STORED")
	}
	return protocol.WriteLine(c.w, "STORED")
}

func (s *Server) handleTouch(c *session, cmd *protocol.Command) error {
	start := nowNano()
	found, err := s.store.Touch(c.tenant, string(cmd.Keys[0]), cmd.ExpTime)
	s.SetLatency.Record(nowNano() - start)
	if cmd.NoReply {
		return nil
	}
	if err != nil {
		return protocol.WriteLine(c.w, "SERVER_ERROR "+err.Error())
	}
	if !found {
		return protocol.WriteLine(c.w, "NOT_FOUND")
	}
	return protocol.WriteLine(c.w, "TOUCHED")
}

func (s *Server) handleIncrDecr(c *session, cmd *protocol.Command) error {
	var (
		val   uint64
		found bool
		err   error
	)
	start := nowNano()
	if cmd.Name == protocol.VerbIncr {
		val, found, err = s.store.Incr(c.tenant, string(cmd.Keys[0]), cmd.Delta)
	} else {
		val, found, err = s.store.Decr(c.tenant, string(cmd.Keys[0]), cmd.Delta)
	}
	s.SetLatency.Record(nowNano() - start)
	if cmd.NoReply {
		return nil
	}
	if errors.Is(err, store.ErrNotNumeric) {
		return protocol.WriteLine(c.w, "CLIENT_ERROR cannot increment or decrement non-numeric value")
	}
	if err != nil {
		return protocol.WriteLine(c.w, "SERVER_ERROR "+err.Error())
	}
	if !found {
		return protocol.WriteLine(c.w, "NOT_FOUND")
	}
	c.scratch = strconv.AppendUint(c.scratch[:0], val, 10)
	c.scratch = append(c.scratch, '\r', '\n')
	_, werr := c.w.Write(c.scratch)
	return werr
}

func (s *Server) handleDelete(c *session, cmd *protocol.Command) error {
	deleted, err := s.store.Delete(c.tenant, string(cmd.Keys[0]))
	if cmd.NoReply {
		return nil
	}
	if err != nil {
		return protocol.WriteLine(c.w, "SERVER_ERROR "+err.Error())
	}
	if deleted {
		return protocol.WriteLine(c.w, "DELETED")
	}
	return protocol.WriteLine(c.w, "NOT_FOUND")
}

func (s *Server) handleStats(c *session, cmd *protocol.Command) error {
	if len(cmd.Keys) > 0 {
		switch string(cmd.Keys[0]) {
		case "slabs":
			return s.handleStatsSlabs(c)
		case "arbiter":
			return s.handleStatsArbiter(c)
		}
		return protocol.WriteLine(c.w, "ERROR")
	}
	st, err := s.store.Stats(c.tenant)
	if err != nil {
		return protocol.WriteLine(c.w, "SERVER_ERROR "+err.Error())
	}
	// Arena occupancy for the tenant: total carved bytes and the fraction
	// backing resident values (chunks in use over chunks carved).
	var arenaBytes, usedChunkBytes, totalChunkBytes int64
	if classes, err := s.store.SlabStats(c.tenant); err == nil {
		arenaBytes, usedChunkBytes, totalChunkBytes = store.SumArenaStats(classes)
	}
	occupancy := 0.0
	if totalChunkBytes > 0 {
		occupancy = float64(usedChunkBytes) / float64(totalChunkBytes)
	}
	// Epoch-based reclamation counters: the current global epoch, chunks
	// sitting in quarantine awaiting recycle, and the lifetime count of
	// frees that were deferred through quarantine.
	rs, _ := s.store.ReclaimStats(c.tenant)
	// Process-wide page pool: total raw pages, unleased pages, and this
	// tenant's lease count (pages migrate between tenants at runtime).
	ps := s.store.PageStats()
	// Connection-governor counters (process-wide, memcached field names).
	cs := s.ConnStats()
	// Arbitration-facing state for this tenant: the reserved floor the
	// arbiter honours, the reservation it is converging to, and the marginal
	// hit-rate-per-byte signal it ranks the tenant by.
	as := s.store.ArbiterStats()
	at := as.Tenants[c.tenant]
	// Front-end memory accounting for the parked-connection model:
	// heap+stack in use lets a harness compute bytes/connection directly
	// from one stats call (mem_inuse_bytes / curr_connections).
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	order := []string{"tenant", "cmd_get", "get_hits", "get_misses", "hit_rate", "cmd_set", "cmd_touch", "touch_hits", "expired", "ops_per_sec", "curr_connections", "total_connections", "rejected_connections", "conn_timeouts", "conn_panics", "parked_connections", "active_sessions", "buffer_pool_bytes", "worker_count", "mem_inuse_bytes", "arena_bytes", "arena_occupancy", "epoch_current", "epoch_quarantined_chunks", "epoch_deferred_frees", "page_pool_total", "page_pool_free", "lease_pages", "reserved_pages", "target_bytes", "marginal_hit_per_byte", "arbiter_moves"}
	stats := map[string]string{
		"tenant":                   c.tenant,
		"curr_connections":         strconv.FormatInt(cs.CurrConnections, 10),
		"total_connections":        strconv.FormatInt(cs.TotalConnections, 10),
		"rejected_connections":     strconv.FormatInt(cs.RejectedConnections, 10),
		"conn_timeouts":            strconv.FormatInt(cs.ConnTimeouts, 10),
		"conn_panics":              strconv.FormatInt(cs.ConnPanics, 10),
		"parked_connections":       strconv.FormatInt(cs.ParkedConnections, 10),
		"active_sessions":          strconv.FormatInt(cs.ActiveSessions, 10),
		"buffer_pool_bytes":        strconv.FormatInt(cs.BufferPoolBytes, 10),
		"worker_count":             strconv.FormatInt(cs.WorkerCount, 10),
		"mem_inuse_bytes":          strconv.FormatUint(ms.HeapInuse+ms.StackInuse, 10),
		"cmd_get":                  strconv.FormatInt(st.Requests, 10),
		"get_hits":                 strconv.FormatInt(st.Hits, 10),
		"get_misses":               strconv.FormatInt(st.Misses, 10),
		"hit_rate":                 fmt.Sprintf("%.4f", st.HitRate()),
		"cmd_set":                  strconv.FormatInt(st.Sets, 10),
		"cmd_touch":                strconv.FormatInt(st.Touches, 10),
		"touch_hits":               strconv.FormatInt(st.TouchHits, 10),
		"expired":                  strconv.FormatInt(st.Expired, 10),
		"ops_per_sec":              fmt.Sprintf("%.0f", s.Ops.Rate()),
		"arena_bytes":              strconv.FormatInt(arenaBytes, 10),
		"arena_occupancy":          fmt.Sprintf("%.4f", occupancy),
		"epoch_current":            strconv.FormatUint(rs.Epoch, 10),
		"epoch_quarantined_chunks": strconv.FormatInt(rs.QuarantinedChunks, 10),
		"epoch_deferred_frees":     strconv.FormatInt(rs.DeferredFrees, 10),
		"page_pool_total":          strconv.FormatInt(ps.TotalPages, 10),
		"page_pool_free":           strconv.FormatInt(ps.FreePages, 10),
		"lease_pages":              strconv.FormatInt(ps.Leases[c.tenant], 10),
		"reserved_pages":           strconv.FormatInt(at.ReservedPages, 10),
		"target_bytes":             strconv.FormatInt(at.TargetBytes, 10),
		"marginal_hit_per_byte":    strconv.FormatFloat(at.MarginalHitPerByte, 'g', -1, 64),
		"arbiter_moves":            strconv.FormatInt(as.Moves, 10),
	}
	for _, cl := range st.Classes {
		k := fmt.Sprintf("class_%d_hit_rate", cl.Class)
		order = append(order, k)
		hr := 0.0
		if cl.Requests > 0 {
			hr = float64(cl.Hits) / float64(cl.Requests)
		}
		stats[k] = fmt.Sprintf("%.4f", hr)
	}
	return protocol.WriteStats(c.w, stats, order)
}

// handleStatsArbiter serves the "stats arbiter" sub-command: the
// process-wide move count and last move, then every tenant's
// arbitration-facing state ("<tenant>:<field>") — lease/reserved pages, the
// reservation target, the two hit-rate-per-byte estimates, and whether the
// tenant participates in arbitration at all. Tenants are emitted in sorted
// order so the output is stable, which is what lets an operator watch memory
// migrate between tenants with a watch loop.
func (s *Server) handleStatsArbiter(c *session) error {
	as := s.store.ArbiterStats()
	var order []string
	stats := make(map[string]string)
	add := func(k, v string) {
		order = append(order, k)
		stats[k] = v
	}
	add("arbiter_moves", strconv.FormatInt(as.Moves, 10))
	add("arbiter_last_move", as.LastMove)
	names := make([]string, 0, len(as.Tenants))
	for n := range as.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := as.Tenants[n]
		add(n+":arbitrated", strconv.FormatBool(t.Arbitrated))
		add(n+":lease_pages", strconv.FormatInt(t.LeasePages, 10))
		add(n+":reserved_pages", strconv.FormatInt(t.ReservedPages, 10))
		add(n+":target_bytes", strconv.FormatInt(t.TargetBytes, 10))
		add(n+":marginal_hit_per_byte", strconv.FormatFloat(t.MarginalHitPerByte, 'g', -1, 64))
		add(n+":hit_density_per_byte", strconv.FormatFloat(t.HitDensityPerByte, 'g', -1, 64))
	}
	return protocol.WriteStats(c.w, stats, order)
}

// handleStatsSlabs serves the memcached "stats slabs" sub-command from the
// tenant's arena accounting: per active class the chunk size, carved pages
// and used/free/quarantined chunk counts, then the cross-class page count
// and total arena bytes (memcached's active_slabs / total_malloced footer).
func (s *Server) handleStatsSlabs(c *session) error {
	classes, err := s.store.SlabStats(c.tenant)
	if err != nil {
		return protocol.WriteLine(c.w, "SERVER_ERROR "+err.Error())
	}
	var order []string
	stats := make(map[string]string)
	add := func(k, v string) {
		order = append(order, k)
		stats[k] = v
	}
	active := 0
	var totalBytes, totalPages int64
	for _, cl := range classes {
		if cl.Pages == 0 {
			continue
		}
		active++
		totalPages += cl.Pages
		totalBytes += cl.ArenaBytes()
		prefix := strconv.Itoa(cl.Class)
		add(prefix+":chunk_size", strconv.FormatInt(cl.ChunkSize, 10))
		add(prefix+":total_pages", strconv.FormatInt(cl.Pages, 10))
		add(prefix+":total_chunks", strconv.FormatInt(cl.TotalChunks, 10))
		add(prefix+":used_chunks", strconv.FormatInt(cl.UsedChunks, 10))
		add(prefix+":free_chunks", strconv.FormatInt(cl.FreeChunks, 10))
		add(prefix+":quarantined_chunks", strconv.FormatInt(cl.QuarantinedChunks, 10))
		add(prefix+":mem_requested", strconv.FormatInt(cl.UsedChunks*cl.ChunkSize, 10))
	}
	add("active_slabs", strconv.Itoa(active))
	add("total_pages", strconv.FormatInt(totalPages, 10))
	add("total_malloced", strconv.FormatInt(totalBytes, 10))
	return protocol.WriteStats(c.w, stats, order)
}
