// Package server exposes the multi-tenant cache store over TCP using the
// memcached-style text protocol from internal/protocol. One goroutine serves
// each connection and responses are written pipelined: the handler parses
// ahead while client data is buffered and flushes once per batch, so a
// pipelining client pays one syscall per batch instead of one per command.
// The store shards each tenant's values under striped locks, so connections
// hitting the same hot application still proceed in parallel, mirroring how
// one Cliffhanger instance serves many applications on a Memcachier server.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"

	"cliffhanger/internal/metrics"
	"cliffhanger/internal/protocol"
	"cliffhanger/internal/store"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:11211". Use ":0" to
	// pick an ephemeral port (the chosen address is available via Addr()).
	Addr string
	// DefaultTenant is the tenant used before a connection issues the
	// tenant verb. It must be registered on the store.
	DefaultTenant string
	// Logger receives error messages; nil discards them.
	Logger *log.Logger
}

// Server serves the memcached-style protocol over TCP.
type Server struct {
	cfg   Config
	store *store.Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// Latency and throughput instrumentation (Tables 6 and 7).
	GetLatency *metrics.LatencyHistogram
	SetLatency *metrics.LatencyHistogram
	Ops        *metrics.Throughput
}

// New creates a server for the given store.
func New(cfg Config, st *store.Store) *Server {
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = "default"
	}
	return &Server{
		cfg:        cfg,
		store:      st,
		conns:      make(map[net.Conn]struct{}),
		GetLatency: &metrics.LatencyHistogram{},
		SetLatency: &metrics.LatencyHistogram{},
		Ops:        metrics.NewThroughput(),
	}
}

// Start begins listening and serving in background goroutines.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listener address (useful with ":0").
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the listener and closes every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	tenant := s.cfg.DefaultTenant
	for {
		cmd, err := protocol.ReadCommand(r)
		if err != nil {
			if errors.Is(err, protocol.ErrQuit) || errors.Is(err, io.EOF) {
				return
			}
			if writeErr := protocol.WriteLine(w, "CLIENT_ERROR "+err.Error()); writeErr != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			// Unknown commands are recoverable; IO errors are not.
			var netErr net.Error
			if errors.As(err, &netErr) {
				return
			}
			continue
		}
		if err := s.handle(w, cmd, &tenant); err != nil {
			s.logf("server: %v", err)
			return
		}
		// Pipelined response writing (memcached-style): while more client
		// data is already buffered, keep parsing ahead and queuing responses;
		// flush only once the batch is exhausted, i.e. right before the next
		// read could block. A closed-loop client (one request at a time)
		// still gets a flush per request.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// handle executes one command and writes its response.
func (s *Server) handle(w *bufio.Writer, cmd *protocol.Command, tenant *string) error {
	s.Ops.Add(1)
	switch cmd.Name {
	case "tenant":
		*tenant = cmd.Tenant
		return protocol.WriteLine(w, "TENANT")
	case "get", "gets":
		return s.handleGet(w, cmd, *tenant)
	case "set", "add", "replace", "append", "prepend", "cas":
		return s.handleSet(w, cmd, *tenant)
	case "touch":
		return s.handleTouch(w, cmd, *tenant)
	case "incr", "decr":
		return s.handleIncrDecr(w, cmd, *tenant)
	case "delete":
		return s.handleDelete(w, cmd, *tenant)
	case "stats":
		return s.handleStats(w, *tenant)
	case "flush_all":
		if err := s.store.FlushTenant(*tenant); err != nil {
			return protocol.WriteLine(w, "SERVER_ERROR "+err.Error())
		}
		return protocol.WriteLine(w, "OK")
	case "version":
		return protocol.WriteLine(w, "VERSION cliffhanger-1.0")
	default:
		return protocol.WriteLine(w, "ERROR")
	}
}

func (s *Server) handleGet(w *bufio.Writer, cmd *protocol.Command, tenant string) error {
	values := make([]protocol.Value, 0, len(cmd.Keys))
	withCAS := cmd.Name == "gets"
	for _, key := range cmd.Keys {
		stop := timeOp(s.GetLatency)
		it, ok, err := s.store.GetItem(tenant, key)
		stop()
		if err != nil {
			return protocol.WriteLine(w, "SERVER_ERROR "+err.Error())
		}
		if ok {
			values = append(values, protocol.Value{Key: key, Flags: it.Flags, CAS: it.CAS, Data: it.Value})
		}
	}
	return protocol.WriteValues(w, values, withCAS)
}

func (s *Server) handleSet(w *bufio.Writer, cmd *protocol.Command, tenant string) error {
	key := cmd.Keys[0]
	stop := timeOp(s.SetLatency)
	var (
		stored bool
		err    error
	)
	switch cmd.Name {
	case "set":
		err = s.store.SetItem(tenant, key, cmd.Data, cmd.Flags, cmd.ExpTime)
		stored = err == nil
	case "add":
		stored, err = s.store.Add(tenant, key, cmd.Data, cmd.Flags, cmd.ExpTime)
	case "replace":
		stored, err = s.store.Replace(tenant, key, cmd.Data, cmd.Flags, cmd.ExpTime)
	case "append":
		stored, err = s.store.Append(tenant, key, cmd.Data)
	case "prepend":
		stored, err = s.store.Prepend(tenant, key, cmd.Data)
	case "cas":
		res, cerr := s.store.CompareAndSwap(tenant, key, cmd.Data, cmd.Flags, cmd.ExpTime, cmd.CAS)
		stop()
		if cmd.NoReply {
			return nil
		}
		if cerr != nil {
			return protocol.WriteLine(w, "SERVER_ERROR "+cerr.Error())
		}
		switch res {
		case store.CASStored:
			return protocol.WriteLine(w, "STORED")
		case store.CASExists:
			return protocol.WriteLine(w, "EXISTS")
		default:
			return protocol.WriteLine(w, "NOT_FOUND")
		}
	}
	stop()
	if cmd.NoReply {
		return nil
	}
	if err != nil {
		return protocol.WriteLine(w, "SERVER_ERROR "+err.Error())
	}
	if !stored {
		return protocol.WriteLine(w, "NOT_STORED")
	}
	return protocol.WriteLine(w, "STORED")
}

func (s *Server) handleTouch(w *bufio.Writer, cmd *protocol.Command, tenant string) error {
	stop := timeOp(s.SetLatency)
	found, err := s.store.Touch(tenant, cmd.Keys[0], cmd.ExpTime)
	stop()
	if cmd.NoReply {
		return nil
	}
	if err != nil {
		return protocol.WriteLine(w, "SERVER_ERROR "+err.Error())
	}
	if !found {
		return protocol.WriteLine(w, "NOT_FOUND")
	}
	return protocol.WriteLine(w, "TOUCHED")
}

func (s *Server) handleIncrDecr(w *bufio.Writer, cmd *protocol.Command, tenant string) error {
	var (
		val   uint64
		found bool
		err   error
	)
	stop := timeOp(s.SetLatency)
	if cmd.Name == "incr" {
		val, found, err = s.store.Incr(tenant, cmd.Keys[0], cmd.Delta)
	} else {
		val, found, err = s.store.Decr(tenant, cmd.Keys[0], cmd.Delta)
	}
	stop()
	if cmd.NoReply {
		return nil
	}
	if errors.Is(err, store.ErrNotNumeric) {
		return protocol.WriteLine(w, "CLIENT_ERROR cannot increment or decrement non-numeric value")
	}
	if err != nil {
		return protocol.WriteLine(w, "SERVER_ERROR "+err.Error())
	}
	if !found {
		return protocol.WriteLine(w, "NOT_FOUND")
	}
	return protocol.WriteLine(w, strconv.FormatUint(val, 10))
}

func (s *Server) handleDelete(w *bufio.Writer, cmd *protocol.Command, tenant string) error {
	deleted, err := s.store.Delete(tenant, cmd.Keys[0])
	if cmd.NoReply {
		return nil
	}
	if err != nil {
		return protocol.WriteLine(w, "SERVER_ERROR "+err.Error())
	}
	if deleted {
		return protocol.WriteLine(w, "DELETED")
	}
	return protocol.WriteLine(w, "NOT_FOUND")
}

func (s *Server) handleStats(w *bufio.Writer, tenant string) error {
	st, err := s.store.Stats(tenant)
	if err != nil {
		return protocol.WriteLine(w, "SERVER_ERROR "+err.Error())
	}
	order := []string{"tenant", "cmd_get", "get_hits", "get_misses", "hit_rate", "cmd_set", "cmd_touch", "touch_hits", "expired", "ops_per_sec"}
	stats := map[string]string{
		"tenant":      tenant,
		"cmd_get":     strconv.FormatInt(st.Requests, 10),
		"get_hits":    strconv.FormatInt(st.Hits, 10),
		"get_misses":  strconv.FormatInt(st.Misses, 10),
		"hit_rate":    fmt.Sprintf("%.4f", st.HitRate()),
		"cmd_set":     strconv.FormatInt(st.Sets, 10),
		"cmd_touch":   strconv.FormatInt(st.Touches, 10),
		"touch_hits":  strconv.FormatInt(st.TouchHits, 10),
		"expired":     strconv.FormatInt(st.Expired, 10),
		"ops_per_sec": fmt.Sprintf("%.0f", s.Ops.Rate()),
	}
	for _, c := range st.Classes {
		k := fmt.Sprintf("class_%d_hit_rate", c.Class)
		order = append(order, k)
		hr := 0.0
		if c.Requests > 0 {
			hr = float64(c.Hits) / float64(c.Requests)
		}
		stats[k] = fmt.Sprintf("%.4f", hr)
	}
	return protocol.WriteStats(w, stats, order)
}

// timeOp returns a function that records the elapsed time into h when called.
func timeOp(h *metrics.LatencyHistogram) func() {
	start := nowNano()
	return func() { h.Record(nowNano() - start) }
}
