package server

// Park/wake torture for the event-driven front end: correctness of the
// state machine under pipelined batches racing park decisions, torn
// commands dribbling across park/wake cycles, tenant stickiness, idle
// reaping through the timer wheel (with a stubbed clock), shutdown with
// thousands of connections parked, and the allocation gate proving a
// park/wake cycle costs nothing amortized.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// parkedConfig is the standard parked-mode governor config for these tests:
// a small worker pool and a short linger so tests reach the park point fast.
func parkedConfig() Config {
	return Config{
		Workers:    4,
		ParkLinger: 200 * time.Microsecond,
	}
}

// waitParks blocks until the server's lifetime park counter reaches n.
func waitParks(t *testing.T, srv *Server, n int64) {
	t.Helper()
	waitCond(t, func() bool { return srv.parks.Load() >= n }, fmt.Sprintf("parks >= %d", n))
}

// waitParked blocks until exactly n connections are currently parked. This
// is the right pre-send barrier: after a response, the park lands one linger
// later, so "the conn is parked right now" is the state to wait for before
// poking it awake again.
func waitParked(t *testing.T, srv *Server, n int64) {
	t.Helper()
	waitCond(t, func() bool { return srv.parked.Load() == n }, fmt.Sprintf("parked == %d", n))
}

// TestParkWakeBasic: one connection cycles park -> wake -> park across
// requests separated by silence, answering correctly every time, with the
// parked gauge and park counter moving as the model predicts.
func TestParkWakeBasic(t *testing.T) {
	srv, _ := startGovernedServer(t, parkedConfig())

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	if _, err := io.WriteString(conn, "set k 0 0 5\r\nhello\r\n"); err != nil {
		t.Fatal(err)
	}
	if line, _ := r.ReadString('\n'); strings.TrimRight(line, "\r\n") != "STORED" {
		t.Fatalf("set = %q", line)
	}

	for i := 1; i <= 5; i++ {
		// Quiet period: the connection must park (no goroutine, no session).
		waitParks(t, srv, int64(i))
		waitCond(t, func() bool { return srv.ConnStats().ParkedConnections == 1 }, "parked gauge")
		if got := srv.ConnStats().ActiveSessions; got != 0 {
			t.Fatalf("active_sessions = %d while parked, want 0", got)
		}
		// Wake it: the same session semantics keep working.
		if _, err := io.WriteString(conn, "get k\r\n"); err != nil {
			t.Fatal(err)
		}
		line, _ := r.ReadString('\n')
		if !strings.HasPrefix(line, "VALUE k 0 5") {
			t.Fatalf("wake %d: VALUE line = %q", i, line)
		}
		if data, _ := r.ReadString('\n'); strings.TrimRight(data, "\r\n") != "hello" {
			t.Fatalf("wake %d: data = %q", i, data)
		}
		if end, _ := r.ReadString('\n'); strings.TrimRight(end, "\r\n") != "END" {
			t.Fatalf("wake %d: end = %q", i, end)
		}
	}
	if got := srv.ConnStats().WorkerCount; got != 4 {
		t.Fatalf("worker_count = %d, want 4", got)
	}
	if got := srv.ConnStats().BufferPoolBytes; got <= 0 || got > 4*2*sessionBufSize {
		t.Fatalf("buffer_pool_bytes = %d, want (0, %d]", got, 4*2*sessionBufSize)
	}
}

// TestParkTenantStickiness: the tenant a connection selected must survive
// park/wake cycles even though the session serving it is a different pooled
// object each time.
func TestParkTenantStickiness(t *testing.T) {
	srv, st := startGovernedServer(t, parkedConfig())
	if err := st.RegisterTenant("app1", 8<<20); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	roundTrip := func(req, wantPrefix string) {
		t.Helper()
		if _, err := io.WriteString(conn, req); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, wantPrefix) {
			t.Fatalf("%q -> %q (%v), want prefix %q", req, line, err, wantPrefix)
		}
	}

	roundTrip("tenant app1\r\n", "TENANT")
	waitParked(t, srv, 1) // park with app1 selected
	roundTrip("set sticky 0 0 2\r\nok\r\n", "STORED")
	waitParked(t, srv, 1) // park again

	// The key must be visible in app1 (via the store) and the woken session
	// must still resolve it.
	if _, ok, err := st.Get("app1", "sticky"); err != nil || !ok {
		t.Fatalf("key not in app1: ok=%v err=%v", ok, err)
	}
	if _, ok, err := st.Get("default", "sticky"); err != nil || ok {
		t.Fatalf("key leaked to default tenant: ok=%v err=%v", ok, err)
	}
	roundTrip("get sticky\r\n", "VALUE sticky 0 2")
	r.ReadString('\n')
	r.ReadString('\n')
}

// TestParkTornCommandAcrossWakes dribbles complete commands byte by byte
// with inter-byte gaps far beyond the linger, so every command's first byte
// wakes a parked connection and the remainder arrives while a worker holds
// it mid-command. Every response must be exact and the connection must have
// parked between commands.
func TestParkTornCommandAcrossWakes(t *testing.T) {
	cfg := parkedConfig()
	cfg.ReadTimeout = 10 * time.Second // mid-command dribble must survive
	srv, _ := startGovernedServer(t, cfg)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	const rounds = 6
	for i := 0; i < rounds; i++ {
		waitParked(t, srv, 1) // quiet between commands => parked
		cmd := fmt.Sprintf("set torn%d 0 0 5\r\nv%04d\r\n", i, i)
		for j := 0; j < len(cmd); j++ {
			if _, err := conn.Write([]byte{cmd[j]}); err != nil {
				t.Fatalf("round %d byte %d: %v", i, j, err)
			}
			time.Sleep(2 * time.Millisecond) // >> linger
		}
		line, err := r.ReadString('\n')
		if err != nil || strings.TrimRight(line, "\r\n") != "STORED" {
			t.Fatalf("round %d: %q, %v", i, line, err)
		}
	}
	// All values landed intact.
	c := dialTest(t, srv)
	defer c.Close()
	for i := 0; i < rounds; i++ {
		v, ok, err := c.Get(fmt.Sprintf("torn%d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("torn%d = %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

// TestParkWakeRaceBatches is the torture race: concurrent connections fire
// pipelined batches with randomized gaps straddling the linger window, so
// batches land while connections are parking, just-parked, and waking.
// Every response must come back exact, under -race.
func TestParkWakeRaceBatches(t *testing.T) {
	cfg := parkedConfig()
	cfg.ParkLinger = 100 * time.Microsecond
	srv, _ := startGovernedServer(t, cfg)

	const (
		conns  = 8
		rounds = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < rounds; i++ {
				depth := 1 + rng.Intn(6)
				var req bytes.Buffer
				for d := 0; d < depth; d++ {
					fmt.Fprintf(&req, "set race-%d-%d 0 0 4\r\n%04d\r\n", w, d, i)
				}
				if _, err := conn.Write(req.Bytes()); err != nil {
					errs <- fmt.Errorf("conn %d round %d write: %w", w, i, err)
					return
				}
				for d := 0; d < depth; d++ {
					line, err := r.ReadString('\n')
					if err != nil || strings.TrimRight(line, "\r\n") != "STORED" {
						errs <- fmt.Errorf("conn %d round %d resp %d: %q %v", w, i, d, line, err)
						return
					}
				}
				// Gap straddling the linger: sometimes the next batch lands
				// while still lingering, sometimes just as the park happens,
				// sometimes well after.
				time.Sleep(time.Duration(rng.Intn(400)) * time.Microsecond)
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < conns; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if srv.ConnStats().ConnPanics != 0 {
		t.Fatalf("conn_panics = %d", srv.ConnStats().ConnPanics)
	}
}

// TestParkIdleReapStubClock is the satellite bugfix regression: a parked
// connection has no goroutine watching a read deadline, so only the timer
// wheel can enforce IdleTimeout. Advance the stubbed clock past the idle
// deadline and the reaper must close the parked connection and count it in
// conn_timeouts — it must not live forever just because it parked.
func TestParkIdleReapStubClock(t *testing.T) {
	var fake atomic.Int64
	fake.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	cfg := parkedConfig()
	cfg.IdleTimeout = time.Minute
	cfg.now = func() time.Time { return time.Unix(0, fake.Load()) }
	srv, _ := startGovernedServer(t, cfg)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	io.WriteString(conn, "version\r\n")
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("version = %q, %v", line, err)
	}
	waitParks(t, srv, 1)

	// Not yet expired: half the idle window passes, the conn must survive.
	fake.Add(int64(30 * time.Second))
	time.Sleep(60 * time.Millisecond) // several reaper ticks
	if got := srv.ConnStats().ParkedConnections; got != 1 {
		t.Fatalf("parked = %d after half the idle window, want 1", got)
	}

	// Expired: the wheel must reap it even though it parked "just before"
	// its deadline and owns no goroutine.
	fake.Add(int64(31 * time.Second))
	waitCond(t, func() bool { return srv.ConnStats().ConnTimeouts == 1 }, "wheel reap -> conn_timeouts")
	waitCond(t, func() bool { return srv.ConnStats().CurrConnections == 0 }, "reaped conn released")
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("reaped connection still open")
	}
}

// TestParkShutdownThousandsParked: Shutdown with a thousand-plus parked
// connections must drain clean — nil error, every peer sees EOF, zero
// conn_timeouts, zero leaked goroutines — proving the sweep releases parked
// connections without needing a goroutine per conn to notice the drain.
func TestParkShutdownThousandsParked(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cfg := parkedConfig()
	cfg.ParkLinger = 100 * time.Microsecond
	cfg.IdleTimeout = time.Hour
	srv, _ := startGovernedServer(t, cfg)

	const n = 1200
	conns := make([]net.Conn, 0, n)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < n; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, conn)
	}
	waitCond(t, func() bool { return srv.ConnStats().ParkedConnections == n }, "all conns parked")
	// The whole fleet is parked on the poller: no per-conn goroutines. The
	// runtime floor is workers + reaper + poller + accept + test plumbing.
	if g := runtime.NumGoroutine(); g > baseline+16 {
		t.Fatalf("%d goroutines with %d conns parked, want O(workers)", g, n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
	if got := srv.ConnStats().ConnTimeouts; got != 0 {
		t.Fatalf("conn_timeouts = %d after drain, want 0", got)
	}
	for i, conn := range conns {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("conn %d after drain: want EOF, got %v", i, err)
		}
	}
	waitGoroutinesBelow(t, baseline)
}

// TestAllocGateParkWake pins the satellite CI gate: a full park/wake cycle —
// linger timeout, poller re-arm, readiness wake, session lease, serve, park
// again — allocates nothing amortized. The reaper is off (IdleTimeout 0) so
// the measurement isn't polluted by ticker wakeups, and the conn is forced
// through a real park (parks counter) every iteration.
func TestAllocGateParkWake(t *testing.T) {
	cfg := parkedConfig()
	cfg.Workers = 1
	cfg.ParkLinger = 100 * time.Microsecond
	srv, _ := startGovernedServer(t, cfg)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := []byte("get gatekey\r\nset gatekey 0 0 3\r\nval\r\n")
	buf := make([]byte, 256)
	roundTrip := func() {
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		// One batch -> one flush: read until the STORED terminator.
		got := 0
		for !bytes.HasSuffix(buf[:got], []byte("STORED\r\n")) {
			n, err := conn.Read(buf[got:])
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
	}
	awaitPark := func() {
		for srv.parked.Load() != 1 {
			time.Sleep(20 * time.Microsecond)
		}
	}

	// Warm up: first wake materializes the session, first park registers
	// with the poller, the ready queue and scratch buffers size themselves.
	for i := 0; i < 10; i++ {
		awaitPark()
		roundTrip()
	}

	allocs := testing.AllocsPerRun(100, func() {
		awaitPark() // previous iteration's conn must actually park
		roundTrip() // poller wake -> lease session -> serve batch
	})
	if allocs > 0.5 {
		t.Fatalf("park/wake cycle allocates %.2f/op, want 0 amortized", allocs)
	}
}

// TestParkStatsServed: the front-end gauges travel the whole distance —
// server atomics -> "stats" wire lines -> the client's typed parser — and
// report a truthful picture while three connections sit parked and a fourth
// is mid-session asking for the stats.
func TestParkStatsServed(t *testing.T) {
	srv, _ := startGovernedServer(t, parkedConfig())

	idle := make([]net.Conn, 3)
	for i := range idle {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// A round trip forces the conn through admission and onto a
		// worker; the following silence parks it.
		if _, err := fmt.Fprintf(conn, "set statskey%d 0 0 1\r\nx\r\n", i); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 16)
		if _, err := conn.Read(buf); err != nil {
			t.Fatal(err)
		}
		idle[i] = conn
	}
	waitParked(t, srv, 3)

	c := dialTest(t, srv)
	cs, err := c.StatsConns()
	if err != nil {
		t.Fatal(err)
	}
	if cs.ParkedConnections != 3 {
		t.Fatalf("parked_connections = %d, want 3", cs.ParkedConnections)
	}
	// The stats request itself is being served, so its session is live.
	if cs.ActiveSessions < 1 {
		t.Fatalf("active_sessions = %d, want >= 1", cs.ActiveSessions)
	}
	if cs.WorkerCount != 4 {
		t.Fatalf("worker_count = %d, want 4", cs.WorkerCount)
	}
	if cs.CurrConnections != 4 || cs.TotalConnections != 4 {
		t.Fatalf("curr/total connections = %d/%d, want 4/4", cs.CurrConnections, cs.TotalConnections)
	}
	if max := int64(4 * 2 * sessionBufSize); cs.BufferPoolBytes < 0 || cs.BufferPoolBytes > max {
		t.Fatalf("buffer_pool_bytes = %d, want within [0, %d]", cs.BufferPoolBytes, max)
	}
	if cs.MemInuseBytes <= 0 {
		t.Fatalf("mem_inuse_bytes = %d, want > 0", cs.MemInuseBytes)
	}
	if cs.ConnPanics != 0 || cs.RejectedConnections != 0 {
		t.Fatalf("panics/rejected = %d/%d, want 0/0", cs.ConnPanics, cs.RejectedConnections)
	}

	// Once the stats client falls silent it parks too and the pool holds
	// every released buffer.
	waitParked(t, srv, 4)
	if got := srv.parked.Load(); got != 4 {
		t.Fatalf("parked gauge = %d after stats client idles, want 4", got)
	}
}
