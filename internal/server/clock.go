package server

import "time"

// nowNano returns a monotonic timestamp as a duration, isolated here so
// tests could stub it if ever needed.
func nowNano() time.Duration {
	return time.Duration(time.Now().UnixNano())
}

// clock is the stubbable wall clock the park reaper compares idle deadlines
// against (Config.now); everything else keeps using the real clock.
func (s *Server) clock() time.Time {
	if s.cfg.now != nil {
		return s.cfg.now()
	}
	return time.Now()
}
