package server

import "time"

// nowNano returns a monotonic timestamp as a duration, isolated here so
// tests could stub it if ever needed.
func nowNano() time.Duration {
	return time.Duration(time.Now().UnixNano())
}
