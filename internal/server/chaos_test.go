package server

// The chaos suite (run by `make chaos` under GOMAXPROCS=4 -race) drives the
// connection governor and graceful drain through injected faults — resets
// mid-payload, slow-loris dribbles, half-closed sockets, accept storms,
// poisoned handlers — and asserts the robustness contract: the daemon never
// panics, never leaks a session goroutine, keeps the arena conservation
// audit exact, and healthy clients sharing the server with a chaotic cohort
// complete with zero failed requests.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/chaos"
	"cliffhanger/internal/client"
	"cliffhanger/internal/protocol"
	"cliffhanger/internal/store"
)

// startGovernedServer boots a server with the given governor config over a
// fresh cliffhanger-mode store. The caller owns shutdown (srv.Close is still
// registered as a backstop, it is idempotent).
func startGovernedServer(t *testing.T, cfg Config) (*Server, *store.Store) {
	t.Helper()
	st := store.New(store.Config{DefaultMode: store.AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
	if err := st.RegisterTenant("default", 32<<20); err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = "default"
	}
	srv := New(cfg, st)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return srv, st
}

// waitGoroutinesBelow asserts the goroutine count settles back to at most
// want, dumping all stacks on failure — the leak check behind satellite 1.
func waitGoroutinesBelow(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chaosModes runs a chaos scenario against both front ends: the classic
// goroutine-per-connection model and the event-driven parked model, so every
// fault shape (RST, slow-loris, half-close, storm, drain) is proven
// survivable on the polled path too. The scenario receives the mode's base
// Config and layers its own governor settings on top.
func chaosModes(t *testing.T, scenario func(t *testing.T, mode Config)) {
	t.Run("classic", func(t *testing.T) { scenario(t, Config{}) })
	t.Run("parked", func(t *testing.T) {
		scenario(t, Config{Workers: 4, ParkLinger: 200 * time.Microsecond})
	})
}

// TestChaosStormHealthyCohort is the headline acceptance test: a chaotic
// cohort hammers the server through a fault-injecting proxy (latency,
// single-digit-byte partial writes, connections torn mid-payload by a byte
// budget) while a healthy cohort runs the same mixed workload directly.
// The healthy cohort must finish with zero failed requests, the server must
// neither panic nor leak goroutines, and the arena conservation audit must
// balance to the byte afterwards.
func TestChaosStormHealthyCohort(t *testing.T) {
	chaosModes(t, chaosStormHealthyCohort)
}

func chaosStormHealthyCohort(t *testing.T, mode Config) {
	baseline := runtime.NumGoroutine()
	mode.MaxConns = 128
	mode.IdleTimeout = 2 * time.Second
	mode.ReadTimeout = 2 * time.Second
	mode.WriteTimeout = 2 * time.Second
	srv, st := startGovernedServer(t, mode)

	proxy := chaos.New(chaos.Config{
		Target:          srv.Addr(),
		Latency:         200 * time.Microsecond,
		Jitter:          300 * time.Microsecond,
		ChunkSize:       7,
		ResetAfterBytes: 2048,
		Seed:            1,
	})
	if err := proxy.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	const (
		chaoticWorkers = 8
		healthyWorkers = 4
		opsPerWorker   = 60
	)
	var wg sync.WaitGroup
	healthyErrs := make(chan error, healthyWorkers)

	// Chaotic cohort: each worker keeps one client whose proxied link dies
	// mid-stream every 2 KiB; errors are expected and the client's
	// poison-and-reconnect discipline dials a fresh (equally doomed) link.
	for w := 0; w < chaoticWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(proxy.Addr(), 2*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			for op := 0; op < opsPerWorker; op++ {
				key := fmt.Sprintf("chaos-%d-%d", w, op%16)
				c.Set(key, bytes.Repeat([]byte{byte('a' + w)}, 64+op))
				c.Get(key)
			}
		}(w)
	}
	// Healthy cohort: direct connections, retries enabled; every request
	// must succeed even while the chaotic cohort tears connections.
	for w := 0; w < healthyWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.DialOptions(srv.Addr(), client.Options{
				DialTimeout: 2 * time.Second,
				OpTimeout:   2 * time.Second,
				MaxRetries:  3,
			})
			if err != nil {
				healthyErrs <- fmt.Errorf("healthy dial: %w", err)
				return
			}
			defer c.Close()
			for op := 0; op < opsPerWorker; op++ {
				key := fmt.Sprintf("healthy-%d-%d", w, op%16)
				val := bytes.Repeat([]byte{byte('A' + w)}, 128)
				if err := c.Set(key, val); err != nil {
					healthyErrs <- fmt.Errorf("healthy set %s: %w", key, err)
					return
				}
				got, ok, err := c.Get(key)
				if err != nil || !ok || !bytes.Equal(got, val) {
					healthyErrs <- fmt.Errorf("healthy get %s: ok=%v err=%v", key, ok, err)
					return
				}
			}
			healthyErrs <- nil
		}(w)
	}
	wg.Wait()
	for i := 0; i < healthyWorkers; i++ {
		if err := <-healthyErrs; err != nil {
			t.Errorf("healthy cohort failure: %v", err)
		}
	}

	proxy.Close()
	if proxy.Resets() == 0 {
		t.Fatal("chaos proxy injected no resets; the storm tested nothing")
	}

	// Traffic quiesced: the arena must balance to the byte.
	waitCond(t, func() bool { return srv.ConnStats().CurrConnections == 0 }, "connections to drain")
	if err := st.AuditConservation("default"); err != nil {
		t.Fatalf("arena conservation after chaos storm: %v", err)
	}
	stats := srv.ConnStats()
	if stats.ConnPanics != 0 {
		t.Fatalf("conn_panics = %d after storm, want 0", stats.ConnPanics)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	waitGoroutinesBelow(t, baseline)
}

// tornStorageCommand is the wire image of a complete storage command; the
// torn-command tests replay every proper prefix of it.
const tornStorageCommand = "set tornkey 0 0 5\r\nhello\r\n"

// TestChaosTornStorageEveryByteBoundary tears a storage command at every
// byte boundary — header, mid-header, mid-payload, mid-terminator — by
// writing the prefix and slamming the connection shut with an RST. The
// server must survive every one of them and keep serving.
func TestChaosTornStorageEveryByteBoundary(t *testing.T) {
	chaosModes(t, chaosTornStorageEveryByteBoundary)
}

func chaosTornStorageEveryByteBoundary(t *testing.T, mode Config) {
	baseline := runtime.NumGoroutine()
	mode.IdleTimeout = time.Second
	mode.ReadTimeout = time.Second
	srv, st := startGovernedServer(t, mode)

	for i := 0; i < len(tornStorageCommand); i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if _, err := io.WriteString(conn, tornStorageCommand[:i]); err != nil {
				t.Fatalf("prefix %d: %v", i, err)
			}
		}
		// RST rather than FIN on odd boundaries: both teardown shapes must
		// be survivable.
		if i%2 == 1 {
			conn.(*net.TCPConn).SetLinger(0)
		}
		conn.Close()
	}

	// The server is still healthy: a full round trip works and the torn key
	// never landed.
	c := dialTest(t, srv)
	if _, ok, err := c.Get("tornkey"); err != nil || ok {
		t.Fatalf("torn set must not land: ok=%v err=%v", ok, err)
	}
	if err := c.Set("after-torture", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	waitCond(t, func() bool { return srv.ConnStats().CurrConnections == 0 }, "torn conns to drain")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	waitGoroutinesBelow(t, baseline)
}

// TestChaosTornMidPayloadViaProxy replays a full workload through the chaos
// proxy with a byte budget landing mid-payload, proving the proxy-shaped
// tear (partial data block forwarded, then RST) is as survivable as the raw
// one.
func TestChaosTornMidPayloadViaProxy(t *testing.T) {
	chaosModes(t, chaosTornMidPayloadViaProxy)
}

func chaosTornMidPayloadViaProxy(t *testing.T, mode Config) {
	mode.IdleTimeout = time.Second
	mode.ReadTimeout = time.Second
	srv, _ := startGovernedServer(t, mode)

	// Budgets chosen to tear inside the header, at the header/payload seam,
	// and inside the data block.
	for _, budget := range []int64{3, 17, 19, 22, 24} {
		proxy := chaos.New(chaos.Config{Target: srv.Addr(), ResetAfterBytes: budget, ChunkSize: 1})
		if err := proxy.Start(); err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", proxy.Addr())
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(conn, tornStorageCommand)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		io.Copy(io.Discard, conn) // wait for the tear
		conn.Close()
		waitCond(t, func() bool { return proxy.Resets() == 1 }, "proxy reset")
		proxy.Close()
	}

	c := dialTest(t, srv)
	defer c.Close()
	if _, ok, err := c.Get("tornkey"); err != nil || ok {
		t.Fatalf("torn set must not land: ok=%v err=%v", ok, err)
	}
	if err := c.Set("proxy-torture", []byte("alive")); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSlowLoris proves the per-command read deadline is absolute: a
// client dribbling a storage command one byte at a time — each byte well
// inside any per-read window — is torn down once the whole command overruns
// ReadTimeout, freeing the session goroutine and counting a conn timeout.
func TestChaosSlowLoris(t *testing.T) {
	chaosModes(t, chaosSlowLoris)
}

func chaosSlowLoris(t *testing.T, mode Config) {
	baseline := runtime.NumGoroutine()
	mode.IdleTimeout = 5 * time.Second
	mode.ReadTimeout = 300 * time.Millisecond
	srv, st := startGovernedServer(t, mode)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	var torn bool
	for i := 0; i < len(tornStorageCommand); i++ {
		if _, err := io.WriteString(conn, tornStorageCommand[i:i+1]); err != nil {
			torn = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !torn {
		// Writes may keep succeeding into socket buffers after the server
		// closed; the read surfaces the teardown.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("slow-loris connection survived; read deadline never fired")
		}
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("teardown took %v, want roughly ReadTimeout", elapsed)
	}
	waitCond(t, func() bool { return srv.ConnStats().ConnTimeouts >= 1 }, "conn_timeouts")
	waitCond(t, func() bool { return srv.ConnStats().CurrConnections == 0 }, "session teardown")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	waitGoroutinesBelow(t, baseline)
}

// TestChaosIdleTimeout proves a connection that completes a command and then
// goes silent is reaped by the idle deadline (and only then).
func TestChaosIdleTimeout(t *testing.T) {
	chaosModes(t, chaosIdleTimeout)
}

func chaosIdleTimeout(t *testing.T, mode Config) {
	mode.IdleTimeout = 250 * time.Millisecond
	srv, _ := startGovernedServer(t, mode)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "version\r\n"); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("version = %q, %v", line, err)
	}
	// Now idle. The server must close the connection around IdleTimeout.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("idle connection was never reaped")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("idle reap took %v, want about 250ms", elapsed)
	}
	waitCond(t, func() bool { return srv.ConnStats().ConnTimeouts == 1 }, "conn_timeouts")
}

// TestChaosAcceptStormMaxConns floods a MaxConns-capped server: the excess
// connections must be answered "SERVER_ERROR too many connections" and
// counted, the admitted ones must keep working, and a freed slot must be
// reusable.
func TestChaosAcceptStormMaxConns(t *testing.T) {
	chaosModes(t, chaosAcceptStormMaxConns)
}

func chaosAcceptStormMaxConns(t *testing.T, mode Config) {
	mode.MaxConns = 2
	mode.IdleTimeout = 10 * time.Second
	srv, _ := startGovernedServer(t, mode)

	// Fill both slots with round-tripped (therefore registered) sessions.
	admitted := make([]*client.Client, 2)
	for i := range admitted {
		c := dialTest(t, srv)
		if _, err := c.Version(); err != nil {
			t.Fatal(err)
		}
		admitted[i] = c
	}

	// Storm the full server: every extra connection must be shed with the
	// in-band error, never left hanging.
	const storm = 16
	for i := 0; i < storm; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatalf("storm conn %d: %v", i, err)
		}
		if strings.TrimRight(line, "\r\n") != "SERVER_ERROR too many connections" {
			t.Fatalf("storm conn %d: got %q", i, line)
		}
		conn.Close()
	}
	if got := srv.ConnStats().RejectedConnections; got != storm {
		t.Fatalf("rejected_connections = %d, want %d", got, storm)
	}
	// The admitted sessions were untouched by the storm.
	for _, c := range admitted {
		if _, err := c.Version(); err != nil {
			t.Fatalf("admitted conn broken by storm: %v", err)
		}
	}
	// A freed slot readmits.
	admitted[0].Close()
	waitCond(t, func() bool {
		c, err := client.Dial(srv.Addr(), time.Second)
		if err != nil {
			return false
		}
		defer c.Close()
		_, err = c.Version()
		return err == nil
	}, "slot to free after close")
	admitted[1].Close()
}

// TestChaosPanicRecovery plants a panicking handler behind one magic key:
// the session serving it must die alone — counted in conn_panics — while
// the daemon and every other connection keep working.
func TestChaosPanicRecovery(t *testing.T) {
	chaosModes(t, chaosPanicRecovery)
}

func chaosPanicRecovery(t *testing.T, mode Config) {
	srv, _ := startGovernedServer(t, mode)
	srv.testHookCommand = func(cmd *protocol.Command) {
		if len(cmd.Keys) == 1 && string(cmd.Keys[0]) == "boom" {
			panic("injected handler fault")
		}
	}

	bystander := dialTest(t, srv)
	defer bystander.Close()
	if err := bystander.Set("safe", []byte("v")); err != nil {
		t.Fatal(err)
	}

	victim, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	io.WriteString(victim, "get boom\r\n")
	victim.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := victim.Read(make([]byte, 64)); err == nil {
		t.Fatal("poisoned session answered instead of dying")
	}

	waitCond(t, func() bool { return srv.ConnStats().ConnPanics == 1 }, "conn_panics")
	// The daemon survived: the bystander session still works, and so do new
	// connections.
	if v, ok, err := bystander.Get("safe"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("bystander get after panic = %q %v %v", v, ok, err)
	}
	fresh := dialTest(t, srv)
	defer fresh.Close()
	if _, err := fresh.Version(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosHalfClosedSocket wedges a half-closed socket into the server via
// the proxy's FIN-swallowing fault: the client is gone but the server never
// sees EOF. Only the idle deadline can free the session — and it must.
func TestChaosHalfClosedSocket(t *testing.T) {
	chaosModes(t, chaosHalfClosedSocket)
}

func chaosHalfClosedSocket(t *testing.T, mode Config) {
	mode.IdleTimeout = 300 * time.Millisecond
	srv, _ := startGovernedServer(t, mode)

	proxy := chaos.New(chaos.Config{Target: srv.Addr(), HalfClose: true})
	if err := proxy.Start(); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(conn, "set half 0 0 2\r\nok\r\n")
	r := bufio.NewReader(conn)
	if line, err := r.ReadString('\n'); err != nil || strings.TrimRight(line, "\r\n") != "STORED" {
		t.Fatalf("set through proxy = %q, %v", line, err)
	}
	waitCond(t, func() bool { return srv.ConnStats().CurrConnections == 1 }, "session registration")
	// Client goes away; the proxy swallows the FIN so the server-side socket
	// stays half-open.
	conn.(*net.TCPConn).CloseWrite()
	defer conn.Close()

	waitCond(t, func() bool { return srv.ConnStats().CurrConnections == 0 }, "idle reap of half-closed socket")
	waitCond(t, func() bool { return srv.ConnStats().ConnTimeouts == 1 }, "conn_timeouts")
}

// TestChaosShutdownDrainsInFlight pins the drain guarantee: a pipelined
// batch already accepted when Shutdown begins is answered in full — every
// response, then a clean EOF — and Shutdown returns nil well inside its
// deadline.
func TestChaosShutdownDrainsInFlight(t *testing.T) {
	chaosModes(t, chaosShutdownDrainsInFlight)
}

func chaosShutdownDrainsInFlight(t *testing.T, mode Config) {
	baseline := runtime.NumGoroutine()
	mode.IdleTimeout = 30 * time.Second
	srv, _ := startGovernedServer(t, mode)

	// Gate the first command of the batch so Shutdown provably begins while
	// the batch is in flight: the hook signals when the session is mid-
	// dispatch, and holds it there until the drain has started.
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	srv.testHookCommand = func(*protocol.Command) {
		once.Do(func() {
			close(entered)
			<-gate
		})
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const batch = 16
	var req bytes.Buffer
	for i := 0; i < batch; i++ {
		fmt.Fprintf(&req, "set drain-%d 0 0 4\r\nv%03d\r\n", i, i)
	}
	req.WriteString("version\r\n")
	if _, err := conn.Write(req.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Only start the drain once the session is provably mid-batch.
	<-entered
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	// Give Shutdown time to stop the listener and flip the drain flag while
	// the batch is still gated, then release it.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	for i := 0; i < batch; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("response %d lost in drain: %v", i, err)
		}
		if strings.TrimRight(line, "\r\n") != "STORED" {
			t.Fatalf("response %d = %q, want STORED", i, line)
		}
	}
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("final batch response = %q, %v", line, err)
	}
	// Every in-flight response was answered; now the connection must close.
	if _, err := r.ReadByte(); err != io.EOF {
		t.Fatalf("after drain want EOF, got %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v, want nil (clean drain)", err)
	}
	waitGoroutinesBelow(t, baseline)
}

// TestChaosShutdownWakesIdleConns: sessions parked waiting for their next
// command must not stall the drain — Shutdown wakes and retires them
// immediately, without counting them as timeouts.
func TestChaosShutdownWakesIdleConns(t *testing.T) {
	chaosModes(t, chaosShutdownWakesIdleConns)
}

func chaosShutdownWakesIdleConns(t *testing.T, mode Config) {
	baseline := runtime.NumGoroutine()
	mode.IdleTimeout = time.Hour
	srv, _ := startGovernedServer(t, mode)

	conns := make([]net.Conn, 4)
	for i := range conns {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		io.WriteString(conn, "version\r\n")
		if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
	}
	waitCond(t, func() bool { return srv.ConnStats().CurrConnections == 4 }, "sessions idle")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain of idle conns took %v, want immediate wake", elapsed)
	}
	if n := srv.ConnStats().ConnTimeouts; n != 0 {
		t.Fatalf("conn_timeouts = %d after drain, want 0 (drain wake is not a fault)", n)
	}
	for _, conn := range conns {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("idle conn after drain: want EOF, got %v", err)
		}
	}
	waitGoroutinesBelow(t, baseline)
}

// TestChaosShutdownForcesStragglers: a session wedged writing to a client
// that never reads cannot drain; the ctx deadline must force it closed and
// Shutdown must report the forced exit.
func TestChaosShutdownForcesStragglers(t *testing.T) {
	chaosModes(t, chaosShutdownForcesStragglers)
}

func chaosShutdownForcesStragglers(t *testing.T, mode Config) {
	baseline := runtime.NumGoroutine()
	mode.IdleTimeout = time.Hour
	srv, _ := startGovernedServer(t, mode)

	// Store one value big enough that a deep pipelined GET overfills the
	// socket buffers of a non-reading client, wedging the session in a write.
	seed := dialTest(t, srv)
	big := bytes.Repeat([]byte("x"), 512<<10)
	if err := seed.Set("big", big); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 16; i++ {
		if _, err := io.WriteString(conn, "get big\r\n"); err != nil {
			t.Fatal(err)
		}
	}
	// Never read. Wait until the session is provably wedged mid-write.
	time.Sleep(300 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded (forced teardown)", err)
	}
	waitGoroutinesBelow(t, baseline)
}
