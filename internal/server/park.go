package server

import (
	"bufio"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cliffhanger/internal/netpoll"
)

// The event-driven front end (Config.Workers > 0) breaks the one-goroutine-
// one-connection coupling: a connection with no pending bytes is PARKED —
// its worker goroutine and 64 KiB session buffers go back to their pools and
// the bare connection is registered with the netpoll poller — so steady-state
// front-end memory is O(active connections), not O(connections). When bytes
// arrive the poller wakes the connection onto the ready queue, a worker
// leases a session, and the existing pipelined batch loop runs unchanged to
// the batch-boundary flush, which is the natural park point PR 8 established
// as the drain point. Idle reaping moves off the per-connection deadline onto
// a timer wheel scanned by a reaper goroutine, because a parked connection
// has no goroutine left to observe a deadline.
//
// Each connection's lifecycle is a small atomic state machine:
//
//	ACTIVE -> PARKED  (worker: batch done, linger expired with no data)
//	PARKED -> WAKING  (poller: bytes or EOF arrived; conn enters ready queue)
//	WAKING -> ACTIVE  (worker: leased a session, serving again)
//	PARKED -> CLOSED  (reaper: idle deadline; shutdown sweep)
//	ACTIVE -> CLOSED  (worker: EOF, error, drain)
//
// Every transition is a CAS, so a reaper expiring a connection, the poller
// waking it, and a shutdown sweeping it can race freely: exactly one wins,
// and the losers see the state move under them and stand down.
const (
	connStateActive int32 = iota
	connStateParked
	connStateWaking
	connStateClosed
)

// sessionBufSize is the per-direction bufio size of a session. In parked
// mode sessions are pooled, so this is paid per worker, not per connection.
const sessionBufSize = 64 << 10

// defaultParkLinger is how long a worker waits at an empty batch boundary
// for the next command before parking the connection. Long enough that a
// closed-loop client's next pipelined batch (one RTT away) keeps the
// blocking fast path; short enough that a quiet connection releases its
// worker and buffers almost immediately.
const defaultParkLinger = 200 * time.Microsecond

// parkedConn is the per-connection state that survives parking: the bare
// connection, its governed transport, the poller token, and the tenant the
// session selected (tenant stickiness across park/wake). At ~200 bytes it is
// what an idle connection costs instead of a goroutine plus 128 KiB of
// session buffers.
type parkedConn struct {
	conn       net.Conn
	rc         syscall.RawConn
	gc         governedConn
	token      uint64
	tenant     string
	state      atomic.Int32
	registered atomic.Bool

	// Timer-wheel links, guarded by the wheel's mutex. The idle timeout is
	// uniform, so insertion order is deadline order and one FIFO list
	// suffices for a "wheel".
	prev, next *parkedConn
	deadline   time.Time
	inWheel    bool
}

// parkedRuntime owns the shared machinery of the event-driven front end.
type parkedRuntime struct {
	poll     netpoll.Poller
	linger   time.Duration
	workers  int
	readyq   readyQueue
	sessions sessionPool
	wheel    parkWheel

	mu        sync.Mutex
	conns     map[uint64]*parkedConn // token -> conn, for poller callbacks
	nextToken uint64

	reaperStop chan struct{}
	stopOnce   sync.Once
	closeOnce  sync.Once
}

// startParkedRuntime builds the poller, the worker pool and the reaper.
// Called from Start when Config.Workers > 0.
func (s *Server) startParkedRuntime() error {
	workers := s.cfg.Workers
	bufs := s.cfg.ConnBuffers
	if bufs <= 0 {
		bufs = workers
	}
	linger := s.cfg.ParkLinger
	if linger <= 0 {
		linger = defaultParkLinger
	}
	pr := &parkedRuntime{
		linger:     linger,
		workers:    workers,
		conns:      make(map[uint64]*parkedConn),
		reaperStop: make(chan struct{}),
	}
	pr.readyq.cond = sync.NewCond(&pr.readyq.mu)
	pr.sessions.init(s, bufs)
	// The callback captures pr rather than reading s.pr: everything in pr
	// except poll is initialized before New spawns the poller goroutine, so
	// goroutine creation orders those fields; poll itself is published under
	// pr.mu below and fetched under it on the callback path (releaseConn).
	poll, err := netpoll.New(func(token uint64) { s.connReady(pr, token) })
	if err != nil {
		return err
	}
	pr.mu.Lock()
	pr.poll = poll
	pr.mu.Unlock()
	s.pr = pr
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	if s.cfg.IdleTimeout > 0 {
		s.wg.Add(1)
		go s.reaperLoop()
	}
	return nil
}

// stopParkedRuntime begins shutdown of the parked front end: every parked
// connection is closed (it sits at a command boundary with nothing buffered
// in either direction, so this IS its graceful drain), the reaper is
// stopped, and the ready queue is closed — workers serve what is already
// queued, then exit. Idempotent; shared by Close and Shutdown.
func (s *Server) stopParkedRuntime() {
	pr := s.pr
	if pr == nil {
		return
	}
	pr.stopOnce.Do(func() {
		pr.mu.Lock()
		swept := make([]*parkedConn, 0, len(pr.conns))
		for _, pc := range pr.conns {
			swept = append(swept, pc)
		}
		pr.mu.Unlock()
		for _, pc := range swept {
			if pc.state.CompareAndSwap(connStateParked, connStateClosed) {
				s.parked.Add(-1)
				pr.wheel.remove(pc)
				s.releaseConn(pr, pc)
			}
		}
		close(pr.reaperStop)
		pr.readyq.close()
	})
}

// closePoller shuts the poller down. Must run after wg.Wait: by then every
// connection has been released, which is what unblocks the fallback
// poller's watcher goroutines.
func (s *Server) closePoller() {
	pr := s.pr
	if pr == nil {
		return
	}
	pr.closeOnce.Do(func() { pr.poll.Close() })
}

// admitParked hands a freshly accepted connection to the parked front end:
// it is pushed onto the ready queue as ACTIVE so a worker greets it, serves
// any immediate commands, and parks it when it goes quiet. The accept loop
// has already registered the conn in s.conns and bumped the counters.
func (s *Server) admitParked(conn net.Conn) {
	sc, ok := conn.(syscall.Conn)
	var rc syscall.RawConn
	var err error
	if ok {
		rc, err = sc.SyscallConn()
	}
	var fd uintptr
	if err == nil && rc != nil {
		err = rc.Control(func(f uintptr) { fd = f })
	}
	if !ok || err != nil {
		// Not a pollable descriptor; serve it the classic way.
		s.wg.Add(1)
		go s.serveConn(conn)
		return
	}
	pr := s.pr
	pc := &parkedConn{conn: conn, rc: rc, tenant: s.cfg.DefaultTenant}
	pc.gc = governedConn{
		Conn:   conn,
		srv:    s,
		idle:   s.cfg.IdleTimeout,
		read:   s.cfg.ReadTimeout,
		write:  s.cfg.WriteTimeout,
		linger: pr.linger,
		// The raw fd backs the linger's non-blocking MSG_PEEK probe. It is
		// only ever peeked while a worker owns the connection, so it cannot
		// be closed (and its number reused) under the probe.
		fd: fd,
	}
	pr.mu.Lock()
	pr.nextToken++
	pc.token = pr.nextToken
	pr.conns[pc.token] = pc
	pr.mu.Unlock()
	if !pr.readyq.push(pc) {
		// Raced a shutdown: the sweep cannot see an ACTIVE conn, so close
		// it here.
		if pc.state.CompareAndSwap(connStateActive, connStateClosed) {
			s.releaseConn(pr, pc)
		}
	}
}

// connReady is the poller callback: bytes (or EOF) arrived for a parked
// connection. It runs on the poller's goroutine, so it only flips state and
// queues the conn for a worker. Stale wakes — the token already removed, or
// the conn no longer PARKED because a reaper or shutdown won the race — are
// dropped here, which is what makes late poller callbacks harmless.
func (s *Server) connReady(pr *parkedRuntime, token uint64) {
	pr.mu.Lock()
	pc := pr.conns[token]
	pr.mu.Unlock()
	if pc == nil {
		return
	}
	if !pc.state.CompareAndSwap(connStateParked, connStateWaking) {
		return
	}
	s.parked.Add(-1)
	pr.wheel.remove(pc)
	if !pr.readyq.push(pc) {
		if pc.state.CompareAndSwap(connStateWaking, connStateClosed) {
			s.releaseConn(pr, pc)
		}
	}
}

func (s *Server) workerLoop() {
	defer s.wg.Done()
	// Each worker owns one ReadWaiter for its linger waits; workers serve
	// one connection at a time, so one per worker is exactly enough.
	waiter, err := netpoll.NewReadWaiter()
	if err != nil {
		// Degraded but correct: lingerWait falls back to a single probe, so
		// quiet connections just park a little more eagerly.
		waiter = nil
	} else {
		defer waiter.Close()
	}
	for {
		pc := s.pr.readyq.pop()
		if pc == nil {
			return
		}
		s.serveWake(pc, waiter)
	}
}

// serveWake leases a session onto a woken (or freshly accepted) connection
// and serves pipelined batches until the connection parks again or closes.
// A handler panic tears only this connection — the session itself is safe
// to re-pool because bind resets the buffers and the parser resets per
// command.
func (s *Server) serveWake(pc *parkedConn, waiter netpoll.ReadWaiter) {
	pc.state.Store(connStateActive)
	// Lease this worker's waiter to the connection for the serve. No clear
	// afterwards: the field is only read while a worker owns the conn, and
	// the next lease overwrites it — a deferred clear here would race the
	// next worker if the conn parks and wakes before this frame unwinds.
	pc.gc.waiter = waiter
	c := s.pr.sessions.get()
	s.activeSessions.Add(1)
	park := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.panics.Add(1)
				s.logf("server: panic serving %v: %v\n%s", pc.conn.RemoteAddr(), r, debug.Stack())
				park = false
			}
		}()
		c.bind(pc)
		park = c.runBatches()
	}()
	c.unbind(pc)
	s.activeSessions.Add(-1)
	s.pr.sessions.put(c)
	if park {
		s.park(pc)
		return
	}
	if pc.state.CompareAndSwap(connStateActive, connStateClosed) {
		s.releaseConn(s.pr, pc)
	}
}

// runBatches drives the ordinary step loop and reports whether the
// connection should be parked (true) or closed (false). step signals a park
// by setting wantPark when the boundary linger deadline expires with no
// bytes read; any other exit means EOF, error, or drain.
func (c *session) runBatches() bool {
	for {
		for c.step() {
		}
		if !c.wantPark {
			return false
		}
		c.wantPark = false
		if c.r.Buffered() != 0 {
			// Bytes raced in between the timeout and here; keep serving —
			// parking would discard them.
			continue
		}
		return !c.srv.draining.Load() && !c.srv.closing.Load()
	}
}

// park transitions ACTIVE -> PARKED and registers the connection with the
// poller. The session and its buffers are already back in their pools; from
// here until the next wake the connection costs only its parkedConn.
func (s *Server) park(pc *parkedConn) {
	pr := s.pr
	// A stale read deadline (from a mid-command arm) would make the
	// fallback poller's readiness wait fire spuriously; clear it before
	// registering. The boundary read already cleared it on the way to the
	// park decision, so this is free on the steady park/wake cycle.
	if pc.gc.armed {
		pc.conn.SetReadDeadline(time.Time{})
		pc.gc.armed = false
	}
	if !pc.state.CompareAndSwap(connStateActive, connStateParked) {
		return
	}
	s.parked.Add(1)
	s.parks.Add(1)
	if pc.gc.idle > 0 {
		pr.wheel.add(pc, s.clock().Add(pc.gc.idle))
	}
	var err error
	if pc.registered.Load() {
		err = pr.poll.Arm(pc.token)
	} else {
		err = pr.poll.Add(pc.rc, pc.token)
		if err == nil {
			pc.registered.Store(true)
		}
	}
	if err != nil || s.draining.Load() || s.closing.Load() {
		// Registration failed, or shutdown began while we were parking and
		// its sweep may already have passed this connection. Unpark and
		// close; if the poller got armed first, a concurrent wake may win
		// the CAS instead, and the drained ready queue closes it then.
		if pc.state.CompareAndSwap(connStateParked, connStateClosed) {
			s.parked.Add(-1)
			pr.wheel.remove(pc)
			s.releaseConn(pr, pc)
		}
	}
}

// releaseConn finally closes a connection that reached CLOSED: deregisters
// it from the poller and both connection tables, and mirrors the classic
// serveConn cleanup accounting.
func (s *Server) releaseConn(pr *parkedRuntime, pc *parkedConn) {
	// Fetch poll under pr.mu: on the poller-callback path this goroutine may
	// predate the pr.poll assignment, and the mutex supplies the ordering.
	pr.mu.Lock()
	poll := pr.poll
	delete(pr.conns, pc.token)
	pr.mu.Unlock()
	if pc.registered.Load() {
		poll.Remove(pc.token)
	}
	s.mu.Lock()
	delete(s.conns, pc.conn)
	s.mu.Unlock()
	s.curr.Add(-1)
	pc.conn.Close()
}

// reaperLoop enforces IdleTimeout for parked connections: it ticks on real
// time but compares wheel deadlines against the stubbable server clock, so
// tests can age parked connections without sleeping. An expired connection
// counts in conn_timeouts exactly like a classic idle-deadline close.
func (s *Server) reaperLoop() {
	defer s.wg.Done()
	pr := s.pr
	tick := s.cfg.IdleTimeout / 8
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var expired []*parkedConn
	for {
		select {
		case <-pr.reaperStop:
			return
		case <-t.C:
		}
		expired = pr.wheel.popExpired(s.clock(), expired[:0])
		for _, pc := range expired {
			if pc.state.CompareAndSwap(connStateParked, connStateClosed) {
				s.parked.Add(-1)
				s.timeouts.Add(1)
				s.releaseConn(pr, pc)
			}
		}
	}
}

// parkWheel tracks parked connections' idle deadlines. Because every
// connection gets the same IdleTimeout, parking order is deadline order and
// the "wheel" degenerates to one intrusive FIFO list: add appends, the
// reaper pops expired heads, and wake unlinks from anywhere in O(1).
type parkWheel struct {
	mu         sync.Mutex
	head, tail *parkedConn
}

func (w *parkWheel) add(pc *parkedConn, deadline time.Time) {
	w.mu.Lock()
	pc.deadline = deadline
	pc.inWheel = true
	pc.prev = w.tail
	pc.next = nil
	if w.tail != nil {
		w.tail.next = pc
	} else {
		w.head = pc
	}
	w.tail = pc
	w.mu.Unlock()
}

func (w *parkWheel) remove(pc *parkedConn) {
	w.mu.Lock()
	if pc.inWheel {
		w.unlink(pc)
	}
	w.mu.Unlock()
}

func (w *parkWheel) unlink(pc *parkedConn) {
	if pc.prev != nil {
		pc.prev.next = pc.next
	} else {
		w.head = pc.next
	}
	if pc.next != nil {
		pc.next.prev = pc.prev
	} else {
		w.tail = pc.prev
	}
	pc.prev, pc.next = nil, nil
	pc.inWheel = false
}

// popExpired unlinks and returns every connection whose deadline has
// passed, appending to buf so the reaper can reuse one slice.
func (w *parkWheel) popExpired(now time.Time, buf []*parkedConn) []*parkedConn {
	w.mu.Lock()
	for w.head != nil && !w.head.deadline.After(now) {
		pc := w.head
		w.unlink(pc)
		buf = append(buf, pc)
	}
	w.mu.Unlock()
	return buf
}

// readyQueue hands woken connections to workers. The backing slice is
// reused (head index instead of re-slicing away the front), so a park/wake
// cycle pushes and pops without allocating.
type readyQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*parkedConn
	head   int
	closed bool
}

// push enqueues pc, reporting false if the queue is closed (the caller must
// close the connection itself — workers are gone or leaving).
func (q *readyQueue) push(pc *parkedConn) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, pc)
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// pop blocks for the next connection. After close it drains what is queued
// — those conns still get served, which is what lets a graceful drain
// answer wakes that were already in flight — then returns nil.
func (q *readyQueue) pop() *parkedConn {
	q.mu.Lock()
	for q.head >= len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head < len(q.items) {
		pc := q.items[q.head]
		q.items[q.head] = nil
		q.head++
		if q.head == len(q.items) {
			q.items = q.items[:0]
			q.head = 0
		}
		q.mu.Unlock()
		return pc
	}
	q.mu.Unlock()
	return nil
}

func (q *readyQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// sessionPool is the budgeted buffer pool: at most max sessions (each two
// 64 KiB bufio buffers plus parser state) ever exist, built lazily and
// recycled LIFO for cache warmth. get blocks when all sessions are leased,
// which is what bounds front-end memory at O(ConnBuffers) no matter how
// many connections wake at once.
type sessionPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	free    []*session
	created int
	max     int
	srv     *Server
}

func (p *sessionPool) init(s *Server, max int) {
	p.srv = s
	p.max = max
	p.cond = sync.NewCond(&p.mu)
}

func (p *sessionPool) get() *session {
	p.mu.Lock()
	for {
		if n := len(p.free); n > 0 {
			c := p.free[n-1]
			p.free[n-1] = nil
			p.free = p.free[:n-1]
			p.mu.Unlock()
			return c
		}
		if p.created < p.max {
			p.created++
			p.mu.Unlock()
			return newSession(p.srv,
				bufio.NewReaderSize(nil, sessionBufSize),
				bufio.NewWriterSize(nil, sessionBufSize))
		}
		p.cond.Wait()
	}
}

func (p *sessionPool) put(c *session) {
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
	p.cond.Signal()
}

// bytes reports the pool's buffer footprint for the buffer_pool_bytes stat.
func (p *sessionPool) bytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.created) * 2 * sessionBufSize
}

// bind points a pooled session at a connection: the bufio pair is reset
// onto the governed transport (no allocation) and the connection's sticky
// tenant selection is restored.
func (c *session) bind(pc *parkedConn) {
	c.gc = &pc.gc
	c.tenant = pc.tenant
	c.r.Reset(c.gc)
	c.w.Reset(c.gc)
}

// unbind saves per-connection state back onto the parkedConn before the
// session returns to the pool.
func (c *session) unbind(pc *parkedConn) {
	pc.tenant = c.tenant
	c.gc = nil
}
