package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"testing"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/store"
)

// newGateSession builds a session over an in-memory command stream, backed by
// a synchronous-bookkeeping store (the deterministic mode: every structural
// event applies inline, so nothing is amortized away into a background
// drain). reset rewinds the stream so each AllocsPerRun iteration replays the
// same command.
func newGateSession(t *testing.T, payload []byte) (c *session, reset func()) {
	t.Helper()
	st := store.New(store.Config{
		DefaultMode:     store.AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	t.Cleanup(func() { st.Close() })
	if err := st.RegisterTenant("default", 64<<20); err != nil {
		t.Fatal(err)
	}
	if err := st.SetItemBytes("default", []byte("key-1"), make([]byte, 128), 7, 0); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{DefaultTenant: "default"}, st)
	br := bytes.NewReader(payload)
	r := bufio.NewReaderSize(br, 64<<10)
	c = newSession(srv, r, bufio.NewWriterSize(io.Discard, 64<<10))
	reset = func() {
		br.Reset(payload)
		r.Reset(br)
	}
	return c, reset
}

// TestAllocGateServerGet is the hot-path allocation gate (run by `make
// alloccheck` and CI): a steady-state single-key GET through the full
// protocol parse + server handler + store lookup + response write performs
//
//   - 0 heap allocations on a hit (the zero-copy parser, the VALUE response
//     streamed from the epoch-pinned arena view, and the byte-keyed store
//     lookup reusing the record's interned key), and
//   - 0 on a miss too (the lookup event's key rides a pooled per-shard
//     buffer returned once the event replays).
func TestAllocGateServerGet(t *testing.T) {
	c, reset := newGateSession(t, []byte("get key-1\r\n"))
	step := func() {
		reset()
		if !c.step() {
			t.Fatal("session stopped on a healthy GET")
		}
	}
	step() // warm the parser and scratch buffers
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("steady-state GET hit allocates %.2f objects/op, want 0", allocs)
	}

	c, reset = newGateSession(t, []byte("get no-such-key\r\n"))
	step()
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("steady-state GET miss allocates %.2f objects/op, want 0 (pooled event key buffer)", allocs)
	}
}

// TestAllocGateServerSet pins the SET floor through the same full path: with
// the slab arena a steady-state re-set allocates NOTHING — the value bytes
// are copied from the parse buffer into the record's recycled chunk under
// the shard lock, and the record and interned key are reused.
func TestAllocGateServerSet(t *testing.T) {
	c, reset := newGateSession(t, []byte("set key-1 7 0 128\r\n"+string(make([]byte, 128))+"\r\n"))
	step := func() {
		reset()
		if !c.step() {
			t.Fatal("session stopped on a healthy SET")
		}
	}
	step()
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("steady-state SET allocates %.2f objects/op, want 0 (chunk and record recycled)", allocs)
	}
}

// TestAllocGateServerAppend pins append through the full protocol path: the
// concatenation is assembled into a fresh chunk popped from the freelist
// (copy-on-write, so pinned readers never see a torn value) while the old
// chunk cycles through quarantine back to the freelist, so a re-set+append
// command pair allocates nothing.
func TestAllocGateServerAppend(t *testing.T) {
	payload := "set key-1 7 0 128\r\n" + string(make([]byte, 128)) + "\r\n" +
		"append key-1 0 0 16\r\n" + string(make([]byte, 16)) + "\r\n"
	c, reset := newGateSession(t, []byte(payload))
	step := func() {
		reset()
		if !c.step() || !c.step() {
			t.Fatal("session stopped on a healthy SET+APPEND")
		}
	}
	step()
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("steady-state SET+APPEND allocates %.2f objects/op, want 0 (in-chunk assembly)", allocs)
	}
}

// TestSessionClosesOnOversizedLine pins the anti-desync rule for command
// lines past protocol.MaxLineLength: such a line may have been a storage
// command whose announced data block is still unread, so the session must
// answer CLIENT_ERROR and close instead of executing payload bytes as
// commands. Lines merely longer than the read buffer (large multigets) must
// still be served.
func TestSessionClosesOnOversizedLine(t *testing.T) {
	st := store.New(store.Config{
		DefaultMode:     store.AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	t.Cleanup(func() { st.Close() })
	if err := st.RegisterTenant("default", 8<<20); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{DefaultTenant: "default"}, st)

	// Over-cap storage header followed by a payload that must NOT run.
	pad := bytes.Repeat([]byte(" "), 1<<21)
	input := append([]byte("set k 0 0 5"), pad...)
	input = append(input, []byte("\r\nhello\r\nversion\r\n")...)
	var out bytes.Buffer
	w := bufio.NewWriter(&out)
	c := newSession(srv, bufio.NewReaderSize(bytes.NewReader(input), 4096), w)
	if c.step() {
		t.Fatalf("session must close after an over-cap line")
	}
	w.Flush()
	if got := out.String(); !bytes.HasPrefix([]byte(got), []byte("CLIENT_ERROR")) || bytes.Contains([]byte(got), []byte("VERSION")) {
		t.Fatalf("over-cap line response = %q", got)
	}

	// An unparseable <bytes> field is equally fatal: the announced data
	// block cannot be located, so the payload must not execute as commands.
	out.Reset()
	w = bufio.NewWriter(&out)
	c = newSession(srv, bufio.NewReaderSize(bytes.NewReader([]byte("set k 0 0 5x\r\nflush_all\r\n")), 4096), w)
	if c.step() {
		t.Fatalf("session must close on an unparseable bytes field")
	}
	w.Flush()
	if got := out.String(); !bytes.HasPrefix([]byte(got), []byte("CLIENT_ERROR")) {
		t.Fatalf("bad bytes response = %q", got)
	}

	// A large (but under-cap) multiget still works end to end.
	if err := st.SetItemBytes("default", []byte("mk-7"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	var get bytes.Buffer
	get.WriteString("get")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&get, " mk-%d", i)
	}
	get.WriteString("\r\n")
	out.Reset()
	w = bufio.NewWriter(&out)
	c = newSession(srv, bufio.NewReaderSize(bytes.NewReader(get.Bytes()), 4096), w)
	if !c.step() {
		t.Fatalf("large multiget must keep the session open")
	}
	w.Flush()
	if got := out.String(); got != "VALUE mk-7 0 1\r\nv\r\nEND\r\n" {
		t.Fatalf("large multiget response = %q", got)
	}
}

// TestSessionStreamedMultiGet checks the streamed (no []Value buffering)
// multi-key GET writes byte-identical responses: present keys emit VALUE
// blocks in request order, absent keys are skipped, END terminates.
func TestSessionStreamedMultiGet(t *testing.T) {
	st := store.New(store.Config{
		DefaultMode:     store.AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	t.Cleanup(func() { st.Close() })
	if err := st.RegisterTenant("default", 8<<20); err != nil {
		t.Fatal(err)
	}
	if err := st.SetItemBytes("default", []byte("a"), []byte("one"), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.SetItemBytes("default", []byte("b"), []byte("two"), 2, 0); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{DefaultTenant: "default"}, st)
	var out bytes.Buffer
	w := bufio.NewWriter(&out)
	c := newSession(srv, bufio.NewReader(bytes.NewReader([]byte("get b missing a\r\ngets a\r\n"))), w)
	if !c.step() || !c.step() {
		t.Fatal("session stopped early")
	}
	w.Flush()
	// CAS tokens are per value shard, so each of the two keys carries token 1.
	want := "VALUE b 2 3\r\ntwo\r\nVALUE a 1 3\r\none\r\nEND\r\n" +
		"VALUE a 1 3 1\r\none\r\nEND\r\n"
	if got := out.String(); got != want {
		t.Fatalf("streamed response = %q, want %q", got, want)
	}
}
