package server

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/client"
	"cliffhanger/internal/store"
)

func startTestServer(t *testing.T, mode store.AllocationMode) (*Server, *store.Store) {
	t.Helper()
	st := store.New(store.Config{DefaultMode: mode, DefaultPolicy: cache.PolicyLRU})
	if err := st.RegisterTenant("default", 8<<20); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterTenant("app2", 4<<20); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Addr: "127.0.0.1:0", DefaultTenant: "default"}, st)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, st
}

func dialTest(t *testing.T, srv *Server) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerSetGetDelete(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocCliffhanger)
	c := dialTest(t, srv)

	if _, ok, err := c.Get("missing"); err != nil || ok {
		t.Fatalf("get of missing key: ok=%v err=%v", ok, err)
	}
	if err := c.Set("greeting", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("greeting")
	if err != nil || !ok || string(v) != "hello world" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	if deleted, err := c.Delete("greeting"); err != nil || !deleted {
		t.Fatalf("delete = %v %v", deleted, err)
	}
	if deleted, _ := c.Delete("greeting"); deleted {
		t.Fatalf("second delete should report NOT_FOUND")
	}
	if v, err := c.Version(); err != nil || v == "" {
		t.Fatalf("version = %q %v", v, err)
	}
}

func TestServerBinaryValuesAndMultiGet(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocDefault)
	c := dialTest(t, srv)

	binary := make([]byte, 1024)
	for i := range binary {
		binary[i] = byte(i % 251)
	}
	binary[10] = '\r'
	binary[11] = '\n'
	if err := c.Set("binary", binary); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte(strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.GetMulti([]string{"k0", "k3", "binary", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("GetMulti returned %d values, want 3", len(got))
	}
	if string(got["k3"]) != "3" {
		t.Fatalf("k3 = %q", got["k3"])
	}
	if len(got["binary"]) != len(binary) {
		t.Fatalf("binary value corrupted: %d bytes", len(got["binary"]))
	}
	for i := range binary {
		if got["binary"][i] != binary[i] {
			t.Fatalf("binary value differs at byte %d", i)
		}
	}
}

func TestServerTenantIsolationAndStats(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocCliffhanger)
	c1 := dialTest(t, srv)
	c2 := dialTest(t, srv)

	if err := c1.Set("shared-key", []byte("tenant-default")); err != nil {
		t.Fatal(err)
	}
	if err := c2.SelectTenant("app2"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c2.Get("shared-key"); ok {
		t.Fatalf("tenants must be isolated")
	}
	if err := c2.Set("shared-key", []byte("tenant-app2")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := c1.Get("shared-key")
	if !ok || string(v) != "tenant-default" {
		t.Fatalf("default tenant value clobbered: %q %v", v, ok)
	}
	stats, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["tenant"] != "app2" {
		t.Fatalf("stats tenant = %q", stats["tenant"])
	}
	if stats["cmd_set"] == "" || stats["hit_rate"] == "" {
		t.Fatalf("stats missing fields: %v", stats)
	}
	if err := c2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c2.Get("shared-key"); ok {
		t.Fatalf("flush_all did not clear tenant")
	}
}

func TestServerUnknownCommandRecovers(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocDefault)
	c := dialTest(t, srv)
	// A single-line command with an invalid key (too long) draws a
	// CLIENT_ERROR but must leave the connection usable.
	longKey := make([]byte, 300)
	for i := range longKey {
		longKey[i] = 'k'
	}
	if _, err := c.Delete(string(longKey)); err == nil {
		t.Fatalf("over-long key should produce an error")
	}
	// Connection must still work afterwards.
	if err := c.Set("good-key", []byte("x")); err != nil {
		t.Fatalf("connection unusable after protocol error: %v", err)
	}
}

// TestServerPipelinedCommands writes a whole batch of commands in one TCP
// segment and checks every response arrives, in order, from the parse-ahead
// write path.
func TestServerPipelinedCommands(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocCliffhanger)
	c := dialTest(t, srv)

	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("p%d", i)
	}
	if err := c.PipelineSet(keys, []byte("vvv")); err != nil {
		t.Fatal(err)
	}
	got, err := c.PipelineGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("pipelined get returned %d of %d values", len(got), len(keys))
	}
	for _, k := range keys {
		if string(got[k]) != "vvv" {
			t.Fatalf("%s = %q", k, got[k])
		}
	}
	// A batch mixing verbs, including a failing one mid-stream, must still
	// produce one response per command in order.
	if err := c.Set("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PipelineGet([]string{"x", "missing", "x"}); err != nil {
		t.Fatal(err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocCliffhanger)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d-k%d", id, i%50)
				if err := c.Set(key, []byte("value")); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Ops.Ops() == 0 {
		t.Fatalf("server recorded no operations")
	}
	if srv.GetLatency.Count() == 0 || srv.SetLatency.Count() == 0 {
		t.Fatalf("latency histograms empty")
	}
}

// BenchmarkServerPipelined measures end-to-end server throughput at
// pipeline depths 1 (closed-loop request/response) and 64 (batched): the
// parse-ahead write path should make deep pipelines several times cheaper
// per operation by amortizing flush syscalls across the batch.
func BenchmarkServerPipelined(b *testing.B) {
	for _, depth := range []int{1, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			st := store.New(store.Config{DefaultMode: store.AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
			defer st.Close()
			if err := st.RegisterTenant("default", 64<<20); err != nil {
				b.Fatal(err)
			}
			srv := New(Config{Addr: "127.0.0.1:0", DefaultTenant: "default"}, st)
			if err := srv.Start(); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			c, err := client.Dial(srv.Addr(), 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			const nKeys = 1 << 12
			keys := make([]string, nKeys)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%d", i)
			}
			if err := c.PipelineSet(keys, make([]byte, 128)); err != nil {
				b.Fatal(err)
			}
			batch := make([]string, depth)
			b.ResetTimer()
			for done := 0; done < b.N; done += depth {
				for j := range batch {
					batch[j] = keys[(done+j)&(nKeys-1)]
				}
				if depth == 1 {
					if _, _, err := c.Get(batch[0]); err != nil {
						b.Fatal(err)
					}
					continue
				}
				if _, err := c.PipelineGet(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
