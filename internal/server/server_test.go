package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/client"
	"cliffhanger/internal/store"
)

func startTestServer(t *testing.T, mode store.AllocationMode) (*Server, *store.Store) {
	t.Helper()
	st := store.New(store.Config{DefaultMode: mode, DefaultPolicy: cache.PolicyLRU})
	if err := st.RegisterTenant("default", 8<<20); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterTenant("app2", 4<<20); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Addr: "127.0.0.1:0", DefaultTenant: "default"}, st)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, st
}

func dialTest(t *testing.T, srv *Server) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerSetGetDelete(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocCliffhanger)
	c := dialTest(t, srv)

	if _, ok, err := c.Get("missing"); err != nil || ok {
		t.Fatalf("get of missing key: ok=%v err=%v", ok, err)
	}
	if err := c.Set("greeting", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("greeting")
	if err != nil || !ok || string(v) != "hello world" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	if deleted, err := c.Delete("greeting"); err != nil || !deleted {
		t.Fatalf("delete = %v %v", deleted, err)
	}
	if deleted, _ := c.Delete("greeting"); deleted {
		t.Fatalf("second delete should report NOT_FOUND")
	}
	if v, err := c.Version(); err != nil || v == "" {
		t.Fatalf("version = %q %v", v, err)
	}
}

func TestServerBinaryValuesAndMultiGet(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocDefault)
	c := dialTest(t, srv)

	binary := make([]byte, 1024)
	for i := range binary {
		binary[i] = byte(i % 251)
	}
	binary[10] = '\r'
	binary[11] = '\n'
	if err := c.Set("binary", binary); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte(strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.GetMulti([]string{"k0", "k3", "binary", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("GetMulti returned %d values, want 3", len(got))
	}
	if string(got["k3"]) != "3" {
		t.Fatalf("k3 = %q", got["k3"])
	}
	if len(got["binary"]) != len(binary) {
		t.Fatalf("binary value corrupted: %d bytes", len(got["binary"]))
	}
	for i := range binary {
		if got["binary"][i] != binary[i] {
			t.Fatalf("binary value differs at byte %d", i)
		}
	}
}

func TestServerTenantIsolationAndStats(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocCliffhanger)
	c1 := dialTest(t, srv)
	c2 := dialTest(t, srv)

	if err := c1.Set("shared-key", []byte("tenant-default")); err != nil {
		t.Fatal(err)
	}
	if err := c2.SelectTenant("app2"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c2.Get("shared-key"); ok {
		t.Fatalf("tenants must be isolated")
	}
	if err := c2.Set("shared-key", []byte("tenant-app2")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := c1.Get("shared-key")
	if !ok || string(v) != "tenant-default" {
		t.Fatalf("default tenant value clobbered: %q %v", v, ok)
	}
	stats, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["tenant"] != "app2" {
		t.Fatalf("stats tenant = %q", stats["tenant"])
	}
	if stats["cmd_set"] == "" || stats["hit_rate"] == "" {
		t.Fatalf("stats missing fields: %v", stats)
	}
	// Epoch-reclamation counters reach the client: epoch_current is at least
	// the arena's initial epoch (1), and the other two parse as integers.
	if epoch, err := strconv.ParseUint(stats["epoch_current"], 10, 64); err != nil || epoch == 0 {
		t.Fatalf("stats epoch_current = %q (%v), want a positive integer", stats["epoch_current"], err)
	}
	if _, err := strconv.ParseInt(stats["epoch_quarantined_chunks"], 10, 64); err != nil {
		t.Fatalf("stats epoch_quarantined_chunks = %q: %v", stats["epoch_quarantined_chunks"], err)
	}
	if _, err := strconv.ParseInt(stats["epoch_deferred_frees"], 10, 64); err != nil {
		t.Fatalf("stats epoch_deferred_frees = %q: %v", stats["epoch_deferred_frees"], err)
	}
	slabs, err := c2.StatsSlabs()
	if err != nil {
		t.Fatal(err)
	}
	if slabs["active_slabs"] == "" || slabs["total_malloced"] == "" {
		t.Fatalf("stats slabs missing totals: %v", slabs)
	}
	sawClass, sawQuarantined := false, false
	for k := range slabs {
		if strings.HasSuffix(k, ":used_chunks") {
			sawClass = true
		}
		if strings.HasSuffix(k, ":quarantined_chunks") {
			sawQuarantined = true
		}
	}
	if !sawClass {
		t.Fatalf("stats slabs reports no class lines for a tenant with a resident value: %v", slabs)
	}
	if !sawQuarantined {
		t.Fatalf("stats slabs reports no quarantined_chunks lines: %v", slabs)
	}
	if err := c2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c2.Get("shared-key"); ok {
		t.Fatalf("flush_all did not clear tenant")
	}
}

func TestServerUnknownCommandRecovers(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocDefault)
	c := dialTest(t, srv)
	// A single-line command with an invalid key (too long) draws a
	// CLIENT_ERROR but must leave the connection usable.
	longKey := make([]byte, 300)
	for i := range longKey {
		longKey[i] = 'k'
	}
	if _, err := c.Delete(string(longKey)); err == nil {
		t.Fatalf("over-long key should produce an error")
	}
	// Connection must still work afterwards.
	if err := c.Set("good-key", []byte("x")); err != nil {
		t.Fatalf("connection unusable after protocol error: %v", err)
	}
}

// TestServerPipelinedCommands writes a whole batch of commands in one TCP
// segment and checks every response arrives, in order, from the parse-ahead
// write path.
func TestServerPipelinedCommands(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocCliffhanger)
	c := dialTest(t, srv)

	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("p%d", i)
	}
	if err := c.PipelineSet(keys, []byte("vvv")); err != nil {
		t.Fatal(err)
	}
	got, err := c.PipelineGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("pipelined get returned %d of %d values", len(got), len(keys))
	}
	for _, k := range keys {
		if string(got[k]) != "vvv" {
			t.Fatalf("%s = %q", k, got[k])
		}
	}
	// A batch mixing verbs, including a failing one mid-stream, must still
	// produce one response per command in order.
	if err := c.Set("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PipelineGet([]string{"x", "missing", "x"}); err != nil {
		t.Fatal(err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocCliffhanger)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d-k%d", id, i%50)
				if err := c.Set(key, []byte("value")); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Ops.Ops() == 0 {
		t.Fatalf("server recorded no operations")
	}
	if srv.GetLatency.Count() == 0 || srv.SetLatency.Count() == 0 {
		t.Fatalf("latency histograms empty")
	}
}

// BenchmarkServerPipelined measures end-to-end server throughput at
// pipeline depths 1 (closed-loop request/response) and 64 (batched): the
// parse-ahead write path should make deep pipelines several times cheaper
// per operation by amortizing flush syscalls across the batch. allocs/op
// covers client and server together (they share the process here); the
// server-side floor is pinned separately by TestAllocGateServerGet.
// Each depth runs against both front ends: classic goroutine-per-connection
// and the event-driven parked model, whose linger must keep a closed-loop
// pipelined client on the blocking fast path. On GOMAXPROCS=1 the parked
// mode still pays one kernel-blocking readability wait per batch boundary
// (the worker's thread must hand its P to the client goroutine and win it
// back), so expect a constant per-batch scheduler-handoff tax there; with
// spare Ps the wait returns in microseconds and the modes converge.
func BenchmarkServerPipelined(b *testing.B) {
	modes := []struct {
		name    string
		workers int
	}{{"classic", 0}, {"parked", 2}}
	for _, depth := range []int{1, 64} {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("depth=%d/%s", depth, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				st := store.New(store.Config{DefaultMode: store.AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
				defer st.Close()
				if err := st.RegisterTenant("default", 64<<20); err != nil {
					b.Fatal(err)
				}
				srv := New(Config{Addr: "127.0.0.1:0", DefaultTenant: "default", Workers: mode.workers}, st)
				if err := srv.Start(); err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				c, err := client.Dial(srv.Addr(), 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				const nKeys = 1 << 12
				keys := make([]string, nKeys)
				for i := range keys {
					keys[i] = fmt.Sprintf("key-%d", i)
				}
				if err := c.PipelineSet(keys, make([]byte, 128)); err != nil {
					b.Fatal(err)
				}
				batch := make([]string, depth)
				b.ResetTimer()
				for done := 0; done < b.N; done += depth {
					for j := range batch {
						batch[j] = keys[(done+j)&(nKeys-1)]
					}
					if depth == 1 {
						if _, _, err := c.Get(batch[0]); err != nil {
							b.Fatal(err)
						}
						continue
					}
					if _, err := c.PipelineGet(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestServerAddReplaceSemantics pins the memcached semantics of add and
// replace (formerly silent aliases of set): add fails on existing keys,
// replace fails on missing ones.
func TestServerAddReplaceSemantics(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocDefault)
	c := dialTest(t, srv)

	if stored, err := c.Add("k", []byte("v1"), 0, 0); err != nil || !stored {
		t.Fatalf("add of fresh key = %v %v", stored, err)
	}
	if stored, err := c.Add("k", []byte("v2"), 0, 0); err != nil || stored {
		t.Fatalf("add of existing key must return NOT_STORED: %v %v", stored, err)
	}
	if v, _, _ := c.Get("k"); string(v) != "v1" {
		t.Fatalf("failed add clobbered value: %q", v)
	}
	if stored, err := c.Replace("missing", []byte("x"), 0, 0); err != nil || stored {
		t.Fatalf("replace of missing key must return NOT_STORED: %v %v", stored, err)
	}
	if stored, err := c.Replace("k", []byte("v3"), 0, 0); err != nil || !stored {
		t.Fatalf("replace of existing key = %v %v", stored, err)
	}
	if v, _, _ := c.Get("k"); string(v) != "v3" {
		t.Fatalf("replace not applied: %q", v)
	}
}

// TestServerFlagsRoundTrip pins the fix for GET always echoing flags as 0:
// the flags stored by SET must come back on VALUE lines.
func TestServerFlagsRoundTrip(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocDefault)
	c := dialTest(t, srv)

	if err := c.SetWithOptions("k", []byte("v"), 12345, 0); err != nil {
		t.Fatal(err)
	}
	data, flags, cas, ok, err := c.Gets("k")
	if err != nil || !ok {
		t.Fatalf("gets = %v %v", ok, err)
	}
	if string(data) != "v" || flags != 12345 || cas == 0 {
		t.Fatalf("gets returned data=%q flags=%d cas=%d", data, flags, cas)
	}
}

// TestServerProtocolConformance drives every supported verb over a raw TCP
// socket and checks the exact response lines, memcached-style. CI runs this
// test as its protocol-conformance gate.
func TestServerProtocolConformance(t *testing.T) {
	srv, _ := startTestServer(t, store.AllocDefault)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	send := func(s string) {
		t.Helper()
		if _, err := conn.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(want ...string) {
		t.Helper()
		for _, w := range want {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("reading response (want %q): %v", w, err)
			}
			if got := strings.TrimRight(line, "\r\n"); got != w {
				t.Fatalf("response = %q, want %q", got, w)
			}
		}
	}

	// Storage verbs.
	send("set k 5 0 5\r\nhello\r\n")
	expect("STORED")
	send("get k\r\n")
	expect("VALUE k 5 5", "hello", "END")
	send("add k 0 0 1\r\nx\r\n")
	expect("NOT_STORED")
	send("add fresh 0 0 1\r\nx\r\n")
	expect("STORED")
	send("replace ghost 0 0 1\r\nx\r\n")
	expect("NOT_STORED")
	send("replace k 6 0 3\r\nnew\r\n")
	expect("STORED")

	// append / prepend.
	send("append ghost 0 0 1\r\n!\r\n")
	expect("NOT_STORED")
	send("append k 0 0 1\r\n!\r\n")
	expect("STORED")
	send("prepend k 0 0 1\r\n>\r\n")
	expect("STORED")
	send("get k\r\n")
	expect("VALUE k 6 5", ">new!", "END")

	// gets / cas.
	send("gets k\r\n")
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(strings.TrimRight(line, "\r\n"))
	if len(fields) != 5 || fields[0] != "VALUE" || fields[1] != "k" || fields[2] != "6" {
		t.Fatalf("gets VALUE line = %q", line)
	}
	casTok := fields[4]
	expect(">new!", "END")
	send("cas k 0 0 3 " + casTok + "\r\ncc1\r\n")
	expect("STORED")
	send("cas k 0 0 3 " + casTok + "\r\ncc2\r\n")
	expect("EXISTS")
	send("cas ghost 0 0 1 1\r\nx\r\n")
	expect("NOT_FOUND")
	send("get k\r\n")
	expect("VALUE k 0 3", "cc1", "END")

	// touch.
	send("touch k 100\r\n")
	expect("TOUCHED")
	send("touch ghost 100\r\n")
	expect("NOT_FOUND")

	// incr / decr.
	send("set n 0 0 2\r\n10\r\n")
	expect("STORED")
	send("incr n 5\r\n")
	expect("15")
	send("decr n 100\r\n")
	expect("0")
	send("incr ghost 1\r\n")
	expect("NOT_FOUND")
	send("incr k 1\r\n")
	expect("CLIENT_ERROR cannot increment or decrement non-numeric value")

	// Expiry: a negative exptime is dead on arrival.
	send("set dead 0 -1 1\r\nx\r\n")
	expect("STORED")
	send("get dead\r\n")
	expect("END")

	// delete, stats, flush_all, version, tenant.
	send("delete k\r\n")
	expect("DELETED")
	send("delete k\r\n")
	expect("NOT_FOUND")
	send("tenant app2\r\n")
	expect("TENANT")
	send("flush_all\r\n")
	expect("OK")
	send("version\r\n")
	line, err = r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "VERSION ") {
		t.Fatalf("version = %q %v", line, err)
	}
	send("stats\r\n")
	sawEnd := false
	sawEpoch := false
	for i := 0; i < 64; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		l := strings.TrimRight(line, "\r\n")
		if l == "END" {
			sawEnd = true
			break
		}
		if !strings.HasPrefix(l, "STAT ") {
			t.Fatalf("stats line = %q", l)
		}
		if strings.HasPrefix(l, "STAT epoch_current ") {
			sawEpoch = true
		}
	}
	if !sawEnd {
		t.Fatalf("stats response not terminated by END")
	}
	if !sawEpoch {
		t.Fatalf("stats response missing epoch_current")
	}

	// stats slabs: per-class arena occupancy from the slab-arena accounting.
	// A resident value means at least one class line (chunk_size, pages,
	// used/free chunks) plus the active_slabs/total_malloced footer.
	send("set slabbed 0 0 100\r\n" + strings.Repeat("s", 100) + "\r\n")
	expect("STORED")
	send("stats slabs\r\n")
	sawEnd = false
	sawChunkSize, sawUsed, sawMalloced := false, false, false
	for i := 0; i < 128; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		l := strings.TrimRight(line, "\r\n")
		if l == "END" {
			sawEnd = true
			break
		}
		if !strings.HasPrefix(l, "STAT ") {
			t.Fatalf("stats slabs line = %q", l)
		}
		switch {
		case strings.Contains(l, ":chunk_size "):
			sawChunkSize = true
		case strings.Contains(l, ":used_chunks "):
			sawUsed = true
		case strings.HasPrefix(l, "STAT total_malloced "):
			sawMalloced = true
		}
	}
	if !sawEnd || !sawChunkSize || !sawUsed || !sawMalloced {
		t.Fatalf("stats slabs incomplete: end=%v chunk_size=%v used_chunks=%v total_malloced=%v",
			sawEnd, sawChunkSize, sawUsed, sawMalloced)
	}
	// An unknown stats sub-command draws ERROR, like memcached.
	send("stats bogus\r\n")
	expect("ERROR")

	// noreply storage writes produce no response.
	send("set quiet 0 0 1 noreply\r\nq\r\nget quiet\r\n")
	expect("VALUE quiet 0 1", "q", "END")

	// flush_all optional arguments: a delay is accepted (and arms a delayed
	// flush rather than clearing anything now)...
	send("flush_all 30\r\n")
	expect("OK")
	send("get quiet\r\n")
	expect("VALUE quiet 0 1", "q", "END")
	// ...noreply suppresses the OK, and the flush still executes — the very
	// next command's response is the first thing on the wire.
	send("flush_all noreply\r\nget quiet\r\n")
	expect("END")
	// Combined form.
	send("flush_all 10 noreply\r\nversion\r\n")
	line, err = r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "VERSION ") {
		t.Fatalf("response after flush_all 10 noreply = %q %v", line, err)
	}
	// A malformed delay draws CLIENT_ERROR and keeps the session usable.
	send("flush_all soon\r\n")
	line, err = r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "CLIENT_ERROR") {
		t.Fatalf("flush_all soon = %q %v", line, err)
	}

	send("quit\r\n")
}

// TestServerDelayedFlushAllEndToEnd drives the delayed flush_all semantics
// over the wire with a stubbed clock: items last written before the deadline
// (even ones set after the command) die exactly when it passes; later writes
// survive.
func TestServerDelayedFlushAllEndToEnd(t *testing.T) {
	clock := time.Now().Unix()
	var offset atomic.Int64
	st := store.New(store.Config{
		DefaultMode:     store.AllocDefault,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
		Now:             func() int64 { return clock + offset.Load() },
	})
	if err := st.RegisterTenant("default", 8<<20); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Addr: "127.0.0.1:0", DefaultTenant: "default"}, st)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); st.Close() })

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(s string) {
		t.Helper()
		if _, err := conn.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(want ...string) {
		t.Helper()
		for _, w := range want {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("reading response (want %q): %v", w, err)
			}
			if got := strings.TrimRight(line, "\r\n"); got != w {
				t.Fatalf("response = %q, want %q", got, w)
			}
		}
	}

	send("set before 0 0 1\r\nb\r\n")
	expect("STORED")
	send("flush_all 5\r\n")
	expect("OK")
	send("get before\r\n")
	expect("VALUE before 0 1", "b", "END")
	send("set during 0 0 1\r\nd\r\n")
	expect("STORED")

	offset.Store(5)
	send("get before\r\nget during\r\n")
	expect("END", "END")
	send("set after 0 0 1\r\na\r\nget after\r\n")
	expect("STORED", "VALUE after 0 1", "a", "END")
}

// TestServerExpiryEndToEnd checks that expired items are never served over
// the wire: a short relative TTL set through the protocol stops being
// returned after its deadline.
func TestServerExpiryEndToEnd(t *testing.T) {
	clock := time.Now().Unix()
	var offset atomic.Int64
	st := store.New(store.Config{
		DefaultMode:   store.AllocDefault,
		DefaultPolicy: cache.PolicyLRU,
		Now:           func() int64 { return clock + offset.Load() },
	})
	if err := st.RegisterTenant("default", 8<<20); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Addr: "127.0.0.1:0", DefaultTenant: "default"}, st)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); st.Close() })
	c := dialTest(t, srv)

	if err := c.SetWithOptions("ttl", []byte("v"), 0, 30); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("ttl"); !ok {
		t.Fatalf("key should be live before its deadline")
	}
	offset.Store(30)
	if _, ok, _ := c.Get("ttl"); ok {
		t.Fatalf("expired key must not be returned")
	}
	// Touch can rescue a key before the deadline.
	if err := c.SetWithOptions("t2", []byte("v"), 0, 30); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Touch("t2", 600); err != nil || !ok {
		t.Fatalf("touch = %v %v", ok, err)
	}
	offset.Store(90)
	if _, ok, _ := c.Get("t2"); !ok {
		t.Fatalf("touched key should outlive its original TTL")
	}
}

// TestServerArbiterStats drives the "stats arbiter" verb and the per-tenant
// arbitration fields of plain "stats" over a real socket against a memshare
// store, and exercises the client-side typed parser: after the arbiter moves
// memory toward the loaded tenant, both surfaces must agree on the lease,
// floor and move count.
func TestServerArbiterStats(t *testing.T) {
	srv, st := startTestServer(t, store.AllocMemshare)
	c := dialTest(t, srv)

	// Load the default tenant far past its partition so its shadow queues
	// light up, leaving app2 idle.
	value := make([]byte, 4096)
	for i := 0; i < 6000; i++ {
		key := fmt.Sprintf("arb-%d", i)
		if _, ok, err := c.Get(key); err != nil {
			t.Fatal(err)
		} else if !ok {
			if err := c.Set(key, value); err != nil {
				t.Fatal(err)
			}
		}
		if i%1000 == 999 {
			st.ArbiterTick()
		}
	}

	as, err := c.StatsArbiter()
	if err != nil {
		t.Fatal(err)
	}
	want := st.ArbiterStats()
	if as.Moves != want.Moves || as.LastMove != want.LastMove {
		t.Fatalf("parsed moves=%d last=%q, store says moves=%d last=%q",
			as.Moves, as.LastMove, want.Moves, want.LastMove)
	}
	for _, name := range []string{"default", "app2"} {
		got, ok := as.Tenants[name]
		if !ok {
			t.Fatalf("stats arbiter missing tenant %s: %+v", name, as)
		}
		w := want.Tenants[name]
		if !got.Arbitrated || got.LeasePages != w.LeasePages ||
			got.ReservedPages != w.ReservedPages || got.TargetBytes != w.TargetBytes {
			t.Fatalf("tenant %s parsed %+v, store says %+v", name, got, w)
		}
	}
	// app2's floor is half its 4 MiB registration: 2 pages under the default
	// 1 MiB page geometry.
	if as.Tenants["app2"].ReservedPages != 2 {
		t.Fatalf("app2 reserved_pages = %d, want 2", as.Tenants["app2"].ReservedPages)
	}

	// The plain per-tenant stats verb carries the same arbitration fields.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := stats["reserved_pages"]; got != strconv.FormatInt(want.Tenants["default"].ReservedPages, 10) {
		t.Fatalf("stats reserved_pages = %q, want %d", got, want.Tenants["default"].ReservedPages)
	}
	if got := stats["arbiter_moves"]; got != strconv.FormatInt(want.Moves, 10) {
		t.Fatalf("stats arbiter_moves = %q, want %d", got, want.Moves)
	}
	if _, err := strconv.ParseFloat(stats["marginal_hit_per_byte"], 64); err != nil {
		t.Fatalf("stats marginal_hit_per_byte = %q: %v", stats["marginal_hit_per_byte"], err)
	}
	if _, err := strconv.ParseInt(stats["target_bytes"], 10, 64); err != nil {
		t.Fatalf("stats target_bytes = %q: %v", stats["target_bytes"], err)
	}
}
