package cache

// Victim describes an entry that was evicted from a queue, either because the
// queue overflowed or because it was resized below its current usage.
type Victim struct {
	Key  string
	Cost int64
}

// LRU is a classic least-recently-used eviction queue with a capacity
// expressed in cost units. The cost of an entry is supplied by the caller on
// insertion; item-counting queues simply use cost 1.
//
// The zero value is not usable; construct with NewLRU.
type LRU struct {
	capacity int64
	used     int64
	ll       *list
	items    map[string]*node
	free     *node // freelist of recycled nodes (singly linked via next)
}

// NewLRU returns an empty LRU queue with the given capacity in cost units.
// A non-positive capacity creates a queue that admits nothing.
func NewLRU(capacity int64) *LRU {
	return &LRU{
		capacity: capacity,
		ll:       newList(),
		items:    make(map[string]*node),
	}
}

// Len reports the number of entries currently in the queue.
func (l *LRU) Len() int { return l.ll.Len() }

// Used reports the total cost of entries currently in the queue.
func (l *LRU) Used() int64 { return l.used }

// Capacity reports the queue's capacity in cost units.
func (l *LRU) Capacity() int64 { return l.capacity }

// Contains reports whether key is present without updating recency.
func (l *LRU) Contains(key string) bool {
	_, ok := l.items[key]
	return ok
}

// Cost returns the stored cost of key and whether it is present, without
// updating recency.
func (l *LRU) Cost(key string) (int64, bool) {
	n, ok := l.items[key]
	if !ok {
		return 0, false
	}
	return n.cost, true
}

// Get looks up key and, if present, promotes it to the most-recently-used
// position. It reports whether the key was found.
func (l *LRU) Get(key string) bool {
	n, ok := l.items[key]
	if !ok {
		return false
	}
	l.ll.MoveToFront(n)
	return true
}

// Touch promotes key to the most-recently-used position if present, without
// reporting anything. It is a convenience wrapper around Get.
func (l *LRU) Touch(key string) { l.Get(key) }

// Add inserts key with the given cost at the most-recently-used position,
// updating the cost if the key is already present, and returns any entries
// evicted to stay within capacity. If the entry itself is larger than the
// queue's capacity it is not admitted and is returned as its own victim.
func (l *LRU) Add(key string, cost int64) []Victim {
	if n, ok := l.items[key]; ok {
		l.used += cost - n.cost
		n.cost = cost
		l.ll.MoveToFront(n)
		return l.evictOverflow(nil)
	}
	if cost > l.capacity {
		// Entry can never fit; reject it outright so callers can drop
		// the value instead of flushing the whole queue.
		return []Victim{{Key: key, Cost: cost}}
	}
	n := l.newNode(key, cost)
	l.items[key] = n
	l.ll.PushFront(n)
	l.used += cost
	return l.evictOverflow(nil)
}

// AddIfAbsent inserts key only if it is not already present. It reports
// whether an insertion happened and returns any victims.
func (l *LRU) AddIfAbsent(key string, cost int64) (bool, []Victim) {
	if _, ok := l.items[key]; ok {
		return false, nil
	}
	return true, l.Add(key, cost)
}

// Remove deletes key from the queue and reports whether it was present.
func (l *LRU) Remove(key string) bool {
	n, ok := l.items[key]
	if !ok {
		return false
	}
	l.unlink(n)
	return true
}

// RemoveOldest evicts the least-recently-used entry and returns it. The
// second return value is false if the queue is empty.
func (l *LRU) RemoveOldest() (Victim, bool) {
	n := l.ll.Back()
	if n == nil {
		return Victim{}, false
	}
	v := Victim{Key: n.key, Cost: n.cost}
	l.unlink(n)
	return v, true
}

// PeekOldest returns the least-recently-used entry without removing it.
func (l *LRU) PeekOldest() (Victim, bool) {
	n := l.ll.Back()
	if n == nil {
		return Victim{}, false
	}
	return Victim{Key: n.key, Cost: n.cost}, true
}

// Resize changes the queue capacity and returns entries evicted to fit the
// new capacity (oldest first).
func (l *LRU) Resize(capacity int64) []Victim {
	l.capacity = capacity
	return l.evictOverflow(nil)
}

// Keys returns the keys currently in the queue ordered from most to least
// recently used. It is intended for tests and diagnostics.
func (l *LRU) Keys() []string {
	keys := make([]string, 0, l.ll.Len())
	for n := l.ll.Front(); n != nil && n != &l.ll.root; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}

// TailKeys returns up to n keys from the least-recently-used end, ordered
// from oldest to newest. It is intended for tests and diagnostics.
func (l *LRU) TailKeys(n int) []string {
	keys := make([]string, 0, n)
	for e := l.ll.Back(); e != nil && e != &l.ll.root && len(keys) < n; e = e.prev {
		keys = append(keys, e.key)
	}
	return keys
}

// Clear removes every entry from the queue.
func (l *LRU) Clear() {
	l.ll = newList()
	l.items = make(map[string]*node)
	l.used = 0
	l.free = nil
}

func (l *LRU) evictOverflow(victims []Victim) []Victim {
	for l.used > l.capacity {
		n := l.ll.Back()
		if n == nil {
			break
		}
		victims = append(victims, Victim{Key: n.key, Cost: n.cost})
		l.unlink(n)
	}
	return victims
}

func (l *LRU) unlink(n *node) {
	l.ll.Remove(n)
	delete(l.items, n.key)
	l.used -= n.cost
	l.recycle(n)
}

func (l *LRU) newNode(key string, cost int64) *node {
	if n := l.free; n != nil {
		l.free = n.next
		n.next = nil
		n.key = key
		n.cost = cost
		n.aux = 0
		return n
	}
	return &node{key: key, cost: cost}
}

func (l *LRU) recycle(n *node) {
	n.key = ""
	n.next = l.free
	l.free = n
}
