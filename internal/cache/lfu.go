package cache

import "container/heap"

// LFU is a least-frequently-used eviction queue. Frequency counts are kept
// per resident entry only (no ghost history), with ties broken by recency
// (the least recently used of the least frequently used entries is evicted
// first). It is provided as one of the baseline eviction policies the paper
// discusses in §5.5 and Related Work.
type LFU struct {
	capacity int64
	used     int64
	items    map[string]*lfuEntry
	heap     lfuHeap
	tick     int64 // logical clock for recency tie-breaking
}

type lfuEntry struct {
	key   string
	cost  int64
	freq  int64
	tick  int64
	index int // index in the heap
}

// NewLFU returns an empty LFU queue with the given capacity in cost units.
func NewLFU(capacity int64) *LFU {
	return &LFU{
		capacity: capacity,
		items:    make(map[string]*lfuEntry),
	}
}

// Access implements Policy.
func (l *LFU) Access(key string, cost int64) (bool, []Victim) {
	l.tick++
	if e, ok := l.items[key]; ok {
		e.freq++
		e.tick = l.tick
		heap.Fix(&l.heap, e.index)
		return true, nil
	}
	if cost > l.capacity {
		return false, []Victim{{Key: key, Cost: cost}}
	}
	e := &lfuEntry{key: key, cost: cost, freq: 1, tick: l.tick}
	l.items[key] = e
	heap.Push(&l.heap, e)
	l.used += cost
	return false, l.evictOverflow(nil)
}

// Contains implements Policy.
func (l *LFU) Contains(key string) bool {
	_, ok := l.items[key]
	return ok
}

// Remove implements Policy.
func (l *LFU) Remove(key string) bool {
	e, ok := l.items[key]
	if !ok {
		return false
	}
	heap.Remove(&l.heap, e.index)
	delete(l.items, key)
	l.used -= e.cost
	return true
}

// Resize implements Policy.
func (l *LFU) Resize(capacity int64) []Victim {
	l.capacity = capacity
	return l.evictOverflow(nil)
}

// Capacity implements Policy.
func (l *LFU) Capacity() int64 { return l.capacity }

// Used implements Policy.
func (l *LFU) Used() int64 { return l.used }

// Len implements Policy.
func (l *LFU) Len() int { return len(l.items) }

// Frequency returns the access count recorded for key, or 0 if absent. It is
// intended for tests.
func (l *LFU) Frequency(key string) int64 {
	if e, ok := l.items[key]; ok {
		return e.freq
	}
	return 0
}

func (l *LFU) evictOverflow(victims []Victim) []Victim {
	for l.used > l.capacity && l.heap.Len() > 0 {
		e := heap.Pop(&l.heap).(*lfuEntry)
		delete(l.items, e.key)
		l.used -= e.cost
		victims = append(victims, Victim{Key: e.key, Cost: e.cost})
	}
	return victims
}

// lfuHeap is a min-heap ordered by (frequency, recency tick).
type lfuHeap []*lfuEntry

func (h lfuHeap) Len() int { return len(h) }

func (h lfuHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].tick < h[j].tick
}

func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *lfuHeap) Push(x any) {
	e := x.(*lfuEntry)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
