package cache

// ARC is the Adaptive Replacement Cache of Megiddo and Modha (FAST '03),
// evaluated in §5.5 of the paper as a baseline that splits the cache between
// a recency list and a frequency list and uses ghost (shadow) queues to tune
// the split. The paper found that ARC provided no improvement on the
// Memcachier traces because items ranked high by LFU are also ranked high by
// LRU there; the simulator reproduces that comparison.
//
// The implementation follows the original paper's pseudo-code with the usual
// generalization from item counts to arbitrary per-entry costs: the adaptive
// target p and all list sizes are tracked in cost units.
type ARC struct {
	capacity int64
	p        int64 // adaptive target size for t1, in cost units

	t1 *LRU // recent entries seen exactly once (resident)
	t2 *LRU // entries seen at least twice (resident)
	b1 *LRU // ghost entries recently evicted from t1
	b2 *LRU // ghost entries recently evicted from t2
}

// NewARC returns an empty ARC with the given capacity in cost units.
func NewARC(capacity int64) *ARC {
	if capacity < 0 {
		capacity = 0
	}
	return &ARC{
		capacity: capacity,
		t1:       NewLRU(capacity),
		t2:       NewLRU(capacity),
		b1:       NewLRU(capacity),
		b2:       NewLRU(capacity),
	}
}

// Access implements Policy.
func (a *ARC) Access(key string, cost int64) (bool, []Victim) {
	if cost > a.capacity {
		return false, []Victim{{Key: key, Cost: cost}}
	}

	// Case I: hit in t1 or t2 -> move to MRU of t2.
	if c, ok := a.t1.Cost(key); ok {
		a.t1.Remove(key)
		a.t2.Add(key, c)
		return true, nil
	}
	if a.t2.Get(key) {
		return true, nil
	}

	var victims []Victim

	// Case II: ghost hit in b1 -> favor recency, grow p.
	if a.b1.Contains(key) {
		delta := int64(1)
		if b1, b2 := a.b1.Used(), a.b2.Used(); b1 > 0 && b2 > b1 {
			delta = b2 / b1
		}
		a.p = min64(a.p+delta*cost, a.capacity)
		victims = a.replace(key, cost, victims)
		a.b1.Remove(key)
		a.t2.Add(key, cost)
		return false, a.trim(victims)
	}

	// Case III: ghost hit in b2 -> favor frequency, shrink p.
	if a.b2.Contains(key) {
		delta := int64(1)
		if b1, b2 := a.b1.Used(), a.b2.Used(); b2 > 0 && b1 > b2 {
			delta = b1 / b2
		}
		a.p = max64(a.p-delta*cost, 0)
		victims = a.replace(key, cost, victims)
		a.b2.Remove(key)
		a.t2.Add(key, cost)
		return false, a.trim(victims)
	}

	// Case IV: complete miss.
	l1 := a.t1.Used() + a.b1.Used()
	l2 := a.t2.Used() + a.b2.Used()
	if l1 >= a.capacity {
		if a.t1.Used() < a.capacity {
			// Discard the LRU ghost in b1 and make room.
			a.b1.RemoveOldest()
			victims = a.replace(key, cost, victims)
		} else {
			// b1 is empty; evict directly from t1.
			if v, ok := a.t1.RemoveOldest(); ok {
				victims = append(victims, v)
			}
		}
	} else if l1+l2 >= a.capacity {
		if l1+l2 >= 2*a.capacity {
			a.b2.RemoveOldest()
		}
		victims = a.replace(key, cost, victims)
	}
	a.t1.Add(key, cost)
	return false, a.trim(victims)
}

// trim evicts from the resident lists until they respect capacity. With
// item-cost-1 workloads the standard ARC invariants already guarantee this;
// the loop matters only for variable-cost entries.
func (a *ARC) trim(victims []Victim) []Victim {
	for a.t1.Used()+a.t2.Used() > a.capacity {
		before := len(victims)
		victims = a.replace("", 0, victims)
		if len(victims) == before {
			break // nothing left to evict
		}
	}
	return victims
}

// replace evicts one entry from t1 or t2 into the corresponding ghost list,
// following the REPLACE subroutine of the ARC paper.
func (a *ARC) replace(key string, cost int64, victims []Victim) []Victim {
	inB2 := key != "" && a.b2.Contains(key)
	if a.t1.Len() > 0 && (a.t1.Used() > a.p || (inB2 && a.t1.Used() == a.p)) {
		if v, ok := a.t1.RemoveOldest(); ok {
			a.b1.Add(v.Key, v.Cost)
			victims = append(victims, v)
		}
		return victims
	}
	if v, ok := a.t2.RemoveOldest(); ok {
		a.b2.Add(v.Key, v.Cost)
		victims = append(victims, v)
		return victims
	}
	// t2 empty: fall back to t1.
	if v, ok := a.t1.RemoveOldest(); ok {
		a.b1.Add(v.Key, v.Cost)
		victims = append(victims, v)
	}
	return victims
}

// Contains implements Policy. Only resident entries (t1/t2) count; ghost
// entries do not.
func (a *ARC) Contains(key string) bool {
	return a.t1.Contains(key) || a.t2.Contains(key)
}

// Remove implements Policy.
func (a *ARC) Remove(key string) bool {
	removed := a.t1.Remove(key) || a.t2.Remove(key)
	a.b1.Remove(key)
	a.b2.Remove(key)
	return removed
}

// Resize implements Policy.
func (a *ARC) Resize(capacity int64) []Victim {
	if capacity < 0 {
		capacity = 0
	}
	a.capacity = capacity
	if a.p > capacity {
		a.p = capacity
	}
	a.b1.Resize(capacity)
	a.b2.Resize(capacity)
	var victims []Victim
	for a.t1.Used()+a.t2.Used() > capacity && a.t1.Len()+a.t2.Len() > 0 {
		victims = a.replace("", 0, victims)
	}
	return victims
}

// Capacity implements Policy.
func (a *ARC) Capacity() int64 { return a.capacity }

// Used implements Policy. Only resident entries (t1+t2) count; ghost lists
// store keys only.
func (a *ARC) Used() int64 { return a.t1.Used() + a.t2.Used() }

// Len implements Policy.
func (a *ARC) Len() int { return a.t1.Len() + a.t2.Len() }

// Target returns the current adaptive target size for the recency list, in
// cost units. Intended for tests and diagnostics.
func (a *ARC) Target() int64 { return a.p }

// RecencyLen and FrequencyLen report the resident list sizes. Intended for
// tests.
func (a *ARC) RecencyLen() int   { return a.t1.Len() }
func (a *ARC) FrequencyLen() int { return a.t2.Len() }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
