package cache

// Policy is the interface shared by all eviction queues in this package.
// Access performs a combined lookup-and-fill: if key is present it is
// promoted according to the policy and hit is true; otherwise the key is
// inserted with the given cost and any entries evicted to make room are
// returned as victims.
//
// This lookup-and-fill semantic matches how a demand-filled web cache behaves
// (a GET miss is followed by a database read and a SET of the same key) and is
// what the trace-driven simulator exercises.
type Policy interface {
	// Access looks up key, inserting it with cost on a miss. It reports
	// whether the access was a hit and returns evicted entries.
	Access(key string, cost int64) (hit bool, victims []Victim)
	// Contains reports whether key is resident without updating recency or
	// frequency state.
	Contains(key string) bool
	// Remove deletes key, reporting whether it was present.
	Remove(key string) bool
	// Resize changes the capacity, returning entries evicted to fit.
	Resize(capacity int64) []Victim
	// Capacity is the queue capacity in cost units.
	Capacity() int64
	// Used is the total cost currently stored.
	Used() int64
	// Len is the number of entries currently stored.
	Len() int
}

// Access implements the Policy interface for LRU.
func (l *LRU) Access(key string, cost int64) (bool, []Victim) {
	if l.Get(key) {
		return true, nil
	}
	return false, l.Add(key, cost)
}

// PolicyKind identifies one of the eviction policies implemented by this
// package. It is used by the simulator and the server configuration.
type PolicyKind int

const (
	// PolicyLRU is plain least-recently-used eviction (Memcached default).
	PolicyLRU PolicyKind = iota
	// PolicyLFU is least-frequently-used eviction.
	PolicyLFU
	// PolicyARC is the Adaptive Replacement Cache of Megiddo and Modha.
	PolicyARC
	// PolicyFacebook is Facebook's mid-point insertion LRU variant: on the
	// first access an item is inserted at the middle of the queue; on a
	// subsequent hit it moves to the top (§5.5 of the paper).
	PolicyFacebook
)

// String returns the conventional name of the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyLRU:
		return "lru"
	case PolicyLFU:
		return "lfu"
	case PolicyARC:
		return "arc"
	case PolicyFacebook:
		return "facebook"
	default:
		return "unknown"
	}
}

// ParsePolicyKind converts a policy name ("lru", "lfu", "arc", "facebook")
// into a PolicyKind. Unknown names return PolicyLRU and false.
func ParsePolicyKind(s string) (PolicyKind, bool) {
	switch s {
	case "lru":
		return PolicyLRU, true
	case "lfu":
		return PolicyLFU, true
	case "arc":
		return PolicyARC, true
	case "facebook", "fb", "midpoint":
		return PolicyFacebook, true
	default:
		return PolicyLRU, false
	}
}

// NewPolicy constructs an eviction queue of the given kind and capacity.
func NewPolicy(kind PolicyKind, capacity int64) Policy {
	switch kind {
	case PolicyLFU:
		return NewLFU(capacity)
	case PolicyARC:
		return NewARC(capacity)
	case PolicyFacebook:
		return NewFacebookLRU(capacity)
	default:
		return NewLRU(capacity)
	}
}
