package cache

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLRUBasicHitMiss(t *testing.T) {
	l := NewLRU(3)
	if hit, _ := l.Access("a", 1); hit {
		t.Fatalf("first access to a should miss")
	}
	if hit, _ := l.Access("a", 1); !hit {
		t.Fatalf("second access to a should hit")
	}
	if l.Len() != 1 || l.Used() != 1 {
		t.Fatalf("Len=%d Used=%d, want 1,1", l.Len(), l.Used())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU(3)
	l.Add("a", 1)
	l.Add("b", 1)
	l.Add("c", 1)
	// Touch a so b is now the oldest.
	l.Get("a")
	victims := l.Add("d", 1)
	if len(victims) != 1 || victims[0].Key != "b" {
		t.Fatalf("victims = %v, want [b]", victims)
	}
	want := []string{"d", "a", "c"}
	if got := l.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
}

func TestLRUCostAccounting(t *testing.T) {
	l := NewLRU(100)
	l.Add("a", 40)
	l.Add("b", 40)
	if l.Used() != 80 {
		t.Fatalf("Used = %d, want 80", l.Used())
	}
	victims := l.Add("c", 40)
	if len(victims) != 1 || victims[0].Key != "a" {
		t.Fatalf("victims = %v, want a evicted", victims)
	}
	if l.Used() != 80 {
		t.Fatalf("Used = %d, want 80 after eviction", l.Used())
	}
	// Updating an existing key's cost adjusts usage.
	l.Add("b", 10)
	if l.Used() != 50 {
		t.Fatalf("Used = %d, want 50 after shrinking b", l.Used())
	}
}

func TestLRUOversizedEntryRejected(t *testing.T) {
	l := NewLRU(10)
	l.Add("small", 5)
	victims := l.Add("huge", 100)
	if len(victims) != 1 || victims[0].Key != "huge" {
		t.Fatalf("victims = %v, want the oversized entry itself", victims)
	}
	if !l.Contains("small") {
		t.Fatalf("existing entry should not be disturbed by an oversized insert")
	}
	if l.Contains("huge") {
		t.Fatalf("oversized entry must not be admitted")
	}
}

func TestLRUResize(t *testing.T) {
	l := NewLRU(5)
	for i := 0; i < 5; i++ {
		l.Add(fmt.Sprintf("k%d", i), 1)
	}
	victims := l.Resize(2)
	if len(victims) != 3 {
		t.Fatalf("Resize evicted %d entries, want 3", len(victims))
	}
	// Oldest first: k0, k1, k2.
	for i, v := range victims {
		if want := fmt.Sprintf("k%d", i); v.Key != want {
			t.Fatalf("victim %d = %q, want %q", i, v.Key, want)
		}
	}
	if l.Len() != 2 || l.Used() != 2 {
		t.Fatalf("after resize Len=%d Used=%d, want 2,2", l.Len(), l.Used())
	}
	// Growing back evicts nothing.
	if victims := l.Resize(10); len(victims) != 0 {
		t.Fatalf("growing should evict nothing, got %v", victims)
	}
}

func TestLRURemove(t *testing.T) {
	l := NewLRU(4)
	l.Add("a", 2)
	l.Add("b", 2)
	if !l.Remove("a") {
		t.Fatalf("Remove(a) = false, want true")
	}
	if l.Remove("a") {
		t.Fatalf("Remove(a) twice should report false")
	}
	if l.Used() != 2 || l.Len() != 1 {
		t.Fatalf("Used=%d Len=%d after remove, want 2,1", l.Used(), l.Len())
	}
}

func TestLRUOldestAccessors(t *testing.T) {
	l := NewLRU(3)
	if _, ok := l.PeekOldest(); ok {
		t.Fatalf("PeekOldest on empty queue should report false")
	}
	if _, ok := l.RemoveOldest(); ok {
		t.Fatalf("RemoveOldest on empty queue should report false")
	}
	l.Add("a", 1)
	l.Add("b", 1)
	if v, ok := l.PeekOldest(); !ok || v.Key != "a" {
		t.Fatalf("PeekOldest = %v,%v want a", v, ok)
	}
	if v, ok := l.RemoveOldest(); !ok || v.Key != "a" {
		t.Fatalf("RemoveOldest = %v,%v want a", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d after RemoveOldest, want 1", l.Len())
	}
}

func TestLRUTailKeys(t *testing.T) {
	l := NewLRU(5)
	for i := 0; i < 5; i++ {
		l.Add(fmt.Sprintf("k%d", i), 1)
	}
	got := l.TailKeys(2)
	want := []string{"k0", "k1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TailKeys(2) = %v, want %v", got, want)
	}
}

func TestLRUClear(t *testing.T) {
	l := NewLRU(5)
	l.Add("a", 1)
	l.Add("b", 1)
	l.Clear()
	if l.Len() != 0 || l.Used() != 0 || l.Contains("a") {
		t.Fatalf("Clear did not empty the queue")
	}
	l.Add("c", 1)
	if !l.Contains("c") {
		t.Fatalf("queue unusable after Clear")
	}
}

// TestLRUStackProperty verifies the LRU inclusion (stack) property: the
// contents of a smaller LRU are always a subset of a larger LRU processing
// the same request stream. This property underpins stack-distance analysis
// (§2.1) and the segment-stacking construction used by the core package.
func TestLRUStackProperty(t *testing.T) {
	small := NewLRU(16)
	big := NewLRU(64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(200))
		small.Access(key, 1)
		big.Access(key, 1)
	}
	for _, k := range small.Keys() {
		if !big.Contains(k) {
			t.Fatalf("inclusion violated: %q in small LRU but not in big LRU", k)
		}
	}
}

// referenceLRU is a deliberately simple O(n) model used to cross-check the
// linked-list implementation under random workloads.
type referenceLRU struct {
	capacity int64
	keys     []string // most recent first
	costs    map[string]int64
}

func newReferenceLRU(capacity int64) *referenceLRU {
	return &referenceLRU{capacity: capacity, costs: make(map[string]int64)}
}

func (r *referenceLRU) used() int64 {
	var u int64
	for _, k := range r.keys {
		u += r.costs[k]
	}
	return u
}

func (r *referenceLRU) access(key string, cost int64) bool {
	for i, k := range r.keys {
		if k == key {
			r.keys = append(r.keys[:i], r.keys[i+1:]...)
			r.keys = append([]string{key}, r.keys...)
			return true
		}
	}
	if cost > r.capacity {
		return false
	}
	r.keys = append([]string{key}, r.keys...)
	r.costs[key] = cost
	for r.used() > r.capacity {
		last := r.keys[len(r.keys)-1]
		r.keys = r.keys[:len(r.keys)-1]
		delete(r.costs, last)
	}
	return false
}

func TestLRUMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := NewLRU(50)
	ref := newReferenceLRU(50)
	for i := 0; i < 30000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(80))
		cost := int64(1 + rng.Intn(10))
		hit, _ := l.Access(key, cost)
		// Reference treats repeated access with a different cost the same
		// way only if we keep cost stable per key; derive cost from key.
		_ = cost
		refCost := int64(1 + (len(key) % 10))
		refHit := ref.access(key, refCost)
		// Re-run the real LRU decision with the same stable cost for parity.
		_ = hit
		_ = refHit
	}
	// Run a second pass where both use identical stable costs and compare
	// hit/miss decisions exactly.
	l = NewLRU(50)
	ref = newReferenceLRU(50)
	rng = rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(80))
		cost := int64(1 + (rng.Intn(4)))
		_ = cost
		stable := int64(1 + (len(key) % 4))
		hit, _ := l.Access(key, stable)
		refHit := ref.access(key, stable)
		if hit != refHit {
			t.Fatalf("iteration %d key %s: hit=%v ref=%v", i, key, hit, refHit)
		}
		if l.Used() != ref.used() {
			t.Fatalf("iteration %d: used %d != ref %d", i, l.Used(), ref.used())
		}
	}
}

// TestLRUInvariantNeverOverCapacity is a property-based test: no sequence of
// accesses may leave the queue above its capacity.
func TestLRUInvariantNeverOverCapacity(t *testing.T) {
	f := func(seed int64, capSeed uint16) bool {
		capacity := int64(capSeed%500) + 1
		l := NewLRU(capacity)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(100))
			cost := int64(1 + rng.Intn(20))
			l.Access(key, cost)
			if l.Used() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestLRUInvariantLenMatchesKeys checks internal bookkeeping consistency
// under random operations including removes and resizes.
func TestLRUInvariantLenMatchesKeys(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLRU(int64(1 + rng.Intn(200)))
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(60))
			switch rng.Intn(4) {
			case 0:
				l.Remove(key)
			case 1:
				l.Resize(int64(1 + rng.Intn(200)))
			default:
				l.Access(key, int64(1+rng.Intn(8)))
			}
			if l.Len() != len(l.Keys()) {
				return false
			}
			var sum int64
			for _, k := range l.Keys() {
				c, ok := l.Cost(k)
				if !ok {
					return false
				}
				sum += c
			}
			if sum != l.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLRUAccessHit(b *testing.B) {
	l := NewLRU(1 << 16)
	keys := make([]string, 1<<12)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		l.Add(keys[i], 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Access(keys[i&(len(keys)-1)], 1)
	}
}

func BenchmarkLRUAccessMiss(b *testing.B) {
	l := NewLRU(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Access(fmt.Sprintf("key-%d", i), 1)
	}
}
