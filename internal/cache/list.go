// Package cache provides the eviction-queue substrate used by Cliffhanger:
// an intrusive LRU list, key-only shadow queues, and the baseline eviction
// policies the paper compares against (LFU, ARC, and Facebook's mid-point
// insertion scheme).
//
// All queues in this package account capacity in abstract "cost" units. For
// slab-class queues the cost of an entry is usually 1 (item counting, as in
// the paper's figures) or the slab chunk size in bytes; for application-level
// queues it is the item's byte size. The queues themselves are agnostic.
//
// None of the types in this package are safe for concurrent use; callers
// (internal/store, internal/sim) provide their own locking.
package cache

// node is an intrusive doubly-linked list element holding one cache entry.
type node struct {
	prev, next *node
	key        string
	cost       int64
	// aux is scratch space for policies that need per-entry metadata
	// (e.g. LFU frequency, Facebook first-hit marker).
	aux int64
}

// list is a doubly-linked list with a sentinel root, modelled after
// container/list but specialized to *node to avoid interface allocations on
// the hot path.
type list struct {
	root node
	len  int
}

func newList() *list {
	l := &list{}
	l.root.prev = &l.root
	l.root.next = &l.root
	return l
}

// Len reports the number of elements in the list.
func (l *list) Len() int { return l.len }

// Front returns the first element or nil if the list is empty.
func (l *list) Front() *node {
	if l.len == 0 {
		return nil
	}
	return l.root.next
}

// Back returns the last element or nil if the list is empty.
func (l *list) Back() *node {
	if l.len == 0 {
		return nil
	}
	return l.root.prev
}

// PushFront inserts n at the front of the list.
func (l *list) PushFront(n *node) {
	l.insert(n, &l.root)
}

// PushBack inserts n at the back of the list.
func (l *list) PushBack(n *node) {
	l.insert(n, l.root.prev)
}

// insert places n after at.
func (l *list) insert(n, at *node) {
	n.prev = at
	n.next = at.next
	n.prev.next = n
	n.next.prev = n
	l.len++
}

// Remove unlinks n from the list. n must be an element of the list.
func (l *list) Remove(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev = nil
	n.next = nil
	l.len--
}

// MoveToFront moves n to the front of the list. n must be an element of the
// list.
func (l *list) MoveToFront(n *node) {
	if l.root.next == n {
		return
	}
	l.Remove(n)
	l.insert(n, &l.root)
}

// MoveToBack moves n to the back of the list.
func (l *list) MoveToBack(n *node) {
	if l.root.prev == n {
		return
	}
	l.Remove(n)
	l.insert(n, l.root.prev)
}

// InsertAfter inserts n immediately after mark, which must be an element of
// the list.
func (l *list) InsertAfter(n, mark *node) {
	l.insert(n, mark)
}

// InsertBefore inserts n immediately before mark, which must be an element of
// the list.
func (l *list) InsertBefore(n, mark *node) {
	l.insert(n, mark.prev)
}
