package cache

// Shadow is a key-only LRU queue: it remembers which keys were recently
// evicted from a physical queue without holding their values. Shadow queues
// are the central measurement device of Cliffhanger (§3.4): the rate of hits
// in a queue's shadow queue approximates the local gradient of the queue's
// hit-rate curve, because a shadow hit means "this request would have been a
// hit had the physical queue been larger by the shadow's size".
//
// Capacity is expressed in the same cost units as the physical queue it
// extends. For a slab class whose chunks are all the same size the paper
// sizes shadow queues as shadowBytes/chunkSize items; that conversion is the
// caller's responsibility.
type Shadow struct {
	lru *LRU
}

// NewShadow returns an empty shadow queue with the given capacity in cost
// units.
func NewShadow(capacity int64) *Shadow {
	return &Shadow{lru: NewLRU(capacity)}
}

// Push records that key (with the given cost) was evicted from the physical
// queue, inserting it at the most-recent end of the shadow queue. Keys that
// overflow the shadow queue are forgotten and returned so that stacked
// shadow queues (Figure 5 of the paper) can cascade them onward.
func (s *Shadow) Push(key string, cost int64) []Victim {
	return s.lru.Add(key, cost)
}

// Hit checks whether key is present in the shadow queue; if so the key is
// removed (it is about to be re-admitted into the physical queue) and Hit
// returns true.
func (s *Shadow) Hit(key string) bool {
	if !s.lru.Contains(key) {
		return false
	}
	s.lru.Remove(key)
	return true
}

// Contains reports whether key is present without modifying the queue.
func (s *Shadow) Contains(key string) bool { return s.lru.Contains(key) }

// Remove deletes key from the shadow queue if present.
func (s *Shadow) Remove(key string) bool { return s.lru.Remove(key) }

// Resize changes the shadow queue capacity, forgetting overflowed keys.
func (s *Shadow) Resize(capacity int64) []Victim { return s.lru.Resize(capacity) }

// Len reports the number of keys remembered.
func (s *Shadow) Len() int { return s.lru.Len() }

// Used reports the total cost of keys remembered.
func (s *Shadow) Used() int64 { return s.lru.Used() }

// Capacity reports the shadow queue capacity in cost units.
func (s *Shadow) Capacity() int64 { return s.lru.Capacity() }

// Keys returns remembered keys from most to least recently evicted. It is
// intended for tests.
func (s *Shadow) Keys() []string { return s.lru.Keys() }

// Clear forgets every remembered key.
func (s *Shadow) Clear() { s.lru.Clear() }
