package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShadowPushHit(t *testing.T) {
	s := NewShadow(3)
	s.Push("a", 1)
	s.Push("b", 1)
	if !s.Contains("a") || !s.Contains("b") {
		t.Fatalf("shadow should remember pushed keys")
	}
	if !s.Hit("a") {
		t.Fatalf("Hit(a) = false, want true")
	}
	// A hit removes the key (it re-enters the physical queue).
	if s.Contains("a") {
		t.Fatalf("a should be removed from the shadow after a hit")
	}
	if s.Hit("zzz") {
		t.Fatalf("Hit on unknown key should be false")
	}
}

func TestShadowOverflowCascades(t *testing.T) {
	s := NewShadow(2)
	s.Push("a", 1)
	s.Push("b", 1)
	victims := s.Push("c", 1)
	if len(victims) != 1 || victims[0].Key != "a" {
		t.Fatalf("overflow victims = %v, want [a]", victims)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestShadowResizeAndClear(t *testing.T) {
	s := NewShadow(4)
	for i := 0; i < 4; i++ {
		s.Push(fmt.Sprintf("k%d", i), 1)
	}
	victims := s.Resize(2)
	if len(victims) != 2 {
		t.Fatalf("Resize victims = %d, want 2", len(victims))
	}
	s.Clear()
	if s.Len() != 0 || s.Used() != 0 {
		t.Fatalf("Clear did not empty the shadow queue")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	l := NewLFU(3)
	l.Access("a", 1)
	l.Access("b", 1)
	l.Access("c", 1)
	// a and b get extra hits; c stays at frequency 1.
	l.Access("a", 1)
	l.Access("b", 1)
	l.Access("a", 1)
	_, victims := l.Access("d", 1)
	if len(victims) != 1 || victims[0].Key != "c" {
		t.Fatalf("victims = %v, want [c]", victims)
	}
	if l.Frequency("a") != 3 {
		t.Fatalf("Frequency(a) = %d, want 3", l.Frequency("a"))
	}
}

func TestLFUTieBrokenByRecency(t *testing.T) {
	l := NewLFU(2)
	l.Access("a", 1)
	l.Access("b", 1)
	// Both have frequency 1; a is older, so a should be evicted.
	_, victims := l.Access("c", 1)
	if len(victims) != 1 || victims[0].Key != "a" {
		t.Fatalf("victims = %v, want [a]", victims)
	}
}

func TestLFUCostAccountingAndResize(t *testing.T) {
	l := NewLFU(100)
	l.Access("a", 60)
	l.Access("b", 30)
	if l.Used() != 90 {
		t.Fatalf("Used = %d, want 90", l.Used())
	}
	victims := l.Resize(50)
	if len(victims) == 0 {
		t.Fatalf("Resize below usage must evict")
	}
	if l.Used() > 50 {
		t.Fatalf("Used = %d exceeds new capacity 50", l.Used())
	}
	if !l.Remove("b") && !l.Remove("a") {
		t.Fatalf("Remove of a resident key should succeed")
	}
}

func TestLFUOversizedRejected(t *testing.T) {
	l := NewLFU(10)
	_, victims := l.Access("huge", 50)
	if len(victims) != 1 || victims[0].Key != "huge" {
		t.Fatalf("oversized entry should bounce, got %v", victims)
	}
	if l.Len() != 0 {
		t.Fatalf("oversized entry must not be admitted")
	}
}

func TestFacebookFirstInsertAtMidpoint(t *testing.T) {
	f := NewFacebookLRU(6)
	// Fill with items that each get a second hit so they live in the top
	// half.
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("hot%d", i)
		f.Access(k, 1)
		f.Access(k, 1)
	}
	// A brand-new key must not land at the very top.
	f.Access("new", 1)
	keys := f.Keys()
	if keys[0] == "new" {
		t.Fatalf("first-time insert landed at the top of the queue: %v", keys)
	}
	// A second access promotes it to the top.
	f.Access("new", 1)
	if f.Keys()[0] != "new" {
		t.Fatalf("re-referenced key should be promoted to the top, got %v", f.Keys())
	}
}

func TestFacebookScanResistance(t *testing.T) {
	// A scan of one-time keys should not evict the re-referenced working
	// set as aggressively as plain LRU does.
	const capacity = 64
	lru := NewLRU(capacity)
	fb := NewFacebookLRU(capacity)
	hot := make([]string, 32)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot%d", i)
	}
	warm := func(p Policy) {
		for round := 0; round < 4; round++ {
			for _, k := range hot {
				p.Access(k, 1)
			}
		}
	}
	warm(lru)
	warm(fb)
	// One pass of scan traffic mixed with occasional hot hits.
	rng := rand.New(rand.NewSource(3))
	lruHits, fbHits := 0, 0
	for i := 0; i < 2000; i++ {
		if rng.Intn(4) == 0 {
			k := hot[rng.Intn(len(hot))]
			if h, _ := lru.Access(k, 1); h {
				lruHits++
			}
			if h, _ := fb.Access(k, 1); h {
				fbHits++
			}
		} else {
			k := fmt.Sprintf("scan%d", i)
			lru.Access(k, 1)
			fb.Access(k, 1)
		}
	}
	if fbHits < lruHits {
		t.Fatalf("mid-point insertion should be at least as scan-resistant as LRU: fb=%d lru=%d", fbHits, lruHits)
	}
}

func TestFacebookInvariantHalves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewFacebookLRU(int64(10 + rng.Intn(100)))
		for i := 0; i < 400; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(50))
			switch rng.Intn(5) {
			case 0:
				q.Remove(key)
			case 1:
				q.Resize(int64(5 + rng.Intn(100)))
			default:
				q.Access(key, int64(1+rng.Intn(4)))
			}
			if q.Used() > q.Capacity() {
				return false
			}
			if q.BottomHalfLen() < 0 || q.BottomHalfLen() > q.Len() {
				return false
			}
			// The marker stays within one element of the true middle.
			diff := q.BottomHalfLen() - q.Len()/2
			if diff < -1 || diff > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestARCBasicAdaptation(t *testing.T) {
	a := NewARC(100)
	// Recency-heavy phase.
	for i := 0; i < 1000; i++ {
		a.Access(fmt.Sprintf("r%d", i%150), 1)
	}
	if a.Used() > a.Capacity() {
		t.Fatalf("ARC over capacity: used=%d cap=%d", a.Used(), a.Capacity())
	}
	// Frequency-heavy phase: a small set of keys hit repeatedly must end up
	// mostly resident.
	hits := 0
	for i := 0; i < 2000; i++ {
		if h, _ := a.Access(fmt.Sprintf("f%d", i%20), 1); h {
			hits++
		}
	}
	if hits < 1500 {
		t.Fatalf("ARC should retain a small frequently-hit working set, got %d/2000 hits", hits)
	}
}

func TestARCGhostHitsAdjustTarget(t *testing.T) {
	a := NewARC(10)
	// Insert 20 distinct keys: the first ten fall out of t1 into b1.
	for i := 0; i < 20; i++ {
		a.Access(fmt.Sprintf("k%d", i), 1)
	}
	before := a.Target()
	// Re-access an early key: it should be a ghost hit in b1 and increase p.
	hit, _ := a.Access("k0", 1)
	if hit {
		t.Fatalf("k0 should have been evicted and be a ghost, not a hit")
	}
	if a.Target() < before {
		t.Fatalf("ghost hit in b1 should not shrink the recency target (before=%d after=%d)", before, a.Target())
	}
}

func TestARCNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int64(10 + rng.Intn(200))
		a := NewARC(capacity)
		for i := 0; i < 600; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(100))
			a.Access(key, int64(1+rng.Intn(3)))
			if a.Used() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestARCRemoveAndResize(t *testing.T) {
	a := NewARC(50)
	for i := 0; i < 30; i++ {
		a.Access(fmt.Sprintf("k%d", i), 1)
	}
	if !a.Remove("k29") {
		t.Fatalf("Remove of resident key should succeed")
	}
	if a.Remove("nonexistent") {
		t.Fatalf("Remove of unknown key should fail")
	}
	a.Resize(5)
	if a.Used() > 5 {
		t.Fatalf("Used = %d after Resize(5)", a.Used())
	}
}

func TestPolicyKindRoundTrip(t *testing.T) {
	kinds := []PolicyKind{PolicyLRU, PolicyLFU, PolicyARC, PolicyFacebook}
	for _, k := range kinds {
		parsed, ok := ParsePolicyKind(k.String())
		if !ok || parsed != k {
			t.Fatalf("ParsePolicyKind(%q) = %v,%v", k.String(), parsed, ok)
		}
		p := NewPolicy(k, 10)
		if p.Capacity() != 10 {
			t.Fatalf("NewPolicy(%v) capacity = %d", k, p.Capacity())
		}
	}
	if _, ok := ParsePolicyKind("bogus"); ok {
		t.Fatalf("unknown policy name should not parse")
	}
	if PolicyKind(99).String() != "unknown" {
		t.Fatalf("unexpected String for invalid kind")
	}
}

// TestPoliciesRespectCapacityProperty runs the same random workload through
// every policy and asserts the shared capacity invariant.
func TestPoliciesRespectCapacityProperty(t *testing.T) {
	for _, kind := range []PolicyKind{PolicyLRU, PolicyLFU, PolicyARC, PolicyFacebook} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			p := NewPolicy(kind, 128)
			for i := 0; i < 5000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(400))
				p.Access(key, int64(1+rng.Intn(5)))
				if p.Used() > p.Capacity() {
					t.Fatalf("%v exceeded capacity at iteration %d: used=%d", kind, i, p.Used())
				}
			}
		})
	}
}

func BenchmarkShadowPushHit(b *testing.B) {
	s := NewShadow(1 << 14)
	keys := make([]string, 1<<12)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(len(keys)-1)]
		if !s.Hit(k) {
			s.Push(k, 1)
		}
	}
}

func BenchmarkARCAccess(b *testing.B) {
	a := NewARC(1 << 14)
	keys := make([]string, 1<<13)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Access(keys[i&(len(keys)-1)], 1)
	}
}

func BenchmarkFacebookLRUAccess(b *testing.B) {
	f := NewFacebookLRU(1 << 14)
	keys := make([]string, 1<<13)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Access(keys[i&(len(keys)-1)], 1)
	}
}
