package cache

// FacebookLRU implements the hybrid insertion scheme used by Facebook and
// evaluated in §5.5 of the paper: when an item is first inserted into the
// eviction queue it is placed at the *middle* of the queue rather than the
// top; only when it is hit again is it promoted to the top. Items that are
// never re-referenced therefore traverse only half the queue before being
// evicted, protecting the queue from scan pollution.
//
// The "middle" is maintained as an explicit marker node so that insertions
// and promotions stay O(1). Each node records which half it currently
// occupies in its aux field (0 = top half, 1 = bottom half).
type FacebookLRU struct {
	capacity int64
	used     int64
	ll       *list
	items    map[string]*node
	// mid points at the first node of the bottom half (nil when the bottom
	// half is empty); belowMid counts the nodes in the bottom half.
	mid      *node
	belowMid int
}

const (
	fbTopHalf    = 0
	fbBottomHalf = 1
)

// NewFacebookLRU returns an empty mid-point insertion LRU with the given
// capacity in cost units.
func NewFacebookLRU(capacity int64) *FacebookLRU {
	return &FacebookLRU{
		capacity: capacity,
		ll:       newList(),
		items:    make(map[string]*node),
	}
}

// Access implements Policy. A hit promotes the entry to the top of the
// queue; a miss inserts the entry at the mid-point.
func (f *FacebookLRU) Access(key string, cost int64) (bool, []Victim) {
	if n, ok := f.items[key]; ok {
		f.promote(n)
		f.rebalance()
		return true, nil
	}
	if cost > f.capacity {
		return false, []Victim{{Key: key, Cost: cost}}
	}
	n := &node{key: key, cost: cost}
	f.items[key] = n
	f.insertAtMid(n)
	f.used += cost
	victims := f.evictOverflow(nil)
	f.rebalance()
	return false, victims
}

// Contains implements Policy.
func (f *FacebookLRU) Contains(key string) bool {
	_, ok := f.items[key]
	return ok
}

// Remove implements Policy.
func (f *FacebookLRU) Remove(key string) bool {
	n, ok := f.items[key]
	if !ok {
		return false
	}
	f.unlink(n)
	f.rebalance()
	return true
}

// Resize implements Policy.
func (f *FacebookLRU) Resize(capacity int64) []Victim {
	f.capacity = capacity
	victims := f.evictOverflow(nil)
	f.rebalance()
	return victims
}

// Capacity implements Policy.
func (f *FacebookLRU) Capacity() int64 { return f.capacity }

// Used implements Policy.
func (f *FacebookLRU) Used() int64 { return f.used }

// Len implements Policy.
func (f *FacebookLRU) Len() int { return f.ll.Len() }

// Keys returns keys from most to least recently used position. Intended for
// tests.
func (f *FacebookLRU) Keys() []string {
	keys := make([]string, 0, f.ll.Len())
	for n := f.ll.Front(); n != nil && n != &f.ll.root; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}

// BottomHalfLen reports the number of entries currently in the probation
// (bottom) half. Intended for tests.
func (f *FacebookLRU) BottomHalfLen() int { return f.belowMid }

// promote moves a re-referenced entry to the very top of the queue.
func (f *FacebookLRU) promote(n *node) {
	if n.aux == fbBottomHalf {
		f.belowMid--
		if f.mid == n {
			f.mid = f.nextNode(n)
		}
		n.aux = fbTopHalf
	}
	f.ll.MoveToFront(n)
}

// insertAtMid places a first-time entry at the current mid-point.
func (f *FacebookLRU) insertAtMid(n *node) {
	n.aux = fbBottomHalf
	if f.mid == nil {
		f.ll.PushBack(n)
	} else {
		f.ll.InsertBefore(n, f.mid)
	}
	f.mid = n
	f.belowMid++
}

// rebalance keeps the mid marker at roughly half the queue so that
// insertions land at the true middle regardless of the mix of promotions and
// evictions. Each call moves the marker at most a few steps; since every
// operation changes the half sizes by at most one, the marker stays within
// one element of the true middle.
func (f *FacebookLRU) rebalance() {
	total := f.ll.Len()
	if total == 0 {
		f.mid = nil
		f.belowMid = 0
		return
	}
	target := total / 2
	for f.belowMid < target {
		prev := f.prevNode(f.mid)
		if prev == nil {
			break
		}
		prev.aux = fbBottomHalf
		f.mid = prev
		f.belowMid++
	}
	for f.belowMid > target {
		if f.mid == nil {
			f.belowMid = 0
			break
		}
		f.mid.aux = fbTopHalf
		f.mid = f.nextNode(f.mid)
		f.belowMid--
	}
}

// nextNode returns the node after n, or nil at the tail.
func (f *FacebookLRU) nextNode(n *node) *node {
	if n == nil {
		return nil
	}
	if n.next == &f.ll.root {
		return nil
	}
	return n.next
}

// prevNode returns the node before n, or the tail when n is nil, or nil at
// the head.
func (f *FacebookLRU) prevNode(n *node) *node {
	if n == nil {
		return f.ll.Back()
	}
	if n.prev == &f.ll.root {
		return nil
	}
	return n.prev
}

func (f *FacebookLRU) evictOverflow(victims []Victim) []Victim {
	for f.used > f.capacity {
		n := f.ll.Back()
		if n == nil {
			break
		}
		victims = append(victims, Victim{Key: n.key, Cost: n.cost})
		f.unlink(n)
	}
	return victims
}

func (f *FacebookLRU) unlink(n *node) {
	if n.aux == fbBottomHalf {
		f.belowMid--
		if f.mid == n {
			f.mid = f.nextNode(n)
		}
	}
	f.ll.Remove(n)
	delete(f.items, n.key)
	f.used -= n.cost
}
