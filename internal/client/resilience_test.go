package client_test

// Resilience tests for the client's failure discipline, driven by scripted
// fake servers that misbehave in controlled ways: poisoned connections are
// never reused (the mid-pipeline desync regression), idempotent reads retry
// across reconnects, storage verbs never do, tenant selection is replayed
// on every redial, and per-op deadlines fire.

import (
	"bufio"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cliffhanger/internal/client"
	"cliffhanger/internal/protocol"
)

// connScript handles one accepted connection of a fake server. Scripts run
// on background goroutines, so they report failures with t.Errorf.
type connScript func(t *testing.T, conn net.Conn)

// startFake runs a fake server that applies scripts[i] to the i'th accepted
// connection (the last script repeats for any extra connections). It returns
// the address and a live count of accepted connections.
func startFake(t *testing.T, scripts ...connScript) (string, *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var accepted atomic.Int32
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			script := scripts[len(scripts)-1]
			if i < len(scripts) {
				script = scripts[i]
			}
			go func() {
				defer conn.Close()
				script(t, conn)
			}()
		}
	}()
	return ln.Addr().String(), &accepted
}

func readCmdLine(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	line, err := r.ReadString('\n')
	if err != nil {
		return ""
	}
	return strings.TrimRight(line, "\r\n")
}

// TestClientPoisonedConnNotReused is the satellite-2 regression test: a
// response torn mid-payload leaves the stream desynced, and the old client
// would keep reading the leftover bytes on the next call, misattributing
// them. The fixed client poisons the connection and redials, so the second
// Get sees a fresh, correct stream.
func TestClientPoisonedConnNotReused(t *testing.T) {
	addr, accepted := startFake(t,
		func(t *testing.T, conn net.Conn) {
			r := bufio.NewReader(conn)
			if got := readCmdLine(t, r); got != "get a" {
				t.Errorf("conn1 got %q, want get a", got)
			}
			// Announce 5 bytes, deliver 2, hang up: torn mid-payload.
			conn.Write([]byte("VALUE a 0 5\r\nab"))
		},
		func(t *testing.T, conn net.Conn) {
			r := bufio.NewReader(conn)
			if got := readCmdLine(t, r); got != "get a" {
				t.Errorf("conn2 got %q, want get a (desynced stream reused?)", got)
			}
			conn.Write([]byte("VALUE a 0 1\r\nZ\r\nEND\r\n"))
		},
	)

	c, err := client.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get("a"); err == nil {
		t.Fatal("torn response should surface an error")
	}
	v, ok, err := c.Get("a")
	if err != nil || !ok || string(v) != "Z" {
		t.Fatalf("get after poison = %q %v %v, want Z over a fresh conn", v, ok, err)
	}
	if n := accepted.Load(); n != 2 {
		t.Fatalf("accepted %d conns, want 2 (poisoned conn must not be reused)", n)
	}
}

// TestClientIdempotentRetry: with retries enabled, a GET whose connection
// dies mid-round-trip reconnects and succeeds transparently.
func TestClientIdempotentRetry(t *testing.T) {
	addr, accepted := startFake(t,
		func(t *testing.T, conn net.Conn) {
			r := bufio.NewReader(conn)
			readCmdLine(t, r) // swallow the get, then die without answering
		},
		func(t *testing.T, conn net.Conn) {
			r := bufio.NewReader(conn)
			if got := readCmdLine(t, r); got != "get k" {
				t.Errorf("retried conn got %q, want get k", got)
			}
			conn.Write([]byte("VALUE k 0 2\r\nhi\r\nEND\r\n"))
		},
	)

	c, err := client.DialOptions(addr, client.Options{
		DialTimeout: 2 * time.Second,
		MaxRetries:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "hi" {
		t.Fatalf("retried get = %q %v %v", v, ok, err)
	}
	if n := accepted.Load(); n != 2 {
		t.Fatalf("accepted %d conns, want 2 (one failure, one retry)", n)
	}
}

// TestClientStorageNeverRetried: a SET whose connection dies after the bytes
// went out must surface the error — its fate is ambiguous and a retry could
// double-apply — even with retries enabled. The next operation then
// reconnects, proving the failure still poisoned the connection.
func TestClientStorageNeverRetried(t *testing.T) {
	addr, accepted := startFake(t,
		func(t *testing.T, conn net.Conn) {
			r := bufio.NewReader(conn)
			readCmdLine(t, r) // set header
			readCmdLine(t, r) // payload
			// Die without answering: the client cannot know if it applied.
		},
		func(t *testing.T, conn net.Conn) {
			r := bufio.NewReader(conn)
			if got := readCmdLine(t, r); got != "version" {
				t.Errorf("conn2 got %q, want version", got)
			}
			conn.Write([]byte("VERSION fake\r\n"))
		},
	)

	c, err := client.DialOptions(addr, client.Options{
		DialTimeout: 2 * time.Second,
		MaxRetries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Set("k", []byte("abc"))
	if err == nil {
		t.Fatal("ambiguous set must surface its error")
	}
	if !client.IsRetryable(err) {
		t.Fatalf("set error %v should classify as retryable transport failure", err)
	}
	if n := accepted.Load(); n != 1 {
		t.Fatalf("accepted %d conns after failed set, want 1 (storage must not auto-retry)", n)
	}
	if v, err := c.Version(); err != nil || v != "fake" {
		t.Fatalf("version after poisoned set = %q %v, want reconnect + fake", v, err)
	}
	if n := accepted.Load(); n != 2 {
		t.Fatalf("accepted %d conns, want 2 (poisoned conn redialed)", n)
	}
}

// TestClientTenantReplayOnReconnect: a selected tenant must be re-selected
// on every redial, before any retried command goes out.
func TestClientTenantReplayOnReconnect(t *testing.T) {
	addr, _ := startFake(t,
		func(t *testing.T, conn net.Conn) {
			r := bufio.NewReader(conn)
			if got := readCmdLine(t, r); got != "tenant app2" {
				t.Errorf("conn1 got %q, want tenant app2", got)
			}
			conn.Write([]byte("TENANT\r\n"))
			readCmdLine(t, r) // get k — die without answering
		},
		func(t *testing.T, conn net.Conn) {
			r := bufio.NewReader(conn)
			if got := readCmdLine(t, r); got != "tenant app2" {
				t.Errorf("reconnect sent %q first, want replayed tenant app2", got)
			}
			conn.Write([]byte("TENANT\r\n"))
			if got := readCmdLine(t, r); got != "get k" {
				t.Errorf("conn2 got %q after tenant, want get k", got)
			}
			conn.Write([]byte("VALUE k 0 2\r\nok\r\nEND\r\n"))
		},
	)

	c, err := client.DialOptions(addr, client.Options{
		DialTimeout: 2 * time.Second,
		MaxRetries:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SelectTenant("app2"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "ok" {
		t.Fatalf("get across tenant replay = %q %v %v", v, ok, err)
	}
}

// TestClientOpDeadline: a server that accepts and never answers must not
// hang the client past OpTimeout, and the timeout classifies as retryable.
func TestClientOpDeadline(t *testing.T) {
	addr, _ := startFake(t, func(t *testing.T, conn net.Conn) {
		bufio.NewReader(conn).ReadString('\n')
		time.Sleep(5 * time.Second) // never answer
	})

	c, err := client.DialOptions(addr, client.Options{
		DialTimeout: 2 * time.Second,
		OpTimeout:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, _, err = c.Get("k")
	if err == nil {
		t.Fatal("get against a mute server should time out")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("op deadline took %v to fire, want about 100ms", elapsed)
	}
	if !client.IsRetryable(err) {
		t.Fatalf("op timeout %v should classify as retryable", err)
	}
}

// TestClientStreamingNoReplayAfterDelivery: once a streaming get has handed
// values to its callback, a mid-stream transport failure must NOT be
// retried — replaying would re-invoke the callback for values it already
// consumed. The error surfaces instead, marked non-retryable.
func TestClientStreamingNoReplayAfterDelivery(t *testing.T) {
	addr, accepted := startFake(t, func(t *testing.T, conn net.Conn) {
		r := bufio.NewReader(conn)
		readCmdLine(t, r)
		// Deliver one full value, then tear before END.
		conn.Write([]byte("VALUE a 0 1\r\nA\r\n"))
	})

	c, err := client.DialOptions(addr, client.Options{
		DialTimeout: 2 * time.Second,
		MaxRetries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var calls int
	err = c.GetMultiFunc([]string{"a", "b"}, false, func(key []byte, _ uint32, _ uint64, value []byte) {
		calls++
	})
	if err == nil {
		t.Fatal("torn stream should surface an error")
	}
	if client.IsRetryable(err) {
		t.Fatalf("mid-stream failure after delivery should be permanent, got retryable %v", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times, want exactly 1 (no replay)", calls)
	}
	if n := accepted.Load(); n != 1 {
		t.Fatalf("accepted %d conns, want 1 (no retry after delivery)", n)
	}
}

// TestClientRemoteErrorsNotRetryable: in-band server errors ride a healthy
// connection; they must classify as fatal so retries don't hammer the
// server with known-bad requests.
func TestClientRemoteErrorsNotRetryable(t *testing.T) {
	if client.IsRetryable(nil) {
		t.Fatal("nil must not be retryable")
	}
	if client.IsRetryable(protocol.ErrRemote) {
		t.Fatal("in-band server errors must not be retryable")
	}
}
