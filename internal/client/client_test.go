package client_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/client"
	"cliffhanger/internal/server"
	"cliffhanger/internal/store"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	st := store.New(store.Config{DefaultMode: store.AllocCliffhanger, DefaultPolicy: cache.PolicyLRU})
	if err := st.RegisterTenant("default", 8<<20); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterTenant("app2", 4<<20); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Addr: "127.0.0.1:0", DefaultTenant: "default"}, st)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return srv
}

func dial(t *testing.T, srv *server.Server) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientRoundTrip(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)

	if _, ok, err := c.Get("nothing"); err != nil || ok {
		t.Fatalf("get of missing key: ok=%v err=%v", ok, err)
	}
	if err := c.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	if err := c.Set("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Get("k"); string(v) != "v2" {
		t.Fatalf("update not visible: %q", v)
	}
	if deleted, err := c.Delete("k"); err != nil || !deleted {
		t.Fatalf("delete = %v %v", deleted, err)
	}
	if deleted, _ := c.Delete("k"); deleted {
		t.Fatalf("second delete should report NOT_FOUND")
	}
	if ver, err := c.Version(); err != nil || !strings.HasPrefix(ver, "cliffhanger") {
		t.Fatalf("version = %q %v", ver, err)
	}
}

func TestClientTenantVerb(t *testing.T) {
	srv := startServer(t)
	c1 := dial(t, srv)
	c2 := dial(t, srv)

	if err := c1.Set("shared", []byte("from-default")); err != nil {
		t.Fatal(err)
	}
	if err := c2.SelectTenant("app2"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c2.Get("shared"); ok {
		t.Fatalf("tenant isolation broken")
	}
	if err := c2.Set("shared", []byte("from-app2")); err != nil {
		t.Fatal(err)
	}
	stats, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["tenant"] != "app2" {
		t.Fatalf("stats tenant = %q", stats["tenant"])
	}
	if err := c2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c2.Get("shared"); ok {
		t.Fatalf("flush_all did not clear tenant")
	}
	if v, _, _ := c1.Get("shared"); string(v) != "from-default" {
		t.Fatalf("default tenant affected by app2 flush: %q", v)
	}
}

func TestClientPipelinedBatches(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)

	keys := make([]string, 50)
	for i := range keys {
		keys[i] = fmt.Sprintf("pipe-%d", i)
	}
	if err := c.PipelineSet(keys, []byte("batched")); err != nil {
		t.Fatal(err)
	}
	got, err := c.PipelineGet(append(keys[:10:10], "missing-1", "missing-2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("pipelined get returned %d values, want 10", len(got))
	}
	for _, k := range keys[:10] {
		if string(got[k]) != "batched" {
			t.Fatalf("%s = %q", k, got[k])
		}
	}
	// The connection must be ready for normal request/response traffic
	// straight after a pipelined batch.
	if err := c.Set("after", []byte("x")); err != nil {
		t.Fatal(err)
	}
	multi, err := c.GetMulti([]string{"pipe-1", "after"})
	if err != nil || len(multi) != 2 {
		t.Fatalf("GetMulti = %v %v", multi, err)
	}
}

// TestClientStreamingGetFuncs covers the callback GET APIs the old
// map-building methods are now built on: PipelineGetFunc must report the
// exact request index of every VALUE block (including duplicates and with
// misses interleaved), and GetMultiFunc must stream a single multi-key
// command with CAS tokens when asked.
func TestClientStreamingGetFuncs(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)

	if err := c.SetWithOptions("s1", []byte("one"), 7, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWithOptions("s2", []byte("two"), 8, 0); err != nil {
		t.Fatal(err)
	}

	type hit struct {
		i     int
		key   string
		value string
		flags uint32
	}
	var got []hit
	keys := []string{"s1", "missing", "s2", "s1"}
	err := c.PipelineGetFunc(keys, func(i int, key []byte, flags uint32, cas uint64, value []byte) {
		// key and value alias client buffers: copy before retaining.
		got = append(got, hit{i, string(key), string(value), flags})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []hit{{0, "s1", "one", 7}, {2, "s2", "two", 8}, {3, "s1", "one", 7}}
	if len(got) != len(want) {
		t.Fatalf("callbacks = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("callback %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// GetMultiFunc with CAS: one gets command, tokens present.
	var tokens int
	err = c.GetMultiFunc([]string{"s1", "s2", "missing"}, true, func(key []byte, flags uint32, cas uint64, value []byte) {
		if cas != 0 {
			tokens++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tokens != 2 {
		t.Fatalf("saw %d CAS tokens, want 2", tokens)
	}

	// Zero keys: no round trip, no error, and the connection stays in sync.
	if err := c.GetMultiFunc(nil, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.PipelineGetFunc(nil, nil); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("s1"); err != nil || !ok || string(v) != "one" {
		t.Fatalf("get after streaming calls = %q %v %v", v, ok, err)
	}
}

func TestClientMalformedLineErrors(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)

	// An over-long key draws CLIENT_ERROR, surfaced as an error.
	long := strings.Repeat("k", 300)
	if _, err := c.Delete(long); err == nil {
		t.Fatalf("over-long key should error")
	}
	// The connection stays usable afterwards.
	if err := c.Set("ok", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Drive raw malformed lines over a plain TCP connection and verify the
	// server reports CLIENT_ERROR for each without dropping the session.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	for _, line := range []string{
		"bogusverb a b\r\n",
		"get\r\n",
		"set onlytwo 0\r\n",
		// A storage command with a bad header still announces its data
		// block; the server consumes it before reporting the error, so the
		// payload must ride along with the malformed line.
		"set k notanumber 0 5\r\nhello\r\n",
	} {
		if _, err := conn.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("no response to %q: %v", line, err)
		}
		if !strings.HasPrefix(resp, "CLIENT_ERROR") {
			t.Fatalf("response to %q = %q, want CLIENT_ERROR", line, resp)
		}
	}
	// And a well-formed command still works on the same raw connection.
	if _, err := conn.Write([]byte("version\r\n")); err != nil {
		t.Fatal(err)
	}
	resp, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(resp, "VERSION") {
		t.Fatalf("version after errors = %q %v", resp, err)
	}
}

// TestClientVerbRoundTrips exercises the new verbs end to end through the
// client API: add/replace, append/prepend, gets/cas, touch and incr/decr.
func TestClientVerbRoundTrips(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)

	if stored, err := c.Add("k", []byte("base"), 3, 0); err != nil || !stored {
		t.Fatalf("add = %v %v", stored, err)
	}
	if stored, _ := c.Add("k", []byte("again"), 0, 0); stored {
		t.Fatalf("second add should not store")
	}
	if stored, err := c.Replace("k", []byte("base2"), 3, 0); err != nil || !stored {
		t.Fatalf("replace = %v %v", stored, err)
	}
	if ok, err := c.Append("k", []byte(".end")); err != nil || !ok {
		t.Fatalf("append = %v %v", ok, err)
	}
	if ok, err := c.Prepend("k", []byte("start.")); err != nil || !ok {
		t.Fatalf("prepend = %v %v", ok, err)
	}
	data, flags, cas, ok, err := c.Gets("k")
	if err != nil || !ok {
		t.Fatalf("gets = %v %v", ok, err)
	}
	if string(data) != "start.base2.end" || flags != 3 || cas == 0 {
		t.Fatalf("gets = %q flags=%d cas=%d", data, flags, cas)
	}
	if st, err := c.Cas("k", []byte("swapped"), 0, 0, cas); err != nil || st != client.CasStored {
		t.Fatalf("cas with fresh token = %v %v", st, err)
	}
	if st, _ := c.Cas("k", []byte("stale"), 0, 0, cas); st != client.CasExists {
		t.Fatalf("cas with stale token = %v", st)
	}
	if st, _ := c.Cas("ghost", []byte("x"), 0, 0, 1); st != client.CasNotFound {
		t.Fatalf("cas of missing key = %v", st)
	}
	if ok, err := c.Touch("k", 300); err != nil || !ok {
		t.Fatalf("touch = %v %v", ok, err)
	}
	if ok, _ := c.Touch("ghost", 300); ok {
		t.Fatalf("touch of missing key should be false")
	}

	if err := c.Set("n", []byte("41")); err != nil {
		t.Fatal(err)
	}
	if v, found, err := c.Incr("n", 1); err != nil || !found || v != 42 {
		t.Fatalf("incr = %d %v %v", v, found, err)
	}
	if v, found, err := c.Decr("n", 100); err != nil || !found || v != 0 {
		t.Fatalf("decr = %d %v %v", v, found, err)
	}
	if _, found, err := c.Incr("ghost", 1); err != nil || found {
		t.Fatalf("incr of missing key = %v %v", found, err)
	}
	if _, _, err := c.Incr("k", 1); err == nil {
		t.Fatalf("incr of non-numeric value should error")
	}
}
