// Package client is a small memcached-text-protocol client used by the load
// generator, the examples and the end-to-end tests. It supports the verbs
// the server implements — get/gets, set/add/replace/append/prepend/cas,
// touch, incr/decr, delete, stats, flush_all, version, tenant — including
// pipelined batches (PipelineGet, PipelineSet) that amortize one flush over
// many commands, and is safe for use by one goroutine per Client (the load
// generator opens one Client per worker connection).
//
// The hot paths share the protocol package's allocation discipline: commands
// are assembled with strconv appends into a per-client scratch buffer and
// VALUE response headers are parsed in place with protocol.ParseValueLine.
// The streaming APIs (GetMultiFunc, PipelineGetFunc) deliver each VALUE
// block through a callback over client-owned reusable buffers — zero
// per-value garbage, pinned by the client alloc gate — and the convenience
// forms (Get, Gets, GetMulti, PipelineGet) are built on top of them, paying
// only for the caller-owned copies they return.
package client

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"cliffhanger/internal/protocol"
)

// Client is one connection to a cliffhanger server.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// scratch assembles outgoing command lines (reused across calls).
	scratch []byte
	// keybuf holds the key of the VALUE block being read: the parsed key
	// aliases the read buffer, which the payload read then overwrites.
	keybuf []byte
	// valbuf holds the payload of the VALUE block being streamed, so the
	// callback APIs read a batch of any depth without per-value garbage.
	valbuf []byte
}

// maxRetainedValue caps valbuf between streaming calls: steady-state values
// never exceed it, while one outsized VALUE block cannot pin its worst-case
// memory for the rest of a long-lived connection.
const maxRetainedValue = 64 << 10

// Dial connects to addr with the given timeout (0 means no timeout).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	var (
		conn net.Conn
		err  error
	)
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SelectTenant switches the connection to the given tenant.
func (c *Client) SelectTenant(name string) error {
	if err := c.writeLine("tenant " + name); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "TENANT" {
		return fmt.Errorf("client: unexpected tenant response %q", line)
	}
	return nil
}

// Set stores value under key with zero flags and no expiry.
func (c *Client) Set(key string, value []byte) error {
	return c.SetWithOptions(key, value, 0, 0)
}

// SetWithOptions stores value under key with the given flags and exptime
// (memcached semantics: 0 never expires, <= 30 days is relative seconds,
// larger is an absolute unix timestamp).
func (c *Client) SetWithOptions(key string, value []byte, flags uint32, exptime int64) error {
	ok, line, err := c.storage("set", key, value, flags, exptime, 0, false)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("client: set not stored: %s", line)
	}
	return nil
}

// Add stores value only if key is absent, reporting whether it was stored.
func (c *Client) Add(key string, value []byte, flags uint32, exptime int64) (bool, error) {
	ok, _, err := c.storage("add", key, value, flags, exptime, 0, false)
	return ok, err
}

// Replace stores value only if key is present, reporting whether it was
// stored.
func (c *Client) Replace(key string, value []byte, flags uint32, exptime int64) (bool, error) {
	ok, _, err := c.storage("replace", key, value, flags, exptime, 0, false)
	return ok, err
}

// Append appends value to key's existing value, reporting whether the key
// existed.
func (c *Client) Append(key string, value []byte) (bool, error) {
	ok, _, err := c.storage("append", key, value, 0, 0, 0, false)
	return ok, err
}

// Prepend prepends value to key's existing value, reporting whether the key
// existed.
func (c *Client) Prepend(key string, value []byte) (bool, error) {
	ok, _, err := c.storage("prepend", key, value, 0, 0, 0, false)
	return ok, err
}

// CasStatus is the outcome of a Cas call.
type CasStatus int

const (
	// CasStored means the swap succeeded.
	CasStored CasStatus = iota
	// CasExists means the item changed since the Gets that produced the
	// token.
	CasExists
	// CasNotFound means the key does not exist.
	CasNotFound
)

// Cas stores value under key only if the item still carries the CAS token a
// previous Gets returned.
func (c *Client) Cas(key string, value []byte, flags uint32, exptime int64, cas uint64) (CasStatus, error) {
	_, line, err := c.storage("cas", key, value, flags, exptime, cas, true)
	if err != nil {
		return CasNotFound, err
	}
	switch line {
	case "STORED":
		return CasStored, nil
	case "EXISTS":
		return CasExists, nil
	default:
		return CasNotFound, nil
	}
}

// appendStorageHeader appends "<verb> <key> <flags> <exptime> <bytes>
// [<cas>]\r\n" to dst.
func appendStorageHeader(dst []byte, verb, key string, flags uint32, exptime int64, size int, cas uint64, withCAS bool) []byte {
	dst = append(dst, verb...)
	dst = append(dst, ' ')
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, exptime, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(size), 10)
	if withCAS {
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, cas, 10)
	}
	return append(dst, '\r', '\n')
}

// storage runs one storage verb round trip and reports the positive/negative
// outcome plus the raw response line.
func (c *Client) storage(verb, key string, value []byte, flags uint32, exptime int64, cas uint64, withCAS bool) (bool, string, error) {
	c.scratch = appendStorageHeader(c.scratch[:0], verb, key, flags, exptime, len(value), cas, withCAS)
	if _, err := c.w.Write(c.scratch); err != nil {
		return false, "", err
	}
	if _, err := c.w.Write(value); err != nil {
		return false, "", err
	}
	if _, err := c.w.WriteString("\r\n"); err != nil {
		return false, "", err
	}
	if err := c.w.Flush(); err != nil {
		return false, "", err
	}
	line, err := c.readLine()
	if err != nil {
		return false, "", err
	}
	ok, err := protocol.ParseResponseLine(line)
	return ok, line, err
}

// Touch updates key's expiry without fetching the value, reporting whether
// the key existed.
func (c *Client) Touch(key string, exptime int64) (bool, error) {
	c.scratch = append(c.scratch[:0], "touch "...)
	c.scratch = append(c.scratch, key...)
	c.scratch = append(c.scratch, ' ')
	c.scratch = strconv.AppendInt(c.scratch, exptime, 10)
	c.scratch = append(c.scratch, '\r', '\n')
	if _, err := c.w.Write(c.scratch); err != nil {
		return false, err
	}
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	return protocol.ParseResponseLine(line)
}

// Incr adds delta to the decimal counter stored under key, returning the new
// value. The second return value is false when the key does not exist.
func (c *Client) Incr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr("incr", key, delta)
}

// Decr subtracts delta from the counter stored under key, clamping at zero.
func (c *Client) Decr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr("decr", key, delta)
}

func (c *Client) incrDecr(verb, key string, delta uint64) (uint64, bool, error) {
	c.scratch = append(c.scratch[:0], verb...)
	c.scratch = append(c.scratch, ' ')
	c.scratch = append(c.scratch, key...)
	c.scratch = append(c.scratch, ' ')
	c.scratch = strconv.AppendUint(c.scratch, delta, 10)
	c.scratch = append(c.scratch, '\r', '\n')
	if _, err := c.w.Write(c.scratch); err != nil {
		return 0, false, err
	}
	if err := c.w.Flush(); err != nil {
		return 0, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, false, err
	}
	if line == "NOT_FOUND" {
		return 0, false, nil
	}
	val, perr := strconv.ParseUint(line, 10, 64)
	if perr != nil {
		if _, err := protocol.ParseResponseLine(line); err != nil {
			return 0, false, err
		}
		return 0, false, fmt.Errorf("client: unexpected %s response %q", verb, line)
	}
	return val, true, nil
}

// ValueFunc receives one VALUE block of a streamed get response. key and
// value alias client-owned buffers reused across calls and are valid only
// for the duration of the callback; callers that retain them must copy.
type ValueFunc func(key []byte, flags uint32, cas uint64, value []byte)

// IndexedValueFunc receives one VALUE block of a pipelined streaming get
// along with the index (into the request batch) of the key it answers.
type IndexedValueFunc func(i int, key []byte, flags uint32, cas uint64, value []byte)

// GetMultiFunc issues one multi-key get (or gets, when withCAS is set) and
// streams each returned VALUE block to fn without per-value garbage: keys
// and payloads are read into client-owned buffers reused across calls.
// Missing keys simply produce no callback.
func (c *Client) GetMultiFunc(keys []string, withCAS bool, fn ValueFunc) error {
	if len(keys) == 0 {
		return nil
	}
	c.shedStreamBuffers()
	verb := "get"
	if withCAS {
		verb = "gets"
	}
	c.scratch = append(c.scratch[:0], verb...)
	for _, key := range keys {
		c.scratch = append(c.scratch, ' ')
		c.scratch = append(c.scratch, key...)
	}
	c.scratch = append(c.scratch, '\r', '\n')
	if _, err := c.w.Write(c.scratch); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	return c.streamValues(fn)
}

// PipelineGetFunc issues one single-key get per key in one batch write and a
// single flush, then streams every VALUE block to fn. Each command carries
// exactly one key, so the i passed to fn is the exact index into keys of the
// command being answered (a missing key produces no callback for its index —
// duplicates in keys are answered once per occurrence). This is the
// allocation-free counterpart of PipelineGet: no map or data slices are
// built, so a deep pipelined GET drives the server's zero-allocation path
// end to end; the client alloc gate pins the round trip at <= 1 amortized
// allocation per operation.
func (c *Client) PipelineGetFunc(keys []string, fn IndexedValueFunc) error {
	c.shedStreamBuffers()
	for _, key := range keys {
		c.scratch = append(c.scratch[:0], "get "...)
		c.scratch = append(c.scratch, key...)
		c.scratch = append(c.scratch, '\r', '\n')
		if _, err := c.w.Write(c.scratch); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for i := range keys {
		for {
			key, flags, cas, value, done, err := c.nextStreamValue()
			if err != nil {
				return err
			}
			if done {
				break
			}
			fn(i, key, flags, cas, value)
		}
	}
	return nil
}

// Gets fetches key along with its flags and CAS token. The returned data is
// freshly allocated and owned by the caller.
func (c *Client) Gets(key string) (data []byte, flags uint32, cas uint64, ok bool, err error) {
	c.shedStreamBuffers()
	if err := c.writeGet("gets", key); err != nil {
		return nil, 0, 0, false, err
	}
	err = c.streamValues(func(k []byte, f uint32, cs uint64, v []byte) {
		if string(k) == key {
			data = append([]byte(nil), v...)
			flags, cas, ok = f, cs, true
		}
	})
	if err != nil {
		return nil, 0, 0, false, err
	}
	return data, flags, cas, ok, nil
}

// Get fetches key, reporting whether it was present. The returned data is
// freshly allocated and owned by the caller.
func (c *Client) Get(key string) ([]byte, bool, error) {
	c.shedStreamBuffers()
	if err := c.writeGet("get", key); err != nil {
		return nil, false, err
	}
	var (
		data  []byte
		found bool
	)
	err := c.streamValues(func(k []byte, _ uint32, _ uint64, v []byte) {
		if string(k) == key {
			data = append([]byte(nil), v...)
			found = true
		}
	})
	if err != nil {
		return nil, false, err
	}
	return data, found, nil
}

// GetMulti fetches several keys in one round trip. It is built on
// GetMultiFunc; the returned map and values are owned by the caller.
func (c *Client) GetMulti(keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	err := c.GetMultiFunc(keys, false, func(key []byte, _ uint32, _ uint64, value []byte) {
		out[string(key)] = append([]byte(nil), value...)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PipelineSet stores value under every key with a single batch write and a
// single flush, then reads the responses. The server parses ahead on its
// buffered reader and flushes once per batch, so a deep pipeline pays one
// syscall per direction per batch instead of one per command.
func (c *Client) PipelineSet(keys []string, value []byte) error {
	return c.PipelineSetOptions(keys, value, 0, 0)
}

// PipelineSetOptions is PipelineSet with explicit flags and exptime.
func (c *Client) PipelineSetOptions(keys []string, value []byte, flags uint32, exptime int64) error {
	for _, key := range keys {
		c.scratch = appendStorageHeader(c.scratch[:0], "set", key, flags, exptime, len(value), 0, false)
		if _, err := c.w.Write(c.scratch); err != nil {
			return err
		}
		if _, err := c.w.Write(value); err != nil {
			return err
		}
		if _, err := c.w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for _, key := range keys {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		ok, err := protocol.ParseResponseLine(line)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("client: pipelined set %q not stored: %s", key, line)
		}
	}
	return nil
}

// PipelineGet issues one get command per key in a single batch write and a
// single flush, then reads all responses. Missing keys are absent from the
// returned map. It is built on PipelineGetFunc; callers that only need the
// per-key outcome should use that directly and skip the map and data-slice
// garbage.
func (c *Client) PipelineGet(keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	err := c.PipelineGetFunc(keys, func(_ int, key []byte, _ uint32, _ uint64, value []byte) {
		out[string(key)] = append([]byte(nil), value...)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	c.scratch = append(c.scratch[:0], "delete "...)
	c.scratch = append(c.scratch, key...)
	c.scratch = append(c.scratch, '\r', '\n')
	if _, err := c.w.Write(c.scratch); err != nil {
		return false, err
	}
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	return protocol.ParseResponseLine(line)
}

// FlushAll clears the selected tenant.
func (c *Client) FlushAll() error {
	if err := c.writeLine("flush_all"); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "OK" {
		return fmt.Errorf("client: flush_all failed: %s", line)
	}
	return nil
}

// TenantCreate registers a new tenant with an mb-megabyte reservation. The
// server replies OK on success; a duplicate name is a server error.
func (c *Client) TenantCreate(name string, mb uint64) error {
	return c.adminVerb(fmt.Sprintf("tenant_create %s %d", name, mb))
}

// TenantResize retargets a live tenant's reservation at mb megabytes. The
// resize executes incrementally on the server; the OK reply only acknowledges
// the new target.
func (c *Client) TenantResize(name string, mb uint64) error {
	return c.adminVerb(fmt.Sprintf("tenant_resize %s %d", name, mb))
}

// TenantDelete unregisters a tenant. New requests fail immediately; the
// server drains and returns the tenant's memory asynchronously.
func (c *Client) TenantDelete(name string) error {
	return c.adminVerb("tenant_delete " + name)
}

// adminVerb sends one admin command line and expects an OK reply.
func (c *Client) adminVerb(line string) error {
	if err := c.writeLine(line); err != nil {
		return err
	}
	resp, err := c.readLine()
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("client: %s failed: %s", line, resp)
	}
	return nil
}

// Stats returns the server's STAT lines for the selected tenant.
func (c *Client) Stats() (map[string]string, error) {
	return c.statsCmd("stats")
}

// StatsSlabs returns the per-slab-class arena occupancy ("stats slabs"):
// chunk size, carved pages and used/free chunk counts per class, keyed
// "<class>:<field>", plus the active_slabs/total_pages/total_malloced
// totals.
func (c *Client) StatsSlabs() (map[string]string, error) {
	return c.statsCmd("stats slabs")
}

func (c *Client) statsCmd(cmd string) (map[string]string, error) {
	if err := c.writeLine(cmd); err != nil {
		return nil, err
	}
	stats := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return stats, nil
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) == 3 && fields[0] == "STAT" {
			stats[fields[1]] = fields[2]
		} else {
			return nil, fmt.Errorf("client: unexpected stats line %q", line)
		}
	}
}

// Version returns the server version string.
func (c *Client) Version() (string, error) {
	if err := c.writeLine("version"); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

// writeGet writes "<verb> <key>\r\n" and flushes.
func (c *Client) writeGet(verb, key string) error {
	c.scratch = append(c.scratch[:0], verb...)
	c.scratch = append(c.scratch, ' ')
	c.scratch = append(c.scratch, key...)
	c.scratch = append(c.scratch, '\r', '\n')
	if _, err := c.w.Write(c.scratch); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Client) writeLine(line string) error {
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	if _, err := c.w.WriteString("\r\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Client) readLine() (string, error) {
	line, err := c.readLineBytes()
	if err != nil {
		return "", err
	}
	return string(line), nil
}

// readLineBytes returns the next response line without its terminator as a
// slice into the read buffer, valid until the next read.
func (c *Client) readLineBytes() ([]byte, error) {
	line, err := c.r.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, fmt.Errorf("client: response line too long")
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// shedStreamBuffers drops streaming scratch an earlier outsized value grew
// past the retention cap, so one huge VALUE block cannot pin its worst-case
// memory on a long-lived connection.
func (c *Client) shedStreamBuffers() {
	if cap(c.valbuf) > maxRetainedValue {
		c.valbuf = nil
	}
}

// nextStreamValue reads one VALUE block of a get/gets response, or its END
// terminator (done=true). key and value alias client-owned buffers valid
// only until the next read on the connection.
func (c *Client) nextStreamValue() (key []byte, flags uint32, cas uint64, value []byte, done bool, err error) {
	line, err := c.readLineBytes()
	if err != nil {
		return nil, 0, 0, nil, false, err
	}
	if len(line) == 3 && line[0] == 'E' && line[1] == 'N' && line[2] == 'D' {
		return nil, 0, 0, nil, true, nil
	}
	k, flags, size, cas, _, err := protocol.ParseValueLine(line)
	if err != nil {
		return nil, 0, 0, nil, false, err
	}
	// The key aliases the read buffer, which the payload read overwrites.
	c.keybuf = append(c.keybuf[:0], k...)
	if cap(c.valbuf) < size {
		c.valbuf = make([]byte, size)
	}
	value = c.valbuf[:size]
	if _, err := io.ReadFull(c.r, value); err != nil {
		return nil, 0, 0, nil, false, err
	}
	if _, err := c.r.Discard(2); err != nil { // trailing CRLF
		return nil, 0, 0, nil, false, err
	}
	return c.keybuf, flags, cas, value, false, nil
}

// streamValues reads the VALUE blocks of one get/gets response until END,
// passing each to fn.
func (c *Client) streamValues(fn ValueFunc) error {
	for {
		key, flags, cas, value, done, err := c.nextStreamValue()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		fn(key, flags, cas, value)
	}
}
