// Package client is a small memcached-text-protocol client used by the load
// generator, the examples and the end-to-end tests. It supports the verbs
// the server implements — get/gets, set/add/replace/append/prepend/cas,
// touch, incr/decr, delete, stats, flush_all, version, tenant — including
// pipelined batches (PipelineGet, PipelineSet) that amortize one flush over
// many commands, and is safe for use by one goroutine per Client (the load
// generator opens one Client per worker connection).
package client

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"cliffhanger/internal/protocol"
)

// Client is one connection to a cliffhanger server.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to addr with the given timeout (0 means no timeout).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	var (
		conn net.Conn
		err  error
	)
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SelectTenant switches the connection to the given tenant.
func (c *Client) SelectTenant(name string) error {
	if err := c.writeLine("tenant " + name); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "TENANT" {
		return fmt.Errorf("client: unexpected tenant response %q", line)
	}
	return nil
}

// Set stores value under key with zero flags and no expiry.
func (c *Client) Set(key string, value []byte) error {
	return c.SetWithOptions(key, value, 0, 0)
}

// SetWithOptions stores value under key with the given flags and exptime
// (memcached semantics: 0 never expires, <= 30 days is relative seconds,
// larger is an absolute unix timestamp).
func (c *Client) SetWithOptions(key string, value []byte, flags uint32, exptime int64) error {
	ok, line, err := c.storage("set", key, value, flags, exptime, 0)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("client: set not stored: %s", line)
	}
	return nil
}

// Add stores value only if key is absent, reporting whether it was stored.
func (c *Client) Add(key string, value []byte, flags uint32, exptime int64) (bool, error) {
	ok, _, err := c.storage("add", key, value, flags, exptime, 0)
	return ok, err
}

// Replace stores value only if key is present, reporting whether it was
// stored.
func (c *Client) Replace(key string, value []byte, flags uint32, exptime int64) (bool, error) {
	ok, _, err := c.storage("replace", key, value, flags, exptime, 0)
	return ok, err
}

// Append appends value to key's existing value, reporting whether the key
// existed.
func (c *Client) Append(key string, value []byte) (bool, error) {
	ok, _, err := c.storage("append", key, value, 0, 0, 0)
	return ok, err
}

// Prepend prepends value to key's existing value, reporting whether the key
// existed.
func (c *Client) Prepend(key string, value []byte) (bool, error) {
	ok, _, err := c.storage("prepend", key, value, 0, 0, 0)
	return ok, err
}

// CasStatus is the outcome of a Cas call.
type CasStatus int

const (
	// CasStored means the swap succeeded.
	CasStored CasStatus = iota
	// CasExists means the item changed since the Gets that produced the
	// token.
	CasExists
	// CasNotFound means the key does not exist.
	CasNotFound
)

// Cas stores value under key only if the item still carries the CAS token a
// previous Gets returned.
func (c *Client) Cas(key string, value []byte, flags uint32, exptime int64, cas uint64) (CasStatus, error) {
	_, line, err := c.storage("cas", key, value, flags, exptime, cas)
	if err != nil {
		return CasNotFound, err
	}
	switch line {
	case "STORED":
		return CasStored, nil
	case "EXISTS":
		return CasExists, nil
	default:
		return CasNotFound, nil
	}
}

// storage runs one storage verb round trip and reports the positive/negative
// outcome plus the raw response line.
func (c *Client) storage(verb, key string, value []byte, flags uint32, exptime int64, cas uint64) (bool, string, error) {
	if verb == "cas" {
		if _, err := fmt.Fprintf(c.w, "cas %s %d %d %d %d\r\n", key, flags, exptime, len(value), cas); err != nil {
			return false, "", err
		}
	} else {
		if _, err := fmt.Fprintf(c.w, "%s %s %d %d %d\r\n", verb, key, flags, exptime, len(value)); err != nil {
			return false, "", err
		}
	}
	if _, err := c.w.Write(value); err != nil {
		return false, "", err
	}
	if err := c.writeLine(""); err != nil {
		return false, "", err
	}
	line, err := c.readLine()
	if err != nil {
		return false, "", err
	}
	ok, err := protocol.ParseResponseLine(line)
	return ok, line, err
}

// Touch updates key's expiry without fetching the value, reporting whether
// the key existed.
func (c *Client) Touch(key string, exptime int64) (bool, error) {
	if err := c.writeLine(fmt.Sprintf("touch %s %d", key, exptime)); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	return protocol.ParseResponseLine(line)
}

// Incr adds delta to the decimal counter stored under key, returning the new
// value. The second return value is false when the key does not exist.
func (c *Client) Incr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr("incr", key, delta)
}

// Decr subtracts delta from the counter stored under key, clamping at zero.
func (c *Client) Decr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr("decr", key, delta)
}

func (c *Client) incrDecr(verb, key string, delta uint64) (uint64, bool, error) {
	if err := c.writeLine(fmt.Sprintf("%s %s %d", verb, key, delta)); err != nil {
		return 0, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, false, err
	}
	if line == "NOT_FOUND" {
		return 0, false, nil
	}
	val, perr := strconv.ParseUint(line, 10, 64)
	if perr != nil {
		if _, err := protocol.ParseResponseLine(line); err != nil {
			return 0, false, err
		}
		return 0, false, fmt.Errorf("client: unexpected %s response %q", verb, line)
	}
	return val, true, nil
}

// Gets fetches key along with its flags and CAS token.
func (c *Client) Gets(key string) (data []byte, flags uint32, cas uint64, ok bool, err error) {
	if err := c.writeLine("gets " + key); err != nil {
		return nil, 0, 0, false, err
	}
	values, err := c.readValueItems()
	if err != nil {
		return nil, 0, 0, false, err
	}
	v, ok := values[key]
	if !ok {
		return nil, 0, 0, false, nil
	}
	return v.Data, v.Flags, v.CAS, true, nil
}

// Get fetches key, reporting whether it was present.
func (c *Client) Get(key string) ([]byte, bool, error) {
	if err := c.writeLine("get " + key); err != nil {
		return nil, false, err
	}
	values, err := c.readValues()
	if err != nil {
		return nil, false, err
	}
	if v, ok := values[key]; ok {
		return v, true, nil
	}
	return nil, false, nil
}

// GetMulti fetches several keys in one round trip.
func (c *Client) GetMulti(keys []string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	if err := c.writeLine("get " + strings.Join(keys, " ")); err != nil {
		return nil, err
	}
	return c.readValues()
}

// PipelineSet stores value under every key with a single batch write and a
// single flush, then reads the responses. The server parses ahead on its
// buffered reader and flushes once per batch, so a deep pipeline pays one
// syscall per direction per batch instead of one per command.
func (c *Client) PipelineSet(keys []string, value []byte) error {
	return c.PipelineSetOptions(keys, value, 0, 0)
}

// PipelineSetOptions is PipelineSet with explicit flags and exptime.
func (c *Client) PipelineSetOptions(keys []string, value []byte, flags uint32, exptime int64) error {
	for _, key := range keys {
		if _, err := fmt.Fprintf(c.w, "set %s %d %d %d\r\n", key, flags, exptime, len(value)); err != nil {
			return err
		}
		if _, err := c.w.Write(value); err != nil {
			return err
		}
		if _, err := c.w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for _, key := range keys {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		ok, err := protocol.ParseResponseLine(line)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("client: pipelined set %q not stored: %s", key, line)
		}
	}
	return nil
}

// PipelineGet issues one get command per key in a single batch write and a
// single flush, then reads all responses. Missing keys are absent from the
// returned map.
func (c *Client) PipelineGet(keys []string) (map[string][]byte, error) {
	for _, key := range keys {
		if _, err := c.w.WriteString("get " + key + "\r\n"); err != nil {
			return nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for range keys {
		values, err := c.readValues()
		if err != nil {
			return nil, err
		}
		for k, v := range values {
			out[k] = v
		}
	}
	return out, nil
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	if err := c.writeLine("delete " + key); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	return protocol.ParseResponseLine(line)
}

// FlushAll clears the selected tenant.
func (c *Client) FlushAll() error {
	if err := c.writeLine("flush_all"); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "OK" {
		return fmt.Errorf("client: flush_all failed: %s", line)
	}
	return nil
}

// Stats returns the server's STAT lines for the selected tenant.
func (c *Client) Stats() (map[string]string, error) {
	if err := c.writeLine("stats"); err != nil {
		return nil, err
	}
	stats := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return stats, nil
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) == 3 && fields[0] == "STAT" {
			stats[fields[1]] = fields[2]
		} else {
			return nil, fmt.Errorf("client: unexpected stats line %q", line)
		}
	}
}

// Version returns the server version string.
func (c *Client) Version() (string, error) {
	if err := c.writeLine("version"); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

func (c *Client) writeLine(line string) error {
	if _, err := c.w.WriteString(line + "\r\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// readValues parses the VALUE blocks of a get response until END, keeping
// only the data.
func (c *Client) readValues() (map[string][]byte, error) {
	items, err := c.readValueItems()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(items))
	for k, v := range items {
		out[k] = v.Data
	}
	return out, nil
}

// readValueItems parses the VALUE blocks of a get/gets response until END,
// including flags and (for gets) the CAS token.
func (c *Client) readValueItems() (map[string]protocol.Value, error) {
	out := make(map[string]protocol.Value)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[0] != "VALUE" {
			return nil, fmt.Errorf("client: unexpected get response %q", line)
		}
		flags, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("client: bad flags in %q", line)
		}
		size, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("client: bad value size in %q", line)
		}
		var cas uint64
		if len(fields) >= 5 {
			if cas, err = strconv.ParseUint(fields[4], 10, 64); err != nil {
				return nil, fmt.Errorf("client: bad cas token in %q", line)
			}
		}
		data := make([]byte, size+2)
		if _, err := readFull(c.r, data); err != nil {
			return nil, err
		}
		out[fields[1]] = protocol.Value{Key: fields[1], Flags: uint32(flags), CAS: cas, Data: data[:size]}
	}
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
