// Package client is a small memcached-text-protocol client used by the load
// generator, the examples and the end-to-end tests. It supports the verbs
// the server implements — get/gets, set/add/replace/append/prepend/cas,
// touch, incr/decr, delete, stats, flush_all, version, tenant — including
// pipelined batches (PipelineGet, PipelineSet) that amortize one flush over
// many commands, and is safe for use by one goroutine per Client (the load
// generator opens one Client per worker connection).
//
// The hot paths share the protocol package's allocation discipline: commands
// are assembled with strconv appends into a per-client scratch buffer and
// VALUE response headers are parsed in place with protocol.ParseValueLine.
// The streaming APIs (GetMultiFunc, PipelineGetFunc) deliver each VALUE
// block through a callback over client-owned reusable buffers — zero
// per-value garbage, pinned by the client alloc gate — and the convenience
// forms (Get, Gets, GetMulti, PipelineGet) are built on top of them, paying
// only for the caller-owned copies they return.
//
// Failure handling is explicit. Every transport or desync failure poisons
// the connection: a poisoned connection is never reused (a half-read
// pipeline would misattribute responses to the wrong commands), so the next
// operation transparently redials and replays the tenant selection.
// Idempotent read verbs (get/gets, touch, stats, version, tenant) are
// additionally retried across reconnects with jittered exponential backoff
// up to Options.MaxRetries; storage verbs are never retried — a SET or INCR
// whose fate is unknown must surface its error rather than risk applying
// twice. Retried operations return *OpError carrying the retryable-vs-fatal
// classification (see IsRetryable); in-band server errors still unwrap to
// protocol.ErrRemote.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"time"

	"cliffhanger/internal/protocol"
)

// Options tunes a Client's transport behavior. The zero value dials without
// a timeout, applies no per-operation deadline, and never retries — the
// behavior Dial has always had.
type Options struct {
	// DialTimeout bounds each connect (and reconnect). 0 means none.
	DialTimeout time.Duration
	// OpTimeout is the per-operation deadline: each call must finish its
	// full round trip (a pipelined batch counts as one operation) within
	// it. 0 means none.
	OpTimeout time.Duration
	// MaxRetries is how many times an idempotent operation is retried
	// across reconnects after a retryable failure. 0 disables retries.
	MaxRetries int
	// RetryBackoff is the base of the jittered exponential backoff between
	// retries (base<<attempt plus up to 100% jitter, capped at 64x base).
	// Defaults to 5ms when retries are enabled.
	RetryBackoff time.Duration
}

// OpError is a client operation failure with its retryability class:
// Retryable failures are transport-level (connection reset, timeout, server
// gone) and may heal on a reconnect; fatal ones are protocol-level (in-band
// server errors, desyncs) and will not. It unwraps to the underlying error,
// so errors.Is(err, protocol.ErrRemote) etc. keep working.
type OpError struct {
	Op        string
	Retryable bool
	Err       error
}

func (e *OpError) Error() string {
	kind := "fatal"
	if e.Retryable {
		kind = "retryable"
	}
	return fmt.Sprintf("client: %s: %v (%s)", e.Op, e.Err, kind)
}

func (e *OpError) Unwrap() error { return e.Err }

// IsRetryable reports whether err is a transient transport failure that a
// reconnect may heal: dial failures, resets, timeouts, closed connections,
// EOFs. In-band server errors (protocol.ErrRemote) and protocol desyncs are
// fatal — retrying them would repeat the same outcome or worse.
func IsRetryable(err error) bool {
	if err == nil || errors.Is(err, protocol.ErrRemote) {
		return false
	}
	var oe *OpError
	if errors.As(err, &oe) {
		return oe.Retryable
	}
	var perm *permanentError
	if errors.As(err, &perm) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// permanentError pins a transport failure as non-retryable: a streaming get
// that already delivered values to its callback must not be replayed, even
// though the underlying error looks transient.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Client is one connection to a cliffhanger server.
type Client struct {
	addr string
	opts Options

	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// broken marks the connection poisoned: a transport error or response
	// desync happened mid-stream, so reusing it would misattribute
	// responses. The next operation redials instead.
	broken bool
	// tenant is replayed after every reconnect so retried operations land
	// on the tenant the caller selected.
	tenant string

	// scratch assembles outgoing command lines (reused across calls).
	scratch []byte
	// keybuf holds the key of the VALUE block being read: the parsed key
	// aliases the read buffer, which the payload read then overwrites.
	keybuf []byte
	// valbuf holds the payload of the VALUE block being streamed, so the
	// callback APIs read a batch of any depth without per-value garbage.
	valbuf []byte
}

// maxRetainedValue caps valbuf between streaming calls: steady-state values
// never exceed it, while one outsized VALUE block cannot pin its worst-case
// memory for the rest of a long-lived connection.
const maxRetainedValue = 64 << 10

// Dial connects to addr with the given dial timeout (0 means no timeout)
// and no retries or per-op deadlines.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, Options{DialTimeout: timeout})
}

// DialOptions connects to addr with the full transport options.
func DialOptions(addr string, opts Options) (*Client, error) {
	if opts.MaxRetries > 0 && opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 5 * time.Millisecond
	}
	c := &Client{addr: addr, opts: opts}
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.broken = false
	return err
}

// poison marks the connection unusable; the next operation reconnects.
func (c *Client) poison() { c.broken = true }

// ensureConn (re)establishes the transport on first use or after a poison.
// A reconnect replays the selected tenant before the caller's command goes
// out — redialing happens strictly between operations, so it is safe for
// every verb, including storage.
func (c *Client) ensureConn() error {
	if c.conn != nil && !c.broken {
		return nil
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	var (
		conn net.Conn
		err  error
	)
	if c.opts.DialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	} else {
		conn, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return err
	}
	if c.r == nil {
		c.r = bufio.NewReaderSize(conn, 64<<10)
		c.w = bufio.NewWriterSize(conn, 64<<10)
	} else {
		c.r.Reset(conn)
		c.w.Reset(conn)
	}
	c.conn = conn
	c.broken = false
	if c.tenant != "" {
		if err := c.selectTenantRaw(c.tenant); err != nil {
			c.poison()
			return fmt.Errorf("client: reselect tenant %q: %w", c.tenant, err)
		}
	}
	return nil
}

// begin readies the transport for one operation: reconnect if poisoned and
// arm the per-op deadline.
func (c *Client) begin() error {
	if err := c.ensureConn(); err != nil {
		return err
	}
	if c.opts.OpTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.OpTimeout))
	}
	return nil
}

// retry runs fn as one attempt of the named idempotent operation,
// reconnecting and retrying on retryable failures with jittered exponential
// backoff. Failures come back as *OpError. Storage verbs never go through
// retry — an ambiguous write must surface, not silently double-apply.
func (c *Client) retry(op string, fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := c.begin()
		if err == nil {
			err = fn()
		}
		if err == nil {
			return nil
		}
		retryable := IsRetryable(err)
		if retryable {
			// The round trip died partway; never reuse the stream.
			c.poison()
		}
		if !retryable || attempt >= c.opts.MaxRetries {
			return &OpError{Op: op, Retryable: retryable, Err: err}
		}
		c.backoff(attempt)
	}
}

// backoff sleeps base<<attempt (capped at 64x) plus up to 100% jitter, so a
// thundering herd of retriers does not re-synchronize on the server.
func (c *Client) backoff(attempt int) {
	d := c.opts.RetryBackoff << min(attempt, 6)
	d += time.Duration(rand.Int63n(int64(d) + 1))
	time.Sleep(d)
}

// flush pushes buffered command bytes out, poisoning the connection on
// failure (some commands may have reached the server, some not — the stream
// state is unknowable).
func (c *Client) flush() error {
	if err := c.w.Flush(); err != nil {
		c.poison()
		return err
	}
	return nil
}

func (c *Client) send(p []byte) error {
	if _, err := c.w.Write(p); err != nil {
		c.poison()
		return err
	}
	return nil
}

func (c *Client) sendString(s string) error {
	if _, err := c.w.WriteString(s); err != nil {
		c.poison()
		return err
	}
	return nil
}

// SelectTenant switches the connection to the given tenant. The selection
// sticks across reconnects: a retried or redialed operation replays it
// before any command.
func (c *Client) SelectTenant(name string) error {
	err := c.retry("tenant "+name, func() error {
		return c.selectTenantRaw(name)
	})
	if err != nil {
		return err
	}
	c.tenant = name
	return nil
}

// selectTenantRaw runs the tenant round trip on the current connection
// without touching c.tenant (ensureConn uses it to replay the selection).
func (c *Client) selectTenantRaw(name string) error {
	if err := c.sendString("tenant " + name); err != nil {
		return err
	}
	if err := c.sendString("\r\n"); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "TENANT" {
		c.poison()
		return fmt.Errorf("client: unexpected tenant response %q", line)
	}
	return nil
}

// Set stores value under key with zero flags and no expiry.
func (c *Client) Set(key string, value []byte) error {
	return c.SetWithOptions(key, value, 0, 0)
}

// SetWithOptions stores value under key with the given flags and exptime
// (memcached semantics: 0 never expires, <= 30 days is relative seconds,
// larger is an absolute unix timestamp).
func (c *Client) SetWithOptions(key string, value []byte, flags uint32, exptime int64) error {
	ok, line, err := c.storage("set", key, value, flags, exptime, 0, false)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("client: set not stored: %s", line)
	}
	return nil
}

// Add stores value only if key is absent, reporting whether it was stored.
func (c *Client) Add(key string, value []byte, flags uint32, exptime int64) (bool, error) {
	ok, _, err := c.storage("add", key, value, flags, exptime, 0, false)
	return ok, err
}

// Replace stores value only if key is present, reporting whether it was
// stored.
func (c *Client) Replace(key string, value []byte, flags uint32, exptime int64) (bool, error) {
	ok, _, err := c.storage("replace", key, value, flags, exptime, 0, false)
	return ok, err
}

// Append appends value to key's existing value, reporting whether the key
// existed.
func (c *Client) Append(key string, value []byte) (bool, error) {
	ok, _, err := c.storage("append", key, value, 0, 0, 0, false)
	return ok, err
}

// Prepend prepends value to key's existing value, reporting whether the key
// existed.
func (c *Client) Prepend(key string, value []byte) (bool, error) {
	ok, _, err := c.storage("prepend", key, value, 0, 0, 0, false)
	return ok, err
}

// CasStatus is the outcome of a Cas call.
type CasStatus int

const (
	// CasStored means the swap succeeded.
	CasStored CasStatus = iota
	// CasExists means the item changed since the Gets that produced the
	// token.
	CasExists
	// CasNotFound means the key does not exist.
	CasNotFound
)

// Cas stores value under key only if the item still carries the CAS token a
// previous Gets returned.
func (c *Client) Cas(key string, value []byte, flags uint32, exptime int64, cas uint64) (CasStatus, error) {
	_, line, err := c.storage("cas", key, value, flags, exptime, cas, true)
	if err != nil {
		return CasNotFound, err
	}
	switch line {
	case "STORED":
		return CasStored, nil
	case "EXISTS":
		return CasExists, nil
	default:
		return CasNotFound, nil
	}
}

// appendStorageHeader appends "<verb> <key> <flags> <exptime> <bytes>
// [<cas>]\r\n" to dst.
func appendStorageHeader(dst []byte, verb, key string, flags uint32, exptime int64, size int, cas uint64, withCAS bool) []byte {
	dst = append(dst, verb...)
	dst = append(dst, ' ')
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, exptime, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(size), 10)
	if withCAS {
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, cas, 10)
	}
	return append(dst, '\r', '\n')
}

// storage runs one storage verb round trip and reports the positive/negative
// outcome plus the raw response line. Storage verbs reconnect if the
// previous operation poisoned the connection, but are never retried after
// their own bytes went out: a failed SET's fate is ambiguous.
func (c *Client) storage(verb, key string, value []byte, flags uint32, exptime int64, cas uint64, withCAS bool) (bool, string, error) {
	if err := c.begin(); err != nil {
		return false, "", err
	}
	c.scratch = appendStorageHeader(c.scratch[:0], verb, key, flags, exptime, len(value), cas, withCAS)
	if err := c.send(c.scratch); err != nil {
		return false, "", err
	}
	if err := c.send(value); err != nil {
		return false, "", err
	}
	if err := c.sendString("\r\n"); err != nil {
		return false, "", err
	}
	if err := c.flush(); err != nil {
		return false, "", err
	}
	line, err := c.readLine()
	if err != nil {
		return false, "", err
	}
	ok, err := protocol.ParseResponseLine(line)
	return ok, line, err
}

// Touch updates key's expiry without fetching the value, reporting whether
// the key existed. Touch is idempotent and retried across reconnects.
func (c *Client) Touch(key string, exptime int64) (bool, error) {
	var found bool
	err := c.retry("touch "+key, func() error {
		c.scratch = append(c.scratch[:0], "touch "...)
		c.scratch = append(c.scratch, key...)
		c.scratch = append(c.scratch, ' ')
		c.scratch = strconv.AppendInt(c.scratch, exptime, 10)
		c.scratch = append(c.scratch, '\r', '\n')
		if err := c.send(c.scratch); err != nil {
			return err
		}
		if err := c.flush(); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		found, err = protocol.ParseResponseLine(line)
		return err
	})
	return found, err
}

// Incr adds delta to the decimal counter stored under key, returning the new
// value. The second return value is false when the key does not exist.
func (c *Client) Incr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr("incr", key, delta)
}

// Decr subtracts delta from the counter stored under key, clamping at zero.
func (c *Client) Decr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr("decr", key, delta)
}

// incrDecr is a mutation, so like the storage verbs it reconnects before
// sending but never retries after.
func (c *Client) incrDecr(verb, key string, delta uint64) (uint64, bool, error) {
	if err := c.begin(); err != nil {
		return 0, false, err
	}
	c.scratch = append(c.scratch[:0], verb...)
	c.scratch = append(c.scratch, ' ')
	c.scratch = append(c.scratch, key...)
	c.scratch = append(c.scratch, ' ')
	c.scratch = strconv.AppendUint(c.scratch, delta, 10)
	c.scratch = append(c.scratch, '\r', '\n')
	if err := c.send(c.scratch); err != nil {
		return 0, false, err
	}
	if err := c.flush(); err != nil {
		return 0, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, false, err
	}
	if line == "NOT_FOUND" {
		return 0, false, nil
	}
	val, perr := strconv.ParseUint(line, 10, 64)
	if perr != nil {
		if _, err := protocol.ParseResponseLine(line); err != nil {
			return 0, false, err
		}
		c.poison()
		return 0, false, fmt.Errorf("client: unexpected %s response %q", verb, line)
	}
	return val, true, nil
}

// ValueFunc receives one VALUE block of a streamed get response. key and
// value alias client-owned buffers reused across calls and are valid only
// for the duration of the callback; callers that retain them must copy.
type ValueFunc func(key []byte, flags uint32, cas uint64, value []byte)

// IndexedValueFunc receives one VALUE block of a pipelined streaming get
// along with the index (into the request batch) of the key it answers.
type IndexedValueFunc func(i int, key []byte, flags uint32, cas uint64, value []byte)

// GetMultiFunc issues one multi-key get (or gets, when withCAS is set) and
// streams each returned VALUE block to fn without per-value garbage: keys
// and payloads are read into client-owned buffers reused across calls.
// Missing keys simply produce no callback. The batch is retried across
// reconnects only while no value has been delivered yet — once fn has seen
// data, a mid-stream failure is surfaced rather than replayed.
func (c *Client) GetMultiFunc(keys []string, withCAS bool, fn ValueFunc) error {
	if len(keys) == 0 {
		return nil
	}
	delivered := false
	return c.retry("get multi", func() error {
		err := c.getMultiOnce(keys, withCAS, func(key []byte, flags uint32, cas uint64, value []byte) {
			delivered = true
			fn(key, flags, cas, value)
		})
		if err != nil && delivered && IsRetryable(err) {
			return &permanentError{err}
		}
		return err
	})
}

func (c *Client) getMultiOnce(keys []string, withCAS bool, fn ValueFunc) error {
	c.shedStreamBuffers()
	verb := "get"
	if withCAS {
		verb = "gets"
	}
	c.scratch = append(c.scratch[:0], verb...)
	for _, key := range keys {
		c.scratch = append(c.scratch, ' ')
		c.scratch = append(c.scratch, key...)
	}
	c.scratch = append(c.scratch, '\r', '\n')
	if err := c.send(c.scratch); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	return c.streamValues(fn)
}

// PipelineGetFunc issues one single-key get per key in one batch write and a
// single flush, then streams every VALUE block to fn. Each command carries
// exactly one key, so the i passed to fn is the exact index into keys of the
// command being answered (a missing key produces no callback for its index —
// duplicates in keys are answered once per occurrence). This is the
// allocation-free counterpart of PipelineGet: no map or data slices are
// built, so a deep pipelined GET drives the server's zero-allocation path
// end to end; the client alloc gate pins the round trip at <= 1 amortized
// allocation per operation. Like GetMultiFunc, the batch is retried across
// reconnects only while fn has not yet seen data.
func (c *Client) PipelineGetFunc(keys []string, fn IndexedValueFunc) error {
	delivered := false
	return c.retry("pipeline get", func() error {
		err := c.pipelineGetOnce(keys, func(i int, key []byte, flags uint32, cas uint64, value []byte) {
			delivered = true
			fn(i, key, flags, cas, value)
		})
		if err != nil && delivered && IsRetryable(err) {
			return &permanentError{err}
		}
		return err
	})
}

func (c *Client) pipelineGetOnce(keys []string, fn IndexedValueFunc) error {
	c.shedStreamBuffers()
	for _, key := range keys {
		c.scratch = append(c.scratch[:0], "get "...)
		c.scratch = append(c.scratch, key...)
		c.scratch = append(c.scratch, '\r', '\n')
		if err := c.send(c.scratch); err != nil {
			return err
		}
	}
	if err := c.flush(); err != nil {
		return err
	}
	for i := range keys {
		for {
			key, flags, cas, value, done, err := c.nextStreamValue()
			if err != nil {
				return err
			}
			if done {
				break
			}
			fn(i, key, flags, cas, value)
		}
	}
	return nil
}

// Gets fetches key along with its flags and CAS token. The returned data is
// freshly allocated and owned by the caller.
func (c *Client) Gets(key string) (data []byte, flags uint32, cas uint64, ok bool, err error) {
	err = c.GetMultiFunc([]string{key}, true, func(k []byte, f uint32, cs uint64, v []byte) {
		if string(k) == key {
			data = append([]byte(nil), v...)
			flags, cas, ok = f, cs, true
		}
	})
	if err != nil {
		return nil, 0, 0, false, err
	}
	return data, flags, cas, ok, nil
}

// Get fetches key, reporting whether it was present. The returned data is
// freshly allocated and owned by the caller.
func (c *Client) Get(key string) ([]byte, bool, error) {
	var (
		data  []byte
		found bool
	)
	err := c.GetMultiFunc([]string{key}, false, func(k []byte, _ uint32, _ uint64, v []byte) {
		if string(k) == key {
			data = append([]byte(nil), v...)
			found = true
		}
	})
	if err != nil {
		return nil, false, err
	}
	return data, found, nil
}

// GetMulti fetches several keys in one round trip. It is built on
// GetMultiFunc; the returned map and values are owned by the caller.
func (c *Client) GetMulti(keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	err := c.GetMultiFunc(keys, false, func(key []byte, _ uint32, _ uint64, value []byte) {
		out[string(key)] = append([]byte(nil), value...)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PipelineSet stores value under every key with a single batch write and a
// single flush, then reads the responses. The server parses ahead on its
// buffered reader and flushes once per batch, so a deep pipeline pays one
// syscall per direction per batch instead of one per command.
func (c *Client) PipelineSet(keys []string, value []byte) error {
	return c.PipelineSetOptions(keys, value, 0, 0)
}

// PipelineSetOptions is PipelineSet with explicit flags and exptime.
func (c *Client) PipelineSetOptions(keys []string, value []byte, flags uint32, exptime int64) error {
	if err := c.begin(); err != nil {
		return err
	}
	for _, key := range keys {
		c.scratch = appendStorageHeader(c.scratch[:0], "set", key, flags, exptime, len(value), 0, false)
		if err := c.send(c.scratch); err != nil {
			return err
		}
		if err := c.send(value); err != nil {
			return err
		}
		if err := c.sendString("\r\n"); err != nil {
			return err
		}
	}
	if err := c.flush(); err != nil {
		return err
	}
	for _, key := range keys {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		ok, err := protocol.ParseResponseLine(line)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("client: pipelined set %q not stored: %s", key, line)
		}
	}
	return nil
}

// PipelineGet issues one get command per key in a single batch write and a
// single flush, then reads all responses. Missing keys are absent from the
// returned map. It is built on PipelineGetFunc; callers that only need the
// per-key outcome should use that directly and skip the map and data-slice
// garbage.
func (c *Client) PipelineGet(keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	err := c.PipelineGetFunc(keys, func(_ int, key []byte, _ uint32, _ uint64, value []byte) {
		out[string(key)] = append([]byte(nil), value...)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Delete removes key, reporting whether it existed. Like the storage verbs
// it is not retried: a retried delete racing a concurrent re-set could
// remove a value the first attempt never saw.
func (c *Client) Delete(key string) (bool, error) {
	if err := c.begin(); err != nil {
		return false, err
	}
	c.scratch = append(c.scratch[:0], "delete "...)
	c.scratch = append(c.scratch, key...)
	c.scratch = append(c.scratch, '\r', '\n')
	if err := c.send(c.scratch); err != nil {
		return false, err
	}
	if err := c.flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	return protocol.ParseResponseLine(line)
}

// FlushAll clears the selected tenant.
func (c *Client) FlushAll() error {
	if err := c.begin(); err != nil {
		return err
	}
	if err := c.writeLine("flush_all"); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "OK" {
		return fmt.Errorf("client: flush_all failed: %s", line)
	}
	return nil
}

// TenantCreate registers a new tenant with an mb-megabyte reservation. The
// server replies OK on success; a duplicate name is a server error.
func (c *Client) TenantCreate(name string, mb uint64) error {
	return c.adminVerb(fmt.Sprintf("tenant_create %s %d", name, mb))
}

// TenantResize retargets a live tenant's reservation at mb megabytes. The
// resize executes incrementally on the server; the OK reply only acknowledges
// the new target.
func (c *Client) TenantResize(name string, mb uint64) error {
	return c.adminVerb(fmt.Sprintf("tenant_resize %s %d", name, mb))
}

// TenantDelete unregisters a tenant. New requests fail immediately; the
// server drains and returns the tenant's memory asynchronously.
func (c *Client) TenantDelete(name string) error {
	return c.adminVerb("tenant_delete " + name)
}

// adminVerb sends one admin command line and expects an OK reply. Admin
// verbs mutate the tenant registry, so they are not retried.
func (c *Client) adminVerb(line string) error {
	if err := c.begin(); err != nil {
		return err
	}
	if err := c.writeLine(line); err != nil {
		return err
	}
	resp, err := c.readLine()
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("client: %s failed: %s", line, resp)
	}
	return nil
}

// Stats returns the server's STAT lines for the selected tenant.
func (c *Client) Stats() (map[string]string, error) {
	return c.statsCmd("stats")
}

// StatsSlabs returns the per-slab-class arena occupancy ("stats slabs"):
// chunk size, carved pages and used/free chunk counts per class, keyed
// "<class>:<field>", plus the active_slabs/total_pages/total_malloced
// totals.
func (c *Client) StatsSlabs() (map[string]string, error) {
	return c.statsCmd("stats slabs")
}

// ArbiterTenant is one tenant's arbitration-facing state as parsed from
// "stats arbiter": its page-pool lease, the floor the arbiter will not
// shrink it below, the reservation it is converging to, the two
// hit-rate-per-byte estimates the arbiter ranks it by, and whether it
// participates in cross-tenant arbitration at all (memshare mode).
type ArbiterTenant struct {
	Arbitrated         bool
	LeasePages         int64
	ReservedPages      int64
	TargetBytes        int64
	MarginalHitPerByte float64
	HitDensityPerByte  float64
}

// ArbiterStats is the parsed "stats arbiter" response: the process-wide move
// counter, the most recent move ("donor->recipient:bytes", empty before the
// first), and every tenant's state.
type ArbiterStats struct {
	Moves    int64
	LastMove string
	Tenants  map[string]ArbiterTenant
}

// StatsArbiter fetches and parses the "stats arbiter" sub-command — the
// cross-tenant memory arbiter's observable state. Polling it is how an
// operator watches memory migrate between memshare tenants live.
func (c *Client) StatsArbiter() (*ArbiterStats, error) {
	raw, err := c.statsCmd("stats arbiter")
	if err != nil {
		return nil, err
	}
	out := &ArbiterStats{Tenants: make(map[string]ArbiterTenant)}
	out.Moves, _ = strconv.ParseInt(raw["arbiter_moves"], 10, 64)
	out.LastMove = raw["arbiter_last_move"]
	for k, v := range raw {
		i := strings.LastIndex(k, ":")
		if i < 0 {
			continue
		}
		name, field := k[:i], k[i+1:]
		t := out.Tenants[name]
		switch field {
		case "arbitrated":
			t.Arbitrated = v == "true"
		case "lease_pages":
			t.LeasePages, _ = strconv.ParseInt(v, 10, 64)
		case "reserved_pages":
			t.ReservedPages, _ = strconv.ParseInt(v, 10, 64)
		case "target_bytes":
			t.TargetBytes, _ = strconv.ParseInt(v, 10, 64)
		case "marginal_hit_per_byte":
			t.MarginalHitPerByte, _ = strconv.ParseFloat(v, 64)
		case "hit_density_per_byte":
			t.HitDensityPerByte, _ = strconv.ParseFloat(v, 64)
		default:
			continue
		}
		out.Tenants[name] = t
	}
	return out, nil
}

// ConnStats is the connection-front-end slice of the general "stats"
// response, parsed into integers: the classic connection counters plus the
// event-driven front end's gauges (how many connections are parked off
// goroutines, how many workers are busy in a session, how many bytes the
// bounded session-buffer pool holds, and the worker count). MemInuseBytes is
// the server's heap+stack in-use total, the numerator of the bytes-per-
// connection figure the conns benchmark reports.
type ConnStats struct {
	CurrConnections     int64
	TotalConnections    int64
	RejectedConnections int64
	ConnTimeouts        int64
	ConnPanics          int64
	ParkedConnections   int64
	ActiveSessions      int64
	BufferPoolBytes     int64
	WorkerCount         int64
	MemInuseBytes       int64
}

// StatsConns fetches "stats" and parses the connection and front-end
// counters. Polling it is how an operator (or the conns benchmark) watches
// per-connection memory and park/wake behaviour live.
func (c *Client) StatsConns() (*ConnStats, error) {
	raw, err := c.statsCmd("stats")
	if err != nil {
		return nil, err
	}
	out := &ConnStats{}
	for key, dst := range map[string]*int64{
		"curr_connections":     &out.CurrConnections,
		"total_connections":    &out.TotalConnections,
		"rejected_connections": &out.RejectedConnections,
		"conn_timeouts":        &out.ConnTimeouts,
		"conn_panics":          &out.ConnPanics,
		"parked_connections":   &out.ParkedConnections,
		"active_sessions":      &out.ActiveSessions,
		"buffer_pool_bytes":    &out.BufferPoolBytes,
		"worker_count":         &out.WorkerCount,
		"mem_inuse_bytes":      &out.MemInuseBytes,
	} {
		v, ok := raw[key]
		if !ok {
			return nil, fmt.Errorf("client: stats response missing %s", key)
		}
		if *dst, err = strconv.ParseInt(v, 10, 64); err != nil {
			return nil, fmt.Errorf("client: stats %s = %q: %v", key, v, err)
		}
	}
	return out, nil
}

func (c *Client) statsCmd(cmd string) (map[string]string, error) {
	var stats map[string]string
	err := c.retry(cmd, func() error {
		if err := c.writeLine(cmd); err != nil {
			return err
		}
		stats = make(map[string]string)
		for {
			line, err := c.readLine()
			if err != nil {
				return err
			}
			if line == "END" {
				return nil
			}
			fields := strings.SplitN(line, " ", 3)
			if len(fields) == 3 && fields[0] == "STAT" {
				stats[fields[1]] = fields[2]
			} else {
				c.poison()
				return fmt.Errorf("client: unexpected stats line %q", line)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// Version returns the server version string.
func (c *Client) Version() (string, error) {
	var version string
	err := c.retry("version", func() error {
		if err := c.writeLine("version"); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		version = strings.TrimPrefix(line, "VERSION ")
		return nil
	})
	if err != nil {
		return "", err
	}
	return version, nil
}

func (c *Client) writeLine(line string) error {
	if err := c.sendString(line); err != nil {
		return err
	}
	if err := c.sendString("\r\n"); err != nil {
		return err
	}
	return c.flush()
}

func (c *Client) readLine() (string, error) {
	line, err := c.readLineBytes()
	if err != nil {
		return "", err
	}
	return string(line), nil
}

// readLineBytes returns the next response line without its terminator as a
// slice into the read buffer, valid until the next read. Any failure
// poisons the connection: the stream position is unknown.
func (c *Client) readLineBytes() ([]byte, error) {
	line, err := c.r.ReadSlice('\n')
	if err != nil {
		c.poison()
		if err == bufio.ErrBufferFull {
			return nil, fmt.Errorf("client: response line too long")
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// shedStreamBuffers drops streaming scratch an earlier outsized value grew
// past the retention cap, so one huge VALUE block cannot pin its worst-case
// memory on a long-lived connection.
func (c *Client) shedStreamBuffers() {
	if cap(c.valbuf) > maxRetainedValue {
		c.valbuf = nil
	}
}

// nextStreamValue reads one VALUE block of a get/gets response, or its END
// terminator (done=true). key and value alias client-owned buffers valid
// only until the next read on the connection.
func (c *Client) nextStreamValue() (key []byte, flags uint32, cas uint64, value []byte, done bool, err error) {
	line, err := c.readLineBytes()
	if err != nil {
		return nil, 0, 0, nil, false, err
	}
	if len(line) == 3 && line[0] == 'E' && line[1] == 'N' && line[2] == 'D' {
		return nil, 0, 0, nil, true, nil
	}
	k, flags, size, cas, _, err := protocol.ParseValueLine(line)
	if err != nil {
		// An unparseable VALUE header means the stream is desynced (or the
		// server reported an in-band error mid-stream); either way the
		// remaining bytes cannot be attributed to commands.
		c.poison()
		return nil, 0, 0, nil, false, err
	}
	// The key aliases the read buffer, which the payload read overwrites.
	c.keybuf = append(c.keybuf[:0], k...)
	if cap(c.valbuf) < size {
		c.valbuf = make([]byte, size)
	}
	value = c.valbuf[:size]
	if _, err := io.ReadFull(c.r, value); err != nil {
		c.poison()
		return nil, 0, 0, nil, false, err
	}
	if _, err := c.r.Discard(2); err != nil { // trailing CRLF
		c.poison()
		return nil, 0, 0, nil, false, err
	}
	return c.keybuf, flags, cas, value, false, nil
}

// streamValues reads the VALUE blocks of one get/gets response until END,
// passing each to fn.
func (c *Client) streamValues(fn ValueFunc) error {
	for {
		key, flags, cas, value, done, err := c.nextStreamValue()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		fn(key, flags, cas, value)
	}
}
