// Package client is a small memcached-text-protocol client used by the load
// generator, the examples and the end-to-end tests. It supports the subset
// of verbs the server implements, including pipelined batches (PipelineGet,
// PipelineSet) that amortize one flush over many commands, and is safe for
// use by one goroutine per Client (the load generator opens one Client per
// worker connection).
package client

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"cliffhanger/internal/protocol"
)

// Client is one connection to a cliffhanger server.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to addr with the given timeout (0 means no timeout).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	var (
		conn net.Conn
		err  error
	)
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SelectTenant switches the connection to the given tenant.
func (c *Client) SelectTenant(name string) error {
	if err := c.writeLine("tenant " + name); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "TENANT" {
		return fmt.Errorf("client: unexpected tenant response %q", line)
	}
	return nil
}

// Set stores value under key.
func (c *Client) Set(key string, value []byte) error {
	if _, err := fmt.Fprintf(c.w, "set %s 0 0 %d\r\n", key, len(value)); err != nil {
		return err
	}
	if _, err := c.w.Write(value); err != nil {
		return err
	}
	if err := c.writeLine(""); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	ok, err := protocol.ParseResponseLine(line)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("client: set not stored: %s", line)
	}
	return nil
}

// Get fetches key, reporting whether it was present.
func (c *Client) Get(key string) ([]byte, bool, error) {
	if err := c.writeLine("get " + key); err != nil {
		return nil, false, err
	}
	values, err := c.readValues()
	if err != nil {
		return nil, false, err
	}
	if v, ok := values[key]; ok {
		return v, true, nil
	}
	return nil, false, nil
}

// GetMulti fetches several keys in one round trip.
func (c *Client) GetMulti(keys []string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	if err := c.writeLine("get " + strings.Join(keys, " ")); err != nil {
		return nil, err
	}
	return c.readValues()
}

// PipelineSet stores value under every key with a single batch write and a
// single flush, then reads the responses. The server parses ahead on its
// buffered reader and flushes once per batch, so a deep pipeline pays one
// syscall per direction per batch instead of one per command.
func (c *Client) PipelineSet(keys []string, value []byte) error {
	for _, key := range keys {
		if _, err := fmt.Fprintf(c.w, "set %s 0 0 %d\r\n", key, len(value)); err != nil {
			return err
		}
		if _, err := c.w.Write(value); err != nil {
			return err
		}
		if _, err := c.w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for _, key := range keys {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		ok, err := protocol.ParseResponseLine(line)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("client: pipelined set %q not stored: %s", key, line)
		}
	}
	return nil
}

// PipelineGet issues one get command per key in a single batch write and a
// single flush, then reads all responses. Missing keys are absent from the
// returned map.
func (c *Client) PipelineGet(keys []string) (map[string][]byte, error) {
	for _, key := range keys {
		if _, err := c.w.WriteString("get " + key + "\r\n"); err != nil {
			return nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for range keys {
		values, err := c.readValues()
		if err != nil {
			return nil, err
		}
		for k, v := range values {
			out[k] = v
		}
	}
	return out, nil
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	if err := c.writeLine("delete " + key); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	return protocol.ParseResponseLine(line)
}

// FlushAll clears the selected tenant.
func (c *Client) FlushAll() error {
	if err := c.writeLine("flush_all"); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "OK" {
		return fmt.Errorf("client: flush_all failed: %s", line)
	}
	return nil
}

// Stats returns the server's STAT lines for the selected tenant.
func (c *Client) Stats() (map[string]string, error) {
	if err := c.writeLine("stats"); err != nil {
		return nil, err
	}
	stats := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return stats, nil
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) == 3 && fields[0] == "STAT" {
			stats[fields[1]] = fields[2]
		} else {
			return nil, fmt.Errorf("client: unexpected stats line %q", line)
		}
	}
}

// Version returns the server version string.
func (c *Client) Version() (string, error) {
	if err := c.writeLine("version"); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

func (c *Client) writeLine(line string) error {
	if _, err := c.w.WriteString(line + "\r\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// readValues parses the VALUE blocks of a get response until END.
func (c *Client) readValues() (map[string][]byte, error) {
	out := make(map[string][]byte)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[0] != "VALUE" {
			return nil, fmt.Errorf("client: unexpected get response %q", line)
		}
		size, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("client: bad value size in %q", line)
		}
		data := make([]byte, size+2)
		if _, err := readFull(c.r, data); err != nil {
			return nil, err
		}
		out[fields[1]] = data[:size]
	}
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
