package client_test

import (
	"testing"
	"time"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/client"
	"cliffhanger/internal/server"
	"cliffhanger/internal/store"
)

// TestAllocGateClientStreamingGet pins the streaming GET path end to end
// over a real loopback socket (run by `make alloccheck` and CI): a depth-64
// pipelined batch through PipelineGetFunc must average <= 1 allocation per
// operation, client and server combined. The server side is 0 on a hit
// (PR 3's gate) and the streaming client reads keys and values into reusable
// buffers, so the whole round trip produces no per-value garbage — closing
// the ROADMAP open item about PipelineGet's ~2 allocs/op.
func TestAllocGateClientStreamingGet(t *testing.T) {
	st := store.New(store.Config{
		DefaultMode:     store.AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	t.Cleanup(func() { st.Close() })
	if err := st.RegisterTenant("default", 64<<20); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Addr: "127.0.0.1:0", DefaultTenant: "default"}, st)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const depth = 64
	keys := make([]string, depth)
	for i := range keys {
		keys[i] = "stream-key-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	if err := c.PipelineSet(keys, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}

	var bytesSeen int
	onValue := func(i int, key []byte, flags uint32, cas uint64, value []byte) {
		bytesSeen += len(value)
	}
	run := func() {
		if err := c.PipelineGetFunc(keys, onValue); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the client buffers
	allocs := testing.AllocsPerRun(200, run)
	if perOp := allocs / depth; perOp > 1 {
		t.Errorf("streaming pipelined GET allocates %.2f objects/op (%.1f per depth-%d batch), want <= 1 amortized",
			perOp, allocs, depth)
	}
	if bytesSeen == 0 {
		t.Fatal("callback never saw a value")
	}
}

// TestAllocGateGovernedStreamingGet re-runs the end-to-end streaming gate
// with the connection governor fully armed (MaxConns, idle, read and write
// deadlines). AllocsPerRun counts mallocs process-wide, so the server's
// session goroutine is inside the measurement: arming a deadline per read
// and write must add zero allocations, or overload armor would cost the
// hot path its allocation-free guarantee.
func TestAllocGateGovernedStreamingGet(t *testing.T) {
	st := store.New(store.Config{
		DefaultMode:     store.AllocCliffhanger,
		DefaultPolicy:   cache.PolicyLRU,
		SyncBookkeeping: true,
	})
	t.Cleanup(func() { st.Close() })
	if err := st.RegisterTenant("default", 64<<20); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		DefaultTenant: "default",
		MaxConns:      64,
		IdleTimeout:   time.Minute,
		ReadTimeout:   time.Minute,
		WriteTimeout:  time.Minute,
	}, st)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const depth = 64
	keys := make([]string, depth)
	for i := range keys {
		keys[i] = "gov-key-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	if err := c.PipelineSet(keys, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}

	onValue := func(i int, key []byte, flags uint32, cas uint64, value []byte) {}
	run := func() {
		if err := c.PipelineGetFunc(keys, onValue); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the client buffers
	allocs := testing.AllocsPerRun(200, run)
	if perOp := allocs / depth; perOp > 1 {
		t.Errorf("governed streaming GET allocates %.2f objects/op (%.1f per depth-%d batch), want <= 1 amortized — the governor must not allocate on the hot path",
			perOp, allocs, depth)
	}
}
