package sim

import (
	"fmt"
	"testing"

	"cliffhanger/internal/core"
	"cliffhanger/internal/solver"
	"cliffhanger/internal/store"
	"cliffhanger/internal/trace"
)

// TestPolicyGoldenHitRates pins the simulator's hit rates for every
// allocation policy to the exact values produced before the per-mode switch
// statements in internal/store/tenant.go were extracted into the
// partitionPolicy layer. The comparison is on raw hit counts, not rounded
// rates, so any behavioral drift in the refactored policies — a different
// grow order, an extra eviction, a changed resize rounding — fails loudly.
// The 4-decimal rates in the test names match the numbers recorded in
// CHANGES.md across earlier PRs (default 0.4696 / cliffhanger 0.4869, app1
// 0.3910 vs 0.4385, solver app1 0.6434).
func TestPolicyGoldenHitRates(t *testing.T) {
	apps := smallApps()

	solverAllocs := func(t *testing.T) map[int]map[int]int64 {
		t.Helper()
		profiles := ProfileClasses(nil, trace.NewGenerator(trace.GeneratorConfig{
			Apps: apps, Requests: 300000, Seed: 42,
		}), ProfileOptions{CurvePoints: 100})
		allocs, err := DynacacheAllocations(profiles, apps, solver.Options{Concavify: true})
		if err != nil {
			t.Fatal(err)
		}
		return allocs
	}

	cases := []struct {
		name     string
		mode     store.AllocationMode
		requests int64
		mutate   func(*testing.T, *Config)
		// Golden values measured at commit f912d5d (pre-refactor).
		hits, app1Hits int64
		rate, app1Rate string
	}{
		{
			name: "default", mode: store.AllocDefault, requests: 400000,
			hits: 187842, app1Hits: 109324, rate: "0.4696", app1Rate: "0.3910",
		},
		{
			name: "cliffhanger", mode: store.AllocCliffhanger, requests: 400000,
			mutate: func(_ *testing.T, c *Config) {
				c.Cliffhanger = core.DefaultConfig()
				c.Cliffhanger.ShadowBytes = 512 << 10
			},
			hits: 194780, app1Hits: 122605, rate: "0.4869", app1Rate: "0.4385",
		},
		{
			name: "static-solver", mode: store.AllocStatic, requests: 300000,
			mutate: func(t *testing.T, c *Config) {
				c.StaticAllocations = solverAllocs(t)
			},
			hits: 192959, app1Hits: 134883, rate: "0.6432", app1Rate: "0.6434",
		},
		{
			name: "global-lru", mode: store.AllocGlobalLRU, requests: 150000,
			hits: 40293, app1Hits: 13000, rate: "0.2686", app1Rate: "0.1242",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Apps: apps, Mode: tc.mode}
			if tc.mutate != nil {
				tc.mutate(t, &cfg)
			}
			res, err := RunWithGenerator(cfg, tc.requests, 42)
			if err != nil {
				t.Fatal(err)
			}
			app1 := res.App(1)
			t.Logf("overall %d hits (%.4f), app1 %d hits (%.4f)",
				res.TotalHits, res.HitRate(), app1.Hits, app1.HitRate())
			if res.TotalHits != tc.hits || app1.Hits != tc.app1Hits {
				t.Errorf("hit counts diverged from golden: overall %d want %d, app1 %d want %d",
					res.TotalHits, tc.hits, app1.Hits, tc.app1Hits)
			}
			if got := fmt.Sprintf("%.4f", res.HitRate()); got != tc.rate {
				t.Errorf("overall hit rate %s, golden %s", got, tc.rate)
			}
			if got := fmt.Sprintf("%.4f", app1.HitRate()); got != tc.app1Rate {
				t.Errorf("app1 hit rate %s, golden %s", got, tc.app1Rate)
			}
		})
	}
}
