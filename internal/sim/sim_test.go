package sim

import (
	"testing"

	"cliffhanger/internal/core"
	"cliffhanger/internal/slab"
	"cliffhanger/internal/solver"
	"cliffhanger/internal/store"
	"cliffhanger/internal/trace"
)

// smallApps returns a compact two-application workload: app 1 is heavily
// size-skewed (a hot small class starved by a huge-value class under FCFS),
// app 2 is an over-provisioned Zipf app.
func smallApps() []trace.AppSpec {
	return []trace.AppSpec{
		{
			// The hot 64-byte class needs ~2.5 MiB but the huge-value class
			// (whose working set can never fit) grabs most of the pages
			// under first-come-first-serve — the Table 1 pathology.
			ID: 1, MemoryMB: 4, RequestShare: 0.7,
			Classes: []trace.ClassSpec{
				{ValueSize: 64, Keys: 40000, Weight: 0.75, Pattern: trace.PatternUniform},
				{ValueSize: 16 << 10, Keys: 60000, Weight: 0.25, Pattern: trace.PatternZipf, ZipfS: 1.01},
			},
		},
		{
			// A single-class app whose working set (~3 MiB) exceeds its
			// 2 MiB reservation, so less memory means a lower hit rate.
			ID: 2, MemoryMB: 2, RequestShare: 0.3,
			Classes: []trace.ClassSpec{
				{ValueSize: 256, Keys: 12000, Weight: 1, Pattern: trace.PatternUniform},
			},
		},
	}
}

func runMode(t *testing.T, apps []trace.AppSpec, mode store.AllocationMode, requests int64, mutate func(*Config)) *Result {
	t.Helper()
	cfg := Config{Apps: apps, Mode: mode}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := RunWithGenerator(cfg, requests, 42)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, trace.NewSliceSource(nil)); err == nil {
		t.Fatalf("empty app list should error")
	}
}

func TestRunCountsAreConsistent(t *testing.T) {
	apps := smallApps()
	res := runMode(t, apps, store.AllocDefault, 100000, nil)
	if res.TotalRequests != res.TotalHits+res.TotalMisses {
		t.Fatalf("hits+misses != requests: %+v", res)
	}
	var perApp int64
	for _, ar := range res.Apps {
		perApp += ar.Requests
		if ar.Requests != ar.Hits+ar.Misses {
			t.Fatalf("app %d inconsistent: %+v", ar.App, ar)
		}
		var classReqs int64
		for _, cr := range ar.Classes {
			classReqs += cr.Requests
			if cr.Hits+cr.Misses != cr.Requests {
				t.Fatalf("class counters inconsistent: %+v", cr)
			}
		}
		if classReqs != ar.Requests {
			t.Fatalf("app %d class requests %d != app requests %d", ar.App, classReqs, ar.Requests)
		}
	}
	if perApp != res.TotalRequests {
		t.Fatalf("per-app requests do not sum to total")
	}
	if res.HitRate() <= 0 || res.HitRate() > 1 {
		t.Fatalf("implausible hit rate %v", res.HitRate())
	}
}

func TestRunDeterministic(t *testing.T) {
	apps := smallApps()
	a := runMode(t, apps, store.AllocCliffhanger, 60000, nil)
	b := runMode(t, apps, store.AllocCliffhanger, 60000, nil)
	if a.TotalHits != b.TotalHits || a.TotalRequests != b.TotalRequests {
		t.Fatalf("simulation is not deterministic: %d/%d vs %d/%d",
			a.TotalHits, a.TotalRequests, b.TotalHits, b.TotalRequests)
	}
}

func TestCliffhangerBeatsDefaultOnSkewedApp(t *testing.T) {
	apps := smallApps()
	const requests = 400000
	def := runMode(t, apps, store.AllocDefault, requests, nil)
	cliff := runMode(t, apps, store.AllocCliffhanger, requests, func(c *Config) {
		c.Cliffhanger = core.DefaultConfig()
		c.Cliffhanger.ShadowBytes = 512 << 10
	})
	t.Logf("default %.4f cliffhanger %.4f (app1 %.4f vs %.4f)",
		def.HitRate(), cliff.HitRate(), def.App(1).HitRate(), cliff.App(1).HitRate())
	if cliff.App(1).HitRate() <= def.App(1).HitRate() {
		t.Fatalf("Cliffhanger (%.4f) should beat default FCFS (%.4f) on the size-skewed app",
			cliff.App(1).HitRate(), def.App(1).HitRate())
	}
	if cliff.HitRate() <= def.HitRate() {
		t.Fatalf("Cliffhanger overall (%.4f) should beat default (%.4f)", cliff.HitRate(), def.HitRate())
	}
}

func TestStaticSolverAllocationsImproveSkewedApp(t *testing.T) {
	apps := smallApps()
	const requests = 300000
	// Profile, solve, then replay with the static allocation.
	profiles := ProfileClasses(nil, trace.NewGenerator(trace.GeneratorConfig{
		Apps: apps, Requests: requests, Seed: 42,
	}), ProfileOptions{CurvePoints: 100})
	if len(profiles[1]) < 2 {
		t.Fatalf("expected at least two profiled classes for app 1, got %d", len(profiles[1]))
	}
	allocs, err := DynacacheAllocations(profiles, apps, solver.Options{Concavify: true})
	if err != nil {
		t.Fatal(err)
	}
	def := runMode(t, apps, store.AllocDefault, requests, nil)
	static := runMode(t, apps, store.AllocStatic, requests, func(c *Config) {
		c.StaticAllocations = allocs
	})
	t.Logf("default app1 %.4f solver app1 %.4f", def.App(1).HitRate(), static.App(1).HitRate())
	if static.App(1).HitRate() <= def.App(1).HitRate() {
		t.Fatalf("solver allocation (%.4f) should beat default FCFS (%.4f) on the skewed app",
			static.App(1).HitRate(), def.App(1).HitRate())
	}
	// The small hot class should receive the larger share of app 1's memory.
	geom := slab.DefaultGeometry()
	smallClass, _ := geom.ClassFor(64)
	bigClass, _ := geom.ClassFor(16 << 10)
	if allocs[1][smallClass] <= allocs[1][bigClass] {
		t.Fatalf("solver should favor the hot small class: %v", allocs[1])
	}
}

func TestGlobalLRUMode(t *testing.T) {
	apps := smallApps()
	res := runMode(t, apps, store.AllocGlobalLRU, 150000, nil)
	if res.HitRate() <= 0 {
		t.Fatalf("global LRU produced no hits")
	}
}

func TestTimelineAndWindowCollection(t *testing.T) {
	apps := smallApps()
	res := runMode(t, apps, store.AllocCliffhanger, 120000, func(c *Config) {
		c.TimelineInterval = 10000
		c.WindowSize = 20000
	})
	ar := res.App(1)
	if len(ar.Timeline) == 0 {
		t.Fatalf("timeline samples missing")
	}
	for _, s := range ar.Timeline {
		var sum int64
		for _, b := range s.ClassBytes {
			sum += b
		}
		if sum <= 0 {
			t.Fatalf("timeline sample with no allocated memory: %+v", s)
		}
	}
	if len(ar.Window) == 0 {
		t.Fatalf("windowed hit-rate samples missing")
	}
	for _, w := range ar.Window {
		if w.HitRate < 0 || w.HitRate > 1 {
			t.Fatalf("window hit rate out of range: %+v", w)
		}
	}
}

func TestAppMemoryOverrideAndScale(t *testing.T) {
	apps := smallApps()
	// Give app 2 a quarter of its memory via override and halve everything
	// via scale; hit rates must drop relative to the unmodified run.
	base := runMode(t, apps, store.AllocDefault, 150000, nil)
	squeezed := runMode(t, apps, store.AllocDefault, 150000, func(c *Config) {
		c.AppMemoryOverride = map[int]int64{2: 1 << 20}
		c.MemoryScale = 0.99
	})
	if squeezed.App(2).HitRate() >= base.App(2).HitRate() {
		t.Fatalf("shrinking app 2's memory should reduce its hit rate (%.4f vs %.4f)",
			squeezed.App(2).HitRate(), base.App(2).HitRate())
	}
	if squeezed.App(2).MemoryBytes >= base.App(2).MemoryBytes {
		t.Fatalf("override/scale not applied: %d vs %d", squeezed.App(2).MemoryBytes, base.App(2).MemoryBytes)
	}
}

func TestMissReduction(t *testing.T) {
	a := &AppResult{Misses: 100}
	b := &AppResult{Misses: 40}
	if got := MissReduction(a, b); got != 0.6 {
		t.Fatalf("MissReduction = %v, want 0.6", got)
	}
	if got := MissReduction(a, &AppResult{Misses: 150}); got != -0.5 {
		t.Fatalf("MissReduction = %v, want -0.5", got)
	}
	if MissReduction(nil, b) != 0 || MissReduction(&AppResult{}, b) != 0 {
		t.Fatalf("degenerate cases should be 0")
	}
}

func TestMemoryScaleToMatch(t *testing.T) {
	apps := smallApps()[1:] // only the small concave app for speed
	cfg := Config{Apps: apps, Mode: store.AllocDefault}
	makeSrc := func() trace.Source {
		return trace.NewGenerator(trace.GeneratorConfig{Apps: apps, Requests: 60000, Seed: 9})
	}
	// Target a modest hit rate; the search should find a scale below 1.
	ref, err := Run(cfg, makeSrc())
	if err != nil {
		t.Fatal(err)
	}
	target := ref.HitRate() * 0.9
	scale, rate, err := MemoryScaleToMatch(cfg, makeSrc, target, 0.05, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if scale <= 0 || scale > 1 {
		t.Fatalf("scale %v out of range", scale)
	}
	if rate < target {
		t.Fatalf("achieved rate %.4f below target %.4f", rate, target)
	}
	if _, _, err := MemoryScaleToMatch(cfg, makeSrc, 0.5, 1.0, 0.5, 3); err == nil {
		t.Fatalf("invalid scale range should error")
	}
}

func TestCrossAppAllocationsMoveMemoryToStarvedApp(t *testing.T) {
	// App 1 is over-provisioned, app 2 is starved: the cross-app solver
	// should give app 2 more than its reservation.
	apps := []trace.AppSpec{
		{ID: 1, MemoryMB: 8, RequestShare: 0.5, Classes: []trace.ClassSpec{
			{ValueSize: 256, Keys: 2000, Weight: 1, Pattern: trace.PatternZipf, ZipfS: 1.3},
		}},
		{ID: 2, MemoryMB: 1, RequestShare: 0.5, Classes: []trace.ClassSpec{
			{ValueSize: 256, Keys: 30000, Weight: 1, Pattern: trace.PatternZipf, ZipfS: 1.1},
		}},
	}
	profiles := ProfileClasses(nil, trace.NewGenerator(trace.GeneratorConfig{
		Apps: apps, Requests: 200000, Seed: 3,
	}), ProfileOptions{CurvePoints: 80})
	allocs, err := CrossAppAllocations(profiles, apps, solver.Options{Concavify: true})
	if err != nil {
		t.Fatal(err)
	}
	if allocs[2] <= 1<<20 {
		t.Fatalf("starved app should receive more than its 1 MiB reservation, got %d", allocs[2])
	}
	total := allocs[1] + allocs[2]
	if total > 9<<20 {
		t.Fatalf("cross-app allocation exceeds the combined budget: %d", total)
	}
}

func TestProfileClassesApproximate(t *testing.T) {
	apps := smallApps()
	src := trace.NewGenerator(trace.GeneratorConfig{Apps: apps, Requests: 50000, Seed: 5})
	profiles := ProfileClasses(nil, src, ProfileOptions{CurvePoints: 50, Approximate: true, Buckets: 64})
	if len(profiles) == 0 {
		t.Fatalf("no profiles produced")
	}
	for app, classes := range profiles {
		for class, p := range classes {
			if p.Curve.Len() == 0 || p.Requests == 0 {
				t.Fatalf("empty profile for app %d class %d", app, class)
			}
			bc := p.ByteCurve()
			if bc.MaxSize() != p.Curve.MaxSize()*p.ChunkSize {
				t.Fatalf("byte curve scaling wrong")
			}
		}
	}
}

func BenchmarkSimDefaultMode(b *testing.B) {
	apps := smallApps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWithGenerator(Config{Apps: apps, Mode: store.AllocDefault}, 50000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimCliffhangerMode(b *testing.B) {
	apps := smallApps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWithGenerator(Config{Apps: apps, Mode: store.AllocCliffhanger}, 50000, 1); err != nil {
			b.Fatal(err)
		}
	}
}
