// Package sim replays request traces through the multi-tenant cache engine
// under different memory-allocation policies and collects the statistics the
// paper's tables and figures report: per-application and per-slab-class hit
// rates and miss counts, per-class memory allocations over time (Figure 8),
// windowed hit rates (Figure 9), and the memory needed to match a reference
// hit rate (Figure 7).
//
// The simulator uses demand-fill semantics: a GET miss is immediately
// followed by an admission of the same key, modelling the application's
// read-through fill, which is the standard way to replay cache traces.
package sim

import (
	"fmt"
	"math"
	"sort"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/core"
	"cliffhanger/internal/metrics"
	"cliffhanger/internal/slab"
	"cliffhanger/internal/store"
	"cliffhanger/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	// Apps lists the applications; each gets its own tenant with
	// MemoryMB * MemoryScale of memory.
	Apps []trace.AppSpec
	// Geometry is the slab geometry (nil = default).
	Geometry *slab.Geometry
	// Mode selects the allocation policy under test.
	Mode store.AllocationMode
	// Policy selects the eviction policy for non-Cliffhanger modes.
	Policy cache.PolicyKind
	// Cliffhanger configures Cliffhanger tenants (zero value = paper
	// defaults).
	Cliffhanger core.Config
	// StaticAllocations provides per-app, per-class budgets in bytes for
	// store.AllocStatic mode (typically produced by the Dynacache solver).
	StaticAllocations map[int]map[int]int64
	// AppMemoryOverride, when non-nil, replaces each application's memory
	// reservation (in bytes); used for cross-application reallocation
	// experiments (Table 3).
	AppMemoryOverride map[int]int64
	// MemoryScale multiplies every application's memory reservation; 0
	// means 1.0. Used by the memory-savings search (Figure 7).
	MemoryScale float64
	// TimelineInterval, when > 0, records each app's per-class capacities
	// every TimelineInterval requests (Figure 8).
	TimelineInterval int64
	// WindowSize, when > 0, records each app's hit rate over consecutive
	// windows of WindowSize requests (Figure 9).
	WindowSize int64
	// Arbiter configures the cross-tenant Memshare arbiter for
	// store.AllocMemshare runs (zero value = store defaults).
	Arbiter store.ArbiterConfig
	// ArbiterEvery is the arbiter tick cadence in demand-fill GET requests
	// across all apps; 0 uses store.DefaultArbiterEvery. Only meaningful in
	// store.AllocMemshare mode. The wire-replay cross-check drives the real
	// store's arbiter at the same request counts, which is what keeps a
	// memshare simulation and a memshare server replay comparable.
	ArbiterEvery int64
}

// TimelineSample is one snapshot of an application's per-class memory
// allocation.
type TimelineSample struct {
	// Request is the application's cumulative request count at the sample.
	Request int64
	// Time is the trace timestamp of the sample, in seconds.
	Time float64
	// ClassBytes maps slab class to allocated bytes.
	ClassBytes map[int]int64
}

// ClassResult accumulates per-slab-class results.
type ClassResult struct {
	Class     int
	ChunkSize int64
	Requests  int64
	Hits      int64
	Misses    int64
	Evictions int64
	// FinalBytes is the class's capacity at the end of the run.
	FinalBytes int64
}

// HitRate returns the class hit rate.
func (c *ClassResult) HitRate() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Requests)
}

// AppResult accumulates per-application results.
type AppResult struct {
	App         int
	MemoryBytes int64
	Requests    int64
	Hits        int64
	Misses      int64
	Classes     map[int]*ClassResult
	Timeline    []TimelineSample
	Window      []metrics.WindowSample
}

// HitRate returns the application's hit rate.
func (a *AppResult) HitRate() float64 {
	if a.Requests == 0 {
		return 0
	}
	return float64(a.Hits) / float64(a.Requests)
}

// Result is the outcome of one simulation run.
type Result struct {
	Mode          store.AllocationMode
	Apps          map[int]*AppResult
	TotalRequests int64
	TotalHits     int64
	TotalMisses   int64
}

// HitRate returns the overall hit rate across applications.
func (r *Result) HitRate() float64 {
	if r.TotalRequests == 0 {
		return 0
	}
	return float64(r.TotalHits) / float64(r.TotalRequests)
}

// App returns the result for one application (nil if absent).
func (r *Result) App(id int) *AppResult { return r.Apps[id] }

// MissReduction returns the relative reduction in misses of this result
// compared to a baseline: (baseMisses - misses) / baseMisses. Negative values
// mean more misses than the baseline.
func MissReduction(baseline, result *AppResult) float64 {
	if baseline == nil || result == nil || baseline.Misses == 0 {
		return 0
	}
	return float64(baseline.Misses-result.Misses) / float64(baseline.Misses)
}

// TenantName is the canonical tenant name for application id: the name Run
// gives its tenants and the wire-replay cross-check registers on a real
// server.
func TenantName(id int) string { return fmt.Sprintf("app%d", id) }

// TenantConfigs returns the per-application tenant configuration Run builds:
// name TenantName(ID), the scaled/overridden memory reservation, shared
// geometry, allocation mode, eviction policy and Cliffhanger settings. It is
// exported so the wire-replay cross-check harness (internal/workload) can
// register tenants on a real server that are configured identically to the
// simulator's.
func TenantConfigs(cfg Config) (map[int]store.TenantConfig, error) {
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("sim: no applications configured")
	}
	geom := cfg.Geometry
	if geom == nil {
		geom = slab.DefaultGeometry()
	}
	scale := cfg.MemoryScale
	if scale <= 0 {
		scale = 1
	}
	ch := cfg.Cliffhanger
	if ch.CreditBytes == 0 {
		ch = core.DefaultConfig()
	}
	out := make(map[int]store.TenantConfig, len(cfg.Apps))
	for _, app := range cfg.Apps {
		memory := app.MemoryMB << 20
		if override, ok := cfg.AppMemoryOverride[app.ID]; ok {
			memory = override
		}
		memory = int64(math.Round(float64(memory) * scale))
		if memory < geom.PageSize {
			memory = geom.PageSize
		}
		tcfg := store.TenantConfig{
			Name:        TenantName(app.ID),
			MemoryBytes: memory,
			Geometry:    geom,
			Mode:        cfg.Mode,
			Policy:      cfg.Policy,
			Cliffhanger: ch,
		}
		if cfg.Mode == store.AllocStatic {
			tcfg.StaticClassBytes = cfg.StaticAllocations[app.ID]
		}
		out[app.ID] = tcfg
	}
	return out, nil
}

// Run replays src through tenants configured per cfg.
func Run(cfg Config, src trace.Source) (*Result, error) {
	tcfgs, err := TenantConfigs(cfg)
	if err != nil {
		return nil, err
	}

	tenants := make(map[int]*store.Tenant, len(cfg.Apps))
	results := make(map[int]*AppResult, len(cfg.Apps))
	windows := make(map[int]*metrics.WindowedHitRate)
	for _, app := range cfg.Apps {
		tcfg := tcfgs[app.ID]
		tenant, err := store.NewTenant(tcfg)
		if err != nil {
			return nil, fmt.Errorf("sim: app %d: %v", app.ID, err)
		}
		tenants[app.ID] = tenant
		results[app.ID] = &AppResult{
			App:         app.ID,
			MemoryBytes: tcfg.MemoryBytes,
			Classes:     make(map[int]*ClassResult),
		}
		if cfg.WindowSize > 0 {
			windows[app.ID] = metrics.NewWindowedHitRate(cfg.WindowSize)
		}
	}

	// In memshare mode the simulator runs the same arbiter decision engine
	// the Store does, at a deterministic request cadence, over observations
	// ordered exactly as the Store orders them (sorted by tenant name).
	var arb *store.ArbiterState
	var arbIDs []int
	arbEvery := cfg.ArbiterEvery
	if cfg.Mode == store.AllocMemshare {
		geom := cfg.Geometry
		if geom == nil {
			geom = slab.DefaultGeometry()
		}
		arb = store.NewArbiterState(cfg.Arbiter, geom.PageSize)
		if arbEvery <= 0 {
			arbEvery = store.DefaultArbiterEvery
		}
		for _, app := range cfg.Apps {
			arbIDs = append(arbIDs, app.ID)
		}
		sort.Slice(arbIDs, func(i, j int) bool {
			return TenantName(arbIDs[i]) < TenantName(arbIDs[j])
		})
	}
	arbiterTick := func() {
		obs := make([]store.ArbiterObservation, 0, len(arbIDs))
		for _, id := range arbIDs {
			tenant := tenants[id]
			var shadow int64
			if m := tenant.Manager(); m != nil {
				shadow = m.TotalStats().ShadowHits
			}
			obs = append(obs, store.ArbiterObservation{
				Name:          TenantName(id),
				ShadowHits:    shadow,
				Hits:          tenant.Hits(),
				ShadowBytes:   tenant.ShadowBytes(),
				TargetBytes:   tenant.MemoryBytes(),
				ReservedBytes: tenant.ReservedBytes(),
			})
		}
		mv, ok := arb.Tick(obs)
		if !ok {
			return
		}
		for _, id := range arbIDs {
			switch TenantName(id) {
			case mv.Donor:
				tenants[id].Resize(mv.DonorBytes)
			case mv.Recipient:
				tenants[id].Resize(mv.RecipientBytes)
			}
		}
	}

	res := &Result{Mode: cfg.Mode, Apps: results}
	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		tenant, ok := tenants[req.App]
		if !ok {
			continue // request for an app outside this experiment
		}
		ar := results[req.App]
		switch req.Op {
		case trace.OpDelete:
			tenant.Delete(req.Key, req.Size)
			continue
		case trace.OpSet:
			tenant.Admit(req.Key, req.Size)
			continue
		default:
			hit, _ := tenant.Access(req.Key, req.Size)
			ar.Requests++
			res.TotalRequests++
			if hit {
				ar.Hits++
				res.TotalHits++
			} else {
				ar.Misses++
				res.TotalMisses++
			}
			if w := windows[req.App]; w != nil {
				w.Record(hit)
			}
			if arb != nil && res.TotalRequests%arbEvery == 0 {
				arbiterTick()
			}
			if cfg.TimelineInterval > 0 && ar.Requests%cfg.TimelineInterval == 0 {
				ar.Timeline = append(ar.Timeline, TimelineSample{
					Request:    ar.Requests,
					Time:       req.Time,
					ClassBytes: tenant.ClassCapacities(),
				})
			}
		}
	}

	// Fold per-class tenant statistics into the results. MemoryBytes is
	// re-read so a memshare run reports each app's final reservation after
	// arbitration (identical to the initial one in every other mode).
	for id, tenant := range tenants {
		ar := results[id]
		ar.MemoryBytes = tenant.MemoryBytes()
		for _, cs := range tenant.Stats().Classes {
			ar.Classes[cs.Class] = &ClassResult{
				Class:      cs.Class,
				ChunkSize:  cs.ChunkSize,
				Requests:   cs.Requests,
				Hits:       cs.Hits,
				Misses:     cs.Misses,
				Evictions:  cs.Evictions,
				FinalBytes: cs.CapacityBytes,
			}
		}
		if w := windows[id]; w != nil {
			ar.Window = w.Samples()
		}
	}
	return res, nil
}

// RunWithGenerator builds the standard Memcachier-like generator over
// cfg.Apps and runs the simulation, a convenience wrapper used by the
// experiment harness and benchmarks.
func RunWithGenerator(cfg Config, requests int64, seed int64) (*Result, error) {
	gen := trace.NewGenerator(trace.GeneratorConfig{
		Apps:     cfg.Apps,
		Requests: requests,
		Seed:     seed,
	})
	return Run(cfg, gen)
}

// MemoryScaleToMatch searches for the smallest memory scale at which running
// cfg achieves at least the target hit rate, using a bisection over
// [loScale, hiScale] with the given number of iterations. It returns the
// scale and the hit rate achieved at that scale. This implements the
// "memory that Cliffhanger needs to match the default scheme" measurement of
// Figure 7.
func MemoryScaleToMatch(cfg Config, makeSource func() trace.Source, target float64, loScale, hiScale float64, iters int) (float64, float64, error) {
	if loScale <= 0 || hiScale <= loScale {
		return 0, 0, fmt.Errorf("sim: invalid scale range [%v, %v]", loScale, hiScale)
	}
	if iters < 1 {
		iters = 6
	}
	best := hiScale
	bestRate := 0.0
	lo, hi := loScale, hiScale
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		c := cfg
		c.MemoryScale = mid
		res, err := Run(c, makeSource())
		if err != nil {
			return 0, 0, err
		}
		if res.HitRate() >= target {
			best = mid
			bestRate = res.HitRate()
			hi = mid
		} else {
			lo = mid
		}
	}
	if bestRate == 0 {
		// Even the largest scale missed the target; report it.
		c := cfg
		c.MemoryScale = hiScale
		res, err := Run(c, makeSource())
		if err != nil {
			return 0, 0, err
		}
		return hiScale, res.HitRate(), nil
	}
	return best, bestRate, nil
}
