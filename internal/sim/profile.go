package sim

import (
	"fmt"
	"sort"

	"cliffhanger/internal/slab"
	"cliffhanger/internal/solver"
	"cliffhanger/internal/stackdist"
	"cliffhanger/internal/trace"
)

// ClassProfile holds the hit-rate curve of one (application, slab class)
// request stream, measured in items.
type ClassProfile struct {
	App       int
	Class     int
	ChunkSize int64
	Requests  int64
	Curve     *stackdist.Curve
}

// ByteCurve returns the profile's hit-rate curve with sizes converted from
// items to bytes using the class chunk size.
func (p *ClassProfile) ByteCurve() *stackdist.Curve {
	return p.Curve.Scale(p.ChunkSize)
}

// ProfileOptions controls curve profiling.
type ProfileOptions struct {
	// CurvePoints is the number of samples per curve (default 200).
	CurvePoints int
	// Approximate uses the Mimir-style bucket estimator instead of exact
	// Mattson stack distances, matching Dynacache's implementation.
	Approximate bool
	// Buckets is the bucket count for the approximate estimator (default
	// 100, as in the paper).
	Buckets int
}

// ProfileClasses replays src and computes a hit-rate curve per (app, class).
// The result is keyed by app ID then slab class.
func ProfileClasses(geom *slab.Geometry, src trace.Source, opts ProfileOptions) map[int]map[int]*ClassProfile {
	if geom == nil {
		geom = slab.DefaultGeometry()
	}
	points := opts.CurvePoints
	if points <= 0 {
		points = 200
	}
	buckets := opts.Buckets
	if buckets <= 0 {
		buckets = 100
	}
	type key struct{ app, class int }
	profilers := make(map[key]*stackdist.Profiler)
	counts := make(map[key]int64)
	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		if req.Op == trace.OpDelete {
			continue
		}
		class, ok := geom.ClassFor(req.Size)
		if !ok {
			continue
		}
		k := key{req.App, class}
		p := profilers[k]
		if p == nil {
			if opts.Approximate {
				p = stackdist.NewApproxProfiler(buckets)
			} else {
				p = stackdist.NewProfiler()
			}
			profilers[k] = p
		}
		p.Access(req.Key)
		counts[k]++
	}
	out := make(map[int]map[int]*ClassProfile)
	for k, p := range profilers {
		if out[k.app] == nil {
			out[k.app] = make(map[int]*ClassProfile)
		}
		out[k.app][k.class] = &ClassProfile{
			App:       k.app,
			Class:     k.class,
			ChunkSize: geom.ChunkSize(k.class),
			Requests:  counts[k],
			Curve:     p.Curve(0, points),
		}
	}
	return out
}

// DynacacheAllocations runs the Dynacache-style solver independently for each
// application: given the application's per-class curves and its memory
// reservation, it returns per-class byte budgets maximizing the predicted
// overall hit rate (Equation 1). The returned map feeds
// Config.StaticAllocations for store.AllocStatic runs.
func DynacacheAllocations(profiles map[int]map[int]*ClassProfile, apps []trace.AppSpec, opts solver.Options) (map[int]map[int]int64, error) {
	out := make(map[int]map[int]int64, len(apps))
	for _, app := range apps {
		classes := profiles[app.ID]
		if len(classes) == 0 {
			continue
		}
		budget := app.MemoryMB << 20
		var queues []solver.Queue
		var total int64
		for _, p := range classes {
			total += p.Requests
		}
		for class, p := range classes {
			queues = append(queues, solver.Queue{
				ID:        fmt.Sprintf("class%d", class),
				Curve:     p.ByteCurve(),
				Frequency: float64(p.Requests) / float64(total),
			})
		}
		sort.Slice(queues, func(i, j int) bool { return queues[i].ID < queues[j].ID })
		res, err := solver.Solve(queues, budget, opts)
		if err != nil {
			return nil, fmt.Errorf("sim: solver failed for app %d: %v", app.ID, err)
		}
		alloc := make(map[int]int64, len(classes))
		for class := range classes {
			alloc[class] = res.Allocations[fmt.Sprintf("class%d", class)]
		}
		out[app.ID] = alloc
	}
	return out, nil
}

// AppCurve builds an application-level hit-rate curve (hit rate as a
// function of the application's total memory in bytes) by running the
// within-app solver at each sampled budget. This is the two-level Dynacache
// construction used for cross-application optimization (Table 3).
func AppCurve(classes map[int]*ClassProfile, budgets []int64, opts solver.Options) (*stackdist.Curve, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("sim: no class profiles")
	}
	var queues []solver.Queue
	var total int64
	for _, p := range classes {
		total += p.Requests
	}
	for class, p := range classes {
		queues = append(queues, solver.Queue{
			ID:        fmt.Sprintf("class%d", class),
			Curve:     p.ByteCurve(),
			Frequency: float64(p.Requests) / float64(total),
		})
	}
	sort.Slice(queues, func(i, j int) bool { return queues[i].ID < queues[j].ID })
	sizes := make([]int64, 0, len(budgets)+1)
	rates := make([]float64, 0, len(budgets)+1)
	sizes = append(sizes, 0)
	rates = append(rates, 0)
	sorted := append([]int64(nil), budgets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, b := range sorted {
		if b <= 0 {
			continue
		}
		res, err := solver.Solve(queues, b, opts)
		if err != nil {
			return nil, err
		}
		sizes = append(sizes, b)
		rates = append(rates, res.PredictedOverall)
	}
	return stackdist.NewCurve(sizes, rates)
}

// CrossAppAllocations runs the solver across applications sharing a server:
// each application is one queue whose curve is its AppCurve, weighted by its
// share of requests, and the budget is the sum of the apps' reservations.
// It returns per-app byte budgets (Table 3).
func CrossAppAllocations(profiles map[int]map[int]*ClassProfile, apps []trace.AppSpec, opts solver.Options) (map[int]int64, error) {
	var totalBudget int64
	var queues []solver.Queue
	for _, app := range apps {
		budget := app.MemoryMB << 20
		totalBudget += budget
		classes := profiles[app.ID]
		if len(classes) == 0 {
			continue
		}
		// Sample the app curve at a spread of budgets around its own
		// reservation so the cross-app solver can move memory both ways.
		budgets := []int64{
			budget / 8, budget / 4, budget / 2, budget,
			budget * 3 / 2, budget * 2, budget * 3, budget * 4,
		}
		curve, err := AppCurve(classes, budgets, opts)
		if err != nil {
			return nil, fmt.Errorf("sim: app curve for app %d: %v", app.ID, err)
		}
		var reqs int64
		for _, p := range classes {
			reqs += p.Requests
		}
		queues = append(queues, solver.Queue{
			ID:        fmt.Sprintf("app%d", app.ID),
			Curve:     curve,
			Frequency: float64(reqs),
		})
	}
	if len(queues) == 0 {
		return nil, fmt.Errorf("sim: no applications with profiles")
	}
	sort.Slice(queues, func(i, j int) bool { return queues[i].ID < queues[j].ID })
	res, err := solver.Solve(queues, totalBudget, opts)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int64, len(apps))
	for _, app := range apps {
		if alloc, ok := res.Allocations[fmt.Sprintf("app%d", app.ID)]; ok {
			out[app.ID] = alloc
		}
	}
	return out, nil
}
