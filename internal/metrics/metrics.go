// Package metrics provides the small set of measurement primitives the
// server, simulator and benchmarks share: hit/miss counters, windowed hit
// rates (Figure 9 plots hit rate over time), log-bucketed latency histograms
// (Table 6) and throughput meters (Table 7).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HitCounter counts hits and misses. It is safe for concurrent use.
type HitCounter struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// Hit records a hit.
func (c *HitCounter) Hit() { c.hits.Add(1) }

// Miss records a miss.
func (c *HitCounter) Miss() { c.misses.Add(1) }

// AddHits records n hits at once (a pipelined batch's worth).
func (c *HitCounter) AddHits(n int64) { c.hits.Add(n) }

// AddMisses records n misses at once.
func (c *HitCounter) AddMisses(n int64) { c.misses.Add(n) }

// Record records an access with the given outcome.
func (c *HitCounter) Record(hit bool) {
	if hit {
		c.Hit()
	} else {
		c.Miss()
	}
}

// Hits returns the number of hits recorded.
func (c *HitCounter) Hits() int64 { return c.hits.Load() }

// Misses returns the number of misses recorded.
func (c *HitCounter) Misses() int64 { return c.misses.Load() }

// Total returns the number of accesses recorded.
func (c *HitCounter) Total() int64 { return c.hits.Load() + c.misses.Load() }

// HitRate returns hits/total, or 0 when nothing was recorded.
func (c *HitCounter) HitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// WindowedHitRate tracks the hit rate over consecutive fixed-size windows of
// requests, producing the time series used for convergence plots (Figure 9).
// It is not safe for concurrent use.
type WindowedHitRate struct {
	window  int64
	hits    int64
	total   int64
	samples []WindowSample
}

// WindowSample is one completed window.
type WindowSample struct {
	// EndRequest is the cumulative request count at the end of the window.
	EndRequest int64
	// HitRate is the hit rate within the window.
	HitRate float64
}

// NewWindowedHitRate returns a tracker with the given window size in
// requests (minimum 1).
func NewWindowedHitRate(window int64) *WindowedHitRate {
	if window < 1 {
		window = 1
	}
	return &WindowedHitRate{window: window}
}

// Record adds one access.
func (w *WindowedHitRate) Record(hit bool) {
	w.total++
	if hit {
		w.hits++
	}
	if w.total%w.window == 0 {
		w.samples = append(w.samples, WindowSample{
			EndRequest: w.total,
			HitRate:    float64(w.hits) / float64(w.window),
		})
		w.hits = 0
	}
}

// Samples returns the completed windows.
func (w *WindowedHitRate) Samples() []WindowSample { return w.samples }

// LatencyHistogram is a log-bucketed latency histogram with fixed bounds
// from 1ns to ~17s. It is safe for concurrent use.
type LatencyHistogram struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Record adds one latency observation.
func (h *LatencyHistogram) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	b := int(math.Log2(float64(ns)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Mean returns the mean latency.
func (h *LatencyHistogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Quantile returns an approximate latency quantile (0 <= q <= 1) using the
// bucket upper bounds.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	target := int64(q * float64(c))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return time.Duration(math.Exp2(float64(i + 1)))
		}
	}
	return time.Duration(math.Exp2(float64(len(h.buckets))))
}

// String summarizes the histogram.
func (h *LatencyHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
}

// Throughput measures operations per second over an interval. It is safe for
// concurrent use.
type Throughput struct {
	ops   atomic.Int64
	mu    sync.Mutex
	start time.Time
}

// NewThroughput returns a meter started now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add records n completed operations.
func (t *Throughput) Add(n int64) { t.ops.Add(n) }

// Ops returns the number of operations recorded.
func (t *Throughput) Ops() int64 { return t.ops.Load() }

// Rate returns operations per second since the meter was created or last
// reset.
func (t *Throughput) Rate() float64 {
	t.mu.Lock()
	elapsed := time.Since(t.start).Seconds()
	t.mu.Unlock()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.ops.Load()) / elapsed
}

// Reset zeroes the meter and restarts the clock.
func (t *Throughput) Reset() {
	t.mu.Lock()
	t.start = time.Now()
	t.mu.Unlock()
	t.ops.Store(0)
}

// Summary aggregates per-key hit statistics into sorted rows, a helper for
// the experiment harness's table output.
type Summary struct {
	mu   sync.Mutex
	rows map[string]*HitCounter
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{rows: make(map[string]*HitCounter)}
}

// Counter returns (creating if needed) the counter for the given row label.
func (s *Summary) Counter(label string) *HitCounter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.rows[label]
	if !ok {
		c = &HitCounter{}
		s.rows[label] = c
	}
	return c
}

// Labels returns the row labels in sorted order.
func (s *Summary) Labels() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	labels := make([]string, 0, len(s.rows))
	for l := range s.rows {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}
