GO ?= go

.PHONY: build test race vet fmt bench bins conformance alloccheck fuzz replay verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

conformance:
	$(GO) test -count=1 -run TestServerProtocolConformance -v ./internal/server/

# alloccheck runs the testing.AllocsPerRun gates that pin the hot-path
# allocation floors (GET hit = 0 through protocol+server+store with the value
# copied out of its arena chunk into the session buffer; GET miss = 1; SET,
# cross-class re-set and append/prepend = 0 — value chunks recycled through
# the slab arena, item records pooled per shard; set+delete churn <= 1;
# streaming client pipelined GET <= 1 amortized over a real socket). An
# accidental allocation on the mutation path fails the build, not a future
# benchmark run.
alloccheck:
	$(GO) test -count=1 -run 'TestAllocGate' -v ./internal/server/ ./internal/store/ ./internal/client/

# fuzz gives each protocol fuzz target a short budget; CI runs the seed
# corpus via plain `go test`.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParser$$ -fuzztime=20s ./internal/protocol/
	$(GO) test -run=NONE -fuzz=FuzzParserPipelineSync -fuzztime=20s ./internal/protocol/

bench:
	$(GO) test -run=NONE -bench=BenchmarkStoreGetSet -benchmem ./internal/store/
	$(GO) test -run=NONE -bench=BenchmarkStoreWriteHeavy -benchmem ./internal/store/
	$(GO) test -run=NONE -bench=BenchmarkServerPipelined -benchmem ./internal/server/

bins:
	$(GO) build -o bin/cliffhangerd ./cmd/cliffhangerd
	$(GO) build -o bin/cliffbench ./cmd/cliffbench

# replay is the trace-replay smoke: boot cliffhangerd with the Memcachier
# tenant layout and drive it with the synthetic Memcachier trace for a couple
# of seconds (CI runs this after the unit suites).
replay: bins
	@set -e; \
	addr=127.0.0.1:13219; \
	tenants=$$(./bin/cliffbench -trace memcachier -print-tenants); \
	./bin/cliffhangerd -addr $$addr -tenants $$tenants & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	sleep 1; \
	./bin/cliffbench -addr $$addr -trace memcachier -duration 2s -pipeline 8

# verify cross-checks wire-replay hit rates against internal/sim for the
# same seeded Memcachier trace (also covered by the Go test
# TestCrossCheckMemcachierSimVsWire).
verify: bins
	./bin/cliffbench -trace memcachier -verify -requests 100000 -scale 0.25

clean:
	rm -rf bin
