GO ?= go

.PHONY: build test race vet fmt bench bins conformance alloccheck fuzz clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

conformance:
	$(GO) test -count=1 -run TestServerProtocolConformance -v ./internal/server/

# alloccheck runs the testing.AllocsPerRun gates that pin the hot-path
# allocation floors (GET hit = 0 through protocol+server+store; GET miss = 1;
# SET = value copy + item record). An accidental allocation fails the build,
# not a future benchmark run.
alloccheck:
	$(GO) test -count=1 -run 'TestAllocGate' -v ./internal/server/ ./internal/store/

# fuzz gives each protocol fuzz target a short budget; CI runs the seed
# corpus via plain `go test`.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParser$$ -fuzztime=20s ./internal/protocol/
	$(GO) test -run=NONE -fuzz=FuzzParserPipelineSync -fuzztime=20s ./internal/protocol/

bench:
	$(GO) test -run=NONE -bench=BenchmarkStoreGetSet -benchmem ./internal/store/
	$(GO) test -run=NONE -bench=BenchmarkServerPipelined -benchmem ./internal/server/

bins:
	$(GO) build -o bin/cliffhangerd ./cmd/cliffhangerd
	$(GO) build -o bin/cliffbench ./cmd/cliffbench

clean:
	rm -rf bin
