GO ?= go

.PHONY: build test race race4 vet fmt bench bins conformance alloccheck fuzz replay churn verify arbiter chaos drain connscale clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race4 exercises the epoch-reclamation races (pin vs retire vs reclaim) with
# real parallelism; CI runs this as its own lane.
race4:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/store/...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

conformance:
	$(GO) test -count=1 -run TestServerProtocolConformance -v ./internal/server/

# alloccheck runs the testing.AllocsPerRun gates that pin the hot-path
# allocation floors (GET hit = 0 through protocol+server+store with the value
# streamed zero-copy from an epoch-pinned arena view; GET miss = 0 — the
# lookup event's key rides a pooled per-shard buffer; SET, cross-class re-set
# and append/prepend = 0 — value chunks recycled through the slab arena, item
# records pooled per shard; set+delete churn <= 1; streaming client pipelined
# GET <= 1 amortized over a real socket). An accidental allocation on the
# mutation path fails the build, not a future benchmark run.
alloccheck:
	$(GO) test -count=1 -run 'TestAllocGate' -v ./internal/server/ ./internal/store/ ./internal/client/

# fuzz gives each protocol fuzz target a short budget; CI runs the seed
# corpus via plain `go test`.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParser$$ -fuzztime=20s ./internal/protocol/
	$(GO) test -run=NONE -fuzz=FuzzParserPipelineSync -fuzztime=20s ./internal/protocol/

bench:
	$(GO) test -run=NONE -bench=BenchmarkStoreGetSet -benchmem ./internal/store/
	$(GO) test -run=NONE -bench=BenchmarkStoreReadMostly -benchmem ./internal/store/
	$(GO) test -run=NONE -bench=BenchmarkStoreWriteHeavy -benchmem ./internal/store/
	$(GO) test -run=NONE -bench=BenchmarkServerPipelined -benchmem ./internal/server/

bins:
	$(GO) build -o bin/cliffhangerd ./cmd/cliffhangerd
	$(GO) build -o bin/cliffbench ./cmd/cliffbench

# replay is the trace-replay smoke: boot cliffhangerd with the Memcachier
# tenant layout and drive it with the synthetic Memcachier trace for a couple
# of seconds (CI runs this after the unit suites).
replay: bins
	@set -e; \
	addr=127.0.0.1:13219; \
	tenants=$$(./bin/cliffbench -trace memcachier -print-tenants); \
	./bin/cliffhangerd -addr $$addr -tenants $$tenants & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	sleep 1; \
	./bin/cliffbench -addr $$addr -trace memcachier -duration 2s -pipeline 8

# churn is the tenant-lifecycle smoke: boot cliffhangerd, then run the
# cliffbench churn scenario — tenant_create mid-run, a live 50% shrink of the
# loaded tenant, restore, tenant_delete — reporting per-phase hit rates. Any
# failed request or dropped connection against the primary tenant fails the
# run.
churn: bins
	@set -e; \
	addr=127.0.0.1:13221; \
	./bin/cliffhangerd -addr $$addr -tenants default:64 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	sleep 1; \
	./bin/cliffbench -addr $$addr -churn -duration 8s -conns 4 -keys 60000 -value 900 -tenant-mb 64 -churn-mb 32

# verify cross-checks wire-replay hit rates against internal/sim for the
# same seeded Memcachier trace (also covered by the Go test
# TestCrossCheckMemcachierSimVsWire).
verify: bins
	./bin/cliffbench -trace memcachier -verify -requests 100000 -scale 0.25

# arbiter is the memshare smoke: the default/cliffhanger/memshare
# head-to-head on the Memcachier trace with every app naively granted an
# equal partition. The gate fails unless memshare's wire aggregate beats the
# cliffhanger static split, every mode's sim-vs-wire agreement and
# conservation audit holding along the way; the store-level convergence and
# thrash proofs run under the race detector first.
arbiter: bins
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestArbiter|TestPlanArbiterMove' -v ./internal/store/
	./bin/cliffbench -trace memcachier -scale 0.25 -hitrate-json BENCH_hitrate.json -hitrate-gate

# chaos runs the fault-injection suite under the race detector with real
# parallelism: the connection governor, graceful drain and chaos proxy are
# driven through resets mid-payload, slow-loris dribbles, half-closed
# sockets, accept storms and panicking handlers, asserting no panics, no
# goroutine leaks, exact arena conservation and zero failed requests for the
# healthy cohort.
chaos:
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestChaos' ./internal/server/
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/chaos/ ./internal/client/

# drain is the graceful-shutdown smoke: SIGTERM a live cliffhangerd while
# cliffbench hammers it through the chaos proxy. The daemon must exit 0
# (clean drain within -drain-timeout, every accepted in-flight request
# answered) and cliffbench must retire its workers gracefully.
drain: bins
	@set -e; \
	addr=127.0.0.1:13223; \
	./bin/cliffhangerd -addr $$addr -tenants default:64 -drain-timeout 10s & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 1; \
	./bin/cliffbench -addr $$addr -duration 30s -conns 4 -keys 20000 \
		-chaos 'latency=200us,chunk=64,reset-prob=0.00002' -tolerate-faults & bench=$$!; \
	sleep 3; \
	kill -TERM $$pid; \
	if wait $$pid; then echo "drain: daemon exited cleanly"; else \
		echo "drain: daemon failed to drain cleanly"; exit 1; fi; \
	wait $$bench || true

# connscale is the connection-scale smoke: hold CONNS mostly-idle
# connections against the classic goroutine-per-connection front end and
# then against the event-driven parked front end (-workers), a hot cohort
# measuring p50/p99 all the while, and record both halves in
# BENCH_conns.json. The gate on the second run requires zero failed
# requests and >= 8x lower resident bytes per idle connection in parked
# mode — the number the epoll front end exists for.
CONNS ?= 10000
CONN_RATE ?= 2000
connscale: bins
	@set -e; \
	addr=127.0.0.1:13225; \
	./bin/cliffhangerd -addr $$addr -tenants default:64 -max-conns 0 -idle-timeout 10m & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 1; \
	./bin/cliffbench -addr $$addr -conns $(CONNS) -conn-rate $(CONN_RATE) -duration 3s -conns-json BENCH_conns.json; \
	kill $$pid; wait $$pid || true; \
	addr=127.0.0.1:13226; \
	./bin/cliffhangerd -addr $$addr -tenants default:64 -max-conns 0 -idle-timeout 10m -workers 16 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 1; \
	./bin/cliffbench -addr $$addr -conns $(CONNS) -conn-rate $(CONN_RATE) -duration 3s -conns-json BENCH_conns.json -conns-gate

clean:
	rm -rf bin
