GO ?= go

.PHONY: build test race vet fmt bench bins conformance clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

conformance:
	$(GO) test -count=1 -run TestServerProtocolConformance -v ./internal/server/

bench:
	$(GO) test -run=NONE -bench=BenchmarkStoreGetSet -benchmem ./internal/store/
	$(GO) test -run=NONE -bench=BenchmarkServerPipelined ./internal/server/

bins:
	$(GO) build -o bin/cliffhangerd ./cmd/cliffhangerd
	$(GO) build -o bin/cliffbench ./cmd/cliffbench

clean:
	rm -rf bin
