// churn.go implements the -churn scenario: the runtime tenant lifecycle
// exercised under live load. Four equal phases run over -duration:
//
//	steady   baseline zipf load against the primary tenant
//	create   tenant_create "churn" — a churner starts filling the new tenant
//	shrink   tenant_resize shrinks the primary tenant to 50%, live
//	recover  tenant_resize restores the primary; tenant_delete "churn"
//
// Per-phase hit rates are reported at the end: the shrink phase should show
// a graceful degradation (evictions landing on the zipf tail) and recover
// should climb back toward the steady baseline. Any dropped connection or
// failed request against the primary tenant is fatal — the resize path must
// stay invisible to traffic. The churner expects its tenant to be deleted
// out from under it mid-run, so its errors are tolerated by design.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cliffhanger/internal/client"
	"cliffhanger/internal/protocol"
	"cliffhanger/internal/workload"
)

// churnTenant is the tenant created and deleted mid-run.
const churnTenant = "churn"

var churnPhases = [4]string{"steady", "create", "shrink", "recover"}

type churnConfig struct {
	addr     string
	conns    int
	duration time.Duration
	keys     int
	zipfS    float64
	value    int
	timeout  time.Duration
	seed     int64
	tenant   string
	tenantMB int64
	churnMB  int64
}

func runChurn(logger *log.Logger, cfg churnConfig) {
	if cfg.tenant == "" {
		cfg.tenant = "default"
	}
	if cfg.keys <= 0 {
		cfg.keys = workload.DefaultZipfKeys
	}
	// math/rand's bounded Zipf needs s > 1; clamp the near-uniform range.
	s := cfg.zipfS
	if s <= 1 {
		s = 1.01
	}
	payload := make([]byte, cfg.value)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	// Warm the primary tenant so the steady phase measures a settled cache.
	logger.Printf("warming %d keys into %s", cfg.keys, cfg.tenant)
	wc := dial(logger, cfg.addr, cfg.tenant, cfg.timeout)
	keyspace := make([]string, cfg.keys)
	for i := range keyspace {
		keyspace[i] = workload.ZipfKey(i)
	}
	const batch = 512
	for lo := 0; lo < len(keyspace); lo += batch {
		hi := min(lo+batch, len(keyspace))
		if err := wc.PipelineSetOptions(keyspace[lo:hi], payload, 0, 0); err != nil {
			logger.Fatalf("churn warmup: %v", err)
		}
	}
	wc.Close()

	type counters struct{ hits, misses atomic.Int64 }
	var (
		phase    atomic.Int32
		perPhase [4]counters
		wg       sync.WaitGroup
	)
	stop := make(chan struct{})

	// Primary-tenant workers: closed-loop GET with read-through fill. Any
	// error here fails the run — live resize must not drop a request.
	for i := 0; i < cfg.conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := dial(logger, cfg.addr, cfg.tenant, cfg.timeout)
			defer c.Close()
			rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
			z := rand.NewZipf(rng, s, 1, uint64(cfg.keys-1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := workload.ZipfKey(int(z.Uint64()))
				p := phase.Load()
				_, found, err := c.Get(key)
				if err != nil {
					logger.Fatalf("churn: primary get %s: %v", key, err)
				}
				if found {
					perPhase[p].hits.Add(1)
					continue
				}
				perPhase[p].misses.Add(1)
				if err := c.Set(key, payload); err != nil && !errors.Is(err, protocol.ErrRemote) {
					logger.Fatalf("churn: primary fill %s: %v", key, err)
				}
			}
		}(i)
	}

	// Churner: starts once the churn tenant exists and hammers it with a
	// set/get mix. The recover phase deletes the tenant while this
	// connection is mid-traffic, so errors past that point are the expected
	// outcome, not failures.
	churnOn := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-churnOn:
		case <-stop:
			return
		}
		c, err := client.Dial(cfg.addr, cfg.timeout)
		if err != nil {
			logger.Printf("churner dial: %v", err)
			return
		}
		defer c.Close()
		if err := c.SelectTenant(churnTenant); err != nil {
			logger.Printf("churner tenant: %v", err)
			return
		}
		rng := rand.New(rand.NewSource(cfg.seed + 7777))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("churnkey%d", rng.Intn(cfg.keys))
			if i%4 == 0 {
				if err := c.Set(key, payload); err != nil {
					return
				}
			} else if _, _, err := c.Get(key); err != nil {
				return
			}
		}
	}()

	// Controller: one connection drives the lifecycle at phase boundaries.
	ctl := dial(logger, cfg.addr, "", cfg.timeout)
	defer ctl.Close()
	phaseDur := cfg.duration / 4
	start := time.Now()

	logger.Printf("phase steady (%v): baseline against %s", phaseDur, cfg.tenant)
	time.Sleep(phaseDur)

	phase.Store(1)
	if err := ctl.TenantCreate(churnTenant, uint64(cfg.churnMB)); err != nil {
		logger.Fatalf("churn: tenant_create: %v", err)
	}
	close(churnOn)
	logger.Printf("phase create (%v): %s created at %d MiB, churner running", phaseDur, churnTenant, cfg.churnMB)
	time.Sleep(phaseDur)

	phase.Store(2)
	if err := ctl.TenantResize(cfg.tenant, uint64(cfg.tenantMB/2)); err != nil {
		logger.Fatalf("churn: tenant_resize shrink: %v", err)
	}
	logger.Printf("phase shrink (%v): %s resized %d -> %d MiB under load", phaseDur, cfg.tenant, cfg.tenantMB, cfg.tenantMB/2)
	time.Sleep(phaseDur)

	phase.Store(3)
	if err := ctl.TenantResize(cfg.tenant, uint64(cfg.tenantMB)); err != nil {
		logger.Fatalf("churn: tenant_resize restore: %v", err)
	}
	if err := ctl.TenantDelete(churnTenant); err != nil {
		logger.Fatalf("churn: tenant_delete: %v", err)
	}
	logger.Printf("phase recover (%v): %s restored to %d MiB, %s deleted", phaseDur, cfg.tenant, cfg.tenantMB, churnTenant)
	time.Sleep(phaseDur)

	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var total int64
	for i, name := range churnPhases {
		h, m := perPhase[i].hits.Load(), perPhase[i].misses.Load()
		hr := 0.0
		if h+m > 0 {
			hr = float64(h) / float64(h+m)
		}
		total += h + m
		fmt.Printf("phase %-8s gets=%-9d hit_rate=%.4f\n", name, h+m, hr)
	}
	fmt.Printf("churn: ops=%d ops/s=%.0f phases=%d conns=%d (no request failed against %s)\n",
		total, float64(total)/elapsed.Seconds(), len(churnPhases), cfg.conns, cfg.tenant)
}
