package main

// The connection-scale scenario (-conn-rate): instead of driving throughput
// through a handful of connections, it holds open -conns mostly-idle
// connections — ramped up at -conn-rate dials per second, each proving it
// took the full request path once before going quiet — while a small hot
// cohort keeps doing closed-loop GETs. It reports the hot cohort's p50/p99
// next to the server's resident bytes per connection (mem_inuse_bytes /
// curr_connections from the stats verb), which is the number the parked
// front end exists to shrink: idle connections should cost an epoll
// registration, not a goroutine and two 64 KiB buffers.
//
// Runs append to -conns-json keyed by front-end mode (classic/parked, read
// from the server's worker_count), so driving the same scenario at a
// -workers 0 daemon and a -workers N daemon builds one comparable record;
// once both modes are present the file carries their idle-bytes-per-conn
// ratio and -conns-gate enforces the >= 8x reduction.

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cliffhanger/internal/client"
	"cliffhanger/internal/metrics"
)

type connsConfig struct {
	addr     string
	conns    int
	rate     float64
	hot      int
	keys     int
	value    int
	duration time.Duration
	timeout  time.Duration
	seed     int64
	jsonPath string
	gate     bool
}

// connsRun is one mode's measured record inside BENCH_conns.json.
type connsRun struct {
	Mode              string  `json:"mode"`
	Workers           int64   `json:"workers"`
	Connections       int64   `json:"connections"`
	ParkedConnections int64   `json:"parked_connections"`
	ActiveSessions    int64   `json:"active_sessions"`
	BufferPoolBytes   int64   `json:"buffer_pool_bytes"`
	MemInuseBytes     int64   `json:"mem_inuse_bytes"`
	BytesPerConn      int64   `json:"bytes_per_conn"`
	HotConns          int     `json:"hot_conns"`
	HotOps            int64   `json:"hot_ops"`
	HotOpsPerSec      float64 `json:"hot_ops_per_sec"`
	HotP50Us          int64   `json:"hot_p50_us"`
	HotP99Us          int64   `json:"hot_p99_us"`
	FailedRequests    int64   `json:"failed_requests"`
	RampSeconds       float64 `json:"ramp_seconds"`
}

type connsReport struct {
	Benchmark        string               `json:"benchmark"`
	Date             string               `json:"date"`
	Runs             map[string]*connsRun `json:"runs"`
	IdleBytesRatio   float64              `json:"idle_bytes_per_conn_ratio,omitempty"`
	RatioObservation string               `json:"observation,omitempty"`
}

func runConns(logger *log.Logger, cfg connsConfig) {
	if cfg.keys <= 0 {
		cfg.keys = 4096
	}
	if cfg.hot <= 0 {
		cfg.hot = 32
	}
	if cfg.rate <= 0 {
		logger.Fatal("-conn-rate must be > 0")
	}

	ctl := dial(logger, cfg.addr, "", cfg.timeout)
	defer ctl.Close()
	before, err := ctl.StatsConns()
	if err != nil {
		logger.Fatalf("stats: %v", err)
	}
	mode := "classic"
	if before.WorkerCount > 0 {
		mode = "parked"
	}
	logger.Printf("connscale: %s front end (%d workers), ramping %d conns at %.0f/s",
		mode, before.WorkerCount, cfg.conns, cfg.rate)

	// Preload the hot cohort's keyspace once so every measured GET is a hit.
	payload := make([]byte, cfg.value)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	hotKeys := make([]string, cfg.keys)
	for i := range hotKeys {
		hotKeys[i] = fmt.Sprintf("cs-%d", i)
	}
	if err := ctl.PipelineSet(hotKeys, payload); err != nil {
		logger.Fatalf("preload: %v", err)
	}

	var failed atomic.Int64

	// Ramp: each idle connection proves it traversed the full request path
	// once (a version round trip through admission and a worker), then goes
	// silent, which is what hands it to the poller in parked mode. The
	// absolute schedule (conn i dials at start + i/rate) keeps the offered
	// ramp honest even when individual round trips are slow; a small dialer
	// pool absorbs the latency.
	idle := make([]net.Conn, cfg.conns)
	rampStart := time.Now()
	dialers := 16
	if dialers > cfg.conns {
		dialers = cfg.conns
	}
	var wg sync.WaitGroup
	for d := 0; d < dialers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := d; i < cfg.conns; i += dialers {
				due := rampStart.Add(time.Duration(float64(i) / cfg.rate * float64(time.Second)))
				if wait := time.Until(due); wait > 0 {
					time.Sleep(wait)
				}
				conn, err := net.DialTimeout("tcp", cfg.addr, cfg.timeout)
				if err != nil {
					failed.Add(1)
					continue
				}
				conn.SetDeadline(time.Now().Add(cfg.timeout))
				if _, err := conn.Write([]byte("version\r\n")); err != nil {
					failed.Add(1)
					conn.Close()
					continue
				}
				if _, err := conn.Read(buf); err != nil {
					failed.Add(1)
					conn.Close()
					continue
				}
				conn.SetDeadline(time.Time{})
				idle[i] = conn
			}
		}(d)
	}
	wg.Wait()
	rampTook := time.Since(rampStart)
	defer func() {
		for _, c := range idle {
			if c != nil {
				c.Close()
			}
		}
	}()
	logger.Printf("connscale: ramp done in %v (%d failed)", rampTook.Round(time.Millisecond), failed.Load())

	// Steady state: the hot cohort hammers closed-loop GETs while the idle
	// mass sits parked; their latency shows whether the event-driven front
	// end keeps busy connections on the fast path.
	var hist metrics.LatencyHistogram
	var hotOps atomic.Int64
	stop := make(chan struct{})
	for h := 0; h < cfg.hot; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			c, err := client.Dial(cfg.addr, cfg.timeout)
			if err != nil {
				failed.Add(1)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(cfg.seed + int64(h)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Misses are demand-filled like the main load test: a
				// cliffhanger-mode tenant starts with a small real cache and
				// grows it through bookkeeping, so early GETs legitimately
				// miss. Only transport errors count against the gate.
				key := hotKeys[rng.Intn(len(hotKeys))]
				t0 := time.Now()
				_, ok, err := c.Get(key)
				if err != nil {
					if failed.Add(1) <= 3 {
						logger.Printf("connscale: hot get %s: %v", key, err)
					}
					return
				}
				hist.Record(time.Since(t0))
				hotOps.Add(1)
				if !ok {
					if err := c.Set(key, payload); err != nil {
						if failed.Add(1) <= 3 {
							logger.Printf("connscale: hot fill %s: %v", key, err)
						}
						return
					}
					hotOps.Add(1)
				}
			}
		}(h)
	}
	measured := cfg.duration
	time.Sleep(measured)

	// Read the server's view while everything is still connected: the idle
	// mass parked, the hot cohort mid-flight.
	after, err := ctl.StatsConns()
	if err != nil {
		logger.Fatalf("stats: %v", err)
	}
	close(stop)
	wg.Wait()

	run := &connsRun{
		Mode:              mode,
		Workers:           after.WorkerCount,
		Connections:       after.CurrConnections,
		ParkedConnections: after.ParkedConnections,
		ActiveSessions:    after.ActiveSessions,
		BufferPoolBytes:   after.BufferPoolBytes,
		MemInuseBytes:     after.MemInuseBytes,
		HotConns:          cfg.hot,
		HotOps:            hotOps.Load(),
		HotOpsPerSec:      float64(hotOps.Load()) / measured.Seconds(),
		HotP50Us:          hist.Quantile(0.50).Microseconds(),
		HotP99Us:          hist.Quantile(0.99).Microseconds(),
		FailedRequests:    failed.Load(),
		RampSeconds:       rampTook.Seconds(),
	}
	if run.Connections > 0 {
		run.BytesPerConn = run.MemInuseBytes / run.Connections
	}
	logger.Printf("connscale: %d conns (%d parked), %d B/conn, hot p50=%dus p99=%dus (%.0f ops/s), %d failed",
		run.Connections, run.ParkedConnections, run.BytesPerConn,
		run.HotP50Us, run.HotP99Us, run.HotOpsPerSec, run.FailedRequests)

	report := mergeConnsReport(logger, cfg.jsonPath, run)

	if cfg.gate {
		if run.FailedRequests > 0 {
			logger.Fatalf("connscale gate: %d failed requests, want 0", run.FailedRequests)
		}
		classic, parked := report.Runs["classic"], report.Runs["parked"]
		if classic == nil || parked == nil {
			logger.Fatal("connscale gate: need both a classic and a parked run in the report")
		}
		if report.IdleBytesRatio < 8 {
			logger.Fatalf("connscale gate: idle bytes/conn ratio %.1fx (classic %d / parked %d), want >= 8x",
				report.IdleBytesRatio, classic.BytesPerConn, parked.BytesPerConn)
		}
		logger.Printf("connscale gate: PASS (%.1fx bytes/conn reduction)", report.IdleBytesRatio)
	}
}

// mergeConnsReport folds this run into the JSON report, keyed by mode, and
// recomputes the classic/parked ratio when both halves are present.
func mergeConnsReport(logger *log.Logger, path string, run *connsRun) *connsReport {
	report := &connsReport{Benchmark: "connscale", Runs: map[string]*connsRun{}}
	if path == "" {
		report.Runs[run.Mode] = run
		finishConnsReport(report)
		return report
	}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, report); err != nil {
			logger.Printf("connscale: ignoring unparsable %s: %v", path, err)
			report = &connsReport{Benchmark: "connscale", Runs: map[string]*connsRun{}}
		}
		if report.Runs == nil {
			report.Runs = map[string]*connsRun{}
		}
	}
	report.Date = time.Now().UTC().Format(time.RFC3339)
	report.Runs[run.Mode] = run
	finishConnsReport(report)
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		logger.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("connscale: wrote %s", path)
	return report
}

func finishConnsReport(report *connsReport) {
	classic, parked := report.Runs["classic"], report.Runs["parked"]
	if classic == nil || parked == nil || parked.BytesPerConn <= 0 {
		return
	}
	report.IdleBytesRatio = float64(classic.BytesPerConn) / float64(parked.BytesPerConn)
	report.RatioObservation = fmt.Sprintf(
		"Idle connections cost %d B resident under goroutine-per-connection and %d B under the "+
			"event-driven parked front end (%.1fx): parking releases the goroutine stack and both "+
			"64 KiB session buffers, leaving an epoll registration and a ~200 B conn record.",
		classic.BytesPerConn, parked.BytesPerConn, report.IdleBytesRatio)
}
