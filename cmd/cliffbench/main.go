// Command cliffbench is a closed-loop load generator for cliffhangerd: each
// connection issues one request (or one pipelined batch) at a time over the
// memcached text protocol, with key popularity drawn from a zipf
// distribution — the skewed-popularity regime where Cliffhanger's queue
// re-sizing matters. GET misses are followed by a SET of the same key,
// modelling the application's read-through fill. -ttl gives every SET an
// expiry so the TTL reaper is exercised, and -mutate mixes in the
// read-modify verbs (touch, append, incr) so the full verb set is
// load-testable.
//
// Example:
//
//	cliffbench -addr 127.0.0.1:11211 -conns 8 -duration 30s -zipf 1.1 \
//	    -ttl 60 -mutate 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cliffhanger/internal/client"
	"cliffhanger/internal/metrics"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "server address")
		conns     = flag.Int("conns", 8, "concurrent connections (closed loop, one request in flight each)")
		duration  = flag.Duration("duration", 10*time.Second, "measurement duration")
		keys      = flag.Int("keys", 100000, "key-space size")
		zipfS     = flag.Float64("zipf", 1.1, "zipf skew parameter (>1; larger = more skewed)")
		valueSize = flag.Int("value", 256, "value size in bytes")
		getRatio  = flag.Float64("get-ratio", 0.9, "fraction of operations that are GETs")
		tenant    = flag.String("tenant", "", "tenant to select (empty = server default)")
		pipeline  = flag.Int("pipeline", 1, "GETs per pipelined batch (1 = plain request/response)")
		warm      = flag.Bool("warm", true, "preload every key before measuring")
		timeout   = flag.Duration("timeout", 5*time.Second, "dial timeout")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		ttl       = flag.Int64("ttl", 0, "exptime in seconds applied to every SET (0 = never expire)")
		mutate    = flag.Float64("mutate", 0, "fraction of operations that are mutation verbs (touch/append/incr)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "cliffbench: ", 0)
	if *zipfS <= 1 {
		logger.Fatal("-zipf must be > 1")
	}
	if *pipeline < 1 {
		*pipeline = 1
	}

	value := make([]byte, *valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	keyspace := make([]string, *keys)
	for i := range keyspace {
		keyspace[i] = fmt.Sprintf("bench-%d", i)
	}

	if *warm {
		logger.Printf("warming %d keys", *keys)
		c := dial(logger, *addr, *tenant, *timeout)
		const batch = 512
		for lo := 0; lo < len(keyspace); lo += batch {
			hi := lo + batch
			if hi > len(keyspace) {
				hi = len(keyspace)
			}
			if err := c.PipelineSetOptions(keyspace[lo:hi], value, 0, *ttl); err != nil {
				logger.Fatalf("warmup: %v", err)
			}
		}
		c.Close()
	}

	var (
		ops, hits, misses, fills, mutations atomic.Int64
		lat                                 metrics.LatencyHistogram
		wg                                  sync.WaitGroup
	)
	deadline := time.Now().Add(*duration)
	logger.Printf("running %d conns for %v (zipf=%.2f, pipeline=%d, get-ratio=%.2f, ttl=%ds, mutate=%.2f)",
		*conns, *duration, *zipfS, *pipeline, *getRatio, *ttl, *mutate)
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			c := dial(logger, *addr, *tenant, *timeout)
			defer c.Close()
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(keyspace)-1))
			batch := make([]string, *pipeline)
			for time.Now().Before(deadline) {
				roll := rng.Float64()
				if roll < *mutate {
					key := keyspace[zipf.Uint64()]
					start := time.Now()
					runMutation(logger, c, rng, key, value, *ttl)
					lat.Record(time.Since(start))
					ops.Add(1)
					mutations.Add(1)
					continue
				}
				if roll >= *getRatio {
					key := keyspace[zipf.Uint64()]
					start := time.Now()
					if err := c.SetWithOptions(key, value, 0, *ttl); err != nil {
						logger.Fatalf("set: %v", err)
					}
					lat.Record(time.Since(start))
					ops.Add(1)
					continue
				}
				for i := range batch {
					batch[i] = keyspace[zipf.Uint64()]
				}
				start := time.Now()
				got, err := c.PipelineGet(batch)
				if err != nil {
					logger.Fatalf("get: %v", err)
				}
				lat.Record(time.Since(start))
				ops.Add(int64(len(batch)))
				for _, k := range batch {
					if _, ok := got[k]; ok {
						hits.Add(1)
						continue
					}
					misses.Add(1)
					// Read-through fill: repopulate the missed key.
					if err := c.SetWithOptions(k, value, 0, *ttl); err != nil {
						logger.Fatalf("fill: %v", err)
					}
					fills.Add(1)
					ops.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	elapsed := *duration
	total := ops.Load()
	h, m := hits.Load(), misses.Load()
	hitRate := 0.0
	if h+m > 0 {
		hitRate = float64(h) / float64(h+m)
	}
	fmt.Printf("ops=%d ops/s=%.0f hit_rate=%.4f fills=%d mutations=%d\n",
		total, float64(total)/elapsed.Seconds(), hitRate, fills.Load(), mutations.Load())
	// Client-side tail latency per round trip (a pipelined batch counts as
	// one round trip), so perf changes report their tail, not just
	// throughput.
	fmt.Printf("latency per round trip: n=%d mean=%v p50=%v p95=%v p99=%v\n",
		lat.Count(), lat.Mean(), lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99))
}

// runMutation issues one mutation verb against key: a TTL refresh (touch), a
// small append, or an increment of a per-key counter sibling. NOT_FOUND
// outcomes are normal under eviction and expiry; an append rejected because
// the value outgrew its slab class is healed by re-setting the key.
func runMutation(logger *log.Logger, c *client.Client, rng *rand.Rand, key string, value []byte, ttl int64) {
	switch rng.Intn(3) {
	case 0:
		if _, err := c.Touch(key, ttl); err != nil {
			logger.Fatalf("touch: %v", err)
		}
	case 1:
		if _, err := c.Append(key, []byte("+")); err != nil {
			// Likely grown past the largest slab class: reset the key.
			if serr := c.SetWithOptions(key, value, 0, ttl); serr != nil {
				logger.Fatalf("append: %v (reset: %v)", err, serr)
			}
		}
	default:
		ctr := key + ".ctr"
		if _, found, err := c.Incr(ctr, 1); err != nil {
			logger.Fatalf("incr: %v", err)
		} else if !found {
			// First touch of this counter: seed it.
			if err := c.SetWithOptions(ctr, []byte("0"), 0, ttl); err != nil {
				logger.Fatalf("incr seed: %v", err)
			}
		}
	}
}

func dial(logger *log.Logger, addr, tenant string, timeout time.Duration) *client.Client {
	c, err := client.Dial(addr, timeout)
	if err != nil {
		logger.Fatalf("dial %s: %v", addr, err)
	}
	if tenant != "" {
		if err := c.SelectTenant(tenant); err != nil {
			logger.Fatalf("tenant %s: %v", tenant, err)
		}
	}
	return c
}
