// Command cliffbench drives cliffhangerd with any workload the repository
// knows, over the memcached text protocol. -trace selects the request
// source: the classic zipf key-popularity load (now supporting any skew
// s > 0, including the 0.9–1.0 range real cache workloads show), the
// synthetic Memcachier 20-application trace (each application mapped onto a
// server tenant), the Facebook-ETC generator, or a recorded trace file.
// GET misses are demand-filled with a SET of the same key, modelling the
// application's read-through fill; -ttl gives every SET an expiry and
// -mutate mixes in the read-modify verbs (touch, append, incr).
//
// By default the load is closed-loop (each connection keeps one request or
// pipelined batch in flight). -rate N switches to open-loop injection: the
// feeder schedules requests at N req/s on a wall clock and latency is
// measured from each batch's scheduled send time, so server-side queueing
// under load shows up in the tail instead of being hidden by coordinated
// omission.
//
// -verify runs the sim-vs-wire cross-check instead of a load test: the same
// seeded trace is replayed through internal/sim and against an in-process
// server over a real socket, and per-application hit rates must match
// within -tolerance. -print-tenants prints the cliffhangerd -tenants value
// matching the chosen trace.
//
// -conn-rate switches to the connection-scale scenario: ramp -conns
// mostly-idle connections at that many dials per second, keep a -hot cohort
// of closed-loop GET clients running, and report their p50/p99 next to the
// server's resident bytes per connection (from the stats verb). Driving the
// same run at a -workers 0 daemon and a -workers N daemon fills both halves
// of the -conns-json report; -conns-gate then enforces the event-driven
// front end's >= 8x idle-memory reduction and zero failed requests.
//
// -chaos <spec> replays the workload through an in-process fault-injecting
// proxy (internal/chaos) between cliffbench and the server: latency, jitter,
// bandwidth caps, partial writes, torn-mid-payload resets, half-closed
// sockets. Pair it with -tolerate-faults, which turns transport failures
// into counted graceful worker stops instead of fatal errors — also the
// right mode when SIGTERMing the daemon under live load to exercise its
// graceful drain.
//
// Examples:
//
//	cliffbench -addr 127.0.0.1:11211 -conns 8 -duration 30s -zipf 0.9
//	cliffbench -addr 127.0.0.1:11211 -conns 10000 -conn-rate 2000 -conns-json BENCH_conns.json
//	cliffbench -trace memcachier -duration 30s -rate 50000
//	cliffbench -trace memcachier -verify
//	cliffbench -duration 10s -chaos 'latency=1ms,chunk=7,reset-prob=0.0002' -tolerate-faults
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cliffhanger/internal/chaos"
	"cliffhanger/internal/client"
	"cliffhanger/internal/metrics"
	"cliffhanger/internal/protocol"
	"cliffhanger/internal/store"
	"cliffhanger/internal/trace"
	"cliffhanger/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "server address")
		traceSpec = flag.String("trace", "zipf", "request source: zipf, facebook, memcachier or file:<path>")
		conns     = flag.Int("conns", 8, "concurrent connections")
		duration  = flag.Duration("duration", 10*time.Second, "measurement duration")
		requests  = flag.Int64("requests", 0, "request budget for the trace source (0 = auto)")
		keys      = flag.Int("keys", 0, "key-space size (0 = source default: 100000 for zipf, 1M for facebook)")
		zipfS     = flag.Float64("zipf", 1.1, "zipf skew parameter, any s > 0 (zipf trace)")
		valueSize = flag.Int("value", 256, "value size in bytes (zipf trace)")
		getRatio  = flag.Float64("get-ratio", 0.9, "fraction of operations that are GETs (zipf trace)")
		scale     = flag.Float64("scale", 1.0, "memory/key-space scale (memcachier trace)")
		tenant    = flag.String("tenant", "", "send everything to this tenant instead of mapping trace apps onto app<N> tenants")
		pipeline  = flag.Int("pipeline", 1, "GETs per pipelined batch (1 = plain request/response)")
		warm      = flag.Bool("warm", true, "preload every key before measuring (zipf trace)")
		timeout   = flag.Duration("timeout", 5*time.Second, "dial timeout")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		ttl       = flag.Int64("ttl", 0, "exptime in seconds applied to every SET (0 = never expire)")
		mutate    = flag.Float64("mutate", 0, "fraction of GETs replaced by mutation verbs (touch/append/incr)")
		rate      = flag.Float64("rate", 0, "open-loop injection rate in req/s (0 = closed loop)")
		verify    = flag.Bool("verify", false, "cross-check wire-replay hit rates against internal/sim and exit")
		tolerance = flag.Float64("tolerance", 0.02, "largest acceptable per-app |wire-sim| hit-rate delta for -verify")
		modeFlag  = flag.String("mode", "cliffhanger", "allocation mode for -verify: default, cliffhanger, static, global-lru, memshare")
		hitrate   = flag.String("hitrate-json", "", "run the default/cliffhanger/memshare head-to-head over the wire, write per-app + aggregate hit rates to this JSON file, and exit")
		hitGate   = flag.Bool("hitrate-gate", false, "with -hitrate-json: exit non-zero unless memshare's wire aggregate beats the cliffhanger static split")
		printTen  = flag.Bool("print-tenants", false, "print the cliffhangerd -tenants value for the chosen trace and exit")
		churn     = flag.Bool("churn", false, "run the tenant-churn lifecycle scenario (create/shrink/recover) and exit")
		tenantMB  = flag.Int64("tenant-mb", 64, "primary tenant reservation in MB; -churn uses it to compute resize targets")
		churnMB   = flag.Int64("churn-mb", 32, "reservation in MB for the tenant -churn creates and deletes")
		connRate  = flag.Float64("conn-rate", 0, "run the connection-scale scenario instead of a load test: ramp -conns mostly-idle connections at this many dials/s (0 disables)")
		hotConns  = flag.Int("hot", 32, "hot-cohort size for -conn-rate: connections doing closed-loop GETs while the rest idle")
		connsJSON = flag.String("conns-json", "", "append the -conn-rate run to this JSON report, keyed by front-end mode (empty = log only)")
		connsGate = flag.Bool("conns-gate", false, "with -conn-rate: exit non-zero unless requests all succeeded and the report shows >= 8x idle bytes/conn reduction")
		chaosSpec = flag.String("chaos", "", "replay through an in-process fault proxy with this spec, e.g. latency=1ms,chunk=7,reset-prob=0.0002 (empty disables)")
		tolerate  = flag.Bool("tolerate-faults", false, "count transport failures as graceful worker stops instead of aborting (for -chaos and drain testing)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "cliffbench: ", 0)
	if *zipfS <= 0 {
		logger.Fatal("-zipf must be > 0")
	}
	if *pipeline < 1 {
		*pipeline = 1
	}

	opts := workload.Options{
		Requests:    *requests,
		Seed:        *seed,
		Keys:        *keys,
		ZipfS:       *zipfS,
		ValueSize:   *valueSize,
		GetFraction: *getRatio,
		Scale:       *scale,
	}

	if *printTen {
		wl := open(logger, *traceSpec, opts)
		if wl.Apps == nil {
			logger.Fatalf("trace %s carries no tenant layout", wl.Name)
		}
		fmt.Println(workload.TenantSpec(wl.Apps))
		return
	}

	if *hitrate != "" {
		if opts.Requests <= 0 {
			// Long enough for the arbiter to converge and amortize its
			// migration transients.
			opts.Requests = 500000
		}
		runHitrate(logger, *traceSpec, opts, *hitrate, *hitGate)
		return
	}

	if *verify {
		if opts.Requests <= 0 {
			opts.Requests = 200000
		}
		runVerify(logger, *traceSpec, opts, *modeFlag, *tolerance)
		return
	}

	if *connRate > 0 {
		runConns(logger, connsConfig{
			addr:     *addr,
			conns:    *conns,
			rate:     *connRate,
			hot:      *hotConns,
			keys:     *keys,
			value:    *valueSize,
			duration: *duration,
			timeout:  *timeout,
			seed:     *seed,
			jsonPath: *connsJSON,
			gate:     *connsGate,
		})
		return
	}

	if *churn {
		runChurn(logger, churnConfig{
			addr:     *addr,
			conns:    *conns,
			duration: *duration,
			keys:     *keys,
			zipfS:    *zipfS,
			value:    *valueSize,
			timeout:  *timeout,
			seed:     *seed,
			tenant:   *tenant,
			tenantMB: *tenantMB,
			churnMB:  *churnMB,
		})
		return
	}

	// With -chaos, workers dial a local fault-injecting proxy in front of the
	// server; warmup still goes direct so the cache starts from a known state.
	dialAddr := *addr
	if *chaosSpec != "" {
		cfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			logger.Fatal(err)
		}
		cfg.Target = *addr
		proxy := chaos.New(cfg)
		if err := proxy.Start(); err != nil {
			logger.Fatalf("chaos proxy: %v", err)
		}
		defer func() {
			proxy.Close()
			logger.Printf("chaos proxy: %d connections, %d injected resets", proxy.Accepted(), proxy.Resets())
		}()
		dialAddr = proxy.Addr()
		logger.Printf("chaos proxy on %s -> %s (%s)", dialAddr, *addr, *chaosSpec)
	}

	wl := open(logger, *traceSpec, opts)
	defer wl.Close()
	// Map multi-app traces onto app<N> server tenants unless the caller
	// pinned a single tenant.
	mapApps := len(wl.Apps) > 1 && *tenant == ""

	// payload backs every stored value; content is irrelevant to the cache.
	payload := make([]byte, protocol.MaxValueLength)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	if *warm && wl.Name == "zipf" {
		nkeys := *keys
		if nkeys <= 0 {
			nkeys = workload.DefaultZipfKeys
		}
		logger.Printf("warming %d keys", nkeys)
		c := dial(logger, *addr, *tenant, *timeout)
		keyspace := make([]string, nkeys)
		for i := range keyspace {
			keyspace[i] = workload.ZipfKey(i)
		}
		// Warm values are sized like the replay's own fills (PadValue:
		// len(key)+len(value) == valueSize), so a warmed key's first re-set
		// charges the same slab class it was warmed into. Runs of keys that
		// share a length share one padded value per pipelined batch.
		const batch = 512
		for lo := 0; lo < len(keyspace); {
			hi := lo
			klen := len(keyspace[lo])
			for hi < len(keyspace) && hi-lo < batch && len(keyspace[hi]) == klen {
				hi++
			}
			v := payload[:max(0, *valueSize-klen)]
			if err := c.PipelineSetOptions(keyspace[lo:hi], v, 0, *ttl); err != nil {
				logger.Fatalf("warmup: %v", err)
			}
			lo = hi
		}
		c.Close()
	}

	var (
		ops, hits, misses, fills, mutations, rejected atomic.Int64
		faults                                        atomic.Int64
		lat                                           metrics.LatencyHistogram
		perApp                                        = metrics.NewSummary()
		wg                                            sync.WaitGroup
	)
	batchSize := max(*pipeline, 16)
	batches := make(chan reqBatch, 4**conns)
	stop := make(chan struct{})
	timer := time.AfterFunc(*duration, func() { close(stop) })
	defer timer.Stop()

	// Feeder: the source is single-threaded, so one goroutine reads it and
	// deals batches to the workers; in open-loop mode each batch carries its
	// scheduled send time.
	go func() {
		defer close(batches)
		var pace *workload.Pacer
		if *rate > 0 {
			pace = workload.NewPacer(time.Now(), *rate)
		}
		for {
			b := reqBatch{reqs: make([]trace.Request, 0, batchSize)}
			for len(b.reqs) < batchSize {
				r, ok := wl.Source.Next()
				if !ok {
					break
				}
				b.reqs = append(b.reqs, r)
			}
			if len(b.reqs) == 0 {
				return
			}
			if pace != nil {
				b.due = pace.Next(len(b.reqs))
			}
			select {
			case batches <- b:
			case <-stop:
				return
			}
		}
	}()

	logger.Printf("running %d conns for %v (trace=%s, pipeline=%d, rate=%.0f, ttl=%ds, mutate=%.2f)",
		*conns, *duration, wl.Name, *pipeline, *rate, *ttl, *mutate)
	start := time.Now()
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Under chaos or drain testing the client rides out transient
			// failures on idempotent verbs; a clean run keeps the historic
			// fail-fast single-dial behavior.
			copts := client.Options{DialTimeout: *timeout}
			if *tolerate || *chaosSpec != "" {
				copts.OpTimeout = 2 * *timeout
				copts.MaxRetries = 3
			}
			w := &worker{
				logger:    logger,
				c:         dialOptions(logger, dialAddr, *tenant, copts),
				rng:       rand.New(rand.NewSource(*seed + int64(id))),
				payload:   payload,
				pipeline:  *pipeline,
				mapApps:   mapApps,
				ttl:       *ttl,
				mutate:    *mutate,
				tolerate:  *tolerate,
				ops:       &ops,
				hits:      &hits,
				misses:    &misses,
				fills:     &fills,
				mutations: &mutations,
				rejected:  &rejected,
				lat:       &lat,
				perApp:    perApp,
			}
			w.onValue = func(i int, _ []byte, _ uint32, _ uint64, _ []byte) { w.hitbuf[i] = true }
			defer w.c.Close()
			for {
				select {
				case <-stop:
					return
				case b, ok := <-batches:
					if !ok {
						return
					}
					if err := w.processBatch(b); err != nil {
						// Transport gave out past the client's retries. Under
						// -tolerate-faults that is an expected outcome of
						// injected chaos or a draining server: count it and
						// retire the worker gracefully.
						if !w.tolerate {
							logger.Fatalf("%v", err)
						}
						faults.Add(1)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := ops.Load()
	h, m := hits.Load(), misses.Load()
	hitRate := 0.0
	if h+m > 0 {
		hitRate = float64(h) / float64(h+m)
	}
	fmt.Printf("ops=%d ops/s=%.0f hit_rate=%.4f fills=%d mutations=%d rejected_sets=%d faulted_workers=%d\n",
		total, float64(total)/elapsed.Seconds(), hitRate, fills.Load(), mutations.Load(), rejected.Load(), faults.Load())
	if *rate > 0 {
		// Demand fills ride along with misses but are not scheduled, so the
		// achieved rate counts trace requests only.
		fmt.Printf("open loop: target=%.0f req/s achieved=%.0f req/s (latency measured from scheduled send times)\n",
			*rate, float64(total-fills.Load())/elapsed.Seconds())
	}
	if mapApps {
		for _, label := range perApp.Labels() {
			c := perApp.Counter(label)
			fmt.Printf("%s gets=%d hit_rate=%.4f\n", label, c.Total(), c.HitRate())
		}
	}
	// Client-side tail latency per round trip (a pipelined batch counts as
	// one round trip), so perf changes report their tail, not just
	// throughput.
	fmt.Printf("latency per round trip: n=%d mean=%v p50=%v p95=%v p99=%v\n",
		lat.Count(), lat.Mean(), lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99))
}

// reqBatch is one feeder-to-worker unit of work; due is the open-loop
// scheduled send time (zero in closed-loop mode).
type reqBatch struct {
	reqs []trace.Request
	due  time.Time
}

// worker owns one connection and its reusable batch state.
type worker struct {
	logger   *log.Logger
	c        *client.Client
	rng      *rand.Rand
	payload  []byte
	pipeline int
	mapApps  bool
	ttl      int64
	mutate   float64
	tolerate bool

	curApp  int
	keys    []string
	hitbuf  []bool
	onValue client.IndexedValueFunc

	ops, hits, misses, fills, mutations, rejected *atomic.Int64
	lat                                           *metrics.LatencyHistogram
	perApp                                        *metrics.Summary
}

// processBatch replays one batch: runs of consecutive same-app GETs go out
// as one pipelined streaming batch (the misses demand-filled afterwards),
// everything else as individual round trips. Latency is recorded per round
// trip in closed-loop mode, and once per batch from its scheduled send time
// in open-loop mode. A returned error is a transport failure that outlived
// the client's retries; the caller decides whether it is fatal.
func (w *worker) processBatch(b reqBatch) error {
	if !b.due.IsZero() {
		if d := time.Until(b.due); d > 0 {
			time.Sleep(d)
		}
	}
	closedLoop := b.due.IsZero()
	i := 0
	for i < len(b.reqs) {
		r := b.reqs[i]
		if r.Op == trace.OpGet && w.mutate > 0 && w.rng.Float64() < w.mutate {
			if err := w.selectApp(r.App); err != nil {
				return err
			}
			start := time.Now()
			if err := w.runMutation(r); err != nil {
				return err
			}
			if closedLoop {
				w.lat.Record(time.Since(start))
			}
			w.ops.Add(1)
			w.mutations.Add(1)
			i++
			continue
		}
		switch r.Op {
		case trace.OpGet:
			j := i
			w.keys = w.keys[:0]
			w.hitbuf = w.hitbuf[:0]
			for j < len(b.reqs) && len(w.keys) < w.pipeline &&
				b.reqs[j].Op == trace.OpGet && b.reqs[j].App == r.App {
				w.keys = append(w.keys, b.reqs[j].Key)
				w.hitbuf = append(w.hitbuf, false)
				j++
			}
			if err := w.selectApp(r.App); err != nil {
				return err
			}
			start := time.Now()
			if err := w.c.PipelineGetFunc(w.keys, w.onValue); err != nil {
				return fmt.Errorf("get: %w", err)
			}
			if closedLoop {
				w.lat.Record(time.Since(start))
			}
			w.ops.Add(int64(len(w.keys)))
			var batchHits int64
			for idx := 0; idx < len(w.keys); idx++ {
				if w.hitbuf[idx] {
					batchHits++
					continue
				}
				// Read-through fill: repopulate the missed key.
				w.misses.Add(1)
				w.fills.Add(1)
				w.ops.Add(1)
				if err := w.set(b.reqs[i+idx]); err != nil {
					return err
				}
			}
			w.hits.Add(batchHits)
			if w.mapApps {
				c := w.perApp.Counter(workload.TenantName(r.App))
				c.AddHits(batchHits)
				c.AddMisses(int64(len(w.keys)) - batchHits)
			}
			i = j
		case trace.OpSet:
			if err := w.selectApp(r.App); err != nil {
				return err
			}
			start := time.Now()
			if err := w.set(r); err != nil {
				return err
			}
			if closedLoop {
				w.lat.Record(time.Since(start))
			}
			w.ops.Add(1)
			i++
		case trace.OpDelete:
			if err := w.selectApp(r.App); err != nil {
				return err
			}
			start := time.Now()
			if _, err := w.c.Delete(r.Key); err != nil {
				return fmt.Errorf("delete: %w", err)
			}
			if closedLoop {
				w.lat.Record(time.Since(start))
			}
			w.ops.Add(1)
			i++
		default:
			i++
		}
	}
	if !closedLoop {
		w.lat.Record(time.Since(b.due))
	}
	return nil
}

// set stores r's key with a value sized to the trace's Size; SETs the server
// rejects (larger than every slab class) are counted, not fatal — the
// workload legitimately contains such items and they behave as permanent
// misses, exactly as in the simulator.
func (w *worker) set(r trace.Request) error {
	if err := w.c.SetWithOptions(r.Key, workload.PadValue(w.payload, r), 0, w.ttl); err != nil {
		if errors.Is(err, protocol.ErrRemote) {
			w.rejected.Add(1)
			return nil
		}
		return fmt.Errorf("set: %w", err)
	}
	return nil
}

// selectApp switches the connection to r's tenant when app mapping is on.
func (w *worker) selectApp(app int) error {
	if !w.mapApps || app == w.curApp {
		return nil
	}
	if err := w.c.SelectTenant(workload.TenantName(app)); err != nil {
		return fmt.Errorf("tenant app%d: %w", app, err)
	}
	w.curApp = app
	return nil
}

// runMutation issues one mutation verb against r's key: a TTL refresh
// (touch), a small append, or an increment of a per-key counter sibling.
// NOT_FOUND outcomes are normal under eviction and expiry; an append
// rejected because the value outgrew its slab class is healed by re-setting
// the key.
func (w *worker) runMutation(r trace.Request) error {
	switch w.rng.Intn(3) {
	case 0:
		if _, err := w.c.Touch(r.Key, w.ttl); err != nil {
			return fmt.Errorf("touch: %w", err)
		}
	case 1:
		if _, err := w.c.Append(r.Key, []byte("+")); err != nil {
			if errors.Is(err, protocol.ErrRemote) {
				// Likely grown past the largest slab class: reset the key.
				return w.set(r)
			}
			return fmt.Errorf("append: %w", err)
		}
	default:
		ctr := r.Key + ".ctr"
		if _, found, err := w.c.Incr(ctr, 1); err != nil {
			return fmt.Errorf("incr: %w", err)
		} else if !found {
			// First touch of this counter: seed it.
			if err := w.c.SetWithOptions(ctr, []byte("0"), 0, w.ttl); err != nil {
				return fmt.Errorf("incr seed: %w", err)
			}
		}
	}
	return nil
}

// runVerify executes the sim-vs-wire cross-check and exits non-zero when
// any application's hit rates diverge past the tolerance.
func runVerify(logger *log.Logger, spec string, opts workload.Options, modeName string, tolerance float64) {
	mode, err := parseMode(modeName)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("cross-checking %s (requests=%d seed=%d mode=%s) against internal/sim",
		spec, opts.Requests, opts.Seed, mode)
	res, err := workload.CrossCheck(workload.VerifyConfig{
		Spec:      spec,
		Options:   opts,
		Mode:      mode,
		Tolerance: tolerance,
	})
	if err != nil {
		logger.Fatal(err)
	}
	for _, a := range res.Apps {
		fmt.Printf("app%-2d gets=%-8d sim=%.4f wire=%.4f delta=%.4f\n",
			a.App, a.Requests, a.Sim, a.Wire, a.Delta())
	}
	fmt.Printf("overall: sim=%.4f wire=%.4f max_delta=%.4f tolerance=%.4f fills=%d rejected_sets=%d",
		res.SimOverall, res.WireOverall, res.MaxDelta, res.Tolerance, res.Fills, res.RejectedSets)
	if mode == store.AllocMemshare {
		fmt.Printf(" arbiter_moves=%d", res.ArbiterMoves)
	}
	fmt.Println()
	if !res.OK() {
		fmt.Println("verify: FAIL")
		os.Exit(1)
	}
	fmt.Println("verify: PASS")
}

// hitrateApp is one application's wire/sim hit-rate pair in the head-to-head
// report.
type hitrateApp struct {
	App  int     `json:"app"`
	Gets int64   `json:"gets"`
	Sim  float64 `json:"sim_hit_rate"`
	Wire float64 `json:"wire_hit_rate"`
}

// hitrateMode is one allocation mode's head-to-head result.
type hitrateMode struct {
	SimOverall   float64      `json:"sim_hit_rate"`
	WireOverall  float64      `json:"wire_hit_rate"`
	MaxDelta     float64      `json:"max_sim_wire_delta"`
	ArbiterMoves int64        `json:"arbiter_moves,omitempty"`
	Apps         []hitrateApp `json:"apps"`
}

// hitrateReport is the BENCH_hitrate.json document.
type hitrateReport struct {
	Trace    string  `json:"trace"`
	Requests int64   `json:"requests"`
	Seed     int64   `json:"seed"`
	Scale    float64 `json:"scale"`
	// EqualSplitMB is the per-app partition every mode runs under: the
	// trace's total memory divided evenly across apps. The head-to-head
	// models a naively provisioned cluster — the operator granted every
	// tenant the same share instead of sizing partitions to the workloads —
	// which is the operating point cross-tenant arbitration is meant to
	// rescue and the one the static split cannot adapt from.
	EqualSplitMB int64                  `json:"equal_split_mb"`
	Modes        map[string]hitrateMode `json:"modes"`
	// MemshareGain is memshare's wire aggregate minus cliffhanger's — the
	// cross-tenant arbitration win over the static per-tenant split.
	MemshareGain float64 `json:"memshare_minus_cliffhanger_wire"`
}

// runHitrate replays the same seeded trace under default, cliffhanger and
// memshare through the sim-vs-wire cross-check harness (every run includes
// its conservation audit) and records per-app + aggregate hit rates as JSON.
// All three modes run with the trace's total memory split evenly across the
// apps, so the only difference between cliffhanger and memshare is whether
// memory can migrate between tenants at runtime. With gate set it exits
// non-zero unless memshare's wire aggregate beats the cliffhanger static
// split.
func runHitrate(logger *log.Logger, spec string, opts workload.Options, path string, gate bool) {
	wl := open(logger, spec, opts)
	if wl.Apps == nil {
		logger.Fatalf("trace %s carries no tenant layout for the head-to-head", wl.Name)
	}
	var totalMB int64
	for _, a := range wl.Apps {
		totalMB += a.MemoryMB
	}
	equalMB := totalMB / int64(len(wl.Apps))
	if equalMB < 1 {
		equalMB = 1
	}
	override := make(map[int]int64, len(wl.Apps))
	for _, a := range wl.Apps {
		override[a.ID] = equalMB << 20
	}
	wl.Close()

	report := hitrateReport{
		Trace:        spec,
		Requests:     opts.Requests,
		Seed:         opts.Seed,
		Scale:        opts.Scale,
		EqualSplitMB: equalMB,
		Modes:        make(map[string]hitrateMode),
	}
	for _, mode := range []store.AllocationMode{
		store.AllocDefault, store.AllocCliffhanger, store.AllocMemshare,
	} {
		logger.Printf("head-to-head: replaying %s (requests=%d seed=%d equal_split=%dMiB) under %s",
			spec, opts.Requests, opts.Seed, equalMB, mode)
		res, err := workload.CrossCheck(workload.VerifyConfig{
			Spec: spec, Options: opts, Mode: mode,
			AppMemoryOverride: override,
			// The head-to-head reports rates rather than enforcing sim-wire
			// agreement; the real tolerance gate is cliffbench -verify.
			Tolerance: 1,
		})
		if err != nil {
			logger.Fatal(err)
		}
		m := hitrateMode{
			SimOverall:   res.SimOverall,
			WireOverall:  res.WireOverall,
			MaxDelta:     res.MaxDelta,
			ArbiterMoves: res.ArbiterMoves,
		}
		for _, a := range res.Apps {
			m.Apps = append(m.Apps, hitrateApp{App: a.App, Gets: a.Requests, Sim: a.Sim, Wire: a.Wire})
		}
		report.Modes[mode.String()] = m
		fmt.Printf("%-11s sim=%.4f wire=%.4f arbiter_moves=%d\n",
			mode, res.SimOverall, res.WireOverall, res.ArbiterMoves)
	}
	report.MemshareGain = report.Modes[store.AllocMemshare.String()].WireOverall -
		report.Modes[store.AllocCliffhanger.String()].WireOverall
	fmt.Printf("memshare wire gain over cliffhanger static split: %+.4f\n", report.MemshareGain)
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		logger.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("wrote %s", path)
	if gate && report.MemshareGain <= 0 {
		fmt.Println("hitrate gate: FAIL (memshare did not beat the static split)")
		os.Exit(1)
	}
	if gate {
		fmt.Println("hitrate gate: PASS")
	}
}

func parseMode(s string) (store.AllocationMode, error) {
	for _, m := range []store.AllocationMode{
		store.AllocDefault, store.AllocCliffhanger, store.AllocStatic,
		store.AllocGlobalLRU, store.AllocMemshare,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown allocation mode %q", s)
}

func open(logger *log.Logger, spec string, opts workload.Options) *workload.Workload {
	wl, err := workload.Open(spec, opts)
	if err != nil {
		logger.Fatal(err)
	}
	return wl
}

func dial(logger *log.Logger, addr, tenant string, timeout time.Duration) *client.Client {
	return dialOptions(logger, addr, tenant, client.Options{DialTimeout: timeout})
}

func dialOptions(logger *log.Logger, addr, tenant string, opts client.Options) *client.Client {
	c, err := client.DialOptions(addr, opts)
	if err != nil {
		logger.Fatalf("dial %s: %v", addr, err)
	}
	if tenant != "" {
		if err := c.SelectTenant(tenant); err != nil {
			logger.Fatalf("tenant %s: %v", tenant, err)
		}
	}
	return c
}
