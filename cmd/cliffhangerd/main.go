// Command cliffhangerd serves the multi-tenant Cliffhanger cache over TCP
// using the memcached text protocol.
//
// Example:
//
//	cliffhangerd -addr :11211 -tenants default:64,app2:32 -mode cliffhanger
//
// Overload behavior is governed by the connection-lifecycle flags
// (memcached's -c / idle-timeout surface):
//
//	cliffhangerd -addr :11211 -max-conns 4096 -idle-timeout 5m \
//	    -read-timeout 30s -write-timeout 30s -drain-timeout 10s
//
// A connection past -max-conns is answered "SERVER_ERROR too many
// connections" and closed — the daemon sheds load at the accept edge rather
// than letting the kernel backlog time clients out invisibly. -idle-timeout
// reaps connections parked between commands (including half-closed sockets
// whose FIN never arrived); -read-timeout bounds delivery of a single
// command once its first byte arrives, so a slow-loris client dribbling a
// storage payload tears only its own connection; -write-timeout unwedges
// sessions stuck writing to a peer that stopped reading. The shed/reaped
// totals are visible in stats as rejected_connections and conn_timeouts,
// next to curr_connections, total_connections and conn_panics.
//
// On SIGTERM or SIGINT the daemon drains instead of dropping: it stops
// accepting, lets every session finish answering its in-flight pipelined
// batch, and flushes bookkeeping, forcing stragglers closed only when
// -drain-timeout expires. Every request accepted before the signal is
// answered on a clean drain.
//
// In -mode memshare the per-tenant partitions become fluid: a background
// arbiter compares every tenant's shadow-queue marginal hit-rate-per-byte
// each -arbiter-interval and migrates one page from the tenant whose memory
// is doing the least good to the one whose would do the most, never shrinking
// anyone below half its configured reservation. To watch it work, start two
// tenants with equal shares, drive a hot workload at one, and poll the
// arbiter stats:
//
//	cliffhangerd -addr :11211 -mode memshare -tenants hot:32,cold:32 &
//	cliffbench -addr 127.0.0.1:11211 -tenant hot -duration 2m &
//	while sleep 5; do
//	    printf 'stats arbiter\r\nquit\r\n' | nc 127.0.0.1 11211 \
//	        | grep -E 'arbiter_moves|lease_pages'
//	done
//
// The hot tenant's lease_pages climbs tick by tick (and cold's falls toward
// its reserved_pages floor) while arbiter_moves counts the transfers; the
// same numbers appear in the plain "stats" verb (reserved_pages,
// target_bytes, marginal_hit_per_byte, arbiter_moves), in client.StatsArbiter,
// and on each -stats-json line.
//
// Pass -workers to switch the front end from goroutine-per-connection to
// the event-driven parked model: a fixed worker pool serves whichever
// connections have bytes pending while every idle connection is parked on an
// epoll registration — no goroutine, no buffers — until its next request
// arrives. -conn-buffers bounds the pool of 64 KiB session buffer pairs the
// workers lease (default = -workers), so resident memory is O(active
// sessions) rather than O(connections) and a box can hold hundreds of
// thousands of mostly-idle connections:
//
//	cliffhangerd -addr :11211 -max-conns 200000 -workers 64 -conn-buffers 64
//
// The front end's live state is visible in stats (and on each -stats-json
// tick) as parked_connections, active_sessions, buffer_pool_bytes and
// worker_count. Idle reaping, read/write deadlines and drain semantics are
// identical in both modes; with -workers 0 (the default) the classic
// goroutine-per-connection front end is used.
//
// Pass -pprof-addr to expose the net/http/pprof profiling endpoints on a
// side HTTP listener, e.g.:
//
//	cliffhangerd -addr :11211 -pprof-addr :6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// Clients speak the standard memcached text verbs — get/gets, set, add,
// replace, append, prepend, cas, touch, incr/decr, delete, stats,
// flush_all — plus the non-standard "tenant <name>" verb to select an
// application on the connection. Items set with an exptime expire lazily on
// access and are reclaimed by a background reaper folded into each tenant's
// bookkeeper.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cliffhanger/internal/cache"
	"cliffhanger/internal/server"
	"cliffhanger/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "TCP listen address")
		tenants   = flag.String("tenants", "default:64", "comma-separated name:MB tenant reservations")
		mode      = flag.String("mode", "cliffhanger", "allocation mode: default, cliffhanger, static, global-lru, memshare")
		arbIntv   = flag.Duration("arbiter-interval", time.Second, "cross-tenant arbiter tick period for memshare mode (0 disables the background arbiter)")
		policy    = flag.String("policy", "lru", "eviction policy for non-cliffhanger modes: lru, lfu, arc, facebook")
		shards    = flag.Int("shards", 0, "value shards per tenant (0 = default)")
		syncBk    = flag.Bool("sync-bookkeeping", false, "apply Cliffhanger bookkeeping inline on the request path (slower, deterministic)")
		statsIntv = flag.Duration("stats-interval", 0, "interval for logging throughput and hit rates (0 disables)")
		statsJSON = flag.String("stats-json", "", "append one JSON stats line per -stats-interval tick to this file (empty disables)")
		pprofAddr = flag.String("pprof-addr", "", "HTTP listen address for net/http/pprof profiling endpoints (empty disables)")

		maxConns     = flag.Int("max-conns", 1024, "max simultaneous connections; extras are shed with SERVER_ERROR (0 = unlimited)")
		workers      = flag.Int("workers", 0, "serve with this many event-driven workers, parking idle connections off goroutines (0 = classic goroutine per connection)")
		connBuffers  = flag.Int("conn-buffers", 0, "bound on pooled 64 KiB session buffer pairs for -workers mode (0 = same as -workers)")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "close connections idle between commands for this long (0 disables)")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "max time to deliver one command once its first byte arrives; tears slow-loris clients (0 disables)")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-write deadline toward the client; unwedges stuck-reader peers (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests on SIGTERM/SIGINT before forcing connections closed")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "cliffhangerd: ", log.LstdFlags)

	m, err := parseMode(*mode)
	if err != nil {
		logger.Fatal(err)
	}
	p, ok := cache.ParsePolicyKind(*policy)
	if !ok {
		logger.Fatalf("unknown policy %q", *policy)
	}
	cfg := store.Config{
		DefaultMode:     m,
		DefaultPolicy:   p,
		ValueShards:     *shards,
		SyncBookkeeping: *syncBk,
	}
	if m == store.AllocMemshare {
		cfg.Arbiter = store.ArbiterConfig{Interval: *arbIntv}
	}
	st := store.New(cfg)
	specs, err := parseTenants(*tenants)
	if err != nil {
		logger.Fatal(err)
	}
	defaultTenant := specs[0].name
	for _, t := range specs {
		if err := st.RegisterTenant(t.name, t.mb<<20); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("tenant %s: %d MiB, mode %s", t.name, t.mb, m)
	}

	srv := server.New(server.Config{
		Addr:          *addr,
		DefaultTenant: defaultTenant,
		Logger:        logger,
		MaxConns:      *maxConns,
		IdleTimeout:   *idleTimeout,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		Workers:       *workers,
		ConnBuffers:   *connBuffers,
	}, st)
	if err := srv.Start(); err != nil {
		logger.Fatal(err)
	}
	if *workers > 0 {
		logger.Printf("listening on %s (max-conns %d, idle-timeout %v, %d event-driven workers)",
			srv.Addr(), *maxConns, *idleTimeout, *workers)
	} else {
		logger.Printf("listening on %s (max-conns %d, idle-timeout %v)", srv.Addr(), *maxConns, *idleTimeout)
	}

	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof listening on %s (/debug/pprof/)", *pprofAddr)
			logger.Printf("pprof server exited: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	if *statsIntv > 0 {
		var jsonOut *os.File
		if *statsJSON != "" {
			jsonOut, err = os.OpenFile(*statsJSON, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				logger.Fatal(err)
			}
			defer jsonOut.Close()
		}
		go logStats(logger, srv, st, *statsIntv, jsonOut)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logger.Printf("draining (timeout %v)", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Shutdown answers every in-flight request, then flushes and closes the
	// store; it reports the ctx error if stragglers had to be forced closed.
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	cs := srv.ConnStats()
	logger.Printf("drained cleanly (served %d connections, rejected %d, timed out %d)",
		cs.TotalConnections, cs.RejectedConnections, cs.ConnTimeouts)
}

type tenantSpec struct {
	name string
	mb   int64
}

func parseTenants(s string) ([]tenantSpec, error) {
	var specs []tenantSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, mbStr, found := strings.Cut(part, ":")
		if !found || name == "" {
			return nil, fmt.Errorf("bad tenant spec %q, want name:MB", part)
		}
		mb, err := strconv.ParseInt(mbStr, 10, 64)
		if err != nil || mb <= 0 {
			return nil, fmt.Errorf("bad tenant memory in %q", part)
		}
		specs = append(specs, tenantSpec{name: name, mb: mb})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no tenants configured")
	}
	return specs, nil
}

func parseMode(s string) (store.AllocationMode, error) {
	for _, m := range []store.AllocationMode{
		store.AllocDefault, store.AllocCliffhanger, store.AllocStatic,
		store.AllocGlobalLRU, store.AllocMemshare,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown allocation mode %q", s)
}

// statsTick is the JSON shape written per -stats-interval tick: one line per
// tick so the file tails and greps like a log but parses like a dataset.
type statsTick struct {
	TS        string    `json:"ts"`
	OpsPerSec float64   `json:"ops_per_sec"`
	GetP99Us  int64     `json:"get_p99_us"`
	SetP99Us  int64     `json:"set_p99_us"`
	Pool      poolStats `json:"page_pool"`
	// The connection front end per tick: how many connections exist, how
	// many are parked off goroutines versus actively holding a session, the
	// bytes resident in the bounded session-buffer pool, and the worker
	// count (zero in classic goroutine-per-connection mode).
	CurrConnections   int64 `json:"curr_connections"`
	ParkedConnections int64 `json:"parked_connections"`
	ActiveSessions    int64 `json:"active_sessions"`
	BufferPoolBytes   int64 `json:"buffer_pool_bytes"`
	WorkerCount       int64 `json:"worker_count"`
	// ArbiterMoves/ArbiterLastMove expose the memshare arbiter's cumulative
	// decision count and most recent transfer (zero/empty outside memshare
	// mode), so a stats-json trail shows when memory moved between tenants.
	ArbiterMoves    int64            `json:"arbiter_moves,omitempty"`
	ArbiterLastMove string           `json:"arbiter_last_move,omitempty"`
	Tenants         []tenantTickStat `json:"tenants"`
}

type poolStats struct {
	TotalPages int64 `json:"total_pages"`
	FreePages  int64 `json:"free_pages"`
}

type tenantTickStat struct {
	Name              string  `json:"name"`
	HitRate           float64 `json:"hit_rate"`
	Requests          int64   `json:"requests"`
	ArenaBytes        int64   `json:"arena_bytes"`
	Occupancy         float64 `json:"occupancy"`
	Epoch             uint64  `json:"epoch"`
	QuarantinedChunks int64   `json:"quarantined_chunks"`
	DeferredFrees     int64   `json:"deferred_frees"`
	LeasePages        int64   `json:"lease_pages"`
	// ReservedPages is the arbiter floor and MarginalHitPerByte the
	// shadow-queue signal the arbiter ranks the tenant by (memshare mode).
	ReservedPages      int64   `json:"reserved_pages,omitempty"`
	MarginalHitPerByte float64 `json:"marginal_hit_per_byte,omitempty"`
}

func logStats(logger *log.Logger, srv *server.Server, st *store.Store, interval time.Duration, jsonOut *os.File) {
	var enc *json.Encoder
	if jsonOut != nil {
		enc = json.NewEncoder(jsonOut)
	}
	for range time.Tick(interval) {
		var parts []string
		var arenaBytes, arenaUsed, arenaTotal int64
		ps := st.PageStats()
		as := st.ArbiterStats()
		cs := srv.ConnStats()
		tick := statsTick{
			TS:                time.Now().UTC().Format(time.RFC3339Nano),
			OpsPerSec:         srv.Ops.Rate(),
			GetP99Us:          srv.GetLatency.Quantile(0.99).Microseconds(),
			SetP99Us:          srv.SetLatency.Quantile(0.99).Microseconds(),
			Pool:              poolStats{TotalPages: ps.TotalPages, FreePages: ps.FreePages},
			ArbiterMoves:      as.Moves,
			ArbiterLastMove:   as.LastMove,
			CurrConnections:   cs.CurrConnections,
			ParkedConnections: cs.ParkedConnections,
			ActiveSessions:    cs.ActiveSessions,
			BufferPoolBytes:   cs.BufferPoolBytes,
			WorkerCount:       cs.WorkerCount,
		}
		for _, name := range st.Tenants() {
			s, err := st.Stats(name)
			if err != nil {
				continue
			}
			dropped, _ := st.DroppedEvents(name)
			parts = append(parts, fmt.Sprintf("%s hit=%.4f req=%d shed=%d pages=%d",
				name, s.HitRate(), s.Requests, dropped, ps.Leases[name]))
			var ab, ub, tb int64
			if classes, err := st.SlabStats(name); err == nil {
				ab, ub, tb = store.SumArenaStats(classes)
				arenaBytes += ab
				arenaUsed += ub
				arenaTotal += tb
			}
			occ := 0.0
			if tb > 0 {
				occ = float64(ub) / float64(tb)
			}
			rs, _ := st.ReclaimStats(name)
			at := as.Tenants[name]
			tick.Tenants = append(tick.Tenants, tenantTickStat{
				Name:               name,
				HitRate:            s.HitRate(),
				Requests:           s.Requests,
				ArenaBytes:         ab,
				Occupancy:          occ,
				Epoch:              rs.Epoch,
				QuarantinedChunks:  rs.QuarantinedChunks,
				DeferredFrees:      rs.DeferredFrees,
				LeasePages:         ps.Leases[name],
				ReservedPages:      at.ReservedPages,
				MarginalHitPerByte: at.MarginalHitPerByte,
			})
		}
		occupancy := 0.0
		if arenaTotal > 0 {
			occupancy = float64(arenaUsed) / float64(arenaTotal)
		}
		logger.Printf("ops/s=%.0f get p99=%v set p99=%v arena=%dMiB occ=%.2f pool=%d/%d | %s",
			srv.Ops.Rate(), srv.GetLatency.Quantile(0.99), srv.SetLatency.Quantile(0.99),
			arenaBytes>>20, occupancy, ps.TotalPages-ps.FreePages, ps.TotalPages,
			strings.Join(parts, " | "))
		if enc != nil {
			if err := enc.Encode(&tick); err != nil {
				logger.Printf("stats-json: %v", err)
			}
		}
	}
}
