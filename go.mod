module cliffhanger

go 1.22
